// Package distcoord's root benchmarks regenerate every table and figure
// of the paper's evaluation (Sec. V) at reduced scale, so that
// `go test -bench=.` exercises the full experiment pipeline end to end.
// Success ratios are attached to each benchmark via ReportMetric; full
// paper-scale runs (30 seeds, horizon 20000, 2x256 networks) are driven
// by cmd/experiments -paper.
//
// Benchmark map (see DESIGN.md §3):
//
//	BenchmarkTableI   — Table I topology statistics
//	BenchmarkFig6a-d  — success vs. load per arrival pattern
//	BenchmarkFig7     — success and delay vs. deadline
//	BenchmarkFig8a    — generalization to unseen traffic
//	BenchmarkFig8b    — generalization to unseen load
//	BenchmarkFig9a    — success on large topologies
//	BenchmarkFig9b    — per-decision coordination time
//
// plus micro-benchmarks (inference latency per topology, simulator event
// throughput, APSP) and ablations (reward shaping, observation
// normalization).
package distcoord

import (
	"math/rand"
	"testing"

	"distcoord/internal/baselines"
	"distcoord/internal/coord"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// benchOptions is the reduced experiment scale used by the figure
// benchmarks: large enough to exercise every code path (training,
// deployment, multi-seed evaluation of all four algorithms), small
// enough to finish within benchmark time budgets.
func benchOptions() eval.Options {
	return eval.Options{
		EvalSeeds:       1,
		Horizon:         600,
		MonitorInterval: 100,
		Budget: eval.TrainBudget{
			Episodes:     6,
			ParallelEnvs: 1,
			Seeds:        1,
			Horizon:      250,
			Hidden:       []int{16},
		},
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := graph.TableIRows(graph.Topologies())
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchFig6 runs the Fig. 6 pipeline for one arrival pattern.
func benchFig6(b *testing.B, variant string) {
	b.Helper()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig6(variant, opts)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFig6a(b *testing.B) { benchFig6(b, "a") }
func BenchmarkFig6b(b *testing.B) { benchFig6(b, "b") }
func BenchmarkFig6c(b *testing.B) { benchFig6(b, "c") }
func BenchmarkFig6d(b *testing.B) { benchFig6(b, "d") }

func BenchmarkFig7(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig7(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFig8a(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig8a(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFig8b(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig8b(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFig9a(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := eval.Fig9a(opts)
		if err != nil {
			b.Fatal(err)
		}
		reportFigure(b, fig)
	}
}

func BenchmarkFig9b(b *testing.B) {
	opts := benchOptions()
	opts.Budget.Hidden = []int{64, 64}
	for i := 0; i < b.N; i++ {
		rows, err := eval.Fig9b(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
		// Report the headline quantities: distributed per-decision cost
		// on the largest network vs. the central update there.
		b.ReportMetric(float64(rows[3].DistDRL.Nanoseconds()), "distdrl-ns/decision")
		b.ReportMetric(float64(rows[3].Central.Nanoseconds()), "central-ns/update")
	}
}

// reportFigure attaches the DistDRL mean success of the last x-position
// as a benchmark metric, so regressions in coordination quality are
// visible in benchmark output.
func reportFigure(b *testing.B, fig eval.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		if len(s.Points) == 0 {
			b.Fatalf("series %s has no points", s.Algo)
		}
	}
	last := fig.Series[0].Points[len(fig.Series[0].Points)-1]
	b.ReportMetric(last.Outcome.Succ.Mean, "success")
}

// BenchmarkInference measures the distributed DRL per-decision latency
// (observe + forward pass) per topology and decision mode with the
// paper's 2x256 network — the paper's "~1 ms per decision, invariant to
// network size" claim. Every sub-benchmark must report 0 allocs/op: the
// steady-state decide path reuses per-node workspaces.
func BenchmarkInference(b *testing.B) {
	for _, name := range []string{"Abilene", "BT Europe", "China Telecom", "Interroute"} {
		for _, mode := range []struct {
			name       string
			stochastic bool
		}{{"stochastic", true}, {"argmax", false}} {
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				s := eval.Base()
				s.Topology = name
				inst, err := s.Instantiate(1)
				if err != nil {
					b.Fatal(err)
				}
				adapter := coord.NewAdapter(inst.Graph, inst.APSP)
				agent, err := rl.NewAgent(rl.AgentConfig{
					ObsSize:    adapter.ObsSize(),
					NumActions: adapter.NumActions(),
					Hidden:     []int{256, 256},
				})
				if err != nil {
					b.Fatal(err)
				}
				dist, err := coord.NewDistributed(adapter, agent.Actor)
				if err != nil {
					b.Fatal(err)
				}
				dist.Stochastic = mode.stochastic
				st := simnet.NewState(inst.Graph, inst.APSP)
				flow := &simnet.Flow{
					Service: inst.Service, Egress: s.Egress,
					Rate: 1, Duration: 1, Deadline: 100,
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dist.Decide(st, flow, 0, 1)
				}
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw event-loop throughput with a
// cheap coordinator (decisions per second of simulated coordination).
func BenchmarkSimulatorThroughput(b *testing.B) {
	s := eval.Base()
	s.NumIngresses = 5
	s.Horizon = 2000
	inst, err := s.Instantiate(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		m, err := inst.Run(baselines.GCASP{})
		if err != nil {
			b.Fatal(err)
		}
		decisions += m.Decisions
	}
	b.ReportMetric(float64(decisions)/float64(b.N), "decisions/run")
}

func BenchmarkAPSP(b *testing.B) {
	g := graph.Interroute()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.NewAPSP(g)
	}
}

// BenchmarkAblationRewardShaping trains twice — with and without the
// shaped auxiliary rewards of Sec. IV-B3 — and reports both resulting
// success ratios. The paper motivates shaping as necessary against the
// sparse ±10 terminal signal.
func BenchmarkAblationRewardShaping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shaped := trainAblation(b, true, true)
		sparse := trainAblation(b, false, true)
		b.ReportMetric(shaped, "shaped-success")
		b.ReportMetric(sparse, "sparse-success")
	}
}

// BenchmarkAblationNormalization trains with and without the [-1,1]
// observation normalization of Sec. IV-B1.
func BenchmarkAblationNormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		norm := trainAblation(b, true, true)
		raw := trainAblation(b, true, false)
		b.ReportMetric(norm, "normalized-success")
		b.ReportMetric(raw, "raw-success")
	}
}

// trainAblation trains a small agent on the base scenario with the given
// reward-shaping and normalization settings and returns its final
// training success ratio.
func trainAblation(b *testing.B, shaping, normalize bool) float64 {
	b.Helper()
	s := eval.Base()
	inst, err := s.Instantiate(0)
	if err != nil {
		b.Fatal(err)
	}
	rewards := coord.DefaultRewards()
	rewards.Shaping = shaping

	mkEnv := func(envSeed int64) (*coord.Env, error) {
		env, err := coord.NewEnv(coord.EnvConfig{
			Graph:        inst.Graph,
			APSP:         inst.APSP,
			Service:      inst.Service,
			IngressNodes: s.Ingresses(),
			Egress:       s.Egress,
			Traffic:      traffic.PoissonSpec(10),
			Template:     inst.Template,
			Horizon:      250,
			Rewards:      rewards,
		}, envSeed)
		if err != nil {
			return nil, err
		}
		env.Adapter().Normalize = normalize
		return env, nil
	}
	probeEnv, err := mkEnv(0)
	if err != nil {
		b.Fatal(err)
	}
	adapter := probeEnv.Adapter()
	_, stats, err := rl.Train(rl.TrainConfig{
		Agent: rl.AgentConfig{
			ObsSize:    adapter.ObsSize(),
			NumActions: adapter.NumActions(),
			Hidden:     []int{16},
			LR:         3e-3,
		},
		Episodes:     80,
		ParallelEnvs: 2,
		Seeds:        1,
		LRDecay:      true,
		NewEnv:       func(envSeed int64) (rl.Env, error) { return mkEnv(envSeed) },
	})
	if err != nil {
		b.Fatal(err)
	}
	return stats.BestScore
}

// BenchmarkTraining measures one full training update cycle (rollout +
// actor/critic update) on the base scenario.
func BenchmarkTraining(b *testing.B) {
	s := eval.Base()
	inst, err := s.Instantiate(0)
	if err != nil {
		b.Fatal(err)
	}
	env, err := coord.NewEnv(coord.EnvConfig{
		Graph:        inst.Graph,
		APSP:         inst.APSP,
		Service:      inst.Service,
		IngressNodes: s.Ingresses(),
		Egress:       s.Egress,
		Traffic:      traffic.PoissonSpec(10),
		Template:     inst.Template,
		Horizon:      500,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	adapter := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{64, 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	policy := rl.PolicyFunc(func(obs []float64) int { return agent.SampleAction(obs, rng) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trajs, _, err := env.Rollout(policy)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := agent.Update(trajs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptimizer compares the paper's RMSprop against Adam
// on an identical supervised fit (XOR regression with the nn package),
// reporting the final losses. It documents that RMSprop (the paper's
// choice) is adequate for the small tanh networks used throughout.
func BenchmarkAblationOptimizer(b *testing.B) {
	fit := func(step func(params, grads [][]float64)) float64 {
		rng := rand.New(rand.NewSource(42))
		m := nn.NewMLP(rng, 2, 16, 1)
		samples := [][3]float64{{1, 1, 1}, {1, -1, -1}, {-1, 1, -1}, {-1, -1, 1}}
		for epoch := 0; epoch < 200; epoch++ {
			m.ZeroGrad()
			for _, s := range samples {
				tape := m.ForwardTape(s[:2])
				m.Backward(tape, []float64{tape.Output()[0] - s[2]})
			}
			step(m.Params(), m.Grads())
		}
		loss := 0.0
		for _, s := range samples {
			d := m.Forward(s[:2])[0] - s[2]
			loss += 0.5 * d * d
		}
		return loss
	}
	for i := 0; i < b.N; i++ {
		rms := nn.NewRMSProp(0.01)
		adam := nn.NewAdam(0.01)
		b.ReportMetric(fit(rms.Step), "rmsprop-loss")
		b.ReportMetric(fit(adam.Step), "adam-loss")
	}
}

// BenchmarkOnlineAdaptation exercises the paper's proposed extension
// (Sec. IV-C1): after brief offline training on fixed-interval traffic,
// a frozen distributed policy and a continuously learning one (local
// updates + federated weight averaging) both face bursty MMPP traffic.
// Both success ratios are reported.
func BenchmarkOnlineAdaptation(b *testing.B) {
	s := eval.Base()
	train := s
	train.Traffic = traffic.FixedSpec(10)
	train.Horizon = 600
	policy, err := eval.TrainDRL(train, eval.TrainBudget{
		Episodes:     60,
		ParallelEnvs: 2,
		Seeds:        1,
		Horizon:      300,
		Hidden:       []int{16},
		LR:           3e-3,
	})
	if err != nil {
		b.Fatal(err)
	}

	test := s
	test.Traffic = traffic.MMPPSpec(12, 8, 100, 0.05)
	test.Horizon = 2000

	b.ResetTimer() // exclude the offline pretraining above
	for i := 0; i < b.N; i++ {
		inst, err := test.Instantiate(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)

		frozen, err := coord.NewDistributed(adapter, policy.Agent.Actor)
		if err != nil {
			b.Fatal(err)
		}
		mFrozen, err := inst.Run(frozen)
		if err != nil {
			b.Fatal(err)
		}

		online, err := coord.NewOnline(adapter, policy.Agent, coord.OnlineConfig{
			SyncInterval: 200,
			MinSteps:     32,
		})
		if err != nil {
			b.Fatal(err)
		}
		mOnline, err := runWithListener(inst, online)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mFrozen.SuccessRatio(), "frozen-success")
		b.ReportMetric(mOnline.SuccessRatio(), "online-success")
		b.ReportMetric(float64(online.Updates), "online-updates")
	}
}

// runWithListener runs an instance with a coordinator that is also the
// simulation listener (the Online coordinator needs reward events).
func runWithListener(inst *eval.Instance, online *coord.Online) (*simnet.Metrics, error) {
	rng := rand.New(rand.NewSource(0x0911))
	var ingresses []simnet.Ingress
	for _, v := range inst.Scenario.Ingresses() {
		ingresses = append(ingresses, simnet.Ingress{
			Node:     v,
			Arrivals: inst.Scenario.Traffic.New(rand.New(rand.NewSource(rng.Int63()))),
		})
	}
	sim, err := simnet.New(simnet.Config{
		Graph:       inst.Graph,
		APSP:        inst.APSP,
		Service:     inst.Service,
		Ingresses:   ingresses,
		Egress:      inst.Scenario.Egress,
		Template:    inst.Template,
		Horizon:     inst.Scenario.Horizon,
		Coordinator: online,
		Listener:    online,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
