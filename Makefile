# Development targets. The repo is stdlib-only; everything below is
# plain go tool invocations.

GO ?= go

.PHONY: all build test race bench fmt vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The race-focused
# smoke tests (rl.TestTrainRaceSmoke, telemetry sink/registry
# concurrency tests) are sized to keep this tier fast.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...
