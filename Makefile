# Development targets. The repo is stdlib-only; everything below is
# plain go tool invocations.

GO ?= go

.PHONY: all build test race bench bench-scale bench-rpc bench-check bench-all obs-smoke agent-smoke ctl-smoke scripts-test fmt lint vet verify

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The race-focused
# smoke tests (rl.TestTrainRaceSmoke, telemetry sink/registry
# concurrency tests) are sized to keep this tier fast.
race:
	$(GO) test -race ./...

# bench measures the inference hot path (forward pass, full decide in
# both modes, one simulated episode) and writes machine-readable JSONL
# to BENCH_inference.json (schema: EXPERIMENTS.md, "Inference
# benchmarks").
bench:
	$(GO) run ./cmd/bench -out BENCH_inference.json

# bench-scale measures end-to-end episode throughput (flows/sec) on
# synthetic 100/500/1000-node topologies, sequential vs batched decision
# resolution, and writes BENCH_scale.json (schema: EXPERIMENTS.md,
# "Scale benchmarks").
bench-scale:
	$(GO) run ./cmd/bench -scale -out BENCH_scale.json

# bench-rpc measures the decision round trip in-process vs across the
# agentnet socket boundary (3 loopback agent servers) on an identically
# seeded run, and writes BENCH_rpc.json (schema: EXPERIMENTS.md,
# "Decision RTT"). The run itself enforces the equivalence oracle.
bench-rpc:
	$(GO) run ./cmd/bench -rpc -out BENCH_rpc.json

# bench-check regression-gates the sequential decide hot path: a fresh
# cmd/bench run must stay within +25% ns/op of the committed
# BENCH_inference.json baseline.
bench-check:
	./scripts/bench_check.sh

# bench-all runs every go test benchmark in the repo (figures, micro,
# ablations); this takes much longer than `make bench`.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# obs-smoke end-to-end checks the live observability endpoint: it runs a
# short coordsim with -obs-addr on a free port and curls /metrics,
# /snapshot, and /run during the -obs-wait hold.
obs-smoke:
	./scripts/obs_smoke.sh

# agent-smoke end-to-end checks the networked agent tier: it spawns 3
# real agentd processes, asserts the remote run's metrics are
# byte-identical to the in-process run (equivalence oracle) with nonzero
# RTT samples, then kills one agentd mid-run under an agent-kill chaos
# schedule and asserts the recovery report sees the dip.
agent-smoke:
	./scripts/agent_smoke.sh

# ctl-smoke end-to-end checks the experiment-controller tier: it starts
# cmd/ctl over a throwaway store, submits a 2-point sweep over HTTP,
# waits for it to finish, verifies every manifest artifact resolves
# through the content-addressed blob route, and asserts a recalc
# re-renders byte-identically from the stored grid log.
ctl-smoke:
	./scripts/ctl_smoke.sh

# scripts-test runs the shell-level unit tests (currently the
# bench_check.sh gate semantics: REGRESSED vs NO BASELINE exit codes).
scripts-test:
	./scripts/test_bench_check.sh

fmt:
	gofmt -l -w .

# lint fails on unformatted files (without rewriting them) and runs vet.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

# verify is the pre-merge gate: build, full suite, lint, race detector,
# and the shell-level script tests.
verify: build test lint race scripts-test
