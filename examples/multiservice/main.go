// Multiservice: coordinate a weighted mix of services on one substrate
// network — the paper's multi-service setting ("we successfully tested
// our approach with multiple services", Sec. V-A1). A lightweight
// firewall-only service shares the network with the full three-component
// video chain; the coordinator handles both per flow.
//
// Run with: go run ./examples/multiservice
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

func main() {
	s := eval.Base()
	inst, err := s.Instantiate(0)
	if err != nil {
		log.Fatal(err)
	}

	video := eval.VideoService()
	light := &simnet.Service{
		Name: "firewall-only",
		Chain: []*simnet.Component{
			{Name: "fw-lite", ProcDelay: 2, StartupDelay: 1, IdleTimeout: 50, ResourcePerRate: 0.3},
		},
	}

	for _, algo := range []simnet.Coordinator{baselines.SP{}, baselines.GCASP{}, baselines.NewCentral(100)} {
		rng := rand.New(rand.NewSource(7))
		sim, err := simnet.New(simnet.Config{
			Graph: inst.Graph,
			APSP:  inst.APSP,
			Services: []simnet.WeightedService{
				{Service: video, Weight: 1},
				{Service: light, Weight: 1},
			},
			ServiceSeed: 7,
			Ingresses: []simnet.Ingress{
				{Node: 0, Arrivals: traffic.NewPoisson(8, rng)},
				{Node: 1, Arrivals: traffic.NewPoisson(8, rng)},
			},
			Egress:      s.Egress,
			Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     5000,
			Coordinator: algo,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %4d/%4d flows successful (%.1f%%), avg delay %.1f ms, drops %v\n",
			algo.Name(), m.Succeeded, m.Arrived, 100*m.SuccessRatio(), m.AvgDelay(), m.DropsBy)
	}
}
