// Scalability: run coordination on all four real-world topologies of
// Table I (11 to 110 nodes) and measure per-decision coordination time,
// the mechanics behind Fig. 9. Distributed per-flow decisions cost the
// same regardless of network size (they scale with the node degree Δ_G),
// while the centralized rule update grows with the network.
//
// Run with: go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/simnet"
)

func main() {
	fmt.Println(eval.TableI())

	fmt.Printf("%-15s %14s %14s %14s\n", "network", "Central", "GCASP", "SP")
	for _, name := range []string{"Abilene", "BT Europe", "China Telecom", "Interroute"} {
		s := eval.Base()
		s.Topology = name
		s.Horizon = 2000

		fmt.Printf("%-15s", name)
		algos := []eval.CoordinatorFactory{
			func(*eval.Instance, int64) (simnet.Coordinator, error) { return baselines.NewCentral(100), nil },
			eval.Fresh(func() simnet.Coordinator { return baselines.GCASP{} }),
			eval.Fresh(func() simnet.Coordinator { return baselines.SP{} }),
		}
		for _, mk := range algos {
			o, err := eval.Evaluate(s, mk, 3, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %14s", o.Succ)
		}
		fmt.Println()
	}

	fmt.Println("\nper-decision coordination time (Fig. 9b mechanics):")
	opts := eval.DefaultOptions()
	opts.Budget.Hidden = []int{64, 64}
	rows, err := eval.Fig9b(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(eval.FormatTiming(rows))
}
