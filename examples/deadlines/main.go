// Deadlines: reproduce the mechanics of Fig. 7 — flows with deadlines
// τ ∈ {20, 30, 40, 50} on the Abilene base scenario. With τ = 20 every
// flow is lost (even the shortest path needs ~21 ms end to end); from
// τ = 30 the shortest-path heuristic works but cannot exploit longer
// deadlines, while adaptive algorithms trade longer routes for load
// balancing as the deadline budget grows.
//
// Run with: go run ./examples/deadlines
package main

import (
	"fmt"
	"log"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/simnet"
)

func main() {
	fmt.Printf("%-10s %26s %26s %26s\n", "deadline", "Central (succ | delay)", "GCASP (succ | delay)", "SP (succ | delay)")
	for _, deadline := range []float64{20, 30, 40, 50} {
		s := eval.Base()
		s.Deadline = deadline
		s.Horizon = 3000

		fmt.Printf("%-10.0f", deadline)
		algos := []eval.CoordinatorFactory{
			func(*eval.Instance, int64) (simnet.Coordinator, error) { return baselines.NewCentral(100), nil },
			eval.Fresh(func() simnet.Coordinator { return baselines.GCASP{} }),
			eval.Fresh(func() simnet.Coordinator { return baselines.SP{} }),
		}
		for _, mk := range algos {
			o, err := eval.Evaluate(s, mk, 3, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %13s | %6.1fms", o.Succ, o.Delay.Mean)
		}
		fmt.Println()
	}
}
