// Selflearning: the paper's headline workflow end to end — centralized
// training of one actor-critic on pooled experience from all nodes
// (Fig. 4a), then fully distributed inference with a policy copy at every
// node (Fig. 4b), compared against the hand-written GCASP heuristic.
//
// The training budget here is kept small so the example finishes in
// about a minute; see cmd/train for full-scale training.
//
// Run with: go run ./examples/selflearning
package main

import (
	"fmt"
	"log"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

func main() {
	// The paper's base scenario: Abilene, two ingresses (Sunnyvale and
	// Los Angeles), egress v8 (Kansas City), Poisson flow arrival.
	scenario := eval.Base()
	scenario.Horizon = 2000

	budget := eval.TrainBudget{
		Episodes:     120,
		ParallelEnvs: 4,
		Seeds:        1,
		Horizon:      800,
		Hidden:       []int{32, 32},
		Progress: func(seed, ep int, st rl.UpdateStats, score float64) {
			if ep%20 == 0 {
				fmt.Printf("  episode %3d: success ratio %.2f, mean return %.2f\n", ep, score, st.MeanReturn)
			}
		},
	}

	fmt.Println("training the distributed DRL coordinator (centralized, pooled experience):")
	policy, err := eval.TrainDRL(scenario, budget)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndeploying one policy copy per node and evaluating:")
	drl, err := eval.Evaluate(scenario, policy.Factory(), 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	gcasp, err := eval.Evaluate(scenario, eval.Fresh(func() simnet.Coordinator { return baselines.GCASP{} }), 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := eval.Evaluate(scenario, eval.Fresh(func() simnet.Coordinator { return baselines.SP{} }), 3, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  DistDRL  success %s, avg delay %5.1f ms\n", drl.Succ, drl.Delay.Mean)
	fmt.Printf("  GCASP    success %s, avg delay %5.1f ms\n", gcasp.Succ, gcasp.Delay.Mean)
	fmt.Printf("  SP       success %s, avg delay %5.1f ms\n", sp.Succ, sp.Delay.Mean)
	fmt.Println("\nThe curve above shows the agent learning coordination from scratch.")
	fmt.Println("This demo budget (120 episodes, one seed) stops well before")
	fmt.Println("convergence; the full budget in cmd/experiments (600+ episodes,")
	fmt.Println("multiple seeds) reaches and beats the heuristics — see EXPERIMENTS.md.")
}
