// Quickstart: build a small substrate network and a two-component
// service, stream Poisson flows through it, and compare two distributed
// coordination algorithms on the same scenario.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distcoord/internal/baselines"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

func main() {
	// A five-node metro network: two access nodes (0, 1), two compute
	// sites (2, 3), and an egress gateway (4).
	g := graph.New("metro")
	for i := 0; i < 5; i++ {
		g.AddNode(fmt.Sprintf("node-%d", i), 0, float64(i))
	}
	links := []struct {
		a, b  graph.NodeID
		delay float64
	}{
		{0, 2, 1}, {0, 3, 2}, {1, 2, 2}, {1, 3, 1}, {2, 4, 1}, {3, 4, 1}, {2, 3, 1},
	}
	for _, l := range links {
		if err := g.AddLink(l.a, l.b, l.delay); err != nil {
			log.Fatal(err)
		}
	}
	// Access nodes have no compute; the two compute sites differ in size.
	caps := []float64{0, 0, 3, 1.5, 0.5}
	for v, c := range caps {
		g.SetNodeCapacity(graph.NodeID(v), c)
	}
	for i := 0; i < g.NumLinks(); i++ {
		g.SetLinkCapacity(i, 3)
	}

	// A service chain of a firewall and a transcoder.
	service := &simnet.Service{
		Name: "stream",
		Chain: []*simnet.Component{
			{Name: "firewall", ProcDelay: 2, StartupDelay: 1, IdleTimeout: 50, ResourcePerRate: 0.5},
			{Name: "transcoder", ProcDelay: 6, StartupDelay: 2, IdleTimeout: 50, ResourcePerRate: 1},
		},
	}

	for _, algo := range []simnet.Coordinator{baselines.SP{}, baselines.GCASP{}} {
		rng := rand.New(rand.NewSource(42))
		sim, err := simnet.New(simnet.Config{
			Graph:   g,
			Service: service,
			Ingresses: []simnet.Ingress{
				{Node: 0, Arrivals: traffic.NewPoisson(6, rng)},
				{Node: 1, Arrivals: traffic.NewPoisson(6, rng)},
			},
			Egress:      4,
			Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 60},
			Horizon:     5000,
			Coordinator: algo,
		})
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %4d/%4d flows successful (%.1f%%), avg end-to-end delay %.1f ms\n",
			algo.Name(), m.Succeeded, m.Arrived, 100*m.SuccessRatio(), m.AvgDelay())
		for cause, n := range m.DropsBy {
			fmt.Printf("       dropped %d flows: %s\n", n, cause)
		}
	}
}
