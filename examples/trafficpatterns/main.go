// Trafficpatterns: compare the hand-written coordination algorithms
// across the paper's four arrival patterns (fixed, Poisson, MMPP, and
// trace-driven; Sec. V-B) on the Abilene base scenario. It shows the
// architectural effect Fig. 6 isolates: the centralized coordinator's
// periodically updated rules handle steady traffic well but degrade as
// arrivals become bursty, while fully distributed per-flow decisions
// (GCASP here, the distributed DRL agent in the full experiments) react
// to every flow individually.
//
// Run with: go run ./examples/trafficpatterns
package main

import (
	"fmt"
	"log"

	"distcoord/internal/baselines"
	"distcoord/internal/eval"
	"distcoord/internal/simnet"
)

func main() {
	patterns := eval.TrafficPatterns()
	algos := []eval.CoordinatorFactory{
		func(*eval.Instance, int64) (simnet.Coordinator, error) { return baselines.NewCentral(100), nil },
		eval.Fresh(func() simnet.Coordinator { return baselines.GCASP{} }),
		eval.Fresh(func() simnet.Coordinator { return baselines.SP{} }),
	}
	names := []string{"Central", "GCASP", "SP"}

	fmt.Printf("%-18s", "pattern")
	for _, n := range names {
		fmt.Printf(" %14s", n)
	}
	fmt.Println()

	for _, key := range []string{"a", "b", "c", "d"} {
		spec := patterns[key]
		s := eval.Base()
		s.Traffic = spec
		s.NumIngresses = 3
		s.Horizon = 3000

		fmt.Printf("%-18s", spec.Label)
		for i, mk := range algos {
			o, err := eval.Evaluate(s, mk, 3, 0)
			if err != nil {
				log.Fatalf("%s on %s: %v", names[i], spec.Label, err)
			}
			fmt.Printf(" %14s", o.Succ)
		}
		fmt.Println()
	}
}
