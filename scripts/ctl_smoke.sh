#!/bin/sh
# ctl_smoke.sh: end-to-end smoke test of the experiment-controller tier.
#
# Builds cmd/ctl, starts it on a free port over a throwaway store, then:
#
#   1. submits a 2-point sweep (algo axis: sp, gcasp) over HTTP and
#      waits for it to finish via GET /runs/{id} polling;
#   2. asserts the run manifest is content-addressed: every artifact
#      hash resolves through GET /blobs/{hash} to bytes that re-hash to
#      the same value;
#   3. POSTs /runs/{id}/recalc and asserts the re-render is
#      byte-identical to the original (hash-compared, no re-simulation);
#   4. asserts the observability endpoints (/metrics) share the
#      controller's listener, and the events stream yields a terminal
#      status;
#   5. SIGTERMs the daemon and asserts a clean exit.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
ctl_pid=""
cleanup() {
    [ -n "$ctl_pid" ] && kill "$ctl_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/ctl" ./cmd/ctl

"$workdir/ctl" -listen 127.0.0.1:0 -store "$workdir/store" -git-rev smoke-rev \
    >"$workdir/ctl.out" 2>"$workdir/ctl.err" &
ctl_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ctl listening on //p' "$workdir/ctl.out" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$ctl_pid" 2>/dev/null; then
        echo "ctl-smoke: ctl exited before announcing its listener" >&2
        cat "$workdir/ctl.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "ctl-smoke: ctl never announced its listener" >&2
    exit 1
fi
echo "ctl-smoke: controller up at $addr"

# Submit a 2-point sweep.
submit=$(curl -sf -X POST "http://$addr/sweeps" -d '{
    "name": "smoke-sweep",
    "base": {"algo": "sp", "seeds": 2, "horizon": 300},
    "axes": [{"param": "algo", "values": ["sp", "gcasp"]}]
}')
id=$(echo "$submit" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n1)
if [ -z "$id" ]; then
    echo "ctl-smoke: submission returned no run id: $submit" >&2
    exit 1
fi
echo "ctl-smoke: submitted sweep $id"

# Wait for a terminal status.
status=""
for _ in $(seq 1 600); do
    manifest=$(curl -sf "http://$addr/runs/$id")
    status=$(echo "$manifest" | sed -n 's/.*"status": "\([a-z]*\)".*/\1/p' | head -n1)
    case $status in
    done | failed | canceled) break ;;
    esac
    sleep 0.1
done
if [ "$status" != "done" ]; then
    echo "ctl-smoke: run $id ended as '$status', want done:" >&2
    curl -s "http://$addr/runs/$id" >&2
    exit 1
fi
echo "ctl-smoke: run $id done"
echo "$manifest" >"$workdir/manifest.json"

if ! grep -q '"git_rev": "smoke-rev"' "$workdir/manifest.json"; then
    echo "ctl-smoke: manifest lacks the daemon's git rev" >&2
    cat "$workdir/manifest.json" >&2
    exit 1
fi

# Every manifest artifact must resolve through the content-addressed
# blob route to bytes that re-hash to the recorded hash.
hashes=$(sed -n 's/.*"hash": "\([0-9a-f]\{64\}\)".*/\1/p' "$workdir/manifest.json" | sort -u)
if [ -z "$hashes" ]; then
    echo "ctl-smoke: manifest records no artifact hashes" >&2
    cat "$workdir/manifest.json" >&2
    exit 1
fi
n=0
for h in $hashes; do
    curl -sf "http://$addr/blobs/$h" >"$workdir/blob"
    got=$(sha256sum "$workdir/blob" | cut -d' ' -f1)
    if [ "$got" != "$h" ]; then
        echo "ctl-smoke: blob $h re-hashes to $got — store is not content-addressed" >&2
        exit 1
    fi
    n=$((n + 1))
done
echo "ctl-smoke: $n artifact blobs verified content-addressed"

# The rendered figure must carry both sweep points.
curl -sf "http://$addr/runs/$id/artifacts/figure.md" >"$workdir/figure.md"
for want in "algo=sp" "algo=gcasp"; do
    if ! grep -q "$want" "$workdir/figure.md"; then
        echo "ctl-smoke: figure.md lacks sweep point $want" >&2
        cat "$workdir/figure.md" >&2
        exit 1
    fi
done

# Recalc: the re-render from the stored grid log must be byte-identical
# to the original artifacts (the response hash-compares them).
recalc=$(curl -sf -X POST "http://$addr/runs/$id/recalc")
if ! echo "$recalc" | grep -q '"identical": true'; then
    echo "ctl-smoke: recalc is not byte-identical to the original render:" >&2
    echo "$recalc" >&2
    exit 1
fi
if echo "$recalc" | grep -q '"identical": false'; then
    echo "ctl-smoke: recalc reports a diverging artifact:" >&2
    echo "$recalc" >&2
    exit 1
fi
curl -sf "http://$addr/runs/$id/artifacts/figure.md" >"$workdir/figure_recalc.md"
if ! cmp -s "$workdir/figure.md" "$workdir/figure_recalc.md"; then
    echo "ctl-smoke: figure.md changed across recalc" >&2
    exit 1
fi
echo "ctl-smoke: recalc byte-identical (hash-compared + cmp)"

# The observability tier shares the listener, and a late events stream
# still yields the terminal status.
if ! curl -sf "http://$addr/run" | grep -q '"binary": "ctl"'; then
    echo "ctl-smoke: observability /run is not served on the controller listener" >&2
    exit 1
fi
curl -sf -o /dev/null "http://$addr/metrics" || {
    echo "ctl-smoke: /metrics is not served on the controller listener" >&2
    exit 1
}
if ! curl -sf "http://$addr/runs/$id/events" | grep -q '"status":"done"'; then
    echo "ctl-smoke: events stream lacks the terminal status" >&2
    exit 1
fi

# Clean shutdown on SIGTERM.
kill -TERM "$ctl_pid"
for _ in $(seq 1 50); do
    kill -0 "$ctl_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$ctl_pid" 2>/dev/null; then
    echo "ctl-smoke: ctl did not exit within 5s of SIGTERM" >&2
    exit 1
fi
wait "$ctl_pid" 2>/dev/null || true
ctl_pid=""

echo "ctl-smoke: OK"
