#!/bin/sh
# obs_smoke.sh: end-to-end smoke test of the live observability endpoint.
#
# Runs a short coordsim with -obs-addr on a free port and -obs-wait so
# the endpoint keeps serving the final state, extracts the bound address
# from stderr, and curls /metrics, /snapshot, and /run. Fails if any
# endpoint does not answer or /metrics lacks the live flow counters.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
sim_pid=""
cleanup() {
    [ -n "$sim_pid" ] && kill "$sim_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$workdir/coordsim" ./cmd/coordsim

"$workdir/coordsim" -algo sp -pattern fixed -horizon 500 \
    -obs-addr 127.0.0.1:0 -obs-wait 60s \
    >"$workdir/stdout" 2>"$workdir/stderr" &
sim_pid=$!

# Wait for the announced address: "observability listening on http://ADDR/ ...".
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's#^observability listening on http://\([^/]*\)/.*#\1#p' "$workdir/stderr" | head -n1)
    [ -n "$addr" ] && break
    if ! kill -0 "$sim_pid" 2>/dev/null; then
        echo "obs-smoke: coordsim exited before announcing the endpoint" >&2
        cat "$workdir/stderr" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs-smoke: no observability address announced" >&2
    cat "$workdir/stderr" >&2
    exit 1
fi
echo "obs-smoke: endpoint at http://$addr/"

# Wait for the -obs-wait hold ("observability: serving final state ...")
# so every counter of the finished run is in place before scraping.
for _ in $(seq 1 300); do
    grep -q "serving final state" "$workdir/stderr" && break
    if ! kill -0 "$sim_pid" 2>/dev/null; then
        echo "obs-smoke: coordsim exited before the -obs-wait hold" >&2
        cat "$workdir/stderr" >&2
        exit 1
    fi
    sleep 0.1
done

fetch() {
    curl -fsS --max-time 5 "http://$addr$1"
}
fetch /metrics >"$workdir/metrics"
fetch /snapshot >"$workdir/snapshot"
fetch /run >"$workdir/run"

grep -q '^# TYPE flow_traced_completed counter$' "$workdir/metrics" || {
    echo "obs-smoke: /metrics lacks flow_traced_completed:" >&2
    cat "$workdir/metrics" >&2
    exit 1
}
grep -q '"counters"' "$workdir/snapshot" || {
    echo "obs-smoke: /snapshot lacks counters:" >&2
    cat "$workdir/snapshot" >&2
    exit 1
}
grep -q '"binary": "coordsim"' "$workdir/run" || {
    echo "obs-smoke: /run lacks binary name:" >&2
    cat "$workdir/run" >&2
    exit 1
}

kill "$sim_pid" 2>/dev/null || true
wait "$sim_pid" 2>/dev/null || true
sim_pid=""
echo "obs-smoke: ok (/metrics /snapshot /run all served)"
