#!/bin/sh
# agent_smoke.sh: end-to-end smoke test of the networked agent tier.
#
# Builds coordsim and agentd, trains a tiny throwaway policy, then:
#
#   1. runs the scenario in-process and through a fleet of 3 real agentd
#      processes (same seed), asserting byte-identical -metrics-out JSON
#      (the equivalence oracle) and nonzero decision-RTT samples;
#   2. reruns with an agent-kill chaos schedule that terminates one
#      agentd process mid-run and restarts it, asserting the recovery
#      report attributes a dip to the agent-kill fault;
#   3. reruns with observability on both tiers: agentd serves its own
#      -obs-addr endpoint (agentd_* decision telemetry) and the driver
#      serves /fleet + per-agent agent_<slot>_* series and /timeseries;
#   4. SIGTERMs a -spawn-agents run mid-flight and asserts the driver
#      reaps every spawned agentd — no orphan daemons survive either a
#      clean exit or an interrupt.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
agent_pids=""
cleanup() {
    for pid in $agent_pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

# assert_no_orphans fails the smoke if any agentd spawned from this
# run's private binary is still alive. Spawned daemons are not in
# $agent_pids, so a real leak survives the cleanup trap and this check
# is the only thing that catches it.
assert_no_orphans() {
    leftover=$(ps -eo pid=,args= | awk -v bin="$workdir/agentd" '$2 == bin')
    if [ -n "$leftover" ]; then
        echo "agent-smoke: ORPHANED agentd processes after $1:" >&2
        echo "$leftover" >&2
        exit 1
    fi
}

go build -o "$workdir/coordsim" ./cmd/coordsim
go build -o "$workdir/agentd" ./cmd/agentd

SEED=3
HORIZON=400

# Train a tiny policy, save the checkpoint, and record the in-process
# baseline metrics in one go.
echo "agent-smoke: training throwaway policy + in-process baseline..."
"$workdir/coordsim" -algo drl -train-episodes 2 -seed "$SEED" -horizon "$HORIZON" \
    -save-model "$workdir/model.bin" -metrics-out "$workdir/inproc.json" \
    >"$workdir/inproc.out" 2>"$workdir/inproc.err"

# Spawn 3 agentd processes on free ports and collect their addresses.
# Agent 1 also gets its own observability endpoint so the fleet
# telemetry phase below can scrape a real daemon's /metrics.
agents=""
for i in 1 2 3; do
    obsflag=""
    [ "$i" = 1 ] && obsflag="-obs-addr 127.0.0.1:0"
    # shellcheck disable=SC2086 # obsflag is two words on purpose
    "$workdir/agentd" -listen 127.0.0.1:0 -model "$workdir/model.bin" -quiet $obsflag \
        >"$workdir/agent$i.out" 2>"$workdir/agent$i.err" &
    pid=$!
    agent_pids="$agent_pids $pid"
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^agentd listening on //p' "$workdir/agent$i.out" | head -n1)
        [ -n "$addr" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "agent-smoke: agentd $i exited before announcing its listener" >&2
            cat "$workdir/agent$i.err" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "agent-smoke: agentd $i never announced its listener" >&2
        exit 1
    fi
    agents="${agents:+$agents,}$addr"
done
echo "agent-smoke: fleet up at $agents"

# The same run, every decision crossing a socket (-model-push exercises
# the checkpoint deployment path even though the fleet already has it).
"$workdir/coordsim" -algo drl -model "$workdir/model.bin" -seed "$SEED" -horizon "$HORIZON" \
    -agents "$agents" -model-push -metrics-out "$workdir/remote.json" \
    >"$workdir/remote.out" 2>"$workdir/remote.err"

md5() { md5sum "$1" 2>/dev/null | cut -d' ' -f1 || md5 -q "$1"; }
if [ "$(md5 "$workdir/inproc.json")" != "$(md5 "$workdir/remote.json")" ]; then
    echo "agent-smoke: EQUIVALENCE VIOLATED — remote metrics differ from in-process:" >&2
    diff "$workdir/inproc.json" "$workdir/remote.json" >&2 || true
    exit 1
fi
echo "agent-smoke: remote metrics identical to in-process (md5 $(md5 "$workdir/remote.json"))"

samples=$(sed -n 's/^decision RTT:.*(\([0-9]*\) samples)$/\1/p' "$workdir/remote.out")
if [ -z "$samples" ] || [ "$samples" -eq 0 ]; then
    echo "agent-smoke: no decision RTT samples recorded over the socket" >&2
    cat "$workdir/remote.out" >&2
    exit 1
fi
echo "agent-smoke: $samples decision RTT samples over sockets"

failed=$(sed -n 's/^remote fleet:.*(\([0-9]*\) failed)$/\1/p' "$workdir/remote.out")
if [ "${failed:-0}" -ne 0 ]; then
    echo "agent-smoke: healthy fleet reported $failed failed decisions" >&2
    exit 1
fi

# Fleet telemetry phase: rerun against the same fleet with the driver's
# observability endpoint live, then scrape both tiers while -obs-wait
# holds the final state (the pool — and its agent.<slot>.* series — is
# only closed after the hold).
echo "agent-smoke: fleet telemetry run..."
agent_obs=""
for _ in $(seq 1 100); do
    agent_obs=$(sed -n 's#^observability listening on http://\([^/]*\)/.*#\1#p' "$workdir/agent1.err" | head -n1)
    [ -n "$agent_obs" ] && break
    sleep 0.1
done
if [ -z "$agent_obs" ]; then
    echo "agent-smoke: agentd 1 never announced its observability endpoint" >&2
    cat "$workdir/agent1.err" >&2
    exit 1
fi

"$workdir/coordsim" -algo drl -model "$workdir/model.bin" -seed "$SEED" -horizon "$HORIZON" \
    -agents "$agents" -obs-addr 127.0.0.1:0 -obs-wait 60s \
    >"$workdir/obs.out" 2>"$workdir/obs.err" &
obs_pid=$!
agent_pids="$agent_pids $obs_pid"
for _ in $(seq 1 300); do
    grep -q "serving final state" "$workdir/obs.err" && break
    if ! kill -0 "$obs_pid" 2>/dev/null; then
        echo "agent-smoke: telemetry run exited before the -obs-wait hold" >&2
        cat "$workdir/obs.err" >&2
        exit 1
    fi
    sleep 0.1
done
coord_obs=$(sed -n 's#^observability listening on http://\([^/]*\)/.*#\1#p' "$workdir/obs.err" | head -n1)
if [ -z "$coord_obs" ]; then
    echo "agent-smoke: driver never announced its observability endpoint" >&2
    cat "$workdir/obs.err" >&2
    exit 1
fi

fetch() { curl -fsS --max-time 5 "$1"; }

# The daemon's own endpoint serves its server-side decision telemetry.
agent_metrics=$(fetch "http://$agent_obs/metrics")
for series in agentd_decisions agentd_server_us agentd_infer_us; do
    if ! echo "$agent_metrics" | grep -q "^$series"; then
        echo "agent-smoke: agentd /metrics lacks $series:" >&2
        echo "$agent_metrics" | head -30 >&2
        exit 1
    fi
done
echo "agent-smoke: agentd /metrics serves agentd_* decision telemetry"

# The driver's endpoint aggregates per-agent fleet series and /fleet.
coord_metrics=$(fetch "http://$coord_obs/metrics")
for series in agent_0_rtt_us agent_1_decides agent_2_up rpc_decide_rtt_us; do
    if ! echo "$coord_metrics" | grep -q "^$series"; then
        echo "agent-smoke: driver /metrics lacks per-agent series $series:" >&2
        echo "$coord_metrics" | head -30 >&2
        exit 1
    fi
done
fleet=$(fetch "http://$coord_obs/fleet")
for want in '"num_agents": 3' '"slot": 2' '"model_hash"' '"rtt_p50_us"'; do
    if ! echo "$fleet" | grep -q "$want"; then
        echo "agent-smoke: /fleet lacks $want:" >&2
        echo "$fleet" >&2
        exit 1
    fi
done
if ! fetch "http://$coord_obs/timeseries" | grep -q '"agent.0.decides"'; then
    echo "agent-smoke: /timeseries lacks the sampled agent.0.decides series" >&2
    exit 1
fi
echo "agent-smoke: driver /metrics, /fleet and /timeseries serve the fleet telemetry plane"
kill "$obs_pid" 2>/dev/null || true
wait "$obs_pid" 2>/dev/null || true

for pid in $agent_pids; do
    kill "$pid" 2>/dev/null || true
done
agent_pids=""

# Chaos phase: the driver spawns its own fleet, the agent-kill schedule
# terminates agentd 0 mid-run (a real SIGKILL), and the recovery report
# must attribute a service dip to the fault.
echo "agent-smoke: agent-kill chaos run..."
"$workdir/coordsim" -algo drl -model "$workdir/model.bin" -seed "$SEED" -horizon 1000 \
    -spawn-agents 3 -agentd-bin "$workdir/agentd" \
    -faults "agent-kill:start=300,duration=400,agent=0" \
    -metrics-out "$workdir/chaos.json" \
    >"$workdir/chaos.out" 2>"$workdir/chaos.err"

if ! grep -q "chaos: killing agentd 0" "$workdir/chaos.err"; then
    echo "agent-smoke: the agent-kill fault never killed the agentd process" >&2
    cat "$workdir/chaos.err" >&2
    exit 1
fi
if ! grep -q '"kind": "agent-kill"' "$workdir/chaos.json"; then
    echo "agent-smoke: recovery report lacks the agent-kill fault" >&2
    cat "$workdir/chaos.json" >&2
    exit 1
fi
if ! grep -q '"drops": [1-9]' "$workdir/chaos.json"; then
    echo "agent-smoke: recovery report attributes no drops to the kill" >&2
    cat "$workdir/chaos.json" >&2
    exit 1
fi
echo "agent-smoke: recovery report sees the agent-kill dip:"
sed -n 's/^  t=/agent-smoke:   t=/p' "$workdir/chaos.out"
assert_no_orphans "the chaos run's clean exit"

# Interrupt phase: SIGTERM the driver while its spawned fleet is live;
# the signal reaper must kill and reap every agentd before exiting.
echo "agent-smoke: interrupt-reaping run..."
"$workdir/coordsim" -algo drl -model "$workdir/model.bin" -seed "$SEED" -horizon 100000 \
    -spawn-agents 2 -agentd-bin "$workdir/agentd" \
    >"$workdir/interrupt.out" 2>"$workdir/interrupt.err" &
sim_pid=$!
spawned=0
for _ in $(seq 1 200); do
    spawned=$(grep -c '^spawned agentd' "$workdir/interrupt.err" || true)
    [ "$spawned" -ge 2 ] && break
    if ! kill -0 "$sim_pid" 2>/dev/null; then
        echo "agent-smoke: interrupt run exited before spawning its fleet" >&2
        cat "$workdir/interrupt.err" >&2
        exit 1
    fi
    sleep 0.1
done
if [ "$spawned" -lt 2 ]; then
    echo "agent-smoke: interrupt run never spawned its fleet" >&2
    cat "$workdir/interrupt.err" >&2
    exit 1
fi
kill -TERM "$sim_pid"
wait "$sim_pid" 2>/dev/null || true
assert_no_orphans "SIGTERM mid-run"
echo "agent-smoke: SIGTERM mid-run left no orphan agentd"

echo "agent-smoke: OK"
