#!/bin/sh
# test_bench_check.sh — tests for bench_check.sh's gate semantics,
# pinned against fixture benchmark files (no benchmarks are run).
#
# The regression this guards: bench_check.sh used to pass vacuously
# when a committed BENCH_*.json baseline was missing — deleting a
# baseline silently disabled the gate. The gate now distinguishes
# REGRESSED (exit 1) from NO BASELINE (exit 2), and only an explicit
# "-" argument skips a gate.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Fixtures: a healthy baseline, a matching fresh run, a 2x-regressed
# fresh run, and healthy scale/rpc files.
cat >"$tmp/base.json" <<'EOF'
{"record":"bench","bench":"decide","variant":"stochastic","ns_per_op":100}
{"record":"bench","bench":"decide","variant":"argmax","ns_per_op":100}
EOF
cp "$tmp/base.json" "$tmp/fresh_ok.json"
cat >"$tmp/fresh_bad.json" <<'EOF'
{"record":"bench","bench":"decide","variant":"stochastic","ns_per_op":200}
{"record":"bench","bench":"decide","variant":"argmax","ns_per_op":100}
EOF
cat >"$tmp/scale.json" <<'EOF'
{"record":"scale","nodes":100,"batch":8,"shards":1,"flows_per_sec":1000,"speedup":1.00,"deterministic":true,"arrived":500}
{"record":"scale","nodes":100,"batch":8,"shards":2,"flows_per_sec":1500,"speedup":1.50,"deterministic":true,"arrived":500}
EOF
cat >"$tmp/rpc.json" <<'EOF'
{"record":"rpc","mode":"inproc","rtt_p50_us":60.0,"equal_metrics":true}
{"record":"rpc","mode":"socket","rtt_p50_us":120.5,"equal_metrics":true}
EOF
cat >"$tmp/rpc_diverged.json" <<'EOF'
{"record":"rpc","mode":"socket","rtt_p50_us":120.5,"equal_metrics":false}
EOF
cat >"$tmp/rpc_fresh_ok.json" <<'EOF'
{"record":"rpc","mode":"inproc","rtt_p50_us":61.0,"equal_metrics":true}
{"record":"rpc","mode":"socket","rtt_p50_us":123.0,"equal_metrics":true}
EOF
cat >"$tmp/rpc_fresh_slow.json" <<'EOF'
{"record":"rpc","mode":"inproc","rtt_p50_us":61.0,"equal_metrics":true}
{"record":"rpc","mode":"socket","rtt_p50_us":140.0,"equal_metrics":true}
EOF
: >"$tmp/empty.json"

# check NAME WANT_EXIT WANT_SUBSTR ARGS... runs bench_check.sh with
# ARGS and asserts its exit code and that its output mentions
# WANT_SUBSTR.
check() {
	name=$1 want=$2 substr=$3
	shift 3
	set +e
	out=$(sh scripts/bench_check.sh "$@" 2>&1)
	got=$?
	set -e
	if [ "$got" -ne "$want" ]; then
		echo "test_bench_check: $name: exit $got, want $want" >&2
		echo "$out" >&2
		exit 1
	fi
	case $out in
	*"$substr"*) ;;
	*)
		echo "test_bench_check: $name: output lacks '$substr':" >&2
		echo "$out" >&2
		exit 1
		;;
	esac
	echo "test_bench_check: $name ok (exit $got)"
}

check "all gates pass" 0 "all gates passed" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json"

check "decide regression is exit 1" 1 "REGRESSED" \
	"$tmp/base.json" "$tmp/fresh_bad.json" "$tmp/scale.json" "$tmp/rpc.json"

check "missing decide baseline is exit 2, not a pass" 2 "NO BASELINE" \
	"$tmp/nonexistent.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json"

check "unparsable decide baseline is exit 2" 2 "NO BASELINE" \
	"$tmp/empty.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json"

check "missing scale baseline is exit 2, not a silent skip" 2 "NO BASELINE" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/nonexistent.json" "$tmp/rpc.json"

check "missing rpc baseline is exit 2, not a silent skip" 2 "NO BASELINE" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/nonexistent.json"

check "unparsable scale baseline is exit 2" 2 "NO BASELINE" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/empty.json" "$tmp/rpc.json"

check "explicit '-' skips gates deliberately" 0 "skipped explicitly" \
	"-" "$tmp/fresh_ok.json" "-" "-"

check "regression outranks missing baseline" 1 "REGRESSED" \
	"$tmp/base.json" "$tmp/fresh_bad.json" "$tmp/nonexistent.json" "$tmp/rpc.json"

check "rpc equivalence divergence is exit 1" 1 "diverged" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc_diverged.json"

check "fresh rpc within +5% passes" 0 "rpc/socket p50 ok" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json" "$tmp/rpc_fresh_ok.json"

check "fresh rpc p50 beyond +5% is exit 1" 1 "rpc/socket p50 REGRESSED" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json" "$tmp/rpc_fresh_slow.json"

check "missing fresh rpc file is exit 2" 2 "NO BASELINE" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "$tmp/rpc.json" "$tmp/nonexistent.json"

check "fresh rpc gate needs the committed baseline" 2 "NO BASELINE" \
	"$tmp/base.json" "$tmp/fresh_ok.json" "$tmp/scale.json" "-" "$tmp/rpc_fresh_ok.json"

echo "test_bench_check: OK"
