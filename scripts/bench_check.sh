#!/bin/sh
# bench_check.sh — regression gate on the sequential decision hot path.
#
# Compares the decide/stochastic and decide/argmax ns/op of a fresh
# cmd/bench run against the committed BENCH_inference.json baseline and
# fails when either regresses by more than 25%. Scale-harness numbers
# (BENCH_scale.json) are recorded but deliberately not gated: episode
# throughput varies too much across runner hardware for a meaningful
# cross-machine threshold, while the per-decision hot path is stable
# enough to bound.
#
# Usage: scripts/bench_check.sh [baseline.json] [fresh.json] [scale.json] [rpc.json] [rpc_fresh.json]
#   baseline.json  defaults to the committed BENCH_inference.json
#   fresh.json     defaults to running `go run ./cmd/bench` to a temp file
#   scale.json     defaults to BENCH_scale.json; its flows/sec series is
#                  summarized and sanity-checked for parseability
#   rpc.json       defaults to BENCH_rpc.json; its RTT p50 must be finite
#                  and > 0 for every record and no record may carry
#                  "equal_metrics":false
#   rpc_fresh.json optional: a freshly measured rpc JSONL (make bench-rpc
#                  to another path). When given, each mode's RTT p50 is
#                  gated at +5% of the committed rpc.json baseline — the
#                  tracing-plumbed decide path must not tax the untraced
#                  round trip. Omitted by default because a fresh RPC
#                  measurement needs a spun-up fleet.
#
# Pass "-" for baseline.json, scale.json, or rpc.json to skip that gate
# explicitly. A missing or unparsable gate input is NOT a skip:
#
# Exit codes:
#   0  every gate passed
#   1  REGRESSED: a gated number regressed or an oracle recorded an
#      inconsistency
#   2  NO BASELINE: a gate input is missing or unparsable — a setup
#      problem, never a clean pass (previously these paths passed
#      vacuously and a deleted baseline disabled the gate silently)
set -eu

cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_inference.json}
FRESH=${2:-}
SCALE=${3:-BENCH_scale.json}
RPC=${4:-BENCH_rpc.json}
RPC_FRESH=${5:-}
LIMIT=125     # fresh ns/op may be at most this percent of baseline
RPC_LIMIT=105 # fresh rpc p50 may be at most this percent of baseline

fail=0
missing=0
no_baseline() {
	echo "bench_check: NO BASELINE: $*" >&2
	missing=1
}

# Extracts ns_per_op of the decide record with the given variant from a
# JSONL benchmark file.
ns_per_op() {
	awk -v want="$2" '
		/"record":"bench"/ && /"bench":"decide"/ {
			if (index($0, "\"variant\":\"" want "\"") == 0) next
			if (match($0, /"ns_per_op":[0-9.eE+-]+/)) {
				print substr($0, RSTART + 12, RLENGTH - 12)
				exit
			}
		}' "$1"
}

# --- decide hot-path gate -------------------------------------------------
if [ "$BASELINE" = "-" ]; then
	echo "bench_check: decide gate skipped explicitly (baseline '-')"
elif [ ! -f "$BASELINE" ]; then
	no_baseline "$BASELINE not found (regenerate with 'make bench' and commit it, or pass '-' to skip the decide gate deliberately)"
else
	if [ -z "$FRESH" ]; then
		FRESH=$(mktemp /tmp/bench_check.XXXXXX.json)
		trap 'rm -f "$FRESH"' EXIT
		echo "bench_check: measuring fresh decide hot path..."
		go run ./cmd/bench -out "$FRESH" >/dev/null
	fi
	for variant in stochastic argmax; do
		base=$(ns_per_op "$BASELINE" "$variant")
		cur=$(ns_per_op "$FRESH" "$variant")
		if [ -z "$base" ]; then
			no_baseline "$BASELINE has no decide/$variant record (corrupt or truncated baseline?)"
			continue
		fi
		if [ -z "$cur" ]; then
			echo "bench_check: fresh run $FRESH produced no decide/$variant record" >&2
			fail=1
			continue
		fi
		pct=$(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%+.1f", (c - b) / b * 100 }')
		if [ "$(awk -v b="$base" -v c="$cur" -v lim="$LIMIT" 'BEGIN { print (c <= b * lim / 100) ? 1 : 0 }')" = 1 ]; then
			echo "bench_check: decide/$variant ok: $cur ns/op vs baseline $base ($pct%)"
		else
			echo "bench_check: decide/$variant REGRESSED: $cur ns/op vs baseline $base ($pct%, limit +25%)" >&2
			fail=1
		fi
	done
fi

# --- scale series ---------------------------------------------------------
# Summarized for the log, not regression-gated (episode throughput is
# too machine-dependent for a cross-runner threshold) — but a missing or
# unparseable file is an error, and so is any sharded record whose
# determinism self-check failed or whose flow count diverges from the
# single-shard engine on the identical workload.
if [ "$SCALE" = "-" ]; then
	echo "bench_check: scale gate skipped explicitly (scale '-')"
elif [ ! -f "$SCALE" ]; then
	no_baseline "$SCALE not found (regenerate with 'make bench-scale' and commit it, or pass '-' to skip the scale gate deliberately)"
else
	rows=$(awk '
		/"record":"scale"/ {
			n = b = k = f = sp = ""
			if (match($0, /"nodes":[0-9]+/)) n = substr($0, RSTART + 8, RLENGTH - 8)
			if (match($0, /"batch":[0-9]+/)) b = substr($0, RSTART + 8, RLENGTH - 8)
			if (match($0, /"shards":[0-9]+/)) k = substr($0, RSTART + 9, RLENGTH - 9)
			if (match($0, /"flows_per_sec":[0-9.eE+-]+/)) f = substr($0, RSTART + 16, RLENGTH - 16)
			if (match($0, /"speedup":[0-9.eE+-]+/)) sp = substr($0, RSTART + 10, RLENGTH - 10)
			if (n != "" && b != "" && f != "")
				printf "bench_check: scale nodes=%-5s batch=%-3s shards=%-2s %10.0f flows/sec %6.2fx\n", n, b, k, f, sp
		}' "$SCALE")
	if [ -z "$rows" ]; then
		no_baseline "$SCALE has no parseable scale records"
	else
		echo "$rows"
	fi
	if grep -q '"deterministic":false' "$SCALE"; then
		echo "bench_check: $SCALE contains a sharded run that failed its determinism self-check" >&2
		fail=1
	fi
	# The shard sweep runs one fixed workload at every shard count: all
	# its records (the ones carrying a determinism verdict) must agree on
	# the arrived-flow count, or the shards dropped or duplicated flows.
	shard_arrived=$(awk '
		/"record":"scale"/ && /"deterministic":/ {
			if (match($0, /"arrived":[0-9]+/)) print substr($0, RSTART + 10, RLENGTH - 10)
		}' "$SCALE" | sort -u | wc -l)
	if [ "$shard_arrived" -gt 1 ]; then
		echo "bench_check: $SCALE shard sweep disagrees on arrived-flow counts across shard counts" >&2
		fail=1
	fi
fi

# --- decision-RTT sanity gates --------------------------------------------
# Every rpc record's p50 must be a finite, strictly positive number (a
# zero or NaN p50 means the histogram never saw a sample), and the
# in-run equivalence oracle must not have recorded a divergence.
if [ "$RPC" = "-" ]; then
	echo "bench_check: rpc gate skipped explicitly (rpc '-')"
elif [ ! -f "$RPC" ]; then
	no_baseline "$RPC not found (regenerate with 'make bench-rpc' and commit it, or pass '-' to skip the rpc gate deliberately)"
else
	rpc_rows=$(awk '
		/"record":"rpc"/ {
			mode = p50 = ""
			if (match($0, /"mode":"[a-z]+"/)) mode = substr($0, RSTART + 8, RLENGTH - 9)
			if (match($0, /"rtt_p50_us":[0-9.eE+-]+/)) p50 = substr($0, RSTART + 13, RLENGTH - 13)
			print mode, p50
		}' "$RPC")
	if [ -z "$rpc_rows" ]; then
		no_baseline "$RPC has no parseable rpc records"
	fi
	echo "$rpc_rows" | while read -r mode p50; do
		[ -z "$mode" ] && continue
		if [ -z "$p50" ] || [ "$(awk -v v="$p50" 'BEGIN { print (v > 0 && v < 1e12) ? 1 : 0 }')" != 1 ]; then
			echo "bench_check: $RPC rpc/$mode p50 '$p50' is not finite and > 0" >&2
			exit 1
		fi
		echo "bench_check: rpc $mode decision RTT p50 $p50 us ok"
	done || fail=1
	if grep -q '"equal_metrics":false' "$RPC"; then
		echo "bench_check: $RPC records a remote run that diverged from the in-process run" >&2
		fail=1
	fi
fi

# --- decision-RTT regression gate -----------------------------------------
# Only with an explicit fresh measurement: per-mode p50 vs the committed
# baseline, bounded at +5% so trace-context plumbing (always-on span
# stamping and server-side timing) cannot silently tax the untraced
# decide round trip.
rpc_p50() {
	awk -v want="$2" '
		/"record":"rpc"/ {
			if (index($0, "\"mode\":\"" want "\"") == 0) next
			if (match($0, /"rtt_p50_us":[0-9.eE+-]+/)) {
				print substr($0, RSTART + 13, RLENGTH - 13)
				exit
			}
		}' "$1"
}

if [ -z "$RPC_FRESH" ] || [ "$RPC_FRESH" = "-" ]; then
	: # gate not requested
elif [ ! -f "$RPC_FRESH" ]; then
	no_baseline "$RPC_FRESH not found (regenerate with 'make bench-rpc' to that path)"
elif [ "$RPC" = "-" ] || [ ! -f "$RPC" ]; then
	no_baseline "rpc p50 gate needs the committed $RPC baseline alongside $RPC_FRESH"
else
	gated=0
	for mode in inproc socket; do
		base=$(rpc_p50 "$RPC" "$mode")
		cur=$(rpc_p50 "$RPC_FRESH" "$mode")
		if [ -z "$base" ]; then
			no_baseline "$RPC has no rpc/$mode p50 record"
			continue
		fi
		if [ -z "$cur" ]; then
			echo "bench_check: $RPC_FRESH has no rpc/$mode p50 record" >&2
			fail=1
			continue
		fi
		gated=$((gated + 1))
		pct=$(awk -v b="$base" -v c="$cur" 'BEGIN { printf "%+.1f", (c - b) / b * 100 }')
		if [ "$(awk -v b="$base" -v c="$cur" -v lim="$RPC_LIMIT" 'BEGIN { print (c <= b * lim / 100) ? 1 : 0 }')" = 1 ]; then
			echo "bench_check: rpc/$mode p50 ok: $cur us vs baseline $base ($pct%)"
		else
			echo "bench_check: rpc/$mode p50 REGRESSED: $cur us vs baseline $base ($pct%, limit +5%)" >&2
			fail=1
		fi
	done
	if [ "$gated" -eq 0 ] && [ "$missing" -eq 0 ]; then
		no_baseline "rpc p50 gate matched no modes between $RPC and $RPC_FRESH"
	fi
fi

if [ "$fail" -ne 0 ]; then
	echo "bench_check: FAILED: REGRESSED (exit 1)" >&2
	exit 1
fi
if [ "$missing" -ne 0 ]; then
	echo "bench_check: FAILED: NO BASELINE (exit 2) — fix the baseline files; an absent baseline is not a passing gate" >&2
	exit 2
fi
echo "bench_check: all gates passed"
