module distcoord

go 1.22
