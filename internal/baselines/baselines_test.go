package baselines

import (
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// diamond builds the graph 0-1-3, 0-2-3 where the 0-1-3 route is the
// shortest path (delays 1+1) and 0-2-3 is longer (2+2).
func diamond(nodeCap, linkCap float64) *graph.Graph {
	g := graph.New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), nodeCap)
	}
	mustLink := func(a, b graph.NodeID, d float64) {
		if err := g.AddLink(a, b, d); err != nil {
			panic(err)
		}
	}
	mustLink(0, 1, 1)
	mustLink(1, 3, 1)
	mustLink(0, 2, 2)
	mustLink(2, 3, 2)
	for i := 0; i < g.NumLinks(); i++ {
		g.SetLinkCapacity(i, linkCap)
	}
	return g
}

func oneCompService(proc float64) *simnet.Service {
	return &simnet.Service{Name: "s", Chain: []*simnet.Component{
		{Name: "c1", ProcDelay: proc, IdleTimeout: 1000, ResourcePerRate: 1},
	}}
}

func runOn(t *testing.T, g *graph.Graph, svc *simnet.Service, c simnet.Coordinator,
	interval, horizon, deadline float64) *simnet.Metrics {
	t.Helper()
	sim, err := simnet.New(simnet.Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: interval}}},
		Egress:      3,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: deadline},
		Horizon:     horizon,
		Coordinator: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSPStaysOnShortestPath(t *testing.T) {
	g := diamond(0.5, 10) // nodes cannot process (capacity 0.5 < 1)...
	// ...except the egress where SP is forced to try; with capacity 0.5
	// everywhere every flow is dropped at the egress, never rerouted.
	m := runOn(t, g, oneCompService(5), SP{}, 10, 51, 100)
	if m.Succeeded != 0 {
		t.Errorf("succeeded = %d, want 0 (no capacity anywhere)", m.Succeeded)
	}
	if m.DropsBy[simnet.DropNodeCapacity] != m.Dropped {
		t.Errorf("drops = %v, want all node-capacity at the egress", m.DropsBy)
	}
}

func TestSPSucceedsWithCapacity(t *testing.T) {
	g := diamond(10, 10)
	m := runOn(t, g, oneCompService(5), SP{}, 10, 101, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success ratio = %f, want 1", m.SuccessRatio())
	}
	// SP processes at the ingress (capacity free) and forwards along
	// 0-1-3: delay 5 + 1 + 1 = 7.
	if m.AvgDelay() != 7 {
		t.Errorf("avg delay = %f, want 7 (shortest path)", m.AvgDelay())
	}
}

func TestGCASPReroutesAroundBottleneck(t *testing.T) {
	// Ingress cannot process (cap 0) but both middle nodes can; GCASP
	// must find a neighbor with compute.
	g := diamond(10, 10)
	g.SetNodeCapacity(0, 0)
	m := runOn(t, g, oneCompService(5), GCASP{}, 10, 101, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success ratio = %f, want 1 (reroute to neighbor with compute)", m.SuccessRatio())
	}
}

func TestGCASPOutperformsSPUnderOverload(t *testing.T) {
	// Node 1 (on the shortest path) has tiny capacity; node 2 has
	// plenty. SP drops everything the shortest path cannot carry; GCASP
	// reroutes.
	g := diamond(10, 10)
	g.SetNodeCapacity(0, 0)
	g.SetNodeCapacity(1, 1)
	g.SetNodeCapacity(3, 0)
	svc := oneCompService(5)
	// Flows every 2 steps each holding 1 capacity for 6 time steps: node
	// 1 alone sustains only a third of the load.
	sp := runOn(t, g, svc, SP{}, 2, 201, 100)
	gc := runOn(t, g, svc, GCASP{}, 2, 201, 100)
	if gc.SuccessRatio() <= sp.SuccessRatio() {
		t.Errorf("GCASP %.3f not better than SP %.3f under bottleneck", gc.SuccessRatio(), sp.SuccessRatio())
	}
}

func TestCentralFallsBackToSPBeforeRules(t *testing.T) {
	g := diamond(10, 10)
	c := NewCentral(1000) // never ticks meaningfully within the horizon
	m := runOn(t, g, oneCompService(5), c, 10, 101, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success ratio = %f, want 1 (SP fallback works here)", m.SuccessRatio())
	}
}

func TestCentralComputesRulesAfterTick(t *testing.T) {
	g := diamond(10, 10)
	c := NewCentral(50)
	m := runOn(t, g, oneCompService(5), c, 10, 301, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success ratio = %f, want 1", m.SuccessRatio())
	}
	if len(c.assign) == 0 {
		t.Error("no rules computed despite ticks and traffic")
	}
	nodes := c.assign[ruleKey{ingress: 0, service: "s"}]
	if len(nodes) != 1 {
		t.Fatalf("rule for ingress 0 = %v, want one node per component", nodes)
	}
	// The assigned node must lie on the shortest path 0-1-3.
	if nodes[0] != 0 && nodes[0] != 1 && nodes[0] != 3 {
		t.Errorf("assigned node %d not on shortest path", nodes[0])
	}
}

func TestCentralRulesAreStale(t *testing.T) {
	// The central coordinator plans for the observed average load; a
	// burst arriving right after a tick is coordinated with stale rules.
	// Construct: capacity only at node 1 sustains the average but not
	// the burst, while node 2 sits idle. GCASP (fresh local decisions)
	// must beat Central here.
	g := diamond(10, 10)
	g.SetNodeCapacity(0, 0)
	g.SetNodeCapacity(1, 2)
	g.SetNodeCapacity(3, 0)
	svc := oneCompService(5)

	run := func(c simnet.Coordinator, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		sim, err := simnet.New(simnet.Config{
			Graph:       g,
			Service:     svc,
			Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.NewPoisson(3, rng)}},
			Egress:      3,
			Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     2000,
			Coordinator: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.SuccessRatio()
	}
	var centralSum, gcaspSum float64
	const seeds = 5
	for s := int64(0); s < seeds; s++ {
		centralSum += run(NewCentral(100), s)
		gcaspSum += run(GCASP{}, s)
	}
	if gcaspSum/seeds <= centralSum/seeds {
		t.Errorf("GCASP %.3f not better than Central %.3f under bursty traffic",
			gcaspSum/seeds, centralSum/seeds)
	}
}

func TestCentralResetClearsState(t *testing.T) {
	c := NewCentral(50)
	key := ruleKey{ingress: 3, service: "s"}
	c.assign[key] = []graph.NodeID{1}
	c.arrivals[key] = 7
	c.seen = true
	c.Reset(nil)
	if len(c.assign) != 0 || len(c.arrivals) != 0 || c.seen {
		t.Error("Reset left stale state")
	}
}

func TestBaselinesAreDeterministic(t *testing.T) {
	g := diamond(2, 2)
	svc := oneCompService(5)
	for _, mk := range []func() simnet.Coordinator{
		func() simnet.Coordinator { return SP{} },
		func() simnet.Coordinator { return GCASP{} },
		func() simnet.Coordinator { return NewCentral(50) },
	} {
		a := runOn(t, g, svc, mk(), 3, 500, 50)
		b := runOn(t, g, svc, mk(), 3, 500, 50)
		if a.Succeeded != b.Succeeded || a.Dropped != b.Dropped || a.SumDelay != b.SumDelay {
			t.Errorf("%T: non-deterministic metrics", mk())
		}
	}
}

func TestForwardTowardsUnreachable(t *testing.T) {
	g := graph.New("pair")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 1)
	// No links: destination unreachable.
	st := simnet.NewState(g, graph.NewAPSP(g))
	if a := forwardTowards(st, 0, 1); a != 0 {
		t.Errorf("forwardTowards(unreachable) = %d, want 0", a)
	}
}

func TestCoordinatorNames(t *testing.T) {
	if (SP{}).Name() != "SP" {
		t.Errorf("SP name = %q", (SP{}).Name())
	}
	if (GCASP{}).Name() != "GCASP" {
		t.Errorf("GCASP name = %q", GCASP{}.Name())
	}
	if NewCentral(10).Name() != "Central" {
		t.Errorf("Central name = %q", NewCentral(10).Name())
	}
}

// TestGCASPSearchesWhenNoNeighborHasCompute: with no compute anywhere in
// the neighborhood, GCASP must keep the flow moving (emptiestNeighbor)
// rather than processing into a drop.
func TestGCASPSearchesWhenNoNeighborHasCompute(t *testing.T) {
	// Line 0-1-2-3: compute only at node 3 (the node before egress...
	// actually egress is 3 in runOn), so put compute only at node 2;
	// everything else is 0. GCASP must walk the flow to node 2.
	g := diamond(0, 10)
	g.SetNodeCapacity(2, 10) // only the long-way node can process
	m := runOn(t, g, oneCompService(5), GCASP{}, 10, 101, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success = %f, want 1 (search must find node 2)", m.SuccessRatio())
	}
}

// TestGCASPProcessedFlowRoutesAroundFullLink: a fully processed flow
// takes the detour when the shortest-path link toward the egress is
// saturated.
func TestGCASPProcessedFlowRoutesAroundFullLink(t *testing.T) {
	g := diamond(10, 10)
	// Saturate link 0-1 (index 0) artificially via tiny capacity: flows
	// for the shortest path cannot use it.
	g.SetLinkCapacity(0, 0.25)
	m := runOn(t, g, oneCompService(5), GCASP{}, 10, 101, 100)
	if m.SuccessRatio() != 1 {
		t.Errorf("success = %f, want 1 (detour via node 2)", m.SuccessRatio())
	}
	if m.DropsBy[simnet.DropLinkCapacity] != 0 {
		t.Errorf("link drops = %d, want 0", m.DropsBy[simnet.DropLinkCapacity])
	}
}

// TestCentralMultiIngress: rules must be computed independently per
// ingress and spread load across nodes.
func TestCentralMultiIngress(t *testing.T) {
	g := diamond(10, 10)
	c := NewCentral(50)
	sim, err := simnet.New(simnet.Config{
		Graph:   g,
		Service: oneCompService(5),
		Ingresses: []simnet.Ingress{
			{Node: 0, Arrivals: traffic.Fixed{Interval: 10}},
			{Node: 1, Arrivals: traffic.Fixed{Interval: 10}},
		},
		Egress:      3,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     500,
		Coordinator: c,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.SuccessRatio() < 0.95 {
		t.Errorf("success = %f, want ~1", m.SuccessRatio())
	}
	if len(c.assign) != 2 {
		t.Errorf("rules for %d classes, want 2 (one per ingress)", len(c.assign))
	}
}
