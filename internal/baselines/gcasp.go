package baselines

import (
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// GCASP is the fully distributed heuristic of the authors' prior work
// [11]: like the distributed DRL approach, every node decides locally for
// each incoming flow. It favors processing along the shortest path but
// dynamically reroutes around bottlenecks, searching neighbors for free
// compute and link resources and respecting the remaining deadline.
type GCASP struct{}

// Name implements simnet.Coordinator.
func (GCASP) Name() string { return "GCASP" }

// Decide implements simnet.Coordinator using only v-local information:
// the flow's attributes, v's free capacity, and the free resources of
// direct neighbors and outgoing links.
func (GCASP) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	if !f.Processed() {
		need := f.Current().Resource(f.Rate)
		if st.FreeNode(v) >= need {
			return 0 // greedy: process as early as possible
		}
		// Bottleneck: search a neighbor with spare compute, preferring
		// neighbors that keep the flow deliverable within its deadline
		// and lie toward the egress.
		if a := bestNeighbor(st, f, v, now, need); a != 0 {
			return a
		}
		// No neighbor with enough compute either: keep searching by
		// moving to the emptiest reachable neighbor instead of marching
		// to the egress, where an unprocessed flow would be lost.
		if a := emptiestNeighbor(st, f, v, now); a != 0 {
			return a
		}
		return forwardTowards(st, v, f.Egress)
	}
	// Fully processed: head straight to the egress; route around a full
	// shortest-path link if possible.
	if a := forwardTowards(st, v, f.Egress); a != 0 {
		ad := st.Graph().Neighbors(v)[a-1]
		if st.FreeLink(ad.Link) >= f.Rate {
			return a
		}
	}
	if a := bestNeighbor(st, f, v, now, 0); a != 0 {
		return a
	}
	return forwardTowards(st, v, f.Egress)
}

// ForShard implements simnet.ShardableCoordinator: GCASP is stateless,
// so every shard shares it.
func (g GCASP) ForShard(shard, shards int) simnet.Coordinator { return g }

// emptiestNeighbor returns the deadline-feasible neighbor with the most
// free compute, regardless of whether the requested component fits there
// right now — resources may free up by the time the flow arrives.
func emptiestNeighbor(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	remaining := f.Remaining(now)
	bestAction := 0
	bestFree := -1.0
	for i, ad := range st.Graph().Neighbors(v) {
		if st.FreeLink(ad.Link) < f.Rate {
			continue
		}
		if remaining-st.APSP().DistVia(v, ad, f.Egress) <= 0 {
			continue
		}
		if free := st.FreeNode(ad.Neighbor); free > bestFree {
			bestAction, bestFree = i+1, free
		}
	}
	return bestAction
}

// bestNeighbor scores v's neighbors for carrying flow f onward and
// returns the best as an action, or 0 when no neighbor is usable. A
// usable neighbor has link headroom for λ_f, deadline slack on a
// shortest path via it, and — when need > 0 — free compute for the
// requested component.
func bestNeighbor(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64, need float64) int {
	remaining := f.Remaining(now)
	bestAction := 0
	bestScore := 0.0
	for i, ad := range st.Graph().Neighbors(v) {
		if st.FreeLink(ad.Link) < f.Rate {
			continue
		}
		slack := remaining - st.APSP().DistVia(v, ad, f.Egress)
		if slack <= 0 {
			continue
		}
		freeCompute := st.FreeNode(ad.Neighbor)
		if need > 0 && freeCompute < need {
			continue
		}
		// Prefer close-to-egress neighbors with spare compute; slack
		// dominates, compute breaks ties toward emptier nodes.
		score := slack/f.Deadline + 0.1*freeCompute
		if bestAction == 0 || score > bestScore {
			bestAction, bestScore = i+1, score
		}
	}
	return bestAction
}
