package baselines

import (
	"sort"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// Central emulates the centralized coordination approach of [10]: a
// central controller periodically recomputes placement and forwarding
// rules for all nodes from globally monitored state, and the nodes apply
// those rules to every incoming flow at runtime. Between updates the
// rules are frozen, so the controller's view of the network is always
// somewhat outdated — exactly the architectural weakness the paper's
// Fig. 6b/6c exposes under stochastic traffic. Routing between rule
// targets follows shortest paths, as in [10] (which considers neither
// dynamic routing nor link capacities).
//
// The learned component of [10] is replaced by a load-balancing rule
// optimizer over the same inputs; see DESIGN.md, substitution 5.
type Central struct {
	// MonitorInterval is the period between global monitoring snapshots
	// and rule updates.
	MonitorInterval float64

	// assign[key][j] is the node that processes chain component j for
	// flows of one (ingress, service) class.
	assign map[ruleKey][]graph.NodeID
	// arrivals counts flows per class since the last tick, estimating
	// per-class load.
	arrivals map[ruleKey]int
	lastRate map[ruleKey]float64
	// classes holds the monitoring facts learned per observed class.
	classes map[ruleKey]*classInfo

	egress graph.NodeID
	seen   bool
}

// ruleKey identifies one traffic class: flows of one service entering at
// one ingress.
type ruleKey struct {
	ingress graph.NodeID
	service string
}

// classInfo is what monitoring learns about a traffic class.
type classInfo struct {
	service  *simnet.Service
	rate     float64 // flow data rate λ
	duration float64
	deadline float64
}

// NewCentral returns a centralized coordinator updating its rules every
// interval time steps (the paper cites ~1 min Prometheus monitoring; the
// base scenario uses 100 steps).
func NewCentral(interval float64) *Central {
	c := &Central{MonitorInterval: interval}
	c.Reset(nil)
	return c
}

// Name implements simnet.Coordinator.
func (c *Central) Name() string { return "Central" }

// Reset implements simnet.Resetter.
func (c *Central) Reset(*simnet.State) {
	c.assign = make(map[ruleKey][]graph.NodeID)
	c.arrivals = make(map[ruleKey]int)
	c.lastRate = make(map[ruleKey]float64)
	c.classes = make(map[ruleKey]*classInfo)
	c.seen = false
}

// Interval implements simnet.Ticker.
func (c *Central) Interval() float64 { return c.MonitorInterval }

// Decide implements simnet.Coordinator by looking up the frozen rules:
// flows are processed exactly at their ingress path's assigned nodes and
// follow shortest paths between them. Rules deliberately ignore the live
// utilization — only the periodic Tick sees (a snapshot of) it.
func (c *Central) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	key := ruleKey{ingress: f.Ingress, service: f.Service.Name}
	if f.Decisions == 0 { // first decision of a new flow: monitoring input
		c.arrivals[key]++
		c.classes[key] = &classInfo{
			service:  f.Service,
			rate:     f.Rate,
			duration: f.Duration,
			deadline: f.Deadline,
		}
		c.egress = f.Egress
		c.seen = true
	}
	if f.Processed() {
		return forwardTowards(st, v, f.Egress)
	}
	nodes := c.assign[key]
	if len(nodes) != f.Service.Len() {
		// No rules for this class yet (before the first informed tick):
		// behave like SP.
		return SP{}.Decide(st, f, v, now)
	}
	target := nodes[f.CompIdx]
	if v == target {
		return 0
	}
	return forwardTowards(st, v, target)
}

// OnTopologyChange implements simnet.TopologyObserver: the controller
// learns about node and link failures out-of-band (its monitoring stack
// alerts faster than the periodic rule optimization) and immediately
// withdraws every rule that routes through a dead node. Affected classes
// fall back to shortest-path behavior until the next Tick replans them
// over the surviving topology.
func (c *Central) OnTopologyChange(st *simnet.State, now float64) {
	for key, nodes := range c.assign {
		for _, v := range nodes {
			if !st.NodeAlive(v) {
				delete(c.assign, key)
				break
			}
		}
	}
}

// Tick implements simnet.Ticker: take a global monitoring snapshot and
// recompute all rules. The snapshot immediately starts aging; flows that
// arrive later in the interval are coordinated with stale information.
func (c *Central) Tick(st *simnet.State, now float64) {
	defer func() {
		for k := range c.arrivals {
			c.arrivals[k] = 0
		}
	}()
	if !c.seen {
		return
	}
	keys := make([]ruleKey, 0, len(c.arrivals))
	for k := range c.arrivals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].ingress != keys[j].ingress {
			return keys[i].ingress < keys[j].ingress
		}
		return keys[i].service < keys[j].service
	})

	planned := make(map[graph.NodeID]float64)
	for _, k := range keys {
		rate := float64(c.arrivals[k]) / c.MonitorInterval
		if prev, ok := c.lastRate[k]; ok {
			rate = 0.5*rate + 0.5*prev // smooth noisy interval counts
		}
		c.lastRate[k] = rate
		c.assign[k] = c.planPath(st, k, rate, planned)
	}
}

// planPath assigns each chain component of flows from one ingress to a
// processing node, balancing the estimated concurrent demand against
// node capacities while keeping the resulting route (shortest paths
// between consecutive targets and the egress) within the deadline.
// planned accumulates demand across ingresses so co-located ingresses
// spread over distinct nodes. Flows are overlapping streams, so the
// sustained-demand estimate carries a peak safety factor.
func (c *Central) planPath(st *simnet.State, key ruleKey, rate float64, planned map[graph.NodeID]float64) []graph.NodeID {
	info := c.classes[key]
	prevAssign := c.assign[key]
	ingress := key.ingress
	const peakFactor = 1.8
	apsp := st.APSP()
	g := st.Graph()
	diameter := apsp.Diameter()
	if diameter <= 0 {
		diameter = 1
	}
	procTime := 0.0
	for _, comp := range info.service.Chain {
		procTime += comp.ProcDelay
	}
	// Delay budget for the route, leaving headroom for processing and
	// queueing at not-yet-ready instances.
	budget := 0.8*info.deadline - procTime

	assign := make([]graph.NodeID, len(info.service.Chain))
	prev := ingress
	usedDelay := 0.0
	for j, comp := range info.service.Chain {
		load := rate * (comp.ProcDelay + info.duration) * comp.Resource(info.rate) * peakFactor
		best := graph.None
		bestFits := false
		bestScore := 0.0
		for _, n := range g.Nodes() {
			if n.Capacity <= 0 || !st.NodeAlive(n.ID) {
				continue
			}
			toCand := apsp.Dist(prev, n.ID)
			onward := apsp.Dist(n.ID, c.egress)
			if graph.Infinite(toCand) || graph.Infinite(onward) {
				continue
			}
			if budget > 0 && usedDelay+toCand+onward > budget {
				continue
			}
			fits := planned[n.ID]+load <= n.Capacity
			detour := (toCand + onward - apsp.Dist(prev, c.egress)) / diameter
			score := (planned[n.ID]+load)/n.Capacity + 0.3*detour
			if len(prevAssign) > j && prevAssign[j] == n.ID {
				score -= 0.05 // hysteresis: avoid rule churn between ticks
			}
			switch {
			case best == graph.None,
				fits && !bestFits,
				fits == bestFits && score < bestScore:
				best, bestFits, bestScore = n.ID, fits, score
			}
		}
		if best == graph.None {
			best = prev // no feasible candidate: give up gracefully
		}
		assign[j] = best
		planned[best] += load
		usedDelay += apsp.Dist(prev, best)
		prev = best
	}
	return assign
}
