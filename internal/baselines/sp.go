// Package baselines implements the comparison algorithms of Sec. V-A3:
// the simple shortest-path greedy ("SP"), the fully distributed GCASP
// heuristic of [11], and a centralized coordinator with periodically
// updated forwarding rules from delayed global monitoring, standing in
// for the centralized DRL approach of [10] (DESIGN.md, substitution 5).
package baselines

import (
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// SP is the simple greedy baseline: it processes flows at nodes along the
// shortest path from ingress to egress and never deviates from that path.
// When resources along the path run out, flows drop — the behavior the
// paper's Fig. 6 discussion attributes to SP.
type SP struct{}

// Name implements simnet.Coordinator.
func (SP) Name() string { return "SP" }

// Decide implements simnet.Coordinator: process locally whenever the
// current shortest-path node has free capacity (or is the egress, where
// processing is forced); otherwise continue along the shortest path.
func (SP) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	if !f.Processed() {
		need := f.Current().Resource(f.Rate)
		if st.FreeNode(v) >= need || v == f.Egress {
			// At the egress there is no further path node: insist on
			// processing even if it drops — SP does not reroute.
			return 0
		}
	}
	return forwardTowards(st, v, f.Egress)
}

// ForShard implements simnet.ShardableCoordinator: SP is stateless, so
// every shard shares it.
func (s SP) ForShard(shard, shards int) simnet.Coordinator { return s }

// forwardTowards returns the action forwarding to the shortest-path next
// hop from v to dst, or 0 when there is none (keeps the flow, which for a
// disconnected destination eventually expires).
func forwardTowards(st *simnet.State, v, dst graph.NodeID) int {
	hop := st.APSP().NextHop(v, dst)
	if hop == graph.None {
		return 0
	}
	for i, ad := range st.Graph().Neighbors(v) {
		if ad.Neighbor == hop {
			return i + 1
		}
	}
	return 0
}
