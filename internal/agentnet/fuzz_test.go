package agentnet

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame drives the frame decoder plus every message decoder
// with arbitrary bytes. The seed corpus is the recorded wire encoding of
// each protocol message (handshake, decide, push, liveness), so the
// fuzzer starts from valid frames and mutates from there.
//
// Invariants: DecodeFrame never panics, never over-consumes, agrees with
// ReadFrame on the same bytes, and a successfully decoded message
// re-marshals to bytes that decode to the same message (the decoder
// accepts only canonical encodings up to nil-vs-empty slices).
func FuzzDecodeFrame(f *testing.F) {
	for typ, msg := range sampleMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, msg.Marshal()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A few hostile shapes: truncated header, zero length, huge length,
	// valid frame with trailing garbage.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, MsgPing, 9, 9, 9})

	decoders := map[byte]func() message{
		MsgHello:       func() message { return new(Hello) },
		MsgHelloAck:    func() message { return new(HelloAck) },
		MsgDecide:      func() message { return new(Decide) },
		MsgAction:      func() message { return new(Action) },
		MsgDecideBatch: func() message { return new(DecideBatch) },
		MsgActions:     func() message { return new(Actions) },
		MsgModelPush:   func() message { return new(ModelPush) },
		MsgModelAck:    func() message { return new(ModelAck) },
		MsgPing:        func() message { return new(Ping) },
		MsgPong:        func() message { return new(Pong) },
		MsgError:       func() message { return new(ErrorMsg) },
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, n, err := DecodeFrame(data)
		rTyp, rPayload, rErr := ReadFrame(bytes.NewReader(data))
		if err != nil {
			// The two decoders must agree on rejection; ReadFrame sees a
			// truncated buffer as an io error.
			if rErr == nil {
				t.Fatalf("DecodeFrame rejected (%v) but ReadFrame accepted", err)
			}
			return
		}
		if rErr != nil {
			t.Fatalf("DecodeFrame accepted but ReadFrame rejected: %v", rErr)
		}
		if typ != rTyp || !bytes.Equal(payload, rPayload) {
			t.Fatal("DecodeFrame and ReadFrame disagree on the same bytes")
		}
		if n < 5 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		mk, known := decoders[typ]
		if !known {
			return
		}
		msg := mk()
		if err := msg.Unmarshal(payload); err != nil {
			return // malformed payload for this type: rejection is fine
		}
		// Canonicalization check: decode(marshal(decode(p))) == decode(p).
		re := msg.Marshal()
		again := mk()
		if err := again.Unmarshal(re); err != nil {
			t.Fatalf("re-marshalled %T does not decode: %v", msg, err)
		}
		if !equalMessage(msg, again) {
			t.Fatalf("%T not canonical:\n first %+v\nsecond %+v", msg, msg, again)
		}
	})
}
