package agentnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ClientConfig tunes a Client. Zero values get sane defaults.
type ClientConfig struct {
	// Timeout bounds each request round trip (write + read). Default 5s.
	Timeout time.Duration
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReconnectBackoff is the initial retry delay after a failed dial;
	// it doubles per attempt up to ReconnectMax. Defaults 50ms / 1s.
	ReconnectBackoff time.Duration
	ReconnectMax     time.Duration
	// ReconnectBudget caps the total time spent re-dialing after a lost
	// connection before a request is failed back to the caller. The
	// simulation maps that failure to an invalid action (a dropped
	// flow), so this budget is literally "how long an agent may be dead
	// before its nodes start dropping traffic". Default 3s.
	ReconnectBudget time.Duration
	// Logf receives reconnect/lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = time.Second
	}
	if c.ReconnectBudget <= 0 {
		c.ReconnectBudget = 3 * time.Second
	}
}

// RPCTiming decomposes one decision round trip into sub-spans, all in
// integer nanoseconds. The derivation guarantees the exact tiling
//
//	SendNS + NetNS + QueueNS + InferNS + ReturnNS == TotalNS
//
// with no rounding slack: SendNS (request marshal + socket write,
// including any reconnect spent getting a connection) and ReturnNS
// (response decode after the read completed) are measured client-side;
// the wire window between them is split using the agent's piggybacked
// ServerNS/InferNS into NetNS (bytes in flight both ways, plus the
// agent's response encode+write, which cannot time itself into its own
// payload), QueueNS (agent-side decode and queueing around inference),
// and InferNS (policy inference proper). Server-reported durations are
// clamped into the wire window, so clock skew between the processes can
// never break the tiling — only shift attribution between NetNS and
// QueueNS.
//
// A failed round trip still tiles: TotalNS == SendNS, everything else 0.
type RPCTiming struct {
	TotalNS  int64
	SendNS   int64
	NetNS    int64
	QueueNS  int64
	InferNS  int64
	ReturnNS int64
}

// deriveTiming computes the exact-tiling decomposition from the client
// timestamps (t0 entry, t1 write done, t2 read done, t3 decode done)
// and the server-reported span durations.
func deriveTiming(t0, t1, t2, t3 time.Time, serverNS, inferNS int64) RPCTiming {
	total := t3.Sub(t0).Nanoseconds()
	send := t1.Sub(t0).Nanoseconds()
	ret := t3.Sub(t2).Nanoseconds()
	wire := total - send - ret // == t2 - t1; non-negative on the monotonic clock
	server := serverNS
	if server < 0 {
		server = 0
	}
	if server > wire {
		server = wire
	}
	infer := inferNS
	if infer < 0 {
		infer = 0
	}
	if infer > server {
		infer = server
	}
	return RPCTiming{
		TotalNS:  total,
		SendNS:   send,
		NetNS:    wire - server,
		QueueNS:  server - infer,
		InferNS:  infer,
		ReturnNS: ret,
	}
}

// failedTiming is the decomposition of a round trip that never produced
// a response: the whole duration is attributed to the send side.
func failedTiming(d time.Duration) RPCTiming {
	return RPCTiming{TotalNS: d.Nanoseconds(), SendNS: d.Nanoseconds()}
}

// Client is the driver-side handle to one agent daemon. All methods are
// synchronous request/response and safe for concurrent use (requests are
// serialized over the single connection; the simulator's per-decision
// path is sequential anyway, and /metrics scrapes must not race it).
//
// On any transport error the client transparently re-dials with bounded
// exponential backoff and replays the handshake, then retries the
// request once. If the agent stays unreachable past ReconnectBudget the
// request fails and the caller decides what a missing decision means
// (coord.Remote returns an invalid action, which the engine drops).
//
// The decide path reuses per-client scratch buffers for request
// marshaling and response decoding, so a steady-state session performs
// zero allocations per round trip — the socket boundary costs syscalls,
// not garbage.
type Client struct {
	addr  string
	hello Hello
	cfg   ClientConfig

	mu      sync.Mutex
	conn    net.Conn
	ack     HelloAck
	severed bool
	nonce   uint64

	// Request/response scratch, all guarded by mu. enc holds the framed
	// request ([5-byte header][payload]); rbuf backs response reads; resp
	// is the batch-response decode target whose Actions slice is reused.
	enc    []byte
	rbuf   []byte
	resp   Actions
	t1, t2 time.Time // write-done / read-done of the last round trip
	timing RPCTiming

	reconnects atomic.Int64
}

// Dial connects to an agent daemon and performs the handshake. hello is
// re-sent verbatim on every reconnect, so the agent rebuilds the same
// decision state each time.
func Dial(addr string, hello Hello, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	hello.Version = ProtoVersion
	c := &Client{addr: addr, hello: hello, cfg: cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Ack returns the handshake result from the most recent (re)connect.
func (c *Client) Ack() HelloAck {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ack
}

// Addr returns the agent endpoint this client dials.
func (c *Client) Addr() string { return c.addr }

// Reconnects returns how many times the client has successfully
// re-dialed after losing its connection.
func (c *Client) Reconnects() int64 { return c.reconnects.Load() }

// LastRPCTiming returns the sub-span decomposition of the most recent
// Decide/DecideBatch round trip (successful or failed).
func (c *Client) LastRPCTiming() RPCTiming {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.timing
}

// connectLocked dials and handshakes once. Caller holds c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("agentnet: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	conn.SetDeadline(deadline)
	if err := WriteFrame(conn, MsgHello, c.hello.Marshal()); err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	if typ == MsgError {
		var em ErrorMsg
		em.Unmarshal(payload)
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: agent error: %s", c.addr, em.Msg)
	}
	if typ != MsgHelloAck {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: expected HelloAck, got type %d", c.addr, typ)
	}
	var ack HelloAck
	if err := ack.Unmarshal(payload); err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	if ack.Version != ProtoVersion {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: protocol version mismatch: agent %d, driver %d",
			c.addr, ack.Version, ProtoVersion)
	}
	conn.SetDeadline(time.Time{})
	c.conn = conn
	c.ack = ack
	return nil
}

// reconnectLocked re-dials with exponential backoff until it succeeds or
// the reconnect budget runs out. Caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	backoff := c.cfg.ReconnectBackoff
	deadline := time.Now().Add(c.cfg.ReconnectBudget)
	for attempt := 1; ; attempt++ {
		if c.severed {
			return fmt.Errorf("agentnet: %s: client severed", c.addr)
		}
		err := c.connectLocked()
		if err == nil {
			c.reconnects.Add(1)
			c.logf("agentnet: reconnected to %s (attempt %d)", c.addr, attempt)
			return nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("agentnet: %s: reconnect budget exhausted: %w", c.addr, err)
		}
		c.logf("agentnet: reconnect %s attempt %d failed: %v (retrying in %v)", c.addr, attempt, err, backoff)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > c.cfg.ReconnectMax {
			backoff = c.cfg.ReconnectMax
		}
	}
}

// roundTripLocked sends one framed request and reads its response,
// retrying once through a reconnect on transport failure. frame is a
// complete frame (header + type + payload) as built by beginFrame/
// finishFrame; the response payload aliases c.rbuf and is valid until
// the next round trip. Write-done and read-done timestamps of the
// successful attempt land in c.t1/c.t2. Caller holds c.mu.
func (c *Client) roundTripLocked(frame []byte) (byte, []byte, error) {
	for attempt := 0; ; attempt++ {
		if c.severed {
			return 0, nil, fmt.Errorf("agentnet: %s: client severed", c.addr)
		}
		if c.conn == nil {
			if err := c.reconnectLocked(); err != nil {
				return 0, nil, err
			}
		}
		typ, payload, err := c.roundTripOnceLocked(frame)
		if err == nil {
			return typ, payload, nil
		}
		c.conn.Close()
		c.conn = nil
		// One retry after a fresh reconnect: a request/response protocol
		// with no pipelining means a lost connection loses at most the
		// in-flight request, which is safe to replay (decides are
		// deterministic given agent state; pings/pushes are idempotent).
		if attempt >= 1 {
			return 0, nil, err
		}
		c.logf("agentnet: %s: request failed (%v), reconnecting", c.addr, err)
	}
}

func (c *Client) roundTripOnceLocked(frame []byte) (byte, []byte, error) {
	deadline := time.Now().Add(c.cfg.Timeout)
	c.conn.SetDeadline(deadline)
	if _, err := c.conn.Write(frame); err != nil {
		return 0, nil, fmt.Errorf("agentnet: %s: write: %w", c.addr, err)
	}
	c.t1 = time.Now()
	typ, payload, rbuf, err := readFrameInto(c.conn, c.rbuf)
	c.rbuf = rbuf
	if err != nil {
		return 0, nil, fmt.Errorf("agentnet: %s: read: %w", c.addr, err)
	}
	c.t2 = time.Now()
	return typ, payload, nil
}

// errFromResponse converts an in-band Error frame into a Go error.
func errFromResponse(addr string, typ byte, payload []byte, want byte) error {
	if typ == want {
		return nil
	}
	if typ == MsgError {
		var em ErrorMsg
		em.Unmarshal(payload)
		return fmt.Errorf("agentnet: %s: agent error: %s", addr, em.Msg)
	}
	return fmt.Errorf("agentnet: %s: expected message type %d, got %d", addr, want, typ)
}

// Decide requests one action for an observation row. flow and span are
// the trace context stamped into the request frame; pass zeros when the
// run is untraced (the wire cost is 16 fixed bytes either way, and the
// timing capture is a handful of clock reads — there is no traced/
// untraced mode switch on this path).
func (c *Client) Decide(node uint32, now float64, flow, span uint64, obs []float64) (int32, error) {
	t0 := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Decide{Node: node, Now: now, Flow: flow, Span: span, Obs: obs}
	c.enc = m.AppendTo(frameStart(c.enc))
	finishFrame(c.enc, MsgDecide)
	typ, payload, err := c.roundTripLocked(c.enc)
	if err != nil {
		c.timing = failedTiming(time.Since(t0))
		return 0, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgAction); err != nil {
		c.timing = failedTiming(time.Since(t0))
		return 0, err
	}
	var a Action
	if err := a.Unmarshal(payload); err != nil {
		c.timing = failedTiming(time.Since(t0))
		return 0, err
	}
	c.timing = deriveTiming(t0, c.t1, c.t2, time.Now(), int64(a.ServerNS), int64(a.InferNS))
	return a.Action, nil
}

// DecideBatch requests actions for a same-node cohort of observation
// rows (row-major, width columns each). It returns one action per row;
// the slice aliases client scratch and is valid until the next call.
func (c *Client) DecideBatch(node uint32, now float64, span uint64, width int, rows []float64) ([]int32, error) {
	t0 := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	m := DecideBatch{Node: node, Now: now, Span: span, Width: uint32(width), Rows: rows}
	c.enc = m.AppendTo(frameStart(c.enc))
	finishFrame(c.enc, MsgDecideBatch)
	typ, payload, err := c.roundTripLocked(c.enc)
	if err != nil {
		c.timing = failedTiming(time.Since(t0))
		return nil, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgActions); err != nil {
		c.timing = failedTiming(time.Since(t0))
		return nil, err
	}
	if err := c.resp.Unmarshal(payload); err != nil {
		c.timing = failedTiming(time.Since(t0))
		return nil, err
	}
	if width > 0 && len(c.resp.Actions) != len(rows)/width {
		c.timing = failedTiming(time.Since(t0))
		return nil, fmt.Errorf("agentnet: %s: got %d actions for %d rows", c.addr, len(c.resp.Actions), len(rows)/width)
	}
	c.timing = deriveTiming(t0, c.t1, c.t2, time.Now(), int64(c.resp.ServerNS), int64(c.resp.InferNS))
	return c.resp.Actions, nil
}

// PushModel ships a serialized checkpoint and waits for the agent's
// verified acknowledgement.
func (c *Client) PushModel(hash string, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := ModelPush{Hash: hash, Payload: payload}
	frame := append(frameStart(c.enc), req.Marshal()...)
	finishFrame(frame, MsgModelPush)
	c.enc = frame
	typ, resp, err := c.roundTripLocked(frame)
	if err != nil {
		return err
	}
	if err := errFromResponse(c.addr, typ, resp, MsgModelAck); err != nil {
		return err
	}
	var ack ModelAck
	if err := ack.Unmarshal(resp); err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("agentnet: %s: model push rejected: %s", c.addr, ack.Err)
	}
	if ack.Hash != hash {
		return fmt.Errorf("agentnet: %s: model ack hash %.12s... != pushed %.12s...", c.addr, ack.Hash, hash)
	}
	// The agent now runs the pushed checkpoint; keep the cached handshake
	// view current so fleet health reports the live model version.
	c.ack.ModelHash = hash
	return nil
}

// Ping round-trips a liveness probe and returns its latency.
func (c *Client) Ping() (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nonce++
	nonce := c.nonce
	req := Ping{Nonce: nonce}
	start := time.Now()
	frame := append(frameStart(c.enc), req.Marshal()...)
	finishFrame(frame, MsgPing)
	c.enc = frame
	typ, payload, err := c.roundTripLocked(frame)
	if err != nil {
		return 0, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgPong); err != nil {
		return 0, err
	}
	var pong Pong
	if err := pong.Unmarshal(payload); err != nil {
		return 0, err
	}
	if pong.Nonce != nonce {
		return 0, fmt.Errorf("agentnet: %s: pong nonce %d != ping nonce %d", c.addr, pong.Nonce, nonce)
	}
	return time.Since(start), nil
}

// Sever closes the connection and makes every request fail immediately
// without reconnecting, until Revive. The chaos agent-kill fault uses
// this to simulate a dead agent process with zero recovery, which the
// engine surfaces as dropped flows at the agent's nodes.
func (c *Client) Sever() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Revive lifts a Sever; the next request reconnects and re-handshakes.
func (c *Client) Revive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = false
}

// Close releases the connection. The client must not be used afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
