package agentnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ClientConfig tunes a Client. Zero values get sane defaults.
type ClientConfig struct {
	// Timeout bounds each request round trip (write + read). Default 5s.
	Timeout time.Duration
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// ReconnectBackoff is the initial retry delay after a failed dial;
	// it doubles per attempt up to ReconnectMax. Defaults 50ms / 1s.
	ReconnectBackoff time.Duration
	ReconnectMax     time.Duration
	// ReconnectBudget caps the total time spent re-dialing after a lost
	// connection before a request is failed back to the caller. The
	// simulation maps that failure to an invalid action (a dropped
	// flow), so this budget is literally "how long an agent may be dead
	// before its nodes start dropping traffic". Default 3s.
	ReconnectBudget time.Duration
	// Logf receives reconnect/lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

func (c *ClientConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.ReconnectBackoff <= 0 {
		c.ReconnectBackoff = 50 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = time.Second
	}
	if c.ReconnectBudget <= 0 {
		c.ReconnectBudget = 3 * time.Second
	}
}

// Client is the driver-side handle to one agent daemon. All methods are
// synchronous request/response and safe for concurrent use (requests are
// serialized over the single connection; the simulator's per-decision
// path is sequential anyway, and /metrics scrapes must not race it).
//
// On any transport error the client transparently re-dials with bounded
// exponential backoff and replays the handshake, then retries the
// request once. If the agent stays unreachable past ReconnectBudget the
// request fails and the caller decides what a missing decision means
// (coord.Remote returns an invalid action, which the engine drops).
type Client struct {
	addr  string
	hello Hello
	cfg   ClientConfig

	mu      sync.Mutex
	conn    net.Conn
	ack     HelloAck
	severed bool
	nonce   uint64
}

// Dial connects to an agent daemon and performs the handshake. hello is
// re-sent verbatim on every reconnect, so the agent rebuilds the same
// decision state each time.
func Dial(addr string, hello Hello, cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	hello.Version = ProtoVersion
	c := &Client{addr: addr, hello: hello, cfg: cfg}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// Ack returns the handshake result from the most recent (re)connect.
func (c *Client) Ack() HelloAck {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ack
}

// Addr returns the agent endpoint this client dials.
func (c *Client) Addr() string { return c.addr }

// connectLocked dials and handshakes once. Caller holds c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("agentnet: dial %s: %w", c.addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	deadline := time.Now().Add(c.cfg.Timeout)
	conn.SetDeadline(deadline)
	if err := WriteFrame(conn, MsgHello, c.hello.Marshal()); err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	if typ == MsgError {
		var em ErrorMsg
		em.Unmarshal(payload)
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: agent error: %s", c.addr, em.Msg)
	}
	if typ != MsgHelloAck {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: expected HelloAck, got type %d", c.addr, typ)
	}
	var ack HelloAck
	if err := ack.Unmarshal(payload); err != nil {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: %w", c.addr, err)
	}
	if ack.Version != ProtoVersion {
		conn.Close()
		return fmt.Errorf("agentnet: handshake %s: protocol version mismatch: agent %d, driver %d",
			c.addr, ack.Version, ProtoVersion)
	}
	conn.SetDeadline(time.Time{})
	c.conn = conn
	c.ack = ack
	return nil
}

// reconnectLocked re-dials with exponential backoff until it succeeds or
// the reconnect budget runs out. Caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	backoff := c.cfg.ReconnectBackoff
	deadline := time.Now().Add(c.cfg.ReconnectBudget)
	for attempt := 1; ; attempt++ {
		if c.severed {
			return fmt.Errorf("agentnet: %s: client severed", c.addr)
		}
		err := c.connectLocked()
		if err == nil {
			c.logf("agentnet: reconnected to %s (attempt %d)", c.addr, attempt)
			return nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return fmt.Errorf("agentnet: %s: reconnect budget exhausted: %w", c.addr, err)
		}
		c.logf("agentnet: reconnect %s attempt %d failed: %v (retrying in %v)", c.addr, attempt, err, backoff)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > c.cfg.ReconnectMax {
			backoff = c.cfg.ReconnectMax
		}
	}
}

// roundTrip sends one request frame and reads its response, retrying
// once through a reconnect on transport failure. It returns the response
// type and payload.
func (c *Client) roundTrip(reqType byte, req []byte) (byte, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.severed {
			return 0, nil, fmt.Errorf("agentnet: %s: client severed", c.addr)
		}
		if c.conn == nil {
			if err := c.reconnectLocked(); err != nil {
				return 0, nil, err
			}
		}
		typ, payload, err := c.roundTripOnceLocked(reqType, req)
		if err == nil {
			return typ, payload, nil
		}
		c.conn.Close()
		c.conn = nil
		// One retry after a fresh reconnect: a request/response protocol
		// with no pipelining means a lost connection loses at most the
		// in-flight request, which is safe to replay (decides are
		// deterministic given agent state; pings/pushes are idempotent).
		if attempt >= 1 {
			return 0, nil, err
		}
		c.logf("agentnet: %s: request failed (%v), reconnecting", c.addr, err)
	}
}

func (c *Client) roundTripOnceLocked(reqType byte, req []byte) (byte, []byte, error) {
	deadline := time.Now().Add(c.cfg.Timeout)
	c.conn.SetDeadline(deadline)
	if err := WriteFrame(c.conn, reqType, req); err != nil {
		return 0, nil, fmt.Errorf("agentnet: %s: write: %w", c.addr, err)
	}
	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		return 0, nil, fmt.Errorf("agentnet: %s: read: %w", c.addr, err)
	}
	return typ, payload, nil
}

// errFromResponse converts an in-band Error frame into a Go error.
func errFromResponse(addr string, typ byte, payload []byte, want byte) error {
	if typ == want {
		return nil
	}
	if typ == MsgError {
		var em ErrorMsg
		em.Unmarshal(payload)
		return fmt.Errorf("agentnet: %s: agent error: %s", addr, em.Msg)
	}
	return fmt.Errorf("agentnet: %s: expected message type %d, got %d", addr, want, typ)
}

// Decide requests one action for an observation row.
func (c *Client) Decide(node uint32, now float64, obs []float64) (int32, error) {
	req := Decide{Node: node, Now: now, Obs: obs}
	typ, payload, err := c.roundTrip(MsgDecide, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgAction); err != nil {
		return 0, err
	}
	var a Action
	if err := a.Unmarshal(payload); err != nil {
		return 0, err
	}
	return a.Action, nil
}

// DecideBatch requests actions for a same-node cohort of observation
// rows (row-major, width columns each). It returns one action per row.
func (c *Client) DecideBatch(node uint32, now float64, width int, rows []float64) ([]int32, error) {
	req := DecideBatch{Node: node, Now: now, Width: uint32(width), Rows: rows}
	typ, payload, err := c.roundTrip(MsgDecideBatch, req.Marshal())
	if err != nil {
		return nil, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgActions); err != nil {
		return nil, err
	}
	var a Actions
	if err := a.Unmarshal(payload); err != nil {
		return nil, err
	}
	if width > 0 && len(a.Actions) != len(rows)/width {
		return nil, fmt.Errorf("agentnet: %s: got %d actions for %d rows", c.addr, len(a.Actions), len(rows)/width)
	}
	return a.Actions, nil
}

// PushModel ships a serialized checkpoint and waits for the agent's
// verified acknowledgement.
func (c *Client) PushModel(hash string, payload []byte) error {
	req := ModelPush{Hash: hash, Payload: payload}
	typ, resp, err := c.roundTrip(MsgModelPush, req.Marshal())
	if err != nil {
		return err
	}
	if err := errFromResponse(c.addr, typ, resp, MsgModelAck); err != nil {
		return err
	}
	var ack ModelAck
	if err := ack.Unmarshal(resp); err != nil {
		return err
	}
	if !ack.OK {
		return fmt.Errorf("agentnet: %s: model push rejected: %s", c.addr, ack.Err)
	}
	if ack.Hash != hash {
		return fmt.Errorf("agentnet: %s: model ack hash %.12s... != pushed %.12s...", c.addr, ack.Hash, hash)
	}
	return nil
}

// Ping round-trips a liveness probe and returns its latency.
func (c *Client) Ping() (time.Duration, error) {
	c.mu.Lock()
	c.nonce++
	nonce := c.nonce
	c.mu.Unlock()
	req := Ping{Nonce: nonce}
	start := time.Now()
	typ, payload, err := c.roundTrip(MsgPing, req.Marshal())
	if err != nil {
		return 0, err
	}
	if err := errFromResponse(c.addr, typ, payload, MsgPong); err != nil {
		return 0, err
	}
	var pong Pong
	if err := pong.Unmarshal(payload); err != nil {
		return 0, err
	}
	if pong.Nonce != nonce {
		return 0, fmt.Errorf("agentnet: %s: pong nonce %d != ping nonce %d", c.addr, pong.Nonce, nonce)
	}
	return time.Since(start), nil
}

// Sever closes the connection and makes every request fail immediately
// without reconnecting, until Revive. The chaos agent-kill fault uses
// this to simulate a dead agent process with zero recovery, which the
// engine surfaces as dropped flows at the agent's nodes.
func (c *Client) Sever() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = true
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Revive lifts a Sever; the next request reconnects and re-handshakes.
func (c *Client) Revive() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = false
}

// Close releases the connection. The client must not be used afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.severed = true
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
