package agentnet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"distcoord/internal/telemetry"
)

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Client configures every per-agent connection.
	Client ClientConfig
	// ObserveRTT, if set, receives each decision round trip in
	// microseconds (Decide and DecideBatch alike). The driver points
	// this at a telemetry histogram so /metrics and BENCH_rpc.json see
	// the same samples.
	ObserveRTT func(us float64)
	// Metrics, if set, receives per-agent fleet health series named
	// agent.<slot>.* (rtt_us histogram, decides/failures counters,
	// reconnects/up/inflight gauges). The pool retires the whole series
	// on Close so a registry that outlives the pool (-obs-wait) never
	// serves stale per-agent gauges. Nil means the pool keeps a private
	// registry, so FleetSnapshot works either way.
	Metrics *telemetry.Registry
	// Logf receives pool lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

// fleetEventCap bounds each agent's lifecycle timeline ring.
const fleetEventCap = 64

// FleetEvent is one entry in an agent's lifecycle timeline: a chaos
// sever, its revive, or a transparent client reconnect.
type FleetEvent struct {
	Wall time.Time `json:"wall"`
	Kind string    `json:"kind"` // "sever" | "revive" | "reconnect"
}

// agentState is the pool's per-slot health bookkeeping: resolved metric
// handles (looked up once at dial so the decide path never touches the
// registry maps) and the lifecycle event ring.
type agentState struct {
	rtt        *telemetry.Histogram
	decides    *telemetry.Counter
	failures   *telemetry.Counter
	reconnects *telemetry.Gauge
	up         *telemetry.Gauge
	inflightG  *telemetry.Gauge

	inflight atomic.Int64

	mu             sync.Mutex
	events         []FleetEvent // ring, oldest overwritten
	next           int
	wrapped        bool
	lastReconnects int64
}

func (st *agentState) record(kind string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ev := FleetEvent{Wall: time.Now(), Kind: kind}
	if len(st.events) < fleetEventCap {
		st.events = append(st.events, ev)
		return
	}
	st.events[st.next] = ev
	st.next = (st.next + 1) % fleetEventCap
	st.wrapped = true
}

// timeline returns the ring's events oldest-first.
func (st *agentState) timeline() []FleetEvent {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.wrapped {
		return append([]FleetEvent(nil), st.events...)
	}
	out := make([]FleetEvent, 0, len(st.events))
	out = append(out, st.events[st.next:]...)
	out = append(out, st.events[:st.next]...)
	return out
}

// Pool is the driver-side agent registry: one Client per agent daemon
// plus the node→agent assignment. Nodes are partitioned round-robin
// (node v is served by agent v mod len(agents)), which the daemons learn
// through Hello.Nodes at handshake.
//
// The pool is what coord.Remote talks to; it adds the cross-cutting
// concerns — RTT accounting, per-agent fleet health, model
// distribution, liveness, targeted kill/revive for chaos runs — on top
// of the per-connection Client.
type Pool struct {
	agents   []*Client
	states   []*agentState
	numNodes int
	cfg      PoolConfig
	reg      *telemetry.Registry
	ownReg   bool

	decides [2]atomic.Int64 // [ok, failed]
}

// DialPool connects and handshakes with every endpoint. hello is the
// template handshake; the pool fills in each agent's node assignment.
// All agents must be reachable at startup — a partially alive fleet is a
// deployment error, not a runtime condition.
func DialPool(endpoints []string, hello Hello, numNodes int, cfg PoolConfig) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("agentnet: pool needs at least one endpoint")
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("agentnet: pool needs a positive node count, got %d", numNodes)
	}
	p := &Pool{numNodes: numNodes, cfg: cfg, reg: cfg.Metrics}
	if p.reg == nil {
		p.reg = telemetry.NewRegistry()
		p.ownReg = true
	}
	for i, ep := range endpoints {
		h := hello
		h.Nodes = nil
		for v := i; v < numNodes; v += len(endpoints) {
			h.Nodes = append(h.Nodes, uint32(v))
		}
		c, err := Dial(ep, h, cfg.Client)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		p.agents = append(p.agents, c)
		p.states = append(p.states, p.newAgentState(i))
	}
	return p, nil
}

// newAgentState resolves slot i's metric handles and marks it up.
func (p *Pool) newAgentState(i int) *agentState {
	prefix := fmt.Sprintf("agent.%d.", i)
	st := &agentState{
		rtt:        p.reg.Histogram(prefix + "rtt_us"),
		decides:    p.reg.Counter(prefix + "decides"),
		failures:   p.reg.Counter(prefix + "failures"),
		reconnects: p.reg.Gauge(prefix + "reconnects"),
		up:         p.reg.Gauge(prefix + "up"),
		inflightG:  p.reg.Gauge(prefix + "inflight"),
	}
	st.up.Set(1)
	return st
}

// NumAgents returns the number of connected agent daemons.
func (p *Pool) NumAgents() int { return len(p.agents) }

// Agent returns the client for agent slot i.
func (p *Pool) Agent(i int) *Client { return p.agents[i] }

// AgentFor returns the agent slot serving node v.
func (p *Pool) AgentFor(node int) int { return node % len(p.agents) }

// AgentIDs returns the handshake-reported agent IDs, indexed by slot.
func (p *Pool) AgentIDs() []string {
	ids := make([]string, len(p.agents))
	for i, c := range p.agents {
		ids[i] = c.Ack().AgentID
	}
	return ids
}

// Caps returns the intersection of all agents' granted capabilities.
// The engine may only rely on what every agent can serve: a single
// batch-incapable agent disables batched dispatch for the run, because
// decision cohorts are per-node and any node might land on that agent.
func (p *Pool) Caps() uint32 {
	caps := ^uint32(0)
	for _, c := range p.agents {
		caps &= c.Ack().Caps
	}
	return caps
}

// observe folds one decision round trip into the global RTT hook and
// slot's fleet health series.
func (p *Pool) observe(slot int, start time.Time, failed bool) {
	us := float64(time.Since(start)) / float64(time.Microsecond)
	if p.cfg.ObserveRTT != nil {
		p.cfg.ObserveRTT(us)
	}
	st := p.states[slot]
	st.rtt.Observe(us)
	if failed {
		st.failures.Inc()
	} else {
		st.decides.Inc()
	}
	// Surface transparent client reconnects as both a gauge and a
	// timeline event; the client heals silently, so this delta check is
	// where the pool finds out.
	if rc := p.agents[slot].Reconnects(); rc != st.lastReconnects {
		st.lastReconnects = rc
		st.reconnects.Set(float64(rc))
		st.record("reconnect")
	}
}

// Decide routes one observation row to the agent serving node. flow and
// span are the trace context for the round trip (zeros when untraced).
func (p *Pool) Decide(node int, now float64, flow, span uint64, obs []float64) (int32, error) {
	slot := p.AgentFor(node)
	st := p.states[slot]
	st.inflightG.Set(float64(st.inflight.Add(1)))
	start := time.Now()
	a, err := p.agents[slot].Decide(uint32(node), now, flow, span, obs)
	st.inflightG.Set(float64(st.inflight.Add(-1)))
	p.observe(slot, start, err != nil)
	if err != nil {
		p.decides[1].Add(1)
		p.logf("agentnet: decide node %d: %v", node, err)
		return 0, err
	}
	p.decides[0].Add(1)
	return a, nil
}

// DecideBatch routes a same-node cohort to the agent serving node. The
// returned slice aliases client scratch, valid until the next call on
// that agent.
func (p *Pool) DecideBatch(node int, now float64, span uint64, width int, rows []float64) ([]int32, error) {
	slot := p.AgentFor(node)
	st := p.states[slot]
	st.inflightG.Set(float64(st.inflight.Add(1)))
	start := time.Now()
	as, err := p.agents[slot].DecideBatch(uint32(node), now, span, width, rows)
	st.inflightG.Set(float64(st.inflight.Add(-1)))
	p.observe(slot, start, err != nil)
	if err != nil {
		p.decides[1].Add(1)
		p.logf("agentnet: decide batch node %d: %v", node, err)
		return nil, err
	}
	p.decides[0].Add(1)
	return as, nil
}

// LastRPCTiming returns the sub-span decomposition of the most recent
// round trip to the agent serving node.
func (p *Pool) LastRPCTiming(node int) RPCTiming {
	return p.agents[p.AgentFor(node)].LastRPCTiming()
}

// PushModel distributes a checkpoint to every agent and fails if any
// agent rejects it. Push-to-all is atomic in intent, not execution: an
// agent that nacks leaves its previous model running, so the caller must
// treat an error as "fleet is heterogeneous" and abort the run.
func (p *Pool) PushModel(hash string, payload []byte) error {
	for i, c := range p.agents {
		if c.Ack().Caps&CapModelPush == 0 {
			return fmt.Errorf("agentnet: agent %d (%s) did not negotiate model push", i, c.Addr())
		}
		if err := c.PushModel(hash, payload); err != nil {
			return fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		p.logf("agentnet: pushed model %.12s... to agent %d (%s)", hash, i, c.Addr())
	}
	return nil
}

// PingAll probes every agent and returns the worst round trip, failing
// on the first dead agent.
func (p *Pool) PingAll() (time.Duration, error) {
	var worst time.Duration
	for i, c := range p.agents {
		rtt, err := c.Ping()
		if err != nil {
			return 0, fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}

// Sever marks agent slot i dead: its connection drops and requests to
// its nodes fail fast without reconnecting until Revive.
func (p *Pool) Sever(i int) {
	p.agents[i].Sever()
	p.states[i].up.Set(0)
	p.states[i].record("sever")
}

// Revive lifts a Sever on agent slot i.
func (p *Pool) Revive(i int) {
	p.agents[i].Revive()
	p.states[i].up.Set(1)
	p.states[i].record("revive")
}

// DecideStats returns the number of successful and failed decision
// round trips so far.
func (p *Pool) DecideStats() (ok, failed int64) {
	return p.decides[0].Load(), p.decides[1].Load()
}

// AgentStatus is one agent's entry in a FleetSnapshot.
type AgentStatus struct {
	Slot       int          `json:"slot"`
	ID         string       `json:"id"`
	Addr       string       `json:"addr"`
	Up         bool         `json:"up"`
	ModelHash  string       `json:"model_hash"`
	Caps       uint32       `json:"caps"`
	Decides    int64        `json:"decides"`
	Failures   int64        `json:"failures"`
	Reconnects int64        `json:"reconnects"`
	Inflight   int64        `json:"inflight"`
	RTTSamples uint64       `json:"rtt_samples"`
	RTTp50Us   float64      `json:"rtt_p50_us"`
	RTTp99Us   float64      `json:"rtt_p99_us"`
	Events     []FleetEvent `json:"events,omitempty"`
}

// FleetSnapshot is the pool's aggregated fleet health view, served as
// JSON on the coordinator's /fleet endpoint.
type FleetSnapshot struct {
	NumAgents int           `json:"num_agents"`
	NumNodes  int           `json:"num_nodes"`
	Decides   int64         `json:"decides"`
	Failed    int64         `json:"failed"`
	Agents    []AgentStatus `json:"agents"`
}

// FleetSnapshot captures every agent's current health: liveness, model
// version, decide/failure/reconnect counts, RTT percentiles, and the
// kill/recovery timeline.
func (p *Pool) FleetSnapshot() FleetSnapshot {
	snap := FleetSnapshot{
		NumAgents: len(p.agents),
		NumNodes:  p.numNodes,
		Decides:   p.decides[0].Load(),
		Failed:    p.decides[1].Load(),
	}
	for i, c := range p.agents {
		st := p.states[i]
		ack := c.Ack()
		snap.Agents = append(snap.Agents, AgentStatus{
			Slot:       i,
			ID:         ack.AgentID,
			Addr:       c.Addr(),
			Up:         st.up.Value() != 0,
			ModelHash:  ack.ModelHash,
			Caps:       ack.Caps,
			Decides:    st.decides.Value(),
			Failures:   st.failures.Value(),
			Reconnects: c.Reconnects(),
			Inflight:   st.inflight.Load(),
			RTTSamples: st.rtt.Count(),
			RTTp50Us:   st.rtt.Quantile(0.5),
			RTTp99Us:   st.rtt.Quantile(0.99),
			Events:     st.timeline(),
		})
	}
	return snap
}

// FleetHandler serves FleetSnapshot as JSON; the driver mounts it at
// /fleet on its obs mux.
func (p *Pool) FleetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.FleetSnapshot()) //nolint:errcheck // client went away
	})
}

// Close releases every connection and retires the pool's agent.<slot>.*
// series from a shared registry — the obs server may outlive the pool
// (-obs-wait holds it open), and a dead fleet must not keep reporting
// per-agent gauges as if the agents were still there.
func (p *Pool) Close() error {
	var wg sync.WaitGroup
	for _, c := range p.agents {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
	if !p.ownReg {
		for i := range p.agents {
			p.reg.DeletePrefix(fmt.Sprintf("agent.%d.", i))
		}
	}
	return nil
}

func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}
