package agentnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PoolConfig tunes a Pool.
type PoolConfig struct {
	// Client configures every per-agent connection.
	Client ClientConfig
	// ObserveRTT, if set, receives each decision round trip in
	// microseconds (Decide and DecideBatch alike). The driver points
	// this at a telemetry histogram so /metrics and BENCH_rpc.json see
	// the same samples.
	ObserveRTT func(us float64)
	// Logf receives pool lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

// Pool is the driver-side agent registry: one Client per agent daemon
// plus the node→agent assignment. Nodes are partitioned round-robin
// (node v is served by agent v mod len(agents)), which the daemons learn
// through Hello.Nodes at handshake.
//
// The pool is what coord.Remote talks to; it adds the cross-cutting
// concerns — RTT accounting, model distribution, liveness, targeted
// kill/revive for chaos runs — on top of the per-connection Client.
type Pool struct {
	agents   []*Client
	numNodes int
	cfg      PoolConfig

	decides [2]atomic.Int64 // [ok, failed]
}

// DialPool connects and handshakes with every endpoint. hello is the
// template handshake; the pool fills in each agent's node assignment.
// All agents must be reachable at startup — a partially alive fleet is a
// deployment error, not a runtime condition.
func DialPool(endpoints []string, hello Hello, numNodes int, cfg PoolConfig) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("agentnet: pool needs at least one endpoint")
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("agentnet: pool needs a positive node count, got %d", numNodes)
	}
	p := &Pool{numNodes: numNodes, cfg: cfg}
	for i, ep := range endpoints {
		h := hello
		h.Nodes = nil
		for v := i; v < numNodes; v += len(endpoints) {
			h.Nodes = append(h.Nodes, uint32(v))
		}
		c, err := Dial(ep, h, cfg.Client)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		p.agents = append(p.agents, c)
	}
	return p, nil
}

// NumAgents returns the number of connected agent daemons.
func (p *Pool) NumAgents() int { return len(p.agents) }

// Agent returns the client for agent slot i.
func (p *Pool) Agent(i int) *Client { return p.agents[i] }

// AgentFor returns the agent slot serving node v.
func (p *Pool) AgentFor(node int) int { return node % len(p.agents) }

// AgentIDs returns the handshake-reported agent IDs, indexed by slot.
func (p *Pool) AgentIDs() []string {
	ids := make([]string, len(p.agents))
	for i, c := range p.agents {
		ids[i] = c.Ack().AgentID
	}
	return ids
}

// Caps returns the intersection of all agents' granted capabilities.
// The engine may only rely on what every agent can serve: a single
// batch-incapable agent disables batched dispatch for the run, because
// decision cohorts are per-node and any node might land on that agent.
func (p *Pool) Caps() uint32 {
	caps := ^uint32(0)
	for _, c := range p.agents {
		caps &= c.Ack().Caps
	}
	return caps
}

func (p *Pool) observe(start time.Time) {
	if p.cfg.ObserveRTT != nil {
		p.cfg.ObserveRTT(float64(time.Since(start)) / float64(time.Microsecond))
	}
}

// Decide routes one observation row to the agent serving node.
func (p *Pool) Decide(node int, now float64, obs []float64) (int32, error) {
	start := time.Now()
	a, err := p.agents[p.AgentFor(node)].Decide(uint32(node), now, obs)
	p.observe(start)
	if err != nil {
		p.decides[1].Add(1)
		p.logf("agentnet: decide node %d: %v", node, err)
		return 0, err
	}
	p.decides[0].Add(1)
	return a, nil
}

// DecideBatch routes a same-node cohort to the agent serving node.
func (p *Pool) DecideBatch(node int, now float64, width int, rows []float64) ([]int32, error) {
	start := time.Now()
	as, err := p.agents[p.AgentFor(node)].DecideBatch(uint32(node), now, width, rows)
	p.observe(start)
	if err != nil {
		p.decides[1].Add(1)
		p.logf("agentnet: decide batch node %d: %v", node, err)
		return nil, err
	}
	p.decides[0].Add(1)
	return as, nil
}

// PushModel distributes a checkpoint to every agent and fails if any
// agent rejects it. Push-to-all is atomic in intent, not execution: an
// agent that nacks leaves its previous model running, so the caller must
// treat an error as "fleet is heterogeneous" and abort the run.
func (p *Pool) PushModel(hash string, payload []byte) error {
	for i, c := range p.agents {
		if c.Ack().Caps&CapModelPush == 0 {
			return fmt.Errorf("agentnet: agent %d (%s) did not negotiate model push", i, c.Addr())
		}
		if err := c.PushModel(hash, payload); err != nil {
			return fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		p.logf("agentnet: pushed model %.12s... to agent %d (%s)", hash, i, c.Addr())
	}
	return nil
}

// PingAll probes every agent and returns the worst round trip, failing
// on the first dead agent.
func (p *Pool) PingAll() (time.Duration, error) {
	var worst time.Duration
	for i, c := range p.agents {
		rtt, err := c.Ping()
		if err != nil {
			return 0, fmt.Errorf("agentnet: agent %d: %w", i, err)
		}
		if rtt > worst {
			worst = rtt
		}
	}
	return worst, nil
}

// Sever marks agent slot i dead: its connection drops and requests to
// its nodes fail fast without reconnecting until Revive.
func (p *Pool) Sever(i int) { p.agents[i].Sever() }

// Revive lifts a Sever on agent slot i.
func (p *Pool) Revive(i int) { p.agents[i].Revive() }

// DecideStats returns the number of successful and failed decision
// round trips so far.
func (p *Pool) DecideStats() (ok, failed int64) {
	return p.decides[0].Load(), p.decides[1].Load()
}

// Close releases every connection.
func (p *Pool) Close() error {
	var wg sync.WaitGroup
	for _, c := range p.agents {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
	return nil
}

func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}
