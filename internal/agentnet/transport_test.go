package agentnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedBackend is a deterministic Backend for transport tests: it
// returns node*1000 + int(obs[0]) so the test can verify routing and
// payload integrity from the action alone.
type scriptedBackend struct {
	id        string
	grantCaps uint32

	mu        sync.Mutex
	hello     Hello
	modelHash string
	models    [][]byte
	decides   int
}

func (b *scriptedBackend) Init(h *Hello) (HelloAck, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hello = *h
	return HelloAck{AgentID: b.id, ModelHash: b.modelHash, Caps: h.WantCaps & b.grantCaps}, nil
}

func (b *scriptedBackend) Decide(node uint32, now float64, obs []float64) (int32, error) {
	b.mu.Lock()
	b.decides++
	b.mu.Unlock()
	if len(obs) == 0 {
		return 0, fmt.Errorf("empty observation")
	}
	return int32(node)*1000 + int32(obs[0]), nil
}

func (b *scriptedBackend) DecideBatch(node uint32, now float64, width int, rows []float64, actions []int32) error {
	for i := range actions {
		actions[i] = int32(node)*1000 + int32(rows[i*width])
	}
	return nil
}

func (b *scriptedBackend) SetModel(hash string, payload []byte) error {
	if hash == "reject" {
		return fmt.Errorf("scripted rejection")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.modelHash = hash
	b.models = append(b.models, append([]byte(nil), payload...))
	return nil
}

func startServer(t *testing.T, b *scriptedBackend) (*Server, string) {
	t.Helper()
	srv := NewServer(func() Backend { return b }, ServerConfig{IdleTimeout: 5 * time.Second})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func testHello() Hello {
	return Hello{
		Seed: 42, Stochastic: true, ObsSize: 4, NumActions: 3,
		Nodes: []uint32{0, 1}, WantCaps: CapBatch | CapModelPush,
	}
}

func testClientConfig() ClientConfig {
	return ClientConfig{
		Timeout:          2 * time.Second,
		DialTimeout:      time.Second,
		ReconnectBackoff: 5 * time.Millisecond,
		ReconnectMax:     20 * time.Millisecond,
		ReconnectBudget:  time.Second,
	}
}

func TestClientServerRequestResponse(t *testing.T) {
	backend := &scriptedBackend{id: "agent-a", grantCaps: CapBatch | CapModelPush, modelHash: "h0"}
	_, addr := startServer(t, backend)

	c, err := Dial(addr, testHello(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ack := c.Ack()
	if ack.AgentID != "agent-a" || ack.ModelHash != "h0" || ack.Caps != CapBatch|CapModelPush {
		t.Fatalf("unexpected ack %+v", ack)
	}
	backend.mu.Lock()
	if backend.hello.Seed != 42 || len(backend.hello.Nodes) != 2 {
		t.Fatalf("backend saw hello %+v", backend.hello)
	}
	backend.mu.Unlock()

	if a, err := c.Decide(7, 1.5, 0, 0, []float64{9, 0, 0, 0}); err != nil || a != 7009 {
		t.Fatalf("decide: %d, %v", a, err)
	}
	as, err := c.DecideBatch(3, 2.0, 0, 2, []float64{5, 0, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0] != 3005 || as[1] != 3008 {
		t.Fatalf("batch actions %v", as)
	}
	if err := c.PushModel("h1", []byte("weights")); err != nil {
		t.Fatal(err)
	}
	if err := c.PushModel("reject", []byte("x")); err == nil {
		t.Fatal("rejected push reported success")
	}
	// A nacked push must not kill the session.
	if a, err := c.Decide(1, 3, 0, 0, []float64{2}); err != nil || a != 1002 {
		t.Fatalf("decide after nack: %d, %v", a, err)
	}
	if rtt, err := c.Ping(); err != nil || rtt <= 0 {
		t.Fatalf("ping: %v, %v", rtt, err)
	}
}

func TestServerEnforcesNegotiatedCaps(t *testing.T) {
	backend := &scriptedBackend{id: "limited", grantCaps: 0}
	_, addr := startServer(t, backend)
	h := testHello()
	h.WantCaps = CapBatch
	cfg := testClientConfig()
	cfg.ReconnectBudget = 50 * time.Millisecond
	c, err := Dial(addr, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Ack().Caps != 0 {
		t.Fatalf("granted caps %#x, want none", c.Ack().Caps)
	}
	// Using an ungranted capability is a session-fatal protocol error.
	if _, err := c.DecideBatch(0, 0, 0, 1, []float64{1}); err == nil {
		t.Fatal("DecideBatch without CapBatch succeeded")
	}
}

func TestClientReconnectsAfterServerRestart(t *testing.T) {
	backend := &scriptedBackend{id: "flappy", grantCaps: CapBatch}
	srv1, addr := startServer(t, backend)

	c, err := Dial(addr, testHello(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Decide(0, 0, 0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}

	// Kill the server; restart on the same port while the client is
	// retrying in its backoff loop.
	srv1.Close()
	srv2 := NewServer(func() Backend { return backend }, ServerConfig{IdleTimeout: 5 * time.Second})
	restarted := make(chan error, 1)
	go func() {
		// The old listener's port can linger briefly; retry the bind.
		var err error
		for i := 0; i < 100; i++ {
			if _, err = srv2.Listen(addr); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		restarted <- err
	}()
	t.Cleanup(func() { srv2.Close() })
	if err := <-restarted; err != nil {
		t.Fatalf("rebind: %v", err)
	}

	// The request after the outage must transparently reconnect,
	// re-handshake, and succeed.
	a, err := c.Decide(4, 9, 0, 0, []float64{2})
	if err != nil {
		t.Fatalf("post-restart decide: %v", err)
	}
	if a != 4002 {
		t.Fatalf("post-restart action %d", a)
	}
}

func TestSeverFailsFastAndReviveRecovers(t *testing.T) {
	backend := &scriptedBackend{id: "victim", grantCaps: 0}
	_, addr := startServer(t, backend)
	c, err := Dial(addr, testHello(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Sever()
	start := time.Now()
	if _, err := c.Decide(0, 0, 0, 0, []float64{1}); err == nil {
		t.Fatal("severed client served a decide")
	}
	// Severed means fail-fast: no reconnect backoff loop.
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("severed decide took %v, want immediate failure", d)
	}
	c.Revive()
	if a, err := c.Decide(2, 0, 0, 0, []float64{3}); err != nil || a != 2003 {
		t.Fatalf("revived decide: %d, %v", a, err)
	}
}

func TestPoolRoutingAndStats(t *testing.T) {
	const agents = 3
	backends := make([]*scriptedBackend, agents)
	endpoints := make([]string, agents)
	for i := range backends {
		backends[i] = &scriptedBackend{id: fmt.Sprintf("agent-%d", i), grantCaps: CapBatch | CapModelPush}
		_, endpoints[i] = startServer(t, backends[i])
	}

	var rttSamples atomic.Int64
	cfg := PoolConfig{
		Client: testClientConfig(),
		ObserveRTT: func(us float64) {
			if us <= 0 {
				t.Errorf("non-positive RTT sample %v", us)
			}
			rttSamples.Add(1)
		},
	}
	const numNodes = 7
	pool, err := DialPool(endpoints, testHello(), numNodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if got := pool.Caps(); got != CapBatch|CapModelPush {
		t.Fatalf("pool caps %#x", got)
	}
	ids := pool.AgentIDs()
	if len(ids) != agents || ids[1] != "agent-1" {
		t.Fatalf("agent ids %v", ids)
	}

	// Node v must land on agent v mod agents, and the agent must have
	// been told it owns v at handshake.
	for v := 0; v < numNodes; v++ {
		a, err := pool.Decide(v, 0, 0, 0, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if a != int32(v)*1000+1 {
			t.Fatalf("node %d action %d", v, a)
		}
		owner := backends[v%agents]
		owner.mu.Lock()
		found := false
		for _, n := range owner.hello.Nodes {
			if int(n) == v {
				found = true
			}
		}
		owner.mu.Unlock()
		if !found {
			t.Fatalf("agent %d does not know it owns node %d", v%agents, v)
		}
	}

	if err := pool.PushModel("h9", []byte("w")); err != nil {
		t.Fatal(err)
	}
	for i, b := range backends {
		b.mu.Lock()
		if b.modelHash != "h9" {
			t.Errorf("agent %d model hash %q after push", i, b.modelHash)
		}
		b.mu.Unlock()
	}
	if worst, err := pool.PingAll(); err != nil || worst <= 0 {
		t.Fatalf("ping all: %v, %v", worst, err)
	}

	// Kill agent 1: its nodes fail, other nodes keep deciding.
	pool.Sever(1)
	if _, err := pool.Decide(1, 0, 0, 0, []float64{1}); err == nil {
		t.Fatal("decide on severed agent succeeded")
	}
	if _, err := pool.Decide(2, 0, 0, 0, []float64{1}); err != nil {
		t.Fatalf("healthy agent affected by sever: %v", err)
	}
	pool.Revive(1)
	if _, err := pool.Decide(1, 0, 0, 0, []float64{1}); err != nil {
		t.Fatalf("revived agent: %v", err)
	}

	ok, failed := pool.DecideStats()
	if ok != int64(numNodes)+2 || failed != 1 {
		t.Fatalf("decide stats ok=%d failed=%d", ok, failed)
	}
	if rttSamples.Load() != ok+failed {
		t.Fatalf("rtt samples %d, want %d", rttSamples.Load(), ok+failed)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	backend := &scriptedBackend{id: "v", grantCaps: 0}
	_, addr := startServer(t, backend)
	// Dial forces the right version, so drive the handshake manually.
	h := testHello()
	h.Version = ProtoVersion + 1
	cfg := testClientConfig()
	c := &Client{addr: addr, hello: h, cfg: cfg}
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err == nil {
		t.Fatal("version mismatch accepted")
	}
}
