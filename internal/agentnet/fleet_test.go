package agentnet

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"distcoord/internal/telemetry"
)

func dialTestPool(t *testing.T, agents, numNodes int, reg *telemetry.Registry) *Pool {
	t.Helper()
	endpoints := make([]string, agents)
	for i := range endpoints {
		b := &scriptedBackend{id: fmt.Sprintf("agent-%d", i), grantCaps: CapBatch, modelHash: "m0"}
		_, endpoints[i] = startServer(t, b)
	}
	pool, err := DialPool(endpoints, testHello(), numNodes, PoolConfig{
		Client:  testClientConfig(),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

// TestPoolFleetTelemetry drives decisions, a failure, and a kill/revive
// cycle through a pool wired to a shared registry and checks both the
// agent.<slot>.* series and the /fleet snapshot they aggregate into.
func TestPoolFleetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	pool := dialTestPool(t, 2, 4, reg)
	defer pool.Close()

	for v := 0; v < 4; v++ {
		if _, err := pool.Decide(v, 0, 0, 0, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	pool.Sever(1)
	if _, err := pool.Decide(1, 0, 0, 0, []float64{1}); err == nil {
		t.Fatal("severed agent served a decision")
	}
	pool.Revive(1)

	if got := reg.Counter("agent.0.decides").Value(); got != 2 {
		t.Errorf("agent.0.decides = %v, want 2", got)
	}
	if got := reg.Counter("agent.1.failures").Value(); got != 1 {
		t.Errorf("agent.1.failures = %v, want 1", got)
	}
	if got := reg.Gauge("agent.1.up").Value(); got != 1 {
		t.Errorf("agent.1.up = %v after revive, want 1", got)
	}
	if reg.Histogram("agent.0.rtt_us").Count() == 0 {
		t.Error("agent.0.rtt_us has no samples")
	}

	rr := httptest.NewRecorder()
	pool.FleetHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/fleet", nil))
	var snap FleetSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("fleet JSON: %v\n%s", err, rr.Body.String())
	}
	if snap.NumAgents != 2 || snap.NumNodes != 4 {
		t.Errorf("snapshot shape = %d agents / %d nodes, want 2/4", snap.NumAgents, snap.NumNodes)
	}
	if snap.Decides != 4 || snap.Failed != 1 {
		t.Errorf("snapshot totals = %d ok / %d failed, want 4/1", snap.Decides, snap.Failed)
	}
	a1 := snap.Agents[1]
	if a1.ID != "agent-1" || a1.ModelHash != "m0" || !a1.Up {
		t.Errorf("agent 1 status = %+v", a1)
	}
	var kinds []string
	for _, ev := range a1.Events {
		kinds = append(kinds, ev.Kind)
	}
	if strings.Join(kinds, ",") != "sever,revive" {
		t.Errorf("agent 1 timeline = %v, want [sever revive]", kinds)
	}
}

// TestPoolCloseRetiresSharedGauges pins the stale-gauge fix: closing a
// pool must remove every agent.<slot>.* series from a SHARED registry
// (the obs server outlives the pool under -obs-wait), while a pool that
// owns its private registry must leave it intact so FleetSnapshot keeps
// working after Close.
func TestPoolCloseRetiresSharedGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("rpc.other").Inc()
	pool := dialTestPool(t, 2, 4, reg)
	if _, err := pool.Decide(0, 0, 0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if strings.HasPrefix(name, "agent.") {
			t.Errorf("stale per-agent counter %q after Close", name)
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "agent.") {
			t.Errorf("stale per-agent gauge %q after Close", name)
		}
	}
	if _, ok := snap.Counters["rpc.other"]; !ok {
		t.Error("Close deleted metrics outside the agent.* namespace")
	}

	// Private registry: nothing to retire, snapshot stays serviceable.
	own := dialTestPool(t, 1, 1, nil)
	if _, err := own.Decide(0, 0, 0, 0, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := own.Close(); err != nil {
		t.Fatal(err)
	}
	if snap := own.FleetSnapshot(); snap.Agents[0].Decides != 1 {
		t.Errorf("private-registry snapshot lost its counts after Close: %+v", snap.Agents[0])
	}
}
