package agentnet

import (
	"testing"
	"time"
)

// sum re-adds the five sub-spans; the tiling invariant is that this
// equals TotalNS exactly, in int64, for every derivation path.
func (t RPCTiming) sum() int64 {
	return t.SendNS + t.NetNS + t.QueueNS + t.InferNS + t.ReturnNS
}

func TestDeriveTimingTilesExactly(t *testing.T) {
	base := time.Unix(100, 0)
	at := func(ns int64) time.Time { return base.Add(time.Duration(ns)) }
	cases := []struct {
		name              string
		t1, t2, t3        int64 // offsets from t0
		serverNS, inferNS int64
		want              RPCTiming
	}{
		{
			name: "honest server report",
			t1:   100, t2: 1100, t3: 1200, serverNS: 600, inferNS: 400,
			want: RPCTiming{TotalNS: 1200, SendNS: 100, NetNS: 400, QueueNS: 200, InferNS: 400, ReturnNS: 100},
		},
		{
			name: "server claims more than the wire window (clock skew)",
			t1:   100, t2: 1100, t3: 1200, serverNS: 5000, inferNS: 400,
			want: RPCTiming{TotalNS: 1200, SendNS: 100, NetNS: 0, QueueNS: 600, InferNS: 400, ReturnNS: 100},
		},
		{
			name: "inference claims more than the server span",
			t1:   100, t2: 1100, t3: 1200, serverNS: 600, inferNS: 9000,
			want: RPCTiming{TotalNS: 1200, SendNS: 100, NetNS: 400, QueueNS: 0, InferNS: 600, ReturnNS: 100},
		},
		{
			name: "negative server report is ignored",
			t1:   100, t2: 1100, t3: 1200, serverNS: -5, inferNS: -7,
			want: RPCTiming{TotalNS: 1200, SendNS: 100, NetNS: 1000, QueueNS: 0, InferNS: 0, ReturnNS: 100},
		},
		{
			name: "zero-duration round trip",
			t1:   0, t2: 0, t3: 0, serverNS: 0, inferNS: 0,
			want: RPCTiming{},
		},
	}
	for _, tc := range cases {
		got := deriveTiming(at(0), at(tc.t1), at(tc.t2), at(tc.t3), tc.serverNS, tc.inferNS)
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
		if got.sum() != got.TotalNS {
			t.Errorf("%s: sub-spans sum to %d, total %d", tc.name, got.sum(), got.TotalNS)
		}
	}
}

func TestFailedTimingTiles(t *testing.T) {
	got := failedTiming(1500 * time.Nanosecond)
	if got.TotalNS != 1500 || got.SendNS != 1500 {
		t.Errorf("failed timing = %+v, want total==send==1500", got)
	}
	if got.sum() != got.TotalNS {
		t.Errorf("failed timing does not tile: %+v", got)
	}
}

// TestDecideRecordsTiming exercises the live path: a real round trip
// over loopback must leave a fully-tiled, server-informed timing behind.
func TestDecideRecordsTiming(t *testing.T) {
	backend := &scriptedBackend{id: "timed", grantCaps: CapBatch}
	_, addr := startServer(t, backend)
	c, err := Dial(addr, testHello(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Decide(1, 0.5, 7, 1, []float64{1, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	tm := c.LastRPCTiming()
	if tm.TotalNS <= 0 {
		t.Fatalf("no timing recorded: %+v", tm)
	}
	if tm.sum() != tm.TotalNS {
		t.Errorf("decide timing does not tile: %+v", tm)
	}
	for name, v := range map[string]int64{
		"send": tm.SendNS, "net": tm.NetNS, "queue": tm.QueueNS,
		"infer": tm.InferNS, "return": tm.ReturnNS,
	} {
		if v < 0 {
			t.Errorf("negative %s span: %+v", name, tm)
		}
	}

	if _, err := c.DecideBatch(1, 1.0, 2, 4, []float64{1, 0, 0, 0, 2, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	tm = c.LastRPCTiming()
	if tm.TotalNS <= 0 || tm.sum() != tm.TotalNS {
		t.Errorf("batch timing does not tile: %+v", tm)
	}
}

// TestDecideSteadyStateZeroAlloc pins the acceptance criterion that the
// remote decide path allocates nothing per round trip once warm. The
// measurement is process-wide, so it covers the server's per-connection
// loop on the other end of the loopback socket too.
func TestDecideSteadyStateZeroAlloc(t *testing.T) {
	backend := &scriptedBackend{id: "hot", grantCaps: CapBatch}
	_, addr := startServer(t, backend)
	c, err := Dial(addr, testHello(), testClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obs := []float64{3, 1, 4, 1}
	rows := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	// Warm both paths so scratch buffers reach steady-state capacity.
	for i := 0; i < 10; i++ {
		if _, err := c.Decide(2, float64(i), uint64(i), uint64(i), obs); err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecideBatch(2, float64(i), uint64(i), 4, rows); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.Decide(2, 1.5, 9, 9, obs); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("Decide allocates %.2f/op in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.DecideBatch(2, 1.5, 9, 4, rows); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("DecideBatch allocates %.2f/op in steady state, want 0", n)
	}
}
