// Package agentnet implements the wire protocol and control plane that
// connect the simulation driver to per-node agent daemons (cmd/agentd).
//
// The paper's premise is that coordination agents are *distributed*: each
// network node runs its own policy and decides locally. In-process
// coordinators (internal/coord) model that inside one address space; this
// package makes the boundary real. The driver ships observation rows to
// agent processes over TCP and gets sampled actions back, so the
// Coordinator seam of internal/simnet becomes a genuine process boundary
// while the event loop stays deterministic.
//
// Everything here is stdlib-only: frames are length-prefixed binary
// (4-byte big-endian payload length, 1 type byte, payload), numbers are
// fixed-width big-endian, float64 travels as math.Float64bits. The
// package is deliberately policy-agnostic — it moves bytes and enforces
// the handshake/liveness rules; internal/coord supplies the Backend that
// turns observations into actions.
package agentnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ProtoVersion is the wire protocol version. Both sides send it in the
// handshake and refuse mismatches, so a stale agentd binary fails loudly
// at connect time instead of mis-decoding frames mid-run.
//
// Version history:
//
//	1: initial protocol
//	2: Decide/DecideBatch carry a trace context (flow + span IDs);
//	   Action/Actions piggyback server-side span durations (ServerNS,
//	   InferNS) so the driver can decompose each decision round trip
const ProtoVersion uint16 = 2

// MaxFrame bounds a frame payload (type byte + body). Model pushes carry
// whole checkpoints, so the cap is generous; everything else is tiny.
// A length prefix above this is treated as a protocol error, which stops
// a corrupt or hostile peer from making us allocate gigabytes.
const MaxFrame = 64 << 20

// Message type bytes. The value space is shared by both directions; each
// request type has a fixed response type (Decide→Action, Ping→Pong, ...).
const (
	MsgHello byte = iota + 1
	MsgHelloAck
	MsgDecide
	MsgAction
	MsgDecideBatch
	MsgActions
	MsgModelPush
	MsgModelAck
	MsgPing
	MsgPong
	MsgError
)

// Capability bits negotiated in the handshake. The driver requests a set
// in Hello; the agent grants a subset in HelloAck. Only granted
// capabilities may be used on the connection — coord.Remote reports the
// intersection through simnet.CapsProvider so the engine never calls a
// path the agents cannot serve.
const (
	// CapBatch: the agent accepts DecideBatch frames (whole same-node
	// decision cohorts in one round trip).
	CapBatch uint32 = 1 << iota
	// CapModelPush: the agent accepts ModelPush frames and hot-swaps its
	// policy after checksum verification.
	CapModelPush
)

// WriteFrame writes one frame: uint32 big-endian length of (type byte +
// payload), then the type byte, then the payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("agentnet: frame type %d payload %d exceeds MaxFrame", typ, len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame written by WriteFrame. It returns the type
// byte and the payload (a fresh slice owned by the caller).
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("agentnet: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("agentnet: short frame: %w", err)
	}
	return body[0], body[1:], nil
}

// frameStart resets buf to a frame skeleton: a 5-byte header
// placeholder the message payload is appended after. finishFrame fills
// the header once the payload is in place; the frame then goes out in a
// single Write (one packet under TCP_NODELAY, where the header+payload
// pair WriteFrame emits could be two). The hot request/response loops
// build frames this way into reusable scratch buffers.
func frameStart(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0, 0, 0)
}

// finishFrame fills the header of a frame built by frameStart.
func finishFrame(frame []byte, typ byte) {
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	frame[4] = typ
}

// readFrameInto reads one frame like ReadFrame but into buf, growing it
// only when the frame outsizes its capacity. It returns the type byte,
// the payload (aliasing the buffer, valid until the next read into it),
// and the possibly-grown buffer for the caller to keep. This is the
// zero-allocation read path used by the client and server hot loops.
func readFrameInto(r io.Reader, buf []byte) (byte, []byte, []byte, error) {
	// The header is read into the scratch buffer, not a local array: a
	// stack [4]byte passed through the io.Reader interface escapes, and
	// that one hidden allocation per frame — on each side of the socket —
	// is exactly what this path exists to avoid.
	if cap(buf) < 4 {
		buf = make([]byte, 64)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n < 1 || n > MaxFrame {
		return 0, nil, buf, fmt.Errorf("agentnet: invalid frame length %d", n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, buf, fmt.Errorf("agentnet: short frame: %w", err)
	}
	return body[0], body[1:n], buf, nil
}

// DecodeFrame parses one frame from buf without consuming a reader: it
// returns the type byte, the payload (aliasing buf), and the total bytes
// consumed. io.ErrUnexpectedEOF means buf holds a prefix of a valid
// frame. This is the entry point the fuzzer drives.
func DecodeFrame(buf []byte) (typ byte, payload []byte, n int, err error) {
	if len(buf) < 4 {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	ln := binary.BigEndian.Uint32(buf[:4])
	if ln < 1 || ln > MaxFrame {
		return 0, nil, 0, fmt.Errorf("agentnet: invalid frame length %d", ln)
	}
	if uint32(len(buf)-4) < ln {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	body := buf[4 : 4+ln]
	return body[0], body[1:], 4 + int(ln), nil
}

// --- primitive append/read helpers -----------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}
func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}
func appendF64s(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}
func appendU32s(b []byte, vs []uint32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, v)
	}
	return b
}
func appendI32s(b []byte, vs []int32) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU32(b, uint32(v))
	}
	return b
}

// dec is a cursor over a payload. The first decode error sticks; callers
// check err once at the end, which keeps the per-field code linear.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("agentnet: truncated %s at offset %d", what, d.off)
	}
}

func (d *dec) u8(what string) byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16(what string) uint16 {
	if d.err != nil || d.off+2 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32(what string) uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64(what string) uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) boolean(what string) bool { return d.u8(what) != 0 }

// count reads a u32 length and sanity-checks it against the bytes that
// remain, assuming each element needs at least elemSize bytes. This is
// what keeps a fuzzer-supplied length of 2^31 from allocating 16 GiB.
func (d *dec) count(what string, elemSize int) int {
	n := d.u32(what)
	if d.err != nil {
		return 0
	}
	if int(n) > (len(d.b)-d.off)/elemSize {
		d.fail(what)
		return 0
	}
	return int(n)
}

func (d *dec) str(what string) string {
	n := d.count(what, 1)
	if d.err != nil {
		return ""
	}
	v := string(d.b[d.off : d.off+n])
	d.off += n
	return v
}

func (d *dec) bytes(what string) []byte {
	n := d.count(what, 1)
	if d.err != nil {
		return nil
	}
	v := make([]byte, n)
	copy(v, d.b[d.off:d.off+n])
	d.off += n
	return v
}

func (d *dec) f64s(what string) []float64 {
	n := d.count(what, 8)
	if d.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.f64(what)
	}
	return vs
}

// f64sInto decodes a float64 vector into dst, reusing its capacity. The
// request structs in the client/server hot loops decode through this so
// a steady-state session performs no per-request allocations.
func (d *dec) f64sInto(dst []float64, what string) []float64 {
	n := d.count(what, 8)
	if d.err != nil {
		return dst[:0]
	}
	if dst == nil || cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.f64(what)
	}
	return dst
}

func (d *dec) u32s(what string) []uint32 {
	n := d.count(what, 4)
	if d.err != nil {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = d.u32(what)
	}
	return vs
}

func (d *dec) i32s(what string) []int32 {
	n := d.count(what, 4)
	if d.err != nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.u32(what))
	}
	return vs
}

// i32sInto is f64sInto for int32 vectors.
func (d *dec) i32sInto(dst []int32, what string) []int32 {
	n := d.count(what, 4)
	if d.err != nil {
		return dst[:0]
	}
	if dst == nil || cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int32(d.u32(what))
	}
	return dst
}

// done returns the sticky decode error, also failing if trailing garbage
// follows the message — a length-prefixed protocol has no excuse for
// leftover bytes, and tolerating them would mask encoder bugs.
func (d *dec) done(what string) error {
	if d.err == nil && d.off != len(d.b) {
		d.err = fmt.Errorf("agentnet: %s has %d trailing bytes", what, len(d.b)-d.off)
	}
	return d.err
}

// --- messages ---------------------------------------------------------

// Hello opens a connection (driver → agent). It carries everything the
// agent needs to reconstruct the in-process decision state exactly: the
// run seed (per-node RNG streams derive from it), the sampling mode, the
// observation/action geometry, and the node IDs this agent serves.
type Hello struct {
	Version    uint16
	Seed       int64
	Stochastic bool
	ObsSize    uint32
	NumActions uint32
	Nodes      []uint32
	WantCaps   uint32
	// ModelHash is the checkpoint hash the driver expects the agent to
	// run. Empty means "whatever you have loaded".
	ModelHash string
}

func (m *Hello) Marshal() []byte {
	b := make([]byte, 0, 64+4*len(m.Nodes)+len(m.ModelHash))
	b = appendU16(b, m.Version)
	b = appendU64(b, uint64(m.Seed))
	b = appendBool(b, m.Stochastic)
	b = appendU32(b, m.ObsSize)
	b = appendU32(b, m.NumActions)
	b = appendU32s(b, m.Nodes)
	b = appendU32(b, m.WantCaps)
	b = appendString(b, m.ModelHash)
	return b
}

func (m *Hello) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Version = d.u16("hello.version")
	m.Seed = int64(d.u64("hello.seed"))
	m.Stochastic = d.boolean("hello.stochastic")
	m.ObsSize = d.u32("hello.obs_size")
	m.NumActions = d.u32("hello.num_actions")
	m.Nodes = d.u32s("hello.nodes")
	m.WantCaps = d.u32("hello.want_caps")
	m.ModelHash = d.str("hello.model_hash")
	return d.done("hello")
}

// HelloAck completes the handshake (agent → driver).
type HelloAck struct {
	Version uint16
	// AgentID identifies the agent process (host:port plus pid suffix);
	// the pool registry keys liveness and kill-fault targeting on it.
	AgentID string
	// ModelHash is the checksum of the checkpoint the agent actually
	// loaded. The driver compares it against its own policy hash and
	// pushes the model when they differ (and CapModelPush was granted).
	ModelHash string
	// Caps is the granted subset of Hello.WantCaps.
	Caps uint32
}

func (m *HelloAck) Marshal() []byte {
	b := make([]byte, 0, 32+len(m.AgentID)+len(m.ModelHash))
	b = appendU16(b, m.Version)
	b = appendString(b, m.AgentID)
	b = appendString(b, m.ModelHash)
	b = appendU32(b, m.Caps)
	return b
}

func (m *HelloAck) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Version = d.u16("hello_ack.version")
	m.AgentID = d.str("hello_ack.agent_id")
	m.ModelHash = d.str("hello_ack.model_hash")
	m.Caps = d.u32("hello_ack.caps")
	return d.done("hello_ack")
}

// Decide asks for one action (driver → agent): the observation row for a
// flow at node Node at simulation time Now. Flow and Span carry the
// driver's trace context so the agent-side work is attributable to a
// specific flow's decision segment; agents echo nothing back — the
// context exists so both halves of a distributed span share an identity.
type Decide struct {
	Node uint32
	Now  float64
	Flow uint64
	Span uint64
	Obs  []float64
}

// AppendTo appends the marshaled payload to b. The client marshals into
// a reusable scratch buffer through this, keeping the decide path
// allocation-free.
func (m *Decide) AppendTo(b []byte) []byte {
	b = appendU32(b, m.Node)
	b = appendF64(b, m.Now)
	b = appendU64(b, m.Flow)
	b = appendU64(b, m.Span)
	b = appendF64s(b, m.Obs)
	return b
}

func (m *Decide) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, 32+8*len(m.Obs)))
}

func (m *Decide) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Node = d.u32("decide.node")
	m.Now = d.f64("decide.now")
	m.Flow = d.u64("decide.flow")
	m.Span = d.u64("decide.span")
	m.Obs = d.f64sInto(m.Obs, "decide.obs")
	return d.done("decide")
}

// Action answers a Decide (agent → driver). ServerNS and InferNS are the
// piggybacked server-side span durations: ServerNS covers the agent from
// frame-read-complete to response-encode-start (decode + queue + infer),
// InferNS just the policy inference inside it. Response encode+write
// cannot time itself into its own payload, so it lands in the driver's
// network sub-span by construction.
type Action struct {
	Action   int32
	ServerNS uint64
	InferNS  uint64
}

func (m *Action) AppendTo(b []byte) []byte {
	b = appendU32(b, uint32(m.Action))
	b = appendU64(b, m.ServerNS)
	b = appendU64(b, m.InferNS)
	return b
}

func (m *Action) Marshal() []byte { return m.AppendTo(make([]byte, 0, 20)) }

func (m *Action) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Action = int32(d.u32("action.action"))
	m.ServerNS = d.u64("action.server_ns")
	m.InferNS = d.u64("action.infer_ns")
	return d.done("action")
}

// DecideBatch ships a same-(node, time) decision cohort in one round
// trip: Rows holds len(Rows)/Width observation rows, row-major, exactly
// as coord.observeRows packs them.
type DecideBatch struct {
	Node uint32
	Now  float64
	// Span is the trace context for the whole cohort: the rows share one
	// round trip, so they share one span (flow identity stays driver-side
	// where the cohort membership is known).
	Span  uint64
	Width uint32
	Rows  []float64
}

func (m *DecideBatch) AppendTo(b []byte) []byte {
	b = appendU32(b, m.Node)
	b = appendF64(b, m.Now)
	b = appendU64(b, m.Span)
	b = appendU32(b, m.Width)
	b = appendF64s(b, m.Rows)
	return b
}

func (m *DecideBatch) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, 32+8*len(m.Rows)))
}

func (m *DecideBatch) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Node = d.u32("decide_batch.node")
	m.Now = d.f64("decide_batch.now")
	m.Span = d.u64("decide_batch.span")
	m.Width = d.u32("decide_batch.width")
	m.Rows = d.f64sInto(m.Rows, "decide_batch.rows")
	if d.err == nil && m.Width != 0 && len(m.Rows)%int(m.Width) != 0 {
		return fmt.Errorf("agentnet: decide_batch rows %d not a multiple of width %d", len(m.Rows), m.Width)
	}
	if d.err == nil && m.Width == 0 && len(m.Rows) != 0 {
		return fmt.Errorf("agentnet: decide_batch has rows but zero width")
	}
	return d.done("decide_batch")
}

// Actions answers a DecideBatch, one action per row in row order.
// ServerNS/InferNS have Action's semantics, covering the whole cohort.
type Actions struct {
	ServerNS uint64
	InferNS  uint64
	Actions  []int32
}

func (m *Actions) AppendTo(b []byte) []byte {
	b = appendU64(b, m.ServerNS)
	b = appendU64(b, m.InferNS)
	b = appendI32s(b, m.Actions)
	return b
}

func (m *Actions) Marshal() []byte {
	return m.AppendTo(make([]byte, 0, 24+4*len(m.Actions)))
}

func (m *Actions) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.ServerNS = d.u64("actions.server_ns")
	m.InferNS = d.u64("actions.infer_ns")
	m.Actions = d.i32sInto(m.Actions, "actions.actions")
	return d.done("actions")
}

// ModelPush ships a complete serialized checkpoint (driver → agent). The
// agent must verify that Payload hashes to Hash before deserializing or
// persisting anything (nn.LoadVerified / nn.WriteFileVerified).
type ModelPush struct {
	Hash    string
	Payload []byte
}

func (m *ModelPush) Marshal() []byte {
	b := make([]byte, 0, 8+len(m.Hash)+len(m.Payload))
	b = appendString(b, m.Hash)
	b = appendBytes(b, m.Payload)
	return b
}

func (m *ModelPush) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Hash = d.str("model_push.hash")
	m.Payload = d.bytes("model_push.payload")
	return d.done("model_push")
}

// ModelAck answers a ModelPush. OK false carries the rejection reason
// (hash mismatch, malformed checkpoint, geometry mismatch).
type ModelAck struct {
	Hash string
	OK   bool
	Err  string
}

func (m *ModelAck) Marshal() []byte {
	b := make([]byte, 0, 16+len(m.Hash)+len(m.Err))
	b = appendString(b, m.Hash)
	b = appendBool(b, m.OK)
	b = appendString(b, m.Err)
	return b
}

func (m *ModelAck) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Hash = d.str("model_ack.hash")
	m.OK = d.boolean("model_ack.ok")
	m.Err = d.str("model_ack.err")
	return d.done("model_ack")
}

// Ping is the liveness probe; Pong must echo the nonce.
type Ping struct {
	Nonce uint64
}

func (m *Ping) Marshal() []byte { return appendU64(nil, m.Nonce) }

func (m *Ping) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Nonce = d.u64("ping.nonce")
	return d.done("ping")
}

// Pong answers a Ping.
type Pong struct {
	Nonce uint64
}

func (m *Pong) Marshal() []byte { return appendU64(nil, m.Nonce) }

func (m *Pong) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Nonce = d.u64("pong.nonce")
	return d.done("pong")
}

// ErrorMsg is a fatal in-band error; the sender closes the connection
// after writing it.
type ErrorMsg struct {
	Msg string
}

func (m *ErrorMsg) Marshal() []byte { return appendString(nil, m.Msg) }

func (m *ErrorMsg) Unmarshal(p []byte) error {
	d := &dec{b: p}
	m.Msg = d.str("error.msg")
	return d.done("error")
}
