package agentnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Backend is the policy side of an agent daemon: it turns observation
// rows into actions. agentnet owns the sockets and framing; the backend
// owns the model. internal/coord provides the real implementation
// (PolicyBackend); tests provide scripted ones.
//
// A Backend instance serves exactly one driver connection. Init is
// called once with the decoded Hello and must (re)build all decision
// state from it — in particular the per-node RNG streams derived from
// Hello.Seed — so that a reconnecting driver always starts from a
// well-defined state.
type Backend interface {
	// Init validates the handshake and returns the agent's half: its ID,
	// loaded-model hash, and the granted capability subset of h.WantCaps.
	Init(h *Hello) (HelloAck, error)
	// Decide returns one action for an observation row at node.
	Decide(node uint32, now float64, obs []float64) (int32, error)
	// DecideBatch fills actions (len(rows)/width entries, pre-sized by
	// the caller) for a same-node cohort. Only called if Init granted
	// CapBatch.
	DecideBatch(node uint32, now float64, width int, rows []float64, actions []int32) error
	// SetModel verifies and hot-swaps the serialized checkpoint. Only
	// called if Init granted CapModelPush.
	SetModel(hash string, payload []byte) error
}

// ServerConfig tunes a Server. Zero values get sane defaults.
type ServerConfig struct {
	// IdleTimeout is the per-connection read deadline. A driver that
	// goes silent longer than this (no decides, no pings) is presumed
	// dead and the session is dropped. Default 2 minutes.
	IdleTimeout time.Duration
	// ObserveDecide, if set, receives the server-side span durations of
	// every decision request: the cohort size (1 for Decide), serverNS
	// (frame-read-complete → response-encode-start, i.e. decode + queue +
	// inference), inferNS (policy inference inside it), and encodeNS
	// (response encode + socket write — invisible to the driver, which
	// accounts it as network time). cmd/agentd points this at its local
	// telemetry registry. Nil-checked on the hot path.
	ObserveDecide func(batch int, serverNS, inferNS, encodeNS int64)
	// Logf receives session lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

// Server accepts driver connections on a listener and serves each with a
// fresh Backend. It is used both by cmd/agentd (one server per process)
// and by in-process tests/benchmarks (goroutine-hosted loopback servers,
// which is also how BENCH_rpc.json's socket mode runs).
type Server struct {
	NewBackend func() Backend
	Config     ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer returns a Server producing a fresh backend per connection.
func NewServer(newBackend func() Backend, cfg ServerConfig) *Server {
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	return &Server{NewBackend: newBackend, Config: cfg, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Close. It returns nil after
// Close, or the first accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("agentnet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("agentnet: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Listen starts serving on addr in a background goroutine and returns
// the bound address (useful with ":0"). The caller must Close the
// server to release the port.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agentnet: listen %s: %w", addr, err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			s.logf("agentnet: serve: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Close stops accepting, severs live sessions, and waits for their
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Config.Logf != nil {
		s.Config.Logf(format, args...)
	}
}

// serveConn runs one session: handshake, then a strict request/response
// loop. Any protocol violation writes an Error frame and drops the
// connection — the client treats that as agent death and re-handshakes.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	remote := conn.RemoteAddr()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // request/response over tiny frames; Nagle only adds RTT
	}

	fail := func(err error) {
		s.logf("agentnet: session %v: %v", remote, err)
		msg := ErrorMsg{Msg: err.Error()}
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		WriteFrame(conn, MsgError, msg.Marshal())
	}

	conn.SetReadDeadline(time.Now().Add(s.Config.IdleTimeout))
	typ, payload, err := ReadFrame(conn)
	if err != nil {
		s.logf("agentnet: session %v: handshake read: %v", remote, err)
		return
	}
	if typ != MsgHello {
		fail(fmt.Errorf("expected Hello, got message type %d", typ))
		return
	}
	var hello Hello
	if err := hello.Unmarshal(payload); err != nil {
		fail(err)
		return
	}
	if hello.Version != ProtoVersion {
		fail(fmt.Errorf("protocol version mismatch: driver %d, agent %d", hello.Version, ProtoVersion))
		return
	}
	backend := s.NewBackend()
	ack, err := backend.Init(&hello)
	if err != nil {
		fail(err)
		return
	}
	ack.Version = ProtoVersion
	if err := WriteFrame(conn, MsgHelloAck, ack.Marshal()); err != nil {
		s.logf("agentnet: session %v: handshake write: %v", remote, err)
		return
	}
	s.logf("agentnet: session %v: handshake ok (agent %s, nodes %d, caps %#x)",
		remote, ack.AgentID, len(hello.Nodes), ack.Caps)

	// The decision loop reuses its read buffer, request structs (whose
	// row/obs slices keep their capacity across requests via the
	// decode-into helpers), actions scratch, and framed-response buffer,
	// so a steady-state session performs zero allocations per decide —
	// matching the client side, where the whole loopback round trip is
	// asserted allocation-free.
	var (
		rbuf, wbuf []byte
		reqDecide  Decide
		reqBatch   DecideBatch
		actions    []int32
	)
	observe := s.Config.ObserveDecide
	for {
		conn.SetReadDeadline(time.Now().Add(s.Config.IdleTimeout))
		typ, payload, rb, err := readFrameInto(conn, rbuf)
		rbuf = rb
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("agentnet: session %v: read: %v", remote, err)
			}
			return
		}
		tRead := time.Now() // frame fully read; ServerNS starts here
		switch typ {
		case MsgDecide:
			if err := reqDecide.Unmarshal(payload); err != nil {
				fail(err)
				return
			}
			tInfer := time.Now()
			a, err := backend.Decide(reqDecide.Node, reqDecide.Now, reqDecide.Obs)
			if err != nil {
				fail(err)
				return
			}
			tEnc := time.Now() // pre-encode; ServerNS ends here
			resp := Action{
				Action:   a,
				ServerNS: uint64(tEnc.Sub(tRead).Nanoseconds()),
				InferNS:  uint64(tEnc.Sub(tInfer).Nanoseconds()),
			}
			wbuf = resp.AppendTo(frameStart(wbuf))
			finishFrame(wbuf, MsgAction)
			conn.SetWriteDeadline(time.Now().Add(s.Config.IdleTimeout))
			if _, err := conn.Write(wbuf); err != nil {
				s.logf("agentnet: session %v: write: %v", remote, err)
				return
			}
			if observe != nil {
				observe(1, int64(resp.ServerNS), int64(resp.InferNS), time.Since(tEnc).Nanoseconds())
			}
		case MsgDecideBatch:
			if ack.Caps&CapBatch == 0 {
				fail(errors.New("DecideBatch without negotiated CapBatch"))
				return
			}
			if err := reqBatch.Unmarshal(payload); err != nil {
				fail(err)
				return
			}
			k := 0
			if reqBatch.Width > 0 {
				k = len(reqBatch.Rows) / int(reqBatch.Width)
			}
			if cap(actions) < k {
				actions = make([]int32, k)
			}
			actions = actions[:k]
			tInfer := time.Now()
			if err := backend.DecideBatch(reqBatch.Node, reqBatch.Now, int(reqBatch.Width), reqBatch.Rows, actions); err != nil {
				fail(err)
				return
			}
			tEnc := time.Now()
			resp := Actions{
				ServerNS: uint64(tEnc.Sub(tRead).Nanoseconds()),
				InferNS:  uint64(tEnc.Sub(tInfer).Nanoseconds()),
				Actions:  actions,
			}
			wbuf = resp.AppendTo(frameStart(wbuf))
			finishFrame(wbuf, MsgActions)
			conn.SetWriteDeadline(time.Now().Add(s.Config.IdleTimeout))
			if _, err := conn.Write(wbuf); err != nil {
				s.logf("agentnet: session %v: write: %v", remote, err)
				return
			}
			if observe != nil {
				observe(k, int64(resp.ServerNS), int64(resp.InferNS), time.Since(tEnc).Nanoseconds())
			}
		case MsgModelPush:
			if ack.Caps&CapModelPush == 0 {
				fail(errors.New("ModelPush without negotiated CapModelPush"))
				return
			}
			var req ModelPush
			if err := req.Unmarshal(payload); err != nil {
				fail(err)
				return
			}
			// A bad checkpoint is a per-request failure, not a session
			// failure: the driver learns why via the nack and keeps the
			// connection (and the agent's previous model) intact.
			ackMsg := ModelAck{Hash: req.Hash, OK: true}
			if err := backend.SetModel(req.Hash, req.Payload); err != nil {
				ackMsg.OK = false
				ackMsg.Err = err.Error()
			}
			conn.SetWriteDeadline(time.Now().Add(s.Config.IdleTimeout))
			if err := WriteFrame(conn, MsgModelAck, ackMsg.Marshal()); err != nil {
				s.logf("agentnet: session %v: write: %v", remote, err)
				return
			}
		case MsgPing:
			var req Ping
			if err := req.Unmarshal(payload); err != nil {
				fail(err)
				return
			}
			conn.SetWriteDeadline(time.Now().Add(s.Config.IdleTimeout))
			if err := WriteFrame(conn, MsgPong, (&Pong{Nonce: req.Nonce}).Marshal()); err != nil {
				s.logf("agentnet: session %v: write: %v", remote, err)
				return
			}
		default:
			fail(fmt.Errorf("unexpected message type %d", typ))
			return
		}
	}
}
