package agentnet

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// message is the shared shape of every protocol message.
type message interface {
	Marshal() []byte
	Unmarshal([]byte) error
}

// sampleMessages returns one populated instance of every message type,
// keyed by its frame type byte. Kept in one place so the round-trip,
// fuzz-corpus, and frame tests all cover the same surface.
func sampleMessages() map[byte]message {
	return map[byte]message{
		MsgHello: &Hello{
			Version: ProtoVersion, Seed: -12345, Stochastic: true,
			ObsSize: 24, NumActions: 6, Nodes: []uint32{0, 3, 6, 9},
			WantCaps: CapBatch | CapModelPush, ModelHash: "deadbeef",
		},
		MsgHelloAck: &HelloAck{Version: ProtoVersion, AgentID: "127.0.0.1:9001#42", ModelHash: "deadbeef", Caps: CapBatch},
		MsgDecide: &Decide{
			Node: 7, Now: 123.456, Flow: 0xabcdef0123456789, Span: 77,
			Obs: []float64{0, 0.5, -1, math.MaxFloat64, 1e-300},
		},
		MsgAction: &Action{Action: -1, ServerNS: 41_000, InferNS: 12_345},
		MsgDecideBatch: &DecideBatch{
			Node: 2, Now: 99.25, Span: 31337, Width: 3,
			Rows: []float64{1, 2, 3, 4, 5, 6},
		},
		MsgActions:   &Actions{ServerNS: 90_000, InferNS: 45_000, Actions: []int32{0, 5, -1, 3}},
		MsgModelPush: &ModelPush{Hash: "cafe", Payload: []byte(`{"sizes":[2,2]}`)},
		MsgModelAck:  &ModelAck{Hash: "cafe", OK: false, Err: "hash mismatch"},
		MsgPing:      &Ping{Nonce: 0xfeedface},
		MsgPong:      &Pong{Nonce: 0xfeedface},
		MsgError:     &ErrorMsg{Msg: "boom"},
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for typ, msg := range sampleMessages() {
		data := msg.Marshal()
		fresh := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(message)
		if err := fresh.Unmarshal(data); err != nil {
			t.Errorf("type %d: unmarshal: %v", typ, err)
			continue
		}
		if !reflect.DeepEqual(msg, fresh) {
			t.Errorf("type %d: round trip mismatch:\n got %+v\nwant %+v", typ, fresh, msg)
		}
	}
}

// TestMessageRoundTripRandom is a property test: randomly populated
// messages must survive marshal→unmarshal bit-exactly, and every strict
// prefix of the encoding must fail to unmarshal (no silent truncation).
func TestMessageRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randF64s := func(n int) []float64 {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		return vs
	}
	randU32s := func(n int) []uint32 {
		vs := make([]uint32, n)
		for i := range vs {
			vs[i] = rng.Uint32()
		}
		return vs
	}
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(8)
		msgs := []message{
			&Hello{
				Version: uint16(rng.Intn(1 << 16)), Seed: rng.Int63() - rng.Int63(),
				Stochastic: rng.Intn(2) == 0, ObsSize: rng.Uint32() % 1000,
				NumActions: rng.Uint32() % 100, Nodes: randU32s(rng.Intn(20)),
				WantCaps: rng.Uint32(), ModelHash: string(randBytes(rng.Intn(70))),
			},
			&Decide{
				Node: rng.Uint32(), Now: rng.Float64() * 1e6,
				Flow: rng.Uint64(), Span: rng.Uint64(), Obs: randF64s(rng.Intn(64)),
			},
			&DecideBatch{
				Node: rng.Uint32(), Now: rng.Float64(), Span: rng.Uint64(),
				Width: uint32(width), Rows: randF64s(width * rng.Intn(10)),
			},
			&Actions{ServerNS: rng.Uint64(), InferNS: rng.Uint64(), Actions: func() []int32 {
				vs := make([]int32, rng.Intn(20))
				for i := range vs {
					vs[i] = rng.Int31() - rng.Int31()
				}
				return vs
			}()},
			&ModelPush{Hash: string(randBytes(64)), Payload: randBytes(rng.Intn(4096))},
		}
		for _, msg := range msgs {
			data := msg.Marshal()
			fresh := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(message)
			if err := fresh.Unmarshal(data); err != nil {
				t.Fatalf("trial %d %T: unmarshal: %v", trial, msg, err)
			}
			if !equalMessage(msg, fresh) {
				t.Fatalf("trial %d %T: round trip mismatch:\n got %+v\nwant %+v", trial, msg, fresh, msg)
			}
			if len(data) > 0 {
				cut := rng.Intn(len(data))
				prefix := reflect.New(reflect.TypeOf(msg).Elem()).Interface().(message)
				if err := prefix.Unmarshal(data[:cut]); err == nil {
					t.Fatalf("trial %d %T: %d-byte prefix of %d-byte encoding unmarshalled cleanly", trial, msg, cut, len(data))
				}
			}
		}
	}
}

// equalMessage compares messages treating nil and empty slices as equal
// (the codec cannot distinguish them, by design).
func equalMessage(a, b message) bool {
	va, vb := reflect.ValueOf(a).Elem(), reflect.ValueOf(b).Elem()
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		if fa.Kind() == reflect.Slice && fa.Len() == 0 && fb.Len() == 0 {
			continue
		}
		// Float64 fields must match bit-for-bit, not under ==, so NaN
		// payloads count as equal when preserved.
		if !reflect.DeepEqual(bitsOf(fa), bitsOf(fb)) {
			return false
		}
	}
	return true
}

func bitsOf(v reflect.Value) any {
	switch v.Kind() {
	case reflect.Float64:
		return math.Float64bits(v.Float())
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Float64 {
			bits := make([]uint64, v.Len())
			for i := range bits {
				bits[i] = math.Float64bits(v.Index(i).Float())
			}
			return bits
		}
	}
	return v.Interface()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	order := []byte{MsgHello, MsgDecide, MsgAction, MsgPing, MsgError}
	samples := sampleMessages()
	for _, typ := range order {
		if err := WriteFrame(&buf, typ, samples[typ].Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()

	// Reader path.
	r := bytes.NewReader(stream)
	for _, want := range order {
		typ, payload, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if typ != want {
			t.Fatalf("got type %d, want %d", typ, want)
		}
		if !bytes.Equal(payload, samples[want].Marshal()) {
			t.Fatalf("type %d payload mismatch", want)
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}

	// Buffer path must consume the identical byte stream.
	rest := stream
	for _, want := range order {
		typ, payload, n, err := DecodeFrame(rest)
		if err != nil {
			t.Fatal(err)
		}
		if typ != want || !bytes.Equal(payload, samples[want].Marshal()) {
			t.Fatalf("DecodeFrame type %d mismatch", want)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}

	// Every strict prefix of a frame is "incomplete", never "corrupt".
	one := stream[:5+len(samples[MsgHello].Marshal())]
	for cut := 0; cut < len(one); cut++ {
		if _, _, _, err := DecodeFrame(one[:cut]); err != io.ErrUnexpectedEOF {
			t.Fatalf("prefix %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestFrameLengthGuards(t *testing.T) {
	// Zero-length frame (no type byte) is invalid.
	if _, _, _, err := DecodeFrame([]byte{0, 0, 0, 0}); err == nil || err == io.ErrUnexpectedEOF {
		t.Fatalf("zero-length frame: got %v", err)
	}
	// A length prefix above MaxFrame is rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, _, err := DecodeFrame(huge); err == nil || err == io.ErrUnexpectedEOF {
		t.Fatalf("oversized frame: got %v", err)
	}
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("ReadFrame accepted oversized length prefix")
	}
	// WriteFrame refuses to produce an oversized frame.
	if err := WriteFrame(io.Discard, MsgDecide, make([]byte, MaxFrame)); err == nil {
		t.Fatal("WriteFrame accepted oversized payload")
	}
}

// TestDecodeRejectsHostileLengths pins the allocation guard: a tiny
// payload claiming a huge element count must fail cleanly instead of
// allocating gigabytes.
func TestDecodeRejectsHostileLengths(t *testing.T) {
	hostile := appendU32(nil, 0xffffffff) // "4 billion obs values" in 4 bytes
	var d Decide
	hdr := appendU64(appendU64(appendF64(appendU32(nil, 1), 0), 2), 3) // node, now, flow, span
	if err := d.Unmarshal(append(hdr, hostile...)); err == nil {
		t.Fatal("hostile obs count accepted")
	}
	var a Actions
	if err := a.Unmarshal(hostile); err == nil {
		t.Fatal("hostile actions count accepted")
	}
	var mp ModelPush
	if err := mp.Unmarshal(hostile); err == nil {
		t.Fatal("hostile payload length accepted")
	}
}

func TestDecideBatchShapeValidation(t *testing.T) {
	bad := DecideBatch{Node: 1, Now: 0, Width: 3, Rows: []float64{1, 2, 3, 4}}
	var out DecideBatch
	if err := out.Unmarshal(bad.Marshal()); err == nil {
		t.Fatal("rows not a multiple of width accepted")
	}
	badZero := DecideBatch{Node: 1, Width: 0, Rows: []float64{1}}
	if err := out.Unmarshal(badZero.Marshal()); err == nil {
		t.Fatal("zero width with rows accepted")
	}
}
