// Package telemetry is the observability substrate of the repository: a
// small stdlib-only metrics registry (counters, gauges, streaming
// histograms), a buffered JSONL sink for structured event logs (training
// episodes, per-flow simulator traces), and profiling hooks (CPU/heap
// profiles, an optional net/http/pprof listener). It exists so the hot
// paths promised by the ROADMAP are measured rather than guessed: every
// binary can enable sinks and profiles with flags, and every subsystem
// can emit structured records through nil-checked hooks that cost
// nothing when disabled.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative only to correct over-counting; counters
// are conventionally monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float metric. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a named collection of metrics. Lookups create metrics on
// first use, so call sites need no registration phase. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// DeletePrefix removes every counter, gauge, and histogram whose name
// starts with prefix and returns how many metrics were retired. Metric
// handles already held by callers keep working but are orphaned — they
// no longer appear in snapshots or exports. This is how per-instance
// series (e.g. the pool's agent.<slot>.* fleet metrics) are retired when
// their owner goes away permanently, instead of surviving as stale
// gauges that an obs scrape would keep reporting as live.
func (r *Registry) DeletePrefix(prefix string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if strings.HasPrefix(name, prefix) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if strings.HasPrefix(name, prefix) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if strings.HasPrefix(name, prefix) {
			delete(r.hists, name)
			n++
		}
	}
	return n
}

// Snapshot is a point-in-time export of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value. Values are read while
// the registry lock is held: re-looking names up through the creating
// accessors would resurrect metrics a concurrent DeletePrefix retired
// between collection and read.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
