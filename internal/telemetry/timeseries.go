package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// This file adds short-horizon time-series memory to the registry: a
// History periodically samples every counter and gauge into fixed-
// capacity ring buffers, so transient behavior — a chaos fault's drop
// spike, the recovery dip after an agent-kill, a reconnect burst — is
// visible as a curve on the /timeseries endpoint instead of being
// averaged away by the end-of-run snapshot. Counters are sampled as
// running totals (clients diff adjacent samples for rates); gauges as
// instantaneous values. Capacity bounds memory: at the default
// 100ms × 600 samples a window covers the most recent minute.

// Sample is one point of a sampled series: wall-clock time in Unix
// seconds and the metric's value at that instant.
type Sample struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// seriesRing is one metric's fixed-capacity sample window.
type seriesRing struct {
	buf     []Sample
	next    int
	wrapped bool
}

func (s *seriesRing) push(p Sample) {
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, p)
		return
	}
	s.buf[s.next] = p
	s.next = (s.next + 1) % len(s.buf)
	s.wrapped = true
}

// window returns the samples oldest-first.
func (s *seriesRing) window() []Sample {
	if !s.wrapped {
		out := make([]Sample, len(s.buf))
		copy(out, s.buf)
		return out
	}
	out := make([]Sample, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

// History samples a Registry's counters and gauges on a fixed interval
// into per-series ring buffers. Start/Stop manage the background
// sampler; SampleNow takes one sample synchronously (tests, and a final
// sample on Stop so the window always includes the end state).
type History struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu     sync.Mutex
	series map[string]*seriesRing

	stop chan struct{}
	done chan struct{}
}

// NewHistory builds a sampler over reg. interval is the sampling period
// (≤0 defaults to 100ms); capacity is the per-series window length in
// samples (≤0 defaults to 600).
func NewHistory(reg *Registry, interval time.Duration, capacity int) *History {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 600
	}
	return &History{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		series:   make(map[string]*seriesRing),
	}
}

// Start launches the background sampler. Idempotent only in the sense
// that calling it twice leaks nothing but doubles the sampling rate —
// callers own the lifecycle and call it once.
func (h *History) Start() {
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				h.SampleNow()
			}
		}
	}()
}

// Stop halts the background sampler, taking one final sample so the
// window's last point is the registry's end state. Safe without Start.
func (h *History) Stop() {
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop, h.done = nil, nil
	h.SampleNow()
}

// SampleNow appends the current value of every counter and gauge to its
// ring. Series appear on first sight (metrics created mid-run get a
// shorter window, not a gap of zeros); series whose metric was retired
// (Registry.DeletePrefix) stop growing but keep their recorded window —
// the timeline of a dead agent remains inspectable.
func (h *History) SampleNow() {
	snap := h.reg.Snapshot()
	now := float64(time.Now().UnixNano()) / 1e9

	h.mu.Lock()
	defer h.mu.Unlock()
	for name, v := range snap.Counters {
		h.ring(name).push(Sample{T: now, V: float64(v)})
	}
	for name, v := range snap.Gauges {
		h.ring(name).push(Sample{T: now, V: v})
	}
}

func (h *History) ring(name string) *seriesRing {
	r := h.series[name]
	if r == nil {
		r = &seriesRing{buf: make([]Sample, 0, h.capacity)}
		h.series[name] = r
	}
	return r
}

// Window returns every series' samples, oldest-first.
func (h *History) Window() map[string][]Sample {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][]Sample, len(h.series))
	for name, r := range h.series {
		out[name] = r.window()
	}
	return out
}

// timeseriesResponse is the /timeseries schema.
type timeseriesResponse struct {
	IntervalSeconds float64             `json:"interval_seconds"`
	Capacity        int                 `json:"capacity"`
	Series          map[string][]Sample `json:"series"`
}

// Handler returns the /timeseries endpoint: sampling parameters plus
// every series' current window as JSON.
func (h *History) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		resp := timeseriesResponse{
			IntervalSeconds: h.interval.Seconds(),
			Capacity:        h.capacity,
			Series:          h.Window(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp) //nolint:errcheck // client went away
	})
}
