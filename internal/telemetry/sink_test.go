package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

type testRecord struct {
	Seed    int     `json:"seed"`
	Episode int     `json:"episode"`
	Score   float64 `json:"score"`
}

func TestSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "episodes.jsonl")
	s, err := NewSink(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []testRecord{{0, 0, 0.5}, {0, 1, 0.75}, {1, 0, 0.25}}
	for _, r := range want {
		if err := s.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Emit(want[0]); err == nil {
		t.Error("Emit after Close succeeded")
	}

	got := readJSONL[testRecord](t, path)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// readJSONL decodes every line of a JSONL file through encoding/json.
func readJSONL[T any](t *testing.T, path string) []T {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec T
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", len(out)+1, err, sc.Text())
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSinkRotationKeepsLinesWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	s, err := NewSink(path, WithMaxBytes(200))
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Emit(testRecord{Seed: i, Episode: i, Score: float64(i) / n}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := filepath.Glob(path + "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("expected rotation to produce multiple files, got %v", files)
	}
	total := 0
	for _, fp := range files {
		recs := readJSONL[testRecord](t, fp) // fails on any torn line
		total += len(recs)
		if fi, err := os.Stat(fp); err == nil && fp != path && fi.Size() > 200 {
			t.Errorf("rotated file %s is %d bytes, exceeds the 200-byte cap", fp, fi.Size())
		}
	}
	if total != n {
		t.Errorf("records across rotated files = %d, want %d", total, n)
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Emit(testRecord{Seed: g, Episode: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	lines := 0
	for sc.Scan() {
		var rec testRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("interleaved line: %v\n%s", err, sc.Text())
		}
		lines++
	}
	if lines != 800 {
		t.Errorf("lines = %d, want 800", lines)
	}
}

func TestProfilerWritesProfilesAndServesPprof(t *testing.T) {
	dir := t.TempDir()
	p := Profiler{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		PprofAddr:  "127.0.0.1:0",
	}
	if !p.Enabled() {
		t.Fatal("Enabled() = false")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i % 7)
	}
	runtime.KeepAlive(x)

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", p.Addr()))
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", resp.StatusCode)
	}

	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{p.CPUProfile, p.MemProfile} {
		fi, err := os.Stat(fp)
		if err != nil {
			t.Errorf("profile %s not written: %v", fp, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", fp)
		}
	}
}

func TestProfilerFlagRegistration(t *testing.T) {
	var p Profiler
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	p.RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-pprof", "c"}); err != nil {
		t.Fatal(err)
	}
	if p.CPUProfile != "a" || p.MemProfile != "b" || p.PprofAddr != "c" {
		t.Errorf("parsed = %+v", p)
	}
}
