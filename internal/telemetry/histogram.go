package telemetry

import (
	"math"
	"sort"
	"sync"
)

// histGrowth is the geometric bucket growth factor of the streaming
// histogram: consecutive bucket boundaries differ by 2%, so any quantile
// estimate is within ~2% relative error of the exact sample quantile
// while memory stays bounded by the dynamic range of the observed values
// (a few hundred buckets for microseconds-to-hours durations) instead of
// growing with the sample count.
const histGrowth = 1.02

var invLogGrowth = 1 / math.Log(histGrowth)

// Histogram is a streaming histogram over positive values (durations,
// delays): observations land in geometrically spaced buckets, so
// p50/p95/p99 are answerable without retaining every sample. Non-positive
// values are counted in a dedicated underflow bucket and reported at the
// exact observed minimum. Safe for concurrent use.
type Histogram struct {
	mu       sync.Mutex
	buckets  map[int]uint64
	underflo uint64 // observations <= 0
	count    uint64
	sum      float64
	min, max float64
}

func newHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]uint64)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.underflo++
		return
	}
	h.buckets[bucketIndex(v)]++
}

// bucketIndex maps a positive value to its geometric bucket.
func bucketIndex(v float64) int {
	return int(math.Floor(math.Log(v) * invLogGrowth))
}

// bucketValue is the representative value of a bucket (its geometric
// midpoint).
func bucketValue(idx int) float64 {
	return math.Pow(histGrowth, float64(idx)+0.5)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observed value, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the exact smallest observation, or 0 with none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the exact largest observation, or 0 with none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns an estimate of the q-quantile (0..1, nearest rank)
// with relative error bounded by the bucket growth factor, clamped to
// the exact observed [min, max]. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= h.underflo {
		return h.min
	}
	rank -= h.underflo

	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var seen uint64
	for _, idx := range idxs {
		seen += h.buckets[idx]
		if seen >= rank {
			v := bucketValue(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Bucket is one cumulative histogram bucket for text exposition: Count
// observations were <= Upper.
type Bucket struct {
	Upper float64
	Count uint64
}

// CumulativeBuckets returns the occupied buckets in ascending bound
// order with cumulative counts (Prometheus "le" semantics). The
// underflow bucket (observations <= 0) is below every positive bound,
// so it is folded into each cumulative count. The final +Inf bucket is
// implicit: its count is Count().
func (h *Histogram) CumulativeBuckets() []Bucket {
	h.mu.Lock()
	defer h.mu.Unlock()
	idxs := make([]int, 0, len(h.buckets))
	for idx := range h.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	out := make([]Bucket, 0, len(idxs))
	cum := h.underflo
	for _, idx := range idxs {
		cum += h.buckets[idx]
		// Bucket idx holds values in [growth^idx, growth^(idx+1)), so
		// growth^(idx+1) is a valid "le" bound for everything in it.
		out = append(out, Bucket{Upper: math.Pow(histGrowth, float64(idx)+1), Count: cum})
	}
	return out
}

// HistogramSnapshot is an exportable summary of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the current summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}
