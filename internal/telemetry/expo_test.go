package telemetry

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestWritePromGolden pins the exposition format byte for byte: type
// lines, sorted metric ordering (counters, gauges, histograms), integer
// counters, shortest-round-trip floats, cumulative histogram buckets
// with _sum/_count. Histogram bucket bounds are derived from the 2%
// geometric growth, so the golden uses values that land in obviously
// distinct buckets.
func TestWritePromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows.dropped").Add(3)
	r.Counter("flows.completed").Add(40)
	r.Gauge("grid.cells.total").Set(120)
	r.Gauge("grid.eta_seconds").Set(7.25)
	h := r.Histogram("flow.phase.transit")
	h.Observe(-1) // underflow: counted in every cumulative bucket
	h.Observe(1)
	h.Observe(1)
	h.Observe(100)

	b1 := math.Pow(histGrowth, float64(bucketIndex(1))+1)
	b2 := math.Pow(histGrowth, float64(bucketIndex(100))+1)
	want := strings.Join([]string{
		"# TYPE flows_completed counter",
		"flows_completed 40",
		"# TYPE flows_dropped counter",
		"flows_dropped 3",
		"# TYPE grid_cells_total gauge",
		"grid_cells_total 120",
		"# TYPE grid_eta_seconds gauge",
		"grid_eta_seconds 7.25",
		"# TYPE flow_phase_transit histogram",
		`flow_phase_transit_bucket{le="` + promFloat(b1) + `"} 3`,
		`flow_phase_transit_bucket{le="` + promFloat(b2) + `"} 4`,
		`flow_phase_transit_bucket{le="+Inf"} 4`,
		"flow_phase_transit_sum 101",
		"flow_phase_transit_count 4",
		"",
	}, "\n")

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promLine matches one valid exposition line: a comment/type line or a
// sample "name[{labels}] value".
var promLine = regexp.MustCompile(`^(# .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? [^ ]+)$`)

// parseProm validates the text format line by line and returns the
// sample values per series (bucket labels folded into the name).
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" { // empty scrape (no metrics yet)
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line %d not parseable exposition text: %q", i+1, line)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d value %q: %v", i+1, line, err)
		}
		out[line[:sp]] = v
	}
	return out
}

// TestWritePromBucketMonotonicity checks the histogram invariants over
// a spread of observations: cumulative bucket counts are non-decreasing
// in bound order, the +Inf bucket equals _count, and _sum matches.
func TestWritePromBucketMonotonicity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("delay")
	sum := 0.0
	for i := 0; i < 1000; i++ {
		v := math.Pow(1.3, float64(i%40)) * (1 + float64(i)/1000)
		h.Observe(v)
		sum += v
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, sb.String())
	if samples["delay_count"] != 1000 {
		t.Errorf("delay_count = %g, want 1000", samples["delay_count"])
	}
	if math.Abs(samples["delay_sum"]-sum) > 1e-6*sum {
		t.Errorf("delay_sum = %g, want %g", samples["delay_sum"], sum)
	}

	// Re-walk the text in order for monotonicity (map order won't do).
	prev := -1.0
	prevBound := math.Inf(-1)
	buckets := 0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "delay_bucket{le=") {
			continue
		}
		buckets++
		boundStr := line[strings.Index(line, `"`)+1 : strings.LastIndex(line, `"`)]
		bound := math.Inf(1)
		if boundStr != "+Inf" {
			var err error
			if bound, err = strconv.ParseFloat(boundStr, 64); err != nil {
				t.Fatal(err)
			}
		}
		if bound <= prevBound {
			t.Fatalf("bucket bounds not increasing: %g after %g", bound, prevBound)
		}
		v, _ := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if v < prev {
			t.Fatalf("bucket counts not monotone: %g after %g (le=%g)", v, prev, bound)
		}
		prev, prevBound = v, bound
	}
	if buckets < 10 {
		t.Fatalf("only %d buckets exposed, want a spread", buckets)
	}
	if prev != samples["delay_count"] {
		t.Errorf("+Inf bucket %g != count %g", prev, samples["delay_count"])
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"grid.cells.done":  "grid_cells_done",
		"flow.phase.wait":  "flow_phase_wait",
		"ok_name:colon":    "ok_name:colon",
		"9starts.with.num": "_9starts_with_num",
		"sp aces-and+more": "sp_aces_and_more",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
