package telemetry

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// Profiler bundles the standard Go profiling hooks behind three flags so
// every binary exposes them uniformly: a CPU profile over the process
// lifetime, a heap profile at exit, and a live net/http/pprof endpoint.
//
//	var prof telemetry.Profiler
//	prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
type Profiler struct {
	CPUProfile string // write a CPU profile here (pprof format)
	MemProfile string // write a heap profile here on Stop
	PprofAddr  string // serve net/http/pprof on this address

	cpuFile *os.File
	ln      net.Listener
	srv     *http.Server
}

// RegisterFlags installs the -cpuprofile, -memprofile, and -pprof flags.
func (p *Profiler) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Enabled reports whether any profiling output was requested.
func (p *Profiler) Enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.PprofAddr != ""
}

// Start begins CPU profiling and the pprof listener as configured. It is
// a no-op when nothing was requested.
func (p *Profiler) Start() error {
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: starting CPU profile: %w", err)
		}
		p.cpuFile = f
	}
	if p.PprofAddr != "" {
		ln, err := net.Listen("tcp", p.PprofAddr)
		if err != nil {
			p.Stop()
			return fmt.Errorf("telemetry: pprof listener: %w", err)
		}
		p.ln = ln
		p.srv = &http.Server{Handler: pprofMux()}
		go p.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Stop
	}
	return nil
}

// pprofMux builds a private mux that forwards only /debug/pprof/*.
// Serving http.DefaultServeMux here would leak every handler any other
// package registers globally onto the profiling port.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Addr returns the pprof listener's bound address ("" when disabled),
// useful with ":0" style addresses.
func (p *Profiler) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Stop finishes the CPU profile, writes the heap profile, and shuts the
// pprof listener down. Safe to call when Start failed or did nothing.
func (p *Profiler) Stop() error {
	var firstErr error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		p.cpuFile = nil
	}
	if p.MemProfile != "" {
		if err := writeHeapProfile(p.MemProfile); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if p.srv != nil {
		p.srv.SetKeepAlivesEnabled(false)
		done := make(chan struct{})
		go func() { p.srv.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(time.Second):
		}
		p.srv, p.ln = nil, nil
	}
	return firstErr
}

// writeHeapProfile captures an up-to-date heap profile.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize recent frees so the profile reflects live heap
	return pprof.WriteHeapProfile(f)
}
