package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ObsServer is the live observability endpoint: a stdlib-only HTTP
// server exposing a Registry and coarse run state while a binary is
// running, so a multi-minute training run or experiment grid is
// inspectable instead of a black box. It serves, on its own private mux
// (never http.DefaultServeMux, so it composes with the pprof listener
// and leaks no globally registered handler):
//
//	/metrics     Prometheus text exposition of every registry metric
//	/snapshot    the registry's JSON Snapshot
//	/run         live run state: uptime, training episode/reward progress,
//	             experiment grid progress with ETA, free-form info
//	/timeseries  recent sampled counter/gauge windows (EnableHistory)
//
// Handlers only read; the hot paths keep writing through the ordinary
// Registry/Counter/Gauge/Histogram APIs, which are safe for concurrent
// use, so scraping never blocks a simulation.
type ObsServer struct {
	reg  *Registry
	mux  *http.ServeMux
	hist *History

	mu      sync.Mutex
	binary  string
	started time.Time
	info    map[string]string
	seeds   map[int]EpisodeUpdate
	epDone  int

	ln  net.Listener
	srv *http.Server
}

// EpisodeUpdate is one training-progress observation, the /run feed of
// rl.Train's per-episode record stream (clicfg forwards the fields it
// reports here so telemetry does not depend on the rl package).
type EpisodeUpdate struct {
	Seed       int     `json:"seed"`
	Episode    int     `json:"episode"`
	Score      float64 `json:"score"`
	MeanReturn float64 `json:"mean_return"`
	Entropy    float64 `json:"entropy"`
	LR         float64 `json:"lr"`
}

// NewObsServer builds the server for one binary's registry. Call Start
// to bind it to an address.
func NewObsServer(binary string, reg *Registry) *ObsServer {
	o := &ObsServer{
		reg:    reg,
		binary: binary,
		info:   make(map[string]string),
		seeds:  make(map[int]EpisodeUpdate),
	}
	o.mux = http.NewServeMux()
	o.mux.HandleFunc("/", o.handleIndex)
	o.mux.HandleFunc("/metrics", o.handleMetrics)
	o.mux.HandleFunc("/snapshot", o.handleSnapshot)
	o.mux.HandleFunc("/run", o.handleRun)
	return o
}

// Handler returns the server's private mux (tests scrape it without a
// listener via httptest or direct ServeHTTP calls).
func (o *ObsServer) Handler() http.Handler { return o.mux }

// Mount attaches an additional handler subtree to the server's private
// mux — the experiment controller mounts its /runs API next to the
// observability endpoints so one listener serves both. pattern uses
// net/http ServeMux syntax (e.g. "/runs/"); registration is safe at any
// time, including while serving.
func (o *ObsServer) Mount(pattern string, h http.Handler) {
	o.mux.Handle(pattern, h)
}

// Registry returns the registry the server exposes.
func (o *ObsServer) Registry() *Registry { return o.reg }

// EnableHistory starts a background History sampler over the server's
// registry and serves its window on /timeseries. interval and capacity
// follow NewHistory's defaults when ≤0. Call before Start; Close stops
// the sampler. Returns the History for direct inspection in tests.
func (o *ObsServer) EnableHistory(interval time.Duration, capacity int) *History {
	o.hist = NewHistory(o.reg, interval, capacity)
	o.mux.Handle("/timeseries", o.hist.Handler())
	o.hist.Start()
	return o.hist
}

// Start binds the listener (":0" picks a free port; see Addr) and
// serves in the background until Close.
func (o *ObsServer) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: obs listener: %w", err)
	}
	o.mu.Lock()
	o.started = time.Now()
	o.mu.Unlock()
	o.ln = ln
	o.srv = &http.Server{Handler: o.mux}
	go o.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (o *ObsServer) Addr() string {
	if o.ln == nil {
		return ""
	}
	return o.ln.Addr().String()
}

// shutdownTimeout bounds how long Close waits for in-flight scrapes.
// Handlers only read registry state, so responses finish in
// milliseconds; the deadline exists for wedged clients, not slow
// handlers.
const shutdownTimeout = 2 * time.Second

// Close shuts the server down gracefully: the listener stops accepting,
// in-flight scrapes get their complete response, and only connections
// still open after a short deadline are hard-dropped (a /metrics scrape
// racing Close used to lose its body to http.Server.Close). Safe to
// call without Start.
func (o *ObsServer) Close() error {
	if o.hist != nil {
		o.hist.Stop()
		o.hist = nil
	}
	if o.srv == nil {
		return nil
	}
	o.srv.SetKeepAlivesEnabled(false)
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	err := o.srv.Shutdown(ctx)
	cancel()
	if err != nil { // deadline hit: fall back to hard close
		err = o.srv.Close()
	}
	o.srv, o.ln = nil, nil
	return err
}

// SetInfo publishes one free-form key/value pair on /run (algorithm,
// topology, experiment name, ...).
func (o *ObsServer) SetInfo(key, value string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.info[key] = value
}

// ObserveEpisode records live training progress: the latest update per
// training seed plus a total episode count. Safe for concurrent use
// (training seeds run concurrently).
func (o *ObsServer) ObserveEpisode(u EpisodeUpdate) {
	o.mu.Lock()
	o.seeds[u.Seed] = u
	o.epDone++
	o.mu.Unlock()
}

func (o *ObsServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s live observability\n\n/metrics     Prometheus text exposition\n/snapshot    registry snapshot (JSON)\n/run         live run state (JSON)\n/timeseries  sampled metric windows (JSON)\n", o.binary)
}

func (o *ObsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	o.reg.WriteProm(w) //nolint:errcheck // client went away
}

func (o *ObsServer) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(o.reg.Snapshot()) //nolint:errcheck // client went away
}

// runTraining is the training section of the /run response.
type runTraining struct {
	EpisodesDone int             `json:"episodes_done"`
	Seeds        []EpisodeUpdate `json:"seeds"`
}

// runGrid is the experiment-grid section of the /run response, read
// from the engine's grid.cells.* gauges. Done counts cells that
// completed ok; Failed and Skipped account the rest, and Percent covers
// all accounted cells so an aborted grid still reads as 100% finished.
type runGrid struct {
	Total       float64 `json:"total"`
	Done        float64 `json:"done"`
	Failed      float64 `json:"failed,omitempty"`
	Skipped     float64 `json:"skipped,omitempty"`
	Percent     float64 `json:"percent"`
	CellsPerSec float64 `json:"cells_per_sec"`
	ETASeconds  float64 `json:"eta_seconds"`
}

// runState is the /run response schema.
type runState struct {
	Binary        string            `json:"binary"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Info          map[string]string `json:"info,omitempty"`
	Training      *runTraining      `json:"training,omitempty"`
	Grid          *runGrid          `json:"grid,omitempty"`
}

func (o *ObsServer) handleRun(w http.ResponseWriter, _ *http.Request) {
	snap := o.reg.Snapshot()

	o.mu.Lock()
	st := runState{Binary: o.binary}
	if !o.started.IsZero() {
		st.UptimeSeconds = time.Since(o.started).Seconds()
	}
	if len(o.info) > 0 {
		st.Info = make(map[string]string, len(o.info))
		for k, v := range o.info {
			st.Info[k] = v
		}
	}
	if o.epDone > 0 {
		tr := &runTraining{EpisodesDone: o.epDone}
		for _, u := range o.seeds {
			tr.Seeds = append(tr.Seeds, u)
		}
		sort.Slice(tr.Seeds, func(i, j int) bool { return tr.Seeds[i].Seed < tr.Seeds[j].Seed })
		st.Training = tr
	}
	o.mu.Unlock()

	if total, ok := snap.Gauges["grid.cells.total"]; ok && total > 0 {
		g := &runGrid{
			Total:       total,
			Done:        snap.Gauges["grid.cells.done"],
			Failed:      snap.Gauges["grid.cells.failed"],
			Skipped:     snap.Gauges["grid.cells.skipped"],
			CellsPerSec: snap.Gauges["grid.cells_per_sec"],
			ETASeconds:  snap.Gauges["grid.eta_seconds"],
		}
		g.Percent = 100 * (g.Done + g.Failed + g.Skipped) / g.Total
		st.Grid = g
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // client went away
}
