package telemetry

import "testing"

// feed records one observation per time unit over [from, to): success
// with constant delay, or a drop.
func feed(rt *RecoveryTracker, from, to float64, success bool, delay float64) {
	for t := from; t < to; t++ {
		rt.Observe(t, success, delay)
	}
}

// TestRecoveryDipAndRecoveryTime is the canonical outage shape: healthy,
// a 50-unit total outage, healthy again. The stat must report the full
// dip, the drops during it, and the time until the first healthy bucket
// closes.
func TestRecoveryDipAndRecoveryTime(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 100, true, 10)
	feed(rt, 100, 150, false, 0)
	feed(rt, 150, 300, true, 10)

	stats := rt.Analyze([]float64{100})
	if len(stats) != 1 {
		t.Fatalf("stats = %d, want 1", len(stats))
	}
	s := stats[0]
	if s.PreSuccess != 1 {
		t.Errorf("PreSuccess = %g, want 1", s.PreSuccess)
	}
	if s.MinSuccess != 0 {
		t.Errorf("MinSuccess = %g, want 0", s.MinSuccess)
	}
	if s.DipDepth != 1 {
		t.Errorf("DipDepth = %g, want 1", s.DipDepth)
	}
	if s.Drops != 50 {
		t.Errorf("Drops = %d, want 50", s.Drops)
	}
	// First fully healthy bucket is [150,160); it closes at 160.
	if s.RecoveryTime != 60 {
		t.Errorf("RecoveryTime = %g, want 60", s.RecoveryTime)
	}
	if s.PreP95Delay != 10 {
		t.Errorf("PreP95Delay = %g, want 10", s.PreP95Delay)
	}
}

// TestRecoveryNeverRecovered: failures until the end of the window must
// yield RecoveryTime −1 and count every post-fault drop.
func TestRecoveryNeverRecovered(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 100, true, 10)
	feed(rt, 100, 200, false, 0)

	s := rt.Analyze([]float64{100})[0]
	if s.RecoveryTime != -1 {
		t.Errorf("RecoveryTime = %g, want -1", s.RecoveryTime)
	}
	if s.Drops != 100 {
		t.Errorf("Drops = %d, want 100", s.Drops)
	}
	if s.DipDepth != 1 {
		t.Errorf("DipDepth = %g, want 1", s.DipDepth)
	}
}

// TestRecoveryDelayGatesRecovery: the success rate returns immediately
// but delays stay elevated beyond the 1.1x slack, so the system does
// not count as recovered until they settle.
func TestRecoveryDelayGatesRecovery(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 100, true, 10)
	feed(rt, 100, 150, true, 100) // successes, but 10x delay
	feed(rt, 150, 200, true, 10)

	s := rt.Analyze([]float64{100})[0]
	if s.DipDepth != 0 {
		t.Errorf("DipDepth = %g, want 0 (success rate never fell)", s.DipDepth)
	}
	// Buckets [100,150) fail the delay gate; [150,160) passes, closing at 160.
	if s.RecoveryTime != 60 {
		t.Errorf("RecoveryTime = %g, want 60", s.RecoveryTime)
	}
}

// TestAnalyzeWindowsEachFaultToTheNext: with two faults, the first
// stat's window must stop at the second fault so each dip is attributed
// to its own event.
func TestAnalyzeWindowsEachFaultToTheNext(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 100, true, 10)
	feed(rt, 100, 120, false, 0) // first outage, recovers
	feed(rt, 120, 200, true, 10)
	feed(rt, 200, 300, false, 0) // second outage, never recovers

	stats := rt.Analyze([]float64{100, 200})
	if len(stats) != 2 {
		t.Fatalf("stats = %d, want 2", len(stats))
	}
	if stats[0].RecoveryTime != 30 {
		t.Errorf("first RecoveryTime = %g, want 30", stats[0].RecoveryTime)
	}
	if stats[0].Drops != 20 {
		t.Errorf("first Drops = %d, want 20 (second outage must not leak in)", stats[0].Drops)
	}
	if stats[1].RecoveryTime != -1 {
		t.Errorf("second RecoveryTime = %g, want -1", stats[1].RecoveryTime)
	}
}

// TestPreFaultLookbackIsBounded: a messy warmup outside the 10-bucket
// lookback must not dilute the pre-fault baseline.
func TestPreFaultLookbackIsBounded(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 50, false, 0) // warmup failures, buckets 0-4
	feed(rt, 50, 200, true, 10)
	feed(rt, 200, 250, false, 0)

	s := rt.Analyze([]float64{200})[0]
	if s.PreSuccess != 1 {
		t.Errorf("PreSuccess = %g, want 1 (lookback must exclude warmup)", s.PreSuccess)
	}
}

// TestNoPostFaultDataMeansNoDip: observations ending before the fault
// must clamp MinSuccess to the baseline instead of reporting a phantom
// full dip.
func TestNoPostFaultDataMeansNoDip(t *testing.T) {
	rt := NewRecoveryTracker(10)
	feed(rt, 0, 100, true, 10)

	s := rt.Analyze([]float64{100})[0]
	if s.DipDepth != 0 {
		t.Errorf("DipDepth = %g, want 0", s.DipDepth)
	}
	if s.MinSuccess != s.PreSuccess {
		t.Errorf("MinSuccess = %g, want clamped to PreSuccess %g", s.MinSuccess, s.PreSuccess)
	}
	if s.RecoveryTime != -1 {
		t.Errorf("RecoveryTime = %g, want -1", s.RecoveryTime)
	}
}

func TestRecoveryTrackerDefaultsWidth(t *testing.T) {
	if w := NewRecoveryTracker(0).Width(); w != 50 {
		t.Errorf("default width = %g, want 50", w)
	}
	if w := NewRecoveryTracker(25).Width(); w != 25 {
		t.Errorf("width = %g, want 25", w)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if q := quantile(xs, 0.5); q != 3 {
		t.Errorf("p50 = %g, want 3", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Errorf("p100 = %g, want 5", q)
	}
	if q := quantile(nil, 0.95); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	// quantile must not mutate its argument.
	if xs[0] != 5 {
		t.Error("quantile sorted the caller's slice")
	}
}
