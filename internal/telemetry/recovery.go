package telemetry

import (
	"math"
	"sort"
)

// RecoveryTracker accumulates a bucketed time series of flow outcomes so
// that resilience experiments can quantify, per injected fault, how deep
// the success-rate dip was and how long the system took to return to its
// pre-fault service level. It is deliberately simulator-agnostic: feed it
// (time, success, delay) observations and analyze against fault times.
type RecoveryTracker struct {
	width   float64
	buckets []recoveryBucket
}

// recoveryBucket aggregates outcomes of one time window.
type recoveryBucket struct {
	ok     int
	fail   int
	delays []float64 // end-to-end delays of successful flows
}

// NewRecoveryTracker returns a tracker with the given bucket width
// (simulation time units). Width trades resolution against noise; widths
// around the flow deadline work well. Non-positive widths default to 50.
func NewRecoveryTracker(width float64) *RecoveryTracker {
	if width <= 0 {
		width = 50
	}
	return &RecoveryTracker{width: width}
}

// Width returns the bucket width.
func (rt *RecoveryTracker) Width() float64 { return rt.width }

// Observe records one finished flow: success or drop at time t; delay is
// the end-to-end delay and only meaningful for successes.
func (rt *RecoveryTracker) Observe(t float64, success bool, delay float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / rt.width)
	for len(rt.buckets) <= idx {
		rt.buckets = append(rt.buckets, recoveryBucket{})
	}
	b := &rt.buckets[idx]
	if success {
		b.ok++
		b.delays = append(b.delays, delay)
	} else {
		b.fail++
	}
}

// RecoveryStat quantifies the impact of one fault: the service level
// before it, the worst bucket after it, and the time until the pre-fault
// level was restored.
type RecoveryStat struct {
	// FaultTime is the injection time this stat refers to.
	FaultTime float64 `json:"fault_time"`
	// PreSuccess is the success rate over the pre-fault lookback window.
	PreSuccess float64 `json:"pre_success_rate"`
	// MinSuccess is the worst per-bucket success rate between the fault
	// and the next fault (or the end of the run).
	MinSuccess float64 `json:"min_success_rate"`
	// DipDepth is PreSuccess − MinSuccess: how far service quality fell.
	DipDepth float64 `json:"dip_depth"`
	// PreP95Delay is the p95 end-to-end delay before the fault.
	PreP95Delay float64 `json:"pre_p95_delay"`
	// RecoveryTime is how long after the fault the per-bucket success rate
	// and p95 delay both returned to (near) pre-fault levels; −1 when the
	// system never recovered within the observed window.
	RecoveryTime float64 `json:"recovery_time"`
	// Drops counts failed flows between the fault and recovery (or the
	// scan end when the system did not recover).
	Drops int `json:"drops"`
}

// Recovery thresholds: recovered means success rate within successSlack
// of pre-fault and p95 delay within delaySlack of pre-fault.
const (
	successSlack = 0.02
	delaySlack   = 1.1
)

// lookbackBuckets bounds the pre-fault window so slow early-run warmup
// does not dilute the baseline.
const lookbackBuckets = 10

// Analyze computes one RecoveryStat per fault time. Fault times must be
// ascending; each fault's post window extends to the next fault (or the
// end of the observations), so cascades attribute each dip to its own
// event.
func (rt *RecoveryTracker) Analyze(faultTimes []float64) []RecoveryStat {
	stats := make([]RecoveryStat, 0, len(faultTimes))
	for i, ft := range faultTimes {
		end := len(rt.buckets)
		if i+1 < len(faultTimes) {
			if nb := int(faultTimes[i+1] / rt.width); nb < end {
				end = nb
			}
		}
		stats = append(stats, rt.analyzeOne(ft, end))
	}
	return stats
}

// analyzeOne scans buckets [fault, end) against the pre-fault baseline.
func (rt *RecoveryTracker) analyzeOne(faultTime float64, end int) RecoveryStat {
	fb := int(faultTime / rt.width)
	preStart := fb - lookbackBuckets
	if preStart < 0 {
		preStart = 0
	}

	preOK, preFail := 0, 0
	var preDelays []float64
	for i := preStart; i < fb && i < len(rt.buckets); i++ {
		b := rt.buckets[i]
		preOK += b.ok
		preFail += b.fail
		preDelays = append(preDelays, b.delays...)
	}
	stat := RecoveryStat{FaultTime: faultTime, RecoveryTime: -1, MinSuccess: 1}
	if preOK+preFail > 0 {
		stat.PreSuccess = float64(preOK) / float64(preOK+preFail)
	}
	stat.PreP95Delay = quantile(preDelays, 0.95)

	recovered := false
	for i := fb; i < end && i < len(rt.buckets); i++ {
		b := rt.buckets[i]
		if b.ok+b.fail == 0 {
			continue
		}
		rate := float64(b.ok) / float64(b.ok+b.fail)
		if rate < stat.MinSuccess {
			stat.MinSuccess = rate
		}
		if !recovered {
			stat.Drops += b.fail
			p95 := quantile(b.delays, 0.95)
			rateOK := rate >= stat.PreSuccess-successSlack
			delayOK := stat.PreP95Delay <= 0 || p95 <= stat.PreP95Delay*delaySlack
			if rateOK && delayOK {
				recovered = true
				stat.RecoveryTime = float64(i+1)*rt.width - faultTime
			}
		}
	}
	if stat.MinSuccess > stat.PreSuccess {
		stat.MinSuccess = stat.PreSuccess // no post-fault data: no dip
	}
	stat.DipDepth = stat.PreSuccess - stat.MinSuccess
	return stat
}

// quantile returns the q-quantile of xs by nearest rank (0 when empty).
// It copies before sorting, so callers may pass aliased slices.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
