package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestObsServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flows.completed").Add(7)
	reg.Gauge("grid.cells.total").Set(10)
	reg.Gauge("grid.cells.done").Set(4)
	reg.Histogram("flow.phase.total").Observe(12)

	o := NewObsServer("testbin", reg)
	o.SetInfo("algo", "sp")
	o.ObserveEpisode(EpisodeUpdate{Seed: 1, Episode: 5, Score: 0.75})
	o.ObserveEpisode(EpisodeUpdate{Seed: 0, Episode: 6, Score: 0.5})

	code, body := get(t, o.Handler(), "/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	for _, want := range []string{"flows_completed 7", "grid_cells_total 10", "flow_phase_total_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, o.Handler(), "/snapshot")
	if code != 200 {
		t.Fatalf("/snapshot -> %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not a Snapshot: %v", err)
	}
	if snap.Counters["flows.completed"] != 7 || snap.Gauges["grid.cells.done"] != 4 {
		t.Errorf("snapshot values wrong: %+v", snap)
	}

	code, body = get(t, o.Handler(), "/run")
	if code != 200 {
		t.Fatalf("/run -> %d", code)
	}
	var run struct {
		Binary   string            `json:"binary"`
		Info     map[string]string `json:"info"`
		Training *struct {
			EpisodesDone int             `json:"episodes_done"`
			Seeds        []EpisodeUpdate `json:"seeds"`
		} `json:"training"`
		Grid *struct {
			Total, Done, Percent float64
		} `json:"grid"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("/run not JSON: %v\n%s", err, body)
	}
	if run.Binary != "testbin" || run.Info["algo"] != "sp" {
		t.Errorf("run meta wrong: %s", body)
	}
	if run.Training == nil || run.Training.EpisodesDone != 2 ||
		len(run.Training.Seeds) != 2 || run.Training.Seeds[0].Seed != 0 {
		t.Errorf("run training section wrong: %s", body)
	}
	if run.Grid == nil || run.Grid.Total != 10 || run.Grid.Done != 4 || run.Grid.Percent != 40 {
		t.Errorf("run grid section wrong: %s", body)
	}

	if code, _ := get(t, o.Handler(), "/nope"); code != 404 {
		t.Errorf("/nope -> %d, want 404", code)
	}
}

// TestObsServerServesOverTCP exercises the real listener path with
// ":0"-style address resolution (the obs-smoke flow).
func TestObsServerServesOverTCP(t *testing.T) {
	o := NewObsServer("tcptest", NewRegistry())
	if err := o.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	if o.Addr() == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + o.Addr() + "/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"tcptest"`) {
		t.Errorf("GET /run -> %d %s", resp.StatusCode, body)
	}
}

// TestObsServerConcurrentScrape is the race-tier test: hammer /metrics,
// /snapshot, and /run while writers mutate every metric type and the
// training feed. Run with -race this pins the endpoint's thread safety;
// it also checks each scrape is internally monotone.
func TestObsServerConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	o := NewObsServer("racebin", reg)
	const iters = 300

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("ops")
			g := reg.Gauge("grid.cells.total")
			h := reg.Histogram("lat")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i + 1))
				h.Observe(float64(i%37) + 0.5)
				o.ObserveEpisode(EpisodeUpdate{Seed: w, Episode: i})
				reg.Gauge(fmt.Sprintf("dyn.%d", i%11)).Set(1) // metric creation during scrape
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters/3; i++ {
				for _, path := range []string{"/metrics", "/snapshot", "/run"} {
					code, body := get(t, o.Handler(), path)
					if code != 200 {
						t.Errorf("%s -> %d", path, code)
						return
					}
					if path == "/metrics" {
						parseProm(t, body)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestProfilerPprofMuxIsPrivate pins the fix for the DefaultServeMux
// leak: a handler another package registers globally must NOT be
// reachable through the profiling port, while /debug/pprof/ must be.
func TestProfilerPprofMuxIsPrivate(t *testing.T) {
	http.HandleFunc("/leaked-global-handler", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "leaked")
	})
	p := &Profiler{PprofAddr: "127.0.0.1:0"}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	resp, err := http.Get("http://" + p.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/debug/pprof/ -> %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get("http://" + p.Addr() + "/leaked-global-handler")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("globally registered handler served on pprof port: %d, want 404", resp.StatusCode)
	}
}

// TestObsServerCloseWaitsForInflightScrape is the regression test for
// the hard-drop shutdown bug: Close used http.Server.Close, which tore
// down in-flight connections mid-response, so a /metrics scrape racing
// shutdown could read a truncated body. Close now drains via Shutdown
// with a deadline: a response in flight when Close is called must
// arrive complete. The test mounts a handler (exercising Mount, the
// controller attachment point) that blocks mid-request until after
// Close has started. Run with -race this also pins Close's safety
// against concurrent scrapes.
func TestObsServerCloseWaitsForInflightScrape(t *testing.T) {
	o := NewObsServer("shutbin", NewRegistry())
	inHandler := make(chan struct{})
	release := make(chan struct{})
	o.Mount("/slow", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "complete-body")
	}))
	if err := o.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := o.Addr()

	type result struct {
		body string
		err  error
	}
	scraped := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			scraped <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		scraped <- result{body: string(b), err: err}
	}()

	<-inHandler // the scrape is mid-handler; now race shutdown against it
	closed := make(chan error, 1)
	go func() { closed <- o.Close() }()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin draining
	close(release)

	if res := <-scraped; res.err != nil || res.body != "complete-body" {
		t.Errorf("scrape racing Close: body=%q err=%v, want complete response", res.body, res.err)
	}
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/slow"); err == nil {
		t.Error("server still accepting connections after Close")
	}
	if err := o.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestObsServerRunGridTerminalCounts checks /run surfaces the
// failed/skipped gauges and computes percent over all accounted cells,
// so an aborted grid reads 100% finished rather than stuck.
func TestObsServerRunGridTerminalCounts(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("grid.cells.total").Set(10)
	reg.Gauge("grid.cells.done").Set(6)
	reg.Gauge("grid.cells.failed").Set(1)
	reg.Gauge("grid.cells.skipped").Set(3)
	o := NewObsServer("gridbin", reg)
	code, body := get(t, o.Handler(), "/run")
	if code != 200 {
		t.Fatalf("/run -> %d", code)
	}
	var run struct {
		Grid *struct {
			Total, Done, Failed, Skipped, Percent float64
		} `json:"grid"`
	}
	if err := json.Unmarshal([]byte(body), &run); err != nil {
		t.Fatalf("/run not JSON: %v", err)
	}
	if run.Grid == nil || run.Grid.Failed != 1 || run.Grid.Skipped != 3 || run.Grid.Percent != 100 {
		t.Errorf("grid section = %+v, want failed=1 skipped=3 percent=100", run.Grid)
	}
}
