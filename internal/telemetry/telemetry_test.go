package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the naive nearest-rank oracle over retained samples.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func TestHistogramQuantileMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		h := newHistogram()
		n := 100 + rng.Intn(5000)
		samples := make([]float64, n)
		for i := range samples {
			// Log-normal-ish spread across several orders of magnitude,
			// the shape of wall-time and delay distributions.
			samples[i] = math.Exp(rng.NormFloat64()*2) * 10
			h.Observe(samples[i])
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got := h.Quantile(q)
			want := exactQuantile(samples, q)
			// Bucket width bounds relative error; allow one extra width
			// for rank straddling a bucket boundary.
			tol := want * (histGrowth*histGrowth - 1)
			if math.Abs(got-want) > tol {
				t.Errorf("trial %d n=%d q=%.2f: got %g, oracle %g (tol %g)", trial, n, q, got, want, tol)
			}
		}
	}
}

func TestHistogramQuantileMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := newHistogram()
	for i := 0; i < 2000; i++ {
		h.Observe(rng.Float64() * 500)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%.2f) = %g < previous %g: not monotone", q, v, prev)
		}
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%.2f) = %g outside [%g, %g]", q, v, h.Min(), h.Max())
		}
		prev = v
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := newHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
	h.Observe(0)
	h.Observe(-3)
	h.Observe(5)
	if h.Count() != 3 {
		t.Errorf("Count = %d, want 3", h.Count())
	}
	if h.Min() != -3 || h.Max() != 5 {
		t.Errorf("min/max = %g/%g, want -3/5", h.Min(), h.Max())
	}
	if got := h.Quantile(0.1); got != -3 {
		t.Errorf("low quantile with underflow = %g, want exact min -3", got)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 3 {
		t.Errorf("NaN observation counted: Count = %d", h.Count())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("Quantile(%.2f) = %g, want clamped exact 42", q, got)
		}
	}
	if s := h.Snapshot(); s.P50 != 42 || s.P95 != 42 || s.P99 != 42 || s.Count != 100 {
		t.Errorf("Snapshot = %+v", s)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("decisions").Inc()
				r.Gauge("lr").Set(float64(g))
				r.Histogram("delay").Observe(float64(i % 100))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("decisions").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("delay").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestRegistrySnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows").Add(12)
	r.Gauge("load").Set(0.75)
	r.Histogram("delay_ms").Observe(10)
	r.Histogram("delay_ms").Observe(20)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if snap.Counters["flows"] != 12 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["load"] != 0.75 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if h := snap.Histograms["delay_ms"]; h.Count != 2 || h.Min != 10 || h.Max != 20 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
}
