package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestSeriesRingFillAndWrap(t *testing.T) {
	r := &seriesRing{buf: make([]Sample, 0, 4)}
	for i := 0; i < 3; i++ {
		r.push(Sample{T: float64(i), V: float64(i * 10)})
	}
	w := r.window()
	if len(w) != 3 || w[0].T != 0 || w[2].T != 2 {
		t.Fatalf("pre-wrap window = %v", w)
	}

	// Overfill: 4..9 push out 0..5; the window keeps the newest 4,
	// oldest-first.
	for i := 3; i < 10; i++ {
		r.push(Sample{T: float64(i), V: float64(i * 10)})
	}
	w = r.window()
	if len(w) != 4 {
		t.Fatalf("post-wrap window length = %d, want 4", len(w))
	}
	for i, s := range w {
		want := float64(6 + i)
		if s.T != want || s.V != want*10 {
			t.Fatalf("post-wrap window[%d] = %+v, want t=%g", i, s, want)
		}
	}
}

func TestHistorySamplesCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("flows.total")
	g := reg.Gauge("queue.depth")
	h := NewHistory(reg, time.Hour, 8) // manual sampling only

	c.Add(3)
	g.Set(1.5)
	h.SampleNow()
	c.Add(2)
	g.Set(0.5)
	h.SampleNow()

	w := h.Window()
	ct, gt := w["flows.total"], w["queue.depth"]
	if len(ct) != 2 || ct[0].V != 3 || ct[1].V != 5 {
		t.Errorf("counter sampled as %v, want running totals [3 5]", ct)
	}
	if len(gt) != 2 || gt[0].V != 1.5 || gt[1].V != 0.5 {
		t.Errorf("gauge sampled as %v, want [1.5 0.5]", gt)
	}
	if ct[0].T <= 0 || ct[1].T < ct[0].T {
		t.Errorf("timestamps not monotone: %v", ct)
	}

	// A series appearing mid-run gets a shorter window, not zeros.
	reg.Counter("late.arrival").Inc()
	h.SampleNow()
	if late := h.Window()["late.arrival"]; len(late) != 1 || late[0].V != 1 {
		t.Errorf("late series window = %v, want single sample of 1", late)
	}

	// A retired series keeps its recorded window but stops growing.
	if n := reg.DeletePrefix("queue."); n != 1 {
		t.Fatalf("DeletePrefix removed %d series, want 1", n)
	}
	recorded := len(h.Window()["queue.depth"])
	h.SampleNow()
	if got := h.Window()["queue.depth"]; len(got) != recorded {
		t.Errorf("retired series grew from %d to %d samples", recorded, len(got))
	}
}

func TestHistoryStartStopTakesFinalSample(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks")
	h := NewHistory(reg, 5*time.Millisecond, 100)
	h.Start()
	c.Inc()
	time.Sleep(20 * time.Millisecond)
	c.Add(41)
	h.Stop() // takes a final synchronous sample
	w := h.Window()["ticks"]
	if len(w) == 0 {
		t.Fatal("no samples recorded")
	}
	if last := w[len(w)-1]; last.V != 42 {
		t.Errorf("final sample = %+v, want the end state 42", last)
	}
	h.Stop() // idempotent
}

func TestTimeseriesHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(7)
	reg.Gauge("b.level").Set(2.5)
	h := NewHistory(reg, 250*time.Millisecond, 12)
	h.SampleNow()

	rr := httptest.NewRecorder()
	h.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/timeseries", nil))
	if rr.Code != 200 {
		t.Fatalf("handler -> %d", rr.Code)
	}
	var resp struct {
		IntervalSeconds float64             `json:"interval_seconds"`
		Capacity        int                 `json:"capacity"`
		Series          map[string][]Sample `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if resp.IntervalSeconds != 0.25 || resp.Capacity != 12 {
		t.Errorf("sampling params = %g/%d, want 0.25/12", resp.IntervalSeconds, resp.Capacity)
	}
	if s := resp.Series["a.count"]; len(s) != 1 || s[0].V != 7 {
		t.Errorf("a.count series = %v", s)
	}
	if s := resp.Series["b.level"]; len(s) != 1 || s[0].V != 2.5 {
		t.Errorf("b.level series = %v", s)
	}
}

func TestDeletePrefixRetiresMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("agent.0.decides").Add(5)
	reg.Gauge("agent.0.up").Set(1)
	reg.Histogram("agent.0.rtt_us").Observe(10)
	reg.Counter("agent.1.decides").Add(2)
	reg.Counter("other.counter").Inc()

	if n := reg.DeletePrefix("agent.0."); n != 3 {
		t.Fatalf("DeletePrefix(agent.0.) = %d, want 3", n)
	}
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if name == "agent.0.decides" {
			t.Error("agent.0.decides survived DeletePrefix")
		}
	}
	if _, ok := snap.Gauges["agent.0.up"]; ok {
		t.Error("agent.0.up survived DeletePrefix")
	}
	if _, ok := snap.Counters["agent.1.decides"]; !ok {
		t.Error("agent.1.decides was deleted by the agent.0. prefix")
	}
	if _, ok := snap.Counters["other.counter"]; !ok {
		t.Error("other.counter was deleted")
	}

	// Recreating after retirement starts from zero — the old handle is
	// detached from the registry.
	if v := reg.Counter("agent.0.decides").Value(); v != 0 {
		t.Errorf("recreated counter starts at %v, want 0", v)
	}
}
