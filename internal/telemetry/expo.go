package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements Prometheus-style text exposition of a Registry
// (the /metrics endpoint of the live observability server). The format
// is the text-based exposition format version 0.0.4: one "# TYPE" line
// per metric followed by its samples; histograms expose cumulative
// buckets plus the conventional _sum and _count series.
//
// Output is deterministic: counters, then gauges, then histograms, each
// in sorted name order, with shortest-round-trip float formatting — so
// the format is pinnable by golden tests and diffs of two scrapes only
// show value changes.

// promName maps a registry metric name ("grid.cells.done") to a valid
// Prometheus metric name ("grid_cells_done"): every character outside
// [a-zA-Z0-9_:] becomes '_', and a leading digit is prefixed with '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes every metric of the registry in the Prometheus text
// exposition format. Values are read metric by metric, so a scrape
// concurrent with a running simulation sees per-metric-consistent (not
// globally atomic) values — the same guarantee Snapshot gives.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)

	// Handles are captured together with the names: re-fetching through
	// the creating accessors after unlock would resurrect metrics a
	// concurrent DeletePrefix retired mid-scrape.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	cnames := make([]string, 0, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
		cnames = append(cnames, name)
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	gnames := make([]string, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
		gnames = append(gnames, name)
	}
	hists := make(map[string]*Histogram, len(r.hists))
	hnames := make([]string, 0, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
		hnames = append(hnames, name)
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(gnames)
	sort.Strings(hnames)

	for _, name := range cnames {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + strconv.FormatInt(counters[name].Value(), 10) + "\n")
	}
	for _, name := range gnames {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + promFloat(gauges[name].Value()) + "\n")
	}
	for _, name := range hnames {
		pn := promName(name)
		h := hists[name]
		bw.WriteString("# TYPE " + pn + " histogram\n")
		bs := h.CumulativeBuckets()
		for _, b := range bs {
			bw.WriteString(pn + `_bucket{le="` + promFloat(b.Upper) + `"} ` +
				strconv.FormatUint(b.Count, 10) + "\n")
		}
		// Buckets and count are read in two lock acquisitions; clamp so
		// a scrape racing Observe keeps the +Inf bucket >= every finite
		// bucket (bucket monotonicity).
		count := h.Count()
		if len(bs) > 0 && bs[len(bs)-1].Count > count {
			count = bs[len(bs)-1].Count
		}
		bw.WriteString(pn + `_bucket{le="+Inf"} ` + strconv.FormatUint(count, 10) + "\n")
		bw.WriteString(pn + "_sum " + promFloat(h.Sum()) + "\n")
		bw.WriteString(pn + "_count " + strconv.FormatUint(count, 10) + "\n")
	}
	return bw.Flush()
}
