package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink writes structured records as JSON Lines: one JSON document per
// line, buffered, with optional size-based rotation. Records are
// marshaled before any byte reaches the writer and rotation happens on
// line boundaries, so every emitted line is a complete JSON document in
// exactly one file regardless of when rotation fires. Safe for
// concurrent use (training seeds emit episode records concurrently).
type Sink struct {
	mu       sync.Mutex
	w        *bufio.Writer
	f        *os.File // nil for writer-backed sinks
	path     string
	maxBytes int64
	written  int64
	rotated  int
	closed   bool
}

// SinkOption configures a Sink.
type SinkOption func(*Sink)

// WithMaxBytes enables size-based rotation: when a record would push the
// current file past n bytes, the file is renamed to "<path>.<k>" (k = 1,
// 2, ...) and a fresh file is opened at path. n <= 0 disables rotation
// (the default).
func WithMaxBytes(n int64) SinkOption {
	return func(s *Sink) { s.maxBytes = n }
}

// NewSink creates (truncating) the JSONL file at path.
func NewSink(path string, opts ...SinkOption) (*Sink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := &Sink{w: bufio.NewWriter(f), f: f, path: path}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// NewWriterSink wraps an arbitrary writer (stdout, a test buffer).
// Rotation is unavailable for writer-backed sinks.
func NewWriterSink(w io.Writer) *Sink {
	return &Sink{w: bufio.NewWriter(w)}
}

// Emit marshals v and appends it as one line.
func (s *Sink) Emit(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("telemetry: emit on closed sink %q", s.path)
	}
	need := int64(len(line) + 1)
	if s.f != nil && s.maxBytes > 0 && s.written > 0 && s.written+need > s.maxBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := s.w.Write(line); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	s.written += need
	return nil
}

// rotateLocked renames the current file aside and starts a fresh one.
func (s *Sink) rotateLocked() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	if err := s.f.Close(); err != nil {
		return err
	}
	s.rotated++
	if err := os.Rename(s.path, fmt.Sprintf("%s.%d", s.path, s.rotated)); err != nil {
		return err
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	s.written = 0
	return nil
}

// Flush forces buffered lines to the underlying writer.
func (s *Sink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes and closes the sink. Writer-backed sinks only flush.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.w.Flush(); err != nil {
		return err
	}
	if s.f != nil {
		return s.f.Close()
	}
	return nil
}
