package ctlserv

import (
	"encoding/json"
	"net/http"
	"testing"

	"distcoord/internal/clicfg"
	"distcoord/internal/store"
)

type diffResponse struct {
	A         string                  `json:"a"`
	B         string                  `json:"b"`
	Identical bool                    `json:"identical"`
	Artifacts map[string]artifactDiff `json:"artifacts"`
}

func TestDiffEndpoint(t *testing.T) {
	_, ts := testServer(t)

	submit := func(spec clicfg.RunSpec) (string, *store.Manifest) {
		t.Helper()
		code, body := postJSON(t, ts.URL+"/runs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit -> %d: %s", code, body)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		m := waitTerminal(t, ts, acc.ID)
		if m.Status != store.StatusDone {
			t.Fatalf("run %s status = %s (%s)", acc.ID, m.Status, m.Error)
		}
		return acc.ID, m
	}

	// Same name so the matrix rows share their identity key; the seed
	// count differs, so the single (figure, base, SP) cell changes.
	idA, _ := submit(clicfg.RunSpec{Name: "diffme", Algo: "sp", Seeds: 1, Horizon: 150})
	idB, _ := submit(clicfg.RunSpec{Name: "diffme", Algo: "sp", Seeds: 2, Horizon: 250})

	// A run diffed against itself is identical everywhere.
	var self diffResponse
	if code := getJSON(t, ts.URL+"/runs/"+idA+"/diff/"+idA, &self); code != 200 {
		t.Fatalf("self diff -> %d", code)
	}
	if !self.Identical {
		t.Errorf("self diff not identical: %+v", self)
	}
	for name, d := range self.Artifacts {
		if d.Status != diffIdentical || d.HashA != d.HashB {
			t.Errorf("self diff artifact %s = %+v", name, d)
		}
	}

	// Two different runs differ, and the matrix CSV explains which row.
	var resp diffResponse
	if code := getJSON(t, ts.URL+"/runs/"+idA+"/diff/"+idB, &resp); code != 200 {
		t.Fatalf("diff -> %d", code)
	}
	if resp.A != idA || resp.B != idB {
		t.Errorf("diff ids = %s/%s, want %s/%s", resp.A, resp.B, idA, idB)
	}
	if resp.Identical {
		t.Errorf("diff of distinct runs reported identical: %+v", resp)
	}
	for _, name := range []string{ArtifactGridLog, ArtifactMatrixCSV} {
		d, ok := resp.Artifacts[name]
		if !ok {
			t.Fatalf("diff missing artifact %s (have %v)", name, resp.Artifacts)
		}
		if d.Status != diffDiffers || d.HashA == d.HashB || d.HashA == "" || d.HashB == "" {
			t.Errorf("artifact %s = %+v, want differing hashes", name, d)
		}
	}

	cd := resp.Artifacts[ArtifactMatrixCSV].CSV
	if cd == nil {
		t.Fatalf("matrix.csv diff has no CSV breakdown: %+v", resp.Artifacts[ArtifactMatrixCSV])
	}
	if cd.HeaderChanged {
		t.Errorf("matrix header reported changed: %+v", cd)
	}
	if cd.RowsA != 1 || cd.RowsB != 1 || cd.RowsChanged != 1 || cd.RowsOnlyA != 0 || cd.RowsOnlyB != 0 || cd.RowsCommon != 0 {
		t.Errorf("matrix row counts = %+v, want single changed row", cd)
	}
	if len(cd.ChangedKeys) != 1 || cd.ChangedKeys[0] != "diffme,base,SP" {
		t.Errorf("changed keys = %v, want [diffme,base,SP]", cd.ChangedKeys)
	}

	// Non-CSV differing artifacts carry no row breakdown.
	if d := resp.Artifacts[ArtifactGridLog]; d.CSV != nil {
		t.Errorf("grid log diff has a CSV breakdown: %+v", d)
	}

	// Unknown run on either side is a 404.
	if code := getJSON(t, ts.URL+"/runs/"+idA+"/diff/r-nope", nil); code != http.StatusNotFound {
		t.Errorf("diff vs unknown -> %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/runs/r-nope/diff/"+idA, nil); code != http.StatusNotFound {
		t.Errorf("diff of unknown -> %d, want 404", code)
	}
}

func TestCSVRowKeying(t *testing.T) {
	body := "figure,point,algo,v\nfig,base,SP,1\nfig,base,GCASP,2\nshort,line\n"
	header, rows := csvRows(body)
	if header != "figure,point,algo,v" {
		t.Errorf("header = %q", header)
	}
	want := map[string]string{
		"fig,base,SP":    "fig,base,SP,1",
		"fig,base,GCASP": "fig,base,GCASP,2",
		"short,line":     "short,line",
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
	for k, v := range want {
		if rows[k] != v {
			t.Errorf("rows[%q] = %q, want %q", k, rows[k], v)
		}
	}
}
