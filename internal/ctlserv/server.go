// Package ctlserv is the experiment-controller service: a stdlib-HTTP
// API that accepts named runs and parameter sweeps (clicfg.RunSpec /
// clicfg.SweepSpec), executes them on the eval.Engine worker pool one
// run at a time, persists every artifact in a content-addressed store
// (internal/store), and re-renders figures from stored grid logs on
// demand — the opencbdc-tctl shape applied to this repo's evaluation:
// produce artifacts once, analyze many times.
//
// Endpoints (Go 1.22 method patterns, mounted by cmd/ctl on the
// ObsServer mux next to /metrics, /snapshot, and /run):
//
//	GET  /runs                       list run manifests, newest first
//	POST /runs                       submit one RunSpec
//	POST /sweeps                     submit a SweepSpec (cross-product)
//	GET  /runs/{id}                  manifest + live grid progress/ETA
//	POST /runs/{id}/cancel           cancel a queued or running run
//	POST /runs/{id}/recalc           re-render from stored grid log
//	GET  /runs/{id}/events           chunked-JSONL progress stream
//	GET  /runs/{id}/artifacts/{name} artifact bytes
//	PUT  /runs/{id}/artifacts/{name} ingest an external artifact
//	GET  /blobs/{hash}               raw blob by content address
package ctlserv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"distcoord/internal/clicfg"
	"distcoord/internal/eval"
	"distcoord/internal/store"
	"distcoord/internal/telemetry"
)

// Options configures a Server.
type Options struct {
	// GitRev is recorded in every run manifest ("unknown" when empty).
	GitRev string
	// Jobs bounds each run's engine worker pool (0: all CPUs).
	Jobs int
	// QueueDepth bounds how many runs may wait behind the executing one
	// (default 64); submissions beyond it are rejected with 503.
	QueueDepth int
	// Logf receives server-side error lines (default: discard).
	Logf func(format string, args ...interface{})
}

// Server is the controller. Create with New, mount Handler, Close when
// done (Close cancels queued and running work and waits for the
// executor).
type Server struct {
	st     *store.Store
	gitRev string
	jobs   int
	logf   func(format string, args ...interface{})

	mux   *http.ServeMux
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	active map[string]*runState
	seq    int
	closed bool

	// testBeforeExec, when set (tests only), runs at the top of execute —
	// it lets tests hold the executor to exercise queued-state paths
	// deterministically.
	testBeforeExec func(*job)
}

// runState is the in-memory side of one submitted run: cancellation,
// the live registry the progress endpoint reads, and the event stream.
type runState struct {
	id  string
	reg *telemetry.Registry

	mu       sync.Mutex
	canceled bool
	engine   *eval.Engine
	events   [][]byte
	subs     map[chan []byte]bool
	done     chan struct{}
}

func (rs *runState) isCanceled() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.canceled
}

func (rs *runState) cancel() {
	rs.mu.Lock()
	eng := rs.engine
	rs.canceled = true
	rs.mu.Unlock()
	if eng != nil {
		eng.Cancel()
	}
}

func (rs *runState) setEngine(e *eval.Engine) {
	rs.mu.Lock()
	rs.engine = e
	canceled := rs.canceled
	rs.mu.Unlock()
	if canceled { // cancel raced submission; make sure it lands
		e.Cancel()
	}
}

// broadcast appends one event line and fans it out to subscribers. A
// subscriber whose buffer is full misses the live send but has already
// received every line up to its subscription point, and terminal status
// is re-sent by handleEvents after done, so no consumer can deadlock
// the executor.
func (rs *runState) broadcast(ev interface{}) {
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	rs.mu.Lock()
	rs.events = append(rs.events, line)
	for ch := range rs.subs {
		select {
		case ch <- line:
		default:
		}
	}
	rs.mu.Unlock()
}

// subscribe returns the event lines so far and a channel for subsequent
// ones.
func (rs *runState) subscribe() ([][]byte, chan []byte) {
	ch := make(chan []byte, 256)
	rs.mu.Lock()
	past := make([][]byte, len(rs.events))
	copy(past, rs.events)
	if rs.subs == nil {
		rs.subs = make(map[chan []byte]bool)
	}
	rs.subs[ch] = true
	rs.mu.Unlock()
	return past, ch
}

func (rs *runState) unsubscribe(ch chan []byte) {
	rs.mu.Lock()
	delete(rs.subs, ch)
	rs.mu.Unlock()
}

// cellEvent and statusEvent are the JSONL event-stream records.
type cellEvent struct {
	Type   string          `json:"type"`
	Record eval.GridRecord `json:"record"`
}

type statusEvent struct {
	Type   string `json:"type"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// New builds a controller over the given store and starts its executor.
func New(st *store.Store, opts Options) *Server {
	if opts.GitRev == "" {
		opts.GitRev = "unknown"
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	s := &Server{
		st:     st,
		gitRev: opts.GitRev,
		jobs:   opts.Jobs,
		logf:   opts.Logf,
		queue:  make(chan *job, opts.QueueDepth),
		active: make(map[string]*runState),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /runs", s.handleList)
	s.mux.HandleFunc("GET /runs/{$}", s.handleList)
	s.mux.HandleFunc("POST /runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /runs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /runs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /runs/{id}/recalc", s.handleRecalc)
	s.mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /runs/{a}/diff/{b}", s.handleDiff)
	s.mux.HandleFunc("GET /runs/{id}/artifacts/{name}", s.handleArtifactGet)
	s.mux.HandleFunc("PUT /runs/{id}/artifacts/{name}", s.handleArtifactPut)
	s.mux.HandleFunc("GET /blobs/{hash}", s.handleBlob)
	s.wg.Add(1)
	go s.executor()
	return s
}

// Handler returns the controller's mux, for mounting on an ObsServer or
// serving directly.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the artifact store the controller persists into.
func (s *Server) Store() *store.Store { return s.st }

// Close stops accepting submissions, cancels queued and running work,
// and waits for the executor to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	states := make([]*runState, 0, len(s.active))
	for _, rs := range s.active {
		states = append(states, rs)
	}
	s.mu.Unlock()
	for _, rs := range states {
		rs.cancel()
	}
	s.wg.Wait()
}

// finishRun closes the run's done channel and drops it from the active
// set (its durable state lives in the manifest from here on).
func (s *Server) finishRun(rs *runState) {
	close(rs.done)
	s.mu.Lock()
	delete(s.active, rs.id)
	s.mu.Unlock()
}

// newRunID allocates a fresh run ID: timestamp plus a sequence number,
// skipping IDs already present in the store (a restarted controller
// keeps appending to the same run directory).
func (s *Server) newRunID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		s.seq++
		id := fmt.Sprintf("r-%s-%04d", time.Now().UTC().Format("20060102-150405"), s.seq)
		if _, err := s.st.GetManifest(id); err != nil {
			return id
		}
	}
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// maxSpecBytes bounds submission bodies; maxArtifactBytes bounds
// ingested artifacts.
const (
	maxSpecBytes     = 1 << 20
	maxArtifactBytes = 64 << 20
)

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var spec clicfg.RunSpec
	if err := decodeBody(w, r, &spec); err != nil {
		return
	}
	sw := clicfg.SweepSpec{Name: spec.Name, Base: spec}
	s.submit(w, sw, "run")
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var sw clicfg.SweepSpec
	if err := decodeBody(w, r, &sw); err != nil {
		return
	}
	s.submit(w, sw, "sweep")
}

// decodeBody strictly decodes a JSON submission (unknown fields are
// rejected so a typo'd axis name cannot silently no-op).
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return err
	}
	return nil
}

// submit validates, persists, and enqueues one submission.
func (s *Server) submit(w http.ResponseWriter, sw clicfg.SweepSpec, kind string) {
	points, err := sw.Expand()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := s.newRunID()
	name := sw.Name
	if name == "" {
		name = id
	}
	raw, err := json.Marshal(sw)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encoding spec: %v", err)
		return
	}
	m := &store.Manifest{
		ID:      id,
		Name:    name,
		Kind:    kind,
		Spec:    raw,
		GitRev:  s.gitRev,
		Status:  store.StatusQueued,
		Created: time.Now().UTC(),
	}
	rs := &runState{id: id, reg: telemetry.NewRegistry(), done: make(chan struct{})}
	j := &job{manifest: m, sweep: sw, points: points, state: rs}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "controller shutting down")
		return
	}
	if err := s.st.PutManifest(m); err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusInternalServerError, "persisting manifest: %v", err)
		return
	}
	select {
	case s.queue <- j:
		s.active[id] = rs
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		m.Status = store.StatusFailed
		m.Error = "submission queue full"
		s.persist(m)
		httpError(w, http.StatusServiceUnavailable, "submission queue full")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]interface{}{
		"id":     id,
		"name":   name,
		"points": len(points),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	ms, err := s.st.ListManifests()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if ms == nil {
		ms = []*store.Manifest{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"runs": ms})
}

// runProgress is the live progress block of GET /runs/{id}, read from
// the run's grid.cells.* gauges; done + failed + skipped always
// partitions total once the grid drains (pinned by the engine's
// fail-fast test), so percent is trustworthy even for aborted runs.
type runProgress struct {
	Total       float64 `json:"total"`
	Done        float64 `json:"done"`
	Failed      float64 `json:"failed"`
	Skipped     float64 `json:"skipped"`
	Percent     float64 `json:"percent"`
	CellsPerSec float64 `json:"cells_per_sec"`
	ETASeconds  float64 `json:"eta_seconds"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.st.GetManifest(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	resp := map[string]interface{}{"manifest": m}
	s.mu.Lock()
	rs := s.active[id]
	s.mu.Unlock()
	if rs != nil {
		snap := rs.reg.Snapshot()
		if total := snap.Gauges["grid.cells.total"]; total > 0 {
			p := &runProgress{
				Total:       total,
				Done:        snap.Gauges["grid.cells.done"],
				Failed:      snap.Gauges["grid.cells.failed"],
				Skipped:     snap.Gauges["grid.cells.skipped"],
				CellsPerSec: snap.Gauges["grid.cells_per_sec"],
				ETASeconds:  snap.Gauges["grid.eta_seconds"],
			}
			p.Percent = 100 * (p.Done + p.Failed + p.Skipped) / p.Total
			resp["progress"] = p
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rs := s.active[id]
	s.mu.Unlock()
	if rs == nil {
		m, err := s.st.GetManifest(id)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		httpError(w, http.StatusConflict, "run %s already %s", id, m.Status)
		return
	}
	rs.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "canceling"})
}

// recalcArtifact is one re-rendered artifact in the recalc response.
type recalcArtifact struct {
	Hash      string `json:"hash"`
	Bytes     int    `json:"bytes"`
	Original  string `json:"original_hash,omitempty"`
	Identical bool   `json:"identical"`
}

// handleRecalc re-renders the run's figure artifacts from its stored
// grid log — no simulation, only parsing and aggregation — stores the
// results (content addressing dedups them when identical), and reports
// per-artifact hash comparisons against the original render.
func (s *Server) handleRecalc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.st.GetManifest(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	switch m.Status {
	case store.StatusDone, store.StatusFailed, store.StatusCanceled:
	default:
		httpError(w, http.StatusConflict, "run %s is %s; recalc needs a finished run", id, m.Status)
		return
	}
	var sw clicfg.SweepSpec
	if err := json.Unmarshal(m.Spec, &sw); err != nil {
		httpError(w, http.StatusInternalServerError, "manifest spec: %v", err)
		return
	}
	points, err := sw.Expand()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "manifest spec: %v", err)
		return
	}
	gridLog, err := s.st.GetArtifact(m, ArtifactGridLog)
	if err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	renders, err := RenderFromGridLog(m.Name, points, gridLog)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make(map[string]recalcArtifact, len(renders))
	identical := true
	for _, name := range RenderNames() {
		hash, err := s.st.Put(renders[name])
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		a := recalcArtifact{Hash: hash, Bytes: len(renders[name])}
		if orig, ok := m.Artifacts[name]; ok {
			a.Original = orig.Hash
			a.Identical = orig.Hash == hash
		}
		if !a.Identical {
			identical = false
		}
		out[name] = a
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":        id,
		"identical": identical,
		"artifacts": out,
	})
}

// handleEvents streams the run's progress as chunked JSONL: every event
// so far, then live events until the run reaches a terminal status.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rs := s.active[id]
	s.mu.Unlock()
	if rs == nil {
		// Finished run: replay nothing live; serve the terminal status so
		// a late consumer still gets a well-formed stream.
		m, err := s.st.GetManifest(id)
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		line, _ := json.Marshal(statusEvent{Type: "status", Status: m.Status, Error: m.Error})
		w.Write(append(line, '\n')) //nolint:errcheck
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	past, ch := rs.subscribe()
	defer rs.unsubscribe(ch)
	for _, line := range past {
		if _, err := w.Write(line); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case line := <-ch:
			if _, err := w.Write(line); err != nil {
				return
			}
			flusher.Flush()
		case <-rs.done:
			// Drain anything broadcast before done closed, then finish with
			// the terminal status from the manifest.
			for {
				select {
				case line := <-ch:
					if _, err := w.Write(line); err != nil {
						return
					}
				default:
					if m, err := s.st.GetManifest(id); err == nil {
						line, _ := json.Marshal(statusEvent{Type: "status", Status: m.Status, Error: m.Error})
						w.Write(append(line, '\n')) //nolint:errcheck
					}
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// artifactContentType maps artifact names to response content types.
func artifactContentType(name string) string {
	switch {
	case strings.HasSuffix(name, ".json"):
		return "application/json"
	case strings.HasSuffix(name, ".jsonl"):
		return "application/jsonl"
	case strings.HasSuffix(name, ".md"), strings.HasSuffix(name, ".txt"), strings.HasSuffix(name, ".csv"):
		return "text/plain; charset=utf-8"
	}
	return "application/octet-stream"
}

func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	m, err := s.st.GetManifest(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	name := r.PathValue("name")
	data, err := s.st.GetArtifact(m, name)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Write(data) //nolint:errcheck // client went away
}

// handleArtifactPut ingests an external artifact (a BENCH_*.json from a
// bench run, a flow trace captured out of band) into a finished run's
// manifest. Running or queued runs reject ingestion: the executor owns
// their manifests.
func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, err := s.st.GetManifest(id)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Gate on the persisted status: once the executor writes a terminal
	// status the manifest has had its last executor write, so ingestion
	// cannot race it. (The active map can lag completion briefly.)
	switch m.Status {
	case store.StatusQueued, store.StatusRunning:
		httpError(w, http.StatusConflict, "run %s is still executing; ingest after it finishes", id)
		return
	}
	name := r.PathValue("name")
	if name == "" || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		httpError(w, http.StatusBadRequest, "invalid artifact name %q", name)
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(data) > maxArtifactBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "artifact exceeds %d bytes", maxArtifactBytes)
		return
	}
	if err := s.st.AddArtifact(m, name, data); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err := s.st.PutManifest(m); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"id": id, "name": name, "artifact": m.Artifacts[name],
	})
}

func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	data, err := s.st.Get(r.PathValue("hash"))
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // client went away
}
