package ctlserv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"distcoord/internal/clicfg"
	"distcoord/internal/store"
)

// testServer starts a controller on a temp store behind httptest.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, Options{GitRev: "test-rev", Jobs: 2, Logf: t.Logf})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body interface{}) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("GET %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

// submitWait submits a sweep and waits for a terminal status.
func submitWait(t *testing.T, ts *httptest.Server, sw clicfg.SweepSpec) (string, *store.Manifest) {
	t.Helper()
	code, body := postJSON(t, ts.URL+"/sweeps", sw)
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID, waitTerminal(t, ts, acc.ID)
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) *store.Manifest {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		var resp struct {
			Manifest *store.Manifest `json:"manifest"`
		}
		if code := getJSON(t, ts.URL+"/runs/"+id, &resp); code != 200 {
			t.Fatalf("GET /runs/%s -> %d", id, code)
		}
		switch resp.Manifest.Status {
		case store.StatusDone, store.StatusFailed, store.StatusCanceled:
			return resp.Manifest
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return nil
}

func smallSweep() clicfg.SweepSpec {
	return clicfg.SweepSpec{
		Name: "smoke-sweep",
		Base: clicfg.RunSpec{Algo: "sp", Seeds: 2, Horizon: 200},
		Axes: []clicfg.SweepAxis{{Param: "algo", Values: []string{"sp", "gcasp"}}},
	}
}

func TestSweepLifecycleAndRecalcByteIdentical(t *testing.T) {
	_, ts := testServer(t)
	id, m := submitWait(t, ts, smallSweep())
	if m.Status != store.StatusDone {
		t.Fatalf("run %s status = %s (%s)", id, m.Status, m.Error)
	}
	if m.GitRev != "test-rev" || m.Kind != "sweep" || m.Name != "smoke-sweep" {
		t.Errorf("manifest meta wrong: %+v", m)
	}
	if m.Cells != 4 { // 2 points x 2 seeds
		t.Errorf("cells = %d, want 4", m.Cells)
	}
	for _, name := range []string{ArtifactGridLog, ArtifactFigureMD, ArtifactFigureTXT, ArtifactMatrixCSV, "metrics.json"} {
		if _, ok := m.Artifacts[name]; !ok {
			t.Errorf("artifact %q missing from manifest (have %v)", name, m.Artifacts)
		}
	}

	// The rendered figure must carry the sweep point labels.
	resp, err := http.Get(ts.URL + "/runs/" + id + "/artifacts/" + ArtifactFigureMD)
	if err != nil {
		t.Fatal(err)
	}
	md, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"algo=sp", "algo=gcasp", "SP", "GCASP"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("figure.md missing %q:\n%s", want, md)
		}
	}

	// Recalc must be byte-identical to the original render.
	code, body := postJSON(t, ts.URL+"/runs/"+id+"/recalc", nil)
	if code != 200 {
		t.Fatalf("recalc -> %d: %s", code, body)
	}
	var rc struct {
		Identical bool                      `json:"identical"`
		Artifacts map[string]recalcArtifact `json:"artifacts"`
	}
	if err := json.Unmarshal(body, &rc); err != nil {
		t.Fatal(err)
	}
	if !rc.Identical {
		t.Errorf("recalc not byte-identical: %s", body)
	}
	for _, name := range RenderNames() {
		a := rc.Artifacts[name]
		if !a.Identical || a.Hash != m.Artifacts[name].Hash {
			t.Errorf("recalc %s: hash %s vs original %s", name, a.Hash, m.Artifacts[name].Hash)
		}
	}

	// The listing includes the run, newest first.
	var list struct {
		Runs []*store.Manifest `json:"runs"`
	}
	if code := getJSON(t, ts.URL+"/runs", &list); code != 200 {
		t.Fatalf("GET /runs -> %d", code)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != id {
		t.Errorf("listing = %+v, want [%s]", list.Runs, id)
	}
}

func TestSingleRunSubmission(t *testing.T) {
	_, ts := testServer(t)
	code, body := postJSON(t, ts.URL+"/runs", clicfg.RunSpec{Name: "one-shot", Algo: "sp", Seeds: 1, Horizon: 150})
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	var acc struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Points != 1 {
		t.Errorf("points = %d, want 1", acc.Points)
	}
	m := waitTerminal(t, ts, acc.ID)
	if m.Status != store.StatusDone || m.Kind != "run" || m.Name != "one-shot" {
		t.Errorf("manifest = %+v", m)
	}
}

func TestDRLRunProducesPolicyCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("DRL training skipped in -short mode")
	}
	_, ts := testServer(t)
	_, m := submitWait(t, ts, clicfg.SweepSpec{
		Name: "drl-tiny",
		Base: clicfg.RunSpec{
			Algo: "drl", Seeds: 1, Horizon: 150,
			Train: &clicfg.TrainSpec{Episodes: 2, Seeds: 1, ParallelEnvs: 1, Horizon: 100, Hidden: []int{8}},
		},
	})
	if m.Status != store.StatusDone {
		t.Fatalf("status = %s (%s)", m.Status, m.Error)
	}
	found := false
	for name := range m.Artifacts {
		if strings.HasPrefix(name, "policy-") && strings.HasSuffix(name, ".json") {
			found = true
		}
	}
	if !found {
		t.Errorf("no policy checkpoint artifact: %v", m.Artifacts)
	}
	if m.Cells != 2 { // 1 train + 1 eval cell
		t.Errorf("cells = %d, want 2", m.Cells)
	}
}

func TestSubmissionValidation(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		url  string
		body interface{}
		want string
	}{
		{"/runs", clicfg.RunSpec{Algo: "dqn"}, "algo"},
		{"/sweeps", clicfg.SweepSpec{Base: clicfg.RunSpec{Algo: "sp"},
			Axes: []clicfg.SweepAxis{{Param: "color", Values: []string{"red"}}}}, "unknown"},
		{"/runs", map[string]interface{}{"algo": "sp", "bogus_field": 1}, "bogus_field"},
	}
	for i, tc := range cases {
		code, body := postJSON(t, ts.URL+tc.url, tc.body)
		if code != http.StatusBadRequest || !strings.Contains(string(body), tc.want) {
			t.Errorf("case %d: %d %s, want 400 mentioning %q", i, code, body, tc.want)
		}
	}
	// No manifests should exist after rejected submissions.
	var list struct {
		Runs []*store.Manifest `json:"runs"`
	}
	getJSON(t, ts.URL+"/runs", &list)
	if len(list.Runs) != 0 {
		t.Errorf("rejected submissions left manifests: %+v", list.Runs)
	}
}

func TestCancelQueuedRun(t *testing.T) {
	s, ts := testServer(t)
	// Hold the executor at the top of execute so the cancel is
	// guaranteed to land while the run is still in the queued state.
	release := make(chan struct{})
	s.testBeforeExec = func(*job) { <-release }

	code, body := postJSON(t, ts.URL+"/runs", clicfg.RunSpec{Algo: "sp", Seeds: 1, Horizon: 150})
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &acc) //nolint:errcheck

	code, body = postJSON(t, ts.URL+"/runs/"+acc.ID+"/cancel", nil)
	if code != http.StatusAccepted {
		t.Fatalf("cancel -> %d: %s", code, body)
	}
	close(release)
	m := waitTerminal(t, ts, acc.ID)
	if m.Status != store.StatusCanceled {
		t.Errorf("canceled run status = %s, want canceled", m.Status)
	}

	// Cancel of a finished run conflicts.
	code, _ = postJSON(t, ts.URL+"/runs/"+acc.ID+"/cancel", nil)
	if code != http.StatusConflict {
		t.Errorf("cancel finished run -> %d, want 409", code)
	}
}

func TestEventsStream(t *testing.T) {
	s, ts := testServer(t)
	// Hold the run until the event stream is connected so the stream is
	// guaranteed to observe every cell event live (replay covers the
	// rest).
	release := make(chan struct{})
	s.testBeforeExec = func(*job) { <-release }
	code, body := postJSON(t, ts.URL+"/sweeps", smallSweep())
	if code != http.StatusAccepted {
		t.Fatalf("submit -> %d: %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	json.Unmarshal(body, &acc) //nolint:errcheck

	resp, err := http.Get(ts.URL + "/runs/" + acc.ID + "/events")
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("events -> %d", resp.StatusCode)
	}
	var cells int
	var last statusEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Type   string `json:"type"`
			Status string `json:"status"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		switch probe.Type {
		case "cell":
			cells++
		case "status":
			last = statusEvent{Status: probe.Status}
		default:
			t.Errorf("unknown event type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 4 {
		t.Errorf("cell events = %d, want 4", cells)
	}
	if last.Status != store.StatusDone {
		t.Errorf("final status event = %q, want done", last.Status)
	}

	// A stream opened after completion still yields the terminal status.
	resp2, err := http.Get(ts.URL + "/runs/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	late, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(late), store.StatusDone) {
		t.Errorf("late event stream = %q, want terminal status", late)
	}
}

func TestArtifactIngestAndBlobFetch(t *testing.T) {
	_, ts := testServer(t)
	id, m := submitWait(t, ts, clicfg.SweepSpec{Base: clicfg.RunSpec{Algo: "sp", Seeds: 1, Horizon: 150}})
	if m.Status != store.StatusDone {
		t.Fatalf("status = %s", m.Status)
	}
	payload := []byte(`{"bench":"inference","ns_op":123}` + "\n")
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/runs/"+id+"/artifacts/BENCH_inference.json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest -> %d: %s", resp.StatusCode, body)
	}
	var ing struct {
		Artifact store.Artifact `json:"artifact"`
	}
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}

	// Fetch through both the artifact route and the raw blob route.
	for _, url := range []string{
		ts.URL + "/runs/" + id + "/artifacts/BENCH_inference.json",
		ts.URL + "/blobs/" + ing.Artifact.Hash,
	} {
		r2, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if r2.StatusCode != 200 || !bytes.Equal(got, payload) {
			t.Errorf("GET %s -> %d %q", url, r2.StatusCode, got)
		}
	}

	// Path traversal in artifact names is rejected.
	req2, _ := http.NewRequest(http.MethodPut, ts.URL+"/runs/"+id+"/artifacts/..%2Fescape", bytes.NewReader(payload))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("traversal ingest -> %d, want 400", resp2.StatusCode)
	}
}

// TestRecalcDeterministicAcrossWorkerCounts pins the acceptance
// criterion end to end: two servers running the same sweep with
// different engine worker counts must store byte-identical render
// artifacts, because rendering depends only on the (seed-sorted)
// aggregation of the grid log, not the emission order.
func TestRecalcDeterministicAcrossWorkerCounts(t *testing.T) {
	hashes := make([]map[string]string, 2)
	for i, jobs := range []int{1, 4} {
		st, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		s := New(st, Options{GitRev: "x", Jobs: jobs})
		ts := httptest.NewServer(s.Handler())
		_, m := submitWait(t, ts, smallSweep())
		if m.Status != store.StatusDone {
			t.Fatalf("jobs=%d: status %s (%s)", jobs, m.Status, m.Error)
		}
		hashes[i] = map[string]string{}
		for _, name := range RenderNames() {
			hashes[i][name] = m.Artifacts[name].Hash
		}
		ts.Close()
		s.Close()
	}
	for _, name := range RenderNames() {
		if hashes[0][name] != hashes[1][name] {
			t.Errorf("%s differs between jobs=1 and jobs=4: %s vs %s", name, hashes[0][name], hashes[1][name])
		}
	}
}

func TestUnknownRunRoutes(t *testing.T) {
	_, ts := testServer(t)
	if code := getJSON(t, ts.URL+"/runs/r-nope", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown run -> %d, want 404", code)
	}
	if code, _ := postJSON(t, ts.URL+"/runs/r-nope/recalc", nil); code != http.StatusNotFound {
		t.Errorf("recalc unknown run -> %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/blobs/"+strings.Repeat("0", 64), nil); code != http.StatusNotFound {
		t.Errorf("GET unknown blob -> %d, want 404", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/runs/r-nope/artifacts/x", ts.URL), nil); code != http.StatusNotFound {
		t.Errorf("GET artifact of unknown run -> %d, want 404", code)
	}
}
