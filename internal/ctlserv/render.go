package ctlserv

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"

	"distcoord/internal/clicfg"
	"distcoord/internal/eval"
)

// This file is the pure render path: sweep artifacts (figure markdown,
// text table, CSV matrix) are computed as a function of the expanded
// sweep points and the *stored* grid-log bytes — never from in-memory
// engine state. The run-completion path and the recalc endpoint call
// the same function on the same inputs, which is what makes recalc
// byte-identical to the original render by construction: aggregation
// sorts records by seed, point and series order come from the
// deterministic sweep expansion, so even the emission order of the grid
// log (which depends on the worker count) cannot leak into the output.

// Render artifact names, stable across runs. grid.jsonl is the input of
// the render; the three renders are its deterministic projections.
const (
	ArtifactGridLog   = "grid.jsonl"
	ArtifactFigureMD  = "figure.md"
	ArtifactFigureTXT = "figure.txt"
	ArtifactMatrixCSV = "matrix.csv"
)

// RenderNames lists the artifacts RenderFromGridLog produces, in
// canonical order.
func RenderNames() []string {
	return []string{ArtifactFigureMD, ArtifactFigureTXT, ArtifactMatrixCSV}
}

// EncodeGridLog serializes grid records as JSONL, the grid.jsonl
// artifact (completion order; rendering does not depend on it).
func EncodeGridLog(recs []eval.GridRecord) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return nil, fmt.Errorf("ctlserv: encoding grid log: %w", err)
		}
	}
	return buf.Bytes(), nil
}

// ParseGridLog parses a grid.jsonl artifact back into records.
func ParseGridLog(data []byte) ([]eval.GridRecord, error) {
	var recs []eval.GridRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r eval.GridRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("ctlserv: grid log line %d: %w", len(recs)+1, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ctlserv: reading grid log: %w", err)
	}
	return recs, nil
}

// BuildFigure folds grid records into the sweep's figure: one series
// per algorithm (display label, in first appearance order over the
// expanded points), one x-position per sweep point label. A point with
// no successful cells (failed or skipped before any seed completed)
// contributes no figure point and renders as "-".
func BuildFigure(name string, points []clicfg.SweepPoint, recs []eval.GridRecord) eval.Figure {
	fig := eval.Figure{ID: name, Title: "sweep matrix", XLabel: "point"}
	type group struct{ x, algo string }
	grouped := make(map[group][]eval.GridRecord)
	okCells := make(map[group]int)
	for _, r := range recs {
		if r.Kind != "eval" {
			continue
		}
		g := group{r.X, r.Algo}
		grouped[g] = append(grouped[g], r)
		if r.Status == "ok" {
			okCells[g]++
		}
	}
	var order []string
	seen := make(map[string]bool)
	for _, p := range points {
		lbl := clicfg.AlgoLabel(p.Spec.Algo)
		if !seen[lbl] {
			seen[lbl] = true
			order = append(order, lbl)
		}
	}
	for _, algo := range order {
		s := eval.Series{Algo: algo}
		for _, p := range points {
			if clicfg.AlgoLabel(p.Spec.Algo) != algo {
				continue
			}
			g := group{p.Label, algo}
			if okCells[g] == 0 {
				continue
			}
			s.Points = append(s.Points, eval.Point{X: p.Label, Outcome: eval.AggregateRecords(grouped[g])})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RenderFromGridLog produces the render artifacts from stored grid-log
// bytes. Both the run-completion path and POST /runs/{id}/recalc go
// through here, so the two renders are byte-identical whenever the
// inputs are.
func RenderFromGridLog(name string, points []clicfg.SweepPoint, gridLog []byte) (map[string][]byte, error) {
	recs, err := ParseGridLog(gridLog)
	if err != nil {
		return nil, err
	}
	fig := BuildFigure(name, points, recs)
	return map[string][]byte{
		ArtifactFigureMD:  []byte(fig.Markdown()),
		ArtifactFigureTXT: []byte(fig.String()),
		ArtifactMatrixCSV: []byte(fig.CSV()),
	}, nil
}
