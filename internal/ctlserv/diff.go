package ctlserv

import (
	"net/http"
	"sort"
	"strings"

	"distcoord/internal/store"
)

// This file implements GET /runs/{a}/diff/{b}: a content-addressed
// comparison of two runs' artifacts. Because the store dedups by hash,
// "identical" is a string compare, not a byte walk; only differing CSV
// artifacts (the figure matrices) are parsed further, into a keyed
// row-level diff that tells the caller *which* grid rows moved between
// two experiment runs instead of just "bytes differ".

// diffStatus values for one artifact across two runs.
const (
	diffIdentical = "identical"
	diffDiffers   = "differs"
	diffOnlyA     = "only_a"
	diffOnlyB     = "only_b"
)

// csvDiff is the row-level comparison of one CSV artifact present in
// both runs, keyed by each row's leading identity columns.
type csvDiff struct {
	HeaderChanged bool `json:"header_changed"`
	RowsA         int  `json:"rows_a"`
	RowsB         int  `json:"rows_b"`
	RowsOnlyA     int  `json:"rows_only_a"`
	RowsOnlyB     int  `json:"rows_only_b"`
	RowsChanged   int  `json:"rows_changed"`
	RowsCommon    int  `json:"rows_common"` // identical rows
	// ChangedKeys lists the identity keys of changed rows plus keys
	// present on one side only (capped at 20), so a client can name the
	// moved grid rows without fetching both artifacts.
	ChangedKeys []string `json:"changed_keys,omitempty"`
}

// artifactDiff is one artifact's comparison in the diff response.
type artifactDiff struct {
	Status string   `json:"status"`
	HashA  string   `json:"hash_a,omitempty"`
	HashB  string   `json:"hash_b,omitempty"`
	BytesA int      `json:"bytes_a,omitempty"`
	BytesB int      `json:"bytes_b,omitempty"`
	CSV    *csvDiff `json:"csv,omitempty"`
}

// handleDiff compares two stored runs artifact by artifact. Both runs
// must exist; any status is accepted (a still-running run simply has
// fewer artifacts). The top-level "identical" is true only when the two
// runs hold the same artifact names with the same content hashes.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	idA, idB := r.PathValue("a"), r.PathValue("b")
	ma, err := s.st.GetManifest(idA)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	mb, err := s.st.GetManifest(idB)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}

	names := make(map[string]bool, len(ma.Artifacts)+len(mb.Artifacts))
	for name := range ma.Artifacts {
		names[name] = true
	}
	for name := range mb.Artifacts {
		names[name] = true
	}
	sorted := make([]string, 0, len(names))
	for name := range names {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	out := make(map[string]artifactDiff, len(sorted))
	identical := true
	for _, name := range sorted {
		aa, inA := ma.Artifacts[name]
		ab, inB := mb.Artifacts[name]
		d := artifactDiff{}
		switch {
		case inA && !inB:
			d.Status, d.HashA, d.BytesA = diffOnlyA, aa.Hash, aa.Bytes
		case !inA && inB:
			d.Status, d.HashB, d.BytesB = diffOnlyB, ab.Hash, ab.Bytes
		case aa.Hash == ab.Hash:
			d.Status, d.HashA, d.HashB, d.BytesA, d.BytesB = diffIdentical, aa.Hash, ab.Hash, aa.Bytes, ab.Bytes
		default:
			d.Status, d.HashA, d.HashB, d.BytesA, d.BytesB = diffDiffers, aa.Hash, ab.Hash, aa.Bytes, ab.Bytes
			if strings.HasSuffix(name, ".csv") {
				if cd, err := diffCSV(s.st, ma, mb, name); err == nil {
					d.CSV = cd
				}
			}
		}
		if d.Status != diffIdentical {
			identical = false
		}
		out[name] = d
	}

	writeJSON(w, http.StatusOK, map[string]interface{}{
		"a":         idA,
		"b":         idB,
		"identical": identical,
		"artifacts": out,
	})
}

// changedKeysCap bounds the named keys in a csvDiff.
const changedKeysCap = 20

// diffCSV loads one CSV artifact from both runs and compares rows keyed
// by their identity columns. The first line is the header; duplicate
// keys keep the last row (figure matrices have unique keys, so this is
// theoretical).
func diffCSV(st *store.Store, ma, mb *store.Manifest, name string) (*csvDiff, error) {
	da, err := st.GetArtifact(ma, name)
	if err != nil {
		return nil, err
	}
	db, err := st.GetArtifact(mb, name)
	if err != nil {
		return nil, err
	}
	headA, rowsA := csvRows(string(da))
	headB, rowsB := csvRows(string(db))
	d := &csvDiff{HeaderChanged: headA != headB, RowsA: len(rowsA), RowsB: len(rowsB)}

	keys := make(map[string]bool, len(rowsA)+len(rowsB))
	for k := range rowsA {
		keys[k] = true
	}
	for k := range rowsB {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	var changed []string
	for _, k := range sorted {
		ra, inA := rowsA[k]
		rb, inB := rowsB[k]
		switch {
		case inA && !inB:
			d.RowsOnlyA++
			changed = append(changed, k)
		case !inA && inB:
			d.RowsOnlyB++
			changed = append(changed, k)
		case ra != rb:
			d.RowsChanged++
			changed = append(changed, k)
		default:
			d.RowsCommon++
		}
	}
	if len(changed) > changedKeysCap {
		changed = changed[:changedKeysCap]
	}
	d.ChangedKeys = changed
	return d, nil
}

// csvRows splits a CSV body into its header line and an identity-key →
// full-row map. No quoting support — the rendered matrices only quote
// when labels contain commas, and such rows just get longer keys.
func csvRows(body string) (header string, rows map[string]string) {
	rows = make(map[string]string)
	for i, line := range strings.Split(body, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if i == 0 {
			header = line
			continue
		}
		rows[csvKey(line)] = line
	}
	return header, rows
}

// csvKey extracts a row's identity: its first three fields. The matrix
// CSV identifies a measurement by (figure, point, algo) and then lists
// aggregates, so keying on the leading triple matches "same cell,
// different numbers" as a changed row rather than an add+remove pair.
func csvKey(line string) string {
	parts := strings.SplitN(line, ",", 4)
	if len(parts) < 4 {
		return line
	}
	return strings.Join(parts[:3], ",")
}
