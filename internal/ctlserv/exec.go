package ctlserv

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"distcoord/internal/baselines"
	"distcoord/internal/clicfg"
	"distcoord/internal/eval"
	"distcoord/internal/simnet"
	"distcoord/internal/store"
)

// job is one queued submission: the expanded sweep plus the manifest as
// persisted at submission time. The executor owns the manifest from
// here on; handlers read run state through the store or the runState.
type job struct {
	manifest *store.Manifest
	sweep    clicfg.SweepSpec
	points   []clicfg.SweepPoint
	state    *runState
}

// executor drains the submission queue, one run at a time; each run
// parallelizes internally on the engine's worker pool, so serializing
// runs keeps cell wall-times (and ETAs) honest instead of having
// concurrent grids fight over the same cores.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

// execute runs one sweep to completion and persists its artifacts.
func (s *Server) execute(j *job) {
	rs, m := j.state, j.manifest
	defer s.finishRun(rs)

	if s.testBeforeExec != nil {
		s.testBeforeExec(j)
	}
	if rs.isCanceled() {
		m.Status = store.StatusCanceled
		m.Ended = time.Now().UTC()
		s.persist(m)
		rs.broadcast(statusEvent{Type: "status", Status: m.Status})
		return
	}

	var recs []eval.GridRecord
	reg := rs.reg
	eng := eval.NewEngine(eval.Options{
		EvalSeeds:       j.sweep.Base.EvalSeeds(),
		Jobs:            s.jobs,
		MonitorInterval: monitorInterval,
		Registry:        reg,
		OnCell: func(r eval.GridRecord) { // scheduler goroutine only
			recs = append(recs, r)
			rs.broadcast(cellEvent{Type: "cell", Record: r})
		},
	})
	policies := make(map[string]*eval.PolicyJob)
	if err := registerPoints(eng, j.points, policies); err != nil {
		m.Status = store.StatusFailed
		m.Error = err.Error()
		m.Ended = time.Now().UTC()
		s.persist(m)
		rs.broadcast(statusEvent{Type: "status", Status: m.Status, Error: m.Error})
		return
	}

	m.Status = store.StatusRunning
	m.Started = time.Now().UTC()
	m.Cells = eng.Cells()
	s.persist(m)
	rs.setEngine(eng)
	rs.broadcast(statusEvent{Type: "status", Status: m.Status})

	runErr := eng.Run()

	switch {
	case runErr == nil:
		m.Status = store.StatusDone
	case errors.Is(runErr, eval.ErrCanceled):
		m.Status = store.StatusCanceled
	default:
		m.Status = store.StatusFailed
		m.Error = runErr.Error()
	}
	m.Ended = time.Now().UTC()

	if err := s.storeArtifacts(m, j, recs, policies); err != nil && m.Error == "" {
		m.Status = store.StatusFailed
		m.Error = err.Error()
	}
	s.persist(m)
	rs.broadcast(statusEvent{Type: "status", Status: m.Status, Error: m.Error})
}

// monitorInterval is the Central baseline's rule update period, the
// eval default.
const monitorInterval = 100

// registerPoints builds the grid: one Train job per DRL point, one
// group of evaluation cells per point, each under the point's own run
// options (MaxBatch/Shards sweeps).
func registerPoints(eng *eval.Engine, points []clicfg.SweepPoint, policies map[string]*eval.PolicyJob) error {
	for _, p := range points {
		sc, err := p.Spec.Scenario()
		if err != nil {
			return fmt.Errorf("ctlserv: point %q: %w", p.Label, err)
		}
		label := clicfg.AlgoLabel(p.Spec.Algo)
		ro := p.Spec.RunOptions()
		switch p.Spec.Algo {
		case "drl":
			pol := eng.Train(sweepFigureID, p.Label, sc, p.Spec.TrainBudget())
			policies[p.Label] = pol
			eng.EvalWith(sweepFigureID, p.Label, label, sc, pol.Factory(), pol, p.Spec.BaseSeed, ro)
		case "central":
			eng.EvalWith(sweepFigureID, p.Label, label, sc,
				eval.Fresh(func() simnet.Coordinator { return baselines.NewCentral(monitorInterval) }), nil, p.Spec.BaseSeed, ro)
		case "gcasp":
			eng.EvalWith(sweepFigureID, p.Label, label, sc,
				eval.Fresh(func() simnet.Coordinator { return baselines.GCASP{} }), nil, p.Spec.BaseSeed, ro)
		case "sp":
			eng.EvalWith(sweepFigureID, p.Label, label, sc,
				eval.Fresh(func() simnet.Coordinator { return baselines.SP{} }), nil, p.Spec.BaseSeed, ro)
		default: // unreachable after Expand validation
			return fmt.Errorf("ctlserv: point %q: unknown algo %q", p.Label, p.Spec.Algo)
		}
	}
	return nil
}

// sweepFigureID is the CellKey.Figure of every controller grid cell.
const sweepFigureID = "sweep"

// storeArtifacts persists everything the run produced: the grid log,
// the three renders (computed from the stored grid-log bytes — the same
// function recalc uses), trained policy checkpoints, and the run's
// metrics snapshot.
func (s *Server) storeArtifacts(m *store.Manifest, j *job, recs []eval.GridRecord, policies map[string]*eval.PolicyJob) error {
	gridLog, err := EncodeGridLog(recs)
	if err != nil {
		return err
	}
	if err := s.st.AddArtifact(m, ArtifactGridLog, gridLog); err != nil {
		return err
	}
	renders, err := RenderFromGridLog(m.Name, j.points, gridLog)
	if err != nil {
		return err
	}
	for _, name := range RenderNames() {
		if err := s.st.AddArtifact(m, name, renders[name]); err != nil {
			return err
		}
	}
	for label, pol := range policies {
		p := pol.Policy()
		if p == nil {
			continue // training failed or was skipped
		}
		var buf bytes.Buffer
		if err := p.Agent.Actor.Save(&buf); err != nil {
			return fmt.Errorf("ctlserv: checkpoint %q: %w", label, err)
		}
		if err := s.st.AddArtifact(m, "policy-"+sanitizeName(label)+".json", buf.Bytes()); err != nil {
			return err
		}
	}
	snap, err := json.MarshalIndent(j.state.reg.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("ctlserv: metrics snapshot: %w", err)
	}
	return s.st.AddArtifact(m, "metrics.json", append(snap, '\n'))
}

// sanitizeName maps a point label to an artifact-name-safe form.
func sanitizeName(label string) string {
	out := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.', c == '=':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// persist writes the manifest, logging failures to the server's
// error hook (storage errors mid-run must not crash the executor).
func (s *Server) persist(m *store.Manifest) {
	if err := s.st.PutManifest(m); err != nil {
		s.logf("ctlserv: persisting run %s: %v", m.ID, err)
	}
}
