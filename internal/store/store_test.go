package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	data := []byte("grid log contents\n")
	hash, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hash) != 64 {
		t.Fatalf("hash %q is not sha256 hex", hash)
	}
	if !s.Has(hash) {
		t.Error("Has = false after Put")
	}
	back, err := s.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Errorf("Get = %q, want %q", back, data)
	}
	// The blob must live at sha256/<prefix>/<hash>.
	path := filepath.Join(s.Root(), "blobs", "sha256", hash[:2], hash)
	if _, err := os.Stat(path); err != nil {
		t.Errorf("blob not at content-addressed path: %v", err)
	}
	// Idempotent re-put.
	again, err := s.Put(data)
	if err != nil || again != hash {
		t.Errorf("re-Put = %q, %v; want same hash", again, err)
	}
}

func TestGetRejectsCorruptAndInvalid(t *testing.T) {
	s := open(t)
	hash, err := s.Put([]byte("honest bytes"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Root(), "blobs", "sha256", hash[:2], hash)
	if err := os.WriteFile(path, []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(hash); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("Get of tampered blob: %v, want corruption error", err)
	}
	for _, bad := range []string{"", "ab", "../../etc/passwd", "aa/bb"} {
		if _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted an invalid hash", bad)
		}
	}
	if _, err := s.Get(strings.Repeat("0", 64)); err == nil {
		t.Error("Get of a missing blob did not error")
	}
}

func TestManifestLifecycle(t *testing.T) {
	s := open(t)
	spec, _ := json.Marshal(map[string]string{"algo": "sp"})
	m := &Manifest{
		ID:      "r-0001",
		Name:    "smoke",
		Kind:    "sweep",
		Spec:    spec,
		GitRev:  "abc123",
		Status:  StatusQueued,
		Created: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
	}
	if err := s.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	if err := s.AddArtifact(m, "grid.jsonl", []byte(`{"cell":1}`+"\n")); err != nil {
		t.Fatal(err)
	}
	m.Status = StatusDone
	if err := s.PutManifest(m); err != nil {
		t.Fatal(err)
	}
	back, err := s.GetManifest("r-0001")
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "smoke" || back.Status != StatusDone || back.GitRev != "abc123" {
		t.Errorf("manifest round trip lost fields: %+v", back)
	}
	data, err := s.GetArtifact(back, "grid.jsonl")
	if err != nil || !strings.Contains(string(data), `"cell":1`) {
		t.Errorf("artifact read back = %q, %v", data, err)
	}
	if _, err := s.GetArtifact(back, "nope"); err == nil {
		t.Error("missing artifact did not error")
	}
}

func TestManifestIDValidation(t *testing.T) {
	s := open(t)
	for _, bad := range []string{"", "a/b", "..", "../x", `a\b`} {
		if err := s.PutManifest(&Manifest{ID: bad}); err == nil {
			t.Errorf("PutManifest accepted id %q", bad)
		}
		if _, err := s.GetManifest(bad); err == nil {
			t.Errorf("GetManifest accepted id %q", bad)
		}
	}
}

func TestListManifestsOrder(t *testing.T) {
	s := open(t)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i, id := range []string{"r-a", "r-b", "r-c"} {
		m := &Manifest{ID: id, Status: StatusQueued, Created: base.Add(time.Duration(i) * time.Minute)}
		if err := s.PutManifest(m); err != nil {
			t.Fatal(err)
		}
	}
	// A stray non-manifest file must not break the listing.
	if err := os.WriteFile(filepath.Join(s.Root(), "runs", "junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := s.ListManifests()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].ID != "r-c" || ms[2].ID != "r-a" {
		ids := make([]string, len(ms))
		for i, m := range ms {
			ids[i] = m.ID
		}
		t.Errorf("listing = %v, want [r-c r-b r-a]", ids)
	}
}

// TestBlobDedup pins the content-addressing benefit the controller
// relies on: identical artifacts across runs share one blob.
func TestBlobDedup(t *testing.T) {
	s := open(t)
	m1 := &Manifest{ID: "r-1", Status: StatusDone}
	m2 := &Manifest{ID: "r-2", Status: StatusDone}
	payload := []byte("identical render\n")
	if err := s.AddArtifact(m1, "figure.md", payload); err != nil {
		t.Fatal(err)
	}
	if err := s.AddArtifact(m2, "figure.md", payload); err != nil {
		t.Fatal(err)
	}
	if m1.Artifacts["figure.md"].Hash != m2.Artifacts["figure.md"].Hash {
		t.Error("identical artifacts got different addresses")
	}
}
