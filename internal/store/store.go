// Package store is the controller's artifact layer: a content-addressed
// blob store plus per-run manifests. Every artifact a run produces —
// grid logs, flow traces, BENCH_*.json, policy checkpoints, rendered
// figure markdown/CSV — is written once under its sha256
// (blobs/sha256/<first two hex>/<hash>) and referenced by name from the
// run's manifest, so identical outputs across runs share storage, a
// manifest's hashes double as an integrity check, and "recalc" can
// re-render figures from stored bytes with a byte-identity guarantee:
// same input hash in, same output hash out.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Store is a content-addressed blob store with a manifest directory,
// rooted at one filesystem path:
//
//	<root>/blobs/sha256/<aa>/<hash>   blob contents (immutable)
//	<root>/runs/<id>.json             run manifests (atomically replaced)
//
// Blob writes are idempotent and atomic (temp file + rename), so
// concurrent writers of the same content are safe and a crashed write
// never leaves a partial blob under its final name.
type Store struct {
	root string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{filepath.Join(dir, "blobs", "sha256"), filepath.Join(dir, "runs")} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// HashBytes returns the store's content address for data: the sha256
// hex digest.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// blobPath maps a hash to its blob file path.
func (s *Store) blobPath(hash string) string {
	return filepath.Join(s.root, "blobs", "sha256", hash[:2], hash)
}

// Put stores data and returns its hash. Idempotent: re-putting existing
// content is a no-op.
func (s *Store) Put(data []byte) (string, error) {
	hash := HashBytes(data)
	path := s.blobPath(hash)
	if _, err := os.Stat(path); err == nil {
		return hash, nil // already stored; content-addressing makes it identical
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".put-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("store: %w", err)
	}
	return hash, nil
}

// Get returns the blob for hash, verifying content integrity on read.
func (s *Store) Get(hash string) ([]byte, error) {
	if len(hash) < 3 || strings.ContainsAny(hash, "/\\.") {
		return nil, fmt.Errorf("store: invalid hash %q", hash)
	}
	data, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", hash, err)
	}
	if got := HashBytes(data); got != hash {
		return nil, fmt.Errorf("store: blob %s corrupt (content hashes to %s)", hash, got)
	}
	return data, nil
}

// Has reports whether the blob exists.
func (s *Store) Has(hash string) bool {
	if len(hash) < 3 {
		return false
	}
	_, err := os.Stat(s.blobPath(hash))
	return err == nil
}

// Artifact is one named run output: the content address plus its size.
type Artifact struct {
	Hash  string `json:"hash"`
	Bytes int    `json:"bytes"`
}

// Run statuses, the manifest lifecycle: queued → running → done,
// failed, or canceled.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Manifest is one run's durable record: what was asked (the submitted
// spec, verbatim), where the code stood (git revision), what happened
// (status, timing, error), and every artifact produced, by name →
// content address. It is the unit the controller lists, serves, and
// recalcs from.
type Manifest struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Kind    string          `json:"kind"` // "run" or "sweep"
	Spec    json.RawMessage `json:"spec"`
	GitRev  string          `json:"git_rev,omitempty"`
	Status  string          `json:"status"`
	Error   string          `json:"error,omitempty"`
	Created time.Time       `json:"created"`
	Started time.Time       `json:"started,omitempty"`
	Ended   time.Time       `json:"ended,omitempty"`
	// Cells is the grid size recorded before execution starts.
	Cells int `json:"cells,omitempty"`
	// Artifacts maps artifact names (grid.jsonl, figure.md, matrix.csv,
	// ...) to their blobs.
	Artifacts map[string]Artifact `json:"artifacts,omitempty"`
}

// manifestPath maps a run ID to its manifest file. IDs are generated by
// the controller (NewRunID) and validated on the read path so a crafted
// ID cannot escape the runs directory.
func (s *Store) manifestPath(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("store: invalid run id %q", id)
	}
	return filepath.Join(s.root, "runs", id+".json"), nil
}

// PutManifest writes the manifest atomically (temp + rename), replacing
// any previous version.
func (s *Store) PutManifest(m *Manifest) error {
	path, err := s.manifestPath(m.ID)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: manifest %s: %w", m.ID, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetManifest loads one run manifest by ID.
func (s *Store) GetManifest(id string) (*Manifest, error) {
	path, err := s.manifestPath(id)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: run %s: %w", id, err)
	}
	return &m, nil
}

// ListManifests returns every run manifest, newest first (by creation
// time, then ID for a stable order).
func (s *Store) ListManifests() ([]*Manifest, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "runs"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []*Manifest
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		m, err := s.GetManifest(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // a manifest mid-rename or corrupt: skip, don't fail the listing
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.After(out[j].Created)
		}
		return out[i].ID > out[j].ID
	})
	return out, nil
}

// AddArtifact stores data as a blob and records it on the manifest
// under name (replacing a previous artifact of the same name). The
// caller still owns persisting the manifest via PutManifest.
func (s *Store) AddArtifact(m *Manifest, name string, data []byte) error {
	hash, err := s.Put(data)
	if err != nil {
		return err
	}
	if m.Artifacts == nil {
		m.Artifacts = make(map[string]Artifact)
	}
	m.Artifacts[name] = Artifact{Hash: hash, Bytes: len(data)}
	return nil
}

// GetArtifact returns the named artifact's bytes from a manifest.
func (s *Store) GetArtifact(m *Manifest, name string) ([]byte, error) {
	a, ok := m.Artifacts[name]
	if !ok {
		return nil, fmt.Errorf("store: run %s has no artifact %q", m.ID, name)
	}
	return s.Get(a.Hash)
}
