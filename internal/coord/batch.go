package coord

import (
	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// This file implements the simnet.BatchDecider capability for the
// package's coordinators: several flows pending at the same node and
// event time are observed against the same state snapshot and resolved
// with one batched actor forward pass. Every implementation resolves
// flows in slice order and draws per-node randomness in that order, so
// a batch of one is bit-identical to the sequential Decide path.

// observeRows packs one observation per flow into a flat row-major
// block backed by buf (grown as needed) and returns it. Row r occupies
// [r*w, (r+1)*w).
func observeRows(a *Adapter, buf []float64, st *simnet.State, flows []*simnet.Flow, v graph.NodeID, now float64) []float64 {
	w := a.ObsSize()
	k := len(flows)
	if cap(buf) < k*w {
		buf = make([]float64, k*w)
	}
	buf = buf[:k*w]
	for r, f := range flows {
		// ObserveInto appends from length zero; the capped three-index
		// slice makes it fill exactly row r in place.
		a.ObserveInto(buf[r*w:r*w:(r+1)*w], st, f, v, now)
	}
	return buf
}

// DecideBatch implements simnet.BatchDecider: node v observes all flows
// against the current state, runs its policy copy once over the batch,
// and samples (or argmaxes) per row. Row results are bit-identical to
// sequential Decide calls on the same per-node stream.
func (d *Distributed) DecideBatch(st *simnet.State, flows []*simnet.Flow, v graph.NodeID, now float64, actions []int) {
	k := len(flows)
	if k == 0 {
		return
	}
	if k == 1 {
		// A singleton batch takes the scalar path — same semantics, no
		// packing overhead.
		actions[0] = d.Decide(st, flows[0], v, now)
		return
	}
	n := &d.bank.nodes[v]
	n.batchObs = observeRows(d.adapter, n.batchObs, st, flows, v, now)
	n.decideRows(n.batchObs, k, d.adapter.NumActions(), d.Stochastic, actions)
}

// decideRows resolves k prebuilt observation rows (flat row-major) with
// one batched forward pass, sampling per row in order from the node's
// stream. Shared by the in-process batch path above and by
// PolicyBank.DecideRows (the agent-daemon path), so both sample
// bit-identically.
func (n *nodeState) decideRows(rows []float64, k, na int, stochastic bool, actions []int) {
	if n.bws == nil {
		n.bws = n.actor.NewBatchWorkspace()
	}
	logits := n.actor.ForwardBatchInto(n.bws, rows, k)
	if !stochastic {
		nn.ArgmaxRows(logits, k, na, actions)
		return
	}
	if cap(n.bprobs) < k*na {
		n.bprobs = make([]float64, k*na)
	}
	probs := nn.SoftmaxBatchInto(logits, k, na, n.bprobs[:k*na])
	for r := 0; r < k; r++ {
		actions[r] = nn.SampleCategorical(n.rng, probs[r*na:(r+1)*na])
	}
}

// DecideBatch implements simnet.BatchDecider for continuous online
// training: one batched forward pass through node v's current agent,
// then per-flow trace bookkeeping in slice order — the same order the
// sequential path would have produced. The observation block is freshly
// allocated per batch because the rows are retained in the node's
// experience buffer (cf. Decide).
func (o *Online) DecideBatch(st *simnet.State, flows []*simnet.Flow, v graph.NodeID, now float64, actions []int) {
	k := len(flows)
	if k == 0 {
		return
	}
	if k == 1 {
		actions[0] = o.Decide(st, flows[0], v, now)
		return
	}
	w := o.adapter.ObsSize()
	block := observeRows(o.adapter, nil, st, flows, v, now)
	if o.bscratch[v] == nil {
		o.bscratch[v] = o.agents[v].NewBatchScratch()
	}
	o.agents[v].SampleActionsWith(o.bscratch[v], block, k, o.rngs[v], actions)
	for r, f := range flows {
		obs := block[r*w : (r+1)*w : (r+1)*w]
		ft := o.open[f.ID]
		if ft == nil {
			ft = &onlineTrace{}
			o.open[f.ID] = ft
		}
		ft.closePending()
		ft.pending = rl.Step{Obs: obs, Action: actions[r]}
		ft.node = v
		ft.active = true
	}
}

// DecideBatch implements simnet.BatchDecider for training rollouts when
// the policy supports batched selection; other policies fall back to
// per-flow Decide calls.
func (t *trainingCoordinator) DecideBatch(st *simnet.State, flows []*simnet.Flow, v graph.NodeID, now float64, actions []int) {
	bp, batched := t.policy.(rl.BatchPolicy)
	if !batched || len(flows) == 1 {
		for i, f := range flows {
			actions[i] = t.Decide(st, f, v, now)
		}
		return
	}
	w := t.adapter.ObsSize()
	// Freshly allocated per batch: the rows are retained as trajectory
	// observations by the collector.
	block := observeRows(t.adapter, nil, st, flows, v, now)
	bp.SelectActions(block, len(flows), actions)
	for r, f := range flows {
		t.col.onDecide(f, block[r*w:(r+1)*w:(r+1)*w], actions[r])
	}
}
