package coord

import (
	"math/rand"
	"reflect"
	"testing"

	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// newTestDistributed builds a Distributed coordinator over the easy
// two-node scenario with a small random-weight actor.
func newTestDistributed(t testing.TB) (*Distributed, EnvConfig) {
	t.Helper()
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize: a.ObsSize(), NumActions: a.NumActions(), Hidden: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(a, agent.Actor)
	if err != nil {
		t.Fatal(err)
	}
	return d, cfg
}

// TestDecideZeroAllocs pins the tentpole acceptance criterion: the
// steady-state per-decision path (ObserveInto + ForwardInto + softmax +
// sample) performs zero allocations, in both decision modes.
func TestDecideZeroAllocs(t *testing.T) {
	d, cfg := newTestDistributed(t)
	st := simnet.NewState(cfg.Graph, d.adapter.APSP())
	f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}
	for _, mode := range []struct {
		name       string
		stochastic bool
	}{{"stochastic", true}, {"argmax", false}} {
		t.Run(mode.name, func(t *testing.T) {
			d.Stochastic = mode.stochastic
			d.Decide(st, f, 0, 1) // warm up buffers
			allocs := testing.AllocsPerRun(200, func() {
				d.Decide(st, f, 0, 1)
			})
			if allocs != 0 {
				t.Errorf("Decide allocates %v times per run, want 0", allocs)
			}
		})
	}
}

func TestObserveIntoZeroAllocsAndMatchesObserve(t *testing.T) {
	d, cfg := newTestDistributed(t)
	a := d.adapter
	st := simnet.NewState(cfg.Graph, a.APSP())
	f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}

	want := a.Observe(st, f, 0, 2)
	buf := make([]float64, 0, a.ObsSize())
	got := a.ObserveInto(buf, st, f, 0, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ObserveInto = %v, Observe = %v", got, want)
	}
	allocs := testing.AllocsPerRun(200, func() {
		buf = a.ObserveInto(buf, st, f, 0, 2)
	})
	if allocs != 0 {
		t.Errorf("ObserveInto allocates %v times per run, want 0", allocs)
	}
}

// TestDecideAtHonorsStochastic: DecideAt must route through the same
// decide logic as Decide — before the fix it hardcoded argmax, so the
// Fig. 9b latency bench measured a code path deployment never runs.
func TestDecideAtHonorsStochastic(t *testing.T) {
	d, cfg := newTestDistributed(t)
	a := d.adapter
	st := simnet.NewState(cfg.Graph, a.APSP())
	f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}
	obs := a.Observe(st, f, 0, 0)

	d.Stochastic = false
	first := d.DecideAt(0, obs)
	for i := 0; i < 10; i++ {
		if got := d.DecideAt(0, obs); got != first {
			t.Fatalf("argmax DecideAt not deterministic: %d then %d", first, got)
		}
	}

	// A random-weight actor over 2 actions is near uniform: sampling the
	// same observation repeatedly must produce both actions.
	d.Stochastic = true
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		seen[d.DecideAt(0, obs)] = true
	}
	if len(seen) < 2 {
		t.Errorf("stochastic DecideAt produced only %v over 200 samples; argmax is still hardcoded", seen)
	}
}

// TestPerNodeStreamsIndependent: decisions at one node must not consume
// another node's random stream — interleaving extra decisions at node 1
// may not change the sequence node 0 produces.
func TestPerNodeStreamsIndependent(t *testing.T) {
	d, cfg := newTestDistributed(t)
	a := d.adapter
	st := simnet.NewState(cfg.Graph, a.APSP())
	f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}
	obs := a.Observe(st, f, 0, 0)

	const n = 64
	sequence := func(interleave bool) []int {
		d.Reseed(42)
		out := make([]int, n)
		for i := range out {
			out[i] = d.DecideAt(0, obs)
			if interleave {
				d.DecideAt(1, obs)
			}
		}
		return out
	}
	plain := sequence(false)
	interleaved := sequence(true)
	if !reflect.DeepEqual(plain, interleaved) {
		t.Error("node 0's decision sequence changed when node 1 decided in between: nodes share a stream")
	}
}

// TestDistributedMetricsByteIdentical is the determinism regression
// re-run after the per-node RNG restructuring: two full simulations with
// identically reseeded coordinators and identical traffic must produce
// deeply equal metrics.
func TestDistributedMetricsByteIdentical(t *testing.T) {
	cfg := easyScenario()
	cfg.Horizon = 500
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize: a.ObsSize(), NumActions: a.NumActions(), Hidden: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func() *simnet.Metrics {
		d, err := NewDistributed(a, agent.Actor)
		if err != nil {
			t.Fatal(err)
		}
		d.Reseed(7)
		sim, err := simnet.New(simnet.Config{
			Graph:       cfg.Graph,
			APSP:        a.APSP(),
			Service:     cfg.Service,
			Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.NewPoisson(10, rand.New(rand.NewSource(3)))}},
			Egress:      cfg.Egress,
			Template:    cfg.Template,
			Horizon:     cfg.Horizon,
			Coordinator: d,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.Clone() // Clone drops the private quantile cache
	}

	m1, m2 := run(), run()
	if !reflect.DeepEqual(m1, m2) {
		t.Errorf("metrics diverged across identically seeded runs:\n%+v\nvs\n%+v", m1, m2)
	}
}
