package coord

import (
	"fmt"

	"distcoord/internal/agentnet"
	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// RemoteOptions configures a Remote coordinator.
type RemoteOptions struct {
	// Stochastic mirrors Distributed.Stochastic; it is shipped to the
	// agents at handshake (they do the sampling). Defaults true via
	// NewRemote, matching Distributed.
	Stochastic bool
	// Checkpoint, when non-nil, is the serialized policy the fleet must
	// run: any agent advertising a different model hash gets it pushed
	// (requires the agent to grant CapModelPush). When nil, every agent
	// must already advertise the same hash — a heterogeneous fleet is
	// refused at construction, not discovered as skewed metrics later.
	Checkpoint []byte
	// Client tunes the per-agent connections (timeouts, backoff).
	Client agentnet.ClientConfig
	// ObserveRTT receives each decision round trip in microseconds.
	ObserveRTT func(us float64)
	// Metrics, when non-nil, receives the fleet telemetry series
	// (agent.<slot>.* gauges, counters and RTT histograms) so the agent
	// health shows up on the run's observability endpoints alongside the
	// simulator metrics. Nil keeps fleet telemetry private to the pool.
	Metrics *telemetry.Registry
	// Logf receives connection lifecycle lines; nil silences them.
	Logf func(format string, args ...any)
}

// Remote implements simnet.Coordinator by forwarding decisions to a
// fleet of agent daemons over agentnet. The simulator side builds
// observation rows exactly like Distributed does; the rows cross the
// socket; the agent's PolicyBank (same actor clone, same per-node stream
// derivation) samples the action. For a healthy fleet a remote run is
// therefore metric-identical to an in-process Distributed run with the
// same seed — the equivalence oracle tests pin this.
//
// A dead agent degrades, not crashes, the run: after the client's
// reconnect budget a decision fails and Remote answers with an invalid
// action, which the engine records as a DropInvalidAction for that flow.
// Dropped traffic at the dead agent's nodes is precisely the observable
// a recovery tracker should see during an agent-kill chaos run.
type Remote struct {
	adapter    *Adapter
	pool       *agentnet.Pool
	stochastic bool

	// OnTime, when set, observes every decision's event time before the
	// decision is dispatched. The driver uses it to fire scheduled
	// agent-kill faults at simulation time rather than wall time.
	OnTime func(now float64)

	obs     []float64
	rows    []float64
	scratch []int32

	// span counts decision round trips, giving every RPC a unique span ID
	// carried in the wire frame (trace correlation across processes).
	span uint64
	// lastTiming holds the sub-span decomposition of the most recent round
	// trip; hasTiming guards the first-decision case. Single simulation
	// goroutine — no locking.
	lastTiming simnet.DecideTiming
	hasTiming  bool
}

// NewRemote dials every endpoint, verifies or pushes the policy, and
// returns a coordinator ready for a run seeded with seed (the agents'
// per-node sampling streams derive from it, like Distributed.Reseed).
func NewRemote(adapter *Adapter, endpoints []string, seed int64, opts RemoteOptions) (*Remote, error) {
	hello := agentnet.Hello{
		Seed:       seed,
		Stochastic: opts.Stochastic,
		ObsSize:    uint32(adapter.ObsSize()),
		NumActions: uint32(adapter.NumActions()),
		WantCaps:   agentnet.CapBatch | agentnet.CapModelPush,
	}
	var wantHash string
	if opts.Checkpoint != nil {
		wantHash = nn.Checksum(opts.Checkpoint)
		hello.ModelHash = wantHash
	}
	pool, err := agentnet.DialPool(endpoints, hello, adapter.Graph().NumNodes(), agentnet.PoolConfig{
		Client:     opts.Client,
		ObserveRTT: opts.ObserveRTT,
		Metrics:    opts.Metrics,
		Logf:       opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	r := &Remote{
		adapter:    adapter,
		pool:       pool,
		stochastic: opts.Stochastic,
		obs:        make([]float64, 0, adapter.ObsSize()),
	}
	if err := r.ensureModel(wantHash, opts.Checkpoint); err != nil {
		pool.Close()
		return nil, err
	}
	return r, nil
}

// ensureModel brings every agent onto one policy: push when we hold the
// checkpoint, verify hash agreement when we don't.
func (r *Remote) ensureModel(wantHash string, checkpoint []byte) error {
	if checkpoint != nil {
		for i := 0; i < r.pool.NumAgents(); i++ {
			c := r.pool.Agent(i)
			if c.Ack().ModelHash == wantHash {
				continue
			}
			if c.Ack().Caps&agentnet.CapModelPush == 0 {
				return fmt.Errorf("coord: agent %d (%s) runs model %.12s..., wants %.12s..., and did not negotiate model push",
					i, c.Addr(), c.Ack().ModelHash, wantHash)
			}
			if err := c.PushModel(wantHash, checkpoint); err != nil {
				return err
			}
		}
		return nil
	}
	first := r.pool.Agent(0).Ack().ModelHash
	for i := 1; i < r.pool.NumAgents(); i++ {
		if h := r.pool.Agent(i).Ack().ModelHash; h != first {
			return fmt.Errorf("coord: heterogeneous fleet: agent 0 runs %.12s..., agent %d runs %.12s... (push a model to reconcile)",
				first, i, h)
		}
	}
	return nil
}

// Name implements simnet.Coordinator.
func (r *Remote) Name() string { return "RemoteDRL" }

// Decide implements simnet.Coordinator: observe locally, ship the row to
// the node's agent, return its sampled action. A transport failure maps
// to an invalid action (the engine drops the flow) — the simulation
// keeps going with the dead agent's nodes visibly degraded.
func (r *Remote) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	if r.OnTime != nil {
		r.OnTime(now)
	}
	r.obs = r.adapter.ObserveInto(r.obs, st, f, v, now)
	r.span++
	a, err := r.pool.Decide(int(v), now, uint64(f.ID), r.span, r.obs)
	r.recordTiming(int(v))
	if err != nil {
		return -1
	}
	return int(a)
}

// recordTiming converts the pool's last round-trip decomposition for node
// into the simulator-side DecideTiming consumed via the DecisionTimer
// capability. Failed round trips still tile (total == send), so chaos
// runs attribute reconnect stalls to the client-send sub-span.
func (r *Remote) recordTiming(node int) {
	t := r.pool.LastRPCTiming(node)
	r.lastTiming = simnet.DecideTiming{
		TotalNS:  t.TotalNS,
		SendNS:   t.SendNS,
		NetNS:    t.NetNS,
		QueueNS:  t.QueueNS,
		InferNS:  t.InferNS,
		ReturnNS: t.ReturnNS,
	}
	r.hasTiming = t.TotalNS != 0
}

// LastDecideTiming implements simnet.DecisionTimer.
func (r *Remote) LastDecideTiming() (simnet.DecideTiming, bool) {
	return r.lastTiming, r.hasTiming
}

// DecideBatch implements simnet.BatchDecider by shipping the whole
// same-node cohort in one round trip. Only used when every agent granted
// CapBatch (see Capabilities).
func (r *Remote) DecideBatch(st *simnet.State, flows []*simnet.Flow, v graph.NodeID, now float64, actions []int) {
	k := len(flows)
	if k == 0 {
		return
	}
	if r.OnTime != nil {
		r.OnTime(now)
	}
	r.rows = observeRows(r.adapter, r.rows, st, flows, v, now)
	r.span++
	got, err := r.pool.DecideBatch(int(v), now, r.span, r.adapter.ObsSize(), r.rows)
	r.recordTiming(int(v))
	if err != nil || len(got) != k {
		for i := range actions[:k] {
			actions[i] = -1
		}
		return
	}
	for i, a := range got {
		actions[i] = int(a)
	}
}

// Capabilities implements simnet.CapsProvider: Remote's effective
// capability set is negotiated, not a property of its Go type. Batch is
// only advertised when every agent in the fleet granted CapBatch — a
// cohort can land on any node, hence any agent.
func (r *Remote) Capabilities() simnet.Caps {
	caps := simnet.Caps{Timing: r}
	if r.pool.Caps()&agentnet.CapBatch != 0 {
		caps.Batch = r
	}
	return caps
}

// Pool exposes the agent registry (kill/revive hooks, RTT stats, agent
// IDs) to the driver.
func (r *Remote) Pool() *agentnet.Pool { return r.pool }

// Close releases all agent connections.
func (r *Remote) Close() error { return r.pool.Close() }
