package coord

import (
	"math/rand"

	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/simnet"
)

// nodeState is everything one deployed node owns: its actor copy, its
// private sampling stream, and the inference scratch buffers that make
// the steady-state decide path allocation-free. Nothing here is shared
// across nodes, so nodes may decide concurrently.
type nodeState struct {
	actor *nn.MLP
	rng   *rand.Rand
	ws    *nn.Workspace
	obs   []float64
	probs []float64

	// Batched-inference buffers, allocated lazily on the node's first
	// DecideBatch call so sequential-only deployments never pay for them.
	bws      *nn.BatchWorkspace
	batchObs []float64
	bprobs   []float64
}

// Distributed is the paper's fully distributed DRL coordinator (Fig. 4b):
// after centralized training, every node v receives its own copy π_θ^v of
// the trained actor and decides for incoming flows purely from local
// observations, independently of and in parallel with all other nodes.
// It implements simnet.Coordinator.
type Distributed struct {
	adapter *Adapter
	// bank holds one actor copy, random stream, and inference workspace
	// per node — deliberately not shared, mirroring the deployment
	// architecture (and making per-node inference timing honest, Fig. 9b).
	// The same PolicyBank type, restricted to an assigned node subset,
	// is what cmd/agentd hosts on the far side of a socket.
	bank *PolicyBank

	// Stochastic samples actions from π instead of taking the argmax.
	// It defaults to true, matching the paper's stable-baselines
	// implementation (predict with deterministic=False): the trust
	// region keeps π smooth, and sampling is what breaks routing
	// symmetry — a pure argmax policy can ping-pong flows between two
	// nodes forever.
	Stochastic bool
}

// NewDistributed deploys a copy of the trained actor at each node of the
// adapter's network.
func NewDistributed(adapter *Adapter, actor *nn.MLP) (*Distributed, error) {
	bank, err := NewPolicyBank(actor, adapter.Graph().NumNodes(), nil, adapter.ObsSize(), adapter.NumActions())
	if err != nil {
		return nil, err
	}
	return &Distributed{
		adapter:    adapter,
		bank:       bank,
		Stochastic: true,
	}, nil
}

// Name implements simnet.Coordinator.
func (d *Distributed) Name() string { return "DistDRL" }

// Decide implements simnet.Coordinator: observe locally, run the node's
// own policy copy, act. The steady-state path performs zero allocations.
func (d *Distributed) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	n := &d.bank.nodes[v]
	n.obs = d.adapter.ObserveInto(n.obs, st, f, v, now)
	return n.decide(d.Stochastic)
}

// ForShard implements simnet.ShardableCoordinator. Distributed is
// shard-safe as-is: Decide touches only the decided node's private state
// (its own actor clone, RNG stream, and workspaces) and the adapter is
// read-only after construction, so every shard can share this instance —
// node states are disjoint across shards by the partition.
func (d *Distributed) ForShard(shard, shards int) simnet.Coordinator { return d }

// decide runs the node's policy on the observation currently in n.obs.
func (n *nodeState) decide(stochastic bool) int {
	logits := n.actor.ForwardInto(n.ws, n.obs)
	if stochastic {
		return nn.SampleCategorical(n.rng, nn.SoftmaxInto(logits, n.probs))
	}
	return nn.Argmax(logits)
}

// Reseed reinitializes the per-node sampling streams (for reproducible
// evaluation runs). Each node derives its own independent source from
// the base seed — the deployed nodes are independent decision makers,
// so they must not consume from one shared stream.
func (d *Distributed) Reseed(seed int64) { d.bank.Reseed(seed) }

// nodeSeed derives node v's stream from the base seed: a golden-ratio
// stride (splitmix-style) keeps the per-node sources decorrelated even
// for adjacent base seeds.
func nodeSeed(seed int64, v int) int64 {
	const golden = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	return seed + (int64(v)+1)*golden
}

// DecideAt runs inference for a specific node's policy copy on a
// prebuilt observation (used by the inference-latency bench, Fig. 9b).
// It routes through the same decide logic as Decide — honoring
// Stochastic — so benchmarks measure the deployed code path.
func (d *Distributed) DecideAt(v graph.NodeID, obs []float64) int {
	n := &d.bank.nodes[v]
	n.obs = append(n.obs[:0], obs...)
	return n.decide(d.Stochastic)
}
