package coord

import (
	"errors"
	"math/rand"

	"distcoord/internal/graph"
	"distcoord/internal/nn"
	"distcoord/internal/simnet"
)

// Distributed is the paper's fully distributed DRL coordinator (Fig. 4b):
// after centralized training, every node v receives its own copy π_θ^v of
// the trained actor and decides for incoming flows purely from local
// observations, independently of and in parallel with all other nodes.
// It implements simnet.Coordinator.
type Distributed struct {
	adapter *Adapter
	// actors holds one network copy per node — deliberately not shared,
	// mirroring the deployment architecture (and making per-node
	// inference timing honest, Fig. 9b).
	actors []*nn.MLP

	// Stochastic samples actions from π instead of taking the argmax.
	// It defaults to true, matching the paper's stable-baselines
	// implementation (predict with deterministic=False): the trust
	// region keeps π smooth, and sampling is what breaks routing
	// symmetry — a pure argmax policy can ping-pong flows between two
	// nodes forever.
	Stochastic bool
	rng        *rand.Rand
}

// NewDistributed deploys a copy of the trained actor at each node of the
// adapter's network.
func NewDistributed(adapter *Adapter, actor *nn.MLP) (*Distributed, error) {
	if actor.InputSize() != adapter.ObsSize() {
		return nil, errors.New("coord: actor input size does not match adapter observation size")
	}
	if actor.OutputSize() != adapter.NumActions() {
		return nil, errors.New("coord: actor output size does not match adapter action space")
	}
	d := &Distributed{
		adapter:    adapter,
		actors:     make([]*nn.MLP, adapter.Graph().NumNodes()),
		Stochastic: true,
		rng:        rand.New(rand.NewSource(1)),
	}
	for v := range d.actors {
		d.actors[v] = actor.Clone()
	}
	return d, nil
}

// Name implements simnet.Coordinator.
func (d *Distributed) Name() string { return "DistDRL" }

// Decide implements simnet.Coordinator: observe locally, run the node's
// own policy copy, act.
func (d *Distributed) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	obs := d.adapter.Observe(st, f, v, now)
	logits := d.actors[v].Forward(obs)
	if d.Stochastic {
		return nn.SampleCategorical(d.rng, nn.Softmax(logits))
	}
	return nn.Argmax(logits)
}

// Reseed reinitializes the sampling source (for reproducible evaluation
// runs).
func (d *Distributed) Reseed(seed int64) { d.rng = rand.New(rand.NewSource(seed)) }

// DecideAt runs inference for a specific node's policy copy on a
// prebuilt observation (used by the inference-latency bench, Fig. 9b).
func (d *Distributed) DecideAt(v graph.NodeID, obs []float64) int {
	return nn.Argmax(d.actors[v].Forward(obs))
}
