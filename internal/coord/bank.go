package coord

import (
	"errors"
	"fmt"
	"math/rand"

	"distcoord/internal/nn"
)

// PolicyBank is the per-node decision state of a distributed deployment:
// one actor clone, sampling stream, and inference scratch space per node
// ID in its set. It is the part of Distributed that does not need the
// simulator — given an already-built observation row it produces an
// action — which is exactly what a networked agent daemon hosts on the
// far side of the socket. Distributed wraps a full-node-set bank inside
// the simulator process; cmd/agentd wraps a partial bank (just its
// assigned nodes) behind agentnet.
//
// Determinism contract: a bank built from the same serialized actor and
// reseeded with the same base seed produces, per node, the same action
// sequence for the same observation sequence regardless of which process
// hosts it or which other nodes it materializes — each node's stream
// derives independently from (seed, node ID). The remote≡in-process
// equivalence oracle rests on this.
type PolicyBank struct {
	obsSize    int
	numActions int
	// nodes is indexed by node ID. Only IDs in the bank's set have an
	// actor materialized; the rest stay zero so a dense index (the
	// simulator's hot path) still works for full banks.
	nodes []nodeState
}

// NewPolicyBank clones the actor for every node ID in ids (nil means all
// of 0..numNodes-1) and sizes the inference buffers for the given
// observation/action geometry. Streams start seeded with base seed 1,
// like NewDistributed; call Reseed for run-specific streams.
func NewPolicyBank(actor *nn.MLP, numNodes int, ids []int, obsSize, numActions int) (*PolicyBank, error) {
	if actor.InputSize() != obsSize {
		return nil, errors.New("coord: actor input size does not match adapter observation size")
	}
	if actor.OutputSize() != numActions {
		return nil, errors.New("coord: actor output size does not match adapter action space")
	}
	if numNodes <= 0 {
		return nil, fmt.Errorf("coord: policy bank needs a positive node count, got %d", numNodes)
	}
	b := &PolicyBank{
		obsSize:    obsSize,
		numActions: numActions,
		nodes:      make([]nodeState, numNodes),
	}
	if ids == nil {
		ids = make([]int, numNodes)
		for v := range ids {
			ids[v] = v
		}
	}
	for _, v := range ids {
		if v < 0 || v >= numNodes {
			return nil, fmt.Errorf("coord: policy bank node ID %d out of range [0,%d)", v, numNodes)
		}
		c := actor.Clone()
		b.nodes[v] = nodeState{
			actor: c,
			ws:    c.NewWorkspace(),
			obs:   make([]float64, 0, obsSize),
			probs: make([]float64, numActions),
		}
	}
	b.Reseed(1)
	return b, nil
}

// Reseed reinitializes the sampling streams of every materialized node.
// Each node derives its own independent source from the base seed — the
// deployed nodes are independent decision makers, so they must not
// consume from one shared stream — and the derivation depends only on
// (seed, node ID), never on which other nodes this bank holds.
func (b *PolicyBank) Reseed(seed int64) {
	for v := range b.nodes {
		if b.nodes[v].actor == nil {
			continue
		}
		b.nodes[v].rng = rand.New(rand.NewSource(nodeSeed(seed, v)))
	}
}

// Has reports whether node v is materialized in this bank.
func (b *PolicyBank) Has(v int) bool {
	return v >= 0 && v < len(b.nodes) && b.nodes[v].actor != nil
}

// node returns node v's state, failing loudly on an unmaterialized ID —
// an agent asked to decide for a node it was never assigned is a routing
// bug, not a condition to paper over.
func (b *PolicyBank) node(v int) (*nodeState, error) {
	if !b.Has(v) {
		return nil, fmt.Errorf("coord: policy bank has no node %d", v)
	}
	return &b.nodes[v], nil
}

// DecideObs runs node v's policy on one prebuilt observation row.
func (b *PolicyBank) DecideObs(v int, obs []float64, stochastic bool) (int, error) {
	n, err := b.node(v)
	if err != nil {
		return 0, err
	}
	if len(obs) != b.obsSize {
		return 0, fmt.Errorf("coord: observation size %d, want %d", len(obs), b.obsSize)
	}
	n.obs = append(n.obs[:0], obs...)
	return n.decide(stochastic), nil
}

// DecideRows resolves a same-node cohort of k prebuilt observation rows
// (flat row-major in rows) and writes one action per row. It mirrors
// Distributed.DecideBatch exactly, including the singleton scalar path,
// so a remote cohort samples bit-identically to the in-process one.
func (b *PolicyBank) DecideRows(v int, rows []float64, k int, stochastic bool, actions []int) error {
	if k == 0 {
		return nil
	}
	if len(rows) != k*b.obsSize {
		return fmt.Errorf("coord: batch of %d rows has %d values, want %d", k, len(rows), k*b.obsSize)
	}
	if len(actions) < k {
		return fmt.Errorf("coord: actions buffer %d too small for %d rows", len(actions), k)
	}
	if k == 1 {
		a, err := b.DecideObs(v, rows, stochastic)
		if err != nil {
			return err
		}
		actions[0] = a
		return nil
	}
	n, err := b.node(v)
	if err != nil {
		return err
	}
	n.decideRows(rows, k, b.numActions, stochastic, actions)
	return nil
}
