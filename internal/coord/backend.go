package coord

import (
	"bytes"
	"fmt"
	"sync"

	"distcoord/internal/agentnet"
	"distcoord/internal/nn"
)

// AgentHost is the policy side of one agent daemon process: it owns the
// currently deployed checkpoint (bytes, hash, parsed actor) and mints a
// fresh agentnet.Backend per driver connection. Model swaps are atomic
// under the host lock and verified against the pushed hash before the
// old model is released, so the daemon never runs a torn or unverified
// checkpoint.
type AgentHost struct {
	id string
	// persistPath, when non-empty, is where verified pushed checkpoints
	// are written (nn.WriteFileVerified), so a restarted daemon comes
	// back with the model the control plane last deployed.
	persistPath string
	logf        func(format string, args ...any)

	// OnDeploy, when set before serving, observes every successful model
	// swap with the new checkpoint hash (daemon telemetry counts deploys
	// and exposes the live model version). Called outside the host lock.
	OnDeploy func(hash string)

	mu    sync.Mutex
	model *nn.MLP
	hash  string
}

// NewAgentHost parses checkpoint bytes and returns a host serving that
// model. id is the agent's self-reported identity in handshakes;
// persistPath may be empty to keep pushed models in memory only.
func NewAgentHost(id string, checkpoint []byte, persistPath string, logf func(string, ...any)) (*AgentHost, error) {
	model, err := nn.Load(bytes.NewReader(checkpoint))
	if err != nil {
		return nil, err
	}
	return &AgentHost{
		id:          id,
		persistPath: persistPath,
		logf:        logf,
		model:       model,
		hash:        nn.Checksum(checkpoint),
	}, nil
}

// ModelHash returns the hash of the currently deployed checkpoint.
func (h *AgentHost) ModelHash() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hash
}

// swapModel verifies and installs a pushed checkpoint, persisting it if
// the host is configured to. Returns the parsed model for the session
// that received the push.
func (h *AgentHost) swapModel(hash string, payload []byte) (*nn.MLP, error) {
	model, err := nn.LoadVerified(payload, hash)
	if err != nil {
		return nil, err
	}
	if h.persistPath != "" {
		if err := nn.WriteFileVerified(h.persistPath, payload, hash); err != nil {
			return nil, err
		}
	}
	h.mu.Lock()
	h.model = model
	h.hash = hash
	h.mu.Unlock()
	h.log("agentd: deployed model %.12s...", hash)
	if h.OnDeploy != nil {
		h.OnDeploy(hash)
	}
	return model, nil
}

func (h *AgentHost) snapshot() (*nn.MLP, string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.model, h.hash
}

func (h *AgentHost) log(format string, args ...any) {
	if h.logf != nil {
		h.logf(format, args...)
	}
}

// NewBackend mints the per-connection backend (agentnet.Server calls
// this once per accepted driver connection).
func (h *AgentHost) NewBackend() agentnet.Backend { return &policySession{host: h} }

// policySession is one driver connection's decision state: a PolicyBank
// over the nodes the driver assigned in its Hello, with streams derived
// from the driver's seed. Sessions are independent — two drivers (or a
// reconnecting one) each get fresh, deterministic state.
type policySession struct {
	host       *AgentHost
	hello      agentnet.Hello
	bank       *PolicyBank
	stochastic bool
	scratch    []int
}

func (s *policySession) Init(h *agentnet.Hello) (agentnet.HelloAck, error) {
	model, hash := s.host.snapshot()
	if h.ModelHash != "" && h.ModelHash != hash {
		// The driver expected a specific model we don't have. Not fatal:
		// report our hash and let the driver push (it negotiated
		// CapModelPush for exactly this).
		s.host.log("agentd: driver expects model %.12s..., have %.12s...", h.ModelHash, hash)
	}
	if len(h.Nodes) == 0 {
		return agentnet.HelloAck{}, fmt.Errorf("coord: handshake assigns no nodes")
	}
	s.hello = *h
	s.stochastic = h.Stochastic
	if err := s.buildBank(model); err != nil {
		return agentnet.HelloAck{}, err
	}
	return agentnet.HelloAck{
		AgentID:   s.host.id,
		ModelHash: hash,
		Caps:      h.WantCaps & (agentnet.CapBatch | agentnet.CapModelPush),
	}, nil
}

// buildBank (re)derives the session's decision state from a model and
// the handshake geometry. Called at Init and again after a model push;
// both times the streams restart from the handshake seed, so a push
// before the first decide (the deployment pattern) leaves the run
// bit-identical to an in-process one.
func (s *policySession) buildBank(model *nn.MLP) error {
	numNodes := 0
	ids := make([]int, len(s.hello.Nodes))
	for i, v := range s.hello.Nodes {
		ids[i] = int(v)
		if int(v)+1 > numNodes {
			numNodes = int(v) + 1
		}
	}
	bank, err := NewPolicyBank(model, numNodes, ids, int(s.hello.ObsSize), int(s.hello.NumActions))
	if err != nil {
		return err
	}
	bank.Reseed(s.hello.Seed)
	s.bank = bank
	return nil
}

func (s *policySession) Decide(node uint32, now float64, obs []float64) (int32, error) {
	a, err := s.bank.DecideObs(int(node), obs, s.stochastic)
	if err != nil {
		return 0, err
	}
	return int32(a), nil
}

func (s *policySession) DecideBatch(node uint32, now float64, width int, rows []float64, actions []int32) error {
	if width != int(s.hello.ObsSize) {
		return fmt.Errorf("coord: batch row width %d, want %d", width, s.hello.ObsSize)
	}
	k := len(actions)
	if cap(s.scratch) < k {
		s.scratch = make([]int, k)
	}
	s.scratch = s.scratch[:k]
	if err := s.bank.DecideRows(int(node), rows, k, s.stochastic, s.scratch); err != nil {
		return err
	}
	for i, a := range s.scratch {
		actions[i] = int32(a)
	}
	return nil
}

func (s *policySession) SetModel(hash string, payload []byte) error {
	model, err := s.host.swapModel(hash, payload)
	if err != nil {
		return err
	}
	return s.buildBank(model)
}
