package coord

import (
	"errors"
	"fmt"
	"math/rand"

	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// Online implements the paper's proposed extension (Sec. IV-C1):
// continuous online training during distributed inference. Every node
// keeps its own actor-critic copy and a local experience buffer of the
// decisions it made; periodically, each node performs a local update
// from its buffer and all nodes synchronize by federated weight
// averaging (cf. FedAvg [36], [37]). Between synchronization points the
// nodes act purely locally, so online inference is never blocked by
// training.
//
// Online implements simnet.Coordinator plus the Ticker (periodic
// update/sync), FlowObserver (reward observation), and Resetter
// capabilities. Setting it as a simulation's Coordinator is enough: the
// simulator discovers the capabilities at construction and attaches the
// listener automatically (configuring it additionally as Listener is
// deduplicated).
type Online struct {
	adapter *Adapter
	cfg     OnlineConfig

	agents   []*rl.Agent        // one per node
	scratch  []*rl.Scratch      // per node: reusable inference buffers
	bscratch []*rl.BatchScratch // per node: batched-inference buffers, lazily filled
	rngs     []*rand.Rand       // per node: private sampling stream
	buffers  [][]rl.Trajectory  // per node: single-step trajectories with precomputed returns
	open     map[int]*onlineTrace
	shaper   *shaper

	// Updates counts local update rounds performed (diagnostics).
	Updates int
	// Syncs counts federated averaging rounds (diagnostics).
	Syncs int
}

// OnlineConfig parameterizes continuous online training.
type OnlineConfig struct {
	// SyncInterval is the simulated time between local-update +
	// weight-averaging rounds. Default 200.
	SyncInterval float64
	// MinSteps is the minimum buffered decision count a node needs
	// before it runs a local update. Default 32.
	MinSteps int
	// Gamma is the discount factor for online returns. Default 0.99.
	Gamma float64
	// Rewards configures the shaped reward; zero value selects the
	// paper's defaults.
	Rewards RewardConfig
	// Seed drives action sampling.
	Seed int64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.SyncInterval <= 0 {
		c.SyncInterval = 200
	}
	if c.MinSteps <= 0 {
		c.MinSteps = 32
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.Rewards == (RewardConfig{}) {
		c.Rewards = DefaultRewards()
	}
	return c
}

// onlineTrace accumulates one flow's decision steps across nodes.
type onlineTrace struct {
	nodes   []graph.NodeID
	steps   []rl.Step
	pending rl.Step
	node    graph.NodeID
	reward  float64
	active  bool
}

// NewOnline deploys a per-node copy of the given trained agent and
// prepares continuous online training.
func NewOnline(adapter *Adapter, trained *rl.Agent, cfg OnlineConfig) (*Online, error) {
	if trained.Actor.InputSize() != adapter.ObsSize() {
		return nil, errors.New("coord: trained actor does not match adapter observation size")
	}
	cfg = cfg.withDefaults()
	n := adapter.Graph().NumNodes()
	o := &Online{
		adapter:  adapter,
		cfg:      cfg,
		agents:   make([]*rl.Agent, n),
		scratch:  make([]*rl.Scratch, n),
		bscratch: make([]*rl.BatchScratch, n),
		rngs:     make([]*rand.Rand, n),
		buffers:  make([][]rl.Trajectory, n),
		open:     make(map[int]*onlineTrace),
		shaper:   newShaper(cfg.Rewards, adapter.Diameter()),
	}
	base := trained.Config()
	for v := 0; v < n; v++ {
		agent, err := rl.NewAgent(rl.AgentConfig{
			ObsSize:     base.ObsSize,
			NumActions:  base.NumActions,
			Hidden:      base.Hidden,
			Gamma:       cfg.Gamma,
			LR:          base.LR,
			EntropyCoef: base.EntropyCoef,
			ValueCoef:   base.ValueCoef,
			MaxGradNorm: base.MaxGradNorm,
			KLLimit:     base.KLLimit,
			Seed:        cfg.Seed + int64(v),
		})
		if err != nil {
			return nil, fmt.Errorf("coord: building online agent for node %d: %w", v, err)
		}
		if err := agent.Actor.CopyWeightsFrom(trained.Actor); err != nil {
			return nil, err
		}
		if err := agent.Critic.CopyWeightsFrom(trained.Critic); err != nil {
			return nil, err
		}
		o.agents[v] = agent
		o.scratch[v] = agent.NewScratch()
		// Per-node sampling streams, matching the independent-deployment
		// model (cf. Distributed.Reseed).
		o.rngs[v] = rand.New(rand.NewSource(nodeSeed(cfg.Seed, v)))
	}
	return o, nil
}

// Name implements simnet.Coordinator.
func (o *Online) Name() string { return "DistDRL-online" }

// Decide implements simnet.Coordinator: sample from the node's own
// current policy and record the decision for its local buffer.
func (o *Online) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	// The observation is retained in the node's experience buffer, so it
	// must be freshly allocated here (unlike Distributed's reused buffer).
	obs := o.adapter.Observe(st, f, v, now)
	action := o.agents[v].SampleActionWith(o.scratch[v], obs, o.rngs[v])

	ft := o.open[f.ID]
	if ft == nil {
		ft = &onlineTrace{}
		o.open[f.ID] = ft
	}
	ft.closePending()
	ft.pending = rl.Step{Obs: obs, Action: action}
	ft.node = v
	ft.active = true
	return action
}

func (ft *onlineTrace) closePending() {
	if !ft.active {
		return
	}
	ft.pending.Reward = ft.reward
	ft.steps = append(ft.steps, ft.pending)
	ft.nodes = append(ft.nodes, ft.node)
	ft.reward = 0
	ft.active = false
}

// OnAction implements simnet.Listener.
func (o *Online) OnAction(f *simnet.Flow, v graph.NodeID, now float64, action int, res simnet.ActionResult) {
	ft := o.open[f.ID]
	if ft == nil || !ft.active {
		return
	}
	switch res.Kind {
	case simnet.ActionForwarded:
		ft.reward += o.shaper.link(o.adapter.Graph().Link(res.Link).Delay)
	case simnet.ActionKept:
		ft.reward += o.shaper.keep()
	}
}

// OnTraversed implements simnet.Listener.
func (o *Online) OnTraversed(f *simnet.Flow, v graph.NodeID, now float64) {
	if ft := o.open[f.ID]; ft != nil && ft.active {
		ft.reward += o.shaper.traverse(f.Service.Len())
	}
}

// OnFlowEnd implements simnet.Listener: compute the flow's discounted
// returns and hand each decision step to the buffer of the node that
// took it.
func (o *Online) OnFlowEnd(f *simnet.Flow, success bool, cause simnet.DropCause, now float64) {
	ft := o.open[f.ID]
	if ft == nil {
		return
	}
	if ft.active {
		if success {
			ft.reward += o.cfg.Rewards.Complete
		} else {
			ft.reward += o.cfg.Rewards.Drop
		}
		ft.closePending()
	}
	// Discounted returns over the flow's full trajectory; each step then
	// becomes a single-step trajectory (return as reward) in its node's
	// local buffer.
	g := 0.0
	for i := len(ft.steps) - 1; i >= 0; i-- {
		g = ft.steps[i].Reward + o.cfg.Gamma*g
		step := ft.steps[i]
		step.Reward = g
		v := ft.nodes[i]
		o.buffers[v] = append(o.buffers[v], rl.Trajectory{Steps: []rl.Step{step}})
	}
	delete(o.open, f.ID)
}

// Interval implements simnet.Ticker.
func (o *Online) Interval() float64 { return o.cfg.SyncInterval }

// Tick implements simnet.Ticker: run local updates on every node with
// enough experience, then federated-average the weights across all
// nodes.
func (o *Online) Tick(st *simnet.State, now float64) {
	updated := false
	for v := range o.agents {
		if len(o.buffers[v]) < o.cfg.MinSteps {
			continue
		}
		if _, err := o.agents[v].Update(o.buffers[v]); err == nil {
			o.Updates++
			updated = true
		}
		o.buffers[v] = nil
	}
	if updated {
		o.average()
		o.Syncs++
	}
}

// average performs FedAvg-style weight synchronization: every parameter
// becomes the mean over all node copies.
func (o *Online) average() {
	averageNetworks(paramsOf(o.agents, func(a *rl.Agent) [][]float64 { return a.Actor.Params() }))
	averageNetworks(paramsOf(o.agents, func(a *rl.Agent) [][]float64 { return a.Critic.Params() }))
}

func paramsOf(agents []*rl.Agent, get func(*rl.Agent) [][]float64) [][][]float64 {
	out := make([][][]float64, len(agents))
	for i, a := range agents {
		out[i] = get(a)
	}
	return out
}

// averageNetworks averages aligned parameter slices in place.
func averageNetworks(all [][][]float64) {
	if len(all) == 0 {
		return
	}
	n := float64(len(all))
	for block := range all[0] {
		for j := range all[0][block] {
			sum := 0.0
			for _, params := range all {
				sum += params[block][j]
			}
			mean := sum / n
			for _, params := range all {
				params[block][j] = mean
			}
		}
	}
}

// Reset implements simnet.Resetter: drop buffered experience and open
// traces (weights persist — online learning carries across runs).
func (o *Online) Reset(*simnet.State) {
	o.open = make(map[int]*onlineTrace)
	for v := range o.buffers {
		o.buffers[v] = nil
	}
}

// AgentAt exposes node v's current agent (tests and diagnostics).
func (o *Online) AgentAt(v graph.NodeID) *rl.Agent { return o.agents[v] }
