package coord

import (
	"reflect"
	"testing"

	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// batchFlows builds k distinct flows pending at the same node.
func batchFlows(cfg EnvConfig, k int) []*simnet.Flow {
	flows := make([]*simnet.Flow, k)
	for i := range flows {
		flows[i] = &simnet.Flow{
			ID: i + 1, Service: cfg.Service, Egress: 1,
			Rate: 1, Duration: 1, Deadline: 50,
			Arrival: float64(i) * 0.001, // distinct observations
		}
	}
	return flows
}

// TestDecideBatchMatchesDecide is the coord-level equivalence oracle: a
// DecideBatch over k flows must return exactly the actions k sequential
// Decide calls produce from an identically seeded coordinator, in both
// decision modes — the batched forward pass is bit-identical per row and
// the per-node stream is consumed in row order.
func TestDecideBatchMatchesDecide(t *testing.T) {
	for _, mode := range []struct {
		name       string
		stochastic bool
	}{{"stochastic", true}, {"argmax", false}} {
		t.Run(mode.name, func(t *testing.T) {
			d, cfg := newTestDistributed(t)
			d.Stochastic = mode.stochastic
			st := simnet.NewState(cfg.Graph, d.adapter.APSP())
			for _, k := range []int{1, 2, 3, 7, 16, 33} {
				flows := batchFlows(cfg, k)

				d.Reseed(99)
				want := make([]int, k)
				for i, f := range flows {
					want[i] = d.Decide(st, f, 0, 1)
				}

				d.Reseed(99)
				got := make([]int, k)
				d.DecideBatch(st, flows, 0, 1, got)

				if !reflect.DeepEqual(got, want) {
					t.Errorf("k=%d: DecideBatch = %v, sequential Decide = %v", k, got, want)
				}
			}
		})
	}
}

// TestDecideBatchZeroAllocs pins the steady-state batched decision path
// (observe rows + batched forward + softmax + sample) at zero
// allocations once the per-node batch buffers are warm.
func TestDecideBatchZeroAllocs(t *testing.T) {
	d, cfg := newTestDistributed(t)
	st := simnet.NewState(cfg.Graph, d.adapter.APSP())
	flows := batchFlows(cfg, 16)
	actions := make([]int, len(flows))
	d.DecideBatch(st, flows, 0, 1, actions) // warm up batch buffers
	allocs := testing.AllocsPerRun(200, func() {
		d.DecideBatch(st, flows, 0, 1, actions)
	})
	if allocs != 0 {
		t.Errorf("DecideBatch allocates %v times per run, want 0", allocs)
	}
}

// TestOnlineDecideBatchMatchesDecide checks the online coordinator: the
// batched path must produce the same actions and equivalent trace
// bookkeeping as sequential decides from an identically seeded state.
func TestOnlineDecideBatchMatchesDecide(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize: a.ObsSize(), NumActions: a.NumActions(), Hidden: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Online {
		o, err := NewOnline(a, agent, OnlineConfig{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	st := simnet.NewState(cfg.Graph, a.APSP())
	const k = 9
	flows := batchFlows(cfg, k)

	seq := mk()
	want := make([]int, k)
	for i, f := range flows {
		want[i] = seq.Decide(st, f, 0, 1)
	}

	bat := mk()
	got := make([]int, k)
	bat.DecideBatch(st, flows, 0, 1, got)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("Online.DecideBatch = %v, sequential = %v", got, want)
	}
	// Both paths must leave identical open-trace bookkeeping: one active
	// pending step per flow, owned by node 0.
	for _, f := range flows {
		sft, bft := seq.open[f.ID], bat.open[f.ID]
		if sft == nil || bft == nil {
			t.Fatalf("flow %d missing open trace (seq=%v bat=%v)", f.ID, sft != nil, bft != nil)
		}
		if !bft.active || bft.node != sft.node || bft.pending.Action != sft.pending.Action {
			t.Errorf("flow %d trace mismatch: seq=%+v bat=%+v", f.ID, sft.pending, bft.pending)
		}
		if !reflect.DeepEqual(sft.pending.Obs, bft.pending.Obs) {
			t.Errorf("flow %d observation mismatch between paths", f.ID)
		}
	}
}
