package coord

// RewardConfig holds the reward function ℛ of Sec. IV-B3. Zero value
// fields select the paper's constants via withDefaults.
type RewardConfig struct {
	// Complete is the terminal reward for a successful flow (+10).
	Complete float64
	// Drop is the terminal penalty for a dropped flow (−10).
	Drop float64
	// Shaping enables the auxiliary rewards (+1/n_s per traversed
	// instance, −d_l/D_G per link, −1/D_G per keep). Disabling it is the
	// reward-shaping ablation: training then only sees the sparse ±10.
	Shaping bool
}

// DefaultRewards returns the paper's reward configuration.
func DefaultRewards() RewardConfig {
	return RewardConfig{Complete: 10, Drop: -10, Shaping: true}
}

// shaper computes the shaped reward components for one topology.
type shaper struct {
	cfg      RewardConfig
	diameter float64 // D_G
}

func newShaper(cfg RewardConfig, diameter float64) *shaper {
	if diameter <= 0 {
		diameter = 1
	}
	return &shaper{cfg: cfg, diameter: diameter}
}

// traverse returns the reward for successfully traversing one instance of
// a chain of length chainLen: +1/n_s, encouraging local processing
// (Sec. IV-B3). The chain length is per flow, so multi-service scenarios
// shape each flow by its own service.
func (s *shaper) traverse(chainLen int) float64 {
	if !s.cfg.Shaping {
		return 0
	}
	if chainLen <= 0 {
		chainLen = 1
	}
	return 1 / float64(chainLen)
}

// link returns the penalty for sending a flow over a link with delay dl:
// −d_l/D_G, encouraging short routes.
func (s *shaper) link(dl float64) float64 {
	if !s.cfg.Shaping {
		return 0
	}
	return -dl / s.diameter
}

// keep returns the penalty for holding an already processed flow: −1/D_G.
func (s *shaper) keep() float64 {
	if !s.cfg.Shaping {
		return 0
	}
	return -1 / s.diameter
}
