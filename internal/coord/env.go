package coord

import (
	"errors"
	"fmt"
	"math/rand"

	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// EnvConfig describes one coordination scenario used for training: the
// network, the service, where traffic enters and exits, and how it
// arrives.
type EnvConfig struct {
	Graph   *graph.Graph
	APSP    *graph.APSP // optional
	Service *simnet.Service
	// Services optionally defines a weighted multi-service mix; when
	// set, Service is ignored (cf. simnet.Config).
	Services []simnet.WeightedService

	IngressNodes []graph.NodeID
	Egress       graph.NodeID
	Traffic      traffic.Spec
	Template     simnet.FlowTemplate

	// Horizon is the training episode length (time steps of flow
	// generation per rollout).
	Horizon float64

	Rewards RewardConfig

	// MaxBatch, when > 1, enables batched decision resolution during
	// rollouts (cf. simnet.Config.MaxBatch). The default 0 keeps rollouts
	// sequential, which is what training reproducibility baselines pin.
	MaxBatch int
}

func (c *EnvConfig) validate() error {
	if c.Graph == nil {
		return errors.New("coord: EnvConfig.Graph is nil")
	}
	if c.Service == nil && len(c.Services) == 0 {
		return errors.New("coord: EnvConfig has no service")
	}
	if len(c.IngressNodes) == 0 {
		return errors.New("coord: no ingress nodes")
	}
	if c.Traffic.New == nil {
		return errors.New("coord: no traffic spec")
	}
	if c.Horizon <= 0 {
		return errors.New("coord: Horizon must be positive")
	}
	if c.Rewards == (RewardConfig{}) {
		c.Rewards = DefaultRewards()
	}
	return nil
}

// Env is the training environment of Alg. 1: each rollout simulates the
// scenario once, pooling all nodes' decision steps into per-flow
// trajectories, and scores the episode by its flow success ratio. It
// implements rl.Env.
type Env struct {
	cfg     EnvConfig
	adapter *Adapter
	rng     *rand.Rand
}

// NewEnv builds a training environment. seed drives the traffic
// randomness of successive rollouts.
func NewEnv(cfg EnvConfig, seed int64) (*Env, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.APSP == nil {
		cfg.APSP = graph.NewAPSP(cfg.Graph)
	}
	return &Env{
		cfg:     cfg,
		adapter: NewAdapter(cfg.Graph, cfg.APSP),
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Adapter returns the environment's observation/action adapter.
func (e *Env) Adapter() *Adapter { return e.adapter }

// Rollout implements rl.Env: it runs one simulated episode under the
// given policy and returns the per-flow trajectories and the episode's
// success ratio.
func (e *Env) Rollout(p rl.Policy) ([]rl.Trajectory, float64, error) {
	col := newCollector(e.adapter, e.cfg.Rewards)
	tc := &trainingCoordinator{adapter: e.adapter, policy: p, col: col}

	ingresses := make([]simnet.Ingress, len(e.cfg.IngressNodes))
	for i, v := range e.cfg.IngressNodes {
		ingresses[i] = simnet.Ingress{
			Node: v,
			// Each rollout derives a fresh, independent arrival stream.
			Arrivals: e.cfg.Traffic.New(rand.New(rand.NewSource(e.rng.Int63()))),
		}
	}

	sim, err := simnet.New(simnet.Config{
		Graph:       e.cfg.Graph,
		APSP:        e.cfg.APSP,
		Service:     e.cfg.Service,
		Services:    e.cfg.Services,
		ServiceSeed: e.rng.Int63(),
		Ingresses:   ingresses,
		Egress:      e.cfg.Egress,
		Template:    e.cfg.Template,
		Horizon:     e.cfg.Horizon,
		Coordinator: tc,
		Listener:    col,
		MaxBatch:    e.cfg.MaxBatch,
	})
	if err != nil {
		return nil, 0, err
	}
	m, err := sim.Run()
	if err != nil {
		return nil, 0, err
	}
	if n := len(col.open); n != 0 {
		return nil, 0, fmt.Errorf("coord: %d trajectories left open after rollout", n)
	}
	return col.done, m.SuccessRatio(), nil
}

// trainingCoordinator queries the policy for every decision and reports
// (observation, action) pairs to the collector.
type trainingCoordinator struct {
	adapter *Adapter
	policy  rl.Policy
	col     *collector
}

// Name implements simnet.Coordinator.
func (t *trainingCoordinator) Name() string { return "drl-training" }

// Decide implements simnet.Coordinator.
func (t *trainingCoordinator) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	obs := t.adapter.Observe(st, f, v, now)
	action := t.policy.SelectAction(obs)
	t.col.onDecide(f, obs, action)
	return action
}

// collector assembles per-flow trajectories from simulator events. Each
// decision opens a step; shaping rewards accumulate onto the open step
// until the flow's next decision or its end finalizes it (the per-agent
// experience tuples of Alg. 1 ln. 7, pooled across all nodes).
type collector struct {
	simnet.NopListener
	g      *graph.Graph
	shaper *shaper
	open   map[int]*flowTrace
	done   []rl.Trajectory
}

type flowTrace struct {
	steps   []rl.Step
	pending rl.Step
	reward  float64
	active  bool
}

func newCollector(a *Adapter, rc RewardConfig) *collector {
	return &collector{
		g:      a.Graph(),
		shaper: newShaper(rc, a.Diameter()),
		open:   make(map[int]*flowTrace),
	}
}

// onDecide records a new decision, finalizing the flow's previous step.
func (c *collector) onDecide(f *simnet.Flow, obs []float64, action int) {
	ft := c.open[f.ID]
	if ft == nil {
		ft = &flowTrace{}
		c.open[f.ID] = ft
	}
	ft.closePending()
	ft.pending = rl.Step{Obs: obs, Action: action}
	ft.active = true
}

func (ft *flowTrace) closePending() {
	if !ft.active {
		return
	}
	ft.pending.Reward = ft.reward
	ft.steps = append(ft.steps, ft.pending)
	ft.reward = 0
	ft.active = false
}

// OnAction implements simnet.Listener: shaping penalties for link
// forwarding and keeping processed flows.
func (c *collector) OnAction(f *simnet.Flow, v graph.NodeID, now float64, action int, res simnet.ActionResult) {
	ft := c.open[f.ID]
	if ft == nil || !ft.active {
		return
	}
	switch res.Kind {
	case simnet.ActionForwarded:
		ft.reward += c.shaper.link(c.g.Link(res.Link).Delay)
	case simnet.ActionKept:
		ft.reward += c.shaper.keep()
	}
}

// OnTraversed implements simnet.Listener: +1/n_s shaping reward.
func (c *collector) OnTraversed(f *simnet.Flow, v graph.NodeID, now float64) {
	if ft := c.open[f.ID]; ft != nil && ft.active {
		ft.reward += c.shaper.traverse(f.Service.Len())
	}
}

// OnFlowEnd implements simnet.Listener: terminal ±10 and trajectory
// completion.
func (c *collector) OnFlowEnd(f *simnet.Flow, success bool, cause simnet.DropCause, now float64) {
	ft := c.open[f.ID]
	if ft == nil {
		return
	}
	if ft.active {
		if success {
			ft.reward += c.shaper.cfg.Complete
		} else {
			ft.reward += c.shaper.cfg.Drop
		}
		ft.closePending()
	}
	if len(ft.steps) > 0 {
		c.done = append(c.done, rl.Trajectory{Steps: ft.steps})
	}
	delete(c.open, f.ID)
}
