package coord

import (
	"strconv"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// benchDistributed deploys a paper-shaped (2x256) actor on Abilene with
// uniform capacities.
func benchDistributed(b *testing.B) (*Distributed, *simnet.State, *simnet.Flow) {
	b.Helper()
	g := graph.Abilene()
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeCapacity(graph.NodeID(v), 2)
	}
	for l := 0; l < g.NumLinks(); l++ {
		g.SetLinkCapacity(l, 3)
	}
	a := NewAdapter(g, nil)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    a.ObsSize(),
		NumActions: a.NumActions(),
		Hidden:     []int{256, 256},
	})
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDistributed(a, agent.Actor)
	if err != nil {
		b.Fatal(err)
	}
	st := simnet.NewState(g, a.APSP())
	svc := &simnet.Service{Name: "bench", Chain: []*simnet.Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 100, ResourcePerRate: 0.6},
	}}
	f := &simnet.Flow{ID: 1, Service: svc, Egress: graph.NodeID(g.NumNodes() - 1),
		Rate: 1, Duration: 1, Deadline: 100}
	return d, st, f
}

// BenchmarkDistributedDecide measures the full per-decision hot path
// (observe + forward + act) in both decision modes — the quantity behind
// the paper's ~1 ms/decision claim (Fig. 9b). Both must report
// 0 allocs/op.
func BenchmarkDistributedDecide(b *testing.B) {
	for _, mode := range []struct {
		name       string
		stochastic bool
	}{{"stochastic", true}, {"argmax", false}} {
		b.Run(mode.name, func(b *testing.B) {
			d, st, f := benchDistributed(b)
			d.Stochastic = mode.stochastic
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Decide(st, f, 0, 1)
			}
		})
	}
}

// BenchmarkDistributedDecideBatch measures the batched decision path at
// several batch sizes, per decision (ns/decision comparable to
// BenchmarkDistributedDecide). Steady state must report 0 allocs/op.
func BenchmarkDistributedDecideBatch(b *testing.B) {
	for _, k := range []int{1, 4, 16, 64} {
		b.Run("batch="+strconv.Itoa(k), func(b *testing.B) {
			d, st, f := benchDistributed(b)
			flows := make([]*simnet.Flow, k)
			for i := range flows {
				fc := *f
				fc.ID = i + 1
				fc.Arrival = float64(i) * 0.001
				flows[i] = &fc
			}
			actions := make([]int, k)
			d.DecideBatch(st, flows, 0, 1, actions)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.DecideBatch(st, flows, 0, 1, actions)
			}
			b.StopTimer()
			perDecision := float64(b.Elapsed().Nanoseconds()) / float64(b.N*k)
			b.ReportMetric(perDecision, "ns/decision")
		})
	}
}

// BenchmarkObserveInto isolates the observation-build part of a
// decision.
func BenchmarkObserveInto(b *testing.B) {
	d, st, f := benchDistributed(b)
	a := d.adapter
	buf := make([]float64, 0, a.ObsSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = a.ObserveInto(buf, st, f, 0, 1)
	}
}
