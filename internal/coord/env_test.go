package coord

import (
	"math"
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// easyScenario returns a two-node scenario (0 -> 1) with ample capacity.
func easyScenario() EnvConfig {
	g := graph.New("pair")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 1)
	if err := g.AddLink(0, 1, 1); err != nil {
		panic(err)
	}
	g.SetNodeCapacity(0, 10)
	g.SetNodeCapacity(1, 10)
	g.SetLinkCapacity(0, 10)
	svc := &simnet.Service{Name: "one", Chain: []*simnet.Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 100, ResourcePerRate: 1},
	}}
	return EnvConfig{
		Graph:        g,
		Service:      svc,
		IngressNodes: []graph.NodeID{0},
		Egress:       1,
		Traffic:      traffic.PoissonSpec(10),
		Template:     simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 50},
		Horizon:      300,
	}
}

func TestEnvValidation(t *testing.T) {
	base := easyScenario()
	mutations := map[string]func(*EnvConfig){
		"nil graph":    func(c *EnvConfig) { c.Graph = nil },
		"nil service":  func(c *EnvConfig) { c.Service = nil },
		"no ingress":   func(c *EnvConfig) { c.IngressNodes = nil },
		"no traffic":   func(c *EnvConfig) { c.Traffic = traffic.Spec{} },
		"zero horizon": func(c *EnvConfig) { c.Horizon = 0 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := base
			mutate(&cfg)
			if _, err := NewEnv(cfg, 1); err == nil {
				t.Error("NewEnv accepted invalid config")
			}
		})
	}
}

func TestRolloutCollectsTrajectories(t *testing.T) {
	env, err := NewEnv(easyScenario(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	numActions := env.Adapter().NumActions()
	policy := rl.PolicyFunc(func(obs []float64) int { return rng.Intn(numActions) })

	trajs, score, err := env.Rollout(policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) == 0 {
		t.Fatal("no trajectories collected")
	}
	if score < 0 || score > 1 {
		t.Errorf("score = %f, want in [0,1]", score)
	}
	for ti, tr := range trajs {
		if len(tr.Steps) == 0 {
			t.Fatalf("trajectory %d is empty", ti)
		}
		for si, s := range tr.Steps {
			if len(s.Obs) != env.Adapter().ObsSize() {
				t.Fatalf("traj %d step %d obs size %d", ti, si, len(s.Obs))
			}
			if s.Action < 0 || s.Action >= numActions {
				t.Fatalf("traj %d step %d action %d out of range", ti, si, s.Action)
			}
		}
		// Terminal reward must include +10 or −10.
		last := tr.Steps[len(tr.Steps)-1].Reward
		if math.Abs(last) < 5 {
			t.Fatalf("traj %d terminal reward %f lacks the ±10 terminal signal", ti, last)
		}
	}
}

// TestRewardArithmetic scripts one flow through a known decision sequence
// and verifies the collected rewards match Sec. IV-B3 exactly.
func TestRewardArithmetic(t *testing.T) {
	cfg := easyScenario() // D_G = 1 (single link of delay 1), n_s = 1
	// Exactly one flow (arrival at t=2, horizon 3) so the scripted
	// policy's decisions map 1:1 onto one trajectory.
	cfg.Traffic = traffic.FixedSpec(2)
	cfg.Horizon = 3
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Per-decision script: process, keep, keep, forward.
	script := []int{0, 0, 0, 1}
	i := 0
	policy := rl.PolicyFunc(func(obs []float64) int {
		a := script[i%len(script)]
		i++
		return a
	})
	trajs, score, err := env.Rollout(policy)
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("score = %f, want 1 (all flows complete)", score)
	}
	if len(trajs) != 1 {
		t.Fatalf("trajectories = %d, want 1", len(trajs))
	}
	for _, tr := range trajs {
		if len(tr.Steps) != 4 {
			t.Fatalf("steps = %d, want 4", len(tr.Steps))
		}
		// Step 1 (process): +1/n_s = +1 (traverse credit lands on the
		// processing decision).
		if math.Abs(tr.Steps[0].Reward-1) > 1e-9 {
			t.Errorf("process step reward = %f, want +1", tr.Steps[0].Reward)
		}
		// Steps 2-3 (keep): −1/D_G = −1 each.
		for k := 1; k <= 2; k++ {
			if math.Abs(tr.Steps[k].Reward+1) > 1e-9 {
				t.Errorf("keep step %d reward = %f, want -1", k, tr.Steps[k].Reward)
			}
		}
		// Step 4 (forward + completion): −d_l/D_G + 10 = −1 + 10 = 9.
		if math.Abs(tr.Steps[3].Reward-9) > 1e-9 {
			t.Errorf("final step reward = %f, want 9", tr.Steps[3].Reward)
		}
	}
}

func TestDropPenaltyAttributed(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Always pick an invalid neighbor (node 0 and 1 both have degree 1;
	// action space is Δ+1 = 2, action 1 is valid... so use a scenario
	// where the agent forwards the unprocessed flow forever: 1 ↔ 0).
	// Simplest deterministic drop: keep choosing action 1 from both
	// nodes; the flow ping-pongs until its deadline expires.
	policy := rl.PolicyFunc(func(obs []float64) int { return 1 })
	trajs, score, err := env.Rollout(policy)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 {
		t.Fatalf("score = %f, want 0 (everything expires)", score)
	}
	for _, tr := range trajs {
		last := tr.Steps[len(tr.Steps)-1].Reward
		if last > -5 {
			t.Fatalf("terminal reward = %f, want ≤ -5 (drop penalty)", last)
		}
	}
}

func TestTrainOnTrivialScenarioBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	cfg := easyScenario()
	// Tighten the deadline so undirected behavior (keeps, ping-pong)
	// loses flows: random is clearly suboptimal here.
	cfg.Template.Deadline = 12
	res, err := Train(cfg, TrainOptions{
		Episodes:     40,
		ParallelEnvs: 2,
		Seeds:        2,
		Hidden:       []int{32},
		LR:           3e-3,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordntr, err := res.Deploy()
	if err != nil {
		t.Fatal(err)
	}

	evalScore := func(c simnet.Coordinator, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		sim, err := simnet.New(simnet.Config{
			Graph:       cfg.Graph,
			Service:     cfg.Service,
			Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: cfg.Traffic.New(rng)}},
			Egress:      cfg.Egress,
			Template:    cfg.Template,
			Horizon:     1000,
			Coordinator: c,
		})
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m.SuccessRatio()
	}

	drl := evalScore(coordntr, 99)
	rng := rand.New(rand.NewSource(3))
	random := evalScore(randomCoord{rng: rng, n: res.Adapter.NumActions()}, 99)
	if drl < random-0.03 {
		t.Errorf("trained DRL %.3f clearly worse than random %.3f", drl, random)
	}
	if drl < 0.85 {
		t.Errorf("trained DRL success ratio = %.3f, want ≥ 0.85 on a trivial scenario", drl)
	}
}

type randomCoord struct {
	rng *rand.Rand
	n   int
}

func (randomCoord) Name() string { return "random" }

func (c randomCoord) Decide(*simnet.State, *simnet.Flow, graph.NodeID, float64) int {
	return c.rng.Intn(c.n)
}

func TestDistributedValidation(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := rl.NewAgent(rl.AgentConfig{ObsSize: 99, NumActions: 2, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDistributed(env.Adapter(), agent.Actor); err == nil {
		t.Error("NewDistributed accepted mismatched actor input size")
	}
}

func TestDistributedDecidesPerNodeCopy(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize: a.ObsSize(), NumActions: a.NumActions(), Hidden: []int{8},
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDistributed(a, agent.Actor)
	if err != nil {
		t.Fatal(err)
	}
	d.Stochastic = false // compare argmax decisions across node copies
	st := simnet.NewState(cfg.Graph, a.APSP())
	f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}
	act := d.Decide(st, f, 0, 0)
	if act < 0 || act >= a.NumActions() {
		t.Errorf("action %d out of range", act)
	}
	// Same observation through DecideAt must agree (same weights copied).
	obs := a.Observe(st, f, 0, 0)
	if got := d.DecideAt(0, obs); got != act {
		t.Errorf("DecideAt = %d, Decide = %d", got, act)
	}
	if got := d.DecideAt(1, obs); got != act {
		t.Errorf("node 1 copy diverged: %d vs %d (copies must be identical)", got, act)
	}
}

// TestTrajectoriesCarryTerminalReward: every finished flow's trajectory
// ends with a step whose reward includes exactly one terminal ±10.
func TestTrajectoriesCarryTerminalReward(t *testing.T) {
	cfg := easyScenario()
	cfg.Horizon = 600
	env, err := NewEnv(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	n := env.Adapter().NumActions()
	policy := rl.PolicyFunc(func(obs []float64) int { return rng.Intn(n) })
	trajs, _, err := env.Rollout(policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) == 0 {
		t.Fatal("no trajectories")
	}
	for ti, tr := range trajs {
		// Shaping rewards are bounded well below 10 per step (traverse
		// <= 1, link/keep penalties < 1 each, and at most a handful per
		// step), so |terminal| >= 5 identifies the ±10 reliably — and it
		// must only appear on the final step.
		for si, s := range tr.Steps[:len(tr.Steps)-1] {
			if math.Abs(s.Reward) >= 5 {
				t.Fatalf("traj %d step %d: non-final step carries terminal-scale reward %f", ti, si, s.Reward)
			}
		}
		if last := tr.Steps[len(tr.Steps)-1].Reward; math.Abs(last) < 5 {
			t.Fatalf("traj %d: final reward %f lacks terminal signal", ti, last)
		}
	}
}

func TestDistributedReseedDeterminism(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{ObsSize: a.ObsSize(), NumActions: a.NumActions(), Hidden: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	run := func() (int, int) {
		d, err := NewDistributed(a, agent.Actor)
		if err != nil {
			t.Fatal(err)
		}
		d.Reseed(77)
		st := simnet.NewState(cfg.Graph, a.APSP())
		f := &simnet.Flow{ID: 1, Service: cfg.Service, Egress: 1, Rate: 1, Duration: 1, Deadline: 50}
		return d.Decide(st, f, 0, 0), d.Decide(st, f, 0, 1)
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Errorf("reseeded coordinators diverged: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

// TestEnvMultiServiceRollout: the training environment handles service
// mixes (per-flow chain lengths differ).
func TestEnvMultiServiceRollout(t *testing.T) {
	cfg := easyScenario()
	short := cfg.Service
	long := &simnet.Service{Name: "long", Chain: []*simnet.Component{
		{Name: "l1", ProcDelay: 2, IdleTimeout: 100, ResourcePerRate: 0.2},
		{Name: "l2", ProcDelay: 2, IdleTimeout: 100, ResourcePerRate: 0.2},
	}}
	cfg.Service = nil
	cfg.Services = []simnet.WeightedService{
		{Service: short, Weight: 1},
		{Service: long, Weight: 1},
	}
	env, err := NewEnv(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	n := env.Adapter().NumActions()
	trajs, score, err := env.Rollout(rl.PolicyFunc(func([]float64) int { return rng.Intn(n) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(trajs) == 0 || score < 0 || score > 1 {
		t.Fatalf("trajs=%d score=%f", len(trajs), score)
	}
}
