package coord

import (
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// starGraph: node 0 is the center with n leaves, unit delays, given caps.
func starGraph(leaves int, nodeCap, linkCap float64) *graph.Graph {
	g := graph.New("star")
	c := g.AddNode("center", 0, 0)
	g.SetNodeCapacity(c, nodeCap)
	for i := 0; i < leaves; i++ {
		v := g.AddNode("", 0, 0)
		g.SetNodeCapacity(v, nodeCap)
		if err := g.AddLink(c, v, 1); err != nil {
			panic(err)
		}
		g.SetLinkCapacity(i, linkCap)
	}
	return g
}

func testSvc() *simnet.Service {
	return &simnet.Service{Name: "s", Chain: []*simnet.Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 100, ResourcePerRate: 1},
		{Name: "c2", ProcDelay: 5, IdleTimeout: 100, ResourcePerRate: 1},
	}}
}

func newFlow(svc *simnet.Service, egress graph.NodeID) *simnet.Flow {
	return &simnet.Flow{
		ID:       1,
		Service:  svc,
		Ingress:  0,
		Egress:   egress,
		Rate:     1,
		Duration: 1,
		Deadline: 100,
		Arrival:  0,
	}
}

func TestAdapterSizes(t *testing.T) {
	g := starGraph(3, 2, 5) // Δ_G = 3
	a := NewAdapter(g, nil)
	if a.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", a.MaxDegree())
	}
	if a.ObsSize() != 16 {
		t.Errorf("ObsSize = %d, want 16 (= 4Δ+4)", a.ObsSize())
	}
	if a.NumActions() != 4 {
		t.Errorf("NumActions = %d, want 4 (= Δ+1)", a.NumActions())
	}
}

func TestObserveLayoutAndPadding(t *testing.T) {
	g := starGraph(3, 2, 5)
	a := NewAdapter(g, nil)
	st := simnet.NewState(g, a.APSP())
	svc := testSvc()
	f := newFlow(svc, 1)

	// Observe at leaf node 3: one real neighbor (the center), two dummies.
	obs := a.Observe(st, f, 3, 0)
	if len(obs) != a.ObsSize() {
		t.Fatalf("obs length = %d, want %d", len(obs), a.ObsSize())
	}
	// Layout: [p̂, τ̂ | R^L ×3 | R^V(self) R^V ×3 | D ×3 | X(self) X ×3].
	if obs[0] != 0 {
		t.Errorf("p̂ = %f, want 0 (fresh flow)", obs[0])
	}
	if obs[1] != 1 {
		t.Errorf("τ̂ = %f, want 1 (fresh flow)", obs[1])
	}
	// R^L: slot 0 real (free 5 − rate 1 = 4, normalized /5 = 0.8), slots
	// 1, 2 dummy (−1).
	if obs[2] != 0.8 {
		t.Errorf("R^L[0] = %f, want 0.8", obs[2])
	}
	if obs[3] != -1 || obs[4] != -1 {
		t.Errorf("R^L padding = %f,%f, want -1,-1", obs[3], obs[4])
	}
	// R^V: self (free 2 − demand 1 = 1, /2 = 0.5), neighbor center 0.5,
	// dummies −1.
	if obs[5] != 0.5 || obs[6] != 0.5 {
		t.Errorf("R^V self/neighbor = %f,%f, want 0.5,0.5", obs[5], obs[6])
	}
	if obs[7] != -1 || obs[8] != -1 {
		t.Errorf("R^V padding = %f,%f", obs[7], obs[8])
	}
	// D: via center to egress 1: link 1 + dist(center,1)=1 → 2 total;
	// (100−2)/100 = 0.98. Dummies −1.
	if obs[9] != 0.98 {
		t.Errorf("D[0] = %f, want 0.98", obs[9])
	}
	if obs[10] != -1 || obs[11] != -1 {
		t.Errorf("D padding = %f,%f", obs[10], obs[11])
	}
	// X: no instances anywhere: self 0, neighbor 0, dummies −1.
	if obs[12] != 0 || obs[13] != 0 {
		t.Errorf("X self/neighbor = %f,%f, want 0,0", obs[12], obs[13])
	}
	if obs[14] != -1 || obs[15] != -1 {
		t.Errorf("X padding = %f,%f", obs[14], obs[15])
	}
}

func TestObserveLinkFitSign(t *testing.T) {
	g := starGraph(2, 2, 1) // link capacity 1
	a := NewAdapter(g, nil)
	st := simnet.NewState(g, a.APSP())
	svc := testSvc()
	f := newFlow(svc, 2)
	// Fresh links: free 1 − rate 1 = 0 → observation exactly 0 (fits).
	obs := a.Observe(st, f, 0, 0)
	if obs[2] != 0 {
		t.Errorf("R^L for exactly-fitting link = %f, want 0", obs[2])
	}
	// Rate 2 cannot fit: negative.
	f.Rate = 2
	obs = a.Observe(st, f, 0, 0)
	if obs[2] >= 0 {
		t.Errorf("R^L for non-fitting flow = %f, want < 0", obs[2])
	}
}

func TestObserveInstanceAvailability(t *testing.T) {
	g := starGraph(2, 2, 5)
	a := NewAdapter(g, nil)
	st := simnet.NewState(g, a.APSP())
	svc := testSvc()
	f := newFlow(svc, 2)

	// A fully processed flow always reads X = 0 (Sec. IV-B1e).
	f.CompIdx = 2
	obs := a.Observe(st, f, 0, 0)
	// Layout for Δ=2: 2 + 2 + 3 + 2 + 3 = 12; X block is obs[9..11].
	if obs[9] != 0 {
		t.Errorf("X(self) for processed flow = %f, want 0", obs[9])
	}
	// Demand for processed flow is 0: R^V(self) = free/maxCap = 1.
	if obs[4] != 1 {
		t.Errorf("R^V(self) for processed flow = %f, want 1 (zero demand)", obs[4])
	}
}

func TestObserveDeadlineSlackNegative(t *testing.T) {
	g := starGraph(2, 2, 5)
	a := NewAdapter(g, nil)
	st := simnet.NewState(g, a.APSP())
	svc := testSvc()
	f := newFlow(svc, 2)
	f.Deadline = 3
	// At node 1 (leaf), egress node 2: path via center is 2 links = 2
	// delay. At now = 2 remaining is 1 < 2: slack negative but ≥ −1.
	obs := a.Observe(st, f, 1, 2)
	d := obs[7] // Δ=2 layout: D block at obs[7..8]
	if d >= 0 || d < -1 {
		t.Errorf("deadline slack = %f, want in [-1, 0)", d)
	}
}

// TestObservationsAlwaysInRange drives a full random simulation and
// asserts every observation component stays within [-1, 1].
func TestObservationsAlwaysInRange(t *testing.T) {
	g := starGraph(3, 2, 2)
	a := NewAdapter(g, nil)
	svc := testSvc()
	rng := rand.New(rand.NewSource(5))
	checker := rl0Coordinator{a: a, rng: rng, t: t}
	sim, err := simnet.New(simnet.Config{
		Graph:       g,
		APSP:        a.APSP(),
		Service:     svc,
		Ingresses:   []simnet.Ingress{{Node: 1, Arrivals: traffic.NewPoisson(3, rng)}},
		Egress:      2,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 40},
		Horizon:     2000,
		Coordinator: checker,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

// rl0Coordinator observes (asserting range) and acts randomly.
type rl0Coordinator struct {
	a   *Adapter
	rng *rand.Rand
	t   *testing.T
}

func (c rl0Coordinator) Name() string { return "range-checker" }

func (c rl0Coordinator) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	obs := c.a.Observe(st, f, v, now)
	if len(obs) != c.a.ObsSize() {
		c.t.Fatalf("obs size %d, want %d", len(obs), c.a.ObsSize())
	}
	for i, o := range obs {
		if o < -1-1e-9 || o > 1+1e-9 {
			c.t.Fatalf("obs[%d] = %f out of [-1,1] (flow %d at node %d, t=%f)", i, o, f.ID, v, now)
		}
	}
	return c.rng.Intn(c.a.NumActions())
}

func TestNormalizationAblation(t *testing.T) {
	g := starGraph(2, 10, 50)
	a := NewAdapter(g, nil)
	a.Normalize = false
	st := simnet.NewState(g, a.APSP())
	f := newFlow(testSvc(), 2)
	obs := a.Observe(st, f, 0, 0)
	// Unnormalized link observation: free 50 − 1 = 49, far outside [-1,1].
	if obs[2] != 49 {
		t.Errorf("unnormalized R^L = %f, want 49", obs[2])
	}
}

func TestRewardShaper(t *testing.T) {
	s := newShaper(DefaultRewards(), 10)
	if got := s.traverse(4); got != 0.25 {
		t.Errorf("traverse = %f, want 0.25 (= 1/n_s)", got)
	}
	if got := s.link(2); got != -0.2 {
		t.Errorf("link(2) = %f, want -0.2 (= -d_l/D_G)", got)
	}
	if got := s.keep(); got != -0.1 {
		t.Errorf("keep = %f, want -0.1 (= -1/D_G)", got)
	}
	off := newShaper(RewardConfig{Complete: 10, Drop: -10, Shaping: false}, 10)
	if off.traverse(4) != 0 || off.link(2) != 0 || off.keep() != 0 {
		t.Error("shaping ablation still produces shaped rewards")
	}
	// Degenerate parameters fall back to safe divisors.
	deg := newShaper(DefaultRewards(), 0)
	if deg.keep() != -1 || deg.traverse(0) != 1 {
		t.Errorf("degenerate shaper: keep=%f traverse=%f", deg.keep(), deg.traverse(0))
	}
}
