// Package coord implements the paper's core contribution (Sec. IV): the
// partially observable MDP for distributed service coordination — local
// observation vectors, the action semantics, and the shaped reward — plus
// the distributed DRL coordinator deployed at every node and the
// centralized-training environment that pools experience from all nodes
// into one actor-critic.
package coord

import (
	"math"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// Adapter converts between network state and the DRL agent's observation
// and action spaces (the observation/action adapters of Fig. 5). One
// adapter serves all nodes of a topology: spaces are sized by the network
// degree Δ_G, not by the node, so a single neural network can act for
// every node (Sec. IV-B1).
type Adapter struct {
	g          *graph.Graph
	apsp       *graph.APSP
	maxDeg     int
	maxNodeCap float64
	maxLinkCap []float64 // per node: max capacity over its outgoing links
	diameter   float64

	// Normalize toggles the [-1,1] observation normalization of
	// Sec. IV-B1. Disabling it is only useful for the ablation bench.
	Normalize bool
}

// NewAdapter builds the adapter for a capacity-assigned graph.
func NewAdapter(g *graph.Graph, apsp *graph.APSP) *Adapter {
	if apsp == nil {
		apsp = graph.NewAPSP(g)
	}
	a := &Adapter{
		g:          g,
		apsp:       apsp,
		maxDeg:     g.MaxDegree(),
		maxNodeCap: g.MaxNodeCapacity(),
		maxLinkCap: make([]float64, g.NumNodes()),
		diameter:   apsp.Diameter(),
		Normalize:  true,
	}
	for v := range a.maxLinkCap {
		a.maxLinkCap[v] = g.MaxLinkCapacityAt(graph.NodeID(v))
	}
	return a
}

// Graph returns the adapter's substrate network.
func (a *Adapter) Graph() *graph.Graph { return a.g }

// APSP returns the adapter's precomputed shortest paths.
func (a *Adapter) APSP() *graph.APSP { return a.apsp }

// MaxDegree returns Δ_G.
func (a *Adapter) MaxDegree() int { return a.maxDeg }

// Diameter returns D_G, the delay diameter normalizing link penalties.
func (a *Adapter) Diameter() float64 { return a.diameter }

// ObsSize returns the observation vector length:
// |F_f| + |R^L| + |R^V| + |D| + |X| = 2 + Δ + (Δ+1) + Δ + (Δ+1) = 4Δ+4.
func (a *Adapter) ObsSize() int { return 4*a.maxDeg + 4 }

// NumActions returns the action space size Δ_G + 1 (Sec. IV-B2).
func (a *Adapter) NumActions() int { return a.maxDeg + 1 }

// Observe builds the local observation 𝒪 = ⟨F_f, R_v^L, R_v^V, D_{v,f},
// X_v⟩ for flow f at node v (Sec. IV-B1). All components are normalized
// into [-1,1] and padded with −1 to Δ_G slots so every node produces
// equally sized vectors; dummy neighbors read −1. It allocates the
// returned vector; per-flow hot paths should reuse a buffer via
// ObserveInto.
func (a *Adapter) Observe(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) []float64 {
	return a.ObserveInto(make([]float64, 0, a.ObsSize()), st, f, v, now)
}

// ObserveInto builds the observation into buf[:0] and returns it. When
// cap(buf) >= ObsSize() it performs zero allocations; the result aliases
// buf and is only valid until the caller's next reuse.
//
// Under fault injection, dead neighbors — ones whose connecting link or
// whose node is down — read exactly like dummy padding slots (−1 in every
// block): the agent cannot distinguish a crashed neighbor from a
// non-existing one, which is precisely the local view a distributed node
// has after losing contact. Slack distances follow st.APSP(), the routing
// view recomputed on every topology change, not the adapter's
// construction-time snapshot.
func (a *Adapter) ObserveInto(buf []float64, st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) []float64 {
	obs := buf[:0]
	neighbors := a.g.Neighbors(v)
	remaining := f.Remaining(now)

	// F_f: chain progress p̂_f and normalized remaining deadline τ̂_f.
	obs = append(obs, clamp(f.Progress(), 0, 1))
	obs = append(obs, clamp(remaining/f.Deadline, 0, 1))

	// R_v^L: free outgoing link resources after subtracting λ_f,
	// normalized by the largest outgoing link capacity: ≥ 0 iff the link
	// can carry the flow.
	linkNorm := a.maxLinkCap[v]
	for i := 0; i < a.maxDeg; i++ {
		if i >= len(neighbors) || !st.LinkAlive(neighbors[i].Link) {
			obs = append(obs, -1)
			continue
		}
		free := st.FreeLink(neighbors[i].Link) - f.Rate
		obs = append(obs, a.norm(free, linkNorm))
	}

	// R_v^V: free compute at v and each neighbor after subtracting the
	// requested component's demand, normalized by the global maximum
	// node capacity (identifies high-absolute-capacity nodes). Zero
	// demand for fully processed flows.
	demand := 0.0
	if c := f.Current(); c != nil {
		demand = c.Resource(f.Rate)
	}
	obs = append(obs, a.norm(st.FreeNode(v)-demand, a.maxNodeCap))
	for i := 0; i < a.maxDeg; i++ {
		if i >= len(neighbors) || !st.LinkAlive(neighbors[i].Link) {
			obs = append(obs, -1)
			continue
		}
		obs = append(obs, a.norm(st.FreeNode(neighbors[i].Neighbor)-demand, a.maxNodeCap))
	}

	// D_{v,f}: per neighbor, the slack of reaching the egress via that
	// neighbor on a shortest path, relative to the remaining deadline.
	// Negative means forwarding that way cannot succeed anymore.
	apsp := st.APSP()
	for i := 0; i < a.maxDeg; i++ {
		if i >= len(neighbors) || !st.LinkAlive(neighbors[i].Link) {
			obs = append(obs, -1)
			continue
		}
		d := apsp.DistVia(v, neighbors[i], f.Egress)
		val := -1.0
		if remaining > 0 && !graph.Infinite(d) {
			val = math.Max(-1, (remaining-d)/remaining)
		}
		obs = append(obs, val)
	}

	// X_v: instance availability of the requested component at v and
	// each neighbor (always 0 once the flow is fully processed).
	comp := f.Current()
	obs = append(obs, boolObs(st.HasInstance(v, comp)))
	for i := 0; i < a.maxDeg; i++ {
		if i >= len(neighbors) || !st.LinkAlive(neighbors[i].Link) {
			obs = append(obs, -1)
			continue
		}
		obs = append(obs, boolObs(st.HasInstance(neighbors[i].Neighbor, comp)))
	}
	return obs
}

// norm normalizes a free-capacity value into [-1,1] (or passes it through
// when normalization is disabled for ablations).
func (a *Adapter) norm(val, by float64) float64 {
	if !a.Normalize {
		return val
	}
	if by <= 0 {
		return -1
	}
	return clamp(val/by, -1, 1)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func boolObs(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
