package coord

import (
	"fmt"

	"distcoord/internal/rl"
)

// TrainOptions scale the training procedure. Zero values pick defaults
// sized for commodity hardware; the paper's full settings are
// Seeds: 10, ParallelEnvs: 4 with substantially more episodes.
type TrainOptions struct {
	// Episodes per seed (update iterations). Default 60.
	Episodes int
	// ParallelEnvs is l in Alg. 1. Default 4.
	ParallelEnvs int
	// Seeds is k, the number of independently trained agents. Default 3.
	Seeds int
	// Hidden overrides the network architecture (default 2x256 per the
	// paper; tests use smaller nets).
	Hidden []int
	// LR overrides the learning rate (default 7e-4, see AgentConfig).
	LR float64
	// Seed is the base random seed.
	Seed int64
	// Progress, when non-nil, receives per-episode training updates.
	Progress func(seed, episode int, stats rl.UpdateStats, score float64)
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Episodes <= 0 {
		o.Episodes = 60
	}
	if o.ParallelEnvs <= 0 {
		o.ParallelEnvs = 4
	}
	if o.Seeds <= 0 {
		o.Seeds = 3
	}
	if o.LR == 0 {
		o.LR = 3e-3 // RMSprop-tuned default (see rl.AgentConfig)
	}
	return o
}

// TrainResult bundles the trained agent with everything needed to deploy
// it.
type TrainResult struct {
	Agent   *rl.Agent
	Adapter *Adapter
	Stats   rl.TrainResult
}

// Deploy returns the distributed coordinator with the trained policy
// copied to every node (Alg. 1 ln. 14).
func (r *TrainResult) Deploy() (*Distributed, error) {
	return NewDistributed(r.Adapter, r.Agent.Actor)
}

// Train runs the centralized training procedure of Alg. 1 on the given
// scenario: k seeds, each with l parallel environment copies, selecting
// the best agent by final success ratio.
func Train(envCfg EnvConfig, opts TrainOptions) (*TrainResult, error) {
	opts = opts.withDefaults()
	// Probe the scenario once to size the spaces and fail fast on
	// invalid configurations.
	probe, err := NewEnv(envCfg, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("coord: invalid training scenario: %w", err)
	}
	adapter := probe.Adapter()

	agent, stats, err := rl.Train(rl.TrainConfig{
		Agent: rl.AgentConfig{
			ObsSize:    adapter.ObsSize(),
			NumActions: adapter.NumActions(),
			Hidden:     opts.Hidden,
			LR:         opts.LR,
			Seed:       opts.Seed,
		},
		Episodes:     opts.Episodes,
		ParallelEnvs: opts.ParallelEnvs,
		Seeds:        opts.Seeds,
		LRDecay:      true,
		Progress:     opts.Progress,
		NewEnv: func(envSeed int64) (rl.Env, error) {
			return NewEnv(envCfg, envSeed)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("coord: training failed: %w", err)
	}
	return &TrainResult{Agent: agent, Adapter: adapter, Stats: stats}, nil
}
