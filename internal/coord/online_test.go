package coord

import (
	"math"
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newOnlineUnderTest(t *testing.T, cfg EnvConfig, ocfg OnlineConfig) (*Online, *Env) {
	t.Helper()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := env.Adapter()
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    a.ObsSize(),
		NumActions: a.NumActions(),
		Hidden:     []int{16},
		LR:         1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	online, err := NewOnline(a, agent, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	return online, env
}

func runOnline(t *testing.T, cfg EnvConfig, online *Online, seed int64) *simnet.Metrics {
	t.Helper()
	rngSpec := cfg.Traffic
	ingresses := make([]simnet.Ingress, len(cfg.IngressNodes))
	for i, v := range cfg.IngressNodes {
		ingresses[i] = simnet.Ingress{Node: v, Arrivals: rngSpec.New(newRand(seed + int64(i)))}
	}
	sim, err := simnet.New(simnet.Config{
		Graph:       cfg.Graph,
		Service:     cfg.Service,
		Ingresses:   ingresses,
		Egress:      cfg.Egress,
		Template:    cfg.Template,
		Horizon:     cfg.Horizon,
		Coordinator: online,
		// No explicit Listener: the simulator auto-attaches Online's
		// FlowObserver capability.
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOnlineRunsAndUpdates(t *testing.T) {
	cfg := easyScenario()
	cfg.Horizon = 2000
	online, _ := newOnlineUnderTest(t, cfg, OnlineConfig{SyncInterval: 200, MinSteps: 8})
	m := runOnline(t, cfg, online, 1)
	if m.Arrived == 0 {
		t.Fatal("no flows simulated")
	}
	if m.Pending() != 0 {
		t.Fatalf("%d flows unaccounted", m.Pending())
	}
	if online.Updates == 0 {
		t.Error("online training performed no local updates")
	}
	if online.Syncs == 0 {
		t.Error("online training performed no federated syncs")
	}
}

// TestOnlineWeightsSyncedAfterTick: after a federated averaging round,
// every node's actor weights must be identical.
func TestOnlineWeightsSyncedAfterTick(t *testing.T) {
	cfg := easyScenario()
	cfg.Horizon = 2000
	online, _ := newOnlineUnderTest(t, cfg, OnlineConfig{SyncInterval: 200, MinSteps: 4})
	runOnline(t, cfg, online, 2)
	if online.Syncs == 0 {
		t.Skip("no sync happened; nothing to verify")
	}
	// Force one more round so weights end synchronized even if local
	// updates happened after the last tick.
	online.average()
	ref := online.AgentAt(0).Actor.Params()
	for v := 1; v < cfg.Graph.NumNodes(); v++ {
		params := online.AgentAt(graph.NodeID(v)).Actor.Params()
		for b := range ref {
			for j := range ref[b] {
				if math.Abs(params[b][j]-ref[b][j]) > 1e-12 {
					t.Fatalf("node %d weights diverged from node 0 after averaging", v)
				}
			}
		}
	}
}

func TestOnlineResetClearsBuffers(t *testing.T) {
	cfg := easyScenario()
	cfg.Horizon = 500
	online, _ := newOnlineUnderTest(t, cfg, OnlineConfig{SyncInterval: 1e9, MinSteps: 1 << 30})
	runOnline(t, cfg, online, 3)
	nonEmpty := false
	for _, b := range online.buffers {
		nonEmpty = nonEmpty || len(b) > 0
	}
	if !nonEmpty {
		t.Fatal("expected buffered experience before reset")
	}
	online.Reset(nil)
	for v, b := range online.buffers {
		if len(b) != 0 {
			t.Errorf("node %d buffer not cleared", v)
		}
	}
}

func TestOnlineRejectsMismatchedAgent(t *testing.T) {
	cfg := easyScenario()
	env, err := NewEnv(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	agent, err := rl.NewAgent(rl.AgentConfig{ObsSize: 99, NumActions: 3, Hidden: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOnline(env.Adapter(), agent, OnlineConfig{}); err == nil {
		t.Error("NewOnline accepted mismatched agent")
	}
}

func TestAverageNetworks(t *testing.T) {
	a := [][]float64{{1, 2}, {3}}
	b := [][]float64{{3, 4}, {5}}
	averageNetworks([][][]float64{a, b})
	want := [][]float64{{2, 3}, {4}}
	for blk := range want {
		for j := range want[blk] {
			if a[blk][j] != want[blk][j] || b[blk][j] != want[blk][j] {
				t.Fatalf("average wrong: a=%v b=%v want %v", a, b, want)
			}
		}
	}
	averageNetworks(nil) // must not panic
}
