package simnet

import (
	"encoding/json"
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// rwCoord is a random-walk BatchDecider for equivalence testing: every
// decision is an independent draw from the deciding node's private
// stream, so a batched run consumes each per-node stream in exactly the
// order a sequential run would — any divergence between the two paths
// shows up as diverging metrics.
type rwCoord struct {
	rngs []*rand.Rand
}

func newRWCoord(n int, seed int64) *rwCoord {
	c := &rwCoord{rngs: make([]*rand.Rand, n)}
	for v := range c.rngs {
		c.rngs[v] = rand.New(rand.NewSource(seed + int64(v)*1000003))
	}
	return c
}

func (c *rwCoord) Name() string { return "test-randomwalk" }

func (c *rwCoord) Decide(st *State, f *Flow, v graph.NodeID, now float64) int {
	return c.rngs[v].Intn(len(st.Graph().Neighbors(v)) + 1)
}

func (c *rwCoord) DecideBatch(st *State, flows []*Flow, v graph.NodeID, now float64, actions []int) {
	for i, f := range flows {
		actions[i] = c.Decide(st, f, v, now)
	}
}

// scaleTestGraph returns a synthetic topology with uniform capacities.
func scaleTestGraph(n int, nodeCap, linkCap float64) *graph.Graph {
	g := graph.SyntheticScale(n, 0x5CA1E)
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeCapacity(graph.NodeID(v), nodeCap)
	}
	for l := 0; l < g.NumLinks(); l++ {
		g.SetLinkCapacity(l, linkCap)
	}
	return g
}

// batchTestConfig builds a multi-ingress scenario on a synthetic graph.
func batchTestConfig(arrivals func(int) ArrivalProcess, maxBatch int) Config {
	g := scaleTestGraph(30, 50, 50)
	ingresses := make([]Ingress, 4)
	for i := range ingresses {
		ingresses[i] = Ingress{Node: graph.NodeID(2 + 3*i), Arrivals: arrivals(i)}
	}
	return Config{
		Graph:       g,
		Service:     testService(2.5),
		Ingresses:   ingresses,
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 60},
		Horizon:     300,
		Coordinator: newRWCoord(g.NumNodes(), 7),
		MaxBatch:    maxBatch,
	}
}

// metricsJSON marshals metrics for byte-level comparison (the unexported
// quantile cache is excluded by encoding/json).
func metricsJSON(t *testing.T, m *Metrics) string {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal metrics: %v", err)
	}
	return string(b)
}

func runBatchScenario(t *testing.T, cfg Config) (*Metrics, BatchStats) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, s.BatchStats()
}

// TestBatchedMatchesSequentialPoisson pins the core equivalence: with
// continuous random arrivals (no same-time cohorts), a batched run must
// produce byte-identical metrics to the sequential path, because every
// gather window holds exactly one flow.
func TestBatchedMatchesSequentialPoisson(t *testing.T) {
	arrivals := func(seed int64) func(int) ArrivalProcess {
		return func(i int) ArrivalProcess {
			return traffic.NewPoisson(8, rand.New(rand.NewSource(seed+int64(i))))
		}
	}
	seq, seqStats := runBatchScenario(t, batchTestConfig(arrivals(41), 0))
	bat, batStats := runBatchScenario(t, batchTestConfig(arrivals(41), 16))
	if seq.Arrived == 0 || seq.Decisions == 0 {
		t.Fatalf("degenerate scenario: %+v", seq)
	}
	if a, b := metricsJSON(t, seq), metricsJSON(t, bat); a != b {
		t.Errorf("batched metrics diverged from sequential:\nseq: %s\nbat: %s", a, b)
	}
	if seqStats != (BatchStats{}) {
		t.Errorf("sequential run reported batch stats %+v", seqStats)
	}
	if batStats.Flows != seq.Decisions {
		t.Errorf("batched run routed %d flows through DecideBatch, want all %d decisions",
			batStats.Flows, seq.Decisions)
	}
}

// TestBatchedMatchesSequentialBurst checks equivalence when real
// multi-flow batches form: burst arrivals create same-(node, time)
// cohorts, and the per-node random streams still line up because
// DecideBatch resolves flows in window order.
func TestBatchedMatchesSequentialBurst(t *testing.T) {
	arrivals := func(int) ArrivalProcess { return &traffic.Burst{Interval: 25, K: 8} }
	seq, _ := runBatchScenario(t, batchTestConfig(arrivals, 0))
	bat, stats := runBatchScenario(t, batchTestConfig(arrivals, 16))
	if a, b := metricsJSON(t, seq), metricsJSON(t, bat); a != b {
		t.Errorf("batched metrics diverged from sequential:\nseq: %s\nbat: %s", a, b)
	}
	if stats.MaxSize < 2 {
		t.Errorf("burst traffic formed no multi-flow batch: %+v", stats)
	}
}

// TestMaxBatchCapsCallSize verifies flush-on-full: a 10-flow cohort with
// MaxBatch 4 must split into DecideBatch calls of at most 4 flows.
func TestMaxBatchCapsCallSize(t *testing.T) {
	arrivals := func(i int) ArrivalProcess {
		if i == 0 {
			return &traffic.Burst{Interval: 25, K: 10}
		}
		return traffic.Fixed{Interval: 1e9}
	}
	_, stats := runBatchScenario(t, batchTestConfig(arrivals, 4))
	if stats.MaxSize > 4 {
		t.Errorf("DecideBatch call of %d flows exceeds MaxBatch 4", stats.MaxSize)
	}
	if stats.MaxSize != 4 {
		t.Errorf("10-flow bursts with MaxBatch 4 should produce a full call, got max %d", stats.MaxSize)
	}
}

// TestMaxBatchOneStaysSequential pins that MaxBatch ≤ 1 never engages
// the batcher, even for a batch-capable coordinator.
func TestMaxBatchOneStaysSequential(t *testing.T) {
	for _, mb := range []int{0, 1} {
		arrivals := func(int) ArrivalProcess { return &traffic.Burst{Interval: 25, K: 8} }
		_, stats := runBatchScenario(t, batchTestConfig(arrivals, mb))
		if stats != (BatchStats{}) {
			t.Errorf("MaxBatch=%d engaged the batcher: %+v", mb, stats)
		}
	}
}

// TestBatchFallsBackWithoutCapability pins the silent sequential
// fallback for coordinators without DecideBatch.
func TestBatchFallsBackWithoutCapability(t *testing.T) {
	g := lineGraph(3, 10, 10)
	cfg := oneFlow(g, testService(5), 2, 100, spCoord{})
	cfg.Ingresses = []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}}
	cfg.Horizon = 11
	cfg.MaxTime = 0
	cfg.MaxBatch = 16
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.execs[0].batcher != nil {
		t.Fatal("batcher engaged for a coordinator without BatchDecider")
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestNegativeMaxBatchRejected pins config validation.
func TestNegativeMaxBatchRejected(t *testing.T) {
	cfg := oneFlow(lineGraph(2, 10, 10), testService(1), 1, 100, spCoord{})
	cfg.MaxBatch = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted negative MaxBatch")
	}
}

// TestBatchedWithFaultsMatchesSequential runs the burst scenario under a
// fault schedule: fault events end gather windows, and dead nodes drop
// flows in the pre-check phase, identically on both paths.
func TestBatchedWithFaultsMatchesSequential(t *testing.T) {
	arrivals := func(int) ArrivalProcess { return &traffic.Burst{Interval: 25, K: 8} }
	faults := []Fault{
		{Time: 60, Kind: FaultNodeDown, Node: 5},
		{Time: 120, Kind: FaultNodeUp, Node: 5},
		{Time: 90, Kind: FaultLinkDown, Link: 3},
		{Time: 150, Kind: FaultLinkUp, Link: 3},
	}
	mk := func(maxBatch int) Config {
		cfg := batchTestConfig(arrivals, maxBatch)
		cfg.Faults = faults
		return cfg
	}
	seq, _ := runBatchScenario(t, mk(0))
	bat, stats := runBatchScenario(t, mk(16))
	if a, b := metricsJSON(t, seq), metricsJSON(t, bat); a != b {
		t.Errorf("batched metrics diverged under faults:\nseq: %s\nbat: %s", a, b)
	}
	if stats.MaxSize < 2 {
		t.Errorf("burst traffic formed no multi-flow batch under faults: %+v", stats)
	}
}

// TestBatchWindowAccountingWithFaultAtWindowTimestamp is the window
// accounting regression of the sharding PR: faults landing exactly on a
// gather-window timestamp (burst cohorts arrive at t = 25, 50, 75, ...)
// must neither skew BatchStats invariants nor make the batched path
// diverge from the sequential one. A node-down at an ingress's own
// burst instant makes the same-time cohort precheck-drop without any
// decision (an empty window at that node), and a surge arrival at a
// window timestamp injects a sequentially decided flow between windows.
func TestBatchWindowAccountingWithFaultAtWindowTimestamp(t *testing.T) {
	arrivals := func(int) ArrivalProcess { return &traffic.Burst{Interval: 25, K: 8} }
	faults := []Fault{
		{Time: 50, Kind: FaultNodeDown, Node: 2}, // node 2 is the first ingress
		{Time: 75, Kind: FaultExtraArrival, Node: 5},
		{Time: 100, Kind: FaultNodeUp, Node: 2},
		{Time: 125, Kind: FaultInstanceKill, Node: 5},
	}
	mk := func(maxBatch int) Config {
		cfg := batchTestConfig(arrivals, maxBatch)
		cfg.Faults = faults
		return cfg
	}
	seq, _ := runBatchScenario(t, mk(0))
	bat, stats := runBatchScenario(t, mk(16))
	if a, b := metricsJSON(t, seq), metricsJSON(t, bat); a != b {
		t.Errorf("batched metrics diverged with faults at window timestamps:\nseq: %s\nbat: %s", a, b)
	}
	// Window accounting invariants: every counted window resolved at
	// least one flow through at least one call, no call exceeded the cap,
	// and only coordinator decisions flow through the batcher (the surge
	// flow's decisions are sequential, so Flows < Decisions).
	if stats.Windows == 0 || stats.MaxSize < 2 {
		t.Fatalf("degenerate batching: %+v", stats)
	}
	if stats.Calls < stats.Windows {
		t.Errorf("window accounting: %d windows but only %d calls", stats.Windows, stats.Calls)
	}
	if stats.Flows < stats.Calls {
		t.Errorf("window accounting: %d calls but only %d flows", stats.Calls, stats.Flows)
	}
	if stats.MaxSize > 16 {
		t.Errorf("DecideBatch call of %d flows exceeds MaxBatch 16", stats.MaxSize)
	}
	if stats.Flows >= bat.Decisions {
		t.Errorf("batcher claims %d flows but only %d decisions happened (surge flows decide sequentially)",
			stats.Flows, bat.Decisions)
	}
}
