// Package simnet is a flow-level discrete-event simulator for online
// service coordination, the Go equivalent of the paper's coord-sim
// substrate. It models the problem of Sec. III: services are chains of
// components; flows arrive at ingress nodes, must traverse an instance of
// every chain component in order, and then reach their egress node within
// their deadline. Nodes have compute capacities, links have propagation
// delays and shared data-rate capacities, and component instances are
// placed implicitly by processing decisions (scaling and placement follow
// from scheduling, Sec. IV-A).
//
// The simulator delegates every per-flow decision to a Coordinator: when
// a flow's head is at node v, the coordinator picks action 0 (process the
// currently requested component locally) or action a>0 (forward the flow
// to v's a-th neighbor). Everything the paper's approaches differ in
// lives behind that interface.
package simnet

import (
	"fmt"

	"distcoord/internal/graph"
)

// Component is one service chain component (a VNF, microservice, or ML
// function). Resource demand is affine in the flow data rate:
// r_c(λ) = ResourceBase + ResourcePerRate·λ (the paper's base scenario
// uses purely linear demand).
type Component struct {
	Name            string
	ProcDelay       float64 // d_c: processing delay added to a traversing flow
	StartupDelay    float64 // d_c^up: delay before a newly placed instance is ready
	IdleTimeout     float64 // δ_c: idle time after which an unused instance is removed
	ResourceBase    float64
	ResourcePerRate float64
}

// Resource returns r_c(λ), the node resources one flow of data rate λ
// consumes while being processed by this component.
func (c *Component) Resource(rate float64) float64 {
	return c.ResourceBase + c.ResourcePerRate*rate
}

// Service is an ordered chain of components that flows traverse in order.
type Service struct {
	Name  string
	Chain []*Component
}

// Len returns the chain length n_s.
func (s *Service) Len() int { return len(s.Chain) }

// Validate checks that the service is well formed.
func (s *Service) Validate() error {
	if len(s.Chain) == 0 {
		return fmt.Errorf("simnet: service %q has an empty chain", s.Name)
	}
	for i, c := range s.Chain {
		if c == nil {
			return fmt.Errorf("simnet: service %q chain[%d] is nil", s.Name, i)
		}
		if c.ProcDelay < 0 || c.StartupDelay < 0 || c.IdleTimeout < 0 {
			return fmt.Errorf("simnet: component %q has negative delay parameters", c.Name)
		}
	}
	return nil
}

// Flow is one user flow (request): a continuous stream with data rate λ_f
// and duration δ_f that must traverse all components of its service and
// reach its egress within Deadline of its arrival (fluid approximation,
// Sec. III-A).
type Flow struct {
	ID       int
	Service  *Service
	CompIdx  int // index of the currently requested component; == chain length means fully processed (c_f = ∅)
	Ingress  graph.NodeID
	Egress   graph.NodeID
	Rate     float64 // λ_f
	Duration float64 // δ_f
	Deadline float64 // τ_f, relative to Arrival
	Arrival  float64 // t_f^in

	// Hops counts link traversals so far (diagnostics).
	Hops int
	// Decisions counts coordinator queries for this flow (diagnostics).
	Decisions int

	done bool
}

// Processed reports whether the flow has traversed its full chain
// (c_f = ∅) and only needs routing to its egress.
func (f *Flow) Processed() bool { return f.CompIdx >= len(f.Service.Chain) }

// Current returns the currently requested component, or nil if the flow
// is fully processed.
func (f *Flow) Current() *Component {
	if f.Processed() {
		return nil
	}
	return f.Service.Chain[f.CompIdx]
}

// Remaining returns τ_f^t, the time left until the flow's deadline.
func (f *Flow) Remaining(now float64) float64 {
	return f.Deadline - (now - f.Arrival)
}

// Progress returns p̂_f ∈ [0,1], the fraction of the chain traversed.
func (f *Flow) Progress() float64 {
	return float64(f.CompIdx) / float64(len(f.Service.Chain))
}

// DropCause classifies why a flow was dropped.
type DropCause int

// Drop causes, mirroring the failure modes of Sec. III-B and IV-B2 plus
// the fault-injection failures of the chaos layer.
const (
	DropNone          DropCause = iota // flow was not dropped
	DropInvalidAction                  // action pointed to a non-existing neighbor
	DropNodeCapacity                   // processing would exceed cap_v
	DropLinkCapacity                   // forwarding would exceed cap_l
	DropExpired                        // deadline τ_f reached before completion
	DropNodeFailure                    // the node hosting or processing the flow crashed
	DropLinkFailure                    // the link carrying the flow's head went down
	DropInstanceKill                   // the component instance processing the flow was killed
)

// String implements fmt.Stringer.
func (d DropCause) String() string {
	switch d {
	case DropNone:
		return "none"
	case DropInvalidAction:
		return "invalid-action"
	case DropNodeCapacity:
		return "node-capacity"
	case DropLinkCapacity:
		return "link-capacity"
	case DropExpired:
		return "expired"
	case DropNodeFailure:
		return "node-failure"
	case DropLinkFailure:
		return "link-failure"
	case DropInstanceKill:
		return "instance-kill"
	}
	return fmt.Sprintf("DropCause(%d)", int(d))
}

// ActionKind classifies what an action did.
type ActionKind int

// Action outcomes delivered to Listeners.
const (
	ActionProcessed ActionKind = iota // processing at a local instance started
	ActionForwarded                   // flow sent over a link to a neighbor
	ActionKept                        // fully processed flow held for one time step
	ActionDropped                     // the action dropped the flow
)

// ActionResult describes the immediate effect of one coordinator action.
type ActionResult struct {
	Kind ActionKind
	Link int       // link index when Kind == ActionForwarded
	Drop DropCause // cause when Kind == ActionDropped
}

// Listener observes simulation events. The DRL trainer uses it to
// assemble reward signals; metrics collection uses it for accounting.
// All callbacks run synchronously inside the event loop.
type Listener interface {
	// OnAction reports a coordinator decision and its immediate effect.
	OnAction(f *Flow, v graph.NodeID, now float64, action int, res ActionResult)
	// OnTraversed reports that f finished processing at an instance at v
	// (the shaped +1/n_s reward point, Sec. IV-B3).
	OnTraversed(f *Flow, v graph.NodeID, now float64)
	// OnFlowEnd reports flow completion (success) or any drop.
	OnFlowEnd(f *Flow, success bool, cause DropCause, now float64)
}

// NopListener is a Listener that ignores all events. Embed it to
// implement only a subset of callbacks.
type NopListener struct{}

// OnAction implements Listener.
func (NopListener) OnAction(*Flow, graph.NodeID, float64, int, ActionResult) {}

// OnTraversed implements Listener.
func (NopListener) OnTraversed(*Flow, graph.NodeID, float64) {}

// OnFlowEnd implements Listener.
func (NopListener) OnFlowEnd(*Flow, bool, DropCause, float64) {}

// Coordinator makes the per-flow decision y_{f,c,v}(t): action 0 means
// "process locally at v" (placing an instance if needed, which also sets
// x_{c,v}(t) = 1), action a ∈ 1..Δ_G means "forward to v's a-th
// neighbor". Actions beyond v's neighbor count are invalid and drop the
// flow (Sec. IV-B2).
//
// Coordinator is deliberately minimal: everything beyond Name/Decide is
// an optional capability, discovered once by type assertion when the
// simulation is constructed (New). A coordinator implements only the
// capabilities it actually needs:
//
//   - FlowObserver: learn from action outcomes and flow terminations
//     (wired as a listener automatically — no manual Listener plumbing)
//   - Ticker: periodic rule updates from (delayed) monitoring data
//   - Resetter: per-run state that must clear between runs
//   - TopologyObserver: notifications when fault injection changes
//     node/link liveness
type Coordinator interface {
	// Name identifies the coordination algorithm in experiment output.
	Name() string
	// Decide is called whenever flow f's head is at node v at time now
	// and a decision is required. st offers read access to network state;
	// distributed coordinators must restrict themselves to v-local
	// information.
	Decide(st *State, f *Flow, v graph.NodeID, now float64) int
}

// FlowObserver is an optional Coordinator capability for algorithms that
// learn from simulation events (like the online DRL coordinator, which
// assembles rewards from them). A coordinator implementing it is
// attached as a Listener automatically at Sim construction; configuring
// it additionally as Config.Listener is harmless — it is deduplicated,
// never called twice per event.
type FlowObserver interface {
	Coordinator
	Listener
}

// Ticker is an optional Coordinator capability for algorithms that update
// internal rules periodically from (delayed) monitoring data, like the
// centralized approach of [10]. Tick is called every Interval time steps.
type Ticker interface {
	Interval() float64
	Tick(st *State, now float64)
}

// Resetter is an optional Coordinator capability for algorithms that carry
// per-run state; Reset is called once before each simulation run.
type Resetter interface {
	Reset(st *State)
}

// TopologyObserver is an optional Coordinator capability for algorithms
// that cache topology-derived data (routes, placement rules): it is
// notified after fault injection changes node or link liveness, with the
// state's routing view already recomputed. Capacity degradation does not
// notify — it changes no routes.
type TopologyObserver interface {
	OnTopologyChange(st *State, now float64)
}
