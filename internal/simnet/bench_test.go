package simnet

import (
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// benchEpisodeConfig is one short but non-trivial episode: Poisson
// arrivals on a 6-node line with moderate capacities, shortest-path
// coordination (no NN — the simulator itself is under test here).
func benchEpisodeConfig(seed int64) Config {
	g := lineGraph(6, 4, 6)
	return Config{
		Graph:       g,
		Service:     testService(2),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.NewPoisson(4, rand.New(rand.NewSource(seed)))}},
		Egress:      graph.NodeID(g.NumNodes() - 1),
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 60},
		Horizon:     200,
		Coordinator: spCoord{},
	}
}

// BenchmarkEpisode measures one full simulated episode end to end —
// flow generation, event loop, coordination callbacks, and metrics
// accounting — the inner loop of both training rollouts and evaluation.
func BenchmarkEpisode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := New(benchEpisodeConfig(int64(i) + 1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
