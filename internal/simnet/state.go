package simnet

import (
	"distcoord/internal/graph"
)

// capEps absorbs floating point drift in capacity ledgers.
const capEps = 1e-9

// Instance is a placed component instance at a node (x_{c,v} = 1).
type Instance struct {
	Comp *Component
	// ReadyAt is when the instance finishes starting up (d_c^up).
	ReadyAt float64
	// BusyUntil is the latest time any accepted flow still occupies the
	// instance; the idle timeout counts from here.
	BusyUntil float64
}

// State is the live network state during a simulation: capacity ledgers
// for nodes and links, node/link liveness under fault injection, the
// current routing view, and placed instances. Coordinators receive it
// read-only via its accessor methods; distributed algorithms must only
// inspect the current node and its direct neighbors.
type State struct {
	g    *graph.Graph
	apsp *graph.APSP // current routing view; re-derived on topology change

	usedNode  []float64
	usedLink  []float64
	nodeDown  []bool
	linkDown  []bool
	linkScale []float64              // capacity scaling under degradation; 1 = nominal
	topoEpoch int                    // bumped on every liveness change
	instances []map[string]*Instance // per node, keyed by component name
	now       float64
}

// NewState returns a fresh state for the given (capacity-assigned) graph.
// The APSP may be shared across runs on the same topology; it is the
// fault-free routing view, replaced by a masked recomputation whenever a
// node or link changes liveness.
func NewState(g *graph.Graph, apsp *graph.APSP) *State {
	st := &State{
		g:         g,
		apsp:      apsp,
		usedNode:  make([]float64, g.NumNodes()),
		usedLink:  make([]float64, g.NumLinks()),
		nodeDown:  make([]bool, g.NumNodes()),
		linkDown:  make([]bool, g.NumLinks()),
		linkScale: make([]float64, g.NumLinks()),
		instances: make([]map[string]*Instance, g.NumNodes()),
	}
	for i := range st.linkScale {
		st.linkScale[i] = 1
	}
	for i := range st.instances {
		st.instances[i] = make(map[string]*Instance)
	}
	return st
}

// Graph returns the substrate network.
func (st *State) Graph() *graph.Graph { return st.g }

// APSP returns the current routing view: the fault-free all-pairs
// shortest paths until the first topology change, then a recomputation
// over the surviving network. Coordinators reading distances through it
// automatically follow topology changes.
func (st *State) APSP() *graph.APSP { return st.apsp }

// NodeAlive reports whether node v is up.
func (st *State) NodeAlive(v graph.NodeID) bool { return !st.nodeDown[v] }

// LinkAlive reports whether link l and both its endpoints are up.
func (st *State) LinkAlive(l int) bool {
	if st.linkDown[l] {
		return false
	}
	lk := st.g.Link(l)
	return !st.nodeDown[lk.A] && !st.nodeDown[lk.B]
}

// TopoEpoch counts liveness changes; observers can use it to detect that
// cached topology-derived data is stale. It is 0 until the first fault.
func (st *State) TopoEpoch() int { return st.topoEpoch }

// NodeCapacity returns the effective compute capacity of v: cap_v, or 0
// while the node is down.
func (st *State) NodeCapacity(v graph.NodeID) float64 {
	if st.nodeDown[v] {
		return 0
	}
	return st.g.Node(v).Capacity
}

// LinkCapacity returns the effective data rate capacity of link l:
// cap_l scaled by any active degradation, or 0 while the link (or an
// endpoint) is down.
func (st *State) LinkCapacity(l int) float64 {
	if !st.LinkAlive(l) {
		return 0
	}
	return st.g.Link(l).Capacity * st.linkScale[l]
}

// setNodeAlive flips node liveness and re-derives routing.
func (st *State) setNodeAlive(v graph.NodeID, alive bool) {
	st.nodeDown[v] = !alive
	st.refreshRouting()
}

// setLinkAlive flips link liveness and re-derives routing.
func (st *State) setLinkAlive(l int, alive bool) {
	st.linkDown[l] = !alive
	st.refreshRouting()
}

// scaleLink sets the degradation factor of link l (1 restores nominal
// capacity). Flows already on the link keep flowing; admission uses the
// scaled capacity.
func (st *State) scaleLink(l int, factor float64) { st.linkScale[l] = factor }

// refreshRouting recomputes shortest paths over the currently live
// topology (one Dijkstra per node, only on liveness changes — fault
// events are rare next to flow events).
func (st *State) refreshRouting() {
	st.topoEpoch++
	st.apsp = graph.NewAPSPMasked(st.g, st.LinkAlive)
}

// clearInstances kills every placed instance at v (node crash).
func (st *State) clearInstances(v graph.NodeID) {
	st.instances[v] = make(map[string]*Instance)
}

// removeInstances kills v's instance of the named component, or all of
// v's instances when comp is empty.
func (st *State) removeInstances(v graph.NodeID, comp string) {
	if comp == "" {
		st.clearInstances(v)
		return
	}
	delete(st.instances[v], comp)
}

// Now returns the current simulation time.
func (st *State) Now() float64 { return st.now }

// UsedNode returns r_v(t), the compute resources currently in use at v.
func (st *State) UsedNode(v graph.NodeID) float64 { return st.usedNode[v] }

// FreeNode returns cap_v − r_v(t) over the effective capacity (0 while
// the node is down, so a dead node never reads as having headroom).
func (st *State) FreeNode(v graph.NodeID) float64 {
	return st.NodeCapacity(v) - st.usedNode[v]
}

// UsedLink returns r_l(t), the data rate currently allocated on link l
// (both directions share the capacity).
func (st *State) UsedLink(l int) float64 { return st.usedLink[l] }

// FreeLink returns cap_l − r_l(t) over the effective (possibly degraded)
// capacity.
func (st *State) FreeLink(l int) float64 {
	return st.LinkCapacity(l) - st.usedLink[l]
}

// Instance returns the instance of component comp placed at v, or nil.
func (st *State) Instance(v graph.NodeID, comp *Component) *Instance {
	if comp == nil {
		return nil
	}
	return st.instances[v][comp.Name]
}

// HasInstance reports x_{c,v}(t) for the flow's currently requested
// component; it is always false for fully processed flows.
func (st *State) HasInstance(v graph.NodeID, comp *Component) bool {
	return st.Instance(v, comp) != nil
}

// InstanceCount returns the number of distinct component instances placed
// at v (diagnostics).
func (st *State) InstanceCount(v graph.NodeID) int { return len(st.instances[v]) }

// TotalInstances returns the number of placed instances network-wide.
func (st *State) TotalInstances() int {
	n := 0
	for _, m := range st.instances {
		n += len(m)
	}
	return n
}

// nodeFits reports whether processing demand fits at v.
func (st *State) nodeFits(v graph.NodeID, demand float64) bool {
	return st.usedNode[v]+demand <= st.NodeCapacity(v)+capEps
}

// linkFits reports whether an additional rate fits on link l.
func (st *State) linkFits(l int, rate float64) bool {
	return st.usedLink[l]+rate <= st.LinkCapacity(l)+capEps
}

// allocNode reserves compute resources at v.
func (st *State) allocNode(v graph.NodeID, demand float64) { st.usedNode[v] += demand }

// releaseNode frees compute resources at v, clamping tiny negative drift.
func (st *State) releaseNode(v graph.NodeID, demand float64) {
	st.usedNode[v] -= demand
	if st.usedNode[v] < 0 {
		st.usedNode[v] = 0
	}
}

// allocLink reserves data rate on link l.
func (st *State) allocLink(l int, rate float64) { st.usedLink[l] += rate }

// releaseLink frees data rate on link l, clamping tiny negative drift.
func (st *State) releaseLink(l int, rate float64) {
	st.usedLink[l] -= rate
	if st.usedLink[l] < 0 {
		st.usedLink[l] = 0
	}
}

// placeInstance ensures an instance of comp exists at v, returning it and
// whether it was newly placed (scaling/placement derived from
// scheduling, Sec. IV-A).
func (st *State) placeInstance(v graph.NodeID, comp *Component, now float64) (inst *Instance, created bool) {
	if inst := st.instances[v][comp.Name]; inst != nil {
		return inst, false
	}
	inst = &Instance{Comp: comp, ReadyAt: now + comp.StartupDelay}
	st.instances[v][comp.Name] = inst
	return inst, true
}

// removeInstanceIfIdle removes v's instance of comp when it has been idle
// for its full idle timeout at time now. Returns whether it was removed.
func (st *State) removeInstanceIfIdle(v graph.NodeID, comp *Component, now float64) bool {
	inst := st.instances[v][comp.Name]
	if inst == nil {
		return false
	}
	if now+capEps >= inst.BusyUntil+comp.IdleTimeout {
		delete(st.instances[v], comp.Name)
		return true
	}
	return false
}
