package simnet

import (
	"distcoord/internal/graph"
)

// capEps absorbs floating point drift in capacity ledgers.
const capEps = 1e-9

// Instance is a placed component instance at a node (x_{c,v} = 1).
type Instance struct {
	Comp *Component
	// ReadyAt is when the instance finishes starting up (d_c^up).
	ReadyAt float64
	// BusyUntil is the latest time any accepted flow still occupies the
	// instance; the idle timeout counts from here.
	BusyUntil float64
}

// State is the live network state during a simulation: capacity ledgers
// for nodes and links plus placed instances. Coordinators receive it
// read-only via its accessor methods; distributed algorithms must only
// inspect the current node and its direct neighbors.
type State struct {
	g    *graph.Graph
	apsp *graph.APSP

	usedNode  []float64
	usedLink  []float64
	instances []map[string]*Instance // per node, keyed by component name
	now       float64
}

// NewState returns a fresh state for the given (capacity-assigned) graph.
// The APSP may be shared across runs on the same topology.
func NewState(g *graph.Graph, apsp *graph.APSP) *State {
	st := &State{
		g:         g,
		apsp:      apsp,
		usedNode:  make([]float64, g.NumNodes()),
		usedLink:  make([]float64, g.NumLinks()),
		instances: make([]map[string]*Instance, g.NumNodes()),
	}
	for i := range st.instances {
		st.instances[i] = make(map[string]*Instance)
	}
	return st
}

// Graph returns the substrate network.
func (st *State) Graph() *graph.Graph { return st.g }

// APSP returns the precomputed all-pairs shortest paths.
func (st *State) APSP() *graph.APSP { return st.apsp }

// Now returns the current simulation time.
func (st *State) Now() float64 { return st.now }

// UsedNode returns r_v(t), the compute resources currently in use at v.
func (st *State) UsedNode(v graph.NodeID) float64 { return st.usedNode[v] }

// FreeNode returns cap_v − r_v(t).
func (st *State) FreeNode(v graph.NodeID) float64 {
	return st.g.Node(v).Capacity - st.usedNode[v]
}

// UsedLink returns r_l(t), the data rate currently allocated on link l
// (both directions share the capacity).
func (st *State) UsedLink(l int) float64 { return st.usedLink[l] }

// FreeLink returns cap_l − r_l(t).
func (st *State) FreeLink(l int) float64 {
	return st.g.Link(l).Capacity - st.usedLink[l]
}

// Instance returns the instance of component comp placed at v, or nil.
func (st *State) Instance(v graph.NodeID, comp *Component) *Instance {
	if comp == nil {
		return nil
	}
	return st.instances[v][comp.Name]
}

// HasInstance reports x_{c,v}(t) for the flow's currently requested
// component; it is always false for fully processed flows.
func (st *State) HasInstance(v graph.NodeID, comp *Component) bool {
	return st.Instance(v, comp) != nil
}

// InstanceCount returns the number of distinct component instances placed
// at v (diagnostics).
func (st *State) InstanceCount(v graph.NodeID) int { return len(st.instances[v]) }

// TotalInstances returns the number of placed instances network-wide.
func (st *State) TotalInstances() int {
	n := 0
	for _, m := range st.instances {
		n += len(m)
	}
	return n
}

// nodeFits reports whether processing demand fits at v.
func (st *State) nodeFits(v graph.NodeID, demand float64) bool {
	return st.usedNode[v]+demand <= st.g.Node(v).Capacity+capEps
}

// linkFits reports whether an additional rate fits on link l.
func (st *State) linkFits(l int, rate float64) bool {
	return st.usedLink[l]+rate <= st.g.Link(l).Capacity+capEps
}

// allocNode reserves compute resources at v.
func (st *State) allocNode(v graph.NodeID, demand float64) { st.usedNode[v] += demand }

// releaseNode frees compute resources at v, clamping tiny negative drift.
func (st *State) releaseNode(v graph.NodeID, demand float64) {
	st.usedNode[v] -= demand
	if st.usedNode[v] < 0 {
		st.usedNode[v] = 0
	}
}

// allocLink reserves data rate on link l.
func (st *State) allocLink(l int, rate float64) { st.usedLink[l] += rate }

// releaseLink frees data rate on link l, clamping tiny negative drift.
func (st *State) releaseLink(l int, rate float64) {
	st.usedLink[l] -= rate
	if st.usedLink[l] < 0 {
		st.usedLink[l] = 0
	}
}

// placeInstance ensures an instance of comp exists at v, returning it and
// whether it was newly placed (scaling/placement derived from
// scheduling, Sec. IV-A).
func (st *State) placeInstance(v graph.NodeID, comp *Component, now float64) (inst *Instance, created bool) {
	if inst := st.instances[v][comp.Name]; inst != nil {
		return inst, false
	}
	inst = &Instance{Comp: comp, ReadyAt: now + comp.StartupDelay}
	st.instances[v][comp.Name] = inst
	return inst, true
}

// removeInstanceIfIdle removes v's instance of comp when it has been idle
// for its full idle timeout at time now. Returns whether it was removed.
func (st *State) removeInstanceIfIdle(v graph.NodeID, comp *Component, now float64) bool {
	inst := st.instances[v][comp.Name]
	if inst == nil {
		return false
	}
	if now+capEps >= inst.BusyUntil+comp.IdleTimeout {
		delete(st.instances[v], comp.Name)
		return true
	}
	return false
}
