package simnet

import (
	"fmt"
	"math"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// endCounter counts OnFlowEnd deliveries per flow ID.
type endCounter struct {
	NopListener
	ends map[int]int
}

func newEndCounter() *endCounter { return &endCounter{ends: map[int]int{}} }

func (c *endCounter) OnFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	c.ends[f.ID]++
}

// TestNodeDownDropsResidentAndRecovers crashes the node a flow is being
// processed at: the flow drops as a node failure, arrivals at the dead
// node drop on the spot, and after recovery flows succeed again.
func TestNodeDownDropsResidentAndRecovers(t *testing.T) {
	g := lineGraph(3, 10, 10)
	cfg := Config{
		Graph:       g,
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     41, // arrivals at t=10, 20, 30, 40
		Coordinator: spCoord{},
		Faults: []Fault{
			{Time: 12, Kind: FaultNodeDown, Node: 0},
			{Time: 25, Kind: FaultNodeUp, Node: 0},
		},
	}
	m := mustRun(t, cfg)
	if m.Arrived != 4 {
		t.Fatalf("arrived = %d, want 4", m.Arrived)
	}
	// t=10 is processing at node 0 when it crashes at t=12; t=20 arrives
	// at the dead node; t=30 and t=40 run on the recovered node.
	if m.Succeeded != 2 || m.Dropped != 2 {
		t.Errorf("succeeded=%d dropped=%d, want 2/2", m.Succeeded, m.Dropped)
	}
	if m.DropsBy[DropNodeFailure] != 2 {
		t.Errorf("DropsBy[node-failure] = %d, want 2", m.DropsBy[DropNodeFailure])
	}
	if m.Faults != 1 {
		t.Errorf("Faults = %d, want 1 (recovery is not disruptive)", m.Faults)
	}
}

// TestLinkDownDropsExactlyInFlight is the in-flight drop property: every
// flow whose head is in transit over the failed link at fault time is
// accounted for as exactly one link-failure drop — no misses, no double
// drops — across several fault times.
func TestLinkDownDropsExactlyInFlight(t *testing.T) {
	for _, faultAt := range []float64{5.5, 12.5, 17.5} {
		t.Run(fmt.Sprintf("t=%g", faultAt), func(t *testing.T) {
			// Node 0 cannot process, so every flow is forwarded over the
			// single link (delay 10) and processed at the egress. With one
			// arrival per time unit, the flows in transit at time τ are
			// exactly those that arrived in (τ-10, τ].
			g := lineGraph(2, 0, 100)
			g.SetNodeCapacity(1, 100)
			counter := newEndCounter()
			cfg := Config{
				Graph:       g,
				Service:     testService(5),
				Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 1}}},
				Egress:      1,
				Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
				Horizon:     30,
				Coordinator: spCoord{},
				Listener:    counter,
				Faults: []Fault{
					{Time: faultAt, Kind: FaultLinkDown, Link: 0},
					// Restore before the next integer arrival so no flow is
					// dropped trying to forward onto the dead link.
					{Time: faultAt + 0.2, Kind: FaultLinkUp, Link: 0},
				},
			}
			g.SetLinkDelay(0, 10)
			m := mustRun(t, cfg)

			inFlight := int(math.Floor(faultAt)) - int(math.Max(0, math.Floor(faultAt-10)))
			if got := m.DropsBy[DropLinkFailure]; got != inFlight {
				t.Errorf("DropsBy[link-failure] = %d, want %d in-flight flows", got, inFlight)
			}
			if m.Succeeded != m.Arrived-inFlight {
				t.Errorf("succeeded = %d, want %d (arrived %d minus %d in-flight)",
					m.Succeeded, m.Arrived-inFlight, m.Arrived, inFlight)
			}
			// Exactly one termination per flow: a drop must not end a flow
			// twice (or resurrect one the release events later touch).
			if len(counter.ends) != m.Arrived {
				t.Errorf("flows with an end event = %d, want %d", len(counter.ends), m.Arrived)
			}
			for id, n := range counter.ends {
				if n != 1 {
					t.Errorf("flow %d ended %d times", id, n)
				}
			}
		})
	}
}

// diamondGraph returns 0-1-2 (delay 1 each) plus the detour 0-3-2
// (delay 5 each), all capacities 10.
func diamondGraph() *graph.Graph {
	g := graph.New("diamond")
	for i := 0; i < 4; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), 10)
	}
	for _, l := range []struct {
		a, b  graph.NodeID
		delay float64
	}{{0, 1, 1}, {1, 2, 1}, {0, 3, 5}, {3, 2, 5}} {
		if err := g.AddLink(l.a, l.b, l.delay); err != nil {
			panic(err)
		}
	}
	for l := 0; l < g.NumLinks(); l++ {
		g.SetLinkCapacity(l, 10)
	}
	return g
}

// TestLinkDownReroutesViaRecomputedPaths fails the short path's first
// link mid-run: the shortest-path coordinator must pick up the
// recomputed routing view and deliver later flows over the detour.
func TestLinkDownReroutesViaRecomputedPaths(t *testing.T) {
	cfg := Config{
		Graph:       diamondGraph(),
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     21, // arrivals at t=10 and t=20
		Coordinator: spCoord{},
		// Link 0 (0-1) dies at t=22: the first flow has already traversed
		// it (processed 10-20, transit 20-22), the second is still being
		// processed and must detour via node 3.
		Faults: []Fault{{Time: 22, Kind: FaultLinkDown, Link: 0}},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 2 {
		t.Fatalf("succeeded = %d, want 2 (drops: %v)", m.Succeeded, m.DropsBy)
	}
	// Flow 1: 10 processing + 2 transit = 12. Flow 2: 10 + 10 detour = 20.
	if m.MaxDelay != 20 {
		t.Errorf("max delay = %g, want 20 (detour)", m.MaxDelay)
	}
	if avg := m.AvgDelay(); avg != 16 {
		t.Errorf("avg delay = %g, want 16 (one short-path, one detour)", avg)
	}
}

// capProbe is spCoord plus a capacity probe: it records the effective
// capacity of link 0 at every decision.
type capProbe struct {
	spCoord
	caps []float64
}

func (c *capProbe) Decide(st *State, f *Flow, v graph.NodeID, now float64) int {
	c.caps = append(c.caps, st.LinkCapacity(0))
	return c.spCoord.Decide(st, f, v, now)
}

// TestLinkDegradeScalesEffectiveCapacity checks that degradation scales
// the capacity coordinators observe and that recovery restores it.
func TestLinkDegradeScalesEffectiveCapacity(t *testing.T) {
	probe := &capProbe{}
	cfg := Config{
		Graph:       lineGraph(2, 10, 8),
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     31, // decisions around t=10, 20, 30
		Coordinator: probe,
		Faults: []Fault{
			{Time: 12, Kind: FaultLinkDegrade, Link: 0, Factor: 0.5},
			{Time: 25, Kind: FaultLinkUp, Link: 0},
		},
	}
	m := mustRun(t, cfg)
	if m.Faults != 1 {
		t.Errorf("Faults = %d, want 1", m.Faults)
	}
	if len(probe.caps) == 0 {
		t.Fatal("no decisions recorded")
	}
	if probe.caps[0] != 8 {
		t.Errorf("pre-fault capacity = %g, want 8", probe.caps[0])
	}
	if probe.caps[len(probe.caps)-1] != 8 {
		t.Errorf("post-recovery capacity = %g, want 8", probe.caps[len(probe.caps)-1])
	}
	degraded := false
	for _, c := range probe.caps {
		degraded = degraded || c == 4
	}
	if !degraded {
		t.Errorf("no decision observed the degraded capacity 4: %v", probe.caps)
	}
}

// TestExtraArrivalInjectsSurgeFlows checks surge injection: extra
// arrivals enter the normal flow lifecycle and are not counted as
// disruptive faults.
func TestExtraArrivalInjectsSurgeFlows(t *testing.T) {
	g := lineGraph(3, 10, 10)
	cfg := Config{
		Graph:       g,
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 50}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     51, // one regular arrival at t=50
		Coordinator: spCoord{},
		Faults: []Fault{
			{Time: 20, Kind: FaultExtraArrival, Node: 0},
			{Time: 21, Kind: FaultExtraArrival, Node: 0},
			{Time: 22, Kind: FaultExtraArrival, Node: 0},
		},
	}
	m := mustRun(t, cfg)
	if m.Arrived != 4 {
		t.Errorf("arrived = %d, want 4 (1 regular + 3 surge)", m.Arrived)
	}
	if m.Succeeded != 4 {
		t.Errorf("succeeded = %d, want 4 (drops: %v)", m.Succeeded, m.DropsBy)
	}
	if m.Faults != 0 {
		t.Errorf("Faults = %d, want 0 (extra arrivals are load, not damage)", m.Faults)
	}
}

// TestInstanceKillDropsProcessingFlows crashes the instances at a node:
// the flow being processed there drops, and the next flow re-places the
// instance and succeeds.
func TestInstanceKillDropsProcessingFlows(t *testing.T) {
	cfg := Config{
		Graph:       lineGraph(3, 10, 10),
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     21, // arrivals at t=10 and t=20
		Coordinator: spCoord{},
		Faults:      []Fault{{Time: 12, Kind: FaultInstanceKill, Node: 0}},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 1 || m.Dropped != 1 {
		t.Errorf("succeeded=%d dropped=%d, want 1/1", m.Succeeded, m.Dropped)
	}
	if m.DropsBy[DropInstanceKill] != 1 {
		t.Errorf("DropsBy[instance-kill] = %d, want 1", m.DropsBy[DropInstanceKill])
	}
	if m.Faults != 1 {
		t.Errorf("Faults = %d, want 1", m.Faults)
	}
}

// TestInstanceKillScopedToComponentSparesOthers kills only a component
// the flow is not currently being processed by: the flow survives.
func TestInstanceKillScopedToComponentSparesOthers(t *testing.T) {
	cfg := Config{
		Graph:       lineGraph(3, 10, 10),
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: spCoord{},
		// At t=12 the flow is in c1 (10-15); killing c2 must not touch it.
		Faults: []Fault{{Time: 12, Kind: FaultInstanceKill, Node: 0, Component: "c2"}},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 1 {
		t.Errorf("succeeded = %d, want 1 (drops: %v)", m.Succeeded, m.DropsBy)
	}
}

// obsCoord is a coordinator that is also a Listener (the FlowObserver
// capability) and counts its OnFlowEnd deliveries.
type obsCoord struct {
	spCoord
	NopListener
	ends int
}

func (c *obsCoord) OnFlowEnd(*Flow, bool, DropCause, float64) { c.ends++ }

// TestFlowObserverAutoWiredAndDeduplicated checks the capability
// discovery: a coordinator implementing Listener is attached
// automatically, and configuring it additionally as Config.Listener
// must not deliver events twice.
func TestFlowObserverAutoWiredAndDeduplicated(t *testing.T) {
	run := func(alsoListener bool) int {
		c := &obsCoord{}
		cfg := Config{
			Graph:       lineGraph(3, 10, 10),
			Service:     testService(5),
			Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
			Egress:      2,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     11,
			Coordinator: c,
		}
		if alsoListener {
			cfg.Listener = c
		}
		mustRun(t, cfg)
		return c.ends
	}
	if got := run(false); got != 1 {
		t.Errorf("auto-wired observer saw %d flow ends, want 1", got)
	}
	if got := run(true); got != 1 {
		t.Errorf("observer doubling as Config.Listener saw %d flow ends, want 1 (deduplicated)", got)
	}
}

// TestFaultScheduleReplaysByteIdentically runs the same faulted
// configuration twice and requires identical metrics.
func TestFaultScheduleReplaysByteIdentically(t *testing.T) {
	build := func() Config {
		return Config{
			Graph:       lineGraph(3, 10, 10),
			Service:     testService(5),
			Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 3}}},
			Egress:      2,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     100,
			Coordinator: spCoord{},
			Faults: []Fault{
				{Time: 20, Kind: FaultNodeDown, Node: 1},
				{Time: 30, Kind: FaultNodeUp, Node: 1},
				{Time: 40, Kind: FaultLinkDown, Link: 0},
				{Time: 50, Kind: FaultLinkUp, Link: 0},
				{Time: 60, Kind: FaultExtraArrival, Node: 0},
			},
		}
	}
	a, b := mustRun(t, build()), mustRun(t, build())
	if a.Arrived != b.Arrived || a.Succeeded != b.Succeeded || a.Dropped != b.Dropped ||
		a.SumDelay != b.SumDelay || a.Faults != b.Faults {
		t.Errorf("fault runs diverged: %+v vs %+v", a, b)
	}
}

// TestNewRejectsInvalidFaults pins schedule validation at construction.
func TestNewRejectsInvalidFaults(t *testing.T) {
	cases := map[string]Fault{
		"negative time":      {Time: -1, Kind: FaultNodeDown, Node: 0},
		"node out of range":  {Time: 1, Kind: FaultNodeDown, Node: 99},
		"link out of range":  {Time: 1, Kind: FaultLinkDown, Link: 99},
		"degrade factor > 1": {Time: 1, Kind: FaultLinkDegrade, Link: 0, Factor: 2},
		"unknown kind":       {Time: 1, Kind: FaultKind(42)},
	}
	for name, ft := range cases {
		cfg := oneFlow(lineGraph(3, 10, 10), testService(5), 2, 100, spCoord{})
		cfg.Faults = []Fault{ft}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted fault with %s", name)
		}
	}
}
