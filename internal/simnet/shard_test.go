package simnet

import (
	"math/rand"
	"sort"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// shardableSP is spCoord with the ForShard capability (stateless, so
// every shard shares it).
type shardableSP struct{ spCoord }

func (s shardableSP) ForShard(shard, shards int) Coordinator { return s }

// twoClusters builds two m-node line clusters joined by one bridge link
// (node m-1 ↔ node m) with the given delay: nodes 0..m-1 are cluster A,
// m..2m-1 cluster B, and every in-cluster link has unit delay.
func twoClusters(m int, nodeCap, linkCap, bridgeDelay float64) *graph.Graph {
	g := graph.New("two-clusters")
	for i := 0; i < 2*m; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), nodeCap)
	}
	link := func(a, b graph.NodeID, delay float64) {
		if err := g.AddLink(a, b, delay); err != nil {
			panic(err)
		}
		g.SetLinkCapacity(g.NumLinks()-1, linkCap)
	}
	for i := 0; i < m-1; i++ {
		link(graph.NodeID(i), graph.NodeID(i+1), 1)
		link(graph.NodeID(m+i), graph.NodeID(m+i+1), 1)
	}
	link(graph.NodeID(m-1), graph.NodeID(m), bridgeDelay)
	return g
}

// halfPartition assigns the first m of 2m nodes to shard 0, the rest to
// shard 1.
func halfPartition(m int) []int {
	part := make([]int, 2*m)
	for i := m; i < 2*m; i++ {
		part[i] = 1
	}
	return part
}

// TestEventQueueCollidingTimestampsPopInInsertionOrder is the heap
// tie-breaking regression: events at identical timestamps must pop in
// insertion order, independent of heap internals — shard handoff
// delivery relies on it for determinism. The ingress field doubles as
// the insertion index.
func TestEventQueueCollidingTimestampsPopInInsertionOrder(t *testing.T) {
	var q eventQueue
	// A deterministic pseudo-random time pattern with heavy collisions:
	// only 5 distinct timestamps across 1000 events.
	rng := rand.New(rand.NewSource(99))
	times := make([]float64, 1000)
	for i := range times {
		times[i] = float64(rng.Intn(5))
		q.push(event{t: times[i], ingress: i})
	}
	lastT, lastSeq := -1.0, -1
	for i := 0; q.Len() > 0; i++ {
		e := q.pop()
		if e.t < lastT {
			t.Fatalf("pop %d: time went backwards: %g after %g", i, e.t, lastT)
		}
		if e.t > lastT {
			lastT, lastSeq = e.t, -1
		}
		if e.ingress <= lastSeq {
			t.Fatalf("pop %d: insertion order violated at t=%g: index %d after %d", i, e.t, e.ingress, lastSeq)
		}
		if times[e.ingress] != e.t {
			t.Fatalf("pop %d: event %d corrupted: t=%g, pushed %g", i, e.ingress, e.t, times[e.ingress])
		}
		lastSeq = e.ingress
	}
}

// TestEventQueueTieBreakSurvivesInterleavedPops extends the regression
// to interleaved push/pop (the event loop's actual access pattern):
// same-time events pushed across different heap shapes must still pop in
// insertion order.
func TestEventQueueTieBreakSurvivesInterleavedPops(t *testing.T) {
	var q eventQueue
	next := 0
	push := func(tm float64) {
		q.push(event{t: tm, ingress: next})
		next++
	}
	var popped []event
	popOne := func() {
		if q.Len() > 0 {
			popped = append(popped, q.pop())
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if rng.Intn(3) == 0 {
			popOne()
		} else {
			// Times never decrease below the current minimum, as in a real
			// simulation run.
			base := 0.0
			if q.Len() > 0 {
				base = q.peek().t
			}
			push(base + float64(rng.Intn(3)))
		}
	}
	for q.Len() > 0 {
		popOne()
	}
	for i := 1; i < len(popped); i++ {
		a, b := popped[i-1], popped[i]
		if a.t == b.t && a.ingress > b.ingress {
			t.Fatalf("pop %d: same-time events out of insertion order: %d before %d at t=%g", i, a.ingress, b.ingress, a.t)
		}
	}
}

// TestShardedRequiresShardableCoordinator pins the upfront capability
// check: Shards > 1 with a plain Coordinator must fail at New, naming
// the coordinator.
func TestShardedRequiresShardableCoordinator(t *testing.T) {
	cfg := oneFlow(twoClusters(4, 10, 10, 2), testService(1), 3, 100, spCoord{})
	cfg.Shards = 2
	if _, err := New(cfg); err == nil {
		t.Fatal("Shards=2 with a non-shardable coordinator did not fail")
	}
}

// TestShardedRejectsSharedArrivalProcess pins the shard-safety check on
// traffic processes: one ArrivalProcess instance feeding ingresses on
// two different shards must be rejected (it would race).
func TestShardedRejectsSharedArrivalProcess(t *testing.T) {
	m := 4
	shared := traffic.NewPoisson(10, rand.New(rand.NewSource(1)))
	cfg := oneFlow(twoClusters(m, 10, 10, 2), testService(1), graph.NodeID(m-1), 100, shardableSP{})
	cfg.Ingresses = []Ingress{
		{Node: 0, Arrivals: shared},
		{Node: graph.NodeID(m), Arrivals: shared},
	}
	cfg.Shards = 2
	cfg.Partition = halfPartition(m)
	if _, err := New(cfg); err == nil {
		t.Fatal("shared ArrivalProcess across shards was not rejected")
	}
	// The same sharing within one shard is fine.
	cfg.Ingresses = []Ingress{
		{Node: 0, Arrivals: shared},
		{Node: 1, Arrivals: shared},
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("shared ArrivalProcess within one shard rejected: %v", err)
	}
}

// closedPartitionConfig builds a partition-closed workload on two
// clusters: each cluster has its own ingress/egress pair, so no flow
// ever crosses the bridge.
func closedPartitionConfig(m int, seed int64) Config {
	egA, egB := graph.NodeID(m-1), graph.NodeID(2*m-1)
	return Config{
		// Tight capacities and fast arrivals overload both clusters, so
		// the workload exercises successes AND drops.
		Graph:   twoClusters(m, 2, 2, 5),
		Service: testService(2),
		Ingresses: []Ingress{
			{Node: 0, Arrivals: traffic.NewPoisson(1.5, rand.New(rand.NewSource(seed))), Egress: &egA},
			{Node: graph.NodeID(m), Arrivals: traffic.NewPoisson(1.5, rand.New(rand.NewSource(seed+1))), Egress: &egB},
		},
		Egress:      egA,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 40},
		Horizon:     400,
		Coordinator: shardableSP{},
	}
}

// countersOf projects the merge-relevant counters of a metrics value.
func countersOf(m *Metrics) [8]int {
	return [8]int{m.Arrived, m.Succeeded, m.Dropped, m.Decisions, m.Forwards, m.Processings, m.Keeps, m.Faults}
}

// sortedDelaysOf returns the delay multiset in ascending order.
func sortedDelaysOf(m *Metrics) []float64 {
	d := append([]float64(nil), m.Delays...)
	sort.Float64s(d)
	return d
}

// TestShardedMatchesSequentialOnClosedPartition is the merge property
// test: on a partition-closed workload (each cluster self-contained, no
// cross-shard flow) the per-shard metrics must merge to exactly the
// single-shard totals — same counters, same drop causes, same delay
// multiset.
func TestShardedMatchesSequentialOnClosedPartition(t *testing.T) {
	const m = 5
	run := func(shards int) *Metrics {
		cfg := closedPartitionConfig(m, 12345)
		cfg.Shards = shards
		if shards > 1 {
			cfg.Partition = halfPartition(m)
		}
		return mustRun(t, cfg)
	}
	seq, sharded := run(1), run(2)
	if seq.Arrived == 0 || seq.Succeeded == 0 || seq.Dropped == 0 {
		t.Fatalf("degenerate scenario (want arrivals, successes, and drops): %+v", seq)
	}
	if countersOf(seq) != countersOf(sharded) {
		t.Errorf("counters diverged:\nseq:     %v\nsharded: %v", countersOf(seq), countersOf(sharded))
	}
	if len(seq.DropsBy) != len(sharded.DropsBy) {
		t.Errorf("drop causes diverged: %v vs %v", seq.DropsBy, sharded.DropsBy)
	}
	for c, n := range seq.DropsBy {
		if sharded.DropsBy[c] != n {
			t.Errorf("drops[%s]: seq %d, sharded %d", c, n, sharded.DropsBy[c])
		}
	}
	a, b := sortedDelaysOf(seq), sortedDelaysOf(sharded)
	if len(a) != len(b) {
		t.Fatalf("delay count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delay multiset diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

// crossShardConfig builds a workload where every flow must cross the
// bridge: both ingresses send to the far cluster's tail.
func crossShardConfig(m int, seed int64) Config {
	egB, egA := graph.NodeID(2*m-1), graph.NodeID(m-1)
	svcCheap := testService(2)
	svcSteep := &Service{
		Name: "steep",
		Chain: []*Component{
			{Name: "s1", ProcDelay: 4, IdleTimeout: 500, ResourcePerRate: 1.5},
		},
	}
	return Config{
		Graph: twoClusters(m, 3, 4, 5),
		// A two-service mix exercises the per-shard service RNG streams.
		Services: []WeightedService{
			{Service: svcCheap, Weight: 3},
			{Service: svcSteep, Weight: 1},
		},
		ServiceSeed: seed,
		Ingresses: []Ingress{
			{Node: 0, Arrivals: traffic.NewPoisson(5, rand.New(rand.NewSource(seed))), Egress: &egB},
			{Node: graph.NodeID(m), Arrivals: traffic.NewPoisson(5, rand.New(rand.NewSource(seed+1))), Egress: &egA},
		},
		Egress:      egB,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 120},
		Horizon:     300,
		Coordinator: shardableSP{},
	}
}

// TestShardedCrossShardTrafficCompletes checks the handoff machinery end
// to end: flows that must cross the partition complete (or drop) with
// exact accounting — Run's internal Pending check would fail otherwise —
// and the run reports actual handoffs.
func TestShardedCrossShardTrafficCompletes(t *testing.T) {
	cfg := crossShardConfig(5, 777)
	cfg.Shards = 2
	cfg.Partition = halfPartition(5)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Arrived == 0 || m.Succeeded == 0 {
		t.Fatalf("degenerate cross-shard scenario: %+v", m)
	}
	if s.Handoffs() == 0 {
		t.Fatal("cross-shard workload produced no handoffs")
	}
	if got := s.Lookahead(); got != 5 {
		t.Errorf("lookahead = %g, want the bridge delay 5", got)
	}
}

// TestShardedDeterministic pins the multi-shard determinism contract:
// identical (Config, Shards, Partition) runs produce byte-identical
// merged metrics — including the full delay list in merge order — and
// identical handoff counts.
func TestShardedDeterministic(t *testing.T) {
	run := func() (*Metrics, int) {
		cfg := crossShardConfig(5, 4242)
		cfg.Shards = 2
		cfg.Partition = halfPartition(5)
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		m, err := s.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m, s.Handoffs()
	}
	m1, h1 := run()
	m2, h2 := run()
	if a, b := metricsJSON(t, m1), metricsJSON(t, m2); a != b {
		t.Errorf("sharded run is not deterministic:\nrun1: %s\nrun2: %s", a, b)
	}
	if h1 != h2 {
		t.Errorf("handoff counts diverged: %d vs %d", h1, h2)
	}
}

// TestShardedFaultsCountedOnce pins the fault ownership split: every
// shard replicates liveness changes, but the Faults counter (and each
// flow drop) lands exactly once in the merged metrics.
func TestShardedFaultsCountedOnce(t *testing.T) {
	const m = 5
	bridge := 2 * (m - 1) // link index of the bridge (added last)
	cfg := crossShardConfig(m, 31)
	cfg.Shards = 2
	cfg.Partition = halfPartition(m)
	cfg.Faults = []Fault{
		{Time: 60, Kind: FaultNodeDown, Node: 2},
		{Time: 90, Kind: FaultLinkDown, Link: bridge},
		{Time: 130, Kind: FaultNodeUp, Node: 2},
		{Time: 150, Kind: FaultLinkUp, Link: bridge},
		{Time: 170, Kind: FaultExtraArrival, Node: 1},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mm, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Two disruptive faults (node-down, link-down); recoveries and the
	// surge arrival do not count. Double-counting across shards would
	// report 3+.
	if mm.Faults != 2 {
		t.Errorf("merged Faults = %d, want exactly 2", mm.Faults)
	}
	if mm.Pending() != 0 {
		t.Errorf("flow accounting leaked under sharded faults: pending %d", mm.Pending())
	}
}

// TestShardedTraceMergeOrdered checks the post-run trace merge: events
// from both shards arrive at the configured tracer in nondecreasing time
// order, and per-flow event counts are complete (every flow has an
// arrival and a terminal event).
func TestShardedTraceMergeOrdered(t *testing.T) {
	cfg := crossShardConfig(5, 99)
	cfg.Shards = 2
	cfg.Partition = halfPartition(5)
	var events []TraceEvent
	cfg.Tracer = TracerFunc(func(e TraceEvent) { events = append(events, e) })
	mm := mustRun(t, cfg)
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	arrivals, terminals := 0, 0
	for i, e := range events {
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatalf("trace out of order at %d: %g after %g", i, e.Time, events[i-1].Time)
		}
		switch e.Kind {
		case TraceArrival:
			arrivals++
		case TraceDrop, TraceComplete:
			terminals++
		}
	}
	if arrivals != mm.Arrived || terminals != mm.Arrived {
		t.Errorf("trace incomplete: %d arrivals, %d terminals, want %d each", arrivals, terminals, mm.Arrived)
	}
}

// TestShardedListenerSeesEveryFlowOnce checks that a shared
// Config.Listener observes exactly one termination per flow across shard
// goroutines (the lockedListener wrapper serializes delivery).
func TestShardedListenerSeesEveryFlowOnce(t *testing.T) {
	cfg := crossShardConfig(5, 55)
	cfg.Shards = 2
	cfg.Partition = halfPartition(5)
	ends := map[int]int{}
	cfg.Listener = &countingListener{ends: ends}
	mm := mustRun(t, cfg)
	if len(ends) != mm.Arrived {
		t.Fatalf("listener saw %d distinct flows end, want %d", len(ends), mm.Arrived)
	}
	for id, n := range ends {
		if n != 1 {
			t.Errorf("flow %d ended %d times", id, n)
		}
	}
}

// countingListener counts OnFlowEnd per flow ID.
type countingListener struct {
	NopListener
	ends map[int]int
}

func (c *countingListener) OnFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	c.ends[f.ID]++
}
