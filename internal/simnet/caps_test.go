package simnet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"

	"distcoord/internal/graph"
)

// TestCapsExhaustive pins the capability seam: every exported interface
// of this package documented as an "optional Coordinator capability"
// must appear as a field type of Caps, so a newly added capability
// cannot bypass the single resolver. The set of capability interfaces is
// discovered from the package source (the doc-comment convention every
// capability already follows), not hand-maintained here.
func TestCapsExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					if _, isIface := ts.Type.(*ast.InterfaceType); !isIface || !ts.Name.IsExported() {
						continue
					}
					doc := gd.Doc.Text()
					if ts.Doc != nil {
						doc = ts.Doc.Text()
					}
					if strings.Contains(doc, "optional Coordinator capability") {
						declared[ts.Name.Name] = true
					}
				}
			}
		}
	}
	if len(declared) < 4 {
		t.Fatalf("capability discovery broke: found only %v (doc-comment convention changed?)", declared)
	}

	covered := map[string]bool{}
	ct := reflect.TypeOf(Caps{})
	for i := 0; i < ct.NumField(); i++ {
		covered[ct.Field(i).Type.Name()] = true
	}
	for name := range declared {
		if !covered[name] {
			t.Errorf("capability interface %s is not a field of Caps; route it through the Capabilities resolver", name)
		}
	}
}

// capsProbe implements every capability; capsNone implements none.
type capsProbe struct {
	NopListener
}

func (capsProbe) Name() string                                              { return "probe" }
func (capsProbe) Decide(*State, *Flow, graph.NodeID, float64) int           { return 0 }
func (capsProbe) Interval() float64                                         { return 1 }
func (capsProbe) Tick(*State, float64)                                      {}
func (capsProbe) Reset(*State)                                              {}
func (capsProbe) OnTopologyChange(*State, float64)                          {}
func (capsProbe) DecideBatch(*State, []*Flow, graph.NodeID, float64, []int) {}
func (c capsProbe) ForShard(shard, shards int) Coordinator                  { return c }
func (capsProbe) LastDecideTiming() (DecideTiming, bool)                    { return DecideTiming{}, false }

type capsNone struct{}

func (capsNone) Name() string                                    { return "none" }
func (capsNone) Decide(*State, *Flow, graph.NodeID, float64) int { return 0 }

// capsDeclared self-reports an explicit capability set (the
// wire-negotiated path a networked coordinator takes).
type capsDeclared struct {
	capsNone
	caps Caps
}

func (c capsDeclared) Capabilities() Caps { return c.caps }

func TestCapabilitiesResolution(t *testing.T) {
	all := Capabilities(capsProbe{})
	if all.Flow == nil || all.Ticker == nil || all.Resetter == nil || all.Topology == nil || all.Batch == nil || all.Shard == nil || all.Timing == nil {
		t.Fatalf("full-capability coordinator resolved to %+v", all)
	}
	none := Capabilities(capsNone{})
	if none != (Caps{}) {
		t.Fatalf("capability-free coordinator resolved to %+v", none)
	}
}

func TestCapabilitiesPrefersProvider(t *testing.T) {
	// A provider's self-report wins over type assertions: capsDeclared
	// embeds no capabilities, but declares a Batch handle.
	var bd BatchDecider = capsProbe{}
	got := Capabilities(capsDeclared{caps: Caps{Batch: bd}})
	if got.Batch == nil {
		t.Fatal("declared Batch capability was dropped")
	}
	if got.Ticker != nil || got.Flow != nil {
		t.Fatalf("provider self-report should be authoritative, got %+v", got)
	}
	// And an empty self-report suppresses everything, even if the dynamic
	// type would assert true.
	if got := Capabilities(capsDeclared{}); got != (Caps{}) {
		t.Fatalf("empty self-report resolved to %+v", got)
	}
}
