package simnet

import (
	"fmt"

	"distcoord/internal/graph"
)

// FaultKind discriminates scheduled perturbation events. Fault schedules
// are built ahead of a run (typically by internal/chaos, seed-derived and
// reproducible) and applied by the simulator's event loop, so identical
// configurations replay identically.
type FaultKind int

// Fault kinds. Down/kill/surge events are disruptive; Up events are the
// matching recoveries.
const (
	FaultNodeDown     FaultKind = iota // node crashes: capacity → 0, instances killed, flows at the node dropped
	FaultNodeUp                        // node recovers (instances must restart, paying their startup delay)
	FaultLinkDown                      // link fails: flows in transit are dropped, routing recomputed
	FaultLinkUp                        // link recovers at full capacity
	FaultLinkDegrade                   // link capacity is scaled by Factor (routing unchanged)
	FaultInstanceKill                  // component instances at a node crash; flows being processed there drop
	FaultExtraArrival                  // one additional flow arrives at Node (traffic surge bursts)
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNodeDown:
		return "node-down"
	case FaultNodeUp:
		return "node-up"
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultLinkDegrade:
		return "link-degrade"
	case FaultInstanceKill:
		return "instance-kill"
	case FaultExtraArrival:
		return "extra-arrival"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Disruptive reports whether the event perturbs the network (as opposed
// to recovering it); recovery analysis keys on disruptive events.
func (k FaultKind) Disruptive() bool {
	switch k {
	case FaultNodeDown, FaultLinkDown, FaultLinkDegrade, FaultInstanceKill:
		return true
	}
	return false
}

// Fault is one scheduled perturbation. Which fields apply depends on
// Kind: Node for node events, extra arrivals, and instance kills; Link
// for link events; Factor for degradation; Component for instance kills
// (empty: every instance at the node).
type Fault struct {
	Time      float64
	Kind      FaultKind
	Node      graph.NodeID
	Link      int
	Factor    float64
	Component string
}

// validateFaults range-checks a fault schedule against the graph.
func validateFaults(g *graph.Graph, faults []Fault) error {
	for i, ft := range faults {
		if ft.Time < 0 {
			return fmt.Errorf("simnet: fault[%d] has negative time %f", i, ft.Time)
		}
		switch ft.Kind {
		case FaultNodeDown, FaultNodeUp, FaultInstanceKill, FaultExtraArrival:
			if int(ft.Node) < 0 || int(ft.Node) >= g.NumNodes() {
				return fmt.Errorf("simnet: fault[%d] node %d out of range", i, ft.Node)
			}
		case FaultLinkDown, FaultLinkUp:
			if ft.Link < 0 || ft.Link >= g.NumLinks() {
				return fmt.Errorf("simnet: fault[%d] link %d out of range", i, ft.Link)
			}
		case FaultLinkDegrade:
			if ft.Link < 0 || ft.Link >= g.NumLinks() {
				return fmt.Errorf("simnet: fault[%d] link %d out of range", i, ft.Link)
			}
			if ft.Factor < 0 || ft.Factor > 1 {
				return fmt.Errorf("simnet: fault[%d] degrade factor %f outside [0,1]", i, ft.Factor)
			}
		default:
			return fmt.Errorf("simnet: fault[%d] has unknown kind %d", i, int(ft.Kind))
		}
	}
	return nil
}

// applyFault mutates network state for one scheduled perturbation and
// performs the flow-level consequences (dropping flows that the fault
// kills). Recoveries and no-op repeats (downing a dead node) are applied
// idempotently.
func (s *Sim) applyFault(ft Fault, now float64) {
	switch ft.Kind {
	case FaultNodeDown:
		if !s.st.NodeAlive(ft.Node) {
			return
		}
		s.st.setNodeAlive(ft.Node, false)
		s.st.clearInstances(ft.Node)
		s.dropResidentAt(ft.Node, now)
		s.metrics.Faults++
		s.notifyTopology(now)
	case FaultNodeUp:
		if s.st.NodeAlive(ft.Node) {
			return
		}
		s.st.setNodeAlive(ft.Node, true)
		s.notifyTopology(now)
	case FaultLinkDown:
		if !s.st.LinkAlive(ft.Link) {
			return
		}
		s.st.setLinkAlive(ft.Link, false)
		s.dropInFlight(ft.Link, now)
		s.metrics.Faults++
		s.notifyTopology(now)
	case FaultLinkUp:
		s.st.scaleLink(ft.Link, 1)
		if s.st.LinkAlive(ft.Link) {
			return
		}
		s.st.setLinkAlive(ft.Link, true)
		s.notifyTopology(now)
	case FaultLinkDegrade:
		s.st.scaleLink(ft.Link, ft.Factor)
		s.metrics.Faults++
	case FaultInstanceKill:
		s.killInstances(ft.Node, ft.Component, now)
		s.metrics.Faults++
	case FaultExtraArrival:
		s.injectFlow(ft.Node, now)
	}
}

// notifyTopology tells a topology-observing coordinator that liveness
// changed; the state's routing view is already recomputed at this point.
func (s *Sim) notifyTopology(now float64) {
	if s.topoObs != nil {
		s.topoObs.OnTopologyChange(s.st, now)
	}
}

// dropResidentAt drops every flow physically at a crashed node: flows
// being processed there (pending evProcDone) and fully processed flows
// kept there. Flows still in transit toward the node are NOT dropped
// here — they fail on arrival if the node is still down, and survive if
// it recovered first.
func (s *Sim) dropResidentAt(v graph.NodeID, now float64) {
	for _, f := range s.collectVictims(func(e *event) bool {
		switch e.kind {
		case evProcDone:
			return e.node == v
		case evHeadArrive:
			return e.node == v && e.link < 0 // kept at v, not in transit
		}
		return false
	}) {
		s.drop(f, v, DropNodeFailure, now)
	}
}

// dropInFlight drops every flow whose head is currently propagating over
// the failed link. Each such flow has exactly one pending evHeadArrive
// tagged with the link, so it is accounted for as exactly one drop.
func (s *Sim) dropInFlight(l int, now float64) {
	link := s.cfg.Graph.Link(l)
	for _, f := range s.collectVictims(func(e *event) bool {
		return e.kind == evHeadArrive && e.link == l
	}) {
		s.drop(f, link.A, DropLinkFailure, now)
	}
}

// killInstances removes component instances at v (comp "" means all) and
// drops the flows currently being processed on them.
func (s *Sim) killInstances(v graph.NodeID, comp string, now float64) {
	for _, f := range s.collectVictims(func(e *event) bool {
		if e.kind != evProcDone || e.node != v {
			return false
		}
		cur := e.flow.Current()
		return comp == "" || (cur != nil && cur.Name == comp)
	}) {
		s.drop(f, v, DropInstanceKill, now)
	}
	s.st.removeInstances(v, comp)
}

// collectVictims returns the distinct, still-live flows of pending
// events matching the predicate. Collection is separated from dropping
// because drop notifies listeners, which must not observe a
// half-scanned queue.
func (s *Sim) collectVictims(match func(*event) bool) []*Flow {
	var victims []*Flow
	seen := map[int]bool{}
	for i := range s.queue.items {
		e := &s.queue.items[i]
		if e.flow == nil || e.flow.done || seen[e.flow.ID] {
			continue
		}
		if match(e) {
			victims = append(victims, e.flow)
			seen[e.flow.ID] = true
		}
	}
	return victims
}

// injectFlow generates one surge flow at node v (the fault-schedule
// analogue of generateFlow, without scheduling a follow-up arrival).
func (s *Sim) injectFlow(v graph.NodeID, now float64) {
	fl := &Flow{
		ID:       s.nextID,
		Service:  s.pickService(),
		Ingress:  v,
		Egress:   s.cfg.Egress,
		Rate:     s.cfg.Template.Rate,
		Duration: s.cfg.Template.Duration,
		Deadline: s.cfg.Template.Deadline,
		Arrival:  now,
	}
	s.nextID++
	s.metrics.Arrived++
	s.trace(TraceArrival, fl, v, now, -1, -1, DropNone)
	s.handleFlowAt(fl, v, now)
}
