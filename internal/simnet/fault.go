package simnet

import (
	"fmt"

	"distcoord/internal/graph"
)

// FaultKind discriminates scheduled perturbation events. Fault schedules
// are built ahead of a run (typically by internal/chaos, seed-derived and
// reproducible) and applied by the simulator's event loop, so identical
// configurations replay identically.
type FaultKind int

// Fault kinds. Down/kill/surge events are disruptive; Up events are the
// matching recoveries.
const (
	FaultNodeDown     FaultKind = iota // node crashes: capacity → 0, instances killed, flows at the node dropped
	FaultNodeUp                        // node recovers (instances must restart, paying their startup delay)
	FaultLinkDown                      // link fails: flows in transit are dropped, routing recomputed
	FaultLinkUp                        // link recovers at full capacity
	FaultLinkDegrade                   // link capacity is scaled by Factor (routing unchanged)
	FaultInstanceKill                  // component instances at a node crash; flows being processed there drop
	FaultExtraArrival                  // one additional flow arrives at Node (traffic surge bursts)
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNodeDown:
		return "node-down"
	case FaultNodeUp:
		return "node-up"
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultLinkDegrade:
		return "link-degrade"
	case FaultInstanceKill:
		return "instance-kill"
	case FaultExtraArrival:
		return "extra-arrival"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Disruptive reports whether the event perturbs the network (as opposed
// to recovering it); recovery analysis keys on disruptive events.
func (k FaultKind) Disruptive() bool {
	switch k {
	case FaultNodeDown, FaultLinkDown, FaultLinkDegrade, FaultInstanceKill:
		return true
	}
	return false
}

// Fault is one scheduled perturbation. Which fields apply depends on
// Kind: Node for node events, extra arrivals, and instance kills; Link
// for link events; Factor for degradation; Component for instance kills
// (empty: every instance at the node).
type Fault struct {
	Time      float64
	Kind      FaultKind
	Node      graph.NodeID
	Link      int
	Factor    float64
	Component string
}

// validateFaults range-checks a fault schedule against the graph.
func validateFaults(g *graph.Graph, faults []Fault) error {
	for i, ft := range faults {
		if ft.Time < 0 {
			return fmt.Errorf("simnet: fault[%d] has negative time %f", i, ft.Time)
		}
		switch ft.Kind {
		case FaultNodeDown, FaultNodeUp, FaultInstanceKill, FaultExtraArrival:
			if int(ft.Node) < 0 || int(ft.Node) >= g.NumNodes() {
				return fmt.Errorf("simnet: fault[%d] node %d out of range", i, ft.Node)
			}
		case FaultLinkDown, FaultLinkUp:
			if ft.Link < 0 || ft.Link >= g.NumLinks() {
				return fmt.Errorf("simnet: fault[%d] link %d out of range", i, ft.Link)
			}
		case FaultLinkDegrade:
			if ft.Link < 0 || ft.Link >= g.NumLinks() {
				return fmt.Errorf("simnet: fault[%d] link %d out of range", i, ft.Link)
			}
			if ft.Factor < 0 || ft.Factor > 1 {
				return fmt.Errorf("simnet: fault[%d] degrade factor %f outside [0,1]", i, ft.Factor)
			}
		default:
			return fmt.Errorf("simnet: fault[%d] has unknown kind %d", i, int(ft.Kind))
		}
	}
	return nil
}

// applyFault mutates network state for one scheduled perturbation and
// performs the flow-level consequences (dropping flows that the fault
// kills). Recoveries and no-op repeats (downing a dead node) are applied
// idempotently.
//
// In sharded runs every exec applies every fault, so liveness, capacity
// scaling, and routing views stay consistent across shards — but the
// side effects that must happen exactly once per fault (the Faults
// counter, surge-flow injection) run only on the fault's owning shard.
// Flow drops self-own: a flow's pending events live in exactly one
// shard's queue or outbox, so the scan-and-drop helpers fire exactly
// once per victim regardless of which shards run them.
func (x *exec) applyFault(ft Fault, now float64) {
	owner := x.ownsFault(ft)
	switch ft.Kind {
	case FaultNodeDown:
		if !x.st.NodeAlive(ft.Node) {
			return
		}
		x.st.setNodeAlive(ft.Node, false)
		x.st.clearInstances(ft.Node)
		x.dropResidentAt(ft.Node, now)
		if owner {
			x.metrics.Faults++
		}
		x.notifyTopology(now)
	case FaultNodeUp:
		if x.st.NodeAlive(ft.Node) {
			return
		}
		x.st.setNodeAlive(ft.Node, true)
		x.notifyTopology(now)
	case FaultLinkDown:
		if !x.st.LinkAlive(ft.Link) {
			return
		}
		x.st.setLinkAlive(ft.Link, false)
		x.dropInFlight(ft.Link, now)
		if owner {
			x.metrics.Faults++
		}
		x.notifyTopology(now)
	case FaultLinkUp:
		x.st.scaleLink(ft.Link, 1)
		if x.st.LinkAlive(ft.Link) {
			return
		}
		x.st.setLinkAlive(ft.Link, true)
		x.notifyTopology(now)
	case FaultLinkDegrade:
		x.st.scaleLink(ft.Link, ft.Factor)
		if owner {
			x.metrics.Faults++
		}
	case FaultInstanceKill:
		x.killInstances(ft.Node, ft.Component, now)
		if owner {
			x.metrics.Faults++
		}
	case FaultExtraArrival:
		if owner {
			x.injectFlow(ft.Node, now)
		}
	}
}

// ownsFault reports whether this exec owns ft's exactly-once side
// effects: the shard of the faulted node, or of a faulted link's A
// endpoint. Single-shard execs own everything.
func (x *exec) ownsFault(ft Fault) bool {
	so := x.sim.shardOf
	if so == nil {
		return true
	}
	switch ft.Kind {
	case FaultLinkDown, FaultLinkUp, FaultLinkDegrade:
		return so[x.sim.cfg.Graph.Link(ft.Link).A] == int32(x.id)
	default:
		return so[ft.Node] == int32(x.id)
	}
}

// notifyTopology tells a topology-observing coordinator that liveness
// changed; the state's routing view is already recomputed at this point.
func (x *exec) notifyTopology(now float64) {
	if x.topoObs != nil {
		x.topoObs.OnTopologyChange(x.st, now)
	}
}

// dropResidentAt drops every flow physically at a crashed node: flows
// being processed there (pending evProcDone) and fully processed flows
// kept there. Flows still in transit toward the node are NOT dropped
// here — they fail on arrival if the node is still down, and survive if
// it recovered first.
func (x *exec) dropResidentAt(v graph.NodeID, now float64) {
	for _, f := range x.collectVictims(func(e *event) bool {
		switch e.kind {
		case evProcDone:
			return e.node == v
		case evHeadArrive:
			return e.node == v && e.link < 0 // kept at v, not in transit
		}
		return false
	}) {
		x.drop(f, v, DropNodeFailure, now)
	}
}

// dropInFlight drops every flow whose head is currently propagating over
// the failed link. Each such flow has exactly one pending evHeadArrive
// tagged with the link, so it is accounted for as exactly one drop.
func (x *exec) dropInFlight(l int, now float64) {
	link := x.sim.cfg.Graph.Link(l)
	for _, f := range x.collectVictims(func(e *event) bool {
		return e.kind == evHeadArrive && e.link == l
	}) {
		x.drop(f, link.A, DropLinkFailure, now)
	}
}

// killInstances removes component instances at v (comp "" means all) and
// drops the flows currently being processed on them.
func (x *exec) killInstances(v graph.NodeID, comp string, now float64) {
	for _, f := range x.collectVictims(func(e *event) bool {
		if e.kind != evProcDone || e.node != v {
			return false
		}
		cur := e.flow.Current()
		return comp == "" || (cur != nil && cur.Name == comp)
	}) {
		x.drop(f, v, DropInstanceKill, now)
	}
	x.st.removeInstances(v, comp)
}

// collectVictims returns the distinct, still-live flows of pending
// events matching the predicate, scanning both the event queue and (in
// sharded runs) the not-yet-delivered outbox handoffs. Collection is
// separated from dropping because drop notifies listeners, which must
// not observe a half-scanned queue.
func (x *exec) collectVictims(match func(*event) bool) []*Flow {
	var victims []*Flow
	seen := map[int]bool{}
	collect := func(e *event) {
		if e.flow == nil || e.flow.done || seen[e.flow.ID] {
			return
		}
		if match(e) {
			victims = append(victims, e.flow)
			seen[e.flow.ID] = true
		}
	}
	for i := range x.queue.items {
		collect(&x.queue.items[i])
	}
	for _, box := range x.outbox {
		for i := range box {
			collect(&box[i])
		}
	}
	return victims
}

// injectFlow generates one surge flow at node v (the fault-schedule
// analogue of generateFlow, without scheduling a follow-up arrival).
func (x *exec) injectFlow(v graph.NodeID, now float64) {
	fl := &Flow{
		ID:       x.nextID,
		Service:  x.pickService(),
		Ingress:  v,
		Egress:   x.sim.cfg.Egress,
		Rate:     x.sim.cfg.Template.Rate,
		Duration: x.sim.cfg.Template.Duration,
		Deadline: x.sim.cfg.Template.Deadline,
		Arrival:  now,
	}
	x.nextID += x.idStride
	x.metrics.Arrived++
	x.trace(TraceArrival, fl, v, now, -1, -1, DropNone)
	x.handleFlowAt(fl, v, now)
}
