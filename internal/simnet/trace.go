package simnet

import (
	"encoding/json"
	"fmt"
	"strings"

	"distcoord/internal/graph"
)

// TraceKind discriminates per-flow trace events.
type TraceKind int

// Trace event kinds, covering the full flow lifecycle.
const (
	TraceArrival  TraceKind = iota // flow generated at its ingress
	TraceDecision                  // coordinator queried; Action holds its choice
	TraceProcess                   // processing of the current component started
	TraceForward                   // flow sent over Link toward a neighbor
	TraceKeep                      // fully processed flow held for one step
	TraceDrop                      // flow dropped; Drop holds the cause
	TraceComplete                  // flow reached its egress fully processed
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceArrival:
		return "arrival"
	case TraceDecision:
		return "decision"
	case TraceProcess:
		return "process"
	case TraceForward:
		return "forward"
	case TraceKeep:
		return "keep"
	case TraceDrop:
		return "drop"
	case TraceComplete:
		return "complete"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// DecideTiming decomposes one remote decision round trip into sub-spans
// in integer nanoseconds of wall time. It is the simulator-side mirror
// of agentnet.RPCTiming (simnet must stay independent of the transport
// package, so the fields are duplicated rather than imported) and
// carries the same exact-tiling invariant:
//
//	SendNS + NetNS + QueueNS + InferNS + ReturnNS == TotalNS
//
// attached to TraceDecision events so flow analysis can split a
// decision segment into client-send / network / agent-queue / inference
// / return without any rounding slack. A zero TotalNS means "no remote
// round trip" (in-process decision); exports omit the block then.
type DecideTiming struct {
	TotalNS  int64 `json:"total_ns"`
	SendNS   int64 `json:"send_ns"`
	NetNS    int64 `json:"net_ns"`
	QueueNS  int64 `json:"queue_ns"`
	InferNS  int64 `json:"infer_ns"`
	ReturnNS int64 `json:"return_ns"`
}

// Sum returns the sum of the five sub-spans — equal to TotalNS whenever
// the decomposition is well-formed.
func (t DecideTiming) Sum() int64 {
	return t.SendNS + t.NetNS + t.QueueNS + t.InferNS + t.ReturnNS
}

// TraceEvent is one per-flow simulator event. It is a plain value — the
// simulator constructs it on the stack only when a tracer is installed,
// so disabled tracing adds no allocations to the decision path.
type TraceEvent struct {
	Time    float64
	Kind    TraceKind
	FlowID  int
	Node    graph.NodeID
	CompIdx int       // index of the currently requested component
	Action  int       // coordinator action; -1 when not applicable
	Link    int       // traversed link for TraceForward; -1 otherwise
	Drop    DropCause // cause for TraceDrop; DropNone otherwise
	// Wait, on TraceProcess events, is how long the flow waits before
	// processing actually starts (instance startup / readiness delay):
	// processing occupies [Time+Wait, nextEventTime]. It lets trace
	// analysis split a processing segment into queue-wait and service
	// time without knowing the service definitions.
	Wait float64
	// RPC, on TraceDecision events of remote runs, is the wall-time
	// decomposition of the decision round trip. Zero (TotalNS == 0) for
	// in-process coordinators.
	RPC DecideTiming
}

// traceEventJSON is the export schema: compact keys, symbolic kind and
// drop cause, optional fields omitted.
type traceEventJSON struct {
	Time    float64  `json:"t"`
	Kind    string   `json:"kind"`
	FlowID  int      `json:"flow"`
	Node    int      `json:"node"`
	CompIdx int      `json:"comp"`
	Action  *int     `json:"action,omitempty"`
	Link    *int     `json:"link,omitempty"`
	Drop    string   `json:"drop,omitempty"`
	Wait    *float64 `json:"wait,omitempty"`
	// RPC uses int64 nanosecond fields, so the exact tiling invariant
	// survives the JSON round trip bit-for-bit (float64 would hold these
	// magnitudes exactly too, but integers make the contract obvious).
	RPC *DecideTiming `json:"rpc,omitempty"`
}

// MarshalJSON implements json.Marshaler with symbolic kinds and causes,
// so JSONL flow traces are self-describing.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	out := traceEventJSON{
		Time:    e.Time,
		Kind:    e.Kind.String(),
		FlowID:  e.FlowID,
		Node:    int(e.Node),
		CompIdx: e.CompIdx,
	}
	if e.Action >= 0 {
		out.Action = &e.Action
	}
	if e.Link >= 0 {
		out.Link = &e.Link
	}
	if e.Drop != DropNone {
		out.Drop = e.Drop.String()
	}
	if e.Wait > 0 {
		out.Wait = &e.Wait
	}
	if e.RPC.TotalNS != 0 {
		out.RPC = &e.RPC
	}
	return json.Marshal(out)
}

// The decode maps are derived from the String() methods at package
// initialization, so adding an enum value (with its String case) can
// never desynchronize encoding from decoding again — the historical bug
// was a hand-written cause map missing "instance-kill".
var (
	traceKindByName = enumByName(func(i int) string {
		s := TraceKind(i).String()
		if strings.HasPrefix(s, "TraceKind(") {
			return ""
		}
		return s
	})
	dropCauseByName = enumByName(func(i int) string {
		s := DropCause(i).String()
		if strings.HasPrefix(s, "DropCause(") {
			return ""
		}
		return s
	})
)

// enumByName probes an iota enum's String method from 0 upward until it
// reports an unknown value ("" from the probe) and returns name → value.
func enumByName(name func(int) string) map[string]int {
	m := make(map[string]int)
	for i := 0; ; i++ {
		s := name(i)
		if s == "" {
			return m
		}
		m[s] = i
	}
}

// UnmarshalJSON implements json.Unmarshaler (round-tripping traces back
// from JSONL logs for analysis).
func (e *TraceEvent) UnmarshalJSON(data []byte) error {
	var in traceEventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*e = TraceEvent{
		Time:    in.Time,
		FlowID:  in.FlowID,
		Node:    graph.NodeID(in.Node),
		CompIdx: in.CompIdx,
		Action:  -1,
		Link:    -1,
	}
	if in.Action != nil {
		e.Action = *in.Action
	}
	if in.Link != nil {
		e.Link = *in.Link
	}
	if in.Wait != nil {
		e.Wait = *in.Wait
	}
	if in.RPC != nil {
		e.RPC = *in.RPC
	}
	k, ok := traceKindByName[in.Kind]
	if !ok {
		return fmt.Errorf("simnet: unknown trace kind %q", in.Kind)
	}
	e.Kind = TraceKind(k)
	if in.Drop != "" {
		c, ok := dropCauseByName[in.Drop]
		if !ok {
			return fmt.Errorf("simnet: unknown drop cause %q", in.Drop)
		}
		e.Drop = DropCause(c)
	}
	return nil
}

// FlowTracer receives per-flow trace events. Unlike Listener (which
// feeds reward assembly and is always installed), a tracer is optional
// observability: the simulator nil-checks it before constructing any
// event, so the hot path costs nothing when tracing is off. Callbacks
// run synchronously inside the event loop and must not retain the event
// beyond the call unless copied (TraceEvent is a value, so plain
// assignment copies).
type FlowTracer interface {
	Trace(TraceEvent)
}

// TracerFunc adapts a function to the FlowTracer interface.
type TracerFunc func(TraceEvent)

// Trace implements FlowTracer.
func (f TracerFunc) Trace(e TraceEvent) { f(e) }

// trace emits one event when a tracer is installed. The nil check comes
// before the TraceEvent literal, so the disabled path does no work.
func (x *exec) trace(kind TraceKind, f *Flow, v graph.NodeID, now float64, action, link int, drop DropCause) {
	x.traceWait(kind, f, v, now, action, link, drop, 0)
}

// traceDecision emits the TraceDecision event, attaching the remote
// round-trip decomposition when the coordinator reports one (the
// DecisionTimer capability). The tracer nil-check comes first: untraced
// runs construct nothing and never consult the timer, keeping the
// decide hot path allocation- and branch-light exactly like trace.
func (x *exec) traceDecision(f *Flow, v graph.NodeID, now float64, action int) {
	if x.tracer == nil {
		return
	}
	e := TraceEvent{
		Time:    now,
		Kind:    TraceDecision,
		FlowID:  f.ID,
		Node:    v,
		CompIdx: f.CompIdx,
		Action:  action,
		Link:    -1,
	}
	if x.timing != nil {
		if t, ok := x.timing.LastDecideTiming(); ok {
			e.RPC = t
		}
	}
	x.tracer.Trace(e)
}

// traceWait is trace with the processing-start wait of TraceProcess
// events (see TraceEvent.Wait).
func (x *exec) traceWait(kind TraceKind, f *Flow, v graph.NodeID, now float64, action, link int, drop DropCause, wait float64) {
	if x.tracer == nil {
		return
	}
	x.tracer.Trace(TraceEvent{
		Time:    now,
		Kind:    kind,
		FlowID:  f.ID,
		Node:    v,
		CompIdx: f.CompIdx,
		Action:  action,
		Link:    link,
		Drop:    drop,
		Wait:    wait,
	})
}
