package simnet

import (
	"encoding/json"
	"fmt"

	"distcoord/internal/graph"
)

// TraceKind discriminates per-flow trace events.
type TraceKind int

// Trace event kinds, covering the full flow lifecycle.
const (
	TraceArrival  TraceKind = iota // flow generated at its ingress
	TraceDecision                  // coordinator queried; Action holds its choice
	TraceProcess                   // processing of the current component started
	TraceForward                   // flow sent over Link toward a neighbor
	TraceKeep                      // fully processed flow held for one step
	TraceDrop                      // flow dropped; Drop holds the cause
	TraceComplete                  // flow reached its egress fully processed
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceArrival:
		return "arrival"
	case TraceDecision:
		return "decision"
	case TraceProcess:
		return "process"
	case TraceForward:
		return "forward"
	case TraceKeep:
		return "keep"
	case TraceDrop:
		return "drop"
	case TraceComplete:
		return "complete"
	}
	return fmt.Sprintf("TraceKind(%d)", int(k))
}

// TraceEvent is one per-flow simulator event. It is a plain value — the
// simulator constructs it on the stack only when a tracer is installed,
// so disabled tracing adds no allocations to the decision path.
type TraceEvent struct {
	Time    float64
	Kind    TraceKind
	FlowID  int
	Node    graph.NodeID
	CompIdx int       // index of the currently requested component
	Action  int       // coordinator action; -1 when not applicable
	Link    int       // traversed link for TraceForward; -1 otherwise
	Drop    DropCause // cause for TraceDrop; DropNone otherwise
}

// traceEventJSON is the export schema: compact keys, symbolic kind and
// drop cause, optional fields omitted.
type traceEventJSON struct {
	Time    float64 `json:"t"`
	Kind    string  `json:"kind"`
	FlowID  int     `json:"flow"`
	Node    int     `json:"node"`
	CompIdx int     `json:"comp"`
	Action  *int    `json:"action,omitempty"`
	Link    *int    `json:"link,omitempty"`
	Drop    string  `json:"drop,omitempty"`
}

// MarshalJSON implements json.Marshaler with symbolic kinds and causes,
// so JSONL flow traces are self-describing.
func (e TraceEvent) MarshalJSON() ([]byte, error) {
	out := traceEventJSON{
		Time:    e.Time,
		Kind:    e.Kind.String(),
		FlowID:  e.FlowID,
		Node:    int(e.Node),
		CompIdx: e.CompIdx,
	}
	if e.Action >= 0 {
		out.Action = &e.Action
	}
	if e.Link >= 0 {
		out.Link = &e.Link
	}
	if e.Drop != DropNone {
		out.Drop = e.Drop.String()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler (round-tripping traces back
// from JSONL logs for analysis).
func (e *TraceEvent) UnmarshalJSON(data []byte) error {
	var in traceEventJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*e = TraceEvent{
		Time:    in.Time,
		FlowID:  in.FlowID,
		Node:    graph.NodeID(in.Node),
		CompIdx: in.CompIdx,
		Action:  -1,
		Link:    -1,
	}
	if in.Action != nil {
		e.Action = *in.Action
	}
	if in.Link != nil {
		e.Link = *in.Link
	}
	kinds := map[string]TraceKind{
		"arrival": TraceArrival, "decision": TraceDecision, "process": TraceProcess,
		"forward": TraceForward, "keep": TraceKeep, "drop": TraceDrop, "complete": TraceComplete,
	}
	k, ok := kinds[in.Kind]
	if !ok {
		return fmt.Errorf("simnet: unknown trace kind %q", in.Kind)
	}
	e.Kind = k
	if in.Drop != "" {
		causes := map[string]DropCause{
			"invalid-action": DropInvalidAction, "node-capacity": DropNodeCapacity,
			"link-capacity": DropLinkCapacity, "expired": DropExpired,
			"node-failure": DropNodeFailure, "link-failure": DropLinkFailure,
		}
		c, ok := causes[in.Drop]
		if !ok {
			return fmt.Errorf("simnet: unknown drop cause %q", in.Drop)
		}
		e.Drop = c
	}
	return nil
}

// FlowTracer receives per-flow trace events. Unlike Listener (which
// feeds reward assembly and is always installed), a tracer is optional
// observability: the simulator nil-checks it before constructing any
// event, so the hot path costs nothing when tracing is off. Callbacks
// run synchronously inside the event loop and must not retain the event
// beyond the call unless copied (TraceEvent is a value, so plain
// assignment copies).
type FlowTracer interface {
	Trace(TraceEvent)
}

// TracerFunc adapts a function to the FlowTracer interface.
type TracerFunc func(TraceEvent)

// Trace implements FlowTracer.
func (f TracerFunc) Trace(e TraceEvent) { f(e) }

// trace emits one event when a tracer is installed. The nil check comes
// before the TraceEvent literal, so the disabled path does no work.
func (s *Sim) trace(kind TraceKind, f *Flow, v graph.NodeID, now float64, action, link int, drop DropCause) {
	if s.tracer == nil {
		return
	}
	s.tracer.Trace(TraceEvent{
		Time:    now,
		Kind:    kind,
		FlowID:  f.ID,
		Node:    v,
		CompIdx: f.CompIdx,
		Action:  action,
		Link:    link,
		Drop:    drop,
	})
}
