package simnet

// Sharded event-loop execution: conservative parallel discrete-event
// simulation in the Chandy–Misra–Bryant tradition, specialized to this
// simulator's structure.
//
// The node set is partitioned into Config.Shards regions; each region
// gets its own exec — event heap, state copy, metrics, RNG streams, and
// batcher — and simulates its nodes' events without locks. Shards
// synchronize at epoch barriers: with L the minimum delay over
// shard-crossing links (the lookahead) and t the globally earliest
// pending event, every shard may safely simulate the window [t, t+L),
// because an event a remote shard executes in this window can influence
// this shard no earlier than t+L (any cross-shard interaction rides a
// crossing link and pays ≥ L of delay). Flows forwarded across the
// partition during an epoch are banked in per-destination outboxes and
// delivered into the target heaps at the barrier; their arrival times
// are ≥ the epoch end by construction, so delivery order can never
// violate causality. L > 0 guarantees progress: every epoch executes at
// least the globally earliest event.
//
// Determinism: multi-shard runs are exactly reproducible for a fixed
// (Config, Shards, Partition) triple. Every source of event ordering is
// deterministic — per-shard heaps break timestamp ties by insertion
// sequence, barrier delivery walks outboxes in (destination, source,
// send-order) order, flow IDs are striped (shard i issues i, i+S,
// i+2S, ...), and every RNG stream is derived from configured seeds.
// Sharded results are NOT required to be identical to the sequential
// engine's: cross-shard capacity visibility is conservative rather than
// exact (see the notes on boundary sync below), which can admit or
// reject individual flows differently. On partition-closed workloads
// (no flow ever crosses the cut) the two engines agree exactly; the
// merge property test pins that.
//
// Approximations in sharded mode, all deliberately conservative and
// confined to cross-shard visibility:
//   - Link capacity of crossing links is accounted per sender shard, so
//     simultaneous use from both sides can admit up to one extra flow
//     per direction before the ledgers sync.
//   - A shard reads HasInstance of remote nodes from its own (possibly
//     stale) view; at worst it re-places an instance the owner already
//     has, never the reverse.
//   - usedNode of boundary nodes (endpoints of crossing links) is copied
//     from the owning shard to all others at every barrier, bounding
//     staleness by one epoch.
// Liveness, link scaling, and routing views are NOT approximated: every
// shard applies the full fault schedule, so NodeAlive/LinkAlive/APSP
// agree everywhere at all times.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"

	"distcoord/internal/graph"
)

// ShardableCoordinator is an optional Coordinator capability required
// for multi-shard runs: ForShard returns the coordinator instance that
// shard will query. Stateless coordinators return themselves;
// coordinators with per-node state whose Decide touches only the
// decided node's state may also return themselves; anything with
// cross-node mutable state must return an independent clone (and
// thereby accepts that shards learn from their own region only).
type ShardableCoordinator interface {
	Coordinator
	ForShard(shard, shards int) Coordinator
}

// ShardObserver receives per-shard progress at every epoch barrier of a
// multi-shard run (telemetry: per-shard gauges for epoch, heap depth,
// and cumulative handoffs). Callbacks run on the coordinating goroutine
// between epochs, never concurrently.
type ShardObserver interface {
	OnShardEpoch(shard, epoch, heapDepth, handoffs int)
}

// boundaryNode is a node visible across the partition cut; its compute
// ledger is broadcast from the owning shard at every epoch barrier.
type boundaryNode struct {
	node  graph.NodeID
	owner int32
}

// holdsReference reports whether values of type t can reach shared
// mutable state: equality of two such values then implies they alias it.
// Only comparable types are passed in, so slices, maps, and funcs cannot
// occur below structs or arrays.
func holdsReference(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.Chan, reflect.UnsafePointer, reflect.Interface:
		return true
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if holdsReference(t.Field(i).Type) {
				return true
			}
		}
		return false
	case reflect.Array:
		return holdsReference(t.Elem())
	default:
		return false
	}
}

// initShards validates the sharded configuration and builds one exec per
// shard.
func (s *Sim) initShards() error {
	k := s.cfg.Shards
	sc := Capabilities(s.cfg.Coordinator).Shard
	if sc == nil {
		return fmt.Errorf("simnet: Shards=%d requires a ShardableCoordinator, but %q does not implement ForShard", k, s.cfg.Coordinator.Name())
	}

	part := s.cfg.Partition
	if part == nil {
		part = graph.PartitionRegions(s.cfg.Graph, k)
	}
	s.shardOf = make([]int32, len(part))
	for v, p := range part {
		s.shardOf[v] = int32(p)
	}

	cut, lookahead := graph.PartitionCut(s.cfg.Graph, part)
	if cut > 0 && lookahead <= 0 {
		return fmt.Errorf("simnet: sharding requires strictly positive delays on shard-crossing links (min crossing delay %g)", lookahead)
	}
	s.lookahead = lookahead

	// Endpoints of crossing links are visible to both sides; collect them
	// once, in link order, for the barrier-time ledger broadcast.
	seen := make(map[graph.NodeID]bool)
	for _, l := range s.cfg.Graph.Links() {
		if part[l.A] == part[l.B] {
			continue
		}
		for _, v := range []graph.NodeID{l.A, l.B} {
			if !seen[v] {
				seen[v] = true
				s.boundary = append(s.boundary, boundaryNode{node: v, owner: s.shardOf[v]})
			}
		}
	}

	// An ArrivalProcess instance drawn from two shards would race (and
	// break determinism); each ingress needs its own process unless all
	// sharers live on one shard. Pure-value processes (no pointers, e.g.
	// traffic.Fixed) carry no shared state: two equal copies are
	// independent, so only reference-bearing types are checked.
	procShard := make(map[ArrivalProcess]int32)
	for _, in := range s.cfg.Ingresses {
		t := reflect.TypeOf(in.Arrivals)
		if !t.Comparable() || !holdsReference(t) {
			continue
		}
		sh := s.shardOf[in.Node]
		if prev, ok := procShard[in.Arrivals]; ok && prev != sh {
			return fmt.Errorf("simnet: ingresses %v share one ArrivalProcess across shards %d and %d; give each ingress its own process", in.Node, prev, sh)
		}
		procShard[in.Arrivals] = sh
	}

	// The configured listener is invoked from shard goroutines; serialize
	// it once here so every exec shares the same lock.
	listener := s.cfg.Listener
	if listener != nil {
		listener = &lockedListener{l: listener}
	}

	s.execs = make([]*exec, k)
	if s.cfg.Tracer != nil {
		s.traceBufs = make([]*traceBuffer, k)
	}
	for i := 0; i < k; i++ {
		c := sc.ForShard(i, k)
		if c == nil {
			return fmt.Errorf("simnet: coordinator %q returned nil for shard %d", s.cfg.Coordinator.Name(), i)
		}
		var tracer FlowTracer
		if s.cfg.Tracer != nil {
			s.traceBufs[i] = &traceBuffer{}
			tracer = s.traceBufs[i]
		}
		x, err := s.newExec(i, c, tracer, listener)
		if err != nil {
			return err
		}
		x.nextID = i
		x.idStride = k
		x.svcRng = rand.New(rand.NewSource(shardSeed(s.cfg.ServiceSeed, i)))
		x.outbox = make([][]event, k)
		s.execs[i] = x
	}
	return nil
}

// shardSeed derives shard i's stream from a base seed (splitmix64-style
// golden-ratio increment, so adjacent shards get well-separated states).
func shardSeed(seed int64, shard int) int64 {
	return seed ^ int64(uint64(shard+1)*0x9E3779B97F4A7C15)
}

// runSharded executes the epoch-barrier loop described at the top of
// this file.
func (s *Sim) runSharded() (*Metrics, error) {
	s.start()
	epoch := 0
	for {
		s.deliverHandoffs()
		// The globally earliest pending event anchors the epoch window.
		next := math.Inf(1)
		for _, x := range s.execs {
			if x.queue.Len() > 0 && x.queue.peek().t < next {
				next = x.queue.peek().t
			}
		}
		if next > s.cfg.MaxTime { // +Inf when every queue drained
			break
		}
		end := next + s.lookahead
		var wg sync.WaitGroup
		for _, x := range s.execs {
			if x.queue.Len() == 0 || x.queue.peek().t >= end {
				continue // nothing inside this window; skip the goroutine
			}
			wg.Add(1)
			go func(x *exec) {
				defer wg.Done()
				x.err = x.runEpoch(end)
			}(x)
		}
		wg.Wait()
		for _, x := range s.execs {
			if x.err != nil {
				return nil, x.err
			}
		}
		s.syncBoundary()
		epoch++
		if s.cfg.ShardObserver != nil {
			for _, x := range s.execs {
				s.cfg.ShardObserver.OnShardEpoch(x.id, epoch, x.queue.Len(), x.handoffs)
			}
		}
	}
	s.flushTraces()
	m := s.mergeMetrics()
	if m.Pending() != 0 {
		return m, fmt.Errorf("simnet: %d flows still pending at MaxTime", m.Pending())
	}
	return m, nil
}

// deliverHandoffs moves banked cross-shard head arrivals into their
// destination heaps. Walking destinations in shard order, sources in
// shard order, and each outbox in send order makes the sequence numbers
// the destination heap assigns — and therefore all downstream
// tie-breaking — deterministic. Flows dropped by a fault while sitting
// in an outbox are skipped (their done flag is set).
func (s *Sim) deliverHandoffs() {
	for di, dst := range s.execs {
		for _, src := range s.execs {
			box := src.outbox[di]
			for i := range box {
				if !box[i].flow.done {
					dst.queue.push(box[i])
				}
				box[i] = event{} // drop the Flow pointer for the GC
			}
			src.outbox[di] = box[:0]
		}
	}
}

// syncBoundary broadcasts the compute ledger of every boundary node from
// its owning shard to all others, bounding cross-shard staleness of
// usedNode reads to one epoch.
func (s *Sim) syncBoundary() {
	for _, b := range s.boundary {
		used := s.execs[b.owner].st.usedNode[b.node]
		for _, x := range s.execs {
			if x.id != int(b.owner) {
				x.st.usedNode[b.node] = used
			}
		}
	}
}

// mergeMetrics combines per-shard metrics into run totals. Counters and
// delay sums add; Delays concatenate in shard order (stable, though
// unsorted — quantile queries sort internally).
func (s *Sim) mergeMetrics() *Metrics {
	if len(s.execs) == 1 {
		return s.execs[0].metrics
	}
	m := newMetrics()
	for _, x := range s.execs {
		xm := x.metrics
		m.Arrived += xm.Arrived
		m.Succeeded += xm.Succeeded
		m.Dropped += xm.Dropped
		for c, n := range xm.DropsBy {
			m.DropsBy[c] += n
		}
		m.SumDelay += xm.SumDelay
		if xm.MaxDelay > m.MaxDelay {
			m.MaxDelay = xm.MaxDelay
		}
		m.Delays = append(m.Delays, xm.Delays...)
		m.Decisions += xm.Decisions
		m.Forwards += xm.Forwards
		m.Processings += xm.Processings
		m.Keeps += xm.Keeps
		m.Faults += xm.Faults
	}
	return m
}

// flushTraces k-way-merges the per-shard trace buffers (each sorted by
// time already — execs emit in nondecreasing event time) into the
// configured tracer, breaking time ties by shard index.
func (s *Sim) flushTraces() {
	if s.cfg.Tracer == nil {
		return
	}
	idx := make([]int, len(s.traceBufs))
	for {
		best := -1
		var bt float64
		for i, buf := range s.traceBufs {
			if idx[i] >= len(buf.events) {
				continue
			}
			if t := buf.events[idx[i]].Time; best < 0 || t < bt {
				best, bt = i, t
			}
		}
		if best < 0 {
			return
		}
		s.cfg.Tracer.Trace(s.traceBufs[best].events[idx[best]])
		idx[best]++
	}
}

// Shards returns the number of event-loop shards of this run (1 for the
// sequential engine).
func (s *Sim) Shards() int { return len(s.execs) }

// Lookahead returns the conservative epoch window of a sharded run: the
// minimum delay over shard-crossing links (+Inf for a closed partition,
// 0 for single-shard runs).
func (s *Sim) Lookahead() float64 { return s.lookahead }

// Handoffs returns the cumulative number of cross-shard flow handoffs
// so far (0 for single-shard runs).
func (s *Sim) Handoffs() int {
	n := 0
	for _, x := range s.execs {
		n += x.handoffs
	}
	return n
}

// traceBuffer banks one shard's trace events for the post-run merge, so
// user tracers never see concurrent calls.
type traceBuffer struct {
	events []TraceEvent
}

// Trace implements FlowTracer.
func (b *traceBuffer) Trace(e TraceEvent) { b.events = append(b.events, e) }

// lockedListener serializes a Listener shared across shard goroutines.
type lockedListener struct {
	mu sync.Mutex
	l  Listener
}

// OnAction implements Listener.
func (ll *lockedListener) OnAction(f *Flow, v graph.NodeID, now float64, action int, res ActionResult) {
	ll.mu.Lock()
	defer ll.mu.Unlock()
	ll.l.OnAction(f, v, now, action, res)
}

// OnTraversed implements Listener.
func (ll *lockedListener) OnTraversed(f *Flow, v graph.NodeID, now float64) {
	ll.mu.Lock()
	defer ll.mu.Unlock()
	ll.l.OnTraversed(f, v, now)
}

// OnFlowEnd implements Listener.
func (ll *lockedListener) OnFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	ll.mu.Lock()
	defer ll.mu.Unlock()
	ll.l.OnFlowEnd(f, success, cause, now)
}
