package simnet

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"

	"distcoord/internal/traffic"
)

// collectTracer records every trace event.
type collectTracer struct {
	events []TraceEvent
}

func (c *collectTracer) Trace(e TraceEvent) { c.events = append(c.events, e) }

func (c *collectTracer) kinds() []TraceKind {
	out := make([]TraceKind, len(c.events))
	for i, e := range c.events {
		out[i] = e.Kind
	}
	return out
}

func TestTraceCoversSuccessfulFlowLifecycle(t *testing.T) {
	g := lineGraph(3, 10, 10)
	svc := testService(5)
	tr := &collectTracer{}
	cfg := oneFlow(g, svc, 2, 100, spCoord{})
	cfg.Ingresses = []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}}
	cfg.Horizon = 11
	cfg.MaxTime = 0
	cfg.Tracer = tr
	m := mustRun(t, cfg)
	if m.Succeeded != 1 {
		t.Fatalf("succeeded = %d, want 1", m.Succeeded)
	}

	want := map[TraceKind]int{TraceArrival: 1, TraceProcess: 2, TraceForward: 2, TraceComplete: 1}
	got := map[TraceKind]int{}
	for _, e := range tr.events {
		got[e.Kind]++
		if e.FlowID != 0 {
			t.Errorf("event %v has flow ID %d, want 0", e.Kind, e.FlowID)
		}
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%v events = %d, want %d (all: %v)", k, got[k], n, tr.kinds())
		}
	}
	// One decision per coordinator query, matching the metrics counter.
	if got[TraceDecision] != m.Decisions {
		t.Errorf("decision events = %d, metrics.Decisions = %d", got[TraceDecision], m.Decisions)
	}
	if tr.events[0].Kind != TraceArrival {
		t.Errorf("first event = %v, want arrival", tr.events[0].Kind)
	}
	if last := tr.events[len(tr.events)-1]; last.Kind != TraceComplete || last.Node != 2 {
		t.Errorf("last event = %+v, want complete at egress 2", last)
	}
	// Times must be non-decreasing: callbacks run inside the event loop.
	for i := 1; i < len(tr.events); i++ {
		if tr.events[i].Time < tr.events[i-1].Time {
			t.Errorf("event %d time %g precedes %g", i, tr.events[i].Time, tr.events[i-1].Time)
		}
	}
}

func TestTraceReportsDropCause(t *testing.T) {
	g := lineGraph(2, 0.1, 10) // no node fits the unit-resource component
	svc := testService(5)
	tr := &collectTracer{}
	cfg := oneFlow(g, svc, 1, 100, &fixedCoord{script: []int{0}})
	cfg.Ingresses = []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}}
	cfg.Horizon = 11
	cfg.MaxTime = 0
	cfg.Tracer = tr
	m := mustRun(t, cfg)
	if m.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", m.Dropped)
	}
	var drops []TraceEvent
	for _, e := range tr.events {
		if e.Kind == TraceDrop {
			drops = append(drops, e)
		}
	}
	if len(drops) != 1 || drops[0].Drop != DropNodeCapacity || drops[0].Node != 0 {
		t.Errorf("drop events = %+v, want one node-capacity drop at node 0", drops)
	}
}

func TestTraceEventJSONRoundTrip(t *testing.T) {
	events := []TraceEvent{
		{Time: 10, Kind: TraceArrival, FlowID: 3, Node: 1, Action: -1, Link: -1},
		{Time: 11.5, Kind: TraceDecision, FlowID: 3, Node: 1, CompIdx: 1, Action: 2, Link: -1},
		{Time: 12, Kind: TraceForward, FlowID: 3, Node: 1, CompIdx: 1, Action: 2, Link: 4},
		{Time: 13, Kind: TraceProcess, FlowID: 3, Node: 2, CompIdx: 1, Action: 0, Link: -1, Wait: 2.5},
		{Time: 20, Kind: TraceDrop, FlowID: 3, Node: 2, CompIdx: 1, Action: -1, Link: -1, Drop: DropExpired},
		{Time: 21, Kind: TraceComplete, FlowID: 4, Node: 7, CompIdx: 3, Action: -1, Link: -1},
	}
	for _, e := range events {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("marshal %+v: %v", e, err)
		}
		var back TraceEvent
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != e {
			t.Errorf("round trip %s: got %+v, want %+v", data, back, e)
		}
	}
}

// TestTraceEventJSONRoundTripExhaustive round-trips every TraceKind and
// every DropCause the String() methods know about, so a new enum value
// whose symbolic name is missing from the decode path can never ship
// again (the regression: "instance-kill" traces from -faults runs failed
// to parse). The enum sizes are probed from the String() fallback, the
// same way the decode maps are built — if String() itself misses a
// value, the value has no symbolic name and cannot round-trip at all.
func TestTraceEventJSONRoundTripExhaustive(t *testing.T) {
	if len(traceKindByName) < 7 {
		t.Fatalf("probed %d trace kinds, want >= 7", len(traceKindByName))
	}
	// DropNone is index 0 and never serialized for non-drop events, so
	// at least invalid-action .. instance-kill must be present.
	if len(dropCauseByName) < 8 {
		t.Fatalf("probed %d drop causes, want >= 8", len(dropCauseByName))
	}
	if _, ok := dropCauseByName[DropInstanceKill.String()]; !ok {
		t.Fatalf("decode map misses %q", DropInstanceKill.String())
	}
	for _, k := range traceKindByName {
		kind := TraceKind(k)
		for _, c := range dropCauseByName {
			cause := DropCause(c)
			if kind != TraceDrop && cause != DropNone {
				continue // Drop is only serialized on drop events
			}
			e := TraceEvent{Time: 1.5, Kind: kind, FlowID: 9, Node: 2, CompIdx: 1, Action: -1, Link: -1, Drop: cause}
			data, err := json.Marshal(e)
			if err != nil {
				t.Fatalf("marshal %v/%v: %v", kind, cause, err)
			}
			var back TraceEvent
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatalf("unmarshal %v/%v (%s): %v", kind, cause, data, err)
			}
			if back != e {
				t.Errorf("round trip %v/%v: got %+v, want %+v", kind, cause, back, e)
			}
		}
	}
}

// TestTraceDisabledAddsZeroAllocs pins the acceptance criterion that the
// telemetry hooks cost nothing when off: with a nil tracer, the trace
// call itself and a full keep-decision through the event queue allocate
// nothing (once the queue's backing array has grown to steady state).
func TestTraceDisabledAddsZeroAllocs(t *testing.T) {
	g := lineGraph(3, 10, 10)
	svc := testService(5)
	cfg := oneFlow(g, svc, 2, 100, &fixedCoord{})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := &Flow{ID: 1, Service: svc, CompIdx: svc.Len(), Egress: 2, Rate: 1, Duration: 1, Deadline: 1e9}

	x := s.execs[0]
	if avg := testing.AllocsPerRun(1000, func() {
		x.trace(TraceDecision, f, 0, 1, 0, -1, DropNone)
	}); avg != 0 {
		t.Errorf("trace with nil tracer allocates %.1f per call, want 0", avg)
	}

	// Warm the queue so append stays within capacity, then measure the
	// keep decision path end to end (processLocally + event scheduling).
	x.processLocally(f, 0, 1)
	x.queue.pop()
	if avg := testing.AllocsPerRun(1000, func() {
		x.processLocally(f, 0, 1)
		x.queue.pop()
	}); avg != 0 {
		t.Errorf("keep decision path allocates %.1f per run with telemetry off, want 0", avg)
	}
}

// TestSimDeterministicMetrics is the golden-style regression: two runs
// of an identically seeded simulation must produce byte-identical
// metrics, including the full delay list.
func TestSimDeterministicMetrics(t *testing.T) {
	run := func() []byte {
		g := lineGraph(5, 2, 3)
		svc := testService(2)
		rng := rand.New(rand.NewSource(99))
		cfg := Config{
			Graph:   g,
			Service: svc,
			Ingresses: []Ingress{
				{Node: 0, Arrivals: traffic.NewPoisson(5, rand.New(rand.NewSource(rng.Int63())))},
				{Node: 1, Arrivals: traffic.NewPoisson(7, rand.New(rand.NewSource(rng.Int63())))},
			},
			Egress:      4,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 60},
			Horizon:     400,
			Coordinator: spCoord{},
		}
		m := mustRun(t, cfg)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("identically seeded runs diverge:\n%s\n%s", a, b)
	}
	// Sanity: the scenario must exercise both outcomes to be a useful
	// regression anchor.
	var m Metrics
	if err := json.Unmarshal(a, &m); err != nil {
		t.Fatal(err)
	}
	if m.Succeeded == 0 || m.Arrived < 20 {
		t.Errorf("degenerate determinism scenario: %s", a)
	}
}

func TestDelayQuantileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(400)
		m := &Metrics{DropsBy: map[DropCause]int{}}
		for i := 0; i < n; i++ {
			m.Delays = append(m.Delays, rng.Float64()*1000)
		}
		m.Succeeded = n

		sorted := append([]float64(nil), m.Delays...)
		sort.Float64s(sorted)
		oracle := func(q float64) float64 {
			if q <= 0 {
				return sorted[0]
			}
			if q >= 1 {
				return sorted[n-1]
			}
			idx := int(math.Ceil(q*float64(n))) - 1
			if idx < 0 {
				idx = 0
			}
			return sorted[idx]
		}

		prev := math.Inf(-1)
		for i := 0; i <= 100; i++ {
			q := float64(i) / 100
			got := m.DelayQuantile(q)
			if want := oracle(q); got != want {
				t.Fatalf("n=%d q=%.2f: DelayQuantile = %g, oracle = %g", n, q, got, want)
			}
			if got < sorted[0] || got > sorted[n-1] {
				t.Fatalf("n=%d q=%.2f: %g outside [min, max]", n, q, got)
			}
			if got < prev {
				t.Fatalf("n=%d q=%.2f: not monotone (%g < %g)", n, q, got, prev)
			}
			prev = got
		}
	}
}

func TestDelayQuantileCacheFollowsAppends(t *testing.T) {
	m := &Metrics{Delays: []float64{30, 10, 20}}
	if got := m.DelayQuantile(1); got != 30 {
		t.Fatalf("max = %g, want 30", got)
	}
	m.Delays = append(m.Delays, 50) // as complete() does
	if got := m.DelayQuantile(1); got != 50 {
		t.Errorf("max after append = %g, want 50 (stale cache?)", got)
	}
	if got := m.DelayQuantile(0); got != 10 {
		t.Errorf("min = %g, want 10", got)
	}
}

func TestMetricsCloneDoesNotShareQuantileCache(t *testing.T) {
	m := &Metrics{Delays: []float64{3, 1, 2}, DropsBy: map[DropCause]int{}}
	m.DelayQuantile(0.5) // populate cache
	c := m.Clone()
	c.Delays = append(c.Delays, 100)
	if got := c.DelayQuantile(1); got != 100 {
		t.Errorf("clone quantile = %g, want 100", got)
	}
	if got := m.DelayQuantile(1); got != 3 {
		t.Errorf("original quantile = %g, want 3", got)
	}
}

// TestEventQueueRandomizedOrdering pins the hand-rolled heap against a
// reference sort over random (time, insertion) pairs.
func TestEventQueueRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var q eventQueue
	type key struct {
		t   float64
		seq int
	}
	var want []key
	seq := 0
	for i := 0; i < 500; i++ {
		// Mix pushes and pops to exercise interior heap states.
		if rng.Float64() < 0.3 && q.Len() > 0 {
			e := q.pop()
			sort.Slice(want, func(i, j int) bool {
				if want[i].t != want[j].t {
					return want[i].t < want[j].t
				}
				return want[i].seq < want[j].seq
			})
			if e.t != want[0].t || int(e.seq) != want[0].seq {
				t.Fatalf("pop = (%g, %d), want (%g, %d)", e.t, e.seq, want[0].t, want[0].seq)
			}
			want = want[1:]
			continue
		}
		// Duplicate times are common (ties broken by seq).
		tm := float64(rng.Intn(20))
		q.push(event{t: tm, kind: evTick})
		want = append(want, key{t: tm, seq: seq})
		seq++
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].t != want[j].t {
			return want[i].t < want[j].t
		}
		return want[i].seq < want[j].seq
	})
	for _, w := range want {
		e := q.pop()
		if e.t != w.t || int(e.seq) != w.seq {
			t.Fatalf("drain pop = (%g, %d), want (%g, %d)", e.t, e.seq, w.t, w.seq)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not empty after drain: %d", q.Len())
	}
}
