package simnet

import (
	"math"
	"sort"
)

// Metrics accumulates the evaluation quantities of Sec. V: the success
// ratio o_f = |F_succ| / (|F_succ| + |F_drop|) (Eq. 1), drop causes, and
// end-to-end delays of completed flows.
type Metrics struct {
	Arrived   int
	Succeeded int
	Dropped   int
	DropsBy   map[DropCause]int

	// SumDelay and MaxDelay summarize end-to-end delays d_f of
	// successful flows; Delays holds every individual delay for
	// percentile analysis. Delays is append-only: DelayQuantile caches a
	// sorted copy keyed on length, so replacing elements in place without
	// changing the length would go unnoticed.
	SumDelay float64
	MaxDelay float64
	Delays   []float64

	// sorted caches Delays in ascending order for DelayQuantile; it is
	// rebuilt (one sort) only when Delays has grown since the last call.
	sorted []float64

	// Decisions counts coordinator queries; Forwards, Processings, and
	// Keeps count action outcomes (diagnostics and ablations).
	Decisions   int
	Forwards    int
	Processings int
	Keeps       int

	// Faults counts disruptive fault injections applied during the run
	// (recoveries and idempotent no-op repeats are not counted).
	Faults int
}

// newMetrics returns zeroed metrics.
func newMetrics() *Metrics {
	return &Metrics{DropsBy: make(map[DropCause]int)}
}

// SuccessRatio returns o_f per Eq. 1. It is 0 when no flow finished.
func (m *Metrics) SuccessRatio() float64 {
	total := m.Succeeded + m.Dropped
	if total == 0 {
		return 0
	}
	return float64(m.Succeeded) / float64(total)
}

// AvgDelay returns the mean end-to-end delay of successful flows
// (Fig. 7 bottom), or 0 when none succeeded.
func (m *Metrics) AvgDelay() float64 {
	if m.Succeeded == 0 {
		return 0
	}
	return m.SumDelay / float64(m.Succeeded)
}

// DelayQuantile returns the q-quantile (0..1) of successful flows'
// end-to-end delays using nearest-rank interpolation, or 0 when no flow
// succeeded.
func (m *Metrics) DelayQuantile(q float64) float64 {
	if len(m.Delays) == 0 {
		return 0
	}
	sorted := m.sortedDelays()
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// sortedDelays returns Delays in ascending order, sorting once per batch
// of newly completed flows instead of copying and re-sorting on every
// quantile query (repeated p50/p95/p99 reads were quadratic-ish on long
// runs).
func (m *Metrics) sortedDelays() []float64 {
	if len(m.sorted) != len(m.Delays) {
		m.sorted = append(m.sorted[:0], m.Delays...)
		sort.Float64s(m.sorted)
	}
	return m.sorted
}

// Pending returns flows that arrived but neither succeeded nor dropped.
// After Run returns this is always 0 (flow accounting invariant).
func (m *Metrics) Pending() int { return m.Arrived - m.Succeeded - m.Dropped }

// Clone returns a deep copy.
func (m *Metrics) Clone() *Metrics {
	c := *m
	c.DropsBy = make(map[DropCause]int, len(m.DropsBy))
	for k, v := range m.DropsBy {
		c.DropsBy[k] = v
	}
	c.Delays = append([]float64(nil), m.Delays...)
	c.sorted = nil // rebuilt lazily; never share the cache
	return &c
}
