package simnet

import (
	"distcoord/internal/graph"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evGenArrival  eventKind = iota // generate the next flow at an ingress
	evHeadArrive                   // a flow's head reaches a node: decision point
	evProcDone                     // a flow finishes processing at an instance
	evReleaseNode                  // return reserved compute resources
	evReleaseLink                  // return reserved link data rate
	evIdleCheck                    // check an instance for idle-timeout removal
	evTick                         // periodic coordinator tick
	evFault                        // apply a scheduled fault (index in ingress)
)

// event is one scheduled simulator event. Events at equal times are
// ordered by insertion sequence for determinism.
type event struct {
	t    float64
	seq  uint64
	kind eventKind

	flow *Flow
	node graph.NodeID
	comp *Component
	// link tags evHeadArrive events with the link the head is in transit
	// on (-1 when the flow is at a node rather than on a wire), and
	// carries the link index for evReleaseLink.
	link    int
	amount  float64
	ingress int // arrival-generator index, or fault index for evFault
}

// eventQueue is a binary min-heap over (time, sequence), hand-rolled
// instead of container/heap so pushes stay on the simulator hot path
// without boxing each event into an interface (one allocation per
// scheduled event with container/heap; zero here once the backing slice
// has grown). (t, seq) is a total order — no two events compare equal —
// so the pop sequence is identical to the container/heap implementation
// it replaced.
type eventQueue struct {
	items []event
	seq   uint64
}

// Len returns the number of pending events.
func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].t != q.items[j].t {
		return q.items[i].t < q.items[j].t
	}
	return q.items[i].seq < q.items[j].seq
}

// push schedules e, assigning the determinism sequence number.
func (q *eventQueue) push(e event) {
	e.seq = q.seq
	q.seq++
	q.items = append(q.items, e)
	q.up(len(q.items) - 1)
}

// peek returns the earliest event without removing it. Callers must
// check Len; the pointer is only valid until the next queue operation.
func (q *eventQueue) peek() *event { return &q.items[0] }

// pop removes and returns the earliest event. Callers must check Len.
func (q *eventQueue) pop() event {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items[n] = event{} // drop the Flow/Component pointers for the GC
	q.items = q.items[:n]
	if n > 0 {
		q.down(0)
	}
	return top
}

// up restores the heap invariant from leaf i toward the root.
func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

// down restores the heap invariant from node i toward the leaves.
func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && q.less(right, left) {
			smallest = right
		}
		if !q.less(smallest, i) {
			return
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
}
