package simnet

import (
	"container/heap"

	"distcoord/internal/graph"
)

// eventKind discriminates simulator events.
type eventKind int

const (
	evGenArrival  eventKind = iota // generate the next flow at an ingress
	evHeadArrive                   // a flow's head reaches a node: decision point
	evProcDone                     // a flow finishes processing at an instance
	evReleaseNode                  // return reserved compute resources
	evReleaseLink                  // return reserved link data rate
	evIdleCheck                    // check an instance for idle-timeout removal
	evTick                         // periodic coordinator tick
)

// event is one scheduled simulator event. Events at equal times are
// ordered by insertion sequence for determinism.
type event struct {
	t    float64
	seq  uint64
	kind eventKind

	flow    *Flow
	node    graph.NodeID
	comp    *Component
	link    int
	amount  float64
	ingress int
}

// eventQueue is a binary min-heap over (time, sequence).
type eventQueue struct {
	items []event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	if q.items[i].t != q.items[j].t {
		return q.items[i].t < q.items[j].t
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(event)) }

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// push schedules e at time t, assigning the determinism sequence number.
func (q *eventQueue) push(e event) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

// pop removes and returns the earliest event. Callers must check Len.
func (q *eventQueue) pop() event {
	return heap.Pop(q).(event)
}
