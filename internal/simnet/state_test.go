package simnet

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distcoord/internal/graph"
)

func newTestState() *State {
	g := lineGraph(3, 2, 5)
	return NewState(g, graph.NewAPSP(g))
}

func TestLedgerAllocRelease(t *testing.T) {
	st := newTestState()
	if st.UsedNode(0) != 0 || st.FreeNode(0) != 2 {
		t.Fatalf("fresh state: used=%f free=%f", st.UsedNode(0), st.FreeNode(0))
	}
	st.allocNode(0, 1.5)
	if st.UsedNode(0) != 1.5 {
		t.Errorf("used = %f, want 1.5", st.UsedNode(0))
	}
	if st.nodeFits(0, 0.6) {
		t.Error("nodeFits accepted over-capacity demand")
	}
	if !st.nodeFits(0, 0.5) {
		t.Error("nodeFits rejected exact-fit demand")
	}
	st.releaseNode(0, 1.5)
	if st.UsedNode(0) != 0 {
		t.Errorf("after release used = %f, want 0", st.UsedNode(0))
	}
	// Over-release clamps at zero rather than going negative.
	st.releaseNode(0, 5)
	if st.UsedNode(0) != 0 {
		t.Errorf("over-release: used = %f, want 0", st.UsedNode(0))
	}
}

func TestLinkLedger(t *testing.T) {
	st := newTestState()
	st.allocLink(0, 4)
	if !st.linkFits(0, 1) {
		t.Error("linkFits rejected exact fit")
	}
	if st.linkFits(0, 1.1) {
		t.Error("linkFits accepted over-capacity rate")
	}
	if st.FreeLink(0) != 1 {
		t.Errorf("FreeLink = %f, want 1", st.FreeLink(0))
	}
	st.releaseLink(0, 10)
	if st.UsedLink(0) != 0 {
		t.Errorf("over-release: used = %f, want 0", st.UsedLink(0))
	}
}

func TestInstanceLifecycle(t *testing.T) {
	st := newTestState()
	comp := &Component{Name: "c", StartupDelay: 3, IdleTimeout: 10}
	if st.HasInstance(0, comp) {
		t.Fatal("instance present before placement")
	}
	inst, created := st.placeInstance(0, comp, 100)
	if !created || inst.ReadyAt != 103 {
		t.Fatalf("placeInstance: created=%v readyAt=%f, want true/103", created, inst.ReadyAt)
	}
	inst2, created2 := st.placeInstance(0, comp, 105)
	if created2 || inst2 != inst {
		t.Error("second placement must return the existing instance")
	}
	inst.BusyUntil = 110
	if st.removeInstanceIfIdle(0, comp, 115) {
		t.Error("instance removed before idle timeout elapsed")
	}
	if !st.removeInstanceIfIdle(0, comp, 120) {
		t.Error("instance not removed after idle timeout")
	}
	if st.HasInstance(0, comp) {
		t.Error("instance still present after removal")
	}
	if st.removeInstanceIfIdle(0, comp, 130) {
		t.Error("removal of absent instance reported true")
	}
}

func TestHasInstanceNilComponent(t *testing.T) {
	st := newTestState()
	if st.HasInstance(0, nil) {
		t.Error("HasInstance(nil) must be false (fully processed flows)")
	}
}

func TestInstanceCounts(t *testing.T) {
	st := newTestState()
	c1 := &Component{Name: "c1"}
	c2 := &Component{Name: "c2"}
	st.placeInstance(0, c1, 0)
	st.placeInstance(0, c2, 0)
	st.placeInstance(1, c1, 0)
	if st.InstanceCount(0) != 2 || st.InstanceCount(1) != 1 {
		t.Errorf("counts = %d,%d, want 2,1", st.InstanceCount(0), st.InstanceCount(1))
	}
	if st.TotalInstances() != 3 {
		t.Errorf("TotalInstances = %d, want 3", st.TotalInstances())
	}
}

// Property: the node ledger never reports negative usage and nodeFits is
// consistent with Free, across random alloc/release sequences.
func TestLedgerProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := newTestState()
		outstanding := 0.0
		for i := 0; i < 200; i++ {
			if rng.Float64() < 0.5 {
				amt := rng.Float64()
				if st.nodeFits(0, amt) {
					st.allocNode(0, amt)
					outstanding += amt
				}
			} else if outstanding > 0 {
				st.releaseNode(0, outstanding)
				outstanding = 0
			}
			if st.UsedNode(0) < 0 {
				return false
			}
			if st.UsedNode(0) > st.Graph().Node(0).Capacity+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	q.push(event{t: 5, kind: evTick})
	q.push(event{t: 1, kind: evTick})
	q.push(event{t: 3, kind: evTick})
	q.push(event{t: 3, kind: evGenArrival}) // same time: FIFO by sequence
	times := []float64{1, 3, 3, 5}
	kinds := []eventKind{evTick, evTick, evGenArrival, evTick}
	for i := range times {
		e := q.pop()
		if e.t != times[i] || e.kind != kinds[i] {
			t.Fatalf("pop %d = (t=%f kind=%d), want (t=%f kind=%d)", i, e.t, e.kind, times[i], kinds[i])
		}
	}
}

// Property: events always pop in non-decreasing time order.
func TestEventQueueMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q eventQueue
		for i := 0; i < 300; i++ {
			q.push(event{t: rng.Float64() * 100})
		}
		last := -1.0
		for q.Len() > 0 {
			e := q.pop()
			if e.t < last {
				return false
			}
			last = e.t
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDropCauseString(t *testing.T) {
	for c, want := range map[DropCause]string{
		DropNone:          "none",
		DropInvalidAction: "invalid-action",
		DropNodeCapacity:  "node-capacity",
		DropLinkCapacity:  "link-capacity",
		DropExpired:       "expired",
		DropCause(42):     "DropCause(42)",
	} {
		if got := c.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(c), got, want)
		}
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := newMetrics()
	if m.SuccessRatio() != 0 || m.AvgDelay() != 0 {
		t.Error("zero metrics must report zero ratios")
	}
	m.Arrived = 4
	m.Succeeded = 3
	m.Dropped = 1
	m.SumDelay = 30
	if got := m.SuccessRatio(); got != 0.75 {
		t.Errorf("SuccessRatio = %f, want 0.75", got)
	}
	if got := m.AvgDelay(); got != 10 {
		t.Errorf("AvgDelay = %f, want 10", got)
	}
	if m.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", m.Pending())
	}
	m.DropsBy[DropExpired] = 1
	c := m.Clone()
	c.DropsBy[DropExpired] = 99
	if m.DropsBy[DropExpired] != 1 {
		t.Error("Clone shares DropsBy map")
	}
}

func TestFlowHelpers(t *testing.T) {
	svc := testService(5)
	f := &Flow{Service: svc, Arrival: 10, Deadline: 100}
	if f.Processed() {
		t.Error("fresh flow reported processed")
	}
	if f.Current() != svc.Chain[0] {
		t.Error("Current != first component")
	}
	if got := f.Progress(); got != 0 {
		t.Errorf("Progress = %f, want 0", got)
	}
	f.CompIdx = 1
	if got := f.Progress(); got != 0.5 {
		t.Errorf("Progress = %f, want 0.5", got)
	}
	f.CompIdx = 2
	if !f.Processed() || f.Current() != nil {
		t.Error("fully traversed flow must be processed with nil Current")
	}
	if got := f.Remaining(60); got != 50 {
		t.Errorf("Remaining(60) = %f, want 50", got)
	}
}

func TestDelayQuantile(t *testing.T) {
	m := newMetrics()
	if m.DelayQuantile(0.5) != 0 {
		t.Error("quantile of empty delays must be 0")
	}
	m.Delays = []float64{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.9, 5}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := m.DelayQuantile(c.q); got != c.want {
			t.Errorf("DelayQuantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must stay unsorted (quantile works on a copy).
	if m.Delays[0] != 5 {
		t.Error("DelayQuantile mutated the delays slice")
	}
}

func TestCloneCopiesDelays(t *testing.T) {
	m := newMetrics()
	m.Delays = []float64{1, 2}
	c := m.Clone()
	c.Delays[0] = 99
	if m.Delays[0] != 1 {
		t.Error("Clone shares Delays slice")
	}
}
