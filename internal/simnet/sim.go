package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"distcoord/internal/graph"
)

// ArrivalProcess yields flow inter-arrival times; the traffic package
// provides implementations.
type ArrivalProcess interface {
	Next() float64
}

// Ingress attaches an arrival process to an ingress node.
type Ingress struct {
	Node     graph.NodeID
	Arrivals ArrivalProcess
}

// FlowTemplate fixes the per-flow parameters of generated flows (the base
// scenario uses unit rate, unit duration, deadline 100; Sec. V-A1).
type FlowTemplate struct {
	Rate     float64 // λ_f
	Duration float64 // δ_f
	Deadline float64 // τ_f
}

// WeightedService is one entry of a multi-service mix: flows request
// Service with probability proportional to Weight.
type WeightedService struct {
	Service *Service
	Weight  float64
}

// Config parameterizes one simulation run.
type Config struct {
	Graph *graph.Graph
	APSP  *graph.APSP // optional; computed from Graph when nil

	// Service is the single service all flows request. For multi-service
	// scenarios set Services instead (Service is then ignored).
	Service *Service
	// Services, when non-empty, defines a weighted service mix: each
	// generated flow samples its requested service from it
	// (deterministically from ServiceSeed).
	Services []WeightedService
	// ServiceSeed drives the service sampling for multi-service mixes.
	ServiceSeed int64

	Ingresses []Ingress
	Egress    graph.NodeID
	Template  FlowTemplate

	// Horizon T: flows are generated for t in [0, T).
	Horizon float64

	Coordinator Coordinator
	// Listener optionally observes simulation events in addition to any
	// FlowObserver capability of the coordinator (metrics collection,
	// chaos monitoring). Setting it to the coordinator itself is
	// deduplicated.
	Listener Listener

	// Faults is an optional schedule of perturbation events (node/link
	// outages, degradation, instance kills, surge arrivals), applied by
	// the event loop at their scheduled times. Build schedules with
	// internal/chaos for seed-derived, reproducible fault scenarios.
	Faults []Fault

	// Tracer, when non-nil, receives per-flow trace events (arrival,
	// decision, processing, forwarding, drop, completion) for offline
	// analysis. The hot path nil-checks it, so leaving it unset costs
	// nothing.
	Tracer FlowTracer

	// KeepStep is how long a fully processed flow waits when kept at a
	// node (action 0 on c_f = ∅) before the agent is queried again.
	// Defaults to 1 time step.
	KeepStep float64

	// MaxTime hard-stops the event loop; it defaults to
	// Horizon + 10·Deadline, enough for all generated flows to finish
	// or expire.
	MaxTime float64

	// MaxBatch enables batched decision resolution when > 1 and the
	// coordinator implements BatchDecider: decision events sharing one
	// event timestamp are gathered and resolved per node with up to
	// MaxBatch flows per DecideBatch call. 0 (the default) and 1 run the
	// plain sequential path; coordinators without the capability fall
	// back to it silently.
	MaxBatch int
}

// validate fills defaults and rejects malformed configurations.
func (c *Config) validate() error {
	if c.Graph == nil {
		return errors.New("simnet: Config.Graph is nil")
	}
	if len(c.Services) == 0 {
		if c.Service == nil {
			return errors.New("simnet: Config.Service is nil")
		}
		c.Services = []WeightedService{{Service: c.Service, Weight: 1}}
	}
	total := 0.0
	for i, ws := range c.Services {
		if ws.Service == nil {
			return fmt.Errorf("simnet: Services[%d].Service is nil", i)
		}
		if err := ws.Service.Validate(); err != nil {
			return err
		}
		if ws.Weight < 0 {
			return fmt.Errorf("simnet: Services[%d] has negative weight", i)
		}
		total += ws.Weight
	}
	if total <= 0 {
		return errors.New("simnet: service mix has zero total weight")
	}
	if c.Coordinator == nil {
		return errors.New("simnet: Config.Coordinator is nil")
	}
	if len(c.Ingresses) == 0 {
		return errors.New("simnet: no ingress nodes")
	}
	n := c.Graph.NumNodes()
	for _, in := range c.Ingresses {
		if int(in.Node) < 0 || int(in.Node) >= n {
			return fmt.Errorf("simnet: ingress node %d out of range", in.Node)
		}
		if in.Arrivals == nil {
			return fmt.Errorf("simnet: ingress %d has no arrival process", in.Node)
		}
	}
	if int(c.Egress) < 0 || int(c.Egress) >= n {
		return fmt.Errorf("simnet: egress node %d out of range", c.Egress)
	}
	if c.Horizon <= 0 {
		return errors.New("simnet: Horizon must be positive")
	}
	if c.Template.Rate <= 0 || c.Template.Duration <= 0 || c.Template.Deadline <= 0 {
		return errors.New("simnet: flow template fields must be positive")
	}
	if c.KeepStep <= 0 {
		c.KeepStep = 1
	}
	if c.MaxBatch < 0 {
		return errors.New("simnet: MaxBatch must be non-negative")
	}
	if c.MaxTime <= 0 {
		c.MaxTime = c.Horizon + 10*c.Template.Deadline
	}
	return validateFaults(c.Graph, c.Faults)
}

// Sim runs one simulation. Create with New, drive with Run.
type Sim struct {
	cfg     Config
	st      *State
	queue   eventQueue
	metrics *Metrics
	tracer  FlowTracer

	// Coordinator capabilities, discovered once at New by type assertion.
	ticker    Ticker
	resetter  Resetter
	topoObs   TopologyObserver
	listeners []Listener // Config.Listener plus the coordinator's FlowObserver capability, deduplicated
	// batcher is non-nil when Config.MaxBatch > 1 and the coordinator has
	// the BatchDecider capability.
	batcher *decisionBatcher

	nextID   int
	svcRng   *rand.Rand
	svcTotal float64
}

// New prepares a simulation run. The configured graph's capacities must
// already be assigned (Config.Graph is not modified). Optional coordinator
// capabilities (FlowObserver, Ticker, Resetter, TopologyObserver) are
// discovered here, once, by type assertion.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.APSP == nil {
		cfg.APSP = graph.NewAPSP(cfg.Graph)
	}
	s := &Sim{
		cfg:     cfg,
		st:      NewState(cfg.Graph, cfg.APSP),
		metrics: newMetrics(),
		tracer:  cfg.Tracer,
		svcRng:  rand.New(rand.NewSource(cfg.ServiceSeed)),
	}
	for _, ws := range cfg.Services {
		s.svcTotal += ws.Weight
	}
	if tk, ok := cfg.Coordinator.(Ticker); ok {
		if tk.Interval() <= 0 {
			return nil, fmt.Errorf("simnet: coordinator %q has non-positive tick interval", cfg.Coordinator.Name())
		}
		s.ticker = tk
	}
	if r, ok := cfg.Coordinator.(Resetter); ok {
		s.resetter = r
	}
	if to, ok := cfg.Coordinator.(TopologyObserver); ok {
		s.topoObs = to
	}
	if cfg.MaxBatch > 1 {
		if bd, ok := cfg.Coordinator.(BatchDecider); ok {
			s.batcher = newDecisionBatcher(bd, cfg.MaxBatch, cfg.Graph.NumNodes())
		}
	}
	if cfg.Listener != nil {
		s.listeners = append(s.listeners, cfg.Listener)
	}
	// A learning coordinator (FlowObserver capability) is auto-attached;
	// when the same value is also configured as Config.Listener it is
	// already in the slice and must not be delivered events twice.
	if l, ok := cfg.Coordinator.(Listener); ok && l != cfg.Listener {
		s.listeners = append(s.listeners, l)
	}
	return s, nil
}

// onAction delivers a coordinator decision outcome to all listeners.
func (s *Sim) onAction(f *Flow, v graph.NodeID, now float64, action int, res ActionResult) {
	for _, l := range s.listeners {
		l.OnAction(f, v, now, action, res)
	}
}

// onTraversed delivers a chain-progress event to all listeners.
func (s *Sim) onTraversed(f *Flow, v graph.NodeID, now float64) {
	for _, l := range s.listeners {
		l.OnTraversed(f, v, now)
	}
}

// onFlowEnd delivers a flow termination to all listeners.
func (s *Sim) onFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	for _, l := range s.listeners {
		l.OnFlowEnd(f, success, cause, now)
	}
}

// pickService samples a service from the configured mix.
func (s *Sim) pickService() *Service {
	if len(s.cfg.Services) == 1 {
		return s.cfg.Services[0].Service
	}
	u := s.svcRng.Float64() * s.svcTotal
	acc := 0.0
	for _, ws := range s.cfg.Services {
		acc += ws.Weight
		if u < acc {
			return ws.Service
		}
	}
	return s.cfg.Services[len(s.cfg.Services)-1].Service
}

// State exposes the live network state (used by tests and adapters).
func (s *Sim) State() *State { return s.st }

// Metrics returns the accumulated metrics.
func (s *Sim) Metrics() *Metrics { return s.metrics }

// Run executes the simulation to completion: flows are generated over
// [0, Horizon) and the event loop drains until every flow succeeded or
// dropped (bounded by MaxTime).
func (s *Sim) Run() (*Metrics, error) {
	if s.resetter != nil {
		s.resetter.Reset(s.st)
	}
	// Seed arrival generation, one generator event per ingress.
	for i, in := range s.cfg.Ingresses {
		first := in.Arrivals.Next()
		if first < s.cfg.Horizon {
			s.queue.push(event{t: first, kind: evGenArrival, ingress: i})
		}
	}
	// Seed coordinator ticks.
	if s.ticker != nil {
		s.queue.push(event{t: 0, kind: evTick})
	}
	// Schedule the fault injections. Pushing them in schedule order keeps
	// equal-time faults deterministically ordered via event sequencing.
	for i, ft := range s.cfg.Faults {
		s.queue.push(event{t: ft.Time, kind: evFault, ingress: i, link: -1})
	}

	for s.queue.Len() > 0 {
		e := s.queue.pop()
		if e.t > s.cfg.MaxTime {
			break
		}
		if e.t < s.st.now-capEps {
			return nil, fmt.Errorf("simnet: event time went backwards: %f < %f", e.t, s.st.now)
		}
		s.st.now = math.Max(s.st.now, e.t)
		if s.batcher != nil && joinable(e.kind) {
			// Gather the run of decision-bearing events at this timestamp
			// into one window, then resolve it with batched inference. Any
			// other event kind — or a later timestamp — ends the window.
			s.gatherDecision(e)
			for s.queue.Len() > 0 {
				h := s.queue.peek()
				if h.t != e.t || !joinable(h.kind) {
					break
				}
				s.gatherDecision(s.queue.pop())
			}
			s.batcher.resolve(s, e.t)
			continue
		}
		s.dispatch(e)
	}

	// Any flow still alive at MaxTime would be a leak; with the default
	// MaxTime this cannot happen, but surface it rather than hide it.
	if s.metrics.Pending() != 0 {
		return s.metrics, fmt.Errorf("simnet: %d flows still pending at MaxTime", s.metrics.Pending())
	}
	return s.metrics, nil
}

func (s *Sim) dispatch(e event) {
	switch e.kind {
	case evGenArrival:
		s.generateFlow(e)
	case evHeadArrive:
		s.handleFlowAt(e.flow, e.node, e.t)
	case evProcDone:
		s.finishProcessing(e)
	case evReleaseNode:
		s.st.releaseNode(e.node, e.amount)
	case evReleaseLink:
		s.st.releaseLink(e.link, e.amount)
	case evIdleCheck:
		s.st.removeInstanceIfIdle(e.node, e.comp, e.t)
	case evTick:
		s.ticker.Tick(s.st, e.t)
		next := e.t + s.ticker.Interval()
		if next <= s.cfg.Horizon {
			s.queue.push(event{t: next, kind: evTick})
		}
	case evFault:
		s.applyFault(s.cfg.Faults[e.ingress], e.t)
	}
}

// generateFlow creates the next flow at ingress e.ingress and schedules
// the subsequent arrival.
func (s *Sim) generateFlow(e event) {
	f := s.newFlow(e)
	s.handleFlowAt(f, f.Ingress, e.t)
	s.scheduleNextArrival(e)
}

// newFlow instantiates the flow of arrival event e and records it.
func (s *Sim) newFlow(e event) *Flow {
	in := s.cfg.Ingresses[e.ingress]
	f := &Flow{
		ID:       s.nextID,
		Service:  s.pickService(),
		Ingress:  in.Node,
		Egress:   s.cfg.Egress,
		Rate:     s.cfg.Template.Rate,
		Duration: s.cfg.Template.Duration,
		Deadline: s.cfg.Template.Deadline,
		Arrival:  e.t,
	}
	s.nextID++
	s.metrics.Arrived++
	s.trace(TraceArrival, f, in.Node, e.t, -1, -1, DropNone)
	return f
}

// scheduleNextArrival draws the next inter-arrival gap of e's ingress
// and schedules the following generation event.
func (s *Sim) scheduleNextArrival(e event) {
	next := e.t + s.cfg.Ingresses[e.ingress].Arrivals.Next()
	if next < s.cfg.Horizon {
		s.queue.push(event{t: next, kind: evGenArrival, ingress: e.ingress})
	}
}

// handleFlowAt is the sequential decision point: flow f's head is at
// node v at time now. It checks expiry and completion, then queries the
// coordinator and applies the chosen action.
func (s *Sim) handleFlowAt(f *Flow, v graph.NodeID, now float64) {
	if !s.precheck(f, v, now) {
		return
	}
	action := s.cfg.Coordinator.Decide(s.st, f, v, now)
	s.applyDecision(f, v, now, action)
}

// gatherDecision runs the pre-decision part of a decision-bearing event
// and enqueues the flow into the current gather window. It mirrors the
// sequential handlers exactly, except that the coordinator query and
// action application are deferred to the window's batched resolve — and
// that a burst arrival's follow-up generation event is scheduled before
// (not after) the decision applies, so same-time arrivals can join the
// window.
func (s *Sim) gatherDecision(e event) {
	switch e.kind {
	case evGenArrival:
		f := s.newFlow(e)
		s.scheduleNextArrival(e)
		if s.precheck(f, f.Ingress, e.t) {
			s.batcher.add(f, f.Ingress)
		}
	case evHeadArrive:
		if s.precheck(e.flow, e.node, e.t) {
			s.batcher.add(e.flow, e.node)
		}
	case evProcDone:
		f := e.flow
		if f.done {
			return
		}
		f.CompIdx++
		s.onTraversed(f, e.node, e.t)
		if s.precheck(f, e.node, e.t) {
			s.batcher.add(f, e.node)
		}
	}
}

// precheck applies the checks that precede any coordinator query and
// reports whether flow f still needs a decision at v. A false return
// means the flow's fate was already settled (dropped, expired,
// completed, or a stale event for a finished flow).
func (s *Sim) precheck(f *Flow, v graph.NodeID, now float64) bool {
	if f.done {
		return false
	}
	if !s.st.NodeAlive(v) {
		// The head reached a crashed node: flows in transit when the node
		// went down fail on arrival (unless the node recovered first).
		s.drop(f, v, DropNodeFailure, now)
		return false
	}
	if f.Remaining(now) <= capEps {
		s.drop(f, v, DropExpired, now)
		return false
	}
	if f.Processed() && v == f.Egress {
		s.complete(f, now)
		return false
	}
	return true
}

// applyDecision records a coordinator decision for flow f at node v and
// applies it against live state.
func (s *Sim) applyDecision(f *Flow, v graph.NodeID, now float64, action int) {
	f.Decisions++
	s.metrics.Decisions++
	s.trace(TraceDecision, f, v, now, action, -1, DropNone)

	if action == 0 {
		s.processLocally(f, v, now)
		return
	}
	s.forward(f, v, action, now)
}

// processLocally applies action 0: process the requested component at v,
// or, for a fully processed flow, keep it for one time step.
func (s *Sim) processLocally(f *Flow, v graph.NodeID, now float64) {
	if f.Processed() {
		// Keeping a fully processed flow wastes deadline budget and
		// incurs the −1/D_G penalty at the listener (Sec. IV-B3).
		s.metrics.Keeps++
		s.trace(TraceKeep, f, v, now, 0, -1, DropNone)
		s.onAction(f, v, now, 0, ActionResult{Kind: ActionKept})
		s.queue.push(event{t: now + s.cfg.KeepStep, kind: evHeadArrive, flow: f, node: v, link: -1})
		return
	}

	comp := f.Current()
	need := comp.Resource(f.Rate)
	if !s.st.nodeFits(v, need) {
		s.onAction(f, v, now, 0, ActionResult{Kind: ActionDropped, Drop: DropNodeCapacity})
		s.drop(f, v, DropNodeCapacity, now)
		return
	}

	inst, _ := s.st.placeInstance(v, comp, now)
	procStart := math.Max(now, inst.ReadyAt)
	procEnd := procStart + comp.ProcDelay
	release := procEnd + f.Duration

	s.st.allocNode(v, need)
	s.queue.push(event{t: release, kind: evReleaseNode, node: v, amount: need})

	if release > inst.BusyUntil {
		inst.BusyUntil = release
	}
	s.queue.push(event{t: release + comp.IdleTimeout, kind: evIdleCheck, node: v, comp: comp})
	s.queue.push(event{t: procEnd, kind: evProcDone, flow: f, node: v})

	s.metrics.Processings++
	s.traceWait(TraceProcess, f, v, now, 0, -1, DropNone, procStart-now)
	s.onAction(f, v, now, 0, ActionResult{Kind: ActionProcessed})
}

// finishProcessing advances the flow to its next chain component and
// re-enters the decision loop at the same node.
func (s *Sim) finishProcessing(e event) {
	f := e.flow
	if f.done {
		return
	}
	f.CompIdx++
	s.onTraversed(f, e.node, e.t)
	s.handleFlowAt(f, e.node, e.t)
}

// forward applies action a > 0: send the flow to v's a-th neighbor.
func (s *Sim) forward(f *Flow, v graph.NodeID, a int, now float64) {
	neighbors := s.cfg.Graph.Neighbors(v)
	if a < 0 || a > len(neighbors) {
		s.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropInvalidAction})
		s.drop(f, v, DropInvalidAction, now)
		return
	}
	ad := neighbors[a-1]
	link := s.cfg.Graph.Link(ad.Link)
	if !s.st.LinkAlive(ad.Link) {
		s.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropLinkFailure})
		s.drop(f, v, DropLinkFailure, now)
		return
	}
	if !s.st.linkFits(ad.Link, f.Rate) {
		s.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropLinkCapacity})
		s.drop(f, v, DropLinkCapacity, now)
		return
	}

	s.st.allocLink(ad.Link, f.Rate)
	// The stream consumes the link's data rate while it is being
	// injected (its duration δ_f); propagation d_l only delays the head
	// and does not occupy capacity. The head-arrival event is tagged with
	// the transit link so a link failure can drop it mid-flight.
	s.queue.push(event{t: now + f.Duration, kind: evReleaseLink, link: ad.Link, amount: f.Rate})
	s.queue.push(event{t: now + link.Delay, kind: evHeadArrive, flow: f, node: ad.Neighbor, link: ad.Link})

	f.Hops++
	s.metrics.Forwards++
	s.trace(TraceForward, f, v, now, a, ad.Link, DropNone)
	s.onAction(f, v, now, a, ActionResult{Kind: ActionForwarded, Link: ad.Link})
}

// complete records a successful flow.
func (s *Sim) complete(f *Flow, now float64) {
	f.done = true
	s.metrics.Succeeded++
	d := now - f.Arrival
	s.metrics.SumDelay += d
	s.metrics.Delays = append(s.metrics.Delays, d)
	if d > s.metrics.MaxDelay {
		s.metrics.MaxDelay = d
	}
	s.trace(TraceComplete, f, f.Egress, now, -1, -1, DropNone)
	s.onFlowEnd(f, true, DropNone, now)
}

// drop records a flow dropped at node v.
func (s *Sim) drop(f *Flow, v graph.NodeID, cause DropCause, now float64) {
	f.done = true
	s.metrics.Dropped++
	s.metrics.DropsBy[cause]++
	s.trace(TraceDrop, f, v, now, -1, -1, cause)
	s.onFlowEnd(f, false, cause, now)
}
