package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"distcoord/internal/graph"
)

// ArrivalProcess yields flow inter-arrival times; the traffic package
// provides implementations.
type ArrivalProcess interface {
	Next() float64
}

// Ingress attaches an arrival process to an ingress node.
type Ingress struct {
	Node     graph.NodeID
	Arrivals ArrivalProcess
	// Egress, when non-nil, overrides Config.Egress for the flows
	// generated at this ingress. Per-ingress egresses let workloads form
	// localized ingress/egress pairs — the partition-closed traffic shape
	// sharded runs scale best on.
	Egress *graph.NodeID
}

// FlowTemplate fixes the per-flow parameters of generated flows (the base
// scenario uses unit rate, unit duration, deadline 100; Sec. V-A1).
type FlowTemplate struct {
	Rate     float64 // λ_f
	Duration float64 // δ_f
	Deadline float64 // τ_f
}

// WeightedService is one entry of a multi-service mix: flows request
// Service with probability proportional to Weight.
type WeightedService struct {
	Service *Service
	Weight  float64
}

// Config parameterizes one simulation run.
type Config struct {
	Graph *graph.Graph
	APSP  *graph.APSP // optional; computed from Graph when nil

	// Service is the single service all flows request. For multi-service
	// scenarios set Services instead (Service is then ignored).
	Service *Service
	// Services, when non-empty, defines a weighted service mix: each
	// generated flow samples its requested service from it
	// (deterministically from ServiceSeed).
	Services []WeightedService
	// ServiceSeed drives the service sampling for multi-service mixes.
	ServiceSeed int64

	Ingresses []Ingress
	Egress    graph.NodeID
	Template  FlowTemplate

	// Horizon T: flows are generated for t in [0, T).
	Horizon float64

	Coordinator Coordinator
	// Listener optionally observes simulation events in addition to any
	// FlowObserver capability of the coordinator (metrics collection,
	// chaos monitoring). Setting it to the coordinator itself is
	// deduplicated.
	Listener Listener

	// Faults is an optional schedule of perturbation events (node/link
	// outages, degradation, instance kills, surge arrivals), applied by
	// the event loop at their scheduled times. Build schedules with
	// internal/chaos for seed-derived, reproducible fault scenarios.
	Faults []Fault

	// Tracer, when non-nil, receives per-flow trace events (arrival,
	// decision, processing, forwarding, drop, completion) for offline
	// analysis. The hot path nil-checks it, so leaving it unset costs
	// nothing.
	Tracer FlowTracer

	// KeepStep is how long a fully processed flow waits when kept at a
	// node (action 0 on c_f = ∅) before the agent is queried again.
	// Defaults to 1 time step.
	KeepStep float64

	// MaxTime hard-stops the event loop; it defaults to
	// Horizon + 10·Deadline, enough for all generated flows to finish
	// or expire.
	MaxTime float64

	// MaxBatch enables batched decision resolution when > 1 and the
	// coordinator implements BatchDecider: decision events sharing one
	// event timestamp are gathered and resolved per node with up to
	// MaxBatch flows per DecideBatch call. 0 (the default) and 1 run the
	// plain sequential path; coordinators without the capability fall
	// back to it silently.
	MaxBatch int

	// Shards splits the event loop into this many concurrently simulated
	// node regions synchronized by conservative lookahead epochs (see
	// shard.go for the model and its consistency guarantees). 0 and 1 run
	// the single-threaded engine, byte-identically to a build without
	// sharding. Multi-shard runs require a ShardableCoordinator and
	// strictly positive delays on every shard-crossing link; they are
	// deterministic for a fixed (Config, Shards) pair.
	Shards int
	// Partition maps every node to a shard in [0, Shards); nil derives a
	// locality-preserving partition via graph.PartitionRegions. Ignored
	// when Shards <= 1.
	Partition []int
	// ShardObserver, when non-nil, receives per-shard progress (epoch,
	// heap depth, handoff count) at every epoch barrier of a multi-shard
	// run. Ignored when Shards <= 1.
	ShardObserver ShardObserver
}

// validate fills defaults and rejects malformed configurations.
func (c *Config) validate() error {
	if c.Graph == nil {
		return errors.New("simnet: Config.Graph is nil")
	}
	if len(c.Services) == 0 {
		if c.Service == nil {
			return errors.New("simnet: Config.Service is nil")
		}
		c.Services = []WeightedService{{Service: c.Service, Weight: 1}}
	}
	total := 0.0
	for i, ws := range c.Services {
		if ws.Service == nil {
			return fmt.Errorf("simnet: Services[%d].Service is nil", i)
		}
		if err := ws.Service.Validate(); err != nil {
			return err
		}
		if ws.Weight < 0 {
			return fmt.Errorf("simnet: Services[%d] has negative weight", i)
		}
		total += ws.Weight
	}
	if total <= 0 {
		return errors.New("simnet: service mix has zero total weight")
	}
	if c.Coordinator == nil {
		return errors.New("simnet: Config.Coordinator is nil")
	}
	if len(c.Ingresses) == 0 {
		return errors.New("simnet: no ingress nodes")
	}
	n := c.Graph.NumNodes()
	for _, in := range c.Ingresses {
		if int(in.Node) < 0 || int(in.Node) >= n {
			return fmt.Errorf("simnet: ingress node %d out of range", in.Node)
		}
		if in.Arrivals == nil {
			return fmt.Errorf("simnet: ingress %d has no arrival process", in.Node)
		}
		if in.Egress != nil && (int(*in.Egress) < 0 || int(*in.Egress) >= n) {
			return fmt.Errorf("simnet: ingress %d egress %d out of range", in.Node, *in.Egress)
		}
	}
	if int(c.Egress) < 0 || int(c.Egress) >= n {
		return fmt.Errorf("simnet: egress node %d out of range", c.Egress)
	}
	if c.Horizon <= 0 {
		return errors.New("simnet: Horizon must be positive")
	}
	if c.Template.Rate <= 0 || c.Template.Duration <= 0 || c.Template.Deadline <= 0 {
		return errors.New("simnet: flow template fields must be positive")
	}
	if c.KeepStep <= 0 {
		c.KeepStep = 1
	}
	if c.MaxBatch < 0 {
		return errors.New("simnet: MaxBatch must be non-negative")
	}
	if c.Shards < 0 {
		return errors.New("simnet: Shards must be non-negative")
	}
	if c.Shards > 1 {
		if c.Shards > n {
			return fmt.Errorf("simnet: Shards=%d exceeds the %d-node topology", c.Shards, n)
		}
		if c.Partition != nil {
			if len(c.Partition) != n {
				return fmt.Errorf("simnet: Partition has %d entries for %d nodes", len(c.Partition), n)
			}
			for v, p := range c.Partition {
				if p < 0 || p >= c.Shards {
					return fmt.Errorf("simnet: Partition[%d]=%d outside [0,%d)", v, p, c.Shards)
				}
			}
		}
	}
	if c.MaxTime <= 0 {
		c.MaxTime = c.Horizon + 10*c.Template.Deadline
	}
	return validateFaults(c.Graph, c.Faults)
}

// Sim runs one simulation. Create with New, drive with Run.
type Sim struct {
	cfg Config

	// execs holds one event-loop execution context per shard;
	// single-shard runs have exactly one.
	execs []*exec

	// Sharded-run metadata, populated by initShards (see shard.go); all
	// nil/zero in single-shard runs.
	shardOf   []int32        // node → owning shard
	lookahead float64        // epoch window: min delay over shard-crossing links
	boundary  []boundaryNode // nodes visible across shards, synced at epoch barriers
	traceBufs []*traceBuffer // per-shard trace buffers, merged after the run
}

// exec is one event-loop execution context: the entire simulation in
// single-shard mode, or one node region of a sharded run. Everything an
// exec touches while processing events is exec-local — its own event
// heap, state copy, metrics, RNG streams, and batcher — so shards run
// without locks; cross-shard interaction happens only through the
// outbox/boundary synchronization at epoch barriers (shard.go).
type exec struct {
	sim *Sim
	id  int

	st      *State
	queue   eventQueue
	metrics *Metrics
	tracer  FlowTracer

	// Coordinator capabilities, discovered once at construction by type
	// assertion (for sharded runs: on this shard's coordinator).
	coordinator Coordinator
	ticker      Ticker
	resetter    Resetter
	topoObs     TopologyObserver
	listeners   []Listener // Config.Listener plus the coordinator's FlowObserver capability, deduplicated
	// batcher is non-nil when Config.MaxBatch > 1 and the coordinator has
	// the BatchDecider capability.
	batcher *decisionBatcher
	// timing is the coordinator's DecisionTimer capability; consulted only
	// while a tracer is installed (see traceDecision).
	timing DecisionTimer

	nextID   int
	idStride int // flow IDs are striped across shards: shard i issues i, i+S, i+2S, ...
	svcRng   *rand.Rand
	svcTotal float64

	// Sharded-mode fields; nil/zero in single-shard runs.
	outbox   [][]event // per destination shard: boundary-crossing head arrivals, in send order
	handoffs int       // cumulative cross-shard handoffs sent
	err      error     // epoch execution error, collected at the barrier
}

// New prepares a simulation run. The configured graph's capacities must
// already be assigned (Config.Graph is not modified). Optional coordinator
// capabilities (FlowObserver, Ticker, Resetter, TopologyObserver) are
// discovered here, once, by type assertion.
func New(cfg Config) (*Sim, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.APSP == nil {
		cfg.APSP = graph.NewAPSP(cfg.Graph)
	}
	s := &Sim{cfg: cfg}
	if cfg.Shards > 1 {
		if err := s.initShards(); err != nil {
			return nil, err
		}
		return s, nil
	}
	x, err := s.newExec(0, cfg.Coordinator, cfg.Tracer, cfg.Listener)
	if err != nil {
		return nil, err
	}
	x.idStride = 1
	x.svcRng = rand.New(rand.NewSource(cfg.ServiceSeed))
	s.execs = []*exec{x}
	return s, nil
}

// newExec builds one execution context around coordinator c, resolving
// its optional capabilities through the Capabilities seam.
func (s *Sim) newExec(id int, c Coordinator, tracer FlowTracer, listener Listener) (*exec, error) {
	x := &exec{
		sim:         s,
		id:          id,
		st:          NewState(s.cfg.Graph, s.cfg.APSP),
		metrics:     newMetrics(),
		tracer:      tracer,
		coordinator: c,
	}
	for _, ws := range s.cfg.Services {
		x.svcTotal += ws.Weight
	}
	caps := Capabilities(c)
	if caps.Ticker != nil {
		if caps.Ticker.Interval() <= 0 {
			return nil, fmt.Errorf("simnet: coordinator %q has non-positive tick interval", c.Name())
		}
		x.ticker = caps.Ticker
	}
	x.resetter = caps.Resetter
	x.topoObs = caps.Topology
	x.timing = caps.Timing
	if s.cfg.MaxBatch > 1 && caps.Batch != nil {
		x.batcher = newDecisionBatcher(caps.Batch, s.cfg.MaxBatch, s.cfg.Graph.NumNodes())
	}
	if listener != nil {
		x.listeners = append(x.listeners, listener)
	}
	// A learning coordinator (FlowObserver capability) is auto-attached;
	// when the same value is also configured as Config.Listener it is
	// already in the slice and must not be delivered events twice. The
	// second comparison covers sharded runs, where the configured
	// listener arrives wrapped for locking.
	if l := caps.Flow; l != nil && Listener(l) != listener && Listener(l) != s.cfg.Listener {
		x.listeners = append(x.listeners, l)
	}
	return x, nil
}

// onAction delivers a coordinator decision outcome to all listeners.
func (x *exec) onAction(f *Flow, v graph.NodeID, now float64, action int, res ActionResult) {
	for _, l := range x.listeners {
		l.OnAction(f, v, now, action, res)
	}
}

// onTraversed delivers a chain-progress event to all listeners.
func (x *exec) onTraversed(f *Flow, v graph.NodeID, now float64) {
	for _, l := range x.listeners {
		l.OnTraversed(f, v, now)
	}
}

// onFlowEnd delivers a flow termination to all listeners.
func (x *exec) onFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	for _, l := range x.listeners {
		l.OnFlowEnd(f, success, cause, now)
	}
}

// pickService samples a service from the configured mix.
func (x *exec) pickService() *Service {
	if len(x.sim.cfg.Services) == 1 {
		return x.sim.cfg.Services[0].Service
	}
	u := x.svcRng.Float64() * x.svcTotal
	acc := 0.0
	for _, ws := range x.sim.cfg.Services {
		acc += ws.Weight
		if u < acc {
			return ws.Service
		}
	}
	return x.sim.cfg.Services[len(x.sim.cfg.Services)-1].Service
}

// State exposes the live network state (used by tests and adapters). For
// multi-shard runs it returns shard 0's view; per-shard node ledgers are
// authoritative only for the nodes each shard owns.
func (s *Sim) State() *State { return s.execs[0].st }

// Metrics returns the accumulated metrics (merged across shards for
// multi-shard runs).
func (s *Sim) Metrics() *Metrics { return s.mergeMetrics() }

// Run executes the simulation to completion: flows are generated over
// [0, Horizon) and the event loop drains until every flow succeeded or
// dropped (bounded by MaxTime).
func (s *Sim) Run() (*Metrics, error) {
	if len(s.execs) > 1 {
		return s.runSharded()
	}
	s.start()
	x := s.execs[0]
	if err := x.runEpoch(math.Inf(1)); err != nil {
		return nil, err
	}
	// Any flow still alive at MaxTime would be a leak; with the default
	// MaxTime this cannot happen, but surface it rather than hide it.
	if x.metrics.Pending() != 0 {
		return x.metrics, fmt.Errorf("simnet: %d flows still pending at MaxTime", x.metrics.Pending())
	}
	return x.metrics, nil
}

// start resets per-run coordinator state and seeds the initial events:
// the first arrival of every ingress, the coordinator ticks, and the
// fault schedule. In sharded mode arrivals and ticks go to their owning
// shard while every shard receives the full fault schedule (liveness
// changes replicate everywhere; see exec.applyFault for the ownership
// split of fault side effects).
func (s *Sim) start() {
	for _, x := range s.execs {
		if x.resetter != nil {
			x.resetter.Reset(x.st)
		}
	}
	for i, in := range s.cfg.Ingresses {
		x := s.execAt(in.Node)
		first := in.Arrivals.Next()
		if first < s.cfg.Horizon {
			x.queue.push(event{t: first, kind: evGenArrival, ingress: i})
		}
	}
	for _, x := range s.execs {
		if x.ticker != nil {
			x.queue.push(event{t: 0, kind: evTick})
		}
	}
	// Schedule the fault injections. Pushing them in schedule order keeps
	// equal-time faults deterministically ordered via event sequencing.
	for i, ft := range s.cfg.Faults {
		for _, x := range s.execs {
			x.queue.push(event{t: ft.Time, kind: evFault, ingress: i, link: -1})
		}
	}
}

// execAt returns the execution context owning node v.
func (s *Sim) execAt(v graph.NodeID) *exec {
	if s.shardOf == nil {
		return s.execs[0]
	}
	return s.execs[s.shardOf[v]]
}

// runEpoch drains x's event queue up to (but excluding) time end,
// honoring MaxTime: the first event at t >= end stays queued for the
// next epoch. Single-shard runs pass end = +Inf, making this exactly the
// sequential event loop.
func (x *exec) runEpoch(end float64) error {
	maxTime := x.sim.cfg.MaxTime
	for x.queue.Len() > 0 {
		h := x.queue.peek()
		if h.t >= end || h.t > maxTime {
			return nil
		}
		e := x.queue.pop()
		if e.t < x.st.now-capEps {
			return fmt.Errorf("simnet: event time went backwards: %f < %f", e.t, x.st.now)
		}
		x.st.now = math.Max(x.st.now, e.t)
		if x.batcher != nil && joinable(e.kind) {
			// Gather the run of decision-bearing events at this timestamp
			// into one window, then resolve it with batched inference. Any
			// other event kind — or a later timestamp — ends the window.
			x.gatherDecision(e)
			for x.queue.Len() > 0 {
				h := x.queue.peek()
				if h.t != e.t || !joinable(h.kind) {
					break
				}
				x.gatherDecision(x.queue.pop())
			}
			x.batcher.resolve(x, e.t)
			continue
		}
		x.dispatch(e)
	}
	return nil
}

func (x *exec) dispatch(e event) {
	switch e.kind {
	case evGenArrival:
		x.generateFlow(e)
	case evHeadArrive:
		x.handleFlowAt(e.flow, e.node, e.t)
	case evProcDone:
		x.finishProcessing(e)
	case evReleaseNode:
		x.st.releaseNode(e.node, e.amount)
	case evReleaseLink:
		x.st.releaseLink(e.link, e.amount)
	case evIdleCheck:
		x.st.removeInstanceIfIdle(e.node, e.comp, e.t)
	case evTick:
		x.ticker.Tick(x.st, e.t)
		next := e.t + x.ticker.Interval()
		if next <= x.sim.cfg.Horizon {
			x.queue.push(event{t: next, kind: evTick})
		}
	case evFault:
		x.applyFault(x.sim.cfg.Faults[e.ingress], e.t)
	}
}

// generateFlow creates the next flow at ingress e.ingress and schedules
// the subsequent arrival.
func (x *exec) generateFlow(e event) {
	f := x.newFlow(e)
	x.handleFlowAt(f, f.Ingress, e.t)
	x.scheduleNextArrival(e)
}

// newFlow instantiates the flow of arrival event e and records it.
func (x *exec) newFlow(e event) *Flow {
	in := x.sim.cfg.Ingresses[e.ingress]
	egress := x.sim.cfg.Egress
	if in.Egress != nil {
		egress = *in.Egress
	}
	f := &Flow{
		ID:       x.nextID,
		Service:  x.pickService(),
		Ingress:  in.Node,
		Egress:   egress,
		Rate:     x.sim.cfg.Template.Rate,
		Duration: x.sim.cfg.Template.Duration,
		Deadline: x.sim.cfg.Template.Deadline,
		Arrival:  e.t,
	}
	x.nextID += x.idStride
	x.metrics.Arrived++
	x.trace(TraceArrival, f, in.Node, e.t, -1, -1, DropNone)
	return f
}

// scheduleNextArrival draws the next inter-arrival gap of e's ingress
// and schedules the following generation event.
func (x *exec) scheduleNextArrival(e event) {
	next := e.t + x.sim.cfg.Ingresses[e.ingress].Arrivals.Next()
	if next < x.sim.cfg.Horizon {
		x.queue.push(event{t: next, kind: evGenArrival, ingress: e.ingress})
	}
}

// handleFlowAt is the sequential decision point: flow f's head is at
// node v at time now. It checks expiry and completion, then queries the
// coordinator and applies the chosen action.
func (x *exec) handleFlowAt(f *Flow, v graph.NodeID, now float64) {
	if !x.precheck(f, v, now) {
		return
	}
	action := x.coordinator.Decide(x.st, f, v, now)
	x.applyDecision(f, v, now, action)
}

// gatherDecision runs the pre-decision part of a decision-bearing event
// and enqueues the flow into the current gather window. It mirrors the
// sequential handlers exactly, except that the coordinator query and
// action application are deferred to the window's batched resolve — and
// that a burst arrival's follow-up generation event is scheduled before
// (not after) the decision applies, so same-time arrivals can join the
// window.
func (x *exec) gatherDecision(e event) {
	switch e.kind {
	case evGenArrival:
		f := x.newFlow(e)
		x.scheduleNextArrival(e)
		if x.precheck(f, f.Ingress, e.t) {
			x.batcher.add(f, f.Ingress)
		}
	case evHeadArrive:
		if x.precheck(e.flow, e.node, e.t) {
			x.batcher.add(e.flow, e.node)
		}
	case evProcDone:
		f := e.flow
		if f.done {
			return
		}
		f.CompIdx++
		x.onTraversed(f, e.node, e.t)
		if x.precheck(f, e.node, e.t) {
			x.batcher.add(f, e.node)
		}
	}
}

// precheck applies the checks that precede any coordinator query and
// reports whether flow f still needs a decision at v. A false return
// means the flow's fate was already settled (dropped, expired,
// completed, or a stale event for a finished flow).
func (x *exec) precheck(f *Flow, v graph.NodeID, now float64) bool {
	if f.done {
		return false
	}
	if !x.st.NodeAlive(v) {
		// The head reached a crashed node: flows in transit when the node
		// went down fail on arrival (unless the node recovered first).
		x.drop(f, v, DropNodeFailure, now)
		return false
	}
	if f.Remaining(now) <= capEps {
		x.drop(f, v, DropExpired, now)
		return false
	}
	if f.Processed() && v == f.Egress {
		x.complete(f, now)
		return false
	}
	return true
}

// applyDecision records a coordinator decision for flow f at node v and
// applies it against live state.
func (x *exec) applyDecision(f *Flow, v graph.NodeID, now float64, action int) {
	f.Decisions++
	x.metrics.Decisions++
	x.traceDecision(f, v, now, action)

	if action == 0 {
		x.processLocally(f, v, now)
		return
	}
	x.forward(f, v, action, now)
}

// processLocally applies action 0: process the requested component at v,
// or, for a fully processed flow, keep it for one time step.
func (x *exec) processLocally(f *Flow, v graph.NodeID, now float64) {
	if f.Processed() {
		// Keeping a fully processed flow wastes deadline budget and
		// incurs the −1/D_G penalty at the listener (Sec. IV-B3).
		x.metrics.Keeps++
		x.trace(TraceKeep, f, v, now, 0, -1, DropNone)
		x.onAction(f, v, now, 0, ActionResult{Kind: ActionKept})
		x.queue.push(event{t: now + x.sim.cfg.KeepStep, kind: evHeadArrive, flow: f, node: v, link: -1})
		return
	}

	comp := f.Current()
	need := comp.Resource(f.Rate)
	if !x.st.nodeFits(v, need) {
		x.onAction(f, v, now, 0, ActionResult{Kind: ActionDropped, Drop: DropNodeCapacity})
		x.drop(f, v, DropNodeCapacity, now)
		return
	}

	inst, _ := x.st.placeInstance(v, comp, now)
	procStart := math.Max(now, inst.ReadyAt)
	procEnd := procStart + comp.ProcDelay
	release := procEnd + f.Duration

	x.st.allocNode(v, need)
	x.queue.push(event{t: release, kind: evReleaseNode, node: v, amount: need})

	if release > inst.BusyUntil {
		inst.BusyUntil = release
	}
	x.queue.push(event{t: release + comp.IdleTimeout, kind: evIdleCheck, node: v, comp: comp})
	x.queue.push(event{t: procEnd, kind: evProcDone, flow: f, node: v})

	x.metrics.Processings++
	x.traceWait(TraceProcess, f, v, now, 0, -1, DropNone, procStart-now)
	x.onAction(f, v, now, 0, ActionResult{Kind: ActionProcessed})
}

// finishProcessing advances the flow to its next chain component and
// re-enters the decision loop at the same node.
func (x *exec) finishProcessing(e event) {
	f := e.flow
	if f.done {
		return
	}
	f.CompIdx++
	x.onTraversed(f, e.node, e.t)
	x.handleFlowAt(f, e.node, e.t)
}

// forward applies action a > 0: send the flow to v's a-th neighbor. When
// the neighbor belongs to another shard, the head arrival goes into that
// shard's mailbox instead of the local queue; conservative lookahead
// guarantees it arrives no earlier than the next epoch boundary.
func (x *exec) forward(f *Flow, v graph.NodeID, a int, now float64) {
	neighbors := x.sim.cfg.Graph.Neighbors(v)
	if a < 0 || a > len(neighbors) {
		x.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropInvalidAction})
		x.drop(f, v, DropInvalidAction, now)
		return
	}
	ad := neighbors[a-1]
	link := x.sim.cfg.Graph.Link(ad.Link)
	if !x.st.LinkAlive(ad.Link) {
		x.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropLinkFailure})
		x.drop(f, v, DropLinkFailure, now)
		return
	}
	if !x.st.linkFits(ad.Link, f.Rate) {
		x.onAction(f, v, now, a, ActionResult{Kind: ActionDropped, Drop: DropLinkCapacity})
		x.drop(f, v, DropLinkCapacity, now)
		return
	}

	x.st.allocLink(ad.Link, f.Rate)
	// The stream consumes the link's data rate while it is being
	// injected (its duration δ_f); propagation d_l only delays the head
	// and does not occupy capacity. The head-arrival event is tagged with
	// the transit link so a link failure can drop it mid-flight.
	x.queue.push(event{t: now + f.Duration, kind: evReleaseLink, link: ad.Link, amount: f.Rate})
	arrive := event{t: now + link.Delay, kind: evHeadArrive, flow: f, node: ad.Neighbor, link: ad.Link}
	if so := x.sim.shardOf; so != nil && so[ad.Neighbor] != int32(x.id) {
		x.outbox[so[ad.Neighbor]] = append(x.outbox[so[ad.Neighbor]], arrive)
		x.handoffs++
	} else {
		x.queue.push(arrive)
	}

	f.Hops++
	x.metrics.Forwards++
	x.trace(TraceForward, f, v, now, a, ad.Link, DropNone)
	x.onAction(f, v, now, a, ActionResult{Kind: ActionForwarded, Link: ad.Link})
}

// complete records a successful flow.
func (x *exec) complete(f *Flow, now float64) {
	f.done = true
	x.metrics.Succeeded++
	d := now - f.Arrival
	x.metrics.SumDelay += d
	x.metrics.Delays = append(x.metrics.Delays, d)
	if d > x.metrics.MaxDelay {
		x.metrics.MaxDelay = d
	}
	x.trace(TraceComplete, f, f.Egress, now, -1, -1, DropNone)
	x.onFlowEnd(f, true, DropNone, now)
}

// drop records a flow dropped at node v.
func (x *exec) drop(f *Flow, v graph.NodeID, cause DropCause, now float64) {
	f.done = true
	x.metrics.Dropped++
	x.metrics.DropsBy[cause]++
	x.trace(TraceDrop, f, v, now, -1, -1, cause)
	x.onFlowEnd(f, false, cause, now)
}
