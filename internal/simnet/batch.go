package simnet

import (
	"distcoord/internal/graph"
)

// BatchDecider is an optional Coordinator capability for batched
// inference: resolve the decisions of several flows pending at the same
// node and event time with one call. Implementations must fill
// actions[i] with the decision for flows[i], resolve flows in slice
// order, and draw any per-node randomness in that same order, so that a
// batch of one is indistinguishable from a plain Decide call.
//
// Batching is enabled per run via Config.MaxBatch; coordinators without
// this capability silently fall back to sequential Decide calls. All
// observations of one batch read the network state as of the start of
// the gather window — members of a batch do not see each other's
// not-yet-applied decisions. The simulator applies the returned actions
// afterward, in window order, against live state.
type BatchDecider interface {
	DecideBatch(st *State, flows []*Flow, v graph.NodeID, now float64, actions []int)
}

// BatchStats summarizes the batching behavior of a run. It is
// diagnostic output only and deliberately kept out of Metrics, so a
// batched and a sequential run of the same scenario produce identical
// Metrics.
type BatchStats struct {
	// Windows is the number of gather windows resolved (each covers one
	// (time, run of decision events) pair and holds ≥ 1 flow).
	Windows int
	// Calls is the number of DecideBatch invocations.
	Calls int
	// Flows is the total number of flows routed through DecideBatch.
	Flows int
	// MaxSize is the largest single DecideBatch call.
	MaxSize int
}

// pendingDecision is one flow of the current gather window that passed
// the pre-decision checks and awaits a batched decision.
type pendingDecision struct {
	f      *Flow
	v      graph.NodeID
	next   int // index+1 of the next entry at the same node; 0 ends the chain
	action int
}

// decisionBatcher gathers the decision-bearing events of one event
// timestamp, resolves them per node through a BatchDecider, and applies
// the actions in window order. All buffers are reused across windows,
// so the steady state performs no allocations.
type decisionBatcher struct {
	dec BatchDecider
	max int // cap per DecideBatch call (Config.MaxBatch, ≥ 2)

	pend  []pendingDecision // the window, in event order
	nodes []graph.NodeID    // distinct nodes of the window, first-appearance order
	// headAt/tailAt chain the window entries of each node (index+1 into
	// pend; 0 = none). Only the entries for b.nodes are live; they are
	// cleared when the window resolves.
	headAt []int
	tailAt []int

	flows   []*Flow // per-call scratch, ≤ max entries
	idx     []int   // pend index of each scratch entry
	actions []int

	stats BatchStats
}

func newDecisionBatcher(dec BatchDecider, max, numNodes int) *decisionBatcher {
	return &decisionBatcher{
		dec:     dec,
		max:     max,
		headAt:  make([]int, numNodes),
		tailAt:  make([]int, numNodes),
		flows:   make([]*Flow, 0, max),
		idx:     make([]int, 0, max),
		actions: make([]int, max),
	}
}

// add appends flow f (pending a decision at node v) to the current
// gather window.
func (b *decisionBatcher) add(f *Flow, v graph.NodeID) {
	b.pend = append(b.pend, pendingDecision{f: f, v: v})
	ref := len(b.pend) // index+1
	if b.headAt[v] == 0 {
		b.headAt[v] = ref
		b.nodes = append(b.nodes, v)
	} else {
		b.pend[b.tailAt[v]-1].next = ref
	}
	b.tailAt[v] = ref
}

// resolve decides the gathered window and applies the actions. Decisions
// run per node in first-appearance order, chunked to at most max flows
// per DecideBatch call; every observation reads the pre-window state
// (DecideBatch must not mutate simulation state). Actions then apply in
// window order, against live state — exactly the apply semantics of the
// sequential path.
func (b *decisionBatcher) resolve(x *exec, now float64) {
	if len(b.pend) == 0 {
		return
	}
	b.stats.Windows++
	for _, v := range b.nodes {
		ref := b.headAt[v]
		for ref != 0 {
			b.flows = b.flows[:0]
			b.idx = b.idx[:0]
			for ref != 0 && len(b.flows) < b.max {
				p := &b.pend[ref-1]
				b.flows = append(b.flows, p.f)
				b.idx = append(b.idx, ref-1)
				ref = p.next
			}
			acts := b.actions[:len(b.flows)]
			b.dec.DecideBatch(x.st, b.flows, v, now, acts)
			for i, pi := range b.idx {
				b.pend[pi].action = acts[i]
			}
			b.stats.Calls++
			b.stats.Flows += len(b.flows)
			if len(b.flows) > b.stats.MaxSize {
				b.stats.MaxSize = len(b.flows)
			}
		}
		b.headAt[v], b.tailAt[v] = 0, 0
	}
	b.nodes = b.nodes[:0]
	for i := range b.pend {
		x.applyDecision(b.pend[i].f, b.pend[i].v, now, b.pend[i].action)
		b.pend[i].f = nil // release for the GC between windows
	}
	b.pend = b.pend[:0]
}

// joinable reports whether an event kind carries a coordinator decision
// and may therefore join a gather window. All other kinds (resource
// releases, ticks, faults, idle checks) mutate state and end the window.
func joinable(k eventKind) bool {
	return k == evGenArrival || k == evHeadArrive || k == evProcDone
}

// BatchStats returns the batching diagnostics of the run so far, summed
// across shards for multi-shard runs (MaxSize is the max over shards).
// It is all zeros when batching is disabled (Config.MaxBatch ≤ 1 or a
// coordinator without the BatchDecider capability).
func (s *Sim) BatchStats() BatchStats {
	var out BatchStats
	for _, x := range s.execs {
		if x.batcher == nil {
			continue
		}
		st := x.batcher.stats
		out.Windows += st.Windows
		out.Calls += st.Calls
		out.Flows += st.Flows
		if st.MaxSize > out.MaxSize {
			out.MaxSize = st.MaxSize
		}
	}
	return out
}
