package simnet

import (
	"math/rand"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// testService returns a 2-component chain with the given processing
// delay, no startup delay, long idle timeout, and linear unit resources.
func testService(procDelay float64) *Service {
	return &Service{
		Name: "svc",
		Chain: []*Component{
			{Name: "c1", ProcDelay: procDelay, IdleTimeout: 1000, ResourcePerRate: 1},
			{Name: "c2", ProcDelay: procDelay, IdleTimeout: 1000, ResourcePerRate: 1},
		},
	}
}

// lineGraph returns 0-1-2-...-n-1 with unit link delays and the given
// uniform capacities.
func lineGraph(n int, nodeCap, linkCap float64) *graph.Graph {
	g := graph.New("line")
	for i := 0; i < n; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), nodeCap)
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddLink(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			panic(err)
		}
		g.SetLinkCapacity(i, linkCap)
	}
	return g
}

// spCoord is a minimal test coordinator: process locally when the node
// has capacity for the requested component, otherwise (or when fully
// processed) forward along the shortest path to the egress.
type spCoord struct{}

func (spCoord) Name() string { return "test-sp" }

func (spCoord) Decide(st *State, f *Flow, v graph.NodeID, now float64) int {
	if !f.Processed() {
		need := f.Current().Resource(f.Rate)
		if st.FreeNode(v) >= need {
			return 0
		}
	}
	hop := st.APSP().NextHop(v, f.Egress)
	for i, ad := range st.Graph().Neighbors(v) {
		if ad.Neighbor == hop {
			return i + 1
		}
	}
	return 0
}

// fixedCoord replays a scripted decision sequence (per decision, not per
// flow).
type fixedCoord struct {
	script []int
	i      int
}

func (c *fixedCoord) Name() string { return "test-fixed" }

func (c *fixedCoord) Decide(*State, *Flow, graph.NodeID, float64) int {
	if c.i >= len(c.script) {
		return 0
	}
	a := c.script[c.i]
	c.i++
	return a
}

// oneFlow returns a config that emits exactly one flow at t=0 from node 0.
func oneFlow(g *graph.Graph, svc *Service, egress graph.NodeID, deadline float64, c Coordinator) Config {
	return Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 1e9}}},
		Egress:      egress,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: deadline},
		Horizon:     1e9 + 1, // exactly one arrival
		Coordinator: c,
		MaxTime:     2e9,
	}
}

func mustRun(t *testing.T, cfg Config) *Metrics {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestSingleFlowSucceedsWithExpectedDelay(t *testing.T) {
	g := lineGraph(3, 10, 10)
	svc := testService(5)
	cfg := oneFlow(g, svc, 2, 100, spCoord{})
	// Wait: Horizon must be > first arrival; with interval 1e9, nothing
	// arrives. Use a short fixed interval and horizon for one flow.
	cfg.Ingresses = []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}}
	cfg.Horizon = 11
	cfg.MaxTime = 0 // use default
	m := mustRun(t, cfg)
	if m.Arrived != 1 || m.Succeeded != 1 {
		t.Fatalf("arrived=%d succeeded=%d, want 1/1", m.Arrived, m.Succeeded)
	}
	// Both components processed at node 0 (capacity 10), then two hops:
	// 2*5 processing + 2*1 link delay = 12.
	if m.AvgDelay() != 12 {
		t.Errorf("end-to-end delay = %f, want 12", m.AvgDelay())
	}
	if m.Forwards != 2 || m.Processings != 2 {
		t.Errorf("forwards=%d processings=%d, want 2/2", m.Forwards, m.Processings)
	}
}

func TestStartupDelayOnlyForNewInstances(t *testing.T) {
	g := lineGraph(2, 10, 10)
	svc := &Service{Name: "s", Chain: []*Component{
		{Name: "c1", ProcDelay: 5, StartupDelay: 7, IdleTimeout: 1000, ResourcePerRate: 1},
	}}
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 20}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     41, // arrivals at t=20 and t=40
		Coordinator: spCoord{},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 2 {
		t.Fatalf("succeeded=%d, want 2", m.Succeeded)
	}
	// Flow 1 pays startup (7) + proc (5) + link (1) = 13.
	// Flow 2 reuses the instance: 5 + 1 = 6. Mean = 9.5.
	if m.AvgDelay() != 9.5 {
		t.Errorf("avg delay = %f, want 9.5 (startup paid once)", m.AvgDelay())
	}
}

func TestNodeCapacityDrop(t *testing.T) {
	// Single node network: flow must be processed at node 0, capacity 0.5
	// cannot fit unit-rate processing.
	g := graph.New("single")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 1)
	if err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g.SetNodeCapacity(0, 0.5)
	g.SetNodeCapacity(1, 0.5)
	g.SetLinkCapacity(0, 10)
	svc := testService(5)
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: &fixedCoord{script: []int{0}}, // insist on local processing
	}
	m := mustRun(t, cfg)
	if m.Dropped != 1 || m.DropsBy[DropNodeCapacity] != 1 {
		t.Errorf("drops=%d byCause=%v, want 1 node-capacity drop", m.Dropped, m.DropsBy)
	}
}

func TestLinkCapacityDrop(t *testing.T) {
	g := lineGraph(2, 10, 0.5) // link cannot carry a unit-rate flow
	svc := testService(5)
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: &fixedCoord{script: []int{1}}, // forward immediately
	}
	m := mustRun(t, cfg)
	if m.DropsBy[DropLinkCapacity] != 1 {
		t.Errorf("drops by cause = %v, want 1 link-capacity drop", m.DropsBy)
	}
}

func TestInvalidActionDrop(t *testing.T) {
	g := lineGraph(2, 10, 10)
	svc := testService(5)
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: &fixedCoord{script: []int{5}}, // node 0 has one neighbor
	}
	m := mustRun(t, cfg)
	if m.DropsBy[DropInvalidAction] != 1 {
		t.Errorf("drops by cause = %v, want 1 invalid-action drop", m.DropsBy)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	g := lineGraph(3, 10, 10)
	svc := testService(5) // needs >= 12 time units end to end
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 8},
		Horizon:     11,
		Coordinator: spCoord{},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 0 || m.DropsBy[DropExpired] != 1 {
		t.Errorf("succeeded=%d drops=%v, want 0 successes and 1 expiry", m.Succeeded, m.DropsBy)
	}
}

func TestKeepProcessedFlowCostsTime(t *testing.T) {
	g := lineGraph(2, 10, 10)
	svc := &Service{Name: "s", Chain: []*Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 1000, ResourcePerRate: 1},
	}}
	// Process at 0, then keep the processed flow 3 times, then forward.
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     11,
		Coordinator: &fixedCoord{script: []int{0, 0, 0, 0, 1}},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 1 {
		t.Fatalf("succeeded=%d drops=%v, want success", m.Succeeded, m.DropsBy)
	}
	// 5 processing + 3 keep steps + 1 link = 9.
	if m.AvgDelay() != 9 {
		t.Errorf("delay = %f, want 9", m.AvgDelay())
	}
	if m.Keeps != 3 {
		t.Errorf("keeps = %d, want 3", m.Keeps)
	}
}

func TestConcurrentFlowsShareNodeCapacity(t *testing.T) {
	// Node 0 has capacity 1: can process one unit-rate flow at a time.
	// Two flows arrive 1 step apart; the second must be dropped when the
	// coordinator insists on local processing.
	g := lineGraph(2, 1, 10)
	svc := &Service{Name: "s", Chain: []*Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 1000, ResourcePerRate: 1},
	}}
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 1}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 10, Deadline: 100},
		Horizon:     2.5, // arrivals at t=1, t=2
		Coordinator: &fixedCoord{script: []int{0, 0, 1, 1}},
	}
	m := mustRun(t, cfg)
	if m.DropsBy[DropNodeCapacity] != 1 {
		t.Errorf("drops=%v, want exactly 1 node-capacity drop", m.DropsBy)
	}
	if m.Succeeded != 1 {
		t.Errorf("succeeded=%d, want 1", m.Succeeded)
	}
}

func TestResourcesReleasedAfterFlowPasses(t *testing.T) {
	// Same as above but the flows are far apart: both fit sequentially.
	g := lineGraph(2, 1, 10)
	svc := &Service{Name: "s", Chain: []*Component{
		{Name: "c1", ProcDelay: 5, IdleTimeout: 1000, ResourcePerRate: 1},
	}}
	cfg := Config{
		Graph:       g,
		Service:     svc,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 50}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 10, Deadline: 100},
		Horizon:     101,
		Coordinator: spCoord{},
	}
	m := mustRun(t, cfg)
	if m.Succeeded != 2 {
		t.Errorf("succeeded=%d drops=%v, want both flows to fit sequentially", m.Succeeded, m.DropsBy)
	}
}

func TestConfigValidation(t *testing.T) {
	g := lineGraph(2, 1, 1)
	svc := testService(5)
	valid := func() Config {
		return Config{
			Graph:       g,
			Service:     svc,
			Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
			Egress:      1,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     100,
			Coordinator: spCoord{},
		}
	}
	mutations := map[string]func(*Config){
		"nil graph":        func(c *Config) { c.Graph = nil },
		"nil service":      func(c *Config) { c.Service = nil },
		"nil coordinator":  func(c *Config) { c.Coordinator = nil },
		"no ingresses":     func(c *Config) { c.Ingresses = nil },
		"bad ingress node": func(c *Config) { c.Ingresses[0].Node = 99 },
		"nil arrivals":     func(c *Config) { c.Ingresses[0].Arrivals = nil },
		"bad egress":       func(c *Config) { c.Egress = -2 },
		"zero horizon":     func(c *Config) { c.Horizon = 0 },
		"zero rate":        func(c *Config) { c.Template.Rate = 0 },
		"zero duration":    func(c *Config) { c.Template.Duration = 0 },
		"zero deadline":    func(c *Config) { c.Template.Deadline = 0 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := valid()
			mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
	t.Run("empty chain", func(t *testing.T) {
		cfg := valid()
		cfg.Service = &Service{Name: "empty"}
		if _, err := New(cfg); err == nil {
			t.Error("New accepted empty service chain")
		}
	})
}

// randCoord takes uniformly random (frequently invalid) actions.
type randCoord struct{ rng *rand.Rand }

func (randCoord) Name() string { return "test-random" }

func (c randCoord) Decide(st *State, f *Flow, v graph.NodeID, now float64) int {
	return c.rng.Intn(st.Graph().MaxDegree() + 1)
}

// TestFlowAccountingInvariant: for arbitrary coordinators and traffic,
// every arrived flow ends as exactly one of succeeded or dropped.
func TestFlowAccountingInvariant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := lineGraph(4, 2, 2)
		cfg := Config{
			Graph:   g,
			Service: testService(5),
			Ingresses: []Ingress{
				{Node: 0, Arrivals: traffic.NewPoisson(5, rng)},
				{Node: 1, Arrivals: traffic.NewPoisson(7, rng)},
			},
			Egress:      3,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 50},
			Horizon:     500,
			Coordinator: randCoord{rng: rng},
		}
		m := mustRun(t, cfg)
		if m.Pending() != 0 {
			t.Fatalf("seed %d: %d flows unaccounted (arrived=%d succ=%d drop=%d)",
				seed, m.Pending(), m.Arrived, m.Succeeded, m.Dropped)
		}
		if m.Arrived == 0 {
			t.Fatalf("seed %d: no flows generated", seed)
		}
	}
}

// TestDeterminism: identical seeds yield identical metrics.
func TestDeterminism(t *testing.T) {
	run := func() *Metrics {
		rng := rand.New(rand.NewSource(99))
		g := lineGraph(4, 2, 2)
		cfg := Config{
			Graph:       g,
			Service:     testService(5),
			Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.NewPoisson(5, rng)}},
			Egress:      3,
			Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 50},
			Horizon:     1000,
			Coordinator: randCoord{rng: rng},
		}
		return mustRun(t, Config(cfg))
	}
	a, b := run(), run()
	if a.Arrived != b.Arrived || a.Succeeded != b.Succeeded || a.Dropped != b.Dropped ||
		a.SumDelay != b.SumDelay || a.Decisions != b.Decisions {
		t.Errorf("non-deterministic runs: %+v vs %+v", a, b)
	}
}

// recordingListener captures listener callbacks for verification.
type recordingListener struct {
	NopListener
	actions   int
	traversed int
	ends      int
	successes int
}

func (l *recordingListener) OnAction(*Flow, graph.NodeID, float64, int, ActionResult) { l.actions++ }
func (l *recordingListener) OnTraversed(*Flow, graph.NodeID, float64)                 { l.traversed++ }
func (l *recordingListener) OnFlowEnd(f *Flow, success bool, cause DropCause, now float64) {
	l.ends++
	if success {
		l.successes++
	}
}

func TestListenerCallbacks(t *testing.T) {
	g := lineGraph(3, 10, 10)
	lis := &recordingListener{}
	cfg := Config{
		Graph:       g,
		Service:     testService(5),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      2,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     31, // 3 flows
		Coordinator: spCoord{},
		Listener:    lis,
	}
	m := mustRun(t, cfg)
	if lis.ends != 3 || lis.successes != m.Succeeded {
		t.Errorf("listener ends=%d successes=%d, metrics succeeded=%d", lis.ends, lis.successes, m.Succeeded)
	}
	// Each flow traverses 2 components.
	if lis.traversed != 2*m.Succeeded {
		t.Errorf("traversed=%d, want %d", lis.traversed, 2*m.Succeeded)
	}
	if lis.actions != m.Decisions {
		t.Errorf("listener actions=%d, metrics decisions=%d", lis.actions, m.Decisions)
	}
}

func TestMultiServiceMix(t *testing.T) {
	g := lineGraph(2, 100, 100)
	short := &Service{Name: "short", Chain: []*Component{
		{Name: "s1", ProcDelay: 1, IdleTimeout: 1000, ResourcePerRate: 0.1},
	}}
	long := &Service{Name: "long", Chain: []*Component{
		{Name: "l1", ProcDelay: 1, IdleTimeout: 1000, ResourcePerRate: 0.1},
		{Name: "l2", ProcDelay: 1, IdleTimeout: 1000, ResourcePerRate: 0.1},
		{Name: "l3", ProcDelay: 1, IdleTimeout: 1000, ResourcePerRate: 0.1},
	}}
	counts := map[string]int{}
	counter := coordFunc(func(st *State, f *Flow, v graph.NodeID, now float64) int {
		if f.Decisions == 0 {
			counts[f.Service.Name]++
		}
		return spCoord{}.Decide(st, f, v, now)
	})
	cfg := Config{
		Graph: g,
		Services: []WeightedService{
			{Service: short, Weight: 3},
			{Service: long, Weight: 1},
		},
		ServiceSeed: 7,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 2}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     2000,
		Coordinator: counter,
	}
	m := mustRun(t, cfg)
	if m.SuccessRatio() != 1 {
		t.Fatalf("success ratio = %f, want 1 (ample capacity)", m.SuccessRatio())
	}
	if counts["short"] == 0 || counts["long"] == 0 {
		t.Fatalf("service mix not sampled: %v", counts)
	}
	ratio := float64(counts["short"]) / float64(counts["long"])
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("short:long ratio = %.2f, want ~3 (weights 3:1); counts %v", ratio, counts)
	}
}

// coordFunc adapts a function to the Coordinator interface for tests.
type coordFunc func(*State, *Flow, graph.NodeID, float64) int

func (coordFunc) Name() string { return "func" }

func (f coordFunc) Decide(st *State, fl *Flow, v graph.NodeID, now float64) int {
	return f(st, fl, v, now)
}

func TestMultiServiceValidation(t *testing.T) {
	g := lineGraph(2, 1, 1)
	base := Config{
		Graph:       g,
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 10}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     100,
		Coordinator: spCoord{},
	}
	cfg := base
	cfg.Services = []WeightedService{{Service: nil, Weight: 1}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted nil service in mix")
	}
	cfg = base
	cfg.Services = []WeightedService{{Service: testService(1), Weight: -1}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted negative weight")
	}
	cfg = base
	cfg.Services = []WeightedService{{Service: testService(1), Weight: 0}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted zero total weight")
	}
}

// TestCapacitiesNeverExceeded: under an arbitrary (random) coordinator,
// the simulator itself must guarantee that committed node and link
// resources never exceed capacities.
func TestCapacitiesNeverExceeded(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := lineGraph(5, 1.5, 1.5)
		checker := coordFunc(func(st *State, f *Flow, v graph.NodeID, now float64) int {
			for n := 0; n < st.Graph().NumNodes(); n++ {
				id := graph.NodeID(n)
				if st.UsedNode(id) > st.Graph().Node(id).Capacity+1e-6 {
					t.Fatalf("seed %d: node %d over capacity: %f > %f",
						seed, n, st.UsedNode(id), st.Graph().Node(id).Capacity)
				}
			}
			for l := 0; l < st.Graph().NumLinks(); l++ {
				if st.UsedLink(l) > st.Graph().Link(l).Capacity+1e-6 {
					t.Fatalf("seed %d: link %d over capacity: %f > %f",
						seed, l, st.UsedLink(l), st.Graph().Link(l).Capacity)
				}
			}
			return rng.Intn(3)
		})
		cfg := Config{
			Graph:       g,
			Service:     testService(4),
			Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.NewPoisson(3, rng)}},
			Egress:      4,
			Template:    FlowTemplate{Rate: 1, Duration: 2, Deadline: 60},
			Horizon:     800,
			Coordinator: checker,
		}
		mustRun(t, cfg)
	}
}

// TestTickerIntegration: a ticking coordinator receives ticks at its
// interval until the horizon.
func TestTickerIntegration(t *testing.T) {
	g := lineGraph(2, 10, 10)
	tc := &tickingCoord{interval: 100}
	cfg := Config{
		Graph:       g,
		Service:     testService(1),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 50}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     1000,
		Coordinator: tc,
	}
	mustRun(t, cfg)
	// Ticks at t = 0, 100, ..., 1000 -> 11 ticks.
	if tc.ticks != 11 {
		t.Errorf("ticks = %d, want 11", tc.ticks)
	}
	if !tc.reset {
		t.Error("Reset was not called before the run")
	}
}

type tickingCoord struct {
	interval float64
	ticks    int
	reset    bool
}

func (c *tickingCoord) Name() string      { return "ticker" }
func (c *tickingCoord) Interval() float64 { return c.interval }
func (c *tickingCoord) Tick(st *State, now float64) {
	c.ticks++
}
func (c *tickingCoord) Reset(*State) { c.reset = true }
func (c *tickingCoord) Decide(st *State, f *Flow, v graph.NodeID, now float64) int {
	return spCoord{}.Decide(st, f, v, now)
}

func TestTickerRejectsNonPositiveInterval(t *testing.T) {
	g := lineGraph(2, 10, 10)
	tc := &tickingCoord{interval: 0}
	cfg := Config{
		Graph:       g,
		Service:     testService(1),
		Ingresses:   []Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 50}}},
		Egress:      1,
		Template:    FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     200,
		Coordinator: tc,
	}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted zero tick interval")
	}
}
