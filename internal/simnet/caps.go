package simnet

// Caps is the resolved set of optional Coordinator capabilities: one
// typed, possibly-nil handle per capability interface. It exists so the
// question "what can this coordinator do?" is answered in exactly one
// place — Capabilities — instead of ad-hoc type assertions scattered
// across the engine. Every nil field simply means "capability absent".
//
// The struct must stay in one-to-one correspondence with the exported
// capability interfaces of this package (the ones documented as
// "optional Coordinator capability"); TestCapsExhaustive pins that.
type Caps struct {
	// Flow is the coordinator-as-listener capability (FlowObserver):
	// learning coordinators observe action outcomes and flow ends.
	Flow FlowObserver
	// Ticker updates internal rules periodically from monitoring data.
	Ticker Ticker
	// Resetter clears per-run coordinator state between runs.
	Resetter Resetter
	// Topology is notified when fault injection changes liveness.
	Topology TopologyObserver
	// Batch resolves same-(node, time) decision cohorts in one call.
	Batch BatchDecider
	// Shard provides per-shard coordinator instances for multi-shard runs.
	Shard ShardableCoordinator
	// Timing reports the wall-time decomposition of remote decision
	// round trips for trace attribution.
	Timing DecisionTimer
}

// DecisionTimer is an optional Coordinator capability: a coordinator
// whose decisions cross a process boundary (coord.Remote) reports the
// sub-span decomposition of its most recent decision round trip. The
// engine consults it only while a flow tracer is installed, attaching
// the decomposition to TraceDecision events so trace analysis can split
// a decision segment into client-send / network / agent-queue /
// inference / return sub-spans that exactly tile it.
type DecisionTimer interface {
	// LastDecideTiming returns the decomposition of the most recent
	// decision round trip, and false while none has happened yet.
	LastDecideTiming() (DecideTiming, bool)
}

// CapsProvider is implemented by coordinators whose capability set is
// not a property of their Go type: a networked coordinator (coord.Remote)
// learns at handshake time which capabilities its agents negotiated, so
// it reports them explicitly instead of growing a parallel set of type
// switches. Capabilities prefers a provider's self-report over type
// assertions.
//
// A provider must only report handles that are actually functional —
// e.g. Batch only when every connected agent acknowledged the batched
// decision capability on the wire.
type CapsProvider interface {
	Coordinator
	// Capabilities returns the coordinator's effective capability set.
	Capabilities() Caps
}

// Capabilities resolves the optional capabilities of c. This is the
// single capability-resolution seam of the engine: simulation
// construction (New/newExec), shard setup (initShards), and CLI
// validation (clicfg) all route through it, so a new capability is wired
// in exactly one place.
func Capabilities(c Coordinator) Caps {
	if p, ok := c.(CapsProvider); ok {
		return p.Capabilities()
	}
	var caps Caps
	if fo, ok := c.(FlowObserver); ok {
		caps.Flow = fo
	}
	if tk, ok := c.(Ticker); ok {
		caps.Ticker = tk
	}
	if r, ok := c.(Resetter); ok {
		caps.Resetter = r
	}
	if to, ok := c.(TopologyObserver); ok {
		caps.Topology = to
	}
	if bd, ok := c.(BatchDecider); ok {
		caps.Batch = bd
	}
	if sc, ok := c.(ShardableCoordinator); ok {
		caps.Shard = sc
	}
	if dt, ok := c.(DecisionTimer); ok {
		caps.Timing = dt
	}
	return caps
}
