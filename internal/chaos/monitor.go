package chaos

import (
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// Monitor is a simnet.Listener that feeds flow outcomes into a
// telemetry.RecoveryTracker and relates them to a fault schedule,
// producing per-fault recovery reports: how deep the success-rate dip
// was, how long until pre-fault service levels returned, and how many
// flows each fault cost. Wire it as (or compose it into) Config.Listener
// of a run with Config.Faults set to the schedule's faults.
type Monitor struct {
	simnet.NopListener
	schedule *Schedule
	tracker  *telemetry.RecoveryTracker
}

// NewMonitor returns a monitor for the given schedule. bucket is the
// tracker's time-bucket width; non-positive picks the tracker default.
func NewMonitor(schedule *Schedule, bucket float64) *Monitor {
	return &Monitor{
		schedule: schedule,
		tracker:  telemetry.NewRecoveryTracker(bucket),
	}
}

// OnFlowEnd implements simnet.Listener.
func (m *Monitor) OnFlowEnd(f *simnet.Flow, success bool, cause simnet.DropCause, now float64) {
	delay := 0.0
	if success {
		delay = now - f.Arrival
	}
	m.tracker.Observe(now, success, delay)
}

// FaultReport is the JSON-facing recovery summary for one disruptive
// fault injection.
type FaultReport struct {
	Time float64 `json:"time"`
	Kind string  `json:"kind"`
	// Node / Link / Agent identify the victim; −1 when not applicable.
	Node  int `json:"node"`
	Link  int `json:"link"`
	Agent int `json:"agent"`
	telemetry.RecoveryStat
}

// Report analyzes the observed outcomes against the schedule's
// disruptive fault times. Call it after the run completes.
func (m *Monitor) Report() []FaultReport {
	times := m.schedule.DisruptiveTimes()
	stats := m.tracker.Analyze(times)
	reports := make([]FaultReport, len(stats))
	for i, st := range stats {
		r := FaultReport{Time: st.FaultTime, Node: -1, Link: -1, Agent: -1, RecoveryStat: st}
		// Describe the (first) disruptive fault at this injection time.
		for _, ft := range m.schedule.Faults {
			if ft.Time == st.FaultTime && ft.Kind.Disruptive() {
				r.Kind = ft.Kind.String()
				switch ft.Kind {
				case simnet.FaultNodeDown, simnet.FaultInstanceKill:
					r.Node = int(ft.Node)
				case simnet.FaultLinkDown, simnet.FaultLinkDegrade:
					r.Link = ft.Link
				}
				break
			}
		}
		if r.Kind == "" {
			for _, k := range m.schedule.AgentKills {
				if k.Time == st.FaultTime {
					r.Kind = ProfileAgentKill
					r.Agent = k.Agent
					break
				}
			}
		}
		reports[i] = r
	}
	return reports
}

// Tracker exposes the underlying recovery tracker (tests, custom
// analysis windows).
func (m *Monitor) Tracker() *telemetry.RecoveryTracker { return m.tracker }

// Listeners composes several simnet listeners into one; events fan out
// in order. It lets a chaos Monitor ride alongside an existing listener
// without the simulator knowing about composition.
type Listeners []simnet.Listener

// OnAction implements simnet.Listener.
func (ls Listeners) OnAction(f *simnet.Flow, v graph.NodeID, now float64, action int, res simnet.ActionResult) {
	for _, l := range ls {
		l.OnAction(f, v, now, action, res)
	}
}

// OnTraversed implements simnet.Listener.
func (ls Listeners) OnTraversed(f *simnet.Flow, v graph.NodeID, now float64) {
	for _, l := range ls {
		l.OnTraversed(f, v, now)
	}
}

// OnFlowEnd implements simnet.Listener.
func (ls Listeners) OnFlowEnd(f *simnet.Flow, success bool, cause simnet.DropCause, now float64) {
	for _, l := range ls {
		l.OnFlowEnd(f, success, cause, now)
	}
}
