package chaos

import (
	"reflect"
	"testing"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

func abilene(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.ByName("Abilene")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"none",
		"node-outage",
		"node-outage:seed=7,start=300,duration=200,count=2",
		"link-outage:link=3",
		"link-cascade:count=3,factor=0.3,seed=42",
		"surge:start=200,duration=400,burst=50,node=1",
		"instance-kill:node=3,comp=FW,count=4",
	} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", in, err)
			continue
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("ParseSpec(%q.String() = %q): %v", in, sp.String(), err)
			continue
		}
		if !reflect.DeepEqual(sp, again) {
			t.Errorf("round trip of %q: %+v != %+v", in, sp, again)
		}
	}
}

func TestParseSpecEmptyDisables(t *testing.T) {
	for _, in := range []string{"", "none", "  none  "} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if sp.Enabled() {
			t.Errorf("ParseSpec(%q) is enabled", in)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"meteor-strike",
		"node-outage:count",
		"node-outage:count=x",
		"node-outage:zap=1",
		"surge:burst=1.5",
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", in)
		}
	}
}

// TestBuildIsDeterministic pins the reproducibility acceptance
// criterion at the schedule level: identical inputs yield identical
// schedules, and a different seed yields a different one (for the
// rng-heavy surge profile).
func TestBuildIsDeterministic(t *testing.T) {
	g := abilene(t)
	ingresses := []graph.NodeID{0, 1}
	for _, profile := range []string{
		ProfileNodeOutage, ProfileLinkOutage, ProfileLinkCascade, ProfileSurge, ProfileInstanceKill,
	} {
		sp := Spec{Profile: profile, Seed: 42, Count: 2, Node: -1, Link: -1}
		a, err := sp.Build(g, 1000, ingresses, graph.AbileneEgress)
		if err != nil {
			t.Fatalf("Build(%s): %v", profile, err)
		}
		b, err := sp.Build(g, 1000, ingresses, graph.AbileneEgress)
		if err != nil {
			t.Fatalf("Build(%s) again: %v", profile, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two Builds with identical inputs differ", profile)
		}
	}

	sp := Spec{Profile: ProfileSurge, Seed: 1, Node: -1, Link: -1}
	a, _ := sp.Build(g, 1000, ingresses, graph.AbileneEgress)
	sp.Seed = 2
	b, _ := sp.Build(g, 1000, ingresses, graph.AbileneEgress)
	if reflect.DeepEqual(a.Faults, b.Faults) {
		t.Error("surge schedules for different seeds are identical")
	}
}

// TestBuildNeverPicksProtectedNodes asks for far more victims than the
// topology can safely lose; whatever Build settles on must exclude the
// ingresses and the egress.
func TestBuildNeverPicksProtectedNodes(t *testing.T) {
	g := abilene(t)
	ingresses := []graph.NodeID{0, 1}
	protected := map[graph.NodeID]bool{0: true, 1: true, graph.AbileneEgress: true}
	for seed := int64(0); seed < 20; seed++ {
		sp := Spec{Profile: ProfileNodeOutage, Seed: seed, Count: 100, Node: -1, Link: -1}
		sched, err := sp.Build(g, 1000, ingresses, graph.AbileneEgress)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, ft := range sched.Faults {
			if ft.Kind == simnet.FaultNodeDown && protected[ft.Node] {
				t.Errorf("seed %d: protected node %d chosen as outage victim", seed, ft.Node)
			}
		}
	}
}

// TestBuildPreservesConnectivity removes every downed victim from the
// graph and checks the survivors still form one connected component.
func TestBuildPreservesConnectivity(t *testing.T) {
	g := abilene(t)
	for seed := int64(0); seed < 20; seed++ {
		sp := Spec{Profile: ProfileNodeOutage, Seed: seed, Count: 100, Node: -1, Link: -1}
		sched, err := sp.Build(g, 1000, []graph.NodeID{0}, graph.AbileneEgress)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dead := map[graph.NodeID]bool{}
		for _, ft := range sched.Faults {
			if ft.Kind == simnet.FaultNodeDown {
				dead[ft.Node] = true
			}
		}
		if len(dead) == 0 {
			t.Fatalf("seed %d: no victims chosen", seed)
		}
		if !connectedWithout(g, dead) {
			t.Errorf("seed %d: victims %v disconnect the survivors", seed, dead)
		}
	}
}

// connectedWithout reports whether g minus the dead nodes is connected.
func connectedWithout(g *graph.Graph, dead map[graph.NodeID]bool) bool {
	start := graph.None
	alive := 0
	for _, n := range g.Nodes() {
		if dead[n.ID] {
			continue
		}
		alive++
		if start == graph.None {
			start = n.ID
		}
	}
	visited := make([]bool, g.NumNodes())
	visited[start] = true
	queue := []graph.NodeID{start}
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ad := range g.Neighbors(v) {
			if dead[ad.Neighbor] || visited[ad.Neighbor] {
				continue
			}
			visited[ad.Neighbor] = true
			reached++
			queue = append(queue, ad.Neighbor)
		}
	}
	return reached == alive
}

// TestBuildScalesDefaultsToHorizon checks the zero-value scaling: onset
// at 0.3·horizon, recovery after another 0.25·horizon.
func TestBuildScalesDefaultsToHorizon(t *testing.T) {
	sp := Spec{Profile: ProfileNodeOutage, Node: -1, Link: -1}
	sched, err := sp.Build(abilene(t), 1000, []graph.NodeID{0}, graph.AbileneEgress)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Faults) != 2 {
		t.Fatalf("faults = %d, want down+up", len(sched.Faults))
	}
	if sched.Faults[0].Time != 300 || sched.Faults[0].Kind != simnet.FaultNodeDown {
		t.Errorf("first fault = %+v, want node-down at 300", sched.Faults[0])
	}
	if sched.Faults[1].Time != 550 || sched.Faults[1].Kind != simnet.FaultNodeUp {
		t.Errorf("second fault = %+v, want node-up at 550", sched.Faults[1])
	}
}

// TestBuildPinnedVictim checks that node= pins the first victim.
func TestBuildPinnedVictim(t *testing.T) {
	sp := Spec{Profile: ProfileNodeOutage, Node: 5, Link: -1}
	sched, err := sp.Build(abilene(t), 1000, []graph.NodeID{0}, graph.AbileneEgress)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Faults[0].Node != 5 {
		t.Errorf("victim = %d, want pinned node 5", sched.Faults[0].Node)
	}
	if _, err := (Spec{Profile: ProfileNodeOutage, Node: 99, Link: -1}).Build(abilene(t), 1000, nil, 0); err == nil {
		t.Error("Build accepted out-of-range pinned node")
	}
}

// TestSurgeExpandsToIndividualArrivals checks the surge expansion:
// count bursts of burst arrivals each, inside the surge window, at
// ingress nodes.
func TestSurgeExpandsToIndividualArrivals(t *testing.T) {
	ingresses := []graph.NodeID{0, 1}
	sp := Spec{Profile: ProfileSurge, Seed: 3, Count: 2, Burst: 5, Start: 200, Duration: 400, Node: -1, Link: -1}
	sched, err := sp.Build(abilene(t), 1000, ingresses, graph.AbileneEgress)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Faults) != 10 {
		t.Fatalf("faults = %d, want 2 bursts x 5 arrivals", len(sched.Faults))
	}
	for _, ft := range sched.Faults {
		if ft.Kind != simnet.FaultExtraArrival {
			t.Errorf("unexpected kind %s", ft.Kind)
		}
		if ft.Time < 200 || ft.Time > 600 {
			t.Errorf("arrival at %g outside surge window [200,600]", ft.Time)
		}
		if ft.Node != 0 && ft.Node != 1 {
			t.Errorf("surge arrival at non-ingress node %d", ft.Node)
		}
	}
}

// TestDisruptiveTimes checks dedup of same-time disruptions and that
// recoveries are excluded.
func TestDisruptiveTimes(t *testing.T) {
	sched := &Schedule{Faults: []simnet.Fault{
		{Time: 5, Kind: simnet.FaultLinkDegrade, Link: 0, Factor: 0.5},
		{Time: 5, Kind: simnet.FaultLinkDegrade, Link: 1, Factor: 0.5},
		{Time: 7, Kind: simnet.FaultNodeDown, Node: 2},
		{Time: 9, Kind: simnet.FaultLinkUp, Link: 0},
		{Time: 12, Kind: simnet.FaultExtraArrival, Node: 0},
	}}
	got := sched.DisruptiveTimes()
	want := []float64{5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DisruptiveTimes = %v, want %v", got, want)
	}
}

// TestBuildDisabledSpec checks that a disabled spec builds an empty
// schedule without touching the topology.
func TestBuildDisabledSpec(t *testing.T) {
	sched, err := (Spec{}).Build(abilene(t), 1000, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Faults) != 0 {
		t.Errorf("disabled spec built %d faults", len(sched.Faults))
	}
	if _, err := (Spec{Profile: ProfileNodeOutage}).Build(abilene(t), 0, nil, 0); err == nil {
		t.Error("Build accepted non-positive horizon")
	}
}

// TestScheduleValidatesAgainstSimnet builds every profile and feeds the
// schedule through simnet's validation, so chaos cannot emit faults the
// simulator rejects.
func TestScheduleValidatesAgainstSimnet(t *testing.T) {
	g := abilene(t)
	for _, profile := range []string{
		ProfileNodeOutage, ProfileLinkOutage, ProfileLinkCascade, ProfileSurge, ProfileInstanceKill,
	} {
		sp := Spec{Profile: profile, Seed: 9, Count: 3, Node: -1, Link: -1}
		sched, err := sp.Build(g, 1000, []graph.NodeID{0, 1}, graph.AbileneEgress)
		if err != nil {
			t.Fatalf("Build(%s): %v", profile, err)
		}
		cfg := simnet.Config{
			Graph:   g,
			Service: &simnet.Service{Name: "s", Chain: []*simnet.Component{{Name: "c", ProcDelay: 1, IdleTimeout: 10, ResourcePerRate: 1}}},
			Ingresses: []simnet.Ingress{
				{Node: 0, Arrivals: constArrivals{}},
			},
			Egress:      graph.AbileneEgress,
			Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
			Horizon:     1000,
			Coordinator: nopCoord{},
			Faults:      sched.Faults,
		}
		if _, err := simnet.New(cfg); err != nil {
			t.Errorf("simnet rejects %s schedule: %v", profile, err)
		}
	}
}

type nopCoord struct{}

func (nopCoord) Name() string                                                  { return "nop" }
func (nopCoord) Decide(*simnet.State, *simnet.Flow, graph.NodeID, float64) int { return 0 }

type constArrivals struct{}

func (constArrivals) Next() float64 { return 100 }
func (constArrivals) Name() string  { return "const" }
