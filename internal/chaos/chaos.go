// Package chaos builds deterministic fault-injection schedules for the
// simnet simulator: given a profile, a seed, and a topology, it derives a
// byte-identically reproducible sequence of perturbations (node outages,
// link failures and degradations, instance kills, traffic surges) that
// the simulator applies through its event loop. Victim selection is
// seed-derived and connectivity-preserving, so a fault scenario stresses
// coordination without partitioning the network outright.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"distcoord/internal/graph"
	"distcoord/internal/simnet"
)

// Profile names accepted by Spec.Profile and ParseSpec.
const (
	ProfileNone         = "none"
	ProfileNodeOutage   = "node-outage"
	ProfileLinkOutage   = "link-outage"
	ProfileLinkCascade  = "link-cascade"
	ProfileSurge        = "surge"
	ProfileInstanceKill = "instance-kill"
	ProfileAgentKill    = "agent-kill"
)

// Spec declares a fault scenario independent of any concrete topology.
// Zero-valued fields take profile defaults at Build time, scaled to the
// scenario horizon, so the same spec ports across experiment sizes.
type Spec struct {
	// Profile selects the perturbation pattern; empty or "none" disables
	// fault injection entirely.
	Profile string
	// Seed drives victim selection and surge arrival times. Schedules are
	// a pure function of (Spec, topology, horizon, protected set).
	Seed int64
	// Start is the onset of the first perturbation. <=0: 0.3·horizon.
	Start float64
	// Duration is how long perturbations last (outage length, cascade
	// span, surge span). <=0: 0.25·horizon.
	Duration float64
	// Count is the number of victims (outages, cascade links) or bursts
	// (surge). <=0: 1.
	Count int
	// Factor is the link-cascade capacity scaling in [0,1]. <=0: 0.5.
	Factor float64
	// Node pins the victim node (node-outage, instance-kill, surge);
	// negative selects victims from the seed.
	Node int
	// Link pins the victim link (link-outage, link-cascade); negative
	// selects victims from the seed.
	Link int
	// Burst is the number of extra arrivals per surge burst. <=0: 20.
	Burst int
	// Component restricts instance-kill to one component name; empty
	// kills every instance at the victim node.
	Component string
	// Agent pins the victim agent slot (agent-kill); negative selects
	// victims from the seed. Slots are taken modulo the fleet size when
	// the schedule is applied, so a spec ports across fleet sizes.
	Agent int
}

// Enabled reports whether the spec describes any fault injection.
func (sp Spec) Enabled() bool { return sp.Profile != "" && sp.Profile != ProfileNone }

// String renders the spec in ParseSpec syntax.
func (sp Spec) String() string {
	if !sp.Enabled() {
		return ProfileNone
	}
	parts := []string{}
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if sp.Seed != 0 {
		add("seed", strconv.FormatInt(sp.Seed, 10))
	}
	if sp.Start > 0 {
		add("start", strconv.FormatFloat(sp.Start, 'g', -1, 64))
	}
	if sp.Duration > 0 {
		add("duration", strconv.FormatFloat(sp.Duration, 'g', -1, 64))
	}
	if sp.Count > 0 {
		add("count", strconv.Itoa(sp.Count))
	}
	if sp.Factor > 0 {
		add("factor", strconv.FormatFloat(sp.Factor, 'g', -1, 64))
	}
	if sp.Node >= 0 {
		add("node", strconv.Itoa(sp.Node))
	}
	if sp.Link >= 0 {
		add("link", strconv.Itoa(sp.Link))
	}
	if sp.Burst > 0 {
		add("burst", strconv.Itoa(sp.Burst))
	}
	if sp.Component != "" {
		add("comp", sp.Component)
	}
	if sp.Agent >= 0 {
		add("agent", strconv.Itoa(sp.Agent))
	}
	if len(parts) == 0 {
		return sp.Profile
	}
	return sp.Profile + ":" + strings.Join(parts, ",")
}

// ParseSpec parses the CLI syntax "profile[:key=val,...]", e.g.
// "node-outage", "link-cascade:count=3,factor=0.3,seed=7", or
// "surge:burst=50,start=200". Unset keys take profile defaults at Build.
func ParseSpec(s string) (Spec, error) {
	sp := Spec{Node: -1, Link: -1, Agent: -1}
	s = strings.TrimSpace(s)
	if s == "" || s == ProfileNone {
		sp.Profile = ProfileNone
		return sp, nil
	}
	head, rest, _ := strings.Cut(s, ":")
	switch head {
	case ProfileNodeOutage, ProfileLinkOutage, ProfileLinkCascade, ProfileSurge, ProfileInstanceKill, ProfileAgentKill:
		sp.Profile = head
	default:
		return sp, fmt.Errorf("chaos: unknown profile %q (want %s)", head,
			strings.Join([]string{ProfileNodeOutage, ProfileLinkOutage, ProfileLinkCascade, ProfileSurge, ProfileInstanceKill, ProfileAgentKill, ProfileNone}, "|"))
	}
	if rest == "" {
		return sp, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return sp, fmt.Errorf("chaos: malformed option %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "start":
			sp.Start, err = strconv.ParseFloat(val, 64)
		case "duration":
			sp.Duration, err = strconv.ParseFloat(val, 64)
		case "count":
			sp.Count, err = strconv.Atoi(val)
		case "factor":
			sp.Factor, err = strconv.ParseFloat(val, 64)
		case "node":
			sp.Node, err = strconv.Atoi(val)
		case "link":
			sp.Link, err = strconv.Atoi(val)
		case "burst":
			sp.Burst, err = strconv.Atoi(val)
		case "comp":
			sp.Component = val
		case "agent":
			sp.Agent, err = strconv.Atoi(val)
		default:
			return sp, fmt.Errorf("chaos: unknown option %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("chaos: option %s: %v", key, err)
		}
	}
	return sp, nil
}

// AgentKill is a driver-level fault: at Time, the victim agent daemon
// (slot Agent modulo the fleet size) dies — its connection is severed or
// its process killed — and at Recover it comes back. Unlike simnet
// faults, agent kills do not flow through the simulator's event loop:
// the driver actuates them against the live agent pool, and the
// simulation observes only the consequences (failed decisions at the
// dead agent's nodes becoming invalid-action drops).
type AgentKill struct {
	Time    float64
	Recover float64
	Agent   int
}

// Schedule is a concrete, fully resolved fault scenario for one topology.
type Schedule struct {
	Spec   Spec
	Faults []simnet.Fault
	// AgentKills holds driver-level agent faults (agent-kill profile);
	// empty for purely in-simulator schedules.
	AgentKills []AgentKill
}

// DisruptiveTimes returns the injection times of disruptive faults in
// ascending order, collapsing same-time events (a cascade step degrading
// several links at once is one disruption). Agent kills count as
// disruptive: they dent service exactly like an in-simulator fault.
// These are the reference points for recovery analysis.
func (s *Schedule) DisruptiveTimes() []float64 {
	var ts []float64
	for _, ft := range s.Faults {
		if !ft.Kind.Disruptive() {
			continue
		}
		if len(ts) == 0 || ft.Time != ts[len(ts)-1] {
			ts = append(ts, ft.Time)
		}
	}
	for _, k := range s.AgentKills {
		ts = append(ts, k.Time)
	}
	sort.Float64s(ts)
	// The appended kill times may duplicate fault times; collapse again.
	out := ts[:0]
	for _, t := range ts {
		if len(out) == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Build resolves the spec against a topology: it picks victims (from the
// seed, avoiding the protected ingress/egress nodes and never
// disconnecting the surviving network), scales unset times to the
// horizon, and expands surges into individual arrival events. The result
// is a pure function of the inputs — two Builds with identical inputs
// yield identical schedules.
func (sp Spec) Build(g *graph.Graph, horizon float64, ingresses []graph.NodeID, egress graph.NodeID) (*Schedule, error) {
	if !sp.Enabled() {
		return &Schedule{Spec: sp}, nil
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("chaos: non-positive horizon %f", horizon)
	}
	if sp.Start <= 0 {
		sp.Start = 0.3 * horizon
	}
	if sp.Duration <= 0 {
		sp.Duration = 0.25 * horizon
	}
	if sp.Count <= 0 {
		sp.Count = 1
	}
	if sp.Factor <= 0 {
		sp.Factor = 0.5
	}
	if sp.Factor > 1 {
		return nil, fmt.Errorf("chaos: factor %f outside (0,1]", sp.Factor)
	}
	if sp.Burst <= 0 {
		sp.Burst = 20
	}

	protected := map[graph.NodeID]bool{egress: true}
	for _, v := range ingresses {
		protected[v] = true
	}
	rng := rand.New(rand.NewSource(sp.Seed))

	b := &builder{g: g, protected: protected, rng: rng}
	var err error
	var faults []simnet.Fault
	var kills []AgentKill
	switch sp.Profile {
	case ProfileNodeOutage:
		faults, err = b.nodeOutage(sp)
	case ProfileLinkOutage:
		faults, err = b.linkOutage(sp)
	case ProfileLinkCascade:
		faults, err = b.linkCascade(sp)
	case ProfileSurge:
		faults, err = b.surge(sp, ingresses)
	case ProfileInstanceKill:
		faults, err = b.instanceKill(sp)
	case ProfileAgentKill:
		kills = b.agentKill(sp)
	default:
		err = fmt.Errorf("chaos: unknown profile %q", sp.Profile)
	}
	if err != nil {
		return nil, err
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Time < faults[j].Time })
	return &Schedule{Spec: sp, Faults: faults, AgentKills: kills}, nil
}

// builder carries victim-selection state while expanding one spec.
type builder struct {
	g         *graph.Graph
	protected map[graph.NodeID]bool
	rng       *rand.Rand

	deadNodes map[graph.NodeID]bool
	deadLinks map[int]bool
}

// nodeOutage crashes Count nodes at Start and recovers them after
// Duration. Victims are distinct, unprotected, and removal-safe.
func (b *builder) nodeOutage(sp Spec) ([]simnet.Fault, error) {
	var faults []simnet.Fault
	for i := 0; i < sp.Count; i++ {
		var victim graph.NodeID
		if i == 0 && sp.Node >= 0 {
			if sp.Node >= b.g.NumNodes() {
				return nil, fmt.Errorf("chaos: node %d out of range", sp.Node)
			}
			victim = graph.NodeID(sp.Node)
			b.markNodeDead(victim)
		} else {
			v, ok := b.pickNode()
			if !ok {
				break // fewer safe victims than requested
			}
			victim = v
		}
		faults = append(faults,
			simnet.Fault{Time: sp.Start, Kind: simnet.FaultNodeDown, Node: victim},
			simnet.Fault{Time: sp.Start + sp.Duration, Kind: simnet.FaultNodeUp, Node: victim},
		)
	}
	if len(faults) == 0 {
		return nil, fmt.Errorf("chaos: no node can fail without disconnecting %s", b.g.Name())
	}
	return faults, nil
}

// linkOutage fails Count links at Start and restores them after Duration.
func (b *builder) linkOutage(sp Spec) ([]simnet.Fault, error) {
	links, err := b.victimLinks(sp)
	if err != nil {
		return nil, err
	}
	var faults []simnet.Fault
	for _, l := range links {
		faults = append(faults,
			simnet.Fault{Time: sp.Start, Kind: simnet.FaultLinkDown, Link: l},
			simnet.Fault{Time: sp.Start + sp.Duration, Kind: simnet.FaultLinkUp, Link: l},
		)
	}
	return faults, nil
}

// linkCascade degrades Count links to Factor capacity one after another,
// staggered over the first half of Duration, and restores them all at
// Start+Duration — a progressive brown-out rather than a clean cut.
func (b *builder) linkCascade(sp Spec) ([]simnet.Fault, error) {
	links, err := b.victimLinks(sp)
	if err != nil {
		return nil, err
	}
	stagger := sp.Duration / float64(2*len(links))
	var faults []simnet.Fault
	for i, l := range links {
		faults = append(faults,
			simnet.Fault{Time: sp.Start + float64(i)*stagger, Kind: simnet.FaultLinkDegrade, Link: l, Factor: sp.Factor},
			simnet.Fault{Time: sp.Start + sp.Duration, Kind: simnet.FaultLinkUp, Link: l},
		)
	}
	return faults, nil
}

// victimLinks picks Count distinct links (honoring a pinned first link)
// whose collective removal keeps the network connected — degradation
// shares the outage victim logic so cascade scenarios can turn into
// outage scenarios by switching profile only.
func (b *builder) victimLinks(sp Spec) ([]int, error) {
	var links []int
	if sp.Link >= 0 {
		if sp.Link >= b.g.NumLinks() {
			return nil, fmt.Errorf("chaos: link %d out of range", sp.Link)
		}
		links = append(links, sp.Link)
		b.markLinkDead(sp.Link)
	}
	for len(links) < sp.Count {
		l, ok := b.pickLink()
		if !ok {
			break
		}
		links = append(links, l)
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("chaos: no link can fail without disconnecting %s", b.g.Name())
	}
	return links, nil
}

// surge schedules Count bursts of Burst extra arrivals each, spread over
// Duration, every arrival individually pregenerated from the seed so the
// schedule replays identically.
func (b *builder) surge(sp Spec, ingresses []graph.NodeID) ([]simnet.Fault, error) {
	at := func(i int) graph.NodeID {
		if sp.Node >= 0 {
			return graph.NodeID(sp.Node)
		}
		if len(ingresses) > 0 {
			return ingresses[b.rng.Intn(len(ingresses))]
		}
		return graph.NodeID(b.rng.Intn(b.g.NumNodes()))
	}
	if sp.Node >= b.g.NumNodes() {
		return nil, fmt.Errorf("chaos: node %d out of range", sp.Node)
	}
	burstSpan := sp.Duration / float64(sp.Count)
	var faults []simnet.Fault
	for burst := 0; burst < sp.Count; burst++ {
		burstStart := sp.Start + float64(burst)*burstSpan
		// Arrivals cluster in the first fifth of the burst window: an
		// abrupt spike, then room to observe the recovery.
		for i := 0; i < sp.Burst; i++ {
			t := burstStart + b.rng.Float64()*burstSpan/5
			faults = append(faults, simnet.Fault{Time: t, Kind: simnet.FaultExtraArrival, Node: at(i)})
		}
	}
	return faults, nil
}

// instanceKill crashes the victim node's instances (scoped to Component
// when set) Count times, spread evenly over Duration — a crash-looping
// deployment rather than a hardware outage.
func (b *builder) instanceKill(sp Spec) ([]simnet.Fault, error) {
	var victim graph.NodeID
	if sp.Node >= 0 {
		if sp.Node >= b.g.NumNodes() {
			return nil, fmt.Errorf("chaos: node %d out of range", sp.Node)
		}
		victim = graph.NodeID(sp.Node)
	} else {
		v, ok := b.pickNode()
		if !ok {
			return nil, fmt.Errorf("chaos: no unprotected node in %s", b.g.Name())
		}
		victim = v
	}
	gap := sp.Duration / float64(sp.Count)
	var faults []simnet.Fault
	for i := 0; i < sp.Count; i++ {
		faults = append(faults, simnet.Fault{
			Time: sp.Start + float64(i)*gap, Kind: simnet.FaultInstanceKill,
			Node: victim, Component: sp.Component,
		})
	}
	return faults, nil
}

// agentKill schedules Count agent-daemon crashes spread evenly over
// Duration; each victim recovers halfway through its slot, so the run
// shows distinct dip-and-recover episodes. Victim slots are pinned by
// Spec.Agent or drawn from the seed; they are resolved modulo the fleet
// size when actuated, so the schedule stays fleet-size independent.
func (b *builder) agentKill(sp Spec) []AgentKill {
	gap := sp.Duration / float64(sp.Count)
	kills := make([]AgentKill, 0, sp.Count)
	for i := 0; i < sp.Count; i++ {
		slot := sp.Agent
		if slot < 0 {
			slot = b.rng.Intn(1 << 16)
		}
		t := sp.Start + float64(i)*gap
		kills = append(kills, AgentKill{Time: t, Recover: t + gap/2, Agent: slot})
	}
	return kills
}

// AgentKillActuator replays an agent-kill schedule against a live fleet.
// It is transport-agnostic: kill and revive receive a resolved agent
// slot and do whatever "dead" means for the deployment — severing a
// pooled connection for goroutine-hosted agents, or killing a real
// agentd process. Drive Advance from the decision path
// (coord.Remote.OnTime): simulation time, not wall time, triggers the
// faults, keeping chaos runs reproducible.
type AgentKillActuator struct {
	events []agentKillEvent
	next   int
	kill   func(slot int)
	revive func(slot int)

	// OnEvent, when set before the first Advance, observes every fired
	// event with its scheduled simulation time (after kill/revive ran).
	// Drivers feed it into telemetry so fault timelines carry sim time —
	// the fleet's own event ring only knows wall clocks.
	OnEvent func(simTime float64, slot int, revive bool)
}

type agentKillEvent struct {
	time   float64
	slot   int
	revive bool
}

// NewAgentKillActuator resolves the schedule's kills against a fleet of
// numAgents daemons (slots taken modulo the fleet size) and returns an
// actuator calling kill/revive as simulation time passes each event.
func NewAgentKillActuator(kills []AgentKill, numAgents int, kill, revive func(slot int)) *AgentKillActuator {
	a := &AgentKillActuator{kill: kill, revive: revive}
	for _, k := range kills {
		slot := k.Agent % numAgents
		a.events = append(a.events, agentKillEvent{time: k.Time, slot: slot})
		if k.Recover > k.Time {
			a.events = append(a.events, agentKillEvent{time: k.Recover, slot: slot, revive: true})
		}
	}
	sort.SliceStable(a.events, func(i, j int) bool { return a.events[i].time < a.events[j].time })
	return a
}

// Advance fires every event with time <= now, in order, at most once.
func (a *AgentKillActuator) Advance(now float64) {
	for a.next < len(a.events) && a.events[a.next].time <= now {
		ev := a.events[a.next]
		a.next++
		if ev.revive {
			a.revive(ev.slot)
		} else {
			a.kill(ev.slot)
		}
		if a.OnEvent != nil {
			a.OnEvent(ev.time, ev.slot, ev.revive)
		}
	}
}

// Done reports whether every scheduled event has fired.
func (a *AgentKillActuator) Done() bool { return a.next >= len(a.events) }

// pickNode draws a random unprotected node whose removal (together with
// previously chosen victims) keeps the surviving network connected.
func (b *builder) pickNode() (graph.NodeID, bool) {
	var candidates []graph.NodeID
	for _, n := range b.g.Nodes() {
		if b.protected[n.ID] || b.deadNodes[n.ID] {
			continue
		}
		if b.survivesWithout(n.ID, -1) {
			candidates = append(candidates, n.ID)
		}
	}
	if len(candidates) == 0 {
		return graph.None, false
	}
	v := candidates[b.rng.Intn(len(candidates))]
	b.markNodeDead(v)
	return v, true
}

// pickLink draws a random link whose removal (together with previously
// chosen victims) keeps the surviving network connected.
func (b *builder) pickLink() (int, bool) {
	var candidates []int
	for l := range b.g.Links() {
		if b.deadLinks[l] {
			continue
		}
		if b.survivesWithout(graph.None, l) {
			candidates = append(candidates, l)
		}
	}
	if len(candidates) == 0 {
		return -1, false
	}
	l := candidates[b.rng.Intn(len(candidates))]
	b.markLinkDead(l)
	return l, true
}

func (b *builder) markNodeDead(v graph.NodeID) {
	if b.deadNodes == nil {
		b.deadNodes = map[graph.NodeID]bool{}
	}
	b.deadNodes[v] = true
}

func (b *builder) markLinkDead(l int) {
	if b.deadLinks == nil {
		b.deadLinks = map[int]bool{}
	}
	b.deadLinks[l] = true
}

// survivesWithout reports whether the network stays connected over its
// surviving nodes after additionally removing extraNode (graph.None:
// none) and extraLink (-1: none). BFS over live adjacencies.
func (b *builder) survivesWithout(extraNode graph.NodeID, extraLink int) bool {
	nodeDead := func(v graph.NodeID) bool { return v == extraNode || b.deadNodes[v] }
	linkDead := func(l int) bool { return l == extraLink || b.deadLinks[l] }

	start := graph.None
	alive := 0
	for _, n := range b.g.Nodes() {
		if nodeDead(n.ID) {
			continue
		}
		alive++
		if start == graph.None {
			start = n.ID
		}
	}
	if alive == 0 {
		return false
	}
	visited := make([]bool, b.g.NumNodes())
	queue := []graph.NodeID{start}
	visited[start] = true
	reached := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ad := range b.g.Neighbors(v) {
			if linkDead(ad.Link) || nodeDead(ad.Neighbor) || visited[ad.Neighbor] {
				continue
			}
			visited[ad.Neighbor] = true
			reached++
			queue = append(queue, ad.Neighbor)
		}
	}
	return reached == alive
}
