package chaos

import (
	"testing"
)

// FuzzParseSpec drives the fault-spec parser with arbitrary CLI input.
// The seed corpus covers every profile, each option key, and the
// malformed classes the parser must reject (unknown profiles and keys,
// missing '=', non-numeric values, out-of-range floats); `go test`
// replays it as a regression suite, `go test -fuzz=FuzzParseSpec`
// explores further. The invariant: ParseSpec either errors, or returns
// a spec whose String() renders valid syntax that is a parse/render
// fixed point.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("none")
	f.Add("  node-outage  ")
	f.Add("node-outage:seed=7")
	f.Add("link-outage:link=3,duration=40")
	f.Add("link-cascade:count=3,factor=0.3,seed=7")
	f.Add("surge:burst=50,start=200")
	f.Add("instance-kill:node=2,comp=IDS")
	f.Add("node-outage:node=-1,start=0.5,duration=1e3")
	f.Add("meteor-strike")
	f.Add("none:seed=3")
	f.Add("node-outage:")
	f.Add("node-outage:seed")
	f.Add("node-outage:seed=")
	f.Add("node-outage:seed=x")
	f.Add("node-outage:start=1e999")
	f.Add("node-outage:start=NaN")
	f.Add("node-outage:count=9999999999999999999")
	f.Add("node-outage:warp=9")
	f.Add("node-outage:,")
	f.Add("instance-kill:comp=a=b")
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		rendered := sp.String()
		sp2, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("String() of parsed %q rendered unparseable %q: %v", s, rendered, err)
		}
		if again := sp2.String(); again != rendered {
			t.Fatalf("render not a fixed point for %q: %q -> %q", s, rendered, again)
		}
		if sp.Enabled() != sp2.Enabled() {
			t.Fatalf("Enabled() flipped across round trip of %q: %v -> %v", s, sp.Enabled(), sp2.Enabled())
		}
	})
}
