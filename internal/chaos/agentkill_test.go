package chaos

import (
	"reflect"
	"testing"

	"distcoord/internal/graph"
)

func TestParseSpecAgentKillRoundTrip(t *testing.T) {
	for _, in := range []string{
		"agent-kill",
		"agent-kill:count=2,agent=1,start=300,duration=400",
		"agent-kill:seed=9",
	} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		if sp.Profile != ProfileAgentKill {
			t.Fatalf("ParseSpec(%q) profile %q", in, sp.Profile)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseSpec(%q.String() = %q): %v", in, sp.String(), err)
		}
		if !reflect.DeepEqual(sp, again) {
			t.Errorf("round trip of %q: %+v != %+v", in, sp, again)
		}
	}
}

func TestBuildAgentKillSchedule(t *testing.T) {
	g := abilene(t)
	sp, err := ParseSpec("agent-kill:count=2,agent=1,start=300,duration=400")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := sp.Build(g, 2000, []graph.NodeID{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Faults) != 0 {
		t.Fatalf("agent-kill produced %d simnet faults, want 0", len(sched.Faults))
	}
	want := []AgentKill{
		{Time: 300, Recover: 400, Agent: 1},
		{Time: 500, Recover: 600, Agent: 1},
	}
	if !reflect.DeepEqual(sched.AgentKills, want) {
		t.Fatalf("AgentKills = %+v, want %+v", sched.AgentKills, want)
	}
	if got := sched.DisruptiveTimes(); !reflect.DeepEqual(got, []float64{300, 500}) {
		t.Fatalf("DisruptiveTimes = %v, want [300 500]", got)
	}
}

func TestBuildAgentKillSeedSelectsSlots(t *testing.T) {
	g := abilene(t)
	sp, err := ParseSpec("agent-kill:count=3,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	a, err := sp.Build(g, 2000, []graph.NodeID{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Build(g, 2000, []graph.NodeID{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.AgentKills, b.AgentKills) {
		t.Fatal("agent-kill schedule not deterministic for a fixed seed")
	}
	for _, k := range a.AgentKills {
		if k.Agent < 0 {
			t.Fatalf("seed-selected slot is negative: %+v", k)
		}
		if k.Recover <= k.Time {
			t.Fatalf("kill never recovers: %+v", k)
		}
	}
}

func TestAgentKillActuator(t *testing.T) {
	kills := []AgentKill{
		{Time: 100, Recover: 150, Agent: 4}, // slot 4 % 3 = 1
		{Time: 200, Recover: 0, Agent: 2},   // no recovery event
	}
	var log []string
	act := NewAgentKillActuator(kills, 3,
		func(slot int) { log = append(log, "kill "+string(rune('0'+slot))) },
		func(slot int) { log = append(log, "revive "+string(rune('0'+slot))) },
	)
	act.Advance(50)
	if len(log) != 0 {
		t.Fatalf("events fired before their time: %v", log)
	}
	act.Advance(100)
	act.Advance(100) // idempotent: once only
	if want := []string{"kill 1"}; !reflect.DeepEqual(log, want) {
		t.Fatalf("after t=100: %v, want %v", log, want)
	}
	if act.Done() {
		t.Fatal("actuator done with events pending")
	}
	act.Advance(1000)
	want := []string{"kill 1", "revive 1", "kill 2"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("after t=1000: %v, want %v", log, want)
	}
	if !act.Done() {
		t.Fatal("actuator not done after all events fired")
	}
}
