// Package traffic implements the flow arrival processes of the paper's
// evaluation (Sec. V-B): fixed-interval arrival, Poisson arrival,
// two-state Markov-modulated Poisson (MMPP) arrival, and trace-driven
// arrival from piecewise-constant rate series. All processes are
// deterministic given their random source.
package traffic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Process generates successive flow inter-arrival times at one ingress
// node. Implementations are not safe for concurrent use; each ingress
// gets its own instance.
type Process interface {
	// Next returns the time until the next flow arrival (≥ 0; only burst
	// processes return 0, for the simultaneous members of one burst).
	Next() float64
	// Name identifies the arrival pattern (for experiment labels).
	Name() string
}

// Fixed emits flows at a constant interval ("fixed flow arrival with
// flows arriving every 10 time steps", Fig. 6a).
type Fixed struct {
	Interval float64
}

// Next returns the constant interval.
func (f Fixed) Next() float64 { return f.Interval }

// Name implements Process.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%g)", f.Interval) }

// Poisson emits flows with exponentially distributed inter-arrival times
// (Fig. 6b, mean 10 in the base scenario).
type Poisson struct {
	Mean float64
	rng  *rand.Rand
}

// NewPoisson returns a Poisson process with the given mean inter-arrival
// time, drawing randomness from rng.
func NewPoisson(mean float64, rng *rand.Rand) *Poisson {
	return &Poisson{Mean: mean, rng: rng}
}

// Next draws an exponential inter-arrival time.
func (p *Poisson) Next() float64 {
	return expDraw(p.rng, p.Mean)
}

// Name implements Process.
func (p *Poisson) Name() string { return fmt.Sprintf("poisson(%g)", p.Mean) }

// expDraw returns an Exp(1/mean) sample, bounded away from zero so event
// times strictly advance.
func expDraw(rng *rand.Rand, mean float64) float64 {
	d := rng.ExpFloat64() * mean
	if d < 1e-9 {
		d = 1e-9
	}
	return d
}

// Burst emits K simultaneous flows every Interval time steps: the first
// member of each burst arrives Interval after the previous burst, the
// remaining K−1 members follow with zero gap. Burst cohorts exercise
// the batched decision path (many flows pending at one node and event
// time); K = 1 degenerates to Fixed.
type Burst struct {
	Interval float64
	K        int
	i        int
}

// Next returns Interval at each burst boundary and 0 within a burst.
func (b *Burst) Next() float64 {
	if b.K <= 1 {
		return b.Interval
	}
	b.i++
	if b.i%b.K == 1 {
		return b.Interval
	}
	return 0
}

// Name implements Process.
func (b *Burst) Name() string { return fmt.Sprintf("burst(%g,%d)", b.Interval, b.K) }

// MMPP is a two-state Markov-modulated Poisson process (Fig. 6c): flow
// inter-arrival times are exponential with the current state's mean; at
// every SwitchEvery time steps the state toggles with probability
// SwitchProb. The paper uses means 12 and 8, SwitchEvery 100, and
// SwitchProb 0.05.
type MMPP struct {
	MeanA, MeanB float64
	SwitchEvery  float64
	SwitchProb   float64

	rng          *rand.Rand
	inB          bool
	clock        float64 // process-local time of the last arrival
	nextBoundary float64
}

// NewMMPP returns a two-state MMPP starting in state A.
func NewMMPP(meanA, meanB, switchEvery, switchProb float64, rng *rand.Rand) *MMPP {
	return &MMPP{
		MeanA:        meanA,
		MeanB:        meanB,
		SwitchEvery:  switchEvery,
		SwitchProb:   switchProb,
		rng:          rng,
		nextBoundary: switchEvery,
	}
}

// Next returns the time until the next arrival, toggling the modulation
// state at every boundary crossed since the previous arrival. The
// returned inter-arrival time is the full elapsed time since the
// previous arrival, including the spans spent advancing to modulation
// boundaries — so the caller's simulation clock and the process-local
// clock stay in lockstep.
func (m *MMPP) Next() float64 {
	start := m.clock
	for {
		mean := m.MeanA
		if m.inB {
			mean = m.MeanB
		}
		d := expDraw(m.rng, mean)
		if m.clock+d < m.nextBoundary {
			m.clock += d
			return m.clock - start
		}
		// A state boundary lies before the tentative arrival: advance to
		// it, roll the switch, and redraw (memorylessness makes the
		// redraw statistically exact).
		m.clock = m.nextBoundary
		m.nextBoundary += m.SwitchEvery
		if m.rng.Float64() < m.SwitchProb {
			m.inB = !m.inB
		}
	}
}

// Clock returns the process-local time of the last arrival (the sum of
// all inter-arrival times returned so far).
func (m *MMPP) Clock() float64 { return m.clock }

// Name implements Process.
func (m *MMPP) Name() string {
	return fmt.Sprintf("mmpp(%g,%g)", m.MeanA, m.MeanB)
}

// InHighRateState reports whether the process is currently in state B.
func (m *MMPP) InHighRateState() bool { return m.inB }

// TraceSegment is one piecewise-constant section of a trace: flows arrive
// as a Poisson process with the given mean inter-arrival time for
// Duration time steps.
type TraceSegment struct {
	Duration float64
	Mean     float64
}

// Trace replays a rate series as a non-homogeneous Poisson process,
// standing in for the real-world Abilene traffic traces (Fig. 6d). The
// trace wraps around when exhausted.
type Trace struct {
	segments []TraceSegment
	rng      *rand.Rand
	seg      int
	clock    float64 // time within the current segment
	label    string
}

// NewTrace returns a trace-driven process over the given segments.
func NewTrace(label string, segments []TraceSegment, rng *rand.Rand) (*Trace, error) {
	if len(segments) == 0 {
		return nil, errors.New("traffic: empty trace")
	}
	for i, s := range segments {
		if s.Duration <= 0 || s.Mean <= 0 {
			return nil, fmt.Errorf("traffic: segment %d has non-positive duration or mean", i)
		}
	}
	return &Trace{segments: segments, rng: rng, label: label}, nil
}

// Next returns the time until the next arrival, walking across segment
// boundaries as needed.
func (t *Trace) Next() float64 {
	total := 0.0
	for {
		s := t.segments[t.seg]
		d := expDraw(t.rng, s.Mean)
		if t.clock+d < s.Duration {
			t.clock += d
			return total + d
		}
		total += s.Duration - t.clock
		t.clock = 0
		t.seg = (t.seg + 1) % len(t.segments)
	}
}

// Name implements Process.
func (t *Trace) Name() string { return "trace(" + t.label + ")" }

// SyntheticDiurnalTrace generates a day-shaped rate series: the mean
// inter-arrival time swings sinusoidally between baseMean (night, calm)
// and baseMean/peakFactor (daytime peak), with short random bursts
// superimposed. It substitutes for the SNDlib Abilene traces, preserving
// the property Fig. 6d exercises: non-stationary arrival rates with
// bursts that statically configured rules mishandle (see DESIGN.md,
// substitution 4).
func SyntheticDiurnalTrace(baseMean, peakFactor float64, periods int, rng *rand.Rand) []TraceSegment {
	const segmentsPerPeriod = 24
	const segmentLen = 100.0
	segs := make([]TraceSegment, 0, periods*segmentsPerPeriod)
	for p := 0; p < periods; p++ {
		for h := 0; h < segmentsPerPeriod; h++ {
			phase := 2 * math.Pi * float64(h) / segmentsPerPeriod
			// Load factor in [1, peakFactor]: 1 at night, peakFactor at noon.
			load := 1 + (peakFactor-1)*(1-math.Cos(phase))/2
			mean := baseMean / load
			// Occasional burst: a short segment with doubled arrival rate.
			if rng.Float64() < 0.15 {
				segs = append(segs,
					TraceSegment{Duration: segmentLen * 0.8, Mean: mean},
					TraceSegment{Duration: segmentLen * 0.2, Mean: mean / 2})
				continue
			}
			segs = append(segs, TraceSegment{Duration: segmentLen, Mean: mean})
		}
	}
	return segs
}

// Spec names an arrival pattern and builds fresh Process instances from a
// random source, so scenarios can create one independent process per
// ingress node per seed.
type Spec struct {
	Label string
	New   func(rng *rand.Rand) Process
}

// FixedSpec returns a Spec for constant-interval arrivals.
func FixedSpec(interval float64) Spec {
	return Spec{
		Label: Fixed{interval}.Name(),
		New:   func(*rand.Rand) Process { return Fixed{interval} },
	}
}

// PoissonSpec returns a Spec for Poisson arrivals with the given mean.
func PoissonSpec(mean float64) Spec {
	return Spec{
		Label: fmt.Sprintf("poisson(%g)", mean),
		New:   func(rng *rand.Rand) Process { return NewPoisson(mean, rng) },
	}
}

// BurstSpec returns a Spec for bursts of k simultaneous flows every
// interval time steps.
func BurstSpec(interval float64, k int) Spec {
	return Spec{
		Label: fmt.Sprintf("burst(%g,%d)", interval, k),
		New:   func(*rand.Rand) Process { return &Burst{Interval: interval, K: k} },
	}
}

// MMPPSpec returns a Spec for the paper's two-state MMPP.
func MMPPSpec(meanA, meanB, switchEvery, switchProb float64) Spec {
	return Spec{
		Label: fmt.Sprintf("mmpp(%g,%g)", meanA, meanB),
		New: func(rng *rand.Rand) Process {
			return NewMMPP(meanA, meanB, switchEvery, switchProb, rng)
		},
	}
}

// SyntheticTraceSpec returns a Spec for the synthetic diurnal trace.
func SyntheticTraceSpec(baseMean, peakFactor float64, periods int) Spec {
	return Spec{
		Label: "trace(diurnal)",
		New: func(rng *rand.Rand) Process {
			segs := SyntheticDiurnalTrace(baseMean, peakFactor, periods, rng)
			tr, err := NewTrace("diurnal", segs, rng)
			if err != nil {
				// SyntheticDiurnalTrace always yields valid segments.
				panic(fmt.Sprintf("traffic: building synthetic trace: %v", err))
			}
			return tr
		},
	}
}
