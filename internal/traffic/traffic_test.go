package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixed(t *testing.T) {
	p := Fixed{Interval: 10}
	for i := 0; i < 5; i++ {
		if got := p.Next(); got != 10 {
			t.Fatalf("Next() = %f, want 10", got)
		}
	}
	if p.Name() != "fixed(10)" {
		t.Errorf("Name() = %q", p.Name())
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NewPoisson(10, rng)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		d := p.Next()
		if d <= 0 {
			t.Fatalf("non-positive inter-arrival time %f", d)
		}
		sum += d
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Errorf("empirical mean = %f, want ~10", mean)
	}
}

func TestPoissonVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPoisson(10, rng)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		d := p.Next()
		sum += d
		sumSq += d * d
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	// Exponential: variance = mean^2 = 100.
	if math.Abs(variance-100) > 5 {
		t.Errorf("empirical variance = %f, want ~100", variance)
	}
}

func TestMMPPMeanBetweenStates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMMPP(12, 8, 100, 0.05, rng)
	const n = 300000
	sum := 0.0
	for i := 0; i < n; i++ {
		d := m.Next()
		if d <= 0 {
			t.Fatalf("non-positive inter-arrival time %f", d)
		}
		sum += d
	}
	mean := sum / n
	// Long-run mean must lie strictly between the two state means; with a
	// symmetric switch it converges near the rate-weighted mean ~9.6.
	if mean <= 8 || mean >= 12 {
		t.Errorf("empirical mean = %f, want in (8, 12)", mean)
	}
}

// TestMMPPClockMatchesReturnedTimes is the regression test for the
// boundary-crossing clock drift: the sum of returned inter-arrival
// times (the caller's simulation clock) must exactly equal the process's
// own clock across many modulation-boundary crossings. Before the fix,
// Next dropped the time spent advancing to each boundary, so the two
// clocks desynchronized permanently and inter-arrival times were
// systematically shortened.
func TestMMPPClockMatchesReturnedTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Short switch interval relative to the means forces frequent
	// boundary crossings: with means ~10 and boundaries every 5, almost
	// every draw crosses at least one boundary.
	m := NewMMPP(12, 8, 5, 0.05, rng)
	simClock := 0.0
	boundaries := 0
	const n = 2000
	for i := 0; i < n; i++ {
		before := m.Clock()
		d := m.Next()
		if d <= 0 {
			t.Fatalf("non-positive inter-arrival time %f", d)
		}
		simClock += d
		// Count boundary crossings via the process clock: each Next
		// advances it by the returned amount, crossing
		// floor(after/5)-floor(before/5) boundaries.
		boundaries += int(m.Clock()/m.SwitchEvery) - int(before/m.SwitchEvery)
		if math.Abs(simClock-m.Clock()) > 1e-6*math.Max(1, simClock) {
			t.Fatalf("after %d arrivals: sim clock %f != process clock %f", i+1, simClock, m.Clock())
		}
	}
	if boundaries < 100 {
		t.Fatalf("only %d boundary crossings exercised, want >= 100", boundaries)
	}
	// Cross-check the long-run mean: elapsed/arrivals must lie between
	// the two state means (the pre-fix bug pushed it below both).
	mean := simClock / n
	if mean <= 8 || mean >= 12 {
		t.Errorf("empirical mean inter-arrival %f, want in (8, 12)", mean)
	}
}

func TestMMPPActuallySwitches(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMMPP(12, 8, 100, 0.05, rng)
	sawB := false
	for i := 0; i < 100000 && !sawB; i++ {
		m.Next()
		sawB = sawB || m.InHighRateState()
	}
	if !sawB {
		t.Error("MMPP never entered its high-rate state")
	}
}

func TestTraceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := NewTrace("x", nil, rng); err == nil {
		t.Error("NewTrace accepted empty trace")
	}
	if _, err := NewTrace("x", []TraceSegment{{Duration: 0, Mean: 1}}, rng); err == nil {
		t.Error("NewTrace accepted zero-duration segment")
	}
	if _, err := NewTrace("x", []TraceSegment{{Duration: 1, Mean: -1}}, rng); err == nil {
		t.Error("NewTrace accepted negative mean")
	}
}

func TestTraceFollowsSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Two segments with very different rates; count arrivals per window.
	tr, err := NewTrace("test", []TraceSegment{
		{Duration: 10000, Mean: 2},
		{Duration: 10000, Mean: 50},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	clock := 0.0
	inFirst, inSecond := 0, 0
	for clock < 20000 {
		clock += tr.Next()
		if clock < 10000 {
			inFirst++
		} else if clock < 20000 {
			inSecond++
		}
	}
	if inFirst < 10*inSecond {
		t.Errorf("arrivals: segment1=%d segment2=%d; want segment1 >> segment2", inFirst, inSecond)
	}
}

func TestTraceWrapsAround(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, err := NewTrace("wrap", []TraceSegment{{Duration: 5, Mean: 1}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < 1000; i++ {
		total += tr.Next()
	}
	if total < 500 {
		t.Errorf("1000 arrivals only advanced %f time; trace did not wrap correctly", total)
	}
}

func TestSyntheticDiurnalTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	segs := SyntheticDiurnalTrace(10, 2, 3, rng)
	if len(segs) < 3*24 {
		t.Fatalf("got %d segments, want >= 72", len(segs))
	}
	minMean, maxMean := math.Inf(1), 0.0
	for _, s := range segs {
		if s.Duration <= 0 || s.Mean <= 0 {
			t.Fatalf("invalid segment %+v", s)
		}
		minMean = math.Min(minMean, s.Mean)
		maxMean = math.Max(maxMean, s.Mean)
	}
	// Peak rate is at least peakFactor higher than the calm rate.
	if maxMean/minMean < 2 {
		t.Errorf("mean swing %f..%f too flat for a diurnal pattern", minMean, maxMean)
	}
}

// Property: every process only ever emits strictly positive inter-arrival
// times, for arbitrary seeds.
func TestProcessesAlwaysPositive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := []Process{
			Fixed{Interval: 10},
			NewPoisson(10, rng),
			NewMMPP(12, 8, 100, 0.05, rng),
		}
		tr, err := NewTrace("t", SyntheticDiurnalTrace(10, 2, 1, rng), rng)
		if err != nil {
			return false
		}
		procs = append(procs, tr)
		for _, p := range procs {
			for i := 0; i < 200; i++ {
				if p.Next() <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpecsProduceIndependentProcesses(t *testing.T) {
	specs := []Spec{
		FixedSpec(10),
		PoissonSpec(10),
		MMPPSpec(12, 8, 100, 0.05),
		SyntheticTraceSpec(10, 2, 2),
	}
	for _, s := range specs {
		t.Run(s.Label, func(t *testing.T) {
			p1 := s.New(rand.New(rand.NewSource(1)))
			p2 := s.New(rand.New(rand.NewSource(1)))
			// Same seed, same sequence (determinism).
			for i := 0; i < 50; i++ {
				if a, b := p1.Next(), p2.Next(); a != b {
					t.Fatalf("same-seed processes diverged at draw %d: %f vs %f", i, a, b)
				}
			}
		})
	}
}
