package rl

import (
	"math/rand"
	"testing"
)

func testAgent(t testing.TB) *Agent {
	t.Helper()
	a, err := NewAgent(AgentConfig{ObsSize: 6, NumActions: 3, Hidden: []int{16}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSampleActionWithMatchesSampleAction: the scratch-based variant must
// consume the random stream identically and produce the same action
// sequence as the allocating one.
func TestSampleActionWithMatchesSampleAction(t *testing.T) {
	a := testAgent(t)
	sc := a.NewScratch()
	obs := make([]float64, 6)
	src := rand.New(rand.NewSource(1))
	for i := range obs {
		obs[i] = src.NormFloat64()
	}
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		want := a.SampleAction(obs, r1)
		got := a.SampleActionWith(sc, obs, r2)
		if got != want {
			t.Fatalf("step %d: SampleActionWith = %d, SampleAction = %d", i, got, want)
		}
	}
}

func TestSampleActionWithZeroAllocs(t *testing.T) {
	a := testAgent(t)
	sc := a.NewScratch()
	rng := rand.New(rand.NewSource(2))
	obs := make([]float64, 6)
	a.SampleActionWith(sc, obs, rng) // warm up
	allocs := testing.AllocsPerRun(200, func() {
		a.SampleActionWith(sc, obs, rng)
	})
	if allocs != 0 {
		t.Errorf("SampleActionWith allocates %v times per run, want 0", allocs)
	}
}
