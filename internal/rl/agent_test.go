package rl

import (
	"math"
	"math/rand"
	"testing"
)

func smallConfig() AgentConfig {
	return AgentConfig{
		ObsSize:    2,
		NumActions: 2,
		Hidden:     []int{16},
		LR:         5e-3,
		Seed:       1,
	}
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(AgentConfig{ObsSize: 0, NumActions: 2}); err == nil {
		t.Error("accepted zero ObsSize")
	}
	if _, err := NewAgent(AgentConfig{ObsSize: 2, NumActions: 1}); err == nil {
		t.Error("accepted single action")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := AgentConfig{ObsSize: 16, NumActions: 4}.withDefaults()
	if len(cfg.Hidden) != 2 || cfg.Hidden[0] != 256 || cfg.Hidden[1] != 256 {
		t.Errorf("hidden = %v, want [256 256]", cfg.Hidden)
	}
	if cfg.Gamma != 0.99 {
		t.Errorf("gamma = %f, want 0.99", cfg.Gamma)
	}
	if cfg.EntropyCoef != 0.01 {
		t.Errorf("entropy coef = %f, want 0.01", cfg.EntropyCoef)
	}
	if cfg.ValueCoef != 0.25 {
		t.Errorf("value coef = %f, want 0.25", cfg.ValueCoef)
	}
	if cfg.MaxGradNorm != 0.5 {
		t.Errorf("max grad = %f, want 0.5", cfg.MaxGradNorm)
	}
	if cfg.KLLimit != 0.15 {
		t.Errorf("KL limit = %f, want 0.15 (RMSprop-tuned trust region)", cfg.KLLimit)
	}
}

func TestProbsAreDistribution(t *testing.T) {
	a, err := NewAgent(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := a.Probs([]float64{0.5, -0.5})
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %f", sum)
	}
}

func TestUpdateRejectsEmptyBatch(t *testing.T) {
	a, err := NewAgent(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update(nil); err == nil {
		t.Error("Update accepted empty batch")
	}
}

func TestUpdateRejectsWrongObsSize(t *testing.T) {
	a, err := NewAgent(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Update([]Trajectory{{Steps: []Step{{Obs: []float64{1}, Action: 0}}}})
	if err == nil {
		t.Error("Update accepted wrong observation size")
	}
}

func TestUpdateMeanReturn(t *testing.T) {
	cfg := smallConfig()
	cfg.Gamma = 0.5
	a, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One trajectory, rewards 1 then 2: returns are 1+0.5*2=2 and 2.
	batch := []Trajectory{{Steps: []Step{
		{Obs: []float64{1, 0}, Action: 0, Reward: 1},
		{Obs: []float64{0, 1}, Action: 1, Reward: 2},
	}}}
	st, err := a.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanReturn-2) > 1e-9 {
		t.Errorf("MeanReturn = %f, want 2", st.MeanReturn)
	}
	if st.Steps != 2 {
		t.Errorf("Steps = %d, want 2", st.Steps)
	}
}

// TestPolicyLearnsContextualBandit: after training on a two-context
// bandit (context i rewards action i), the greedy policy must pick the
// right action per context.
func TestPolicyLearnsContextualBandit(t *testing.T) {
	cfg := smallConfig()
	a, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	contexts := [][]float64{{1, 0}, {0, 1}}
	for iter := 0; iter < 400; iter++ {
		var batch []Trajectory
		for i := 0; i < 16; i++ {
			ctx := contexts[rng.Intn(2)]
			act := a.SampleAction(ctx, rng)
			reward := -1.0
			if (ctx[0] == 1 && act == 0) || (ctx[1] == 1 && act == 1) {
				reward = 1
			}
			batch = append(batch, Trajectory{Steps: []Step{{Obs: ctx, Action: act, Reward: reward}}})
		}
		if _, err := a.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.GreedyAction(contexts[0]); got != 0 {
		t.Errorf("context 0: greedy action = %d, want 0", got)
	}
	if got := a.GreedyAction(contexts[1]); got != 1 {
		t.Errorf("context 1: greedy action = %d, want 1", got)
	}
	// The critic should value both contexts near +1 (always achievable).
	for _, ctx := range contexts {
		if v := a.Value(ctx); v < 0 {
			t.Errorf("value of winning context = %f, want > 0", v)
		}
	}
}

// TestKLGuardBoundsUpdates: with an aggressive learning rate the raw step
// would blow past the KL limit; the guard must backtrack.
func TestKLGuardBoundsUpdates(t *testing.T) {
	cfg := smallConfig()
	cfg.LR = 0.5 // intentionally destructive
	cfg.KLLimit = 0.001
	a, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	backtracked := false
	for iter := 0; iter < 20; iter++ {
		var batch []Trajectory
		for i := 0; i < 8; i++ {
			obs := []float64{rng.Float64(), rng.Float64()}
			act := a.SampleAction(obs, rng)
			batch = append(batch, Trajectory{Steps: []Step{{Obs: obs, Action: act, Reward: rng.Float64() * 20}}})
		}
		st, err := a.Update(batch)
		if err != nil {
			t.Fatal(err)
		}
		backtracked = backtracked || st.Backtracked
	}
	if !backtracked {
		t.Error("KL guard never engaged despite destructive learning rate")
	}
}

func TestNormalizeInPlace(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	normalizeInPlace(xs)
	mean, sq := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= 4
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	if math.Abs(mean) > 1e-9 || math.Abs(sq/4-1) > 1e-9 {
		t.Errorf("normalized mean=%f var=%f, want 0/1", mean, sq/4)
	}
	// Constant input: unchanged (no division by zero).
	cs := []float64{5, 5, 5}
	normalizeInPlace(cs)
	for _, c := range cs {
		if c != 5 {
			t.Errorf("constant input modified: %v", cs)
		}
	}
	one := []float64{3}
	normalizeInPlace(one)
	if one[0] != 3 {
		t.Error("single element modified")
	}
}

func TestPolicyFunc(t *testing.T) {
	p := PolicyFunc(func(obs []float64) int { return 7 })
	if got := p.SelectAction(nil); got != 7 {
		t.Errorf("PolicyFunc = %d, want 7", got)
	}
}
