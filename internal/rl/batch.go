package rl

import (
	"math/rand"

	"distcoord/internal/nn"
)

// BatchPolicy is an optional Policy capability: select one action per
// observation row with a single batched forward pass. obs holds n
// row-major observations; implementations fill actions[i] for row i,
// drawing any sampling randomness in row order, so the per-row results
// are identical to n sequential SelectAction calls on the same stream.
type BatchPolicy interface {
	Policy
	SelectActions(obs []float64, n int, actions []int)
}

// BatchScratch holds one caller's reusable batched-inference buffers
// (batch workspace plus a probability matrix). Not safe for concurrent
// use; each caller owns its own.
type BatchScratch struct {
	bws   *nn.BatchWorkspace
	probs []float64
	w     int // action-space width
}

// NewBatchScratch allocates batched-inference buffers sized for the
// agent's actor. The probability matrix grows to the largest batch seen.
func (a *Agent) NewBatchScratch() *BatchScratch {
	return &BatchScratch{
		bws: a.Actor.NewBatchWorkspace(),
		w:   a.cfg.NumActions,
	}
}

// SampleActionsWith draws one action per observation row of obs (n rows,
// row-major) into actions, using a single batched actor forward pass.
// Row i's action is bit-identical to a SampleActionWith call on the same
// observation and random source: the forward pass preserves per-row
// operation order and the stream is consumed in row order.
func (a *Agent) SampleActionsWith(sc *BatchScratch, obs []float64, n int, rng *rand.Rand, actions []int) {
	logits := a.Actor.ForwardBatchInto(sc.bws, obs, n)
	if cap(sc.probs) < n*sc.w {
		sc.probs = make([]float64, n*sc.w)
	}
	probs := nn.SoftmaxBatchInto(logits, n, sc.w, sc.probs[:n*sc.w])
	for b := 0; b < n; b++ {
		actions[b] = nn.SampleCategorical(rng, probs[b*sc.w:(b+1)*sc.w])
	}
}

// SelectActions implements BatchPolicy, batching the actor forward pass
// across the rows. The scratch is created on first use, so purely
// sequential rollouts never pay for it.
func (p *samplingPolicy) SelectActions(obs []float64, n int, actions []int) {
	if p.bsc == nil {
		p.bsc = p.agent.NewBatchScratch()
	}
	p.agent.SampleActionsWith(p.bsc, obs, n, p.rng, actions)
}
