// Package rl implements the reinforcement learning machinery of Sec. IV-C:
// an advantage actor-critic with separate actor and critic networks,
// shaped discounted returns, entropy regularization, gradient clipping,
// and a KL trust-region guard that keeps policy updates gradual — our
// stdlib stand-in for ACKTR's Kronecker-factored natural gradient
// (DESIGN.md, substitution 1). Training pools trajectories from parallel
// environment copies and runs k independent seeds, selecting the best
// agent for inference (Alg. 1).
package rl

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"distcoord/internal/nn"
)

// Step is one decision in a trajectory: the observation the agent saw,
// the action it took, and the total reward attributed to that action
// (shaped rewards plus any terminal reward).
type Step struct {
	Obs    []float64
	Action int
	Reward float64
}

// Trajectory is the ordered decision sequence of one episode unit (for
// service coordination: all decisions made for one flow, by whichever
// node's agent — pooling them trains the single shared network on
// experience from all agents, Sec. IV-C).
type Trajectory struct {
	Steps []Step
}

// AgentConfig parameterizes an actor-critic agent. Zero values select the
// paper's hyperparameters (Sec. V-A2) where applicable.
type AgentConfig struct {
	ObsSize    int
	NumActions int
	// Hidden layer sizes; default 2x256 with tanh (paper Sec. V-A2).
	Hidden []int
	// Gamma is the discount factor; default 0.99.
	Gamma float64
	// LR is the RMSprop learning rate. The paper's 0.25 applies to
	// ACKTR's natural gradient; for plain RMSprop the stable default is
	// 7e-4 (substitution 1). Default 7e-4.
	LR float64
	// EntropyCoef weights the entropy bonus; default 0.01 (paper).
	EntropyCoef float64
	// ValueCoef weights the critic loss; default 0.25 (paper).
	ValueCoef float64
	// MaxGradNorm clips gradients; default 0.5 (paper).
	MaxGradNorm float64
	// KLLimit bounds per-update policy divergence: updates exceeding it
	// are rolled back and retried with a smaller step. Default 0.15.
	// Note: this is a hard per-update trust region, not ACKTR's kl_clip
	// damping parameter (the paper's 0.001), which bounds the natural
	// gradient's local approximation rather than the realized update —
	// a 0.001 hard bound would freeze RMSprop learning (DESIGN.md,
	// substitution 1).
	KLLimit float64
	// Seed initializes weights and action sampling.
	Seed int64
}

// withDefaults fills zero fields.
func (c AgentConfig) withDefaults() AgentConfig {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{256, 256}
	}
	if c.Gamma == 0 {
		c.Gamma = 0.99
	}
	if c.LR == 0 {
		c.LR = 7e-4
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.ValueCoef == 0 {
		c.ValueCoef = 0.25
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 0.5
	}
	if c.KLLimit == 0 {
		c.KLLimit = 0.15
	}
	return c
}

func (c AgentConfig) validate() error {
	if c.ObsSize <= 0 {
		return errors.New("rl: ObsSize must be positive")
	}
	if c.NumActions <= 1 {
		return errors.New("rl: NumActions must be at least 2")
	}
	return nil
}

// Agent is an actor-critic pair: π_θ maps observations to action logits,
// V_φ estimates state values.
type Agent struct {
	cfg       AgentConfig
	Actor     *nn.MLP
	Critic    *nn.MLP
	actorOpt  *nn.RMSProp
	criticOpt *nn.RMSProp
	rng       *rand.Rand
}

// NewAgent builds randomly initialized actor and critic networks.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := append(append([]int{cfg.ObsSize}, cfg.Hidden...), cfg.NumActions)
	criticSizes := append(append([]int{cfg.ObsSize}, cfg.Hidden...), 1)
	return &Agent{
		cfg:       cfg,
		Actor:     nn.NewMLP(rng, actorSizes...),
		Critic:    nn.NewMLP(rng, criticSizes...),
		actorOpt:  nn.NewRMSProp(cfg.LR),
		criticOpt: nn.NewRMSProp(cfg.LR),
		rng:       rng,
	}, nil
}

// Config returns the (default-filled) agent configuration.
func (a *Agent) Config() AgentConfig { return a.cfg }

// Probs returns the policy distribution π_θ(·|obs).
func (a *Agent) Probs(obs []float64) []float64 {
	return nn.Softmax(a.Actor.Forward(obs))
}

// Scratch holds one caller's reusable inference buffers (actor forward
// workspace plus a probability vector), so per-decision sampling in the
// rollout hot path performs zero allocations. Not safe for concurrent
// use; each rollout goroutine owns its own.
type Scratch struct {
	ws    *nn.Workspace
	probs []float64
}

// NewScratch allocates inference buffers sized for the agent's actor.
func (a *Agent) NewScratch() *Scratch {
	return &Scratch{
		ws:    a.Actor.NewWorkspace(),
		probs: make([]float64, a.cfg.NumActions),
	}
}

// SampleAction draws an action from π_θ(·|obs) using the given random
// source (callers running parallel rollouts pass per-goroutine sources;
// the actor forward pass is read-only and safe to share).
func (a *Agent) SampleAction(obs []float64, rng *rand.Rand) int {
	return nn.SampleCategorical(rng, a.Probs(obs))
}

// SampleActionWith is SampleAction with caller-owned scratch buffers: the
// allocation-free variant for rollout and online-inference hot paths.
func (a *Agent) SampleActionWith(sc *Scratch, obs []float64, rng *rand.Rand) int {
	logits := a.Actor.ForwardInto(sc.ws, obs)
	return nn.SampleCategorical(rng, nn.SoftmaxInto(logits, sc.probs))
}

// GreedyAction returns argmax_a π_θ(a|obs), used for deterministic
// inference after deployment.
func (a *Agent) GreedyAction(obs []float64) int {
	return nn.Argmax(a.Actor.Forward(obs))
}

// Value returns V_φ(obs).
func (a *Agent) Value(obs []float64) float64 {
	return a.Critic.Forward(obs)[0]
}

// UpdateStats reports one training update.
type UpdateStats struct {
	Steps       int
	MeanReturn  float64
	ValueLoss   float64
	PolicyLoss  float64
	Entropy     float64
	KL          float64 // divergence of the applied update
	GradNorm    float64
	Backtracked bool // update exceeded KLLimit and was re-done smaller
}

// Update performs one training step on a batch of trajectories:
// discounted returns, advantage computation, critic regression, policy
// gradient with entropy bonus, gradient clipping, and the KL trust-region
// guard.
func (a *Agent) Update(batch []Trajectory) (UpdateStats, error) {
	var steps []Step
	var returns []float64
	for _, tr := range batch {
		// Backward discounted returns; trajectories are terminal (flows
		// always end), so no bootstrap tail is needed.
		r := 0.0
		rets := make([]float64, len(tr.Steps))
		for i := len(tr.Steps) - 1; i >= 0; i-- {
			r = tr.Steps[i].Reward + a.cfg.Gamma*r
			rets[i] = r
		}
		steps = append(steps, tr.Steps...)
		returns = append(returns, rets...)
	}
	if len(steps) == 0 {
		return UpdateStats{}, errors.New("rl: empty training batch")
	}
	st := UpdateStats{Steps: len(steps)}
	for _, r := range returns {
		st.MeanReturn += r
	}
	st.MeanReturn /= float64(len(returns))

	// Critic update and advantages.
	advantages := make([]float64, len(steps))
	a.Critic.ZeroGrad()
	for i, s := range steps {
		if len(s.Obs) != a.cfg.ObsSize {
			return st, fmt.Errorf("rl: step %d observation size %d, want %d", i, len(s.Obs), a.cfg.ObsSize)
		}
		tape := a.Critic.ForwardTape(s.Obs)
		v := tape.Output()[0]
		diff := v - returns[i]
		advantages[i] = returns[i] - v
		st.ValueLoss += 0.5 * diff * diff
		a.Critic.Backward(tape, []float64{a.cfg.ValueCoef * diff / float64(len(steps))})
	}
	st.ValueLoss /= float64(len(steps))
	nn.ClipGradients(a.Critic.Grads(), a.cfg.MaxGradNorm)
	a.criticOpt.Step(a.Critic.Params(), a.Critic.Grads())

	// Normalize advantages for stable policy steps under the ±10 reward
	// scale.
	normalizeInPlace(advantages)

	// Remember pre-update policy for the trust-region check.
	oldActor := a.Actor.Clone()
	oldProbs := make([][]float64, len(steps))
	for i, s := range steps {
		oldProbs[i] = nn.Softmax(oldActor.Forward(s.Obs))
	}

	applyPolicyStep := func(scale float64) float64 {
		a.Actor.ZeroGrad()
		st.PolicyLoss, st.Entropy = 0, 0
		for i, s := range steps {
			tape := a.Actor.ForwardTape(s.Obs)
			logits := tape.Output()
			probs := nn.Softmax(logits)
			logProbs := nn.LogSoftmax(logits)
			h := nn.Entropy(probs)
			adv := advantages[i]
			st.PolicyLoss += -adv * logProbs[s.Action]
			st.Entropy += h
			dLogits := make([]float64, len(logits))
			for j := range dLogits {
				onehot := 0.0
				if j == s.Action {
					onehot = 1
				}
				// Policy gradient of −A·logπ(a) plus entropy bonus
				// gradient of −β·H.
				dLogits[j] = (adv*(probs[j]-onehot) +
					a.cfg.EntropyCoef*probs[j]*(logProbs[j]+h)) / float64(len(steps))
				dLogits[j] *= scale
			}
			a.Actor.Backward(tape, dLogits)
		}
		st.PolicyLoss /= float64(len(steps))
		st.Entropy /= float64(len(steps))
		norm := nn.ClipGradients(a.Actor.Grads(), a.cfg.MaxGradNorm)
		a.actorOpt.Step(a.Actor.Params(), a.Actor.Grads())
		return norm
	}

	meanKL := func() float64 {
		kl := 0.0
		for i, s := range steps {
			kl += nn.KL(oldProbs[i], a.Probs(s.Obs))
		}
		return kl / float64(len(steps))
	}

	st.GradNorm = applyPolicyStep(1)
	st.KL = meanKL()
	// Trust region guard (ACKTR stand-in): when the update moves the
	// policy more than KLLimit, roll back and retake a smaller step, up
	// to a few halvings.
	scale := 1.0
	for tries := 0; st.KL > a.cfg.KLLimit && tries < 4; tries++ {
		st.Backtracked = true
		if err := a.Actor.CopyWeightsFrom(oldActor); err != nil {
			return st, err
		}
		scale /= 2
		st.GradNorm = applyPolicyStep(scale)
		st.KL = meanKL()
	}
	return st, nil
}

// normalizeInPlace standardizes xs to zero mean and unit variance (no-op
// for constant inputs).
func normalizeInPlace(xs []float64) {
	if len(xs) < 2 {
		return
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	variance := 0.0
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	sd := math.Sqrt(variance)
	if sd < 1e-8 {
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / sd
	}
}
