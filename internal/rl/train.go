package rl

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy selects actions from observations; environments roll out
// episodes against it.
type Policy interface {
	SelectAction(obs []float64) int
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(obs []float64) int

// SelectAction implements Policy.
func (f PolicyFunc) SelectAction(obs []float64) int { return f(obs) }

// Env runs one training episode under the given policy and returns the
// collected trajectories plus an episode score (higher is better; for
// service coordination this is the flow success ratio). Implementations
// need not be safe for concurrent use — each parallel environment copy
// gets its own instance.
type Env interface {
	Rollout(p Policy) ([]Trajectory, float64, error)
}

// TrainConfig parameterizes the centralized training procedure of
// Alg. 1: l parallel environment copies feeding one shared actor-critic,
// repeated for k independent seeds, keeping the best agent.
type TrainConfig struct {
	Agent AgentConfig
	// Episodes is the number of update iterations per seed.
	Episodes int
	// ParallelEnvs is l, the number of parallel environment copies
	// (paper: 4).
	ParallelEnvs int
	// Seeds is k, the number of independently trained agents (paper: 10).
	Seeds int
	// NewEnv creates an environment copy. envSeed is unique per
	// (training seed, environment index).
	NewEnv func(envSeed int64) (Env, error)
	// LRDecay linearly decays the learning rate to 10% of its initial
	// value across episodes (cf. stable-baselines schedules). The decay
	// only applies during training: trainOneSeed restores the base rate
	// afterwards, so a returned agent is not stuck at the final 10%.
	LRDecay bool
	// OnEpisode, when non-nil, receives one structured record per
	// training episode — the telemetry feed for Fig. 5-style training
	// curves. Seeds train concurrently, so implementations must be safe
	// for concurrent use (telemetry.Sink is; a bare slice append is not).
	OnEpisode func(EpisodeRecord)
	// Progress, when non-nil, receives per-episode updates. It is a thin
	// compatibility adapter over OnEpisode's record and is called with
	// the same concurrency caveats.
	Progress func(seed, episode int, stats UpdateStats, score float64)
}

// EpisodeRecord is one structured per-episode training record: the
// identifying (seed, episode) pair, the effective learning rate, the
// update diagnostics, the episode score (success ratio for service
// coordination), and wall-clock timings of the rollout and update
// phases. JSON field names are stable — they are the schema of the
// -episode-log JSONL output.
type EpisodeRecord struct {
	Seed        int     `json:"seed"`
	Episode     int     `json:"episode"`
	LR          float64 `json:"lr"`
	Score       float64 `json:"score"`
	Steps       int     `json:"steps"`
	MeanReturn  float64 `json:"mean_return"`
	PolicyLoss  float64 `json:"policy_loss"`
	ValueLoss   float64 `json:"value_loss"`
	Entropy     float64 `json:"entropy"`
	KL          float64 `json:"kl"`
	GradNorm    float64 `json:"grad_norm"`
	Backtracked bool    `json:"backtracked,omitempty"`
	RolloutMS   float64 `json:"rollout_ms"`
	UpdateMS    float64 `json:"update_ms"`
}

// Stats returns the update diagnostics in UpdateStats form (the inverse
// of the record's flattening, for the Progress adapter).
func (r EpisodeRecord) Stats() UpdateStats {
	return UpdateStats{
		Steps:       r.Steps,
		MeanReturn:  r.MeanReturn,
		ValueLoss:   r.ValueLoss,
		PolicyLoss:  r.PolicyLoss,
		Entropy:     r.Entropy,
		KL:          r.KL,
		GradNorm:    r.GradNorm,
		Backtracked: r.Backtracked,
	}
}

func (c *TrainConfig) validate() error {
	if c.Episodes <= 0 {
		return errors.New("rl: Episodes must be positive")
	}
	if c.ParallelEnvs <= 0 {
		c.ParallelEnvs = 1
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.NewEnv == nil {
		return errors.New("rl: NewEnv is nil")
	}
	return nil
}

// TrainResult summarizes a training run.
type TrainResult struct {
	BestSeed   int
	BestScore  float64
	SeedScores []float64
}

// Train runs the full procedure: for each of k seeds, train an agent over
// the configured episodes using l parallel environment copies, then
// return the agent whose final score is highest (Alg. 1, ln. 13). Seeds
// train concurrently; each seed's computation is deterministic.
func Train(cfg TrainConfig) (*Agent, TrainResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainResult{}, err
	}
	type seedOut struct {
		agent *Agent
		score float64
		err   error
	}
	outs := make([]seedOut, cfg.Seeds)
	var wg sync.WaitGroup
	for s := 0; s < cfg.Seeds; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			agent, score, err := trainOneSeed(cfg, s)
			outs[s] = seedOut{agent, score, err}
		}(s)
	}
	wg.Wait()

	res := TrainResult{BestSeed: -1, SeedScores: make([]float64, cfg.Seeds)}
	var best *Agent
	for s, o := range outs {
		if o.err != nil {
			return nil, res, fmt.Errorf("rl: training seed %d: %w", s, o.err)
		}
		res.SeedScores[s] = o.score
		if best == nil || o.score > res.BestScore {
			best, res.BestScore, res.BestSeed = o.agent, o.score, s
		}
	}
	return best, res, nil
}

// trainOneSeed trains a single agent and returns its final score (mean
// episode score over the last 10% of episodes).
func trainOneSeed(cfg TrainConfig, seed int) (*Agent, float64, error) {
	agentCfg := cfg.Agent
	agentCfg.Seed = cfg.Agent.Seed + int64(seed)*7919 // distinct streams per seed
	agent, err := NewAgent(agentCfg)
	if err != nil {
		return nil, 0, err
	}
	baseLR := agent.actorOpt.LR

	envs := make([]Env, cfg.ParallelEnvs)
	policies := make([]*samplingPolicy, cfg.ParallelEnvs)
	for i := range envs {
		envSeed := agentCfg.Seed*1000 + int64(i)
		envs[i], err = cfg.NewEnv(envSeed)
		if err != nil {
			return nil, 0, err
		}
		// One policy per environment, each with its own random stream and
		// inference scratch, reused across all episodes of this seed.
		policies[i] = &samplingPolicy{
			agent: agent,
			rng:   rand.New(rand.NewSource(envSeed + 1)),
			sc:    agent.NewScratch(),
		}
	}

	tail := cfg.Episodes / 10
	if tail < 1 {
		tail = 1
	}
	var tailSum float64
	var tailN int

	for ep := 0; ep < cfg.Episodes; ep++ {
		lr := baseLR
		if cfg.LRDecay {
			progress := float64(ep) / float64(cfg.Episodes)
			lr = baseLR * (1 - 0.9*progress)
			agent.actorOpt.LR = lr
			agent.criticOpt.LR = lr
		}

		type rollOut struct {
			trajs []Trajectory
			score float64
			err   error
		}
		rollStart := time.Now()
		rolls := make([]rollOut, len(envs))
		var wg sync.WaitGroup
		for i := range envs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				trajs, score, err := envs[i].Rollout(policies[i])
				rolls[i] = rollOut{trajs, score, err}
			}(i)
		}
		wg.Wait()
		rollDur := time.Since(rollStart)

		var batch []Trajectory
		score := 0.0
		for i, r := range rolls {
			if r.err != nil {
				return nil, 0, fmt.Errorf("episode %d env %d: %w", ep, i, r.err)
			}
			batch = append(batch, r.trajs...)
			score += r.score
		}
		score /= float64(len(rolls))

		updStart := time.Now()
		stats, err := agent.Update(batch)
		if err != nil {
			return nil, 0, fmt.Errorf("episode %d: %w", ep, err)
		}
		if cfg.OnEpisode != nil || cfg.Progress != nil {
			rec := EpisodeRecord{
				Seed:        seed,
				Episode:     ep,
				LR:          lr,
				Score:       score,
				Steps:       stats.Steps,
				MeanReturn:  stats.MeanReturn,
				PolicyLoss:  stats.PolicyLoss,
				ValueLoss:   stats.ValueLoss,
				Entropy:     stats.Entropy,
				KL:          stats.KL,
				GradNorm:    stats.GradNorm,
				Backtracked: stats.Backtracked,
				RolloutMS:   float64(rollDur) / float64(time.Millisecond),
				UpdateMS:    float64(time.Since(updStart)) / float64(time.Millisecond),
			}
			if cfg.OnEpisode != nil {
				cfg.OnEpisode(rec)
			}
			if cfg.Progress != nil {
				cfg.Progress(rec.Seed, rec.Episode, rec.Stats(), rec.Score)
			}
		}
		if ep >= cfg.Episodes-tail {
			tailSum += score
			tailN++
		}
	}
	if cfg.LRDecay {
		// Leave the returned agent at its configured base rate rather
		// than the decayed final one, so continued training (online
		// adaptation) does not silently start at 10% LR.
		agent.actorOpt.LR = baseLR
		agent.criticOpt.LR = baseLR
	}
	return agent, tailSum / float64(tailN), nil
}

// samplingPolicy draws stochastic actions during training. The actor
// forward pass is read-only, so one agent can serve parallel rollouts;
// each rollout samples from its own random source and reuses its own
// inference scratch, keeping the per-decision path allocation-free.
type samplingPolicy struct {
	agent *Agent
	rng   *rand.Rand
	sc    *Scratch
	bsc   *BatchScratch // lazily created by SelectActions (batch.go)
}

// SelectAction implements Policy.
func (p *samplingPolicy) SelectAction(obs []float64) int {
	return p.agent.SampleActionWith(p.sc, obs, p.rng)
}
