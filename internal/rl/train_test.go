package rl

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// banditEnv is a two-context bandit: context i rewards action i with +1,
// anything else with -1. Episode score is the fraction of correct picks.
type banditEnv struct {
	rng *rand.Rand
}

func (e *banditEnv) Rollout(p Policy) ([]Trajectory, float64, error) {
	contexts := [][]float64{{1, 0}, {0, 1}}
	var trajs []Trajectory
	correct := 0
	const n = 16
	for i := 0; i < n; i++ {
		ctx := contexts[e.rng.Intn(2)]
		act := p.SelectAction(ctx)
		reward := -1.0
		if (ctx[0] == 1 && act == 0) || (ctx[1] == 1 && act == 1) {
			reward = 1
			correct++
		}
		trajs = append(trajs, Trajectory{Steps: []Step{{Obs: ctx, Action: act, Reward: reward}}})
	}
	return trajs, float64(correct) / n, nil
}

func TestTrainLearnsBandit(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{16}, LR: 5e-3}
	best, res, err := Train(TrainConfig{
		Agent:        agentCfg,
		Episodes:     150,
		ParallelEnvs: 2,
		Seeds:        2,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSeed < 0 || res.BestSeed >= 2 {
		t.Errorf("BestSeed = %d", res.BestSeed)
	}
	if len(res.SeedScores) != 2 {
		t.Errorf("SeedScores = %v", res.SeedScores)
	}
	if res.BestScore < 0.9 {
		t.Errorf("best score = %f, want >= 0.9 on a trivial bandit", res.BestScore)
	}
	if got := best.GreedyAction([]float64{1, 0}); got != 0 {
		t.Errorf("greedy(context 0) = %d, want 0", got)
	}
	if got := best.GreedyAction([]float64{0, 1}); got != 1 {
		t.Errorf("greedy(context 1) = %d, want 1", got)
	}
}

func TestTrainValidation(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2}
	newEnv := func(int64) (Env, error) { return &banditEnv{rng: rand.New(rand.NewSource(1))}, nil }
	if _, _, err := Train(TrainConfig{Agent: agentCfg, Episodes: 0, NewEnv: newEnv}); err == nil {
		t.Error("accepted zero episodes")
	}
	if _, _, err := Train(TrainConfig{Agent: agentCfg, Episodes: 1}); err == nil {
		t.Error("accepted nil NewEnv")
	}
}

func TestTrainPropagatesEnvErrors(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}}
	wantErr := errors.New("boom")
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 1,
		NewEnv:   func(int64) (Env, error) { return nil, wantErr },
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped %v", err, wantErr)
	}
}

type failingEnv struct{}

func (failingEnv) Rollout(Policy) ([]Trajectory, float64, error) {
	return nil, 0, errors.New("rollout failed")
}

func TestTrainPropagatesRolloutErrors(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}}
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 1,
		NewEnv:   func(int64) (Env, error) { return failingEnv{}, nil },
	})
	if err == nil {
		t.Error("rollout error not propagated")
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{8}, LR: 5e-3, Seed: 42}
	run := func() []float64 {
		_, res, err := Train(TrainConfig{
			Agent:        agentCfg,
			Episodes:     20,
			ParallelEnvs: 2,
			Seeds:        2,
			NewEnv: func(envSeed int64) (Env, error) {
				return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SeedScores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seed %d score differs across identical runs: %f vs %f", i, a[i], b[i])
		}
	}
}

// TestTrainSeedScoresByteIdentical is the determinism regression for
// parallel training: with the same TrainConfig.Agent.Seed and more than
// one parallel environment, two full runs must produce byte-identical
// SeedScores — parallel rollouts may interleave arbitrarily, but each
// env owns its RNG and results are merged in index order.
func TestTrainSeedScoresByteIdentical(t *testing.T) {
	run := func() []float64 {
		_, res, err := Train(TrainConfig{
			Agent:        AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{8}, LR: 5e-3, Seed: 1234},
			Episodes:     25,
			ParallelEnvs: 3,
			Seeds:        2,
			LRDecay:      true,
			NewEnv: func(envSeed int64) (Env, error) {
				return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SeedScores
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("score counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Errorf("seed %d score not byte-identical: %x vs %x (%v vs %v)",
				i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
		}
	}
}

// TestTrainEmitsEpisodeRecords checks the telemetry feed: every (seed,
// episode) pair exactly once, decaying LR, and Progress receiving the
// same numbers as the structured record.
func TestTrainEmitsEpisodeRecords(t *testing.T) {
	const episodes, seeds = 12, 2
	var mu sync.Mutex
	recs := make(map[[2]int]EpisodeRecord)
	type progressCall struct {
		stats UpdateStats
		score float64
	}
	progress := make(map[[2]int]progressCall)
	_, _, err := Train(TrainConfig{
		Agent:        AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}, LR: 1e-2, Seed: 5},
		Episodes:     episodes,
		ParallelEnvs: 2,
		Seeds:        seeds,
		LRDecay:      true,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
		OnEpisode: func(r EpisodeRecord) {
			mu.Lock()
			defer mu.Unlock()
			key := [2]int{r.Seed, r.Episode}
			if _, dup := recs[key]; dup {
				t.Errorf("duplicate record for %v", key)
			}
			recs[key] = r
		},
		Progress: func(seed, ep int, st UpdateStats, score float64) {
			mu.Lock()
			defer mu.Unlock()
			progress[[2]int{seed, ep}] = progressCall{st, score}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != episodes*seeds {
		t.Fatalf("records = %d, want %d", len(recs), episodes*seeds)
	}
	for s := 0; s < seeds; s++ {
		for ep := 0; ep < episodes; ep++ {
			r, ok := recs[[2]int{s, ep}]
			if !ok {
				t.Fatalf("missing record for seed %d episode %d", s, ep)
			}
			wantLR := 1e-2 * (1 - 0.9*float64(ep)/episodes)
			if math.Abs(r.LR-wantLR) > 1e-12 {
				t.Errorf("seed %d ep %d LR = %g, want %g", s, ep, r.LR, wantLR)
			}
			if r.Steps <= 0 {
				t.Errorf("seed %d ep %d has %d steps", s, ep, r.Steps)
			}
			if r.RolloutMS < 0 || r.UpdateMS < 0 {
				t.Errorf("seed %d ep %d negative wall time: %+v", s, ep, r)
			}
			p, ok := progress[[2]int{s, ep}]
			if !ok {
				t.Fatalf("Progress adapter missed seed %d episode %d", s, ep)
			}
			if p.score != r.Score || p.stats != r.Stats() {
				t.Errorf("Progress adapter diverges from record at seed %d ep %d", s, ep)
			}
		}
	}
}

// TestLRRestoredAfterDecay pins the trainOneSeed fix: with LRDecay the
// returned best agent's optimizers must be back at the base rate, not
// the decayed final 10%.
func TestLRRestoredAfterDecay(t *testing.T) {
	const baseLR = 1e-2
	agent, _, err := Train(TrainConfig{
		Agent:    AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}, LR: baseLR},
		Episodes: 10,
		Seeds:    2,
		LRDecay:  true,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if agent.actorOpt.LR != baseLR {
		t.Errorf("actor LR after training = %g, want base %g", agent.actorOpt.LR, baseLR)
	}
	if agent.criticOpt.LR != baseLR {
		t.Errorf("critic LR after training = %g, want base %g", agent.criticOpt.LR, baseLR)
	}
}

// TestTrainRaceSmoke is the race-tier anchor: concurrent seeds, parallel
// environment copies sharing one read-only actor, and concurrent
// OnEpisode emission — the full concurrency surface of Train, sized to
// stay fast under `go test -race ./...` (see `make race`).
func TestTrainRaceSmoke(t *testing.T) {
	var mu sync.Mutex
	n := 0
	_, res, err := Train(TrainConfig{
		Agent:        AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}, LR: 5e-3},
		Episodes:     6,
		ParallelEnvs: 2,
		Seeds:        2,
		LRDecay:      true,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
		OnEpisode: func(EpisodeRecord) { mu.Lock(); n++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeedScores) != 2 {
		t.Fatalf("SeedScores = %v", res.SeedScores)
	}
	if n != 12 {
		t.Errorf("episode records = %d, want 12", n)
	}
}

func TestLRDecaySchedule(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}, LR: 1e-2}
	var lrs []float64
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 10,
		LRDecay:  true,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
		Progress: func(seed, ep int, st UpdateStats, score float64) {
			_ = st
			lrs = append(lrs, 0) // placeholder; decay verified below via stats count
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lrs) != 10 {
		t.Errorf("progress callbacks = %d, want 10", len(lrs))
	}
}
