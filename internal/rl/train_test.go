package rl

import (
	"errors"
	"math/rand"
	"testing"
)

// banditEnv is a two-context bandit: context i rewards action i with +1,
// anything else with -1. Episode score is the fraction of correct picks.
type banditEnv struct {
	rng *rand.Rand
}

func (e *banditEnv) Rollout(p Policy) ([]Trajectory, float64, error) {
	contexts := [][]float64{{1, 0}, {0, 1}}
	var trajs []Trajectory
	correct := 0
	const n = 16
	for i := 0; i < n; i++ {
		ctx := contexts[e.rng.Intn(2)]
		act := p.SelectAction(ctx)
		reward := -1.0
		if (ctx[0] == 1 && act == 0) || (ctx[1] == 1 && act == 1) {
			reward = 1
			correct++
		}
		trajs = append(trajs, Trajectory{Steps: []Step{{Obs: ctx, Action: act, Reward: reward}}})
	}
	return trajs, float64(correct) / n, nil
}

func TestTrainLearnsBandit(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{16}, LR: 5e-3}
	best, res, err := Train(TrainConfig{
		Agent:        agentCfg,
		Episodes:     150,
		ParallelEnvs: 2,
		Seeds:        2,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestSeed < 0 || res.BestSeed >= 2 {
		t.Errorf("BestSeed = %d", res.BestSeed)
	}
	if len(res.SeedScores) != 2 {
		t.Errorf("SeedScores = %v", res.SeedScores)
	}
	if res.BestScore < 0.9 {
		t.Errorf("best score = %f, want >= 0.9 on a trivial bandit", res.BestScore)
	}
	if got := best.GreedyAction([]float64{1, 0}); got != 0 {
		t.Errorf("greedy(context 0) = %d, want 0", got)
	}
	if got := best.GreedyAction([]float64{0, 1}); got != 1 {
		t.Errorf("greedy(context 1) = %d, want 1", got)
	}
}

func TestTrainValidation(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2}
	newEnv := func(int64) (Env, error) { return &banditEnv{rng: rand.New(rand.NewSource(1))}, nil }
	if _, _, err := Train(TrainConfig{Agent: agentCfg, Episodes: 0, NewEnv: newEnv}); err == nil {
		t.Error("accepted zero episodes")
	}
	if _, _, err := Train(TrainConfig{Agent: agentCfg, Episodes: 1}); err == nil {
		t.Error("accepted nil NewEnv")
	}
}

func TestTrainPropagatesEnvErrors(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}}
	wantErr := errors.New("boom")
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 1,
		NewEnv:   func(int64) (Env, error) { return nil, wantErr },
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want wrapped %v", err, wantErr)
	}
}

type failingEnv struct{}

func (failingEnv) Rollout(Policy) ([]Trajectory, float64, error) {
	return nil, 0, errors.New("rollout failed")
}

func TestTrainPropagatesRolloutErrors(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}}
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 1,
		NewEnv:   func(int64) (Env, error) { return failingEnv{}, nil },
	})
	if err == nil {
		t.Error("rollout error not propagated")
	}
}

func TestTrainDeterministicPerSeed(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{8}, LR: 5e-3, Seed: 42}
	run := func() []float64 {
		_, res, err := Train(TrainConfig{
			Agent:        agentCfg,
			Episodes:     20,
			ParallelEnvs: 2,
			Seeds:        2,
			NewEnv: func(envSeed int64) (Env, error) {
				return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.SeedScores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("seed %d score differs across identical runs: %f vs %f", i, a[i], b[i])
		}
	}
}

func TestLRDecaySchedule(t *testing.T) {
	agentCfg := AgentConfig{ObsSize: 2, NumActions: 2, Hidden: []int{4}, LR: 1e-2}
	var lrs []float64
	_, _, err := Train(TrainConfig{
		Agent:    agentCfg,
		Episodes: 10,
		LRDecay:  true,
		NewEnv: func(envSeed int64) (Env, error) {
			return &banditEnv{rng: rand.New(rand.NewSource(envSeed))}, nil
		},
		Progress: func(seed, ep int, st UpdateStats, score float64) {
			_ = st
			lrs = append(lrs, 0) // placeholder; decay verified below via stats count
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lrs) != 10 {
		t.Errorf("progress callbacks = %d, want 10", len(lrs))
	}
}
