package eval

import (
	"fmt"

	"distcoord/internal/coord"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// TrainBudget scales the DRL training effort. The defaults are sized for
// commodity CPUs; the paper's settings (10 seeds, 4 parallel envs, 2x256
// networks, long episodes on Xeon machines) are reachable via flags in
// cmd/experiments.
type TrainBudget struct {
	Episodes     int     // update iterations per seed (default 600)
	ParallelEnvs int     // l (default 4, as in the paper)
	Seeds        int     // k (default 2; paper 10)
	Horizon      float64 // training episode length (default 1000)
	Hidden       []int   // network architecture (default 2x32; paper 2x256)
	LR           float64 // RMSprop learning rate (default 3e-3)
	Seed         int64
	Progress     func(seed, episode int, stats rl.UpdateStats, score float64)
	// OnEpisode receives one structured telemetry record per training
	// episode (see rl.EpisodeRecord); wire it to a telemetry.Sink for a
	// JSONL training log. Called concurrently across training seeds.
	OnEpisode func(rl.EpisodeRecord)
}

// withDefaults fills unset fields of a partial budget with the tuned
// defaults.
func (b TrainBudget) withDefaults() TrainBudget {
	d := DefaultTrainBudget()
	if b.Episodes <= 0 {
		b.Episodes = d.Episodes
	}
	if b.ParallelEnvs <= 0 {
		b.ParallelEnvs = d.ParallelEnvs
	}
	if b.Seeds <= 0 {
		b.Seeds = d.Seeds
	}
	if b.Horizon <= 0 {
		b.Horizon = d.Horizon
	}
	if len(b.Hidden) == 0 {
		b.Hidden = d.Hidden
	}
	if b.LR == 0 {
		b.LR = d.LR
	}
	return b
}

// DefaultTrainBudget returns the commodity-hardware defaults, tuned so
// the base scenario trains to paper-like quality in minutes on a laptop
// CPU.
func DefaultTrainBudget() TrainBudget {
	return TrainBudget{
		Episodes:     600,
		ParallelEnvs: 4,
		Seeds:        2,
		Horizon:      1000,
		Hidden:       []int{32, 32},
		LR:           3e-3,
	}
}

// PaperTrainBudget returns the paper's hyperparameters (Sec. V-A2).
func PaperTrainBudget() TrainBudget {
	return TrainBudget{
		Episodes:     1000,
		ParallelEnvs: 4,
		Seeds:        10,
		Horizon:      2000,
		Hidden:       []int{256, 256},
		LR:           1e-3,
	}
}

// TrainedPolicy is a trained distributed coordination policy for one
// topology: the selected actor network plus the training diagnostics.
type TrainedPolicy struct {
	Agent *rl.Agent
	Stats rl.TrainResult
}

// TrainDRL runs centralized training (Alg. 1) on the scenario: each
// parallel environment copy instantiates the scenario (same capacity
// draw — capacities are part of the scenario) with its own traffic
// seed.
func TrainDRL(s Scenario, budget TrainBudget) (*TrainedPolicy, error) {
	s = s.normalized()
	budget = budget.withDefaults()
	probe, err := s.Instantiate(0)
	if err != nil {
		return nil, err
	}
	adapter := coord.NewAdapter(probe.Graph, probe.APSP)

	agent, stats, err := rl.Train(rl.TrainConfig{
		Agent: rl.AgentConfig{
			ObsSize:    adapter.ObsSize(),
			NumActions: adapter.NumActions(),
			Hidden:     budget.Hidden,
			LR:         budget.LR,
			Seed:       budget.Seed,
		},
		Episodes:     budget.Episodes,
		ParallelEnvs: budget.ParallelEnvs,
		Seeds:        budget.Seeds,
		LRDecay:      true,
		Progress:     budget.Progress,
		OnEpisode:    budget.OnEpisode,
		NewEnv: func(envSeed int64) (rl.Env, error) {
			inst, err := s.Instantiate(1_000_003 + envSeed)
			if err != nil {
				return nil, err
			}
			return coord.NewEnv(coord.EnvConfig{
				Graph:        inst.Graph,
				APSP:         inst.APSP,
				Service:      inst.Service,
				IngressNodes: s.Ingresses(),
				Egress:       s.Egress,
				Traffic:      s.Traffic,
				Template:     inst.Template,
				Horizon:      budget.Horizon,
			}, envSeed)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("eval: training DRL on %s: %w", s.Topology, err)
	}
	return &TrainedPolicy{Agent: agent, Stats: stats}, nil
}

// Factory deploys the trained policy onto each evaluation instance: a
// fresh adapter for the instance's capacity draw and one actor copy per
// node (Fig. 4b).
func (p *TrainedPolicy) Factory() CoordinatorFactory {
	return func(inst *Instance, seed int64) (simnet.Coordinator, error) {
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		d, err := coord.NewDistributed(adapter, p.Agent.Actor)
		if err != nil {
			return nil, err
		}
		d.Reseed(seed)
		return d, nil
	}
}
