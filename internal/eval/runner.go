package eval

import (
	"fmt"
	"math"

	"distcoord/internal/simnet"
)

// Summary is the mean and standard deviation of a metric over seeds
// (the paper reports mean ± std over 30 seeds). N records how many
// seeds the summary covers: the delay summary can cover fewer seeds
// than the success summary, because seeds with zero successful flows
// contribute no delay sample.
type Summary struct {
	Mean, Std float64
	N         int
}

// summarize computes mean and (population) standard deviation.
func summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	for _, x := range xs {
		s.Std += (x - s.Mean) * (x - s.Mean)
	}
	s.Std = math.Sqrt(s.Std / float64(s.N))
	return s
}

// String formats as "mean±std".
func (s Summary) String() string { return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Std) }

// Versus renders the summary annotated with its sample count whenever
// it covers fewer than total samples — "0.500±0.100 (n=2)" — so a
// delay mean computed from a subset of the seeds is never mistaken for
// a full-seed summary.
func (s Summary) Versus(total int) string {
	if s.N < total {
		return fmt.Sprintf("%s (n=%d)", s, s.N)
	}
	return s.String()
}

// CoordinatorFactory builds a coordinator for one instantiated scenario
// (the DRL coordinator needs the instance's adapter; baselines ignore
// it). seed lets stochastic coordinators reseed reproducibly. The
// factory is called once per evaluation cell — possibly from multiple
// goroutines — and must return a coordinator not shared with any other
// cell.
type CoordinatorFactory func(inst *Instance, seed int64) (simnet.Coordinator, error)

// Fresh wraps a constructor for a scenario-independent coordinator: a
// new instance is built for every evaluation cell, so no coordinator
// state leaks across seeds and cells can run concurrently. (It replaces
// the earlier Static helper, which handed one shared instance to every
// run.)
func Fresh(mk func() simnet.Coordinator) CoordinatorFactory {
	return func(*Instance, int64) (simnet.Coordinator, error) { return mk(), nil }
}

// Outcome aggregates an algorithm's performance on a scenario.
type Outcome struct {
	Succ  Summary // success ratio o_f (Eq. 1)
	Delay Summary // avg end-to-end delay of successful flows
}

// cellResult is the contribution of one evaluation cell (one seed of
// one algorithm on one scenario) to an Outcome.
type cellResult struct {
	Succ      float64
	Delay     float64
	Succeeded int
}

// runCell runs one evaluation cell: instantiate the scenario for the
// seed, build a fresh coordinator, simulate.
func runCell(s Scenario, mk CoordinatorFactory, seed int64) (cellResult, error) {
	return runCellWith(s, mk, seed, RunOptions{})
}

// runCellWith is runCell with run options attached — the controller
// evaluates sweep cells under batched or sharded execution and with a
// per-run flow tracer.
func runCellWith(s Scenario, mk CoordinatorFactory, seed int64, ro RunOptions) (cellResult, error) {
	inst, err := s.Instantiate(seed)
	if err != nil {
		return cellResult{}, err
	}
	c, err := mk(inst, seed)
	if err != nil {
		return cellResult{}, err
	}
	m, err := inst.RunWith(c, ro)
	if err != nil {
		return cellResult{}, fmt.Errorf("eval: seed %d with %s: %w", seed, c.Name(), err)
	}
	return cellResult{Succ: m.SuccessRatio(), Delay: m.AvgDelay(), Succeeded: m.Succeeded}, nil
}

// aggregate folds cell results (in seed order) into an Outcome. Seeds
// with zero successful flows contribute no delay sample; Summary.N
// keeps the counts honest on both summaries.
func aggregate(cells []cellResult) Outcome {
	var succ, delay []float64
	for _, c := range cells {
		succ = append(succ, c.Succ)
		if c.Succeeded > 0 {
			delay = append(delay, c.Delay)
		}
	}
	return Outcome{Succ: summarize(succ), Delay: summarize(delay)}
}

// Evaluate runs the scenario for seeds 0..n-1 (offset by baseSeed) and
// summarizes success ratio and average delay. Cells run serially; use
// EvaluateJobs or an Engine grid for the pooled version.
func Evaluate(s Scenario, mk CoordinatorFactory, seeds int, baseSeed int64) (Outcome, error) {
	return EvaluateJobs(s, mk, seeds, baseSeed, 1)
}

// EvaluateJobs is Evaluate on a bounded worker pool of the given size
// (jobs <= 0 selects runtime.NumCPU()). The outcome is identical for
// any pool size: cells are seeded independently and aggregated in seed
// order.
func EvaluateJobs(s Scenario, mk CoordinatorFactory, seeds int, baseSeed int64, jobs int) (Outcome, error) {
	e := NewEngine(Options{EvalSeeds: seeds, Jobs: jobs})
	ev := e.Eval("eval", "", "", s, mk, nil, baseSeed)
	if err := e.Run(); err != nil {
		return Outcome{}, err
	}
	return ev.Outcome(), nil
}
