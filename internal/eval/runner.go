package eval

import (
	"fmt"
	"math"

	"distcoord/internal/simnet"
)

// Summary is the mean and standard deviation of a metric over seeds
// (the paper reports mean ± std over 30 seeds).
type Summary struct {
	Mean, Std float64
	N         int
}

// summarize computes mean and (population) standard deviation.
func summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(s.N)
	for _, x := range xs {
		s.Std += (x - s.Mean) * (x - s.Mean)
	}
	s.Std = math.Sqrt(s.Std / float64(s.N))
	return s
}

// String formats as "mean±std".
func (s Summary) String() string { return fmt.Sprintf("%.3f±%.3f", s.Mean, s.Std) }

// CoordinatorFactory builds a coordinator for one instantiated scenario
// (the DRL coordinator needs the instance's adapter; baselines ignore
// it). seed lets stochastic coordinators reseed reproducibly.
type CoordinatorFactory func(inst *Instance, seed int64) (simnet.Coordinator, error)

// Static wraps a scenario-independent coordinator as a factory.
func Static(c simnet.Coordinator) CoordinatorFactory {
	return func(*Instance, int64) (simnet.Coordinator, error) { return c, nil }
}

// Outcome aggregates an algorithm's performance on a scenario.
type Outcome struct {
	Succ  Summary // success ratio o_f (Eq. 1)
	Delay Summary // avg end-to-end delay of successful flows
}

// Evaluate runs the scenario for seeds 0..n-1 (offset by baseSeed) and
// summarizes success ratio and average delay.
func Evaluate(s Scenario, mk CoordinatorFactory, seeds int, baseSeed int64) (Outcome, error) {
	var succ, delay []float64
	for i := 0; i < seeds; i++ {
		seed := baseSeed + int64(i)
		inst, err := s.Instantiate(seed)
		if err != nil {
			return Outcome{}, err
		}
		c, err := mk(inst, seed)
		if err != nil {
			return Outcome{}, err
		}
		m, err := inst.Run(c)
		if err != nil {
			return Outcome{}, fmt.Errorf("eval: seed %d with %s: %w", seed, c.Name(), err)
		}
		succ = append(succ, m.SuccessRatio())
		if m.Succeeded > 0 {
			delay = append(delay, m.AvgDelay())
		}
	}
	return Outcome{Succ: summarize(succ), Delay: summarize(delay)}, nil
}
