package eval

import (
	"encoding/json"
	"testing"

	"distcoord/internal/chaos"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// syntheticScenario builds a figure-style scenario on an n-node
// synthetic topology with uniform capacities. Continuous Poisson
// arrivals keep event timestamps collision-free, so every gather window
// holds one flow and batched inference is bit-equivalent to sequential.
func syntheticScenario(n int, horizon float64) Scenario {
	g := graph.SyntheticScale(n, 0x5CA1E)
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeCapacity(graph.NodeID(v), 40)
	}
	for l := 0; l < g.NumLinks(); l++ {
		g.SetLinkCapacity(l, 40)
	}
	return Scenario{
		Graph:        g,
		IngressNodes: []graph.NodeID{2, 5, 9},
		Egress:       1,
		Traffic:      traffic.PoissonSpec(10),
		Deadline:     100,
		Horizon:      horizon,
	}
}

// TestBatchedRunMatchesSequential is the eval-level equivalence oracle:
// for each figure-style scenario — Abilene and a 100-node synthetic,
// with and without fault injection — a run with batched inference must
// produce byte-identical metrics to the sequential run, under the real
// trained Distributed coordinator.
func TestBatchedRunMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	base := Base()
	base.Horizon = 2000
	// The actor's shape depends on the topology's maximum degree, so each
	// topology family gets its own (tiny) trained policy.
	trainOn := func(s Scenario) CoordinatorFactory {
		t.Helper()
		s.Horizon = tinyOptions().Budget.Horizon
		policy, err := TrainDRL(s, tinyOptions().Budget)
		if err != nil {
			t.Fatal(err)
		}
		return policy.Factory()
	}
	abileneFactory := trainOn(Base())
	synthFactory := trainOn(syntheticScenario(100, 120))

	outage := chaos.Spec{Profile: chaos.ProfileNodeOutage, Seed: 7, Node: -1, Link: -1}
	cases := []struct {
		name     string
		scenario Scenario
		factory  CoordinatorFactory
	}{
		{"abilene", base, abileneFactory},
		{"abilene-faults", func() Scenario { s := base; s.Faults = outage; return s }(), abileneFactory},
		{"synthetic100", syntheticScenario(100, 600), synthFactory},
		{"synthetic100-faults", func() Scenario {
			s := syntheticScenario(100, 600)
			s.Faults = outage
			return s
		}(), synthFactory},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const seed = 3
			run := func(maxBatch int) string {
				inst, err := tc.scenario.Instantiate(seed)
				if err != nil {
					t.Fatalf("instantiate: %v", err)
				}
				// A fresh coordinator per run: per-node sampling streams
				// must start identically for both paths.
				c, err := tc.factory(inst, seed)
				if err != nil {
					t.Fatalf("factory: %v", err)
				}
				m, err := inst.RunWith(c, RunOptions{MaxBatch: maxBatch})
				if err != nil {
					t.Fatalf("run (MaxBatch=%d): %v", maxBatch, err)
				}
				if m.Arrived == 0 {
					t.Fatal("degenerate scenario: no flows arrived")
				}
				b, err := json.Marshal(m)
				if err != nil {
					t.Fatalf("marshal metrics: %v", err)
				}
				return string(b)
			}
			seq := run(0)
			bat := run(16)
			if seq != bat {
				t.Errorf("batched metrics diverged from sequential:\nseq: %s\nbat: %s", seq, bat)
			}
		})
	}
}

// TestBatchedBurstRunDeterministic pins the batched semantics under
// real multi-flow cohorts: burst arrivals make same-(node, time) windows
// with more than one flow, where batched observations legitimately read
// the window-start snapshot (so the result differs from sequential), but
// two batched runs of the identical scenario must still agree byte for
// byte.
func TestBatchedBurstRunDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	s := syntheticScenario(100, 600)
	s.Traffic = traffic.BurstSpec(20, 8)
	train := s
	train.Horizon = tinyOptions().Budget.Horizon
	policy, err := TrainDRL(train, tinyOptions().Budget)
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		inst, err := s.Instantiate(3)
		if err != nil {
			t.Fatal(err)
		}
		c, err := policy.Factory()(inst, 3)
		if err != nil {
			t.Fatal(err)
		}
		m, err := inst.RunWith(c, RunOptions{MaxBatch: 16})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two batched burst runs diverged:\n%s\n%s", a, b)
	}
}

// TestBatchedGridOutputUnchanged pins that the engine's grid pipeline is
// untouched by the batching feature: RunOptions' zero value must keep
// MaxBatch off, so grid output remains byte-identical to the seed
// baseline (covered by the engine's own golden tests) regardless of the
// coordinator's BatchDecider capability.
func TestBatchedGridOutputUnchanged(t *testing.T) {
	var opts RunOptions
	if opts.MaxBatch != 0 {
		t.Fatalf("zero RunOptions has MaxBatch %d, want 0", opts.MaxBatch)
	}
	var cfg simnet.Config
	if cfg.MaxBatch != 0 {
		t.Fatalf("zero simnet.Config has MaxBatch %d, want 0", cfg.MaxBatch)
	}
}
