package eval

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"distcoord/internal/agentnet"
	"distcoord/internal/coord"
	"distcoord/internal/nn"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// These tests pin the remote≡in-process equivalence oracle: a fig6b-style
// run whose decisions travel over real sockets to agent-hosted policy
// banks must produce metrics byte-identical (metricsFingerprint) to the
// same run with the in-process Distributed coordinator. This is the
// correctness contract of the whole agentnet tier — the network boundary
// may add latency, never behavior.

func testActorBytes(t *testing.T, inst *Instance, seed int64) []byte {
	t.Helper()
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{32, 32},
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := agent.Actor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startAgents hosts n agent daemons in-process (goroutine listeners over
// real loopback TCP — the same Server cmd/agentd runs) and returns their
// endpoints.
func startAgents(t *testing.T, n int, checkpoint []byte) []string {
	t.Helper()
	endpoints := make([]string, n)
	for i := range endpoints {
		host, err := coord.NewAgentHost(fmt.Sprintf("test-agent-%d", i), checkpoint, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		srv := agentnet.NewServer(host.NewBackend, agentnet.ServerConfig{IdleTimeout: time.Minute})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		endpoints[i] = addr.String()
	}
	return endpoints
}

func testClientConfig() agentnet.ClientConfig {
	return agentnet.ClientConfig{
		Timeout:          5 * time.Second,
		DialTimeout:      2 * time.Second,
		ReconnectBackoff: 5 * time.Millisecond,
		ReconnectBudget:  200 * time.Millisecond,
	}
}

// runPair runs the same instance once in-process and once through a
// 3-agent fleet, both seeded identically, and returns both fingerprints.
func runPair(t *testing.T, sc Scenario, seed int64, checkpoint, pushFrom []byte, opts RunOptions) (inproc, remote string) {
	t.Helper()
	inst, err := sc.Instantiate(seed)
	if err != nil {
		t.Fatal(err)
	}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)

	actor, err := nn.Load(bytes.NewReader(checkpoint))
	if err != nil {
		t.Fatal(err)
	}
	d, err := coord.NewDistributed(adapter, actor)
	if err != nil {
		t.Fatal(err)
	}
	d.Reseed(seed)
	m1, err := inst.RunWith(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Agents boot with pushFrom (possibly the wrong model); the driver
	// pushes checkpoint when they differ, exactly like a deployment.
	hostModel := pushFrom
	if hostModel == nil {
		hostModel = checkpoint
	}
	endpoints := startAgents(t, 3, hostModel)
	r, err := coord.NewRemote(adapter, endpoints, seed, coord.RemoteOptions{
		Stochastic: true,
		Checkpoint: checkpoint,
		Client:     testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Re-instantiate so arrival streams restart identically.
	inst2, err := sc.Instantiate(seed)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := inst2.RunWith(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	ok, failed := r.Pool().DecideStats()
	if failed != 0 {
		t.Fatalf("healthy fleet had %d failed decisions", failed)
	}
	if ok == 0 {
		t.Fatal("remote run made no decisions over the socket")
	}
	return metricsFingerprint(m1), metricsFingerprint(m2)
}

// TestRemoteEquivalenceOracle is THE oracle: sequential decision path,
// fig6b base scenario, fixed seed — remote metrics must equal in-process
// metrics exactly.
func TestRemoteEquivalenceOracle(t *testing.T) {
	sc := Base()
	sc.Horizon = 1500
	for _, seed := range []int64{0, 1} {
		inst, err := sc.Instantiate(seed)
		if err != nil {
			t.Fatal(err)
		}
		checkpoint := testActorBytes(t, inst, 42)
		inproc, remote := runPair(t, sc, seed, checkpoint, nil, RunOptions{})
		if inproc != remote {
			t.Fatalf("seed %d: remote run diverged from in-process run:\nin-process:\n%s\nremote:\n%s", seed, inproc, remote)
		}
	}
}

// TestRemoteEquivalenceBatched pins the batched dispatch path: cohorts
// cross the socket as DecideBatch frames and must still sample
// identically to in-process batched inference.
func TestRemoteEquivalenceBatched(t *testing.T) {
	sc := Base()
	sc.NumIngresses = 3 // more simultaneous arrivals → real cohorts
	sc.Horizon = 1200
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	opts := RunOptions{MaxBatch: 8}
	inproc, remote := runPair(t, sc, 0, checkpoint, nil, opts)
	if inproc != remote {
		t.Fatalf("batched remote run diverged from in-process run:\nin-process:\n%s\nremote:\n%s", inproc, remote)
	}
}

// TestRemoteEquivalenceAfterModelPush boots the fleet with the WRONG
// model and lets the driver push the right one at connect time: the run
// must still be byte-identical, proving push lands before any decision
// and the swap rebuilds per-node streams from the handshake seed.
func TestRemoteEquivalenceAfterModelPush(t *testing.T) {
	sc := Base()
	sc.Horizon = 1200
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	wrong := testActorBytes(t, inst, 7)
	inproc, remote := runPair(t, sc, 0, checkpoint, wrong, RunOptions{})
	if inproc != remote {
		t.Fatalf("post-push remote run diverged from in-process run:\nin-process:\n%s\nremote:\n%s", inproc, remote)
	}
}

// TestRemoteConcurrentMetricsScrapes runs one driver against 3
// goroutine-hosted agent listeners while hammering the observability
// endpoint's /metrics handler from concurrent scrapers. Run under the
// race detector, this pins that RTT histogram observation (the remote
// decide hot path) and Prometheus exposition never race.
func TestRemoteConcurrentMetricsScrapes(t *testing.T) {
	sc := Base()
	sc.Horizon = 800
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	endpoints := startAgents(t, 3, checkpoint)

	reg := telemetry.NewRegistry()
	rtt := reg.Histogram("rpc_decide_rtt_us")
	obs := telemetry.NewObsServer("eval-test", reg)
	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
		Stochastic: true,
		Client:     testClientConfig(),
		ObserveRTT: rtt.Observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	if _, err := inst.RunWith(r, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if rtt.Count() == 0 {
		t.Fatal("no RTT samples recorded during the remote run")
	}
	if rtt.Quantile(0.5) <= 0 {
		t.Fatalf("RTT p50 %v not positive", rtt.Quantile(0.5))
	}
}

// TestRemoteDeadAgentDegrades severs one agent's connection mid-run; its
// nodes' decisions fail and surface as invalid-action drops while other
// nodes keep succeeding. This is the failure semantics chaos agent-kill
// relies on.
func TestRemoteDeadAgentDegrades(t *testing.T) {
	sc := Base()
	sc.Horizon = 1500
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	endpoints := startAgents(t, 3, checkpoint)
	r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
		Stochastic: true,
		Client:     testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	killAt := 700.0
	killed := false
	var okAtKill int64
	r.OnTime = func(now float64) {
		if !killed && now >= killAt {
			killed = true
			okAtKill, _ = r.Pool().DecideStats()
			r.Pool().Sever(1)
		}
	}
	m, err := inst.RunWith(r, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill time never reached")
	}
	if m.DropsBy[simnet.DropInvalidAction] == 0 {
		t.Fatal("dead agent produced no invalid-action drops")
	}
	ok, failed := r.Pool().DecideStats()
	if failed == 0 {
		t.Fatal("pool recorded no failed decisions despite a severed agent")
	}
	// The surviving agents must keep serving their nodes after the kill.
	if ok <= okAtKill {
		t.Fatalf("no successful decisions after the kill (ok %d at kill, %d at end)", okAtKill, ok)
	}
}
