package eval

import (
	"encoding/json"
	"reflect"
	"testing"

	"distcoord/internal/baselines"
	"distcoord/internal/chaos"
)

// faultedScenario is a small node-outage scenario on Abilene.
func faultedScenario() Scenario {
	s := Base()
	s.Horizon = 1000
	s.Faults = chaos.Spec{Profile: chaos.ProfileNodeOutage, Seed: 7, Node: -1, Link: -1}
	return s
}

// TestFaultedRunReplaysByteIdentically is the reproducibility acceptance
// criterion: instantiating and running the same faulted scenario twice
// must produce byte-identical metrics and recovery reports.
func TestFaultedRunReplaysByteIdentically(t *testing.T) {
	once := func() []byte {
		inst, err := faultedScenario().Instantiate(0)
		if err != nil {
			t.Fatal(err)
		}
		monitor := chaos.NewMonitor(inst.Chaos, 0)
		m, err := inst.RunWith(baselines.SP{}, RunOptions{Listener: monitor})
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Metrics  interface{}
			Recovery []chaos.FaultReport
		}{m, monitor.Report()})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := once(), once()
	if string(a) != string(b) {
		t.Errorf("faulted runs diverged:\n%s\n%s", a, b)
	}
}

// TestInstantiateResolvesFaultSchedule checks that the schedule is fixed
// at Instantiate (same schedule for every coordinator) and actually
// perturbs the run.
func TestInstantiateResolvesFaultSchedule(t *testing.T) {
	inst, err := faultedScenario().Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Chaos == nil || len(inst.Chaos.Faults) == 0 {
		t.Fatal("faulted scenario instantiated without a fault schedule")
	}
	if got := inst.Chaos.DisruptiveTimes(); len(got) != 1 {
		t.Errorf("disruptive times = %v, want one node outage", got)
	}
	m, err := inst.Run(baselines.SP{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Faults != 1 {
		t.Errorf("metrics.Faults = %d, want 1", m.Faults)
	}

	plain := faultedScenario()
	plain.Faults = chaos.Spec{}
	pinst, err := plain.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	if pinst.Chaos != nil && len(pinst.Chaos.Faults) != 0 {
		t.Errorf("fault-free scenario built %d faults", len(pinst.Chaos.Faults))
	}
}

// TestMonitorReportsPerDisruption runs a two-node outage and expects the
// monitor to attribute one report per disruption time, tagged with the
// victim.
func TestMonitorReportsPerDisruption(t *testing.T) {
	s := faultedScenario()
	s.Faults.Count = 2
	inst, err := s.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	monitor := chaos.NewMonitor(inst.Chaos, 0)
	if _, err := inst.RunWith(baselines.SP{}, RunOptions{Listener: monitor}); err != nil {
		t.Fatal(err)
	}
	reports := monitor.Report()
	if len(reports) != len(inst.Chaos.DisruptiveTimes()) {
		t.Fatalf("reports = %d, want %d", len(reports), len(inst.Chaos.DisruptiveTimes()))
	}
	for _, r := range reports {
		if r.Kind != "node-down" {
			t.Errorf("report kind = %q, want node-down", r.Kind)
		}
		if r.Time <= 0 || r.Time != r.FaultTime {
			t.Errorf("report time = %g (fault_time %g), want the injection time", r.Time, r.FaultTime)
		}
		if r.Node < 0 {
			t.Errorf("report at t=%g has no victim node", r.Time)
		}
		if r.PreSuccess <= 0 {
			t.Errorf("report at t=%g has no pre-fault baseline", r.Time)
		}
	}
}

// TestNormalizationIsConsistent is the regression for the old
// withDefaults value-receiver bug: every derived view of an
// underspecified scenario must agree on the normalized values.
func TestNormalizationIsConsistent(t *testing.T) {
	var s Scenario // fully zero
	inst, err := s.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Ingresses(), inst.Scenario.Ingresses()) {
		t.Errorf("Ingresses before/after Instantiate disagree: %v vs %v",
			s.Ingresses(), inst.Scenario.Ingresses())
	}
	if inst.Scenario.CapacitySeed != DefaultCapacitySeed {
		t.Errorf("CapacitySeed = %d, want default %d", inst.Scenario.CapacitySeed, DefaultCapacitySeed)
	}
	if inst.Scenario.Horizon != 20000 || inst.Scenario.Deadline != 100 {
		t.Errorf("normalized horizon/deadline = %g/%g, want 20000/100",
			inst.Scenario.Horizon, inst.Scenario.Deadline)
	}
	n := s.normalized()
	n2 := n.normalized()
	// Non-nil func values never compare deep-equal; the label carries the
	// traffic identity.
	n.Traffic.New, n2.Traffic.New = nil, nil
	if !reflect.DeepEqual(n, n2) {
		t.Errorf("normalized is not idempotent: %+v vs %+v", n, n2)
	}
}
