package eval

import (
	"fmt"
	"testing"
)

// The figure pipelines are exercised end to end at miniature scale: a
// few training episodes on tiny networks, one evaluation seed, short
// horizons. These tests verify the experiment *structure* (series,
// points, labels); coordination quality at full scale is covered by
// cmd/experiments runs and the root benchmarks.

func requireSeries(t *testing.T, fig Figure, wantAlgos []string, wantPoints int) {
	t.Helper()
	if len(fig.Series) != len(wantAlgos) {
		names := make([]string, 0, len(fig.Series))
		for _, s := range fig.Series {
			names = append(names, s.Algo)
		}
		t.Fatalf("series = %v, want %v", names, wantAlgos)
	}
	for i, want := range wantAlgos {
		s := fig.Series[i]
		if s.Algo != want {
			t.Errorf("series %d = %s, want %s", i, s.Algo, want)
		}
		if len(s.Points) != wantPoints {
			t.Errorf("series %s has %d points, want %d", s.Algo, len(s.Points), wantPoints)
		}
		for _, p := range s.Points {
			if p.Outcome.Succ.Mean < 0 || p.Outcome.Succ.Mean > 1 {
				t.Errorf("series %s point %s: success %f outside [0,1]", s.Algo, p.X, p.Outcome.Succ.Mean)
			}
		}
	}
}

func TestFig6MiniPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	fig, err := Fig6("a", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "6a" {
		t.Errorf("ID = %s", fig.ID)
	}
	requireSeries(t, fig, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP}, 5)
	for i, p := range fig.Series[0].Points {
		if want := fmt.Sprint(i + 1); p.X != want {
			t.Errorf("point %d X = %s, want %s", i, p.X, want)
		}
	}
}

func TestFig7MiniPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	fig, err := Fig7(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP}, 4)
	if fig.Series[0].Points[0].X != "20" {
		t.Errorf("first deadline = %s, want 20", fig.Series[0].Points[0].X)
	}
	// τ = 20 is infeasible: everything drops (paper Fig. 7).
	for _, s := range fig.Series {
		if s.Points[0].Outcome.Succ.Mean != 0 {
			t.Errorf("%s at τ=20: success %f, want 0", s.Algo, s.Points[0].Outcome.Succ.Mean)
		}
	}
}

func TestFig8aMiniPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	fig, err := Fig8a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 3 generalizing agents + 1 retrained + 3 baselines.
	if len(fig.Series) != 7 {
		t.Fatalf("series = %d, want 7", len(fig.Series))
	}
	foundGen, foundRetr := 0, 0
	for _, s := range fig.Series {
		if len(s.Points) != 1 {
			t.Errorf("series %s has %d points, want 1", s.Algo, len(s.Points))
		}
		switch {
		case len(s.Algo) > 7 && s.Algo[:7] == "DRL Gen":
			foundGen++
		case s.Algo == "DRL Retr.":
			foundRetr++
		}
	}
	if foundGen != 3 || foundRetr != 1 {
		t.Errorf("gen/retr series = %d/%d, want 3/1", foundGen, foundRetr)
	}
}

func TestFig8bMiniPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	fig, err := Fig8b(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, []string{"DRL Gen.", "DRL Retr.", AlgoCentral, AlgoGCASP, AlgoSP}, 5)
}

func TestFig9aMiniPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	fig, err := Fig9a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP}, 4)
	wantX := []string{"Abilene", "BT Europe", "China Telecom", "Interroute"}
	for i, p := range fig.Series[0].Points {
		if p.X != wantX[i] {
			t.Errorf("point %d X = %s, want %s", i, p.X, wantX[i])
		}
	}
}

func TestPointFigurePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("figure pipeline test skipped in -short mode")
	}
	opts := tinyOptions()
	s := Base()
	s.Horizon = opts.Horizon
	policy, err := TrainDRL(s, opts.Budget)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := PointFigure(s, policy, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP}, 1)
	// Without a policy, only the baselines appear.
	fig2, err := PointFigure(s, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig2, []string{AlgoCentral, AlgoGCASP, AlgoSP}, 1)
}
