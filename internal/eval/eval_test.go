package eval

import (
	"math"
	"strings"
	"testing"

	"distcoord/internal/baselines"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

func tinyOptions() Options {
	return Options{
		EvalSeeds:       1,
		Horizon:         300,
		MonitorInterval: 100,
		Budget: TrainBudget{
			Episodes:     3,
			ParallelEnvs: 1,
			Seeds:        1,
			Horizon:      120,
			Hidden:       []int{8},
		},
	}
}

func TestVideoService(t *testing.T) {
	svc := VideoService()
	if svc.Len() != 3 {
		t.Fatalf("chain length = %d, want 3", svc.Len())
	}
	for _, c := range svc.Chain {
		if c.ProcDelay != 5 {
			t.Errorf("component %s processing delay = %f, want 5", c.Name, c.ProcDelay)
		}
		if c.Resource(2) != 2*c.ResourcePerRate || c.Resource(0) != 0 {
			t.Errorf("component %s resources not linear in load", c.Name)
		}
	}
}

func TestInstantiateCapacitiesInRange(t *testing.T) {
	inst, err := Base().Instantiate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range inst.Graph.Nodes() {
		if n.Capacity < 0 || n.Capacity > 2 {
			t.Errorf("node %d capacity %f outside [0,2]", n.ID, n.Capacity)
		}
	}
	for i, l := range inst.Graph.Links() {
		if l.Capacity < 1 || l.Capacity > 5 {
			t.Errorf("link %d capacity %f outside [1,5]", i, l.Capacity)
		}
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	a, err := Base().Instantiate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Base().Instantiate(7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Graph.NumNodes(); v++ {
		if a.Graph.Node(graph.NodeID(v)).Capacity != b.Graph.Node(graph.NodeID(v)).Capacity {
			t.Fatal("capacity draws differ for identical seeds")
		}
	}
	// Capacities are part of the scenario: a different evaluation seed
	// keeps the same capacity draw ...
	c, err := Base().Instantiate(8)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < a.Graph.NumNodes(); v++ {
		if a.Graph.Node(graph.NodeID(v)).Capacity != c.Graph.Node(graph.NodeID(v)).Capacity {
			t.Fatal("capacity draw changed with the evaluation seed")
		}
	}
	// ... while a different CapacitySeed redraws them.
	s2 := Base()
	s2.CapacitySeed = 99
	d, err := s2.Instantiate(7)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := 0; v < a.Graph.NumNodes(); v++ {
		same = same && a.Graph.Node(graph.NodeID(v)).Capacity == d.Graph.Node(graph.NodeID(v)).Capacity
	}
	if same {
		t.Error("different CapacitySeed produced identical capacity draws")
	}
}

func TestInstantiateValidation(t *testing.T) {
	s := Base()
	s.Topology = "Nowhere"
	if _, err := s.Instantiate(1); err == nil {
		t.Error("accepted unknown topology")
	}
	s = Base()
	s.Egress = 99
	if _, err := s.Instantiate(1); err == nil {
		t.Error("accepted out-of-range egress")
	}
	s = Base()
	s.IngressNodes = []graph.NodeID{42}
	if _, err := s.Instantiate(1); err == nil {
		t.Error("accepted out-of-range ingress")
	}
}

func TestIngressesSelection(t *testing.T) {
	s := Base()
	s.NumIngresses = 3
	got := s.Ingresses()
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("Ingresses = %v, want [0 1 2]", got)
	}
	s.IngressNodes = []graph.NodeID{5, 6}
	got = s.Ingresses()
	if len(got) != 2 || got[0] != 5 {
		t.Errorf("explicit Ingresses = %v, want [5 6]", got)
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %f, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Errorf("std = %f, want 2", s.Std)
	}
	if s.N != 8 {
		t.Errorf("n = %d, want 8", s.N)
	}
	empty := summarize(nil)
	if empty.Mean != 0 || empty.Std != 0 || empty.N != 0 {
		t.Error("empty summary not zero")
	}
	if got := s.String(); got != "5.000±2.000" {
		t.Errorf("String = %q", got)
	}
}

func TestEvaluateBaselines(t *testing.T) {
	s := Base()
	s.Horizon = 500
	s.Traffic = traffic.FixedSpec(10)
	for _, mk := range []CoordinatorFactory{
		Fresh(func() simnet.Coordinator { return baselines.SP{} }),
		Fresh(func() simnet.Coordinator { return baselines.GCASP{} }),
	} {
		o, err := Evaluate(s, mk, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if o.Succ.Mean < 0 || o.Succ.Mean > 1 {
			t.Errorf("success ratio %f outside [0,1]", o.Succ.Mean)
		}
		if o.Succ.N != 2 {
			t.Errorf("N = %d, want 2", o.Succ.N)
		}
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	s := Base()
	s.Horizon = 500
	gcasp := Fresh(func() simnet.Coordinator { return baselines.GCASP{} })
	a, err := Evaluate(s, gcasp, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s, gcasp, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Succ != b.Succ {
		t.Errorf("non-deterministic evaluation: %v vs %v", a.Succ, b.Succ)
	}
}

func TestTrainDRLAndDeploy(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test skipped in -short mode")
	}
	opts := tinyOptions()
	s := Base()
	s.Horizon = opts.Horizon
	policy, err := TrainDRL(s, opts.Budget)
	if err != nil {
		t.Fatal(err)
	}
	if policy.Stats.BestSeed < 0 {
		t.Errorf("BestSeed = %d", policy.Stats.BestSeed)
	}
	o, err := Evaluate(s, policy.Factory(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succ.Mean < 0 || o.Succ.Mean > 1 {
		t.Errorf("success ratio %f outside [0,1]", o.Succ.Mean)
	}
}

func TestFig6UnknownVariant(t *testing.T) {
	if _, err := Fig6("z", tinyOptions()); err == nil {
		t.Error("accepted unknown variant")
	}
}

func TestTrafficPatternsComplete(t *testing.T) {
	pats := TrafficPatterns()
	for _, k := range []string{"a", "b", "c", "d"} {
		if pats[k].New == nil {
			t.Errorf("pattern %q missing", k)
		}
	}
}

func TestTableIOutput(t *testing.T) {
	out := TableI()
	for _, want := range []string{"Abilene", "BT Europe", "China Telecom", "Interroute", "110"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID:     "6a",
		Title:  "demo",
		XLabel: "ingress nodes",
		Series: []Series{
			{Algo: "DistDRL", Points: []Point{{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.9, N: 3}}}}},
			{Algo: "SP", Points: []Point{{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.5, N: 3}}}}},
		},
	}
	out := f.String()
	for _, want := range []string{"Figure 6a", "DistDRL", "SP", "0.900"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestFig9bTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement skipped in -short mode")
	}
	opts := tinyOptions()
	rows, err := Fig9b(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.DistDRL <= 0 || r.Central <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Network, r)
		}
	}
	// The central update must scale with network size: Interroute (110
	// nodes) costs more than Abilene (11 nodes).
	if rows[3].Central <= rows[0].Central {
		t.Errorf("central cost did not grow with network size: %v vs %v",
			rows[0].Central, rows[3].Central)
	}
	out := FormatTiming(rows)
	if !strings.Contains(out, "Interroute") {
		t.Errorf("timing table missing Interroute:\n%s", out)
	}
}

func TestEvalPointRunsAllAlgorithms(t *testing.T) {
	opts := tinyOptions()
	s := Base()
	s.Horizon = 300
	point, err := evalPoint(s, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{AlgoCentral, AlgoGCASP, AlgoSP} {
		if _, ok := point[name]; !ok {
			t.Errorf("missing algorithm %s", name)
		}
	}
}

func TestOrderedSeries(t *testing.T) {
	m := map[string]*Series{
		"SP":      {Algo: "SP"},
		"DistDRL": {Algo: "DistDRL"},
		"Other":   {Algo: "Other"},
	}
	out := orderedSeries(m)
	if out[0].Algo != "DistDRL" {
		t.Errorf("first series = %s, want DistDRL", out[0].Algo)
	}
	if out[len(out)-1].Algo != "Other" {
		t.Errorf("unknown algos must sort last, got %s", out[len(out)-1].Algo)
	}
}

func TestFigureMarkdown(t *testing.T) {
	f := Figure{
		ID:     "7",
		Title:  "demo",
		XLabel: "deadline",
		Series: []Series{
			{Algo: "DistDRL", Points: []Point{
				{X: "20", Outcome: Outcome{Succ: Summary{Mean: 0, N: 3}}},
				{X: "30", Outcome: Outcome{Succ: Summary{Mean: 0.5, Std: 0.1, N: 3}}},
			}},
			{Algo: "SP", Points: []Point{
				{X: "20", Outcome: Outcome{Succ: Summary{Mean: 0, N: 3}}},
			}},
		},
	}
	out := f.Markdown()
	for _, want := range []string{"**Figure 7", "| deadline |", "| 30 |", "0.500±0.100", "|---|", " - |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	empty := Figure{ID: "x", XLabel: "x"}
	if out := empty.Markdown(); !strings.Contains(out, "Figure x") {
		t.Errorf("empty figure markdown: %q", out)
	}
}
