package eval

import (
	"fmt"
	"strings"
	"time"

	"distcoord/internal/baselines"
	"distcoord/internal/coord"
	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// TimingRow is one topology's per-decision coordination cost (Fig. 9b).
// DistDRL is the cost of one local decision (observation build + actor
// forward pass), which depends only on the network degree Δ_G. Central
// is the cost of one global rule update over monitored state, which
// grows with the network size — in the paper this is the centralized
// DRL's inference over its global observation/action space; in our
// emulation it is the rule optimizer over the same inputs (DESIGN.md,
// substitution 5). SP and GCASP per-decision costs are included for
// reference.
type TimingRow struct {
	Network string
	Nodes   int
	DistDRL time.Duration
	Central time.Duration
	GCASP   time.Duration
	SP      time.Duration
}

// Fig9b measures per-decision coordination time on every topology using
// the given network architecture for the DRL actor (weights are
// irrelevant for timing, so an untrained actor of the right shape is
// used).
func Fig9b(opts Options) ([]TimingRow, error) {
	opts = opts.withDefaults()
	var rows []TimingRow
	for _, name := range []string{"Abilene", "BT Europe", "China Telecom", "Interroute"} {
		s := Base()
		s.Topology = name
		inst, err := s.Instantiate(1)
		if err != nil {
			return nil, err
		}
		row, err := timeInstance(inst, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		opts.logf("Fig 9b: %-14s DistDRL=%v Central=%v GCASP=%v SP=%v",
			name, row.DistDRL, row.Central, row.GCASP, row.SP)
	}
	return rows, nil
}

func timeInstance(inst *Instance, opts Options) (TimingRow, error) {
	row := TimingRow{Network: inst.Graph.Name(), Nodes: inst.Graph.NumNodes()}
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     opts.Budget.Hidden,
	})
	if err != nil {
		return row, err
	}
	dist, err := coord.NewDistributed(adapter, agent.Actor)
	if err != nil {
		return row, err
	}

	st := simnet.NewState(inst.Graph, inst.APSP)
	flow := &simnet.Flow{
		ID:       1,
		Service:  inst.Service,
		Ingress:  0,
		Egress:   inst.Scenario.Egress,
		Rate:     1,
		Duration: 1,
		Deadline: inst.Scenario.Deadline,
	}

	central := baselines.NewCentral(opts.MonitorInterval)
	central.Reset(nil)
	// Feed the central coordinator traffic knowledge so its Tick does
	// real planning work for both configured ingresses.
	for _, in := range inst.Scenario.Ingresses() {
		f := *flow
		f.Ingress = in
		central.Decide(st, &f, in, 0)
	}

	measure := func(iters int, f func()) time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(start) / time.Duration(iters)
	}

	const iters = 200
	v := graph.NodeID(0)
	row.DistDRL = measure(iters, func() { dist.Decide(st, flow, v, 1) })
	row.Central = measure(iters, func() { central.Tick(st, 1) })
	gcasp := baselines.GCASP{}
	row.GCASP = measure(iters, func() { gcasp.Decide(st, flow, v, 1) })
	sp := baselines.SP{}
	row.SP = measure(iters, func() { sp.Decide(st, flow, v, 1) })
	return row, nil
}

// FormatTiming renders Fig. 9b rows as a text table.
func FormatTiming(rows []TimingRow) string {
	var b strings.Builder
	b.WriteString("Figure 9b: per-decision coordination time\n")
	fmt.Fprintf(&b, "%-15s %6s %12s %12s %12s %12s\n",
		"Network", "Nodes", "DistDRL", "Central", "GCASP", "SP")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %6d %12v %12v %12v %12v\n",
			r.Network, r.Nodes, r.DistDRL, r.Central, r.GCASP, r.SP)
	}
	return b.String()
}
