package eval

import (
	"testing"

	"distcoord/internal/chaos"
	"distcoord/internal/coord"
	"distcoord/internal/graph"
)

// pairGraph is a deliberately easy topology: two nodes, one link, huge
// capacities. Max degree 1 means every action (process-local or forward)
// is valid, so even a randomly initialized policy serves ~100% of flows.
// That makes an agent kill the ONLY source of failure — the recovery
// tracker's dip is unambiguously the fault's.
func pairGraph() *graph.Graph {
	g := graph.New("pair")
	a := g.AddNode("a", 0, 0)
	b := g.AddNode("b", 0, 0)
	if err := g.AddLink(a, b, 1); err != nil {
		panic(err)
	}
	g.SetNodeCapacity(a, 100)
	g.SetNodeCapacity(b, 100)
	g.SetLinkCapacity(0, 100)
	return g
}

// TestAgentKillRecoveryDip is the chaos acceptance test for the agentnet
// tier: a scheduled agent-kill fault severs a live agent daemon mid-run
// (goroutine-hosted servers, real sockets), the recovery tracker sees
// the service dip, and the fault report attributes it to the agent.
func TestAgentKillRecoveryDip(t *testing.T) {
	sp, err := chaos.ParseSpec("agent-kill:start=500,duration=600,count=1,agent=0")
	if err != nil {
		t.Fatal(err)
	}
	sc := Base()
	sc.Graph = pairGraph()
	sc.IngressNodes = []graph.NodeID{0}
	sc.Egress = 1
	sc.Horizon = 1500
	sc.Faults = sp
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.Chaos.AgentKills) != 1 {
		t.Fatalf("schedule has %d agent kills, want 1", len(inst.Chaos.AgentKills))
	}

	checkpoint := testActorBytes(t, inst, 42)
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	endpoints := startAgents(t, 2, checkpoint)
	r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
		Stochastic: true,
		Client:     testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Agent 0 serves node 0 — the ingress — so the kill window starves
	// every new flow until the revive. Sever/Revive emulate exactly what
	// killing and restarting the agentd process does to the driver.
	act := chaos.NewAgentKillActuator(inst.Chaos.AgentKills, r.Pool().NumAgents(),
		r.Pool().Sever, r.Pool().Revive)
	r.OnTime = act.Advance

	monitor := chaos.NewMonitor(inst.Chaos, 0)
	m, err := inst.RunWith(r, RunOptions{Listener: monitor})
	if err != nil {
		t.Fatal(err)
	}
	if !act.Done() {
		t.Fatal("agent-kill schedule did not fully fire within the run")
	}
	if m.Succeeded == 0 {
		t.Fatal("no flow succeeded — the scenario is supposed to be easy")
	}

	reports := monitor.Report()
	if len(reports) != 1 {
		t.Fatalf("got %d fault reports, want 1: %+v", len(reports), reports)
	}
	rep := reports[0]
	if rep.Kind != chaos.ProfileAgentKill {
		t.Errorf("report kind %q, want %q", rep.Kind, chaos.ProfileAgentKill)
	}
	if rep.Agent != 0 {
		t.Errorf("report agent %d, want 0", rep.Agent)
	}
	if rep.Time != 500 {
		t.Errorf("report time %v, want 500", rep.Time)
	}
	if rep.DipDepth <= 0.5 {
		t.Errorf("dip depth %v — killing the ingress agent should crater the success rate", rep.DipDepth)
	}
	if rep.Drops == 0 {
		t.Error("fault report attributes no drops to the kill")
	}
	ok, failed := r.Pool().DecideStats()
	if failed == 0 {
		t.Error("pool saw no failed decisions during the kill window")
	}
	if ok == 0 {
		t.Error("pool saw no successful decisions")
	}
}
