package eval

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"distcoord/internal/agentnet"
	"distcoord/internal/chaos"
	"distcoord/internal/coord"
	"distcoord/internal/flowtrace"
	"distcoord/internal/nn"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// recordingTracer accumulates raw trace events for post-run assembly.
type recordingTracer struct {
	events []simnet.TraceEvent
}

func (r *recordingTracer) Trace(e simnet.TraceEvent) { r.events = append(r.events, e) }

// TestTracingEquivalenceInProcess pins that attaching a tracer to an
// in-process run changes nothing about the simulation: metrics must be
// byte-identical with tracing on and off.
func TestTracingEquivalenceInProcess(t *testing.T) {
	sc := Base()
	sc.Horizon = 1200
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)

	run := func(tr simnet.FlowTracer) string {
		inst, err := sc.Instantiate(0)
		if err != nil {
			t.Fatal(err)
		}
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		actor, err := nn.Load(bytes.NewReader(checkpoint))
		if err != nil {
			t.Fatal(err)
		}
		d, err := coord.NewDistributed(adapter, actor)
		if err != nil {
			t.Fatal(err)
		}
		d.Reseed(0)
		m, err := inst.RunWith(d, RunOptions{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return metricsFingerprint(m)
	}

	rec := &recordingTracer{}
	off, on := run(nil), run(rec)
	if off != on {
		t.Fatalf("tracing changed the in-process run:\noff:\n%s\non:\n%s", off, on)
	}
	if len(rec.events) == 0 {
		t.Fatal("tracer saw no events")
	}
}

// TestTracingEquivalenceRemote is the same oracle over real sockets: the
// traced remote run must match the untraced remote run AND the untraced
// in-process run. The decision timer capability is only consulted when a
// tracer is attached, and this pins that consulting it has no
// behavioral side effects.
func TestTracingEquivalenceRemote(t *testing.T) {
	sc := Base()
	sc.Horizon = 1200
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)

	run := func(tr simnet.FlowTracer) string {
		inst, err := sc.Instantiate(0)
		if err != nil {
			t.Fatal(err)
		}
		adapter := coord.NewAdapter(inst.Graph, inst.APSP)
		endpoints := startAgents(t, 3, checkpoint)
		r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
			Stochastic: true,
			Client:     testClientConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		m, err := inst.RunWith(r, RunOptions{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		return metricsFingerprint(m)
	}

	rec := &recordingTracer{}
	off, on := run(nil), run(rec)
	if off != on {
		t.Fatalf("tracing changed the remote run:\noff:\n%s\non:\n%s", off, on)
	}

	// Traced decisions must carry server-informed RPC decompositions.
	withRPC := 0
	for _, e := range rec.events {
		if e.Kind == simnet.TraceDecision && e.RPC.TotalNS != 0 {
			withRPC++
			if e.RPC.Sum() != e.RPC.TotalNS {
				t.Fatalf("decision timing does not tile: %+v", e.RPC)
			}
		}
	}
	if withRPC == 0 {
		t.Fatal("no traced decision carried an RPC decomposition")
	}
}

// TestRemoteRPCTilingUnderFaults is the flowtrace acceptance criterion:
// over a 3-agent run with an agent-kill fault window, every completed
// flow's decision segment must be exactly tiled by its five sub-spans —
// including decisions that failed into drops during the kill window.
func TestRemoteRPCTilingUnderFaults(t *testing.T) {
	sp, err := chaos.ParseSpec("agent-kill:start=400,duration=300,count=1,agent=0")
	if err != nil {
		t.Fatal(err)
	}
	sc := Base()
	sc.Horizon = 1500
	sc.Faults = sp
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	endpoints := startAgents(t, 3, checkpoint)
	r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
		Stochastic: true,
		Client:     testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	act := chaos.NewAgentKillActuator(inst.Chaos.AgentKills, r.Pool().NumAgents(),
		r.Pool().Sever, r.Pool().Revive)
	r.OnTime = act.Advance

	rec := &recordingTracer{}
	if _, err := inst.RunWith(r, RunOptions{Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	if !act.Done() {
		t.Fatal("agent-kill schedule did not fire")
	}
	spans, errs := flowtrace.AssembleLoose(rec.events)
	if len(spans) == 0 {
		t.Fatalf("no spans assembled (%d assembly errors)", len(errs))
	}
	checked, err := flowtrace.VerifyRPCTiling(spans)
	if err != nil {
		t.Fatalf("tiling violated: %v", err)
	}
	if checked == 0 {
		t.Fatal("tiling verifier checked no decisions")
	}
	t.Logf("verified exact tiling of %d decisions across %d flows", checked, len(spans))
}

// TestFleetAndAgentScrapesDuringChaos is the race-tier observability
// test: while a live 3-agent run takes an agent kill, concurrent
// scrapers hammer the agent-side /metrics exposition and the
// coordinator's /fleet and /metrics endpoints. Run under -race this
// pins that fleet bookkeeping, agentd-style decision telemetry, and
// Prometheus exposition never race the decide hot path.
func TestFleetAndAgentScrapesDuringChaos(t *testing.T) {
	sp, err := chaos.ParseSpec("agent-kill:start=300,duration=300,count=1,agent=1")
	if err != nil {
		t.Fatal(err)
	}
	sc := Base()
	sc.Horizon = 1200
	sc.Faults = sp
	inst, err := sc.Instantiate(0)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := testActorBytes(t, inst, 42)
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)

	// One agent gets the full cmd/agentd treatment: its own registry fed
	// by the server's decision observer, exposed via an ObsServer handler.
	agentReg := telemetry.NewRegistry()
	host, err := coord.NewAgentHost("scraped-agent", checkpoint, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := agentnet.NewServer(host.NewBackend, agentnet.ServerConfig{
		IdleTimeout: time.Minute,
		ObserveDecide: func(batch int, serverNS, inferNS, encodeNS int64) {
			agentReg.Counter("agentd.requests").Inc()
			agentReg.Counter("agentd.decisions").Add(int64(batch))
			agentReg.Histogram("agentd.server_us").Observe(float64(serverNS) / 1e3)
		},
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	endpoints := append([]string{addr.String()}, startAgents(t, 2, checkpoint)...)

	coordReg := telemetry.NewRegistry()
	r, err := coord.NewRemote(adapter, endpoints, 0, coord.RemoteOptions{
		Stochastic: true,
		Client:     testClientConfig(),
		Metrics:    coordReg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	act := chaos.NewAgentKillActuator(inst.Chaos.AgentKills, r.Pool().NumAgents(),
		r.Pool().Sever, r.Pool().Revive)
	r.OnTime = act.Advance

	agentObs := telemetry.NewObsServer("agentd-test", agentReg)
	agentSrv := httptest.NewServer(agentObs.Handler())
	defer agentSrv.Close()
	coordObs := telemetry.NewObsServer("coordsim-test", coordReg)
	coordObs.Mount("/fleet", r.Pool().FleetHandler())
	coordSrv := httptest.NewServer(coordObs.Handler())
	defer coordSrv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(url string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("scrape %s: %v", url, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("scrape %s: status %d", url, resp.StatusCode)
				return
			}
		}
	}
	for _, url := range []string{
		agentSrv.URL + "/metrics",
		coordSrv.URL + "/fleet",
		coordSrv.URL + "/metrics",
	} {
		wg.Add(1)
		go scrape(url)
	}

	if _, err := inst.RunWith(r, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// The agent-side telemetry saw this agent's share of the decisions.
	if got := agentReg.Counter("agentd.decisions").Value(); got == 0 {
		t.Error("agentd.decisions never incremented")
	}
	// The fleet snapshot records the kill and the recovery.
	var snap agentnet.FleetSnapshot
	resp, err := http.Get(coordSrv.URL + "/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.NumAgents != 3 || len(snap.Agents) != 3 {
		t.Fatalf("fleet snapshot has %d agents, want 3", snap.NumAgents)
	}
	kinds := map[string]int{}
	for _, ev := range snap.Agents[1].Events {
		kinds[ev.Kind]++
	}
	if kinds["sever"] == 0 || kinds["revive"] == 0 {
		t.Errorf("agent 1 timeline missing kill/recovery events: %v", snap.Agents[1].Events)
	}
	if !snap.Agents[1].Up {
		t.Error("agent 1 not back up after the fault window")
	}
	if snap.Agents[0].Decides == 0 {
		t.Error("fleet snapshot shows no decisions for agent 0")
	}
	if snap.Failed == 0 {
		t.Error("fleet snapshot shows no failed decisions despite the kill window")
	}
}
