// Package eval reproduces the paper's evaluation (Sec. V): it defines the
// base scenario and its variations, runs multi-seed experiments with
// every coordination algorithm, and regenerates each figure and table as
// structured series with mean and standard deviation.
package eval

import (
	"fmt"
	"math/rand"

	"distcoord/internal/chaos"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// VideoService returns the base scenario's service (Sec. V-A1): a video
// streaming chain ⟨firewall, IDS, video optimizer⟩. All components have a
// processing delay of 5 ms and require resources linear in their load.
// The paper does not state the linear coefficient; 0.6 calibrates the
// base scenario so that one ingress is easy, three ingresses are
// comfortably feasible for good coordination, and five ingresses push
// the network towards saturation — the load regime Fig. 6 reports (see
// EXPERIMENTS.md, calibration note).
func VideoService() *simnet.Service {
	comp := func(name string) *simnet.Component {
		return &simnet.Component{
			Name:            name,
			ProcDelay:       5,
			StartupDelay:    1,
			IdleTimeout:     50,
			ResourcePerRate: 0.6,
		}
	}
	return &simnet.Service{
		Name:  "video",
		Chain: []*simnet.Component{comp("FW"), comp("IDS"), comp("video")},
	}
}

// Scenario is one evaluation configuration: a topology, ingress/egress
// roles, an arrival pattern, flow parameters, and a fixed random
// capacity draw (uniform 0–2 for nodes, 1–5 for links, Sec. V-A1).
type Scenario struct {
	// Topology names a graph from the registry ("Abilene", ...).
	Topology string
	// Graph, when set, overrides Topology with a custom prebuilt
	// network (e.g. loaded from a topology file via graph.Parse). Its
	// capacities are used as-is; no random draw is applied.
	Graph *graph.Graph
	// NumIngresses selects ingress nodes v1..vK (node IDs 0..K-1).
	// Ignored when IngressNodes is set.
	NumIngresses int
	// IngressNodes overrides the default ingress selection.
	IngressNodes []graph.NodeID
	// Egress is the single egress node; the paper uses v8 (node ID 7).
	Egress graph.NodeID
	// IngressEgresses, when non-empty, assigns each ingress its own
	// egress (parallel to the effective ingress list); unlisted or
	// out-of-range positions fall back to Egress. Localized
	// ingress/egress pairs make a workload partition-closed, the shape
	// sharded runs scale best on.
	IngressEgresses []graph.NodeID
	// Traffic is the arrival pattern at every ingress.
	Traffic traffic.Spec
	// Deadline τ_f (default 100).
	Deadline float64
	// Horizon T of flow generation (paper: 20000).
	Horizon float64

	// NodeCapMin/Max and LinkCapMin/Max bound the uniform capacity
	// draws; zero values select the paper's 0–2 and 1–5.
	NodeCapMin, NodeCapMax float64
	LinkCapMin, LinkCapMax float64

	// CapacitySeed pins the random capacity draw. Capacities are part of
	// the scenario, as in the authors' published configurations: the DRL
	// agent trains and evaluates on the same draw, and evaluation seeds
	// vary the traffic and policy randomness (the paper's mean±std over
	// 30 seeds). Zero selects DefaultCapacitySeed.
	CapacitySeed int64

	// Faults declares a fault-injection scenario (chaos profile); the zero
	// value runs fault-free. The schedule is resolved at Instantiate, so
	// it is identical for every coordinator evaluated on the instance.
	Faults chaos.Spec
}

// Base returns the paper's base scenario: Abilene, Poisson(10) arrivals
// at two ingresses, egress v8, deadline 100, horizon 20000.
func Base() Scenario {
	return Scenario{
		Topology:     "Abilene",
		NumIngresses: 2,
		Egress:       graph.AbileneEgress,
		Traffic:      traffic.PoissonSpec(10),
		Deadline:     100,
		Horizon:      20000,
	}
}

// normalized is the single normalization path: it fills every zero-valued
// field with the base-scenario default and is idempotent. All derived
// views (Ingresses, Instantiate, training) go through it, so no two call
// sites can disagree about what an underspecified scenario means.
func (s Scenario) normalized() Scenario {
	if s.Topology == "" && s.Graph == nil {
		s.Topology = "Abilene"
	}
	if s.Graph != nil {
		s.Topology = s.Graph.Name()
	}
	if s.NumIngresses == 0 && len(s.IngressNodes) == 0 {
		s.NumIngresses = 2
	}
	if s.Traffic.New == nil {
		s.Traffic = traffic.PoissonSpec(10)
	}
	if s.Deadline == 0 {
		s.Deadline = 100
	}
	if s.Horizon == 0 {
		s.Horizon = 20000
	}
	if s.NodeCapMax == 0 {
		s.NodeCapMin, s.NodeCapMax = 0, 2
	}
	if s.LinkCapMax == 0 {
		s.LinkCapMin, s.LinkCapMax = 1, 5
	}
	if s.CapacitySeed == 0 {
		s.CapacitySeed = DefaultCapacitySeed
	}
	return s
}

// Ingresses returns the effective ingress node list (after
// normalization, so an underspecified scenario reports the same
// ingresses Instantiate will use).
func (s Scenario) Ingresses() []graph.NodeID {
	s = s.normalized()
	if len(s.IngressNodes) > 0 {
		return s.IngressNodes
	}
	nodes := make([]graph.NodeID, s.NumIngresses)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return nodes
}

// Instance is a fully instantiated scenario: a capacity-assigned graph
// and seeded arrival processes, ready to simulate.
type Instance struct {
	Scenario Scenario
	Graph    *graph.Graph
	APSP     *graph.APSP
	Service  *simnet.Service
	Template simnet.FlowTemplate
	// Chaos is the resolved fault schedule (empty Faults when the
	// scenario is fault-free); fixed at Instantiate so every coordinator
	// faces the identical perturbation sequence.
	Chaos *chaos.Schedule
	seed  int64
}

// DefaultCapacitySeed is the scenario capacity draw used throughout the
// evaluation: chosen (once) so that the base scenario reproduces the
// paper's load regime — the shortest path alone serves one ingress at
// ~100% success, degrades visibly at two or more, and the network
// approaches saturation at five (see EXPERIMENTS.md, calibration note).
const DefaultCapacitySeed = 2

// Instantiate returns a runnable instance: capacities are drawn from the
// scenario's CapacitySeed, while seed drives the traffic randomness of
// Run. Identical scenarios and seeds produce identical instances.
func (s Scenario) Instantiate(seed int64) (*Instance, error) {
	s = s.normalized()
	var g *graph.Graph
	if s.Graph != nil {
		g = s.Graph.Clone()
	} else {
		var err error
		g, err = graph.ByName(s.Topology)
		if err != nil {
			return nil, err
		}
	}
	if int(s.Egress) >= g.NumNodes() {
		return nil, fmt.Errorf("eval: egress %d out of range for %s", s.Egress, s.Topology)
	}
	for _, in := range s.Ingresses() {
		if int(in) >= g.NumNodes() {
			return nil, fmt.Errorf("eval: ingress %d out of range for %s", in, s.Topology)
		}
	}
	for _, eg := range s.IngressEgresses {
		if int(eg) < 0 || int(eg) >= g.NumNodes() {
			return nil, fmt.Errorf("eval: per-ingress egress %d out of range for %s", eg, s.Topology)
		}
	}
	if s.Graph == nil {
		rng := rand.New(rand.NewSource(s.CapacitySeed))
		for v := 0; v < g.NumNodes(); v++ {
			g.SetNodeCapacity(graph.NodeID(v), s.NodeCapMin+rng.Float64()*(s.NodeCapMax-s.NodeCapMin))
		}
		for l := 0; l < g.NumLinks(); l++ {
			g.SetLinkCapacity(l, s.LinkCapMin+rng.Float64()*(s.LinkCapMax-s.LinkCapMin))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("eval: instantiating %s: %w", s.Topology, err)
	}
	sched, err := s.Faults.Build(g, s.Horizon, s.Ingresses(), s.Egress)
	if err != nil {
		return nil, fmt.Errorf("eval: instantiating %s: %w", s.Topology, err)
	}
	return &Instance{
		Scenario: s,
		Graph:    g,
		APSP:     graph.NewAPSP(g),
		Service:  VideoService(),
		Template: simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: s.Deadline},
		Chaos:    sched,
		seed:     seed,
	}, nil
}

// RunOptions attaches optional observers to a simulation run; the zero
// value runs plain.
type RunOptions struct {
	// Tracer receives per-flow trace events (simnet.FlowTracer).
	Tracer simnet.FlowTracer
	// Listener observes simulation events alongside any coordinator
	// capability (e.g. a chaos.Monitor collecting recovery metrics).
	Listener simnet.Listener
	// MaxBatch, when > 1, resolves same-(node, time) decisions with
	// batched inference (cf. simnet.Config.MaxBatch). The grid and all
	// figure outputs leave it 0, so published results stay pinned to the
	// sequential path.
	MaxBatch int
	// Shards, when > 1, runs the sharded multi-core event loop
	// (cf. simnet.Config.Shards; requires a ShardableCoordinator). The
	// grid and all figure outputs leave it 0, pinning published results
	// to the sequential engine.
	Shards int
	// ShardObserver receives per-shard epoch progress of sharded runs
	// (cf. simnet.Config.ShardObserver).
	ShardObserver simnet.ShardObserver
}

// Run simulates the instance under the given coordinator and returns the
// resulting metrics. Arrival processes are re-seeded deterministically
// from the instance seed on every call.
func (inst *Instance) Run(c simnet.Coordinator) (*simnet.Metrics, error) {
	return inst.RunWith(c, RunOptions{})
}

// RunTraced is Run with an optional per-flow tracer attached to the
// simulation (see simnet.FlowTracer); tr may be nil.
func (inst *Instance) RunTraced(c simnet.Coordinator, tr simnet.FlowTracer) (*simnet.Metrics, error) {
	return inst.RunWith(c, RunOptions{Tracer: tr})
}

// RunWith is Run with observers attached. The instance's fault schedule
// (if any) is always applied.
func (inst *Instance) RunWith(c simnet.Coordinator, opts RunOptions) (*simnet.Metrics, error) {
	rng := rand.New(rand.NewSource(inst.seed + 0x5EED))
	ingresses := make([]simnet.Ingress, 0, len(inst.Scenario.Ingresses()))
	for i, v := range inst.Scenario.Ingresses() {
		in := simnet.Ingress{
			Node:     v,
			Arrivals: inst.Scenario.Traffic.New(rand.New(rand.NewSource(rng.Int63()))),
		}
		if eg := inst.Scenario.IngressEgresses; i < len(eg) {
			e := eg[i]
			in.Egress = &e
		}
		ingresses = append(ingresses, in)
	}
	var faults []simnet.Fault
	if inst.Chaos != nil {
		faults = inst.Chaos.Faults
	}
	sim, err := simnet.New(simnet.Config{
		Graph:         inst.Graph,
		APSP:          inst.APSP,
		Service:       inst.Service,
		Ingresses:     ingresses,
		Egress:        inst.Scenario.Egress,
		Template:      inst.Template,
		Horizon:       inst.Scenario.Horizon,
		Coordinator:   c,
		Listener:      opts.Listener,
		Faults:        faults,
		Tracer:        opts.Tracer,
		MaxBatch:      opts.MaxBatch,
		Shards:        opts.Shards,
		ShardObserver: opts.ShardObserver,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run()
}
