package eval

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distcoord/internal/simnet"
)

// This file implements the parallel experiment engine. A figure is
// decomposed into a dependency-aware grid of jobs — one training job per
// data point that needs a DRL policy, then one evaluation cell per
// (point, algorithm, seed) — and the grid executes on a bounded worker
// pool. Results are stored into pre-allocated slots keyed by their grid
// position and aggregated in canonical order after the pool drains, so
// the rendered output is byte-identical for any worker count, including
// one. Every cell's randomness comes from its own seeded sources
// (Scenario.Instantiate plus the coordinator factory's seed); no cell
// shares a rand.Rand with another.

// CellKey identifies one unit of grid work: a training job, one
// (figure, x, algorithm, seed) evaluation cell, or an auxiliary row
// computation (Table I).
type CellKey struct {
	// Figure is the figure/table the cell belongs to ("6b", "8a",
	// "table1", "point", "eval").
	Figure string `json:"figure"`
	// X is the x-position label within the figure (ingress count,
	// deadline, topology name).
	X string `json:"x,omitempty"`
	// Algo is the algorithm label of an evaluation cell.
	Algo string `json:"algo,omitempty"`
	// Seed is the evaluation seed of an evaluation cell.
	Seed int64 `json:"seed"`
	// Kind discriminates the cell: "train", "eval", or "row".
	Kind string `json:"kind"`
}

// label renders the key for progress lines.
func (k CellKey) label() string {
	switch k.Kind {
	case "train":
		return fmt.Sprintf("train %s x=%s", k.Figure, k.X)
	case "row":
		return fmt.Sprintf("row %s %s", k.Figure, k.X)
	default:
		return fmt.Sprintf("%s x=%s %s seed=%d", k.Figure, k.X, k.Algo, k.Seed)
	}
}

// GridRecord is one completed grid cell, the schema of the -grid-log
// JSONL output. Succ/Delay are meaningful for eval cells, Score for
// train cells. Records are emitted in completion order, which depends
// on the worker count; the deterministic artifact is the aggregated
// figure, not the log order.
type GridRecord struct {
	CellKey
	// Status is "ok", "error", or "skipped" (a dependency failed).
	Status string  `json:"status"`
	Error  string  `json:"error,omitempty"`
	WallMS float64 `json:"wall_ms"`
	// Succ and Delay are the cell's success ratio and average
	// end-to-end delay (eval cells; Delay is 0 when no flow succeeded).
	Succ  float64 `json:"succ"`
	Delay float64 `json:"delay"`
	// Succeeded is the cell's successful-flow count (eval cells). It is
	// recorded so stored grid logs can be re-aggregated faithfully: a
	// seed with zero successful flows contributes no delay sample, and
	// that distinction must survive the round trip through JSONL (see
	// AggregateRecords and the controller's recalc endpoint).
	Succeeded int `json:"succeeded,omitempty"`
	// Score is the best training seed's final score (train cells).
	Score float64 `json:"score"`
	// Done/Total is grid progress at emission time.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// job states.
const (
	jobPending = iota
	jobDone
	jobFailed
	jobSkipped
)

// gridJob is one schedulable unit. run stores its result into the
// owning handle's slot; the result fields here only feed the grid log.
type gridJob struct {
	key   CellKey
	index int // submission order; ties in error reporting break on it
	run   func(j *gridJob) error

	deps       []*gridJob
	dependents []*gridJob
	remaining  int
	depFailed  bool
	state      int
	err        error
	wall       time.Duration

	succ, delay, score float64
	succeeded          int
}

// ErrCanceled is the error of a grid aborted by Engine.Cancel: the
// canceled cells (and their skip cascade) carry it, and Run returns it
// when no earlier-registered job failed for a real reason. Match with
// errors.Is.
var ErrCanceled = errors.New("eval: grid canceled")

// Engine executes an experiment grid. Build one per figure with
// NewEngine, register jobs with Train/Eval/Do, then call Run once;
// handles become readable after Run returns.
type Engine struct {
	opts Options
	jobs []*gridJob
	ran  bool

	canceled atomic.Bool
}

// NewEngine returns an empty engine. The relevant Options fields are
// EvalSeeds (cells per Eval call), Jobs (worker pool bound, 0 =
// runtime.NumCPU()), MonitorInterval, Logf, OnCell, and Registry; opts
// is used as given (figures apply their defaults before constructing
// the engine).
func NewEngine(opts Options) *Engine {
	return &Engine{opts: opts}
}

func (e *Engine) add(key CellKey, deps []*gridJob, run func(j *gridJob) error) *gridJob {
	j := &gridJob{key: key, index: len(e.jobs), run: run, deps: deps}
	j.remaining = len(deps)
	for _, d := range deps {
		d.dependents = append(d.dependents, j)
	}
	e.jobs = append(e.jobs, j)
	return j
}

// PolicyJob is the handle of a registered training job. Its policy is
// available after Engine.Run (or inside cells that depend on it).
type PolicyJob struct {
	key    CellKey
	job    *gridJob
	policy *TrainedPolicy
}

// Train registers a DRL training job for one figure point.
func (e *Engine) Train(figure, x string, s Scenario, budget TrainBudget) *PolicyJob {
	pj := &PolicyJob{key: CellKey{Figure: figure, X: x, Kind: "train"}}
	pj.job = e.add(pj.key, nil, func(j *gridJob) error {
		p, err := TrainDRL(s, budget)
		if err != nil {
			return err
		}
		pj.policy = p
		j.score = p.Stats.BestScore
		return nil
	})
	return pj
}

// Policy returns the trained policy (nil before Run or if training
// failed).
func (p *PolicyJob) Policy() *TrainedPolicy { return p.policy }

// Factory returns a coordinator factory that resolves the trained
// policy at call time. Evaluation cells using it must be registered
// with this PolicyJob as their dependency so the policy exists when the
// cell runs.
func (p *PolicyJob) Factory() CoordinatorFactory {
	return func(inst *Instance, seed int64) (simnet.Coordinator, error) {
		if p.policy == nil {
			return nil, fmt.Errorf("eval: policy %s not trained", p.key.label())
		}
		return p.policy.Factory()(inst, seed)
	}
}

// EvalJob is the handle of one (figure, x, algorithm) group of
// evaluation cells: one cell per seed.
type EvalJob struct {
	key   CellKey
	cells []evalCell
}

type evalCell struct {
	job *gridJob
	res cellResult
}

// Algo returns the algorithm label the job evaluates.
func (ev *EvalJob) Algo() string { return ev.key.Algo }

// Eval registers EvalSeeds evaluation cells for one algorithm at one
// figure point, seeded baseSeed..baseSeed+EvalSeeds-1. after, when
// non-nil, is the training job the cells depend on (pass the PolicyJob
// whose Factory feeds mk; nil for baselines). Cells run with the
// engine-wide Options.Run observers.
func (e *Engine) Eval(figure, x, algo string, s Scenario, mk CoordinatorFactory, after *PolicyJob, baseSeed int64) *EvalJob {
	return e.EvalWith(figure, x, algo, s, mk, after, baseSeed, e.opts.Run)
}

// EvalWith is Eval with per-registration run options: the controller
// sweeps MaxBatch and Shards per point, so cells of the same grid can
// run under different execution modes.
func (e *Engine) EvalWith(figure, x, algo string, s Scenario, mk CoordinatorFactory, after *PolicyJob, baseSeed int64, ro RunOptions) *EvalJob {
	ev := &EvalJob{key: CellKey{Figure: figure, X: x, Algo: algo, Kind: "eval"}}
	var deps []*gridJob
	if after != nil {
		deps = []*gridJob{after.job}
	}
	ev.cells = make([]evalCell, e.opts.EvalSeeds)
	for i := range ev.cells {
		seed := baseSeed + int64(i)
		slot := &ev.cells[i]
		key := ev.key
		key.Seed = seed
		slot.job = e.add(key, deps, func(j *gridJob) error {
			res, err := runCellWith(s, mk, seed, ro)
			if err != nil {
				if algo != "" {
					return fmt.Errorf("%s: %w", algo, err)
				}
				return err
			}
			slot.res = res
			j.succ, j.delay, j.succeeded = res.Succ, res.Delay, res.Succeeded
			return nil
		})
	}
	return ev
}

// Outcome aggregates the job's cells in seed order; call after
// Engine.Run succeeded.
func (ev *EvalJob) Outcome() Outcome {
	cells := make([]cellResult, len(ev.cells))
	for i := range ev.cells {
		cells[i] = ev.cells[i].res
	}
	return aggregate(cells)
}

// Do registers an arbitrary dependency-free computation as a grid cell
// (Table I rows).
func (e *Engine) Do(figure, x string, fn func() error) {
	e.add(CellKey{Figure: figure, X: x, Kind: "row"}, nil, func(*gridJob) error { return fn() })
}

// Cells returns the number of registered grid cells (training jobs,
// evaluation cells, and rows) — the controller records it in the run
// manifest before Run starts.
func (e *Engine) Cells() int { return len(e.jobs) }

// Cancel aborts the grid: cells not yet started fail with ErrCanceled
// (cascading skips to their dependents) while cells already running
// finish normally. Safe to call from any goroutine, before or during
// Run, and more than once.
func (e *Engine) Cancel() { e.canceled.Store(true) }

// Run executes the grid on the bounded worker pool and blocks until
// every job completed or was skipped. On failure it returns the error
// of the earliest-registered failed job; jobs depending on a failed job
// are skipped, and no new jobs start once a failure is observed. Run
// must be called exactly once.
func (e *Engine) Run() error {
	if e.ran {
		return fmt.Errorf("eval: Engine.Run called twice")
	}
	e.ran = true
	total := len(e.jobs)
	if total == 0 {
		return nil
	}
	workers := e.opts.Jobs
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > total {
		workers = total
	}

	if r := e.opts.Registry; r != nil {
		r.Gauge("grid.cells.total").Set(float64(total))
		r.Gauge("grid.cells.done").Set(0)
		r.Gauge("grid.cells.failed").Set(0)
		r.Gauge("grid.cells.skipped").Set(0)
	}

	ready := make(chan *gridJob, total)
	finished := make(chan *gridJob, total)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ready {
				if e.canceled.Load() {
					j.err = ErrCanceled
					finished <- j
					continue
				}
				start := time.Now()
				err := j.run(j)
				j.wall = time.Since(start)
				j.err = err
				finished <- j
			}
		}()
	}

	start := time.Now()
	completed := 0
	aborted := false
	var counts [4]int // indexed by job state: done, failed, skipped
	var firstFailed *gridJob

	// account finalizes one job (done, failed, or skipped): progress
	// metrics, the grid log record, and readiness of its dependents.
	// It runs only on this goroutine, so engine state needs no lock.
	var account func(j *gridJob)
	account = func(j *gridJob) {
		completed++
		switch {
		case j.state == jobSkipped:
			// already marked by the dependency walk below
		case j.err != nil:
			j.state = jobFailed
			aborted = true
			if firstFailed == nil || j.index < firstFailed.index {
				firstFailed = j
			}
		default:
			j.state = jobDone
		}
		counts[j.state]++
		e.emit(j, completed, total, counts, start)
		for _, d := range j.dependents {
			d.remaining--
			if j.state != jobDone {
				d.depFailed = true
			}
			if d.remaining == 0 {
				if d.depFailed || aborted {
					d.state = jobSkipped
					account(d)
				} else {
					ready <- d
				}
			}
		}
	}

	for _, j := range e.jobs {
		if j.remaining == 0 {
			ready <- j
		}
	}
	for completed < total {
		account(<-finished)
	}
	close(ready)
	wg.Wait()

	if firstFailed != nil {
		return firstFailed.err
	}
	if aborted { // cannot happen without a failed job, but stay safe
		return fmt.Errorf("eval: grid aborted")
	}
	return nil
}

// emit publishes one accounted cell: telemetry gauges (cells done/
// failed/skipped, cells/sec, ETA), a progress line, and the optional
// grid-log record. The grid.cells.* gauges partition the grid — after
// the pool drains, done + failed + skipped == total even when a failure
// triggered the skip cascade, so a progress reader (the controller's
// /runs/{id} endpoint) can always tell a finished grid from a stalled
// one. grid.cells.done counts only cells that completed ok; the
// GridRecord.Done field keeps its historical meaning of "cells
// accounted so far" (any status).
func (e *Engine) emit(j *gridJob, completed, total int, counts [4]int, start time.Time) {
	elapsed := time.Since(start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(completed) / elapsed
	}
	eta := 0.0
	if rate > 0 {
		eta = float64(total-completed) / rate
	}
	if r := e.opts.Registry; r != nil {
		r.Gauge("grid.cells.done").Set(float64(counts[jobDone]))
		r.Gauge("grid.cells.failed").Set(float64(counts[jobFailed]))
		r.Gauge("grid.cells.skipped").Set(float64(counts[jobSkipped]))
		r.Gauge("grid.cells_per_sec").Set(rate)
		r.Gauge("grid.eta_seconds").Set(eta)
	}
	status := "ok"
	switch j.state {
	case jobFailed:
		status = "error"
	case jobSkipped:
		status = "skipped"
	}
	e.opts.logf("grid: [%s] %s in %v (%d/%d cells, %.1f cells/s, ETA %.0fs)",
		j.key.label(), status, j.wall.Round(time.Millisecond), completed, total, rate, eta)
	if e.opts.OnCell != nil {
		rec := GridRecord{
			CellKey:   j.key,
			Status:    status,
			WallMS:    float64(j.wall) / float64(time.Millisecond),
			Succ:      j.succ,
			Delay:     j.delay,
			Succeeded: j.succeeded,
			Score:     j.score,
			Done:      completed,
			Total:     total,
		}
		if j.err != nil {
			rec.Error = j.err.Error()
		}
		e.opts.OnCell(rec)
	}
}

// AggregateRecords folds stored eval-cell grid records (any order; only
// Kind "eval" / Status "ok" records contribute) into an Outcome, the
// same mean±std aggregation EvalJob.Outcome performs in memory. Records
// are ordered by seed first, so the result does not depend on log
// emission order — this is the recalc path: a figure re-rendered from a
// stored grid log is byte-identical to the original render.
func AggregateRecords(recs []GridRecord) Outcome {
	eligible := make([]GridRecord, 0, len(recs))
	for _, r := range recs {
		if r.Kind == "eval" && r.Status == "ok" {
			eligible = append(eligible, r)
		}
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].Seed < eligible[j].Seed })
	cells := make([]cellResult, len(eligible))
	for i, r := range eligible {
		cells[i] = cellResult{Succ: r.Succ, Delay: r.Delay, Succeeded: r.Succeeded}
	}
	return aggregate(cells)
}

// evalAlgos registers the standard per-point algorithm set: DistDRL
// (when drl is non-nil, depending on dep) followed by the baselines.
// The returned jobs are in display order.
func (e *Engine) evalAlgos(figure, x string, s Scenario, drl CoordinatorFactory, dep *PolicyJob) []*EvalJob {
	var out []*EvalJob
	if drl != nil {
		out = append(out, e.Eval(figure, x, AlgoDistDRL, s, drl, dep, 0))
	}
	for _, b := range baselineFactories(e.opts.MonitorInterval) {
		out = append(out, e.Eval(figure, x, b.name, s, b.mk, nil, 0))
	}
	return out
}

// collectPoint aggregates one point's eval jobs into label -> outcome
// and logs the canonical per-algorithm summary lines.
func collectPoint(evals []*EvalJob, opts Options) map[string]Outcome {
	out := make(map[string]Outcome, len(evals))
	for _, ev := range evals {
		o := ev.Outcome()
		out[ev.Algo()] = o
		opts.logf("  %-10s succ=%s delay=%s", ev.Algo(), o.Succ, o.Delay.Versus(o.Succ.N))
	}
	return out
}
