package eval

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"distcoord/internal/baselines"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// TestFig6bByteIdenticalAcrossJobs is the determinism bar for the
// parallel experiment engine: the rendered figure must be byte-identical
// for any worker pool size, including 1.
func TestFig6bByteIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("figure determinism test skipped in -short mode")
	}
	render := func(jobs int) string {
		opts := tinyOptions()
		opts.Jobs = jobs
		fig, err := Fig6("b", opts)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return fig.String()
	}
	ref := render(1)
	for _, jobs := range []int{4, 16} {
		if got := render(jobs); got != ref {
			t.Errorf("Fig6b output differs between -jobs 1 and -jobs %d:\n--- jobs=1\n%s\n--- jobs=%d\n%s", jobs, ref, jobs, got)
		}
	}
}

// TestEvaluateJobsMatchesSerial pins that the pooled evaluation path
// aggregates identically to the serial one.
func TestEvaluateJobsMatchesSerial(t *testing.T) {
	s := Base()
	s.Horizon = 500
	mk := Fresh(func() simnet.Coordinator { return baselines.GCASP{} })
	serial, err := Evaluate(s, mk, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := EvaluateJobs(s, mk, 4, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial != pooled {
		t.Errorf("pooled outcome %+v != serial %+v", pooled, serial)
	}
}

// TestEngineRaceSmoke exercises the full grid shape — a training job
// with dependent DRL cells plus independent baseline cells — on a
// multi-worker pool. Sized for the fast `make race` tier.
func TestEngineRaceSmoke(t *testing.T) {
	opts := Options{
		EvalSeeds:       2,
		Horizon:         200,
		MonitorInterval: 100,
		Jobs:            4,
		Registry:        telemetry.NewRegistry(),
		Budget: TrainBudget{
			Episodes:     2,
			ParallelEnvs: 1,
			Seeds:        1,
			Horizon:      80,
			Hidden:       []int{4},
		},
	}
	s := Base()
	s.Horizon = opts.Horizon
	e := NewEngine(opts)
	pol := e.Train("race", "1", s, opts.Budget)
	evals := e.evalAlgos("race", "1", s, pol.Factory(), pol)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if pol.Policy() == nil {
		t.Fatal("policy not trained")
	}
	for _, ev := range evals {
		o := ev.Outcome()
		if o.Succ.N != opts.EvalSeeds {
			t.Errorf("%s: Succ.N = %d, want %d", ev.Algo(), o.Succ.N, opts.EvalSeeds)
		}
		if o.Succ.Mean < 0 || o.Succ.Mean > 1 {
			t.Errorf("%s: success ratio %f outside [0,1]", ev.Algo(), o.Succ.Mean)
		}
	}
	if got := opts.Registry.Gauge("grid.cells.done").Value(); got != float64(len(e.jobs)) {
		t.Errorf("grid.cells.done = %v, want %d", got, len(e.jobs))
	}
	if got := opts.Registry.Gauge("grid.cells.total").Value(); got != float64(len(e.jobs)) {
		t.Errorf("grid.cells.total = %v, want %d", got, len(e.jobs))
	}
}

// TestEngineDependencyOrder asserts a dependent job never starts before
// its dependency completed.
func TestEngineDependencyOrder(t *testing.T) {
	e := NewEngine(Options{Jobs: 4})
	var mu sync.Mutex
	var order []string
	mark := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	dep := e.add(CellKey{Figure: "t", X: "dep", Kind: "row"}, nil, func(*gridJob) error {
		mark("dep")
		return nil
	})
	e.add(CellKey{Figure: "t", X: "child", Kind: "row"}, []*gridJob{dep}, func(*gridJob) error {
		mark("child")
		return nil
	})
	// Independent filler jobs to keep the pool busy.
	for i := 0; i < 6; i++ {
		e.Do("t", "filler", func() error { return nil })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	di, ci := -1, -1
	for i, n := range order {
		switch n {
		case "dep":
			di = i
		case "child":
			ci = i
		}
	}
	if di < 0 || ci < 0 || ci < di {
		t.Errorf("dependency order violated: %v", order)
	}
}

// TestEngineErrorPropagation pins fail-fast semantics: a failed job
// aborts the grid, its dependents are skipped (and recorded as such),
// and Run returns the failure.
func TestEngineErrorPropagation(t *testing.T) {
	var recs []GridRecord
	e := NewEngine(Options{
		Jobs:   1,
		OnCell: func(r GridRecord) { recs = append(recs, r) },
	})
	boom := e.add(CellKey{Figure: "t", X: "boom", Kind: "row"}, nil, func(*gridJob) error {
		return errBoom
	})
	e.add(CellKey{Figure: "t", X: "child", Kind: "row"}, []*gridJob{boom}, func(*gridJob) error {
		t.Error("dependent of failed job ran")
		return nil
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run error = %v, want boom", err)
	}
	statuses := map[string]int{}
	for _, r := range recs {
		statuses[r.Status]++
	}
	if statuses["error"] != 1 || statuses["skipped"] != 1 {
		t.Errorf("record statuses = %v, want 1 error + 1 skipped", statuses)
	}
	if err := e.Run(); err == nil {
		t.Error("second Run did not error")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

// TestEngineGridRecords checks the grid log feed: one record per cell,
// monotone Done counter, constant Total.
func TestEngineGridRecords(t *testing.T) {
	var recs []GridRecord
	opts := Options{
		EvalSeeds: 3,
		Jobs:      4,
		OnCell:    func(r GridRecord) { recs = append(recs, r) },
	}
	s := Base()
	s.Horizon = 300
	e := NewEngine(opts)
	e.Eval("t", "1", AlgoSP, s, Fresh(func() simnet.Coordinator { return baselines.SP{} }), nil, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Done != i+1 || r.Total != 3 {
			t.Errorf("record %d: Done/Total = %d/%d, want %d/3", i, r.Done, r.Total, i+1)
		}
		if r.Status != "ok" || r.Kind != "eval" || r.Algo != AlgoSP {
			t.Errorf("record %d: unexpected fields %+v", i, r)
		}
	}
}

// probeCoord counts how many flows one coordinator instance decided, to
// detect instance sharing across evaluation cells.
type probeCoord struct {
	baselines.SP
	flows map[int]bool
}

func (p *probeCoord) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, now float64) int {
	if p.flows == nil {
		p.flows = map[int]bool{}
	}
	p.flows[int(f.ID)] = true
	return p.SP.Decide(st, f, v, now)
}

// TestFreshCoordinatorPerCell asserts evaluation never shares a
// coordinator instance between cells: each seed's run gets its own.
func TestFreshCoordinatorPerCell(t *testing.T) {
	var mu sync.Mutex
	var made []*probeCoord
	mk := Fresh(func() simnet.Coordinator {
		p := &probeCoord{}
		mu.Lock()
		made = append(made, p)
		mu.Unlock()
		return p
	})
	s := Base()
	s.Horizon = 300
	if _, err := EvaluateJobs(s, mk, 3, 0, 4); err != nil {
		t.Fatal(err)
	}
	if len(made) != 3 {
		t.Fatalf("factory built %d coordinators for 3 cells, want 3", len(made))
	}
	for i, p := range made {
		if len(p.flows) == 0 {
			t.Errorf("coordinator %d decided no flows", i)
		}
	}
}

// TestBaselineFactoriesFresh asserts every baseline factory constructs
// a new coordinator per call — no instance leaks between cells (Central
// is stateful; the check covers all of them by pointer or by type).
func TestBaselineFactoriesFresh(t *testing.T) {
	for _, b := range baselineFactories(100) {
		a, err := b.mk(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := b.mk(nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ca, ok := a.(*baselines.Central); ok {
			if ca == c.(*baselines.Central) {
				t.Errorf("%s: factory returned the same instance twice", b.name)
			}
		}
	}
}

// TestFigureRaggedSeriesAlignment is the regression for the positional
// row-alignment bug: a series missing one x-position must show "-" at
// that row instead of shifting its later points onto wrong rows.
func TestFigureRaggedSeriesAlignment(t *testing.T) {
	f := Figure{
		ID:     "r",
		Title:  "ragged",
		XLabel: "x",
		Series: []Series{
			{Algo: "A", Points: []Point{
				{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.1, N: 1}}},
				{X: "2", Outcome: Outcome{Succ: Summary{Mean: 0.2, N: 1}}},
				{X: "3", Outcome: Outcome{Succ: Summary{Mean: 0.3, N: 1}}},
			}},
			// B is missing x=2: its x=3 point must stay on row 3.
			{Algo: "B", Points: []Point{
				{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.5, N: 1}}},
				{X: "3", Outcome: Outcome{Succ: Summary{Mean: 0.7, N: 1}}},
			}},
		},
	}
	for name, out := range map[string]string{"String": f.String(), "Markdown": f.Markdown()} {
		lines := strings.Split(out, "\n")
		var row2, row3 string
		for _, l := range lines {
			if strings.HasPrefix(l, "2 ") || strings.HasPrefix(l, "| 2 ") {
				row2 = l
			}
			if strings.HasPrefix(l, "3 ") || strings.HasPrefix(l, "| 3 ") {
				row3 = l
			}
		}
		if row2 == "" || row3 == "" {
			t.Fatalf("%s: missing rows in output:\n%s", name, out)
		}
		if !strings.Contains(row2, "-") || strings.Contains(row2, "0.700") {
			t.Errorf("%s: row x=2 must show '-' for B, not B's x=3 value:\n%s", name, row2)
		}
		if !strings.Contains(row3, "0.700") {
			t.Errorf("%s: row x=3 must show B's 0.700:\n%s", name, row3)
		}
	}
}

// TestSummaryVersus pins the sample-count annotation: a summary over
// fewer samples than the reference count says so.
func TestSummaryVersus(t *testing.T) {
	s := Summary{Mean: 0.5, Std: 0.1, N: 2}
	if got := s.Versus(3); got != "0.500±0.100 (n=2)" {
		t.Errorf("Versus(3) = %q", got)
	}
	if got := s.Versus(2); got != "0.500±0.100" {
		t.Errorf("Versus(2) = %q", got)
	}
}

// TestEvaluateDelaySampleCount is the regression for silently dropping
// zero-success seeds from the delay summary: with an infeasible
// deadline no flow succeeds, so Delay must report N=0 while Succ still
// covers every seed — and the annotated rendering must say so.
func TestEvaluateDelaySampleCount(t *testing.T) {
	s := Base()
	s.Horizon = 300
	s.Deadline = 1 // infeasible: shortest-path delay alone exceeds it
	o, err := Evaluate(s, Fresh(func() simnet.Coordinator { return baselines.SP{} }), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Succ.N != 2 {
		t.Errorf("Succ.N = %d, want 2", o.Succ.N)
	}
	if o.Succ.Mean != 0 {
		t.Errorf("Succ.Mean = %f, want 0 under infeasible deadline", o.Succ.Mean)
	}
	if o.Delay.N != 0 {
		t.Errorf("Delay.N = %d, want 0", o.Delay.N)
	}
	if got := o.Delay.Versus(o.Succ.N); !strings.Contains(got, "(n=0)") {
		t.Errorf("Delay.Versus = %q, want (n=0) annotation", got)
	}
	// The figure table must carry the same annotation.
	f := Figure{ID: "d", XLabel: "x", Series: []Series{{Algo: "SP", Points: []Point{{X: "1", Outcome: o}}}}}
	if out := f.String(); !strings.Contains(out, "(n=0)") {
		t.Errorf("figure table missing delay sample annotation:\n%s", out)
	}
}

// TestEngineFailFastGaugesTerminal pins the contract the controller's
// progress endpoint depends on: after a cell error aborts the grid, the
// skip cascade leaves the grid.cells.* gauges in a terminal,
// self-consistent state — done + failed + skipped == total — so a
// reader can always distinguish a finished (aborted) grid from a
// stalled one.
func TestEngineFailFastGaugesTerminal(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		reg := telemetry.NewRegistry()
		e := NewEngine(Options{Jobs: jobs, Registry: reg})
		boom := e.add(CellKey{Figure: "t", X: "boom", Kind: "row"}, nil, func(*gridJob) error {
			return errBoom
		})
		child := e.add(CellKey{Figure: "t", X: "child", Kind: "row"}, []*gridJob{boom}, func(*gridJob) error {
			return nil
		})
		e.add(CellKey{Figure: "t", X: "grandchild", Kind: "row"}, []*gridJob{child}, func(*gridJob) error {
			return nil
		})
		for i := 0; i < 5; i++ {
			e.Do("t", "filler", func() error { return nil })
		}
		if err := e.Run(); err == nil {
			t.Fatalf("jobs=%d: Run did not fail", jobs)
		}
		g := func(name string) int { return int(reg.Gauge(name).Value()) }
		total := g("grid.cells.total")
		done, failed, skipped := g("grid.cells.done"), g("grid.cells.failed"), g("grid.cells.skipped")
		if total != e.Cells() {
			t.Errorf("jobs=%d: grid.cells.total = %d, want %d", jobs, total, e.Cells())
		}
		if done+failed+skipped != total {
			t.Errorf("jobs=%d: done(%d) + failed(%d) + skipped(%d) != total(%d)",
				jobs, done, failed, skipped, total)
		}
		if failed < 1 {
			t.Errorf("jobs=%d: grid.cells.failed = %d, want >= 1", jobs, failed)
		}
		if skipped < 2 {
			t.Errorf("jobs=%d: grid.cells.skipped = %d, want >= 2 (dependency cascade)", jobs, skipped)
		}
	}
}

// TestEngineCancel asserts Cancel aborts the grid: cells not yet
// started carry ErrCanceled, their dependents cascade to skipped, Run
// returns ErrCanceled, and the gauges still partition the total.
func TestEngineCancel(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewEngine(Options{Jobs: 1, Registry: reg})
	started := make(chan struct{})
	canceled := make(chan struct{})
	e.add(CellKey{Figure: "t", X: "first", Kind: "row"}, nil, func(*gridJob) error {
		close(started)
		<-canceled // cancel lands while this cell is mid-run
		return nil
	})
	ran := 0
	for i := 0; i < 4; i++ {
		e.add(CellKey{Figure: "t", X: "later", Kind: "row"}, nil, func(*gridJob) error {
			ran++
			return nil
		})
	}
	go func() {
		<-started
		e.Cancel()
		e.Cancel() // idempotent
		close(canceled)
	}()
	err := e.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run error = %v, want ErrCanceled", err)
	}
	if ran != 0 {
		t.Errorf("%d cells ran after Cancel, want 0 (single worker)", ran)
	}
	g := func(name string) int { return int(reg.Gauge(name).Value()) }
	if sum := g("grid.cells.done") + g("grid.cells.failed") + g("grid.cells.skipped"); sum != g("grid.cells.total") {
		t.Errorf("gauges not terminal after cancel: done+failed+skipped = %d, total = %d",
			sum, g("grid.cells.total"))
	}
}

// TestAggregateRecordsMatchesOutcome pins the recalc path: folding the
// grid-log records of an evaluation back into an Outcome reproduces
// EvalJob.Outcome exactly, regardless of record emission order.
func TestAggregateRecordsMatchesOutcome(t *testing.T) {
	var recs []GridRecord
	opts := Options{
		EvalSeeds: 4,
		Jobs:      4,
		OnCell:    func(r GridRecord) { recs = append(recs, r) },
	}
	s := Base()
	s.Horizon = 300
	e := NewEngine(opts)
	ev := e.Eval("t", "1", AlgoSP, s, Fresh(func() simnet.Coordinator { return baselines.SP{} }), nil, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := ev.Outcome()
	// Reverse the records to prove order independence, and mix in a
	// non-eval record that must be ignored.
	rev := []GridRecord{{CellKey: CellKey{Kind: "train"}, Status: "ok", Succ: 99}}
	for i := len(recs) - 1; i >= 0; i-- {
		rev = append(rev, recs[i])
	}
	got := AggregateRecords(rev)
	if got != want {
		t.Errorf("AggregateRecords = %+v, want %+v", got, want)
	}
}

// TestAggregateRecordsZeroSuccessSeed asserts a stored cell with zero
// successful flows contributes no delay sample after the JSONL round
// trip — the Succeeded field must survive serialization.
func TestAggregateRecordsZeroSuccessSeed(t *testing.T) {
	recs := []GridRecord{
		{CellKey: CellKey{Kind: "eval", Seed: 0}, Status: "ok", Succ: 0.5, Delay: 10, Succeeded: 5},
		{CellKey: CellKey{Kind: "eval", Seed: 1}, Status: "ok", Succ: 0, Delay: 0, Succeeded: 0},
	}
	raw, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var back []GridRecord
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	o := AggregateRecords(back)
	if o.Succ.N != 2 {
		t.Errorf("Succ.N = %d, want 2", o.Succ.N)
	}
	if o.Delay.N != 1 || o.Delay.Mean != 10 {
		t.Errorf("Delay = %+v, want N=1 Mean=10 (zero-success seed excluded)", o.Delay)
	}
}

// TestFigureCSV checks the machine-readable render: header plus one row
// per (x, algo) pair in deterministic order, with quoting.
func TestFigureCSV(t *testing.T) {
	fig := Figure{
		ID:     "t",
		XLabel: "x,label",
		Series: []Series{
			{Algo: "A", Points: []Point{
				{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.5, Std: 0.1, N: 3}, Delay: Summary{Mean: 12, Std: 2, N: 3}}},
				{X: "2", Outcome: Outcome{Succ: Summary{Mean: 0.75, N: 3}, Delay: Summary{N: 0}}},
			}},
			{Algo: "B", Points: []Point{
				{X: "1", Outcome: Outcome{Succ: Summary{Mean: 0.25, N: 3}, Delay: Summary{Mean: 8, N: 2}}},
			}},
		},
	}
	got := fig.CSV()
	want := "figure,\"x,label\",algo,succ_mean,succ_std,succ_n,delay_mean,delay_std,delay_n\n" +
		"t,1,A,0.5,0.1,3,12,2,3\n" +
		"t,1,B,0.25,0,3,8,0,2\n" +
		"t,2,A,0.75,0,3,0,0,0\n"
	if got != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", got, want)
	}
}
