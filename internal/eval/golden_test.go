package eval

import (
	"crypto/md5"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"distcoord/internal/baselines"
	"distcoord/internal/chaos"
	"distcoord/internal/coord"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
)

// These golden hashes pin the sequential simulation engine byte-for-byte
// across refactors: the Shards <= 1 path must produce exactly the
// pre-sharding engine's metrics on the fig6b scenario family and on
// fault-injection scenarios. The constants were generated on the
// pre-shard engine (PR 6 state); if one of these tests fails, the
// sequential event loop changed behavior — that is a regression, not a
// baseline to re-pin.
const (
	goldenFig6bHash  = "b3bbf1a64eee2ed8af4e872512fccc53"
	goldenFaultsHash = "51a695a0969f62640dc88e4622f06f6a"
)

// metricsFingerprint serializes metrics canonically: every counter,
// every drop cause in sorted order, and every delay with full float64
// precision, so two metrics differing anywhere fingerprint differently.
func metricsFingerprint(m *simnet.Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "arrived=%d succeeded=%d dropped=%d decisions=%d forwards=%d processings=%d keeps=%d faults=%d\n",
		m.Arrived, m.Succeeded, m.Dropped, m.Decisions, m.Forwards, m.Processings, m.Keeps, m.Faults)
	fmt.Fprintf(&b, "sumdelay=%s maxdelay=%s\n",
		strconv.FormatFloat(m.SumDelay, 'g', -1, 64), strconv.FormatFloat(m.MaxDelay, 'g', -1, 64))
	causes := make([]int, 0, len(m.DropsBy))
	for c := range m.DropsBy {
		causes = append(causes, int(c))
	}
	sort.Ints(causes)
	for _, c := range causes {
		fmt.Fprintf(&b, "drop[%s]=%d\n", simnet.DropCause(c), m.DropsBy[simnet.DropCause(c)])
	}
	for _, d := range m.Delays {
		b.WriteString(strconv.FormatFloat(d, 'g', -1, 64))
		b.WriteByte('\n')
	}
	return b.String()
}

// goldenCoordinators builds the coordinator set exercising every engine
// decision path: the two deterministic baselines plus the distributed
// DRL coordinator (randomly initialized — training is irrelevant for
// pinning the event loop) in both argmax and sampling mode.
func goldenCoordinators(t *testing.T, inst *Instance, seed int64) []simnet.Coordinator {
	t.Helper()
	adapter := coord.NewAdapter(inst.Graph, inst.APSP)
	agent, err := rl.NewAgent(rl.AgentConfig{
		ObsSize:    adapter.ObsSize(),
		NumActions: adapter.NumActions(),
		Hidden:     []int{32, 32},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := coord.NewDistributed(adapter, agent.Actor)
	if err != nil {
		t.Fatal(err)
	}
	greedy.Stochastic = false
	greedy.Reseed(seed + 1)
	sampling, err := coord.NewDistributed(adapter, agent.Actor)
	if err != nil {
		t.Fatal(err)
	}
	sampling.Reseed(seed + 1)
	return []simnet.Coordinator{baselines.SP{}, baselines.GCASP{}, greedy, sampling}
}

// runGolden accumulates the fingerprints of every (scenario, coordinator,
// seed) cell and returns the md5 over the whole transcript.
func runGolden(t *testing.T, scenarios []Scenario, seeds []int64) string {
	t.Helper()
	var b strings.Builder
	for si, s := range scenarios {
		for _, seed := range seeds {
			inst, err := s.Instantiate(seed)
			if err != nil {
				t.Fatal(err)
			}
			for ci, c := range goldenCoordinators(t, inst, seed) {
				m, err := inst.Run(c)
				if err != nil {
					t.Fatalf("scenario %d seed %d coordinator %s: %v", si, seed, c.Name(), err)
				}
				fmt.Fprintf(&b, "scenario=%d seed=%d coord=%d %s\n%s", si, seed, ci, c.Name(), metricsFingerprint(m))
			}
		}
	}
	return fmt.Sprintf("%x", md5.Sum([]byte(b.String())))
}

// TestSequentialEngineGoldenFig6b pins the sequential engine on the
// fig6b scenario family (Abilene, growing ingress count) at a trimmed
// horizon: md5 over the canonical metrics of every cell.
func TestSequentialEngineGoldenFig6b(t *testing.T) {
	var scenarios []Scenario
	for _, ing := range []int{1, 2, 3} {
		s := Base()
		s.NumIngresses = ing
		s.Horizon = 2000
		scenarios = append(scenarios, s)
	}
	if got := runGolden(t, scenarios, []int64{0, 1}); got != goldenFig6bHash {
		t.Fatalf("sequential engine changed on fig6b scenarios: md5 %s, want %s", got, goldenFig6bHash)
	}
}

// TestSequentialEngineGoldenFaults pins the sequential engine under
// fault injection: node outages, link cascades, and instance kills all
// exercise the event loop's dynamic-topology paths.
func TestSequentialEngineGoldenFaults(t *testing.T) {
	var scenarios []Scenario
	for _, spec := range []string{"node-outage:count=2,seed=7", "link-cascade:count=3,seed=3", "instance-kill:count=4,seed=5"} {
		fs, err := chaos.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		s := Base()
		s.Horizon = 1500
		s.Faults = fs
		scenarios = append(scenarios, s)
	}
	if got := runGolden(t, scenarios, []int64{0, 1}); got != goldenFaultsHash {
		t.Fatalf("sequential engine changed on fault scenarios: md5 %s, want %s", got, goldenFaultsHash)
	}
}
