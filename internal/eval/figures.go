package eval

import (
	"fmt"
	"sort"
	"strings"

	"distcoord/internal/baselines"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
	"distcoord/internal/traffic"
)

// Options scales the experiment suite. Defaults run on commodity CPUs;
// the paper's full settings (30 eval seeds, horizon 20000, 2x256
// networks) are selected in cmd/experiments via flags.
type Options struct {
	// EvalSeeds is the number of evaluation seeds per data point
	// (paper: 30).
	EvalSeeds int
	// Horizon is the evaluation horizon T (paper: 20000).
	Horizon float64
	// Budget scales DRL training.
	Budget TrainBudget
	// MonitorInterval is the central coordinator's rule update period.
	MonitorInterval float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
	// Jobs bounds the experiment engine's worker pool — how many
	// training jobs and evaluation cells run concurrently; 0 selects
	// runtime.NumCPU(). Figure output is byte-identical for any value.
	Jobs int
	// OnCell, when non-nil, receives one GridRecord per completed grid
	// cell (the -grid-log JSONL feed). Called from the engine's
	// scheduler goroutine, never concurrently.
	OnCell func(GridRecord)
	// Registry, when non-nil, receives engine progress metrics:
	// grid.cells.total/done/failed/skipped, grid.cells_per_sec, and
	// grid.eta_seconds gauges. The done/failed/skipped gauges partition
	// the total once the grid drains, even under fail-fast abort.
	Registry *telemetry.Registry
	// Run attaches execution options (flow tracer, MaxBatch, Shards) to
	// every evaluation cell registered via Eval. Figures leave it zero,
	// pinning published results to the plain sequential path; the
	// controller sets it per sweep point via EvalWith.
	Run RunOptions
}

// DefaultOptions returns commodity-hardware settings.
func DefaultOptions() Options {
	return Options{
		EvalSeeds:       3,
		Horizon:         2000,
		Budget:          DefaultTrainBudget(),
		MonitorInterval: 100,
	}
}

func (o Options) withDefaults() Options {
	if o.EvalSeeds <= 0 {
		o.EvalSeeds = 3
	}
	if o.Horizon <= 0 {
		o.Horizon = 2000
	}
	if o.Budget.Episodes == 0 {
		o.Budget = DefaultTrainBudget()
	}
	if o.MonitorInterval <= 0 {
		o.MonitorInterval = 100
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Point is one x-position of a figure: the outcome of one algorithm on
// one scenario.
type Point struct {
	X       string
	Outcome Outcome
}

// Series is one algorithm's curve.
type Series struct {
	Algo   string
	Points []Point
}

// point returns the series point at x-position x, if any.
func (s Series) point(x string) (Point, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// Figure is a regenerated paper figure: one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// xPositions returns the union of x-positions across every series, in
// first-appearance order (scanning series in display order). Rendering
// iterates this union and matches cells by Point.X, so a series missing
// one x-position shows "-" there instead of silently shifting its later
// points onto the wrong rows.
func (f Figure) xPositions() []string {
	var xs []string
	seen := map[string]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	return xs
}

// AlgoDistDRL etc. are the algorithm labels used across all figures.
const (
	AlgoDistDRL = "DistDRL"
	AlgoCentral = "Central"
	AlgoGCASP   = "GCASP"
	AlgoSP      = "SP"
)

// baselineFactories returns the non-DRL comparison algorithms in display
// order. Every factory constructs a fresh coordinator per evaluation
// cell, so no state leaks between seeds and cells can run concurrently.
func baselineFactories(monitorInterval float64) []struct {
	name string
	mk   CoordinatorFactory
} {
	return []struct {
		name string
		mk   CoordinatorFactory
	}{
		{AlgoCentral, Fresh(func() simnet.Coordinator { return baselines.NewCentral(monitorInterval) })},
		{AlgoGCASP, Fresh(func() simnet.Coordinator { return baselines.GCASP{} })},
		{AlgoSP, Fresh(func() simnet.Coordinator { return baselines.SP{} })},
	}
}

// evalPoint evaluates every algorithm on one scenario and returns
// label -> outcome. The per-algorithm cells run on the engine's worker
// pool.
func evalPoint(s Scenario, drl CoordinatorFactory, opts Options) (map[string]Outcome, error) {
	e := NewEngine(opts)
	evals := e.evalAlgos("point", s.Topology, s, drl, nil)
	if err := e.Run(); err != nil {
		return nil, err
	}
	return collectPoint(evals, opts), nil
}

// TrafficPatterns returns the four arrival patterns of Fig. 6 keyed by
// sub-figure letter.
func TrafficPatterns() map[string]traffic.Spec {
	return map[string]traffic.Spec{
		"a": traffic.FixedSpec(10),
		"b": traffic.PoissonSpec(10),
		"c": traffic.MMPPSpec(12, 8, 100, 0.05),
		"d": traffic.SyntheticTraceSpec(10, 2, 4),
	}
}

// Fig6 reproduces one sub-figure of Fig. 6: success ratio over an
// increasing number of ingress nodes (1-5) for one arrival pattern
// ("a" fixed, "b" Poisson, "c" MMPP, "d" trace-driven). The DRL agent is
// retrained for every load level, as in the paper. Training jobs and
// evaluation cells execute on the experiment engine's worker pool.
func Fig6(variant string, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	spec, ok := TrafficPatterns()[variant]
	if !ok {
		return Figure{}, fmt.Errorf("eval: unknown Fig 6 variant %q", variant)
	}
	fig := Figure{
		ID:     "6" + variant,
		Title:  fmt.Sprintf("Successful flows vs. load, %s arrival", spec.Label),
		XLabel: "ingress nodes",
	}
	e := NewEngine(opts)
	type point struct {
		x     string
		evals []*EvalJob
	}
	var points []point
	for k := 1; k <= 5; k++ {
		s := Base()
		s.Traffic = spec
		s.NumIngresses = k
		s.Horizon = opts.Horizon
		x := fmt.Sprint(k)
		pol := e.Train(fig.ID, x, s, opts.Budget)
		points = append(points, point{x, e.evalAlgos(fig.ID, x, s, pol.Factory(), pol)})
	}
	if err := e.Run(); err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	for _, p := range points {
		opts.logf("Fig %s: %s ingress nodes:", fig.ID, p.x)
		appendPoint(series, p.x, collectPoint(p.evals, opts))
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// Fig7 reproduces Fig. 7: success ratio and average end-to-end delay for
// deadlines τ ∈ {20, 30, 40, 50} with two ingresses and Poisson traffic.
func Fig7(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "7",
		Title:  "Successful flows and end-to-end delay vs. flow deadline",
		XLabel: "deadline",
	}
	e := NewEngine(opts)
	type point struct {
		x     string
		evals []*EvalJob
	}
	var points []point
	for _, deadline := range []float64{20, 30, 40, 50} {
		s := Base()
		s.Deadline = deadline
		s.Horizon = opts.Horizon
		x := fmt.Sprintf("%.0f", deadline)
		pol := e.Train(fig.ID, x, s, opts.Budget)
		points = append(points, point{x, e.evalAlgos(fig.ID, x, s, pol.Factory(), pol)})
	}
	if err := e.Run(); err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	for _, p := range points {
		opts.logf("Fig 7: deadline %s:", p.x)
		appendPoint(series, p.x, collectPoint(p.evals, opts))
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// Fig8a reproduces Fig. 8a: agents trained on fixed, Poisson, and MMPP
// traffic are evaluated without retraining on trace-driven traffic
// ("Gen."), next to an agent retrained on the traces ("Retr.") and the
// baselines. All four training jobs are independent and run
// concurrently on the engine.
func Fig8a(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	target := Base()
	target.Traffic = TrafficPatterns()["d"]
	target.Horizon = opts.Horizon

	fig := Figure{
		ID:     "8a",
		Title:  "Generalization to unseen trace-driven traffic",
		XLabel: "agent",
	}
	e := NewEngine(opts)
	var evals []*EvalJob
	for _, src := range []string{"a", "b", "c"} {
		train := Base()
		train.Traffic = TrafficPatterns()[src]
		train.Horizon = opts.Horizon
		label := "DRL Gen(" + train.Traffic.Label + ")"
		pol := e.Train(fig.ID, label, train, opts.Budget)
		evals = append(evals, e.Eval(fig.ID, "trace", label, target, pol.Factory(), pol, 0))
	}
	retr := e.Train(fig.ID, "DRL Retr.", target, opts.Budget)
	evals = append(evals, e.Eval(fig.ID, "trace", "DRL Retr.", target, retr.Factory(), retr, 0))
	for _, b := range baselineFactories(opts.MonitorInterval) {
		evals = append(evals, e.Eval(fig.ID, "trace", b.name, target, b.mk, nil, 0))
	}
	if err := e.Run(); err != nil {
		return Figure{}, err
	}
	for _, ev := range evals {
		o := ev.Outcome()
		opts.logf("  %-22s succ=%s delay=%s", ev.Algo(), o.Succ, o.Delay.Versus(o.Succ.N))
		fig.Series = append(fig.Series, Series{
			Algo:   ev.Algo(),
			Points: []Point{{X: "trace", Outcome: o}},
		})
	}
	return fig, nil
}

// Fig8b reproduces Fig. 8b: an agent trained with two ingresses is
// evaluated without retraining on 1-5 ingress nodes ("Gen."), against
// retrained agents ("Retr.") and the baselines. The generalizing
// agent's cells at every load level depend on the single shared
// training job; retraining jobs are per level.
func Fig8b(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	train := Base()
	train.Horizon = opts.Horizon

	fig := Figure{
		ID:     "8b",
		Title:  "Generalization to unseen network load",
		XLabel: "ingress nodes",
	}
	e := NewEngine(opts)
	genPol := e.Train(fig.ID, "gen", train, opts.Budget)
	type point struct {
		x     string
		evals []*EvalJob
	}
	var points []point
	for k := 1; k <= 5; k++ {
		s := Base()
		s.NumIngresses = k
		s.Horizon = opts.Horizon
		x := fmt.Sprint(k)
		retrPol := e.Train(fig.ID, x, s, opts.Budget)
		evals := []*EvalJob{
			e.Eval(fig.ID, x, "DRL Gen.", s, genPol.Factory(), genPol, 0),
			e.Eval(fig.ID, x, "DRL Retr.", s, retrPol.Factory(), retrPol, 0),
		}
		for _, b := range baselineFactories(opts.MonitorInterval) {
			evals = append(evals, e.Eval(fig.ID, x, b.name, s, b.mk, nil, 0))
		}
		points = append(points, point{x, evals})
	}
	if err := e.Run(); err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	for _, p := range points {
		opts.logf("Fig 8b: load %s:", p.x)
		appendPoint(series, p.x, collectPoint(p.evals, opts))
	}
	fig.Series = orderedSeriesWith(series, []string{"DRL Gen.", "DRL Retr.", AlgoCentral, AlgoGCASP, AlgoSP})
	return fig, nil
}

// Fig9a reproduces Fig. 9a: success ratio on the four real-world
// topologies (two ingresses v1, v2; egress v8; Poisson traffic), with the
// DRL agent trained per topology.
func Fig9a(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "9a",
		Title:  "Successful flows on large real-world topologies",
		XLabel: "network",
	}
	e := NewEngine(opts)
	type point struct {
		x     string
		evals []*EvalJob
	}
	var points []point
	for _, g := range graph.Topologies() {
		s := Base()
		s.Topology = g.Name()
		s.Horizon = opts.Horizon
		pol := e.Train(fig.ID, g.Name(), s, opts.Budget)
		points = append(points, point{g.Name(), e.evalAlgos(fig.ID, g.Name(), s, pol.Factory(), pol)})
	}
	if err := e.Run(); err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	for _, p := range points {
		opts.logf("Fig 9a: %s:", p.x)
		appendPoint(series, p.x, collectPoint(p.evals, opts))
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// appendPoint adds one x-position's outcomes to the series map.
func appendPoint(series map[string]*Series, x string, point map[string]Outcome) {
	for name, o := range point {
		sr := series[name]
		if sr == nil {
			sr = &Series{Algo: name}
			series[name] = sr
		}
		sr.Points = append(sr.Points, Point{X: x, Outcome: o})
	}
}

// orderedSeries returns the standard algorithm ordering.
func orderedSeries(series map[string]*Series) []Series {
	return orderedSeriesWith(series, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP})
}

func orderedSeriesWith(series map[string]*Series, order []string) []Series {
	var out []Series
	seen := map[string]bool{}
	for _, name := range order {
		if sr := series[name]; sr != nil {
			out = append(out, *sr)
			seen[name] = true
		}
	}
	var rest []string
	for name := range series {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, *series[name])
	}
	return out
}

// String renders the figure as an aligned text table: one row per
// x-position, one column per algorithm, cells "succ (delay)". Rows are
// matched by Point.X across series; a series without a point at some
// x-position shows "-" there. A delay computed from fewer seeds than
// the success summary (seeds with zero successful flows have no delay)
// is annotated with its sample count.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %-22s", s.Algo)
	}
	b.WriteString("\n")
	for _, x := range f.xPositions() {
		fmt.Fprintf(&b, "%-14s", x)
		for _, s := range f.Series {
			if p, ok := s.point(x); ok {
				o := p.Outcome
				fmt.Fprintf(&b, " | %11s %8.1fms", o.Succ, o.Delay.Mean)
				if o.Delay.N < o.Succ.N {
					fmt.Fprintf(&b, " (n=%d)", o.Delay.N)
				}
			} else {
				fmt.Fprintf(&b, " | %-22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PointFigure evaluates every algorithm on one scenario and returns a
// single-column figure (used by cmd/experiments -exp point and the
// examples).
func PointFigure(s Scenario, policy *TrainedPolicy, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	var drl CoordinatorFactory
	if policy != nil {
		drl = policy.Factory()
	}
	point, err := evalPoint(s, drl, opts)
	if err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	appendPoint(series, s.Topology, point)
	return Figure{
		ID:     "point",
		Title:  fmt.Sprintf("%s, %d ingresses, %s", s.Topology, len(s.Ingresses()), s.Traffic.Label),
		XLabel: "scenario",
		Series: orderedSeries(series),
	}, nil
}

// TableI renders the paper's Table I from the topology registry. The
// optional Options wire the row computations into the experiment
// engine's progress reporting (TableI() alone uses engine defaults).
func TableI(opt ...Options) string {
	var opts Options
	if len(opt) > 0 {
		opts = opt[0]
	}
	e := NewEngine(opts)
	tops := graph.Topologies()
	rows := make([]graph.TableIRow, len(tops))
	for i, g := range tops {
		i, g := i, g
		e.Do("table1", g.Name(), func() error {
			rows[i] = graph.TableIRows([]*graph.Graph{g})[0]
			return nil
		})
	}
	if err := e.Run(); err != nil {
		// Row computations cannot fail; keep the signature string-only.
		return "Table I: error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString("Table I: Real-world network topologies\n")
	fmt.Fprintf(&b, "%-15s %6s %6s %25s\n", "Network", "Nodes", "Edges", "Degree (Min/Max/Avg)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %6d %6d %15d / %2d / %.2f\n",
			r.Name, r.Nodes, r.Edges, r.MinDeg, r.MaxDeg, r.AvgDeg)
	}
	return b.String()
}

// Markdown renders the figure as a GitHub-flavored Markdown table
// (success mean±std per algorithm and x-position), for inclusion in
// EXPERIMENTS.md-style reports. Like String, rows are matched by
// Point.X across series.
func (f Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**Figure %s — %s**\n\n", f.ID, f.Title)
	fmt.Fprintf(&b, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Algo)
	}
	b.WriteString("\n|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, x := range f.xPositions() {
		fmt.Fprintf(&b, "| %s |", x)
		for _, s := range f.Series {
			if p, ok := s.point(x); ok {
				fmt.Fprintf(&b, " %s |", p.Outcome.Succ)
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the figure as a flat machine-readable table: one row per
// (x, algorithm) pair with full success and delay summaries, the sweep
// matrix the controller stores next to the markdown render. Rows follow
// x-position then series display order, so the output is deterministic
// for a given figure.
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,%s,algo,succ_mean,succ_std,succ_n,delay_mean,delay_std,delay_n\n", csvField(f.XLabel))
	for _, x := range f.xPositions() {
		for _, s := range f.Series {
			p, ok := s.point(x)
			if !ok {
				continue
			}
			o := p.Outcome
			fmt.Fprintf(&b, "%s,%s,%s,%g,%g,%d,%g,%g,%d\n",
				csvField(f.ID), csvField(x), csvField(s.Algo),
				o.Succ.Mean, o.Succ.Std, o.Succ.N,
				o.Delay.Mean, o.Delay.Std, o.Delay.N)
		}
	}
	return b.String()
}

// csvField quotes a field when it contains a comma, quote, or newline.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
