package eval

import (
	"fmt"
	"sort"
	"strings"

	"distcoord/internal/baselines"
	"distcoord/internal/graph"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// Options scales the experiment suite. Defaults run on commodity CPUs;
// the paper's full settings (30 eval seeds, horizon 20000, 2x256
// networks) are selected in cmd/experiments via flags.
type Options struct {
	// EvalSeeds is the number of evaluation seeds per data point
	// (paper: 30).
	EvalSeeds int
	// Horizon is the evaluation horizon T (paper: 20000).
	Horizon float64
	// Budget scales DRL training.
	Budget TrainBudget
	// MonitorInterval is the central coordinator's rule update period.
	MonitorInterval float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...interface{})
}

// DefaultOptions returns commodity-hardware settings.
func DefaultOptions() Options {
	return Options{
		EvalSeeds:       3,
		Horizon:         2000,
		Budget:          DefaultTrainBudget(),
		MonitorInterval: 100,
	}
}

func (o Options) withDefaults() Options {
	if o.EvalSeeds <= 0 {
		o.EvalSeeds = 3
	}
	if o.Horizon <= 0 {
		o.Horizon = 2000
	}
	if o.Budget.Episodes == 0 {
		o.Budget = DefaultTrainBudget()
	}
	if o.MonitorInterval <= 0 {
		o.MonitorInterval = 100
	}
	return o
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Point is one x-position of a figure: the outcome of one algorithm on
// one scenario.
type Point struct {
	X       string
	Outcome Outcome
}

// Series is one algorithm's curve.
type Series struct {
	Algo   string
	Points []Point
}

// Figure is a regenerated paper figure: one series per algorithm.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// AlgoDistDRL etc. are the algorithm labels used across all figures.
const (
	AlgoDistDRL = "DistDRL"
	AlgoCentral = "Central"
	AlgoGCASP   = "GCASP"
	AlgoSP      = "SP"
)

// baselineFactories returns the non-DRL comparison algorithms in display
// order.
func baselineFactories(monitorInterval float64) []struct {
	name string
	mk   CoordinatorFactory
} {
	return []struct {
		name string
		mk   CoordinatorFactory
	}{
		{AlgoCentral, func(*Instance, int64) (simnet.Coordinator, error) {
			return baselines.NewCentral(monitorInterval), nil
		}},
		{AlgoGCASP, Static(baselines.GCASP{})},
		{AlgoSP, Static(baselines.SP{})},
	}
}

// evalPoint evaluates every algorithm on one scenario and returns
// label -> outcome.
func evalPoint(s Scenario, drl CoordinatorFactory, opts Options) (map[string]Outcome, error) {
	out := make(map[string]Outcome)
	run := func(name string, mk CoordinatorFactory) error {
		o, err := Evaluate(s, mk, opts.EvalSeeds, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out[name] = o
		opts.logf("  %-10s succ=%s delay=%s", name, o.Succ, o.Delay)
		return nil
	}
	if drl != nil {
		if err := run(AlgoDistDRL, drl); err != nil {
			return nil, err
		}
	}
	for _, b := range baselineFactories(opts.MonitorInterval) {
		if err := run(b.name, b.mk); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TrafficPatterns returns the four arrival patterns of Fig. 6 keyed by
// sub-figure letter.
func TrafficPatterns() map[string]traffic.Spec {
	return map[string]traffic.Spec{
		"a": traffic.FixedSpec(10),
		"b": traffic.PoissonSpec(10),
		"c": traffic.MMPPSpec(12, 8, 100, 0.05),
		"d": traffic.SyntheticTraceSpec(10, 2, 4),
	}
}

// Fig6 reproduces one sub-figure of Fig. 6: success ratio over an
// increasing number of ingress nodes (1-5) for one arrival pattern
// ("a" fixed, "b" Poisson, "c" MMPP, "d" trace-driven). The DRL agent is
// retrained for every load level, as in the paper.
func Fig6(variant string, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	spec, ok := TrafficPatterns()[variant]
	if !ok {
		return Figure{}, fmt.Errorf("eval: unknown Fig 6 variant %q", variant)
	}
	fig := Figure{
		ID:     "6" + variant,
		Title:  fmt.Sprintf("Successful flows vs. load, %s arrival", spec.Label),
		XLabel: "ingress nodes",
	}
	series := map[string]*Series{}
	for k := 1; k <= 5; k++ {
		s := Base()
		s.Traffic = spec
		s.NumIngresses = k
		s.Horizon = opts.Horizon
		opts.logf("Fig 6%s: %d ingress nodes: training DRL...", variant, k)
		policy, err := TrainDRL(s, opts.Budget)
		if err != nil {
			return Figure{}, err
		}
		point, err := evalPoint(s, policy.Factory(), opts)
		if err != nil {
			return Figure{}, err
		}
		appendPoint(series, fmt.Sprint(k), point)
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// Fig7 reproduces Fig. 7: success ratio and average end-to-end delay for
// deadlines τ ∈ {20, 30, 40, 50} with two ingresses and Poisson traffic.
func Fig7(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "7",
		Title:  "Successful flows and end-to-end delay vs. flow deadline",
		XLabel: "deadline",
	}
	series := map[string]*Series{}
	for _, deadline := range []float64{20, 30, 40, 50} {
		s := Base()
		s.Deadline = deadline
		s.Horizon = opts.Horizon
		opts.logf("Fig 7: deadline %.0f: training DRL...", deadline)
		policy, err := TrainDRL(s, opts.Budget)
		if err != nil {
			return Figure{}, err
		}
		point, err := evalPoint(s, policy.Factory(), opts)
		if err != nil {
			return Figure{}, err
		}
		appendPoint(series, fmt.Sprintf("%.0f", deadline), point)
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// Fig8a reproduces Fig. 8a: agents trained on fixed, Poisson, and MMPP
// traffic are evaluated without retraining on trace-driven traffic
// ("Gen."), next to an agent retrained on the traces ("Retr.") and the
// baselines.
func Fig8a(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	target := Base()
	target.Traffic = TrafficPatterns()["d"]
	target.Horizon = opts.Horizon

	fig := Figure{
		ID:     "8a",
		Title:  "Generalization to unseen trace-driven traffic",
		XLabel: "agent",
	}
	addOutcome := func(label string, o Outcome) {
		fig.Series = append(fig.Series, Series{
			Algo:   label,
			Points: []Point{{X: "trace", Outcome: o}},
		})
	}

	for _, src := range []string{"a", "b", "c"} {
		train := Base()
		train.Traffic = TrafficPatterns()[src]
		train.Horizon = opts.Horizon
		opts.logf("Fig 8a: training on %s...", train.Traffic.Label)
		policy, err := TrainDRL(train, opts.Budget)
		if err != nil {
			return Figure{}, err
		}
		o, err := Evaluate(target, policy.Factory(), opts.EvalSeeds, 0)
		if err != nil {
			return Figure{}, err
		}
		opts.logf("  Gen(%s) on traces: succ=%s", train.Traffic.Label, o.Succ)
		addOutcome("DRL Gen("+train.Traffic.Label+")", o)
	}

	opts.logf("Fig 8a: retraining on traces...")
	policy, err := TrainDRL(target, opts.Budget)
	if err != nil {
		return Figure{}, err
	}
	o, err := Evaluate(target, policy.Factory(), opts.EvalSeeds, 0)
	if err != nil {
		return Figure{}, err
	}
	addOutcome("DRL Retr.", o)

	for _, b := range baselineFactories(opts.MonitorInterval) {
		ob, err := Evaluate(target, b.mk, opts.EvalSeeds, 0)
		if err != nil {
			return Figure{}, err
		}
		addOutcome(b.name, ob)
	}
	return fig, nil
}

// Fig8b reproduces Fig. 8b: an agent trained with two ingresses is
// evaluated without retraining on 1-5 ingress nodes ("Gen."), against
// retrained agents ("Retr.") and the baselines.
func Fig8b(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	train := Base()
	train.Horizon = opts.Horizon
	opts.logf("Fig 8b: training on 2 ingresses...")
	genPolicy, err := TrainDRL(train, opts.Budget)
	if err != nil {
		return Figure{}, err
	}

	fig := Figure{
		ID:     "8b",
		Title:  "Generalization to unseen network load",
		XLabel: "ingress nodes",
	}
	series := map[string]*Series{}
	for k := 1; k <= 5; k++ {
		s := Base()
		s.NumIngresses = k
		s.Horizon = opts.Horizon
		opts.logf("Fig 8b: load %d: retraining...", k)
		retrPolicy, err := TrainDRL(s, opts.Budget)
		if err != nil {
			return Figure{}, err
		}
		point := map[string]Outcome{}
		gen, err := Evaluate(s, genPolicy.Factory(), opts.EvalSeeds, 0)
		if err != nil {
			return Figure{}, err
		}
		point["DRL Gen."] = gen
		retr, err := Evaluate(s, retrPolicy.Factory(), opts.EvalSeeds, 0)
		if err != nil {
			return Figure{}, err
		}
		point["DRL Retr."] = retr
		for _, b := range baselineFactories(opts.MonitorInterval) {
			o, err := Evaluate(s, b.mk, opts.EvalSeeds, 0)
			if err != nil {
				return Figure{}, err
			}
			point[b.name] = o
		}
		opts.logf("  load %d: gen=%s retr=%s", k, gen.Succ, retr.Succ)
		appendPoint(series, fmt.Sprint(k), point)
	}
	fig.Series = orderedSeriesWith(series, []string{"DRL Gen.", "DRL Retr.", AlgoCentral, AlgoGCASP, AlgoSP})
	return fig, nil
}

// Fig9a reproduces Fig. 9a: success ratio on the four real-world
// topologies (two ingresses v1, v2; egress v8; Poisson traffic), with the
// DRL agent trained per topology.
func Fig9a(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "9a",
		Title:  "Successful flows on large real-world topologies",
		XLabel: "network",
	}
	series := map[string]*Series{}
	for _, g := range graph.Topologies() {
		s := Base()
		s.Topology = g.Name()
		s.Horizon = opts.Horizon
		opts.logf("Fig 9a: %s: training DRL...", g.Name())
		policy, err := TrainDRL(s, opts.Budget)
		if err != nil {
			return Figure{}, err
		}
		point, err := evalPoint(s, policy.Factory(), opts)
		if err != nil {
			return Figure{}, err
		}
		appendPoint(series, g.Name(), point)
	}
	fig.Series = orderedSeries(series)
	return fig, nil
}

// appendPoint adds one x-position's outcomes to the series map.
func appendPoint(series map[string]*Series, x string, point map[string]Outcome) {
	for name, o := range point {
		sr := series[name]
		if sr == nil {
			sr = &Series{Algo: name}
			series[name] = sr
		}
		sr.Points = append(sr.Points, Point{X: x, Outcome: o})
	}
}

// orderedSeries returns the standard algorithm ordering.
func orderedSeries(series map[string]*Series) []Series {
	return orderedSeriesWith(series, []string{AlgoDistDRL, AlgoCentral, AlgoGCASP, AlgoSP})
}

func orderedSeriesWith(series map[string]*Series, order []string) []Series {
	var out []Series
	seen := map[string]bool{}
	for _, name := range order {
		if sr := series[name]; sr != nil {
			out = append(out, *sr)
			seen[name] = true
		}
	}
	var rest []string
	for name := range series {
		if !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		out = append(out, *series[name])
	}
	return out
}

// String renders the figure as an aligned text table: one row per
// x-position, one column per algorithm, cells "succ (delay)".
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %-22s", s.Algo)
	}
	b.WriteString("\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-14s", p.X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				o := s.Points[i].Outcome
				fmt.Fprintf(&b, " | %11s %8.1fms", o.Succ, o.Delay.Mean)
			} else {
				fmt.Fprintf(&b, " | %-22s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PointFigure evaluates every algorithm on one scenario and returns a
// single-column figure (used by cmd/experiments -exp point and the
// examples).
func PointFigure(s Scenario, policy *TrainedPolicy, opts Options) (Figure, error) {
	opts = opts.withDefaults()
	var drl CoordinatorFactory
	if policy != nil {
		drl = policy.Factory()
	}
	point, err := evalPoint(s, drl, opts)
	if err != nil {
		return Figure{}, err
	}
	series := map[string]*Series{}
	appendPoint(series, s.Topology, point)
	return Figure{
		ID:     "point",
		Title:  fmt.Sprintf("%s, %d ingresses, %s", s.Topology, len(s.Ingresses()), s.Traffic.Label),
		XLabel: "scenario",
		Series: orderedSeries(series),
	}, nil
}

// TableI renders the paper's Table I from the topology registry.
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: Real-world network topologies\n")
	fmt.Fprintf(&b, "%-15s %6s %6s %25s\n", "Network", "Nodes", "Edges", "Degree (Min/Max/Avg)")
	for _, r := range graph.TableIRows(graph.Topologies()) {
		fmt.Fprintf(&b, "%-15s %6d %6d %15d / %2d / %.2f\n",
			r.Name, r.Nodes, r.Edges, r.MinDeg, r.MaxDeg, r.AvgDeg)
	}
	return b.String()
}

// Markdown renders the figure as a GitHub-flavored Markdown table
// (success mean±std per algorithm and x-position), for inclusion in
// EXPERIMENTS.md-style reports.
func (f Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**Figure %s — %s**\n\n", f.ID, f.Title)
	fmt.Fprintf(&b, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %s |", s.Algo)
	}
	b.WriteString("\n|---|")
	for range f.Series {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for i, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "| %s |", p.X)
		for _, s := range f.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %s |", s.Points[i].Outcome.Succ)
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
