package clicfg

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSpecValidate(t *testing.T) {
	ok := []RunSpec{
		{Algo: "sp"},
		{Algo: "drl", Train: &TrainSpec{Episodes: 5}},
		{Algo: "gcasp", Shards: 2, MaxBatch: 8},
		{Algo: "central", Topology: "Abilene", Pattern: "mmpp", Faults: "node-outage:count=1"},
	}
	for i, s := range ok {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d: unexpected error %v", i, err)
		}
	}
	bad := []struct {
		spec RunSpec
		want string
	}{
		{RunSpec{}, "algo"},
		{RunSpec{Algo: "dqn"}, "algo"},
		{RunSpec{Algo: "sp", Seeds: -1}, "seeds"},
		{RunSpec{Algo: "central", Shards: 2}, "central"},
		{RunSpec{Algo: "sp", Topology: "Nowhere"}, "Nowhere"},
		{RunSpec{Algo: "sp", Pattern: "burst"}, "pattern"},
		{RunSpec{Algo: "sp", Faults: "meteor-strike"}, "meteor-strike"},
		{RunSpec{Algo: "sp", Train: &TrainSpec{Episodes: 5}}, "drl"},
		{RunSpec{Algo: "sp", MaxBatch: -1}, "max_batch"},
	}
	for i, tc := range bad {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("spec %d: error = %v, want mention of %q", i, err, tc.want)
		}
	}
}

func TestRunSpecScenario(t *testing.T) {
	s := RunSpec{
		Algo:      "sp",
		Topology:  "Abilene",
		Ingresses: 3,
		Deadline:  40,
		Pattern:   "fixed",
		Faults:    "node-outage:count=1,seed=7",
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumIngresses != 3 || sc.Deadline != 40 || sc.Horizon != specHorizonDefault {
		t.Errorf("scenario fields wrong: %+v", sc)
	}
	if !strings.HasPrefix(sc.Traffic.Label, "fixed") {
		t.Errorf("traffic label = %q, want fixed arrivals", sc.Traffic.Label)
	}
	if sc.Faults.Profile == "" {
		t.Error("fault spec not carried into scenario")
	}
	if _, err := sc.Instantiate(0); err != nil {
		t.Errorf("resolved scenario does not instantiate: %v", err)
	}
}

func TestRunSpecDefaults(t *testing.T) {
	s := RunSpec{Algo: "sp"}
	if s.EvalSeeds() != 3 {
		t.Errorf("EvalSeeds = %d, want 3", s.EvalSeeds())
	}
	sc, err := s.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology != "Abilene" || sc.NumIngresses != 2 || sc.Deadline != 100 {
		t.Errorf("base defaults wrong: %+v", sc)
	}
	if b := s.TrainBudget(); b.Episodes != 600 {
		t.Errorf("default train budget episodes = %d, want 600", b.Episodes)
	}
	if b := (RunSpec{Algo: "drl", Train: &TrainSpec{Episodes: 7, Seeds: 1}}).TrainBudget(); b.Episodes != 7 || b.Seeds != 1 {
		t.Errorf("train override not applied: %+v", b)
	}
}

func TestSweepExpandCrossProduct(t *testing.T) {
	sw := SweepSpec{
		Base: RunSpec{Algo: "sp", Horizon: 200},
		Axes: []SweepAxis{
			{Param: "algo", Values: []string{"sp", "gcasp"}},
			{Param: "shards", Values: []string{"1", "2"}},
		},
	}
	pts, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("expanded to %d points, want 4", len(pts))
	}
	wantLabels := []string{"algo=sp,shards=1", "algo=sp,shards=2", "algo=gcasp,shards=1", "algo=gcasp,shards=2"}
	for i, p := range pts {
		if p.Label != wantLabels[i] {
			t.Errorf("point %d label = %q, want %q", i, p.Label, wantLabels[i])
		}
		if p.Spec.Horizon != 200 {
			t.Errorf("point %d lost base horizon: %+v", i, p.Spec)
		}
	}
	if pts[1].Spec.Shards != 2 || pts[2].Spec.Algo != "gcasp" {
		t.Errorf("axis values not applied: %+v", pts)
	}
}

func TestSweepExpandNoAxes(t *testing.T) {
	pts, err := SweepSpec{Base: RunSpec{Algo: "sp"}}.Expand()
	if err != nil || len(pts) != 1 || pts[0].Label != "base" {
		t.Errorf("no-axis sweep = %v, %v; want one base point", pts, err)
	}
}

func TestSweepExpandRejections(t *testing.T) {
	cases := []struct {
		sw   SweepSpec
		want string
	}{
		{SweepSpec{Base: RunSpec{Algo: "sp"}, Axes: []SweepAxis{{Param: "color", Values: []string{"red"}}}}, "unknown"},
		{SweepSpec{Base: RunSpec{Algo: "sp"}, Axes: []SweepAxis{{Param: "shards"}}}, "no values"},
		{SweepSpec{Base: RunSpec{Algo: "sp"}, Axes: []SweepAxis{{Param: "shards", Values: []string{"two"}}}}, "shards"},
		// A point that only becomes invalid after combination: central is
		// not shardable.
		{SweepSpec{Base: RunSpec{Algo: "sp"}, Axes: []SweepAxis{
			{Param: "algo", Values: []string{"central"}},
			{Param: "shards", Values: []string{"2"}},
		}}, "central"},
	}
	for i, tc := range cases {
		_, err := tc.sw.Expand()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error = %v, want mention of %q", i, err, tc.want)
		}
	}
	big := SweepSpec{Base: RunSpec{Algo: "sp"}}
	vals := make([]string, 17)
	for i := range vals {
		vals[i] = "1"
	}
	big.Axes = []SweepAxis{{Param: "seed", Values: vals}, {Param: "seed", Values: vals}}
	if _, err := big.Expand(); err == nil || !strings.Contains(err.Error(), "points") {
		t.Errorf("oversized sweep error = %v, want cap message", err)
	}
}

// TestSpecJSONRoundTrip pins that a spec survives the HTTP boundary:
// what the controller stores in the manifest re-parses to the same
// spec.
func TestSpecJSONRoundTrip(t *testing.T) {
	sw := SweepSpec{
		Name: "night-sweep",
		Base: RunSpec{Algo: "drl", Seeds: 2, Pattern: "mmpp", Train: &TrainSpec{Episodes: 9}},
		Axes: []SweepAxis{{Param: "max_batch", Values: []string{"0", "16"}}},
	}
	raw, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	var back SweepSpec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != sw.Name || back.Base.Pattern != "mmpp" || back.Base.Train.Episodes != 9 ||
		len(back.Axes) != 1 || back.Axes[0].Values[1] != "16" {
		t.Errorf("round trip lost fields: %+v", back)
	}
}
