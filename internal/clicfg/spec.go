package clicfg

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"distcoord/internal/chaos"
	"distcoord/internal/eval"
	"distcoord/internal/graph"
	"distcoord/internal/traffic"
)

// This file defines the serializable experiment specifications the
// controller service accepts over HTTP: a RunSpec describes one
// evaluation point (the JSON twin of the shared flag surface — the same
// algo/topology/pattern/faults/batch/shards vocabulary every binary
// takes on the command line), and a SweepSpec is a cross-product of
// RunSpec variations along named axes. Both validate strictly at
// submission time, so a malformed sweep is rejected before any cell is
// scheduled.

// Algorithm names accepted by RunSpec.Algo, in canonical order. They
// mirror the -algo flag of cmd/coordsim; labels (eval.AlgoDistDRL etc.)
// are derived via AlgoLabel.
var specAlgos = []string{"drl", "central", "gcasp", "sp"}

// AlgoLabel maps a RunSpec algorithm name to its figure display label.
func AlgoLabel(algo string) string {
	switch algo {
	case "drl":
		return eval.AlgoDistDRL
	case "central":
		return eval.AlgoCentral
	case "gcasp":
		return eval.AlgoGCASP
	case "sp":
		return eval.AlgoSP
	}
	return algo
}

// PatternSpec maps an arrival-pattern name (the -pattern vocabulary:
// fixed, poisson, mmpp, trace) to its traffic.Spec; empty selects
// poisson, the base scenario's pattern.
func PatternSpec(pattern string) (traffic.Spec, error) {
	switch pattern {
	case "", "poisson":
		return traffic.PoissonSpec(10), nil
	case "fixed":
		return traffic.FixedSpec(10), nil
	case "mmpp":
		return traffic.MMPPSpec(12, 8, 100, 0.05), nil
	case "trace":
		return traffic.SyntheticTraceSpec(10, 2, 4), nil
	}
	return traffic.Spec{}, fmt.Errorf("clicfg: unknown pattern %q (want fixed, poisson, mmpp, trace)", pattern)
}

// TrainSpec overrides the DRL training budget of a RunSpec; zero fields
// keep eval.DefaultTrainBudget.
type TrainSpec struct {
	Episodes     int     `json:"episodes,omitempty"`
	Seeds        int     `json:"seeds,omitempty"`
	ParallelEnvs int     `json:"parallel_envs,omitempty"`
	Horizon      float64 `json:"horizon,omitempty"`
	Hidden       []int   `json:"hidden,omitempty"`
}

// Budget resolves the spec to a TrainBudget.
func (t TrainSpec) Budget() eval.TrainBudget {
	b := eval.DefaultTrainBudget()
	if t.Episodes > 0 {
		b.Episodes = t.Episodes
	}
	if t.Seeds > 0 {
		b.Seeds = t.Seeds
	}
	if t.ParallelEnvs > 0 {
		b.ParallelEnvs = t.ParallelEnvs
	}
	if t.Horizon > 0 {
		b.Horizon = t.Horizon
	}
	if len(t.Hidden) > 0 {
		b.Hidden = t.Hidden
	}
	return b
}

// RunSpec is one named evaluation point, serializable as JSON. Zero
// fields select the base-scenario defaults (eval.Base: Abilene, two
// ingresses, Poisson arrivals, deadline 100), matching the flag
// defaults of the CLIs.
type RunSpec struct {
	// Name labels the run; the controller defaults it to the run ID.
	Name string `json:"name,omitempty"`
	// Algo is the coordination algorithm: drl, central, gcasp, or sp.
	Algo string `json:"algo"`
	// Seeds is the number of evaluation seeds (default 3); BaseSeed
	// offsets them.
	Seeds    int   `json:"seeds,omitempty"`
	BaseSeed int64 `json:"base_seed,omitempty"`
	// Topology names a graph from the registry (default Abilene).
	Topology string `json:"topology,omitempty"`
	// Ingresses is the ingress node count (default 2).
	Ingresses int `json:"ingresses,omitempty"`
	// Deadline is the flow deadline τ (default 100).
	Deadline float64 `json:"deadline,omitempty"`
	// Horizon is the flow-generation horizon T (default 2000 — the
	// commodity-hardware default, not the paper's 20000).
	Horizon float64 `json:"horizon,omitempty"`
	// Pattern is the arrival pattern (fixed, poisson, mmpp, trace).
	Pattern string `json:"pattern,omitempty"`
	// Faults is a chaos spec string ("node-outage:count=2,seed=7"); empty
	// or "none" runs fault-free.
	Faults string `json:"faults,omitempty"`
	// MaxBatch and Shards select the execution mode per cell (cf. -batch
	// and -shards); 0 or 1 keeps the sequential path.
	MaxBatch int `json:"max_batch,omitempty"`
	Shards   int `json:"shards,omitempty"`
	// Train overrides the DRL training budget (algo "drl" only).
	Train *TrainSpec `json:"train,omitempty"`
}

// specHorizonDefault is the default evaluation horizon for controller
// runs, matching eval.DefaultOptions.
const specHorizonDefault = 2000

// Validate rejects an inconsistent spec with an error naming the field.
func (s RunSpec) Validate() error {
	algoOK := false
	for _, a := range specAlgos {
		if s.Algo == a {
			algoOK = true
		}
	}
	if !algoOK {
		return fmt.Errorf("clicfg: spec algo %q unknown (want %s)", s.Algo, strings.Join(specAlgos, ", "))
	}
	if s.Seeds < 0 {
		return fmt.Errorf("clicfg: spec seeds must be >= 0, got %d", s.Seeds)
	}
	if s.Ingresses < 0 {
		return fmt.Errorf("clicfg: spec ingresses must be >= 0, got %d", s.Ingresses)
	}
	if s.Deadline < 0 || s.Horizon < 0 {
		return fmt.Errorf("clicfg: spec deadline/horizon must be >= 0")
	}
	if s.MaxBatch < 0 {
		return fmt.Errorf("clicfg: spec max_batch must be >= 0, got %d", s.MaxBatch)
	}
	if s.Shards < 0 {
		return fmt.Errorf("clicfg: spec shards must be >= 0, got %d", s.Shards)
	}
	if s.Shards > 1 && s.Algo == "central" {
		return fmt.Errorf("clicfg: spec shards %d is incompatible with algo central (no ForShard capability)", s.Shards)
	}
	if s.Topology != "" {
		if _, err := graph.ByName(s.Topology); err != nil {
			return fmt.Errorf("clicfg: spec topology: %w", err)
		}
	}
	if _, err := PatternSpec(s.Pattern); err != nil {
		return err
	}
	if _, err := chaos.ParseSpec(s.Faults); err != nil {
		return err
	}
	if s.Train != nil && s.Algo != "drl" {
		return fmt.Errorf("clicfg: spec train budget requires algo drl, got %q", s.Algo)
	}
	return nil
}

// EvalSeeds returns the effective evaluation seed count.
func (s RunSpec) EvalSeeds() int {
	if s.Seeds > 0 {
		return s.Seeds
	}
	return 3
}

// Scenario resolves the spec to an eval.Scenario. Call Validate first;
// Scenario repeats only the checks whose results it needs.
func (s RunSpec) Scenario() (eval.Scenario, error) {
	spec, err := PatternSpec(s.Pattern)
	if err != nil {
		return eval.Scenario{}, err
	}
	faults, err := chaos.ParseSpec(s.Faults)
	if err != nil {
		return eval.Scenario{}, err
	}
	sc := eval.Base()
	sc.Traffic = spec
	sc.Faults = faults
	if s.Topology != "" {
		sc.Topology = s.Topology
	}
	if s.Ingresses > 0 {
		sc.NumIngresses = s.Ingresses
	}
	if s.Deadline > 0 {
		sc.Deadline = s.Deadline
	}
	sc.Horizon = specHorizonDefault
	if s.Horizon > 0 {
		sc.Horizon = s.Horizon
	}
	return sc, nil
}

// RunOptions returns the per-cell execution options the spec selects.
func (s RunSpec) RunOptions() eval.RunOptions {
	return eval.RunOptions{MaxBatch: s.MaxBatch, Shards: s.Shards}
}

// TrainBudget resolves the training budget (DefaultTrainBudget when
// Train is nil).
func (s RunSpec) TrainBudget() eval.TrainBudget {
	if s.Train != nil {
		return s.Train.Budget()
	}
	return eval.DefaultTrainBudget()
}

// sweepParams maps axis parameter names to the setter applied per
// value. Every setter parses the string form (sweep values arrive as
// JSON strings so one grammar covers numeric and symbolic axes).
var sweepParams = map[string]func(*RunSpec, string) error{
	"seed": func(s *RunSpec, v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		s.BaseSeed = n
		return err
	},
	"algo": func(s *RunSpec, v string) error { s.Algo = v; return nil },
	"max_batch": func(s *RunSpec, v string) error {
		n, err := strconv.Atoi(v)
		s.MaxBatch = n
		return err
	},
	"shards": func(s *RunSpec, v string) error {
		n, err := strconv.Atoi(v)
		s.Shards = n
		return err
	},
	"faults": func(s *RunSpec, v string) error { s.Faults = v; return nil },
	"ingresses": func(s *RunSpec, v string) error {
		n, err := strconv.Atoi(v)
		s.Ingresses = n
		return err
	},
	"deadline": func(s *RunSpec, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		s.Deadline = f
		return err
	},
	"horizon": func(s *RunSpec, v string) error {
		f, err := strconv.ParseFloat(v, 64)
		s.Horizon = f
		return err
	},
	"pattern":  func(s *RunSpec, v string) error { s.Pattern = v; return nil },
	"topology": func(s *RunSpec, v string) error { s.Topology = v; return nil },
}

// SweepParams returns the valid axis parameter names, sorted.
func SweepParams() []string {
	names := make([]string, 0, len(sweepParams))
	for name := range sweepParams {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SweepAxis is one sweep dimension: a parameter name and the values it
// takes, in submission order.
type SweepAxis struct {
	Param  string   `json:"param"`
	Values []string `json:"values"`
}

// SweepSpec is a named cross-product sweep: Base is varied along every
// axis, producing one SweepPoint per combination.
type SweepSpec struct {
	Name string      `json:"name,omitempty"`
	Base RunSpec     `json:"base"`
	Axes []SweepAxis `json:"axes,omitempty"`
}

// SweepPoint is one expanded sweep combination: the resolved spec plus
// the axis values that produced it ("shards=2,algo=sp"), which the
// sweep matrix uses as the point label.
type SweepPoint struct {
	Label string  `json:"label"`
	Spec  RunSpec `json:"spec"`
}

// maxSweepPoints caps the cross-product so a typo'd sweep cannot
// schedule an unbounded grid.
const maxSweepPoints = 256

// Expand validates the sweep and returns the cross-product of its axes
// over the base spec, every point individually validated. Axes expand
// left to right, the last axis fastest, so the point order is
// deterministic for a given submission. A sweep with no axes is one
// point: the base spec itself.
func (sw SweepSpec) Expand() ([]SweepPoint, error) {
	total := 1
	for _, ax := range sw.Axes {
		if _, ok := sweepParams[ax.Param]; !ok {
			return nil, fmt.Errorf("clicfg: sweep axis param %q unknown (want one of %s)", ax.Param, strings.Join(SweepParams(), ", "))
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("clicfg: sweep axis %q has no values", ax.Param)
		}
		total *= len(ax.Values)
		if total > maxSweepPoints {
			return nil, fmt.Errorf("clicfg: sweep expands to more than %d points", maxSweepPoints)
		}
	}
	points := []SweepPoint{{Spec: sw.Base}}
	for _, ax := range sw.Axes {
		set := sweepParams[ax.Param]
		next := make([]SweepPoint, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				spec := p.Spec
				if err := set(&spec, v); err != nil {
					return nil, fmt.Errorf("clicfg: sweep axis %s value %q: %v", ax.Param, v, err)
				}
				label := ax.Param + "=" + v
				if p.Label != "" {
					label = p.Label + "," + label
				}
				next = append(next, SweepPoint{Label: label, Spec: spec})
			}
		}
		points = next
	}
	for i := range points {
		if points[i].Label == "" {
			points[i].Label = "base"
		}
		if err := points[i].Spec.Validate(); err != nil {
			return nil, fmt.Errorf("clicfg: sweep point %q: %w", points[i].Label, err)
		}
	}
	return points, nil
}
