package clicfg

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"distcoord/internal/flowtrace"
	"distcoord/internal/graph"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/traffic"
)

// parseArgs registers the shared surface on a fresh FlagSet and parses
// args into it.
func parseArgs(t *testing.T, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("clicfg-test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestObsWaitRequiresObsAddr(t *testing.T) {
	if _, err := parseArgs(t, "-obs-wait", "1s").Apply(); err == nil {
		t.Error("-obs-wait without -obs-addr accepted")
	}
	if _, err := parseArgs(t, "-obs-addr", "127.0.0.1:0", "-obs-wait", "-1s").Apply(); err == nil {
		t.Error("negative -obs-wait accepted")
	}
}

func TestTracerComposition(t *testing.T) {
	rt, err := parseArgs(t).Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.Tracer() != nil {
		t.Error("tracer non-nil with tracing and obs both off")
	}
	if rt.Registry() == nil {
		t.Error("registry must always be available")
	}
	if rt.ObsEnabled() || rt.ObsAddr() != "" {
		t.Error("obs reported enabled without -obs-addr")
	}

	rtObs, err := parseArgs(t, "-obs-addr", "127.0.0.1:0").Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rtObs.Close()
	if rtObs.Tracer() == nil {
		t.Error("obs alone must install the live collector tracer")
	}
	if !rtObs.ObsEnabled() || rtObs.ObsAddr() == "" {
		t.Error("obs not serving under -obs-addr :0")
	}
}

// lineSim runs a small line-topology simulation with the runtime's
// tracer installed.
func lineSim(t *testing.T, rt *Runtime) *simnet.Metrics {
	t.Helper()
	g := graph.New("line")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), 10)
	}
	for i := 0; i < 2; i++ {
		if err := g.AddLink(graph.NodeID(i), graph.NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
		g.SetLinkCapacity(i, 10)
	}
	cfg := simnet.Config{
		Graph: g,
		Service: &simnet.Service{Name: "svc", Chain: []*simnet.Component{
			{Name: "c1", ProcDelay: 5, StartupDelay: 2, IdleTimeout: 1000, ResourcePerRate: 1},
		}},
		Ingresses:   []simnet.Ingress{{Node: 0, Arrivals: traffic.Fixed{Interval: 2}}},
		Egress:      2,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     201,
		Coordinator: egressCoord{},
		Tracer:      rt.Tracer(),
		Faults:      []simnet.Fault{{Time: 13, Kind: simnet.FaultInstanceKill, Node: 2}},
	}
	s, err := simnet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// egressCoord forwards everything to the egress and processes there.
type egressCoord struct{}

func (egressCoord) Name() string { return "test-egress" }

func (egressCoord) Decide(st *simnet.State, f *simnet.Flow, v graph.NodeID, _ float64) int {
	if v == f.Egress {
		return 0
	}
	hop := st.APSP().NextHop(v, f.Egress)
	for i, ad := range st.Graph().Neighbors(v) {
		if ad.Neighbor == hop {
			return i + 1
		}
	}
	return 0
}

// TestObsServesLiveRun is the integration race test: a simulation and a
// training feed mutate the runtime registry while HTTP scrapers hit all
// three endpoints, and afterwards the live collector's counters, the
// JSONL trace file, and an offline reassembly must all agree.
func TestObsServesLiveRun(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	rt, err := parseArgs(t, "-obs-addr", "127.0.0.1:0", "-flow-trace", tracePath).Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.SetObsInfo("algo", "test")
	base := "http://" + rt.ObsAddr()

	var m *simnet.Metrics
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		m = lineSim(t, rt)
		// Keep the training feed alive so scrapers overlap real writes.
		for i := 0; i < 50; i++ {
			rt.OnEpisode(rl.EpisodeRecord{Seed: i % 2, Episode: i, Score: 0.5, RolloutMS: 1, UpdateMS: 1})
			rt.Registry().Gauge("grid.cells.total").Set(10)
			rt.Registry().Gauge("grid.cells.done").Set(float64(i % 11))
		}
		close(stop)
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/metrics", "/snapshot", "/run"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("GET %s -> %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Final state: every flow the sim terminated must be in the live
	// collector's registry feed.
	snap := rt.Registry().Snapshot()
	if got := snap.Counters["flow.traced.completed"]; got != int64(m.Succeeded) {
		t.Errorf("flow.traced.completed = %d, want %d", got, m.Succeeded)
	}
	if got := snap.Counters["flow.traced.dropped"]; got != int64(m.Dropped) {
		t.Errorf("flow.traced.dropped = %d, want %d", got, m.Dropped)
	}
	if snap.Counters["train.episodes"] != 50 {
		t.Errorf("train.episodes = %d, want 50", snap.Counters["train.episodes"])
	}

	// The scrape endpoints reflect the same registry.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"flow_traced_completed", "grid_cells_total 10", "train_episodes 50", "flow_phase_total_count"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The JSONL sink got the same event stream: close flushes it, and the
	// offline reassembly agrees with the sim's metrics.
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []simnet.TraceEvent
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e simnet.TraceEvent
		if err := e.UnmarshalJSON([]byte(line)); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		events = append(events, e)
	}
	spans, err := flowtrace.Assemble(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != m.Arrived {
		t.Errorf("%d spans from trace file, want %d arrived flows", len(spans), m.Arrived)
	}
}

// TestFlagValidation is the unified consistency check over the shared
// flag surface: every inconsistent combination must be rejected with an
// error before any sink or server is opened, and sane combinations must
// pass.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"defaults", nil, true},
		{"negative jobs", []string{"-jobs", "-1"}, false},
		{"negative batch", []string{"-batch", "-2"}, false},
		{"negative shards", []string{"-shards", "-1"}, false},
		{"shards on one cpu", []string{"-shards", "4", "-jobs", "1"}, false},
		{"shards with default jobs", []string{"-shards", "4"}, true},
		{"shards with enough jobs", []string{"-shards", "4", "-jobs", "2"}, true},
		{"single shard on one cpu", []string{"-shards", "1", "-jobs", "1"}, true},
		{"batch and shards together", []string{"-shards", "2", "-batch", "16"}, true},
		{"obs-wait without obs-addr", []string{"-obs-wait", "5s"}, false},
		{"agentd serving", []string{"-listen", "127.0.0.1:0"}, true},
		{"remote fleet", []string{"-agents", "127.0.0.1:7501,127.0.0.1:7502"}, true},
		{"listen and agents together", []string{"-listen", ":0", "-agents", "127.0.0.1:7501"}, false},
		{"model-push without agents", []string{"-model-push"}, false},
		{"model-push with agents", []string{"-model-push", "-agents", "127.0.0.1:7501"}, true},
		{"agents with shards", []string{"-agents", "127.0.0.1:7501", "-shards", "2"}, false},
		{"empty agent endpoint", []string{"-agents", "127.0.0.1:7501,,127.0.0.1:7502"}, false},
	}
	for _, tc := range cases {
		err := parseArgs(t, tc.args...).Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: inconsistent flags accepted", tc.name)
		}
	}
}

func TestAgentEndpoints(t *testing.T) {
	if eps := parseArgs(t).AgentEndpoints(); eps != nil {
		t.Errorf("no -agents, endpoints %v", eps)
	}
	got := parseArgs(t, "-agents", "127.0.0.1:7501, 127.0.0.1:7502").AgentEndpoints()
	want := []string{"127.0.0.1:7501", "127.0.0.1:7502"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("endpoints %v, want %v", got, want)
	}
}

// TestRunOptionsBuilder pins the single flag→options mapping: the shared
// run options a binary gets must reflect the parsed flags, not per-binary
// hand-threading.
func TestRunOptionsBuilder(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	rt, err := parseArgs(t, "-batch", "16", "-shards", "2", "-flow-trace", tracePath).Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	opts := rt.RunOptions()
	if opts.MaxBatch != 16 {
		t.Errorf("MaxBatch = %d, want 16", opts.MaxBatch)
	}
	if opts.Shards != 2 {
		t.Errorf("Shards = %d, want 2", opts.Shards)
	}
	if opts.Tracer == nil {
		t.Error("Tracer nil despite -flow-trace")
	}
	if opts.ShardObserver == nil {
		t.Error("ShardObserver nil; sharded runs would lose progress gauges")
	}

	rt2, err := parseArgs(t).Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	opts2 := rt2.RunOptions()
	if opts2.MaxBatch != 0 || opts2.Shards != 0 || opts2.Tracer != nil {
		t.Errorf("default run options not zero-valued: %+v", opts2)
	}
}

func TestDecideRTTOnRegistry(t *testing.T) {
	rt, err := parseArgs(t).Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.DecideRTT().Observe(123)
	if got := rt.Registry().Histogram("rpc_decide_rtt_us").Count(); got != 1 {
		t.Errorf("rpc_decide_rtt_us count = %d, want 1", got)
	}
}

// shardableEgress is egressCoord with the ForShard capability.
type shardableEgress struct{ egressCoord }

func (c shardableEgress) ForShard(shard, shards int) simnet.Coordinator { return c }

// TestValidateShards pins the coordinator capability check: -shards > 1
// with a coordinator lacking ForShard must fail upfront, naming the
// algorithm.
func TestValidateShards(t *testing.T) {
	f := parseArgs(t, "-shards", "2")
	if err := f.ValidateShards(egressCoord{}); err == nil {
		t.Error("-shards 2 with a non-shardable coordinator accepted")
	} else if !strings.Contains(err.Error(), "test-egress") {
		t.Errorf("error does not name the coordinator: %v", err)
	}
	if err := f.ValidateShards(shardableEgress{}); err != nil {
		t.Errorf("shardable coordinator rejected: %v", err)
	}
	if err := parseArgs(t).ValidateShards(egressCoord{}); err != nil {
		t.Errorf("sequential run rejected a non-shardable coordinator: %v", err)
	}
}

// twoClusterGraph builds two m-node line clusters joined by one bridge
// link for the sharded smoke test.
func twoClusterGraph(m int) *graph.Graph {
	g := graph.New("two-clusters")
	for i := 0; i < 2*m; i++ {
		g.AddNode("", 0, float64(i))
		g.SetNodeCapacity(graph.NodeID(i), 4)
	}
	link := func(a, b graph.NodeID, delay float64) {
		if err := g.AddLink(a, b, delay); err != nil {
			panic(err)
		}
		g.SetLinkCapacity(g.NumLinks()-1, 5)
	}
	for i := 0; i < m-1; i++ {
		link(graph.NodeID(i), graph.NodeID(i+1), 1)
		link(graph.NodeID(m+i), graph.NodeID(m+i+1), 1)
	}
	link(graph.NodeID(m-1), graph.NodeID(m), 4)
	return g
}

// TestShardedObsSmoke is the race-tier smoke test of the sharding PR: a
// multi-shard simulation with fault injection and flow tracing runs
// while HTTP scrapers hammer /metrics, with the runtime's shard observer
// publishing per-shard gauges from the epoch barriers. Run under
// `make race`, this covers the shard goroutines, the locked listener
// path, the trace buffers, and the registry concurrently.
func TestShardedObsSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	rt, err := parseArgs(t, "-obs-addr", "127.0.0.1:0", "-flow-trace", tracePath, "-shards", "2").Apply()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	base := "http://" + rt.ObsAddr()

	const m = 5
	g := twoClusterGraph(m)
	part := make([]int, 2*m)
	for i := m; i < 2*m; i++ {
		part[i] = 1
	}
	egA, egB := graph.NodeID(m-1), graph.NodeID(2*m-1)
	ends := &lockedEndCount{ids: map[int]int{}}
	cfg := simnet.Config{
		Graph: g,
		Service: &simnet.Service{Name: "svc", Chain: []*simnet.Component{
			{Name: "c1", ProcDelay: 2, IdleTimeout: 500, ResourcePerRate: 1},
		}},
		Ingresses: []simnet.Ingress{
			{Node: 0, Arrivals: traffic.Fixed{Interval: 2}, Egress: &egB},
			{Node: m, Arrivals: traffic.Fixed{Interval: 2}, Egress: &egA},
		},
		Egress:      egB,
		Template:    simnet.FlowTemplate{Rate: 1, Duration: 1, Deadline: 100},
		Horizon:     300,
		Coordinator: shardableEgress{},
		Listener:    ends,
		Faults: []simnet.Fault{
			{Time: 50, Kind: simnet.FaultNodeDown, Node: 2},
			{Time: 100, Kind: simnet.FaultNodeUp, Node: 2},
			{Time: 150, Kind: simnet.FaultLinkDown, Link: 2 * (m - 1)},
			{Time: 200, Kind: simnet.FaultLinkUp, Link: 2 * (m - 1)},
		},
		Tracer:        rt.Tracer(),
		Shards:        rt.Shards(),
		Partition:     part,
		ShardObserver: rt.ShardObserver(),
	}

	var metrics *simnet.Metrics
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		s, err := simnet.New(cfg)
		if err != nil {
			t.Error(err)
			return
		}
		mm, err := s.Run()
		if err != nil {
			t.Error(err)
			return
		}
		if s.Handoffs() == 0 {
			t.Error("cross-cluster workload produced no handoffs")
		}
		metrics = mm
	}()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/metrics")
				if err != nil {
					t.Errorf("GET /metrics: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if metrics.Faults != 2 {
		t.Errorf("Faults = %d, want 2 (one node-down, one link-down, counted once each)", metrics.Faults)
	}
	if got := len(ends.ids); got != metrics.Arrived {
		t.Errorf("listener saw %d flows end, want %d", got, metrics.Arrived)
	}
	snap := rt.Registry().Snapshot()
	for _, gauge := range []string{"shard.0.epoch", "shard.1.epoch", "shard.0.heap_depth", "shard.1.handoffs"} {
		if _, ok := snap.Gauges[gauge]; !ok {
			t.Errorf("per-shard gauge %q missing from registry", gauge)
		}
	}
	if snap.Gauges["shard.0.epoch"] <= 0 {
		t.Errorf("shard.0.epoch = %g, want > 0", snap.Gauges["shard.0.epoch"])
	}
}

// lockedEndCount counts flow terminations per ID; the simulator wraps
// shared listeners in a serializing layer, so the map needs no lock of
// its own — the race detector verifies exactly that.
type lockedEndCount struct {
	simnet.NopListener
	ids map[int]int
}

func (l *lockedEndCount) OnFlowEnd(f *simnet.Flow, success bool, cause simnet.DropCause, now float64) {
	l.ids[f.ID]++
}
