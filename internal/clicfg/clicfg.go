// Package clicfg centralizes the command-line surface shared by every
// binary in cmd/: telemetry outputs (-episode-log, -flow-trace,
// -metrics-out), profiling flags, and fault injection (-faults). Each
// binary calls Register once on its FlagSet and Apply once after
// flag.Parse; binary-specific flags stay in the binaries.
//
// Every shared flag is registered on every binary so the surface is
// uniform across tools; a binary that has no use for one of the outputs
// (e.g. -episode-log on topo, which never trains) accepts the flag and
// simply never writes to the sink.
package clicfg

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"distcoord/internal/chaos"
	"distcoord/internal/eval"
	"distcoord/internal/flowtrace"
	"distcoord/internal/rl"
	"distcoord/internal/simnet"
	"distcoord/internal/telemetry"
)

// Flags holds the parsed shared command line. Construct with Register,
// resolve with Apply.
type Flags struct {
	// EpisodeLog is the JSONL path for per-episode training records.
	EpisodeLog string
	// EpisodeLogMaxBytes rotates the episode log at this size (0: never).
	EpisodeLogMaxBytes int64
	// FlowTrace is the JSONL path for per-flow simulator trace events.
	FlowTrace string
	// MetricsOut is the path for the machine-readable metrics summary.
	MetricsOut string
	// Faults is the chaos spec string ("node-outage:count=2,seed=7", see
	// chaos.ParseSpec); empty or "none" disables fault injection.
	Faults string
	// Jobs bounds how many CPUs the binary uses: Apply sets GOMAXPROCS
	// to it, and binaries with an experiment grid (cmd/experiments)
	// additionally use it as the engine's worker pool size. 0 keeps the
	// default (all CPUs). Results never depend on it.
	Jobs int
	// Batch enables batched decision resolution in simulation runs that
	// honor it (cmd/bench scale mode): same-(node, time) decisions are
	// resolved with up to this many flows per inference call
	// (simnet.Config.MaxBatch). 0 or 1 keeps the sequential path.
	Batch int
	// Shards runs simulations that honor it on the sharded multi-core
	// event loop with this many shards (simnet.Config.Shards). 0 or 1
	// keeps the byte-identical sequential engine; > 1 requires a
	// coordinator with the ShardableCoordinator capability.
	Shards int
	// GridLog is the JSONL path for per-cell experiment grid records
	// (eval.GridRecord).
	GridLog string
	// Prof bundles the profiling flags (-cpuprofile, -memprofile, -pprof).
	Prof telemetry.Profiler
	// ObsAddr serves the live observability endpoint (/metrics, /snapshot,
	// /run) on this address; empty disables it.
	ObsAddr string
	// ObsWait keeps the observability endpoint serving this long after the
	// run completes, so final state can still be scraped.
	ObsWait time.Duration
	// Listen serves an agentd control socket on this address (cmd/agentd);
	// empty disables serving. Mutually exclusive with Agents — a process
	// is either an agent or a driver.
	Listen string
	// Agents is a comma-separated list of agentd endpoints; when set,
	// simulations decide through a coord.Remote fleet instead of
	// in-process, every decision crossing a socket.
	Agents string
	// ModelPush pushes the driver's policy checkpoint to every connected
	// agent whose model hash differs (requires Agents). Without it a
	// heterogeneous fleet is refused at connect time.
	ModelPush bool

	name string
}

// Register installs the shared flags on fs and returns the backing
// struct. Call before fs.Parse.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{name: fs.Name()}
	fs.StringVar(&f.EpisodeLog, "episode-log", "", "write per-episode training records to this JSONL file")
	fs.Int64Var(&f.EpisodeLogMaxBytes, "episode-log-max-bytes", 0, "rotate the episode log when it exceeds this size (0: never)")
	fs.StringVar(&f.FlowTrace, "flow-trace", "", "write per-flow trace events to this JSONL file")
	fs.StringVar(&f.MetricsOut, "metrics-out", "", "write the metrics summary as JSON to this file")
	fs.StringVar(&f.Faults, "faults", "", "fault-injection spec: profile[:key=val,...] (node-outage, link-outage, link-cascade, surge, instance-kill; see EXPERIMENTS.md)")
	fs.IntVar(&f.Jobs, "jobs", 0, "bound parallelism: GOMAXPROCS and the experiment worker pool (0: all CPUs); output is identical for any value")
	fs.IntVar(&f.Batch, "batch", 0, "batched decision resolution: max flows per inference call for same-(node,time) decisions (0 or 1: sequential)")
	fs.IntVar(&f.Shards, "shards", 0, "sharded multi-core event loop: number of node-region shards (0 or 1: sequential engine; >1 requires a shardable coordinator)")
	fs.StringVar(&f.GridLog, "grid-log", "", "write per-cell experiment grid records to this JSONL file")
	fs.StringVar(&f.ObsAddr, "obs-addr", "", "serve the live observability endpoint (/metrics, /snapshot, /run) on this address (e.g. localhost:9090, or :0 for a free port)")
	fs.DurationVar(&f.ObsWait, "obs-wait", 0, "keep the observability endpoint serving this long after the run completes (requires -obs-addr)")
	fs.StringVar(&f.Listen, "listen", "", "serve an agent daemon control socket on this address (e.g. 127.0.0.1:7501, or :0 for a free port)")
	fs.StringVar(&f.Agents, "agents", "", "comma-separated agentd endpoints; decisions cross the socket to this fleet instead of running in-process")
	fs.BoolVar(&f.ModelPush, "model-push", false, "push the local policy checkpoint to agents running a different model (requires -agents)")
	f.Prof.RegisterFlags(fs)
	return f
}

// Runtime is the resolved shared configuration: opened sinks, a started
// profiler, and the parsed fault spec. Always Close it (defer is fine;
// Close is idempotent).
type Runtime struct {
	flags       *Flags
	faults      chaos.Spec
	episodeSink *telemetry.Sink
	traceSink   *telemetry.Sink
	gridSink    *telemetry.Sink
	reg         *telemetry.Registry
	obs         *telemetry.ObsServer
	collector   *flowtrace.Collector
	closed      bool
}

// Apply validates and resolves the parsed flags: the fault spec is
// parsed, sinks are opened, and the profiler is started (announcing the
// pprof endpoint on stderr when one was requested). On error nothing is
// left running.
func (f *Flags) Apply() (*Runtime, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	faults, err := chaos.ParseSpec(f.Faults)
	if err != nil {
		return nil, err
	}
	if f.Jobs > 0 {
		runtime.GOMAXPROCS(f.Jobs)
	}
	rt := &Runtime{flags: f, faults: faults, reg: telemetry.NewRegistry()}
	if f.EpisodeLog != "" {
		var opts []telemetry.SinkOption
		if f.EpisodeLogMaxBytes > 0 {
			opts = append(opts, telemetry.WithMaxBytes(f.EpisodeLogMaxBytes))
		}
		if rt.episodeSink, err = telemetry.NewSink(f.EpisodeLog, opts...); err != nil {
			return nil, err
		}
	}
	if f.FlowTrace != "" {
		if rt.traceSink, err = telemetry.NewSink(f.FlowTrace); err != nil {
			rt.Close()
			return nil, err
		}
	}
	if f.GridLog != "" {
		if rt.gridSink, err = telemetry.NewSink(f.GridLog); err != nil {
			rt.Close()
			return nil, err
		}
	}
	if err := f.Prof.Start(); err != nil {
		rt.Close()
		return nil, err
	}
	if addr := f.Prof.Addr(); addr != "" {
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}
	if f.ObsAddr != "" {
		// f.name is the FlagSet name — os.Args[0] for flag.CommandLine —
		// so strip the path for the /run binary field.
		rt.obs = telemetry.NewObsServer(filepath.Base(f.name), rt.reg)
		if err := rt.obs.Start(f.ObsAddr); err != nil {
			rt.obs = nil
			rt.Close()
			return nil, err
		}
		// The live endpoint also gets per-flow phase histograms: with a
		// collector installed, Tracer() is non-nil even without -flow-trace,
		// so simulations emit trace events for it to fold into the registry.
		rt.collector = flowtrace.NewCollector(rt.reg)
		// And ring-buffered metric history, so transient behavior (chaos
		// recovery dips, reconnect bursts) shows up as curves on
		// /timeseries instead of being averaged away by the final scrape.
		rt.obs.EnableHistory(0, 0)
		fmt.Fprintf(os.Stderr, "observability listening on http://%s/ (/metrics /snapshot /run /timeseries)\n", rt.obs.Addr())
	}
	return rt, nil
}

// Validate is the single consistency check over the shared flags; Apply
// runs it before resolving anything, so no sink or server is opened for
// an inconsistent combination. It is exposed separately so binaries with
// extra constraints can re-check after adjusting fields programmatically.
func (f *Flags) Validate() error {
	if f.Jobs < 0 {
		return fmt.Errorf("clicfg: -jobs must be >= 0, got %d", f.Jobs)
	}
	if f.Batch < 0 {
		return fmt.Errorf("clicfg: -batch must be >= 0, got %d", f.Batch)
	}
	if f.Shards < 0 {
		return fmt.Errorf("clicfg: -shards must be >= 0, got %d", f.Shards)
	}
	if f.Shards > 1 && f.Jobs == 1 {
		return fmt.Errorf("clicfg: -shards %d cannot run on one CPU; raise -jobs or leave it 0 (all CPUs)", f.Shards)
	}
	if f.ObsWait != 0 && f.ObsAddr == "" {
		return fmt.Errorf("clicfg: -obs-wait requires -obs-addr")
	}
	if f.ObsWait < 0 {
		return fmt.Errorf("clicfg: -obs-wait must be >= 0, got %s", f.ObsWait)
	}
	if f.Listen != "" && f.Agents != "" {
		return fmt.Errorf("clicfg: -listen and -agents are mutually exclusive (a process serves decisions or drives a fleet, not both)")
	}
	if f.ModelPush && f.Agents == "" {
		return fmt.Errorf("clicfg: -model-push requires -agents (there is no fleet to push to)")
	}
	if f.Agents != "" && f.Shards > 1 {
		return fmt.Errorf("clicfg: -agents is incompatible with -shards %d (remote decisions are not shardable)", f.Shards)
	}
	for _, ep := range strings.Split(f.Agents, ",") {
		if f.Agents != "" && strings.TrimSpace(ep) == "" {
			return fmt.Errorf("clicfg: -agents %q has an empty endpoint", f.Agents)
		}
	}
	return nil
}

// AgentEndpoints returns the parsed -agents list (nil when unset).
func (f *Flags) AgentEndpoints() []string {
	if f.Agents == "" {
		return nil
	}
	eps := strings.Split(f.Agents, ",")
	for i := range eps {
		eps[i] = strings.TrimSpace(eps[i])
	}
	return eps
}

// ValidateShards rejects -shards > 1 for coordinators without the
// ShardableCoordinator capability, turning a mid-run simnet error into
// an upfront flag error naming the algorithm. Call it once the
// coordinator is constructed.
func (f *Flags) ValidateShards(c simnet.Coordinator) error {
	if f.Shards <= 1 {
		return nil
	}
	if simnet.Capabilities(c).Shard == nil {
		return fmt.Errorf("clicfg: -shards %d is incompatible with coordinator %q (no ForShard capability; deterministic sharding is undefined for it)", f.Shards, c.Name())
	}
	return nil
}

// FaultSpec returns the parsed -faults spec (zero value when disabled).
func (rt *Runtime) FaultSpec() chaos.Spec { return rt.faults }

// RunOptions is the single flag→options mapping: it builds the
// eval.RunOptions a simulation run should use under these flags — the
// tracer (flow trace + live collector), batched decisions, sharding, and
// the per-shard progress gauges. Binaries layer run-specific fields
// (Listener, agent fleets) on top of the returned value instead of
// re-deriving the shared ones.
func (rt *Runtime) RunOptions() eval.RunOptions {
	return eval.RunOptions{
		Tracer:        rt.Tracer(),
		MaxBatch:      rt.Batch(),
		Shards:        rt.Shards(),
		ShardObserver: rt.ShardObserver(),
	}
}

// DecideRTT returns the decision round-trip histogram
// ("rpc_decide_rtt_us", microseconds) on the runtime's registry — wire
// it to coord.RemoteOptions.ObserveRTT so remote runs expose decision
// latency on /metrics.
func (rt *Runtime) DecideRTT() *telemetry.Histogram {
	return rt.reg.Histogram("rpc_decide_rtt_us")
}

// MetricsOut returns the -metrics-out path ("" when unset).
func (rt *Runtime) MetricsOut() string { return rt.flags.MetricsOut }

// Tracer returns a simnet tracer feeding the -flow-trace sink and the
// live flow.phase.* collector (when -obs-addr is on), or nil when both
// are off — safe to assign to Config.Tracer directly.
func (rt *Runtime) Tracer() simnet.FlowTracer {
	var tracers []simnet.FlowTracer
	if rt.traceSink != nil {
		tracers = append(tracers, simnet.TracerFunc(func(e simnet.TraceEvent) {
			if err := rt.traceSink.Emit(e); err != nil {
				fmt.Fprintf(os.Stderr, "%s: flow trace: %v\n", rt.flags.name, err)
			}
		}))
	}
	if rt.collector != nil {
		tracers = append(tracers, rt.collector)
	}
	return flowtrace.Tee(tracers...)
}

// Registry returns the runtime's metrics registry — the one the
// observability endpoint scrapes. Always non-nil; binaries register
// their counters, gauges, and histograms here so a run is inspectable
// live instead of only at exit.
func (rt *Runtime) Registry() *telemetry.Registry { return rt.reg }

// ObsEnabled reports whether the observability endpoint is serving.
func (rt *Runtime) ObsEnabled() bool { return rt.obs != nil }

// ObsAddr returns the observability endpoint's bound address ("" when
// disabled) — with "-obs-addr :0" this is where the free port landed.
func (rt *Runtime) ObsAddr() string {
	if rt.obs == nil {
		return ""
	}
	return rt.obs.Addr()
}

// MountObs attaches an additional handler subtree to the observability
// endpoint's mux (e.g. the coordinator's /fleet health view, or the
// experiment controller's /runs API); no-op when the endpoint is off.
// pattern uses net/http ServeMux syntax.
func (rt *Runtime) MountObs(pattern string, h http.Handler) {
	if rt.obs != nil {
		rt.obs.Mount(pattern, h)
	}
}

// SetObsInfo publishes one free-form key/value pair on the /run endpoint
// (algorithm, topology, experiment name, ...); no-op when the endpoint
// is off.
func (rt *Runtime) SetObsInfo(key, value string) {
	if rt.obs != nil {
		rt.obs.SetInfo(key, value)
	}
}

// OnEpisode is the shared per-episode training hook: it writes the
// record to the -episode-log sink, folds phase wall times into the
// registry (train.episodes, train.rollout_ms, train.update_ms), and
// feeds the /run training section. Safe for concurrent use — training
// seeds run in parallel. Install it unconditionally; every path is a
// cheap no-op when its output is disabled.
func (rt *Runtime) OnEpisode(rec rl.EpisodeRecord) {
	rt.EmitEpisode(rec)
	rt.reg.Counter("train.episodes").Inc()
	rt.reg.Histogram("train.rollout_ms").Observe(rec.RolloutMS)
	rt.reg.Histogram("train.update_ms").Observe(rec.UpdateMS)
	if rt.obs != nil {
		rt.obs.ObserveEpisode(telemetry.EpisodeUpdate{
			Seed:       rec.Seed,
			Episode:    rec.Episode,
			Score:      rec.Score,
			MeanReturn: rec.MeanReturn,
			Entropy:    rec.Entropy,
			LR:         rec.LR,
		})
	}
}

// EmitEpisode writes one record to the -episode-log sink; it is a no-op
// when the log is off, so callers can install it unconditionally.
func (rt *Runtime) EmitEpisode(rec interface{}) {
	if rt.episodeSink == nil {
		return
	}
	if err := rt.episodeSink.Emit(rec); err != nil {
		fmt.Fprintf(os.Stderr, "%s: episode log: %v\n", rt.flags.name, err)
	}
}

// EpisodeLogEnabled reports whether -episode-log was set.
func (rt *Runtime) EpisodeLogEnabled() bool { return rt.episodeSink != nil }

// Jobs returns the -jobs value (0: all CPUs).
func (rt *Runtime) Jobs() int { return rt.flags.Jobs }

// Batch returns the -batch value (0 or 1: sequential decisions).
func (rt *Runtime) Batch() int { return rt.flags.Batch }

// Shards returns the -shards value (0 or 1: sequential engine).
func (rt *Runtime) Shards() int { return rt.flags.Shards }

// ShardObserver returns an observer publishing per-shard progress gauges
// (shard.<i>.epoch, shard.<i>.heap_depth, shard.<i>.handoffs) to the
// runtime's registry — assign it to simnet.Config.ShardObserver (or
// eval.RunOptions.ShardObserver) on sharded runs. The observer is safe
// to install unconditionally: sharded runs invoke it between epochs,
// single-shard runs never do.
func (rt *Runtime) ShardObserver() simnet.ShardObserver {
	return shardGauges{reg: rt.reg}
}

// shardGauges folds shard epoch reports into registry gauges.
type shardGauges struct {
	reg *telemetry.Registry
}

// OnShardEpoch implements simnet.ShardObserver.
func (g shardGauges) OnShardEpoch(shard, epoch, heapDepth, handoffs int) {
	prefix := fmt.Sprintf("shard.%d.", shard)
	g.reg.Gauge(prefix + "epoch").Set(float64(epoch))
	g.reg.Gauge(prefix + "heap_depth").Set(float64(heapDepth))
	g.reg.Gauge(prefix + "handoffs").Set(float64(handoffs))
}

// GridLogEnabled reports whether -grid-log was set.
func (rt *Runtime) GridLogEnabled() bool { return rt.gridSink != nil }

// EmitGridCell writes one record to the -grid-log sink; it is a no-op
// when the log is off, so callers can install it unconditionally.
func (rt *Runtime) EmitGridCell(rec interface{}) {
	if rt.gridSink == nil {
		return
	}
	if err := rt.gridSink.Emit(rec); err != nil {
		fmt.Fprintf(os.Stderr, "%s: grid log: %v\n", rt.flags.name, err)
	}
}

// Close flushes the sinks, stops the profiler, and reports the written
// files on stderr. Safe to call twice (e.g. explicitly after checking
// the error, with a defer as backstop).
func (rt *Runtime) Close() error {
	if rt.closed {
		return nil
	}
	rt.closed = true
	var first error
	closeSink := func(s *telemetry.Sink, path, what string) {
		if s == nil {
			return
		}
		if err := s.Close(); err != nil && first == nil {
			first = err
			return
		}
		fmt.Fprintf(os.Stderr, "wrote %s to %s\n", what, path)
	}
	closeSink(rt.episodeSink, rt.flags.EpisodeLog, "episode log")
	closeSink(rt.traceSink, rt.flags.FlowTrace, "flow trace")
	closeSink(rt.gridSink, rt.flags.GridLog, "grid log")
	if rt.obs != nil {
		// Hold the endpoint open so the run's final state can still be
		// scraped (make obs-smoke relies on this window).
		if rt.flags.ObsWait > 0 {
			fmt.Fprintf(os.Stderr, "observability: serving final state on http://%s/ for %s\n", rt.obs.Addr(), rt.flags.ObsWait)
			time.Sleep(rt.flags.ObsWait)
		}
		if err := rt.obs.Close(); err != nil && first == nil {
			first = err
		}
		rt.obs = nil
	}
	if err := rt.flags.Prof.Stop(); err != nil && first == nil {
		first = err
	}
	return first
}
