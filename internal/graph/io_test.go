package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleTopology = `
# three-node triangle
topology demo
node a 1.0 2.0 1.5
node b 3.0 4.0
node c 5.0 6.0 0.5
link a b 2.5 4
link b c 1.0
link a c 3.0 2
`

func TestParse(t *testing.T) {
	g, err := Parse(strings.NewReader(sampleTopology))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "demo" {
		t.Errorf("name = %q, want demo", g.Name())
	}
	if g.NumNodes() != 3 || g.NumLinks() != 3 {
		t.Fatalf("nodes/links = %d/%d, want 3/3", g.NumNodes(), g.NumLinks())
	}
	if g.Node(0).Name != "a" || g.Node(0).Capacity != 1.5 {
		t.Errorf("node a = %+v", g.Node(0))
	}
	if g.Node(1).Capacity != 0 {
		t.Errorf("node b capacity = %f, want 0 (default)", g.Node(1).Capacity)
	}
	if g.Link(0).Delay != 2.5 || g.Link(0).Capacity != 4 {
		t.Errorf("link a-b = %+v", g.Link(0))
	}
	if g.Link(1).Capacity != 1 {
		t.Errorf("link b-c capacity = %f, want 1 (default)", g.Link(1).Capacity)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frob a b",
		"bad node arity":    "node a 1",
		"bad lat":           "node a x 2",
		"duplicate node":    "node a 1 2\nnode a 3 4",
		"negative node cap": "node a 1 2 -3",
		"unknown endpoint":  "node a 1 2\nlink a b 1",
		"bad delay":         "node a 1 2\nnode b 3 4\nlink a b x",
		"self loop":         "node a 1 2\nlink a a 1",
		"empty":             "# nothing",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(in)); err == nil {
				t.Errorf("Parse accepted %q", in)
			}
		})
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	orig := BTEurope() // synthetic names n0..n23 are format-safe
	for v := 0; v < orig.NumNodes(); v++ {
		orig.SetNodeCapacity(NodeID(v), float64(v)+0.5)
	}
	for l := 0; l < orig.NumLinks(); l++ {
		orig.SetLinkCapacity(l, float64(l)+1)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse(Write(g)): %v\noutput:\n%s", err, buf.String())
	}
	if got.NumNodes() != orig.NumNodes() || got.NumLinks() != orig.NumLinks() {
		t.Fatalf("round trip changed size: %d/%d vs %d/%d",
			got.NumNodes(), got.NumLinks(), orig.NumNodes(), orig.NumLinks())
	}
	for v := 0; v < orig.NumNodes(); v++ {
		a, b := orig.Node(NodeID(v)), got.Node(NodeID(v))
		if a.Capacity != b.Capacity || a.Lat != b.Lat || a.Lon != b.Lon {
			t.Errorf("node %d changed: %+v vs %+v", v, a, b)
		}
	}
	for l := 0; l < orig.NumLinks(); l++ {
		a, b := orig.Link(l), got.Link(l)
		if a.A != b.A || a.B != b.B || a.Delay != b.Delay || a.Capacity != b.Capacity {
			t.Errorf("link %d changed: %+v vs %+v", l, a, b)
		}
	}
}

func TestWriteSanitizesWhitespaceNames(t *testing.T) {
	g := New("spacey")
	g.AddNode("has space", 0, 0)
	g.AddNode("plain", 0, 1)
	if err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "node has_space") {
		t.Errorf("name not sanitized:\n%s", buf.String())
	}
	if _, err := Parse(&buf); err != nil {
		t.Errorf("sanitized output does not re-parse: %v", err)
	}
}

// TestWriteParseRoundTripAbileneNames: names with no whitespace survive.
func TestWriteUsesFallbackNames(t *testing.T) {
	g := New("")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 1)
	if err := g.AddLink(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "node n0") || !strings.Contains(buf.String(), "link n0 n1") {
		t.Errorf("fallback names missing:\n%s", buf.String())
	}
	if _, err := Parse(&buf); err != nil {
		t.Errorf("fallback output does not re-parse: %v", err)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Abilene()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"Abilene\"", "Sunnyvale", "--", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
