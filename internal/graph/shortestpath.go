package graph

import (
	"container/heap"
	"math"
)

// APSP holds all-pairs shortest path delays and next hops, precomputed
// once per topology (the paper assumes fixed topology and link delays, so
// shortest path delays d_{v,v',v_eg} are available in constant time at
// runtime, Sec. IV-B1d).
type APSP struct {
	g       *Graph
	dist    [][]float64 // dist[u][v]: shortest path delay u -> v
	nextHop [][]NodeID  // nextHop[u][v]: first hop on a shortest path u -> v
}

// Infinite reports whether d represents "unreachable".
func Infinite(d float64) bool { return math.IsInf(d, 1) }

// NewAPSP computes all-pairs shortest paths over link delays using
// Dijkstra's algorithm from every source. Complexity O(|V| |L| log |V|).
func NewAPSP(g *Graph) *APSP {
	return NewAPSPMasked(g, nil)
}

// NewAPSPMasked computes all-pairs shortest paths over the subgraph of
// links for which live returns true (nil means all links are live).
// Fault injection uses it to re-derive routing after a topology change:
// dead links and all links of dead nodes are excluded, so next hops and
// delays reflect the surviving network.
func NewAPSPMasked(g *Graph, live func(link int) bool) *APSP {
	n := g.NumNodes()
	a := &APSP{
		g:       g,
		dist:    make([][]float64, n),
		nextHop: make([][]NodeID, n),
	}
	for src := 0; src < n; src++ {
		a.dist[src], a.nextHop[src] = dijkstra(g, NodeID(src), live)
	}
	return a
}

// Dist returns the shortest path delay from u to v (+Inf if unreachable).
func (a *APSP) Dist(u, v NodeID) float64 { return a.dist[u][v] }

// NextHop returns the first hop on a shortest path from u to v, or None
// if v is unreachable or u == v.
func (a *APSP) NextHop(u, v NodeID) NodeID { return a.nextHop[u][v] }

// DistVia returns the delay of the path u -> v' -> ... -> dst where the
// first hop is forced to neighbor v' (reached over link l) and the rest
// follows a shortest path: d_l + dist(v', dst). This is the quantity
// d_{v,v',v_eg} in the paper's "delays to egress" observation.
func (a *APSP) DistVia(u NodeID, ad Adjacency, dst NodeID) float64 {
	return a.g.Link(ad.Link).Delay + a.dist[ad.Neighbor][dst]
}

// Diameter returns the network diameter D_G in terms of path delay, i.e.
// the maximum finite shortest path delay over all node pairs. Shaped link
// penalties are normalized by it.
func (a *APSP) Diameter() float64 {
	max := 0.0
	for u := range a.dist {
		for v, d := range a.dist[u] {
			if u != v && !Infinite(d) && d > max {
				max = d
			}
		}
	}
	return max
}

// Path returns the node sequence of a shortest path from u to v,
// including both endpoints, or nil if unreachable.
func (a *APSP) Path(u, v NodeID) []NodeID {
	if u == v {
		return []NodeID{u}
	}
	if a.nextHop[u][v] == None {
		return nil
	}
	path := []NodeID{u}
	for cur := u; cur != v; {
		cur = a.nextHop[cur][v]
		path = append(path, cur)
	}
	return path
}

// dijkstra returns shortest path delays from src and the first hop toward
// every destination, considering only links for which live returns true
// (nil: all links).
func dijkstra(g *Graph, src NodeID, live func(link int) bool) (dist []float64, next []NodeID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	next = make([]NodeID, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		next[i] = None
		prev[i] = None
	}
	dist[src] = 0

	pq := &nodeQueue{items: []nodeDist{{src, 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeDist)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, ad := range g.Neighbors(it.node) {
			if live != nil && !live(ad.Link) {
				continue
			}
			nd := it.dist + g.Link(ad.Link).Delay
			if nd < dist[ad.Neighbor] {
				dist[ad.Neighbor] = nd
				prev[ad.Neighbor] = it.node
				heap.Push(pq, nodeDist{ad.Neighbor, nd})
			}
		}
	}
	// Derive first hops by walking predecessors back to src.
	for v := NodeID(0); int(v) < n; v++ {
		if v == src || prev[v] == None {
			continue
		}
		hop := v
		for prev[hop] != src {
			hop = prev[hop]
		}
		next[v] = hop
	}
	return dist, next
}

type nodeDist struct {
	node NodeID
	dist float64
}

type nodeQueue struct{ items []nodeDist }

func (q *nodeQueue) Len() int           { return len(q.items) }
func (q *nodeQueue) Less(i, j int) bool { return q.items[i].dist < q.items[j].dist }
func (q *nodeQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *nodeQueue) Push(x any)         { q.items = append(q.items, x.(nodeDist)) }
func (q *nodeQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}
