package graph

import (
	"math"
	"testing"
)

// TestTableI verifies the paper's Table I statistics exactly for all four
// evaluation topologies.
func TestTableI(t *testing.T) {
	tests := []struct {
		name           string
		nodes, edges   int
		minDeg, maxDeg int
		avgDeg         float64
	}{
		{"Abilene", 11, 14, 2, 3, 2.55},
		{"BT Europe", 24, 37, 1, 13, 3.08},
		{"China Telecom", 42, 66, 1, 20, 3.14},
		{"Interroute", 110, 158, 1, 7, 2.87},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := ByName(tt.name)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumNodes() != tt.nodes {
				t.Errorf("nodes = %d, want %d", g.NumNodes(), tt.nodes)
			}
			if g.NumLinks() != tt.edges {
				t.Errorf("edges = %d, want %d", g.NumLinks(), tt.edges)
			}
			if g.MinDegree() != tt.minDeg {
				t.Errorf("min degree = %d, want %d", g.MinDegree(), tt.minDeg)
			}
			if g.MaxDegree() != tt.maxDeg {
				t.Errorf("max degree = %d, want %d", g.MaxDegree(), tt.maxDeg)
			}
			if math.Abs(g.AvgDegree()-tt.avgDeg) > 0.005 {
				t.Errorf("avg degree = %f, want %f", g.AvgDegree(), tt.avgDeg)
			}
			if !g.Connected() {
				t.Error("not connected")
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Atlantis"); err == nil {
		t.Error("ByName accepted unknown topology")
	}
}

func TestAbileneCalibration(t *testing.T) {
	g := Abilene()
	a := NewAPSP(g)
	// Calibrated: shortest path delay from v1 (Sunnyvale) to v8 (NY) is 6 ms.
	if d := a.Dist(0, AbileneEgress); math.Abs(d-6.0) > 1e-9 {
		t.Errorf("SP delay v1->v8 = %f, want 6.0", d)
	}
	// All ingresses v1..v5 must reach the egress well within the default
	// deadline headroom (path delay < 10 ms).
	for v := NodeID(0); v < 5; v++ {
		if d := a.Dist(v, AbileneEgress); d <= 0 || d >= 10 {
			t.Errorf("SP delay v%d->v8 = %f, want (0,10)", v+1, d)
		}
	}
}

// TestAbileneWestCoastOverlap checks the structural property the paper's
// Fig. 6 discussion relies on: shortest paths from v1-v3 to the egress
// share links, while v4 and v5 use disjoint paths.
func TestAbileneWestCoastOverlap(t *testing.T) {
	g := Abilene()
	a := NewAPSP(g)
	pathLinks := func(src NodeID) map[[2]NodeID]bool {
		p := a.Path(src, AbileneEgress)
		set := make(map[[2]NodeID]bool)
		for i := 0; i+1 < len(p); i++ {
			x, y := p[i], p[i+1]
			if x > y {
				x, y = y, x
			}
			set[[2]NodeID{x, y}] = true
		}
		return set
	}
	overlap := func(a, b map[[2]NodeID]bool) int {
		n := 0
		for k := range a {
			if b[k] {
				n++
			}
		}
		return n
	}
	p1, p2, p3 := pathLinks(0), pathLinks(1), pathLinks(2)
	if overlap(p1, p3) == 0 {
		t.Error("v1 and v3 shortest paths share no links; expected overlap")
	}
	if overlap(p1, p2)+overlap(p2, p3) == 0 {
		t.Error("v2 shares no links with v1 or v3; expected west coast overlap")
	}
	p4, p5 := pathLinks(3), pathLinks(4)
	if o := overlap(p4, p1); o > 1 {
		t.Errorf("v4 path overlaps v1 path on %d links; expected mostly disjoint", o)
	}
	if o := overlap(p5, p1); o > 1 {
		t.Errorf("v5 path overlaps v1 path on %d links; expected mostly disjoint", o)
	}
}

func TestSynthesizedTopologiesDeterministic(t *testing.T) {
	for _, name := range []string{"BT Europe", "China Telecom", "Interroute"} {
		a, _ := ByName(name)
		b, _ := ByName(name)
		if a.NumLinks() != b.NumLinks() {
			t.Fatalf("%s: non-deterministic link count", name)
		}
		for i := 0; i < a.NumLinks(); i++ {
			la, lb := a.Link(i), b.Link(i)
			if la.A != lb.A || la.B != lb.B || la.Delay != lb.Delay {
				t.Fatalf("%s: link %d differs between builds: %+v vs %+v", name, i, la, lb)
			}
		}
	}
}

func TestTopologiesHavePositiveDelays(t *testing.T) {
	for _, g := range Topologies() {
		for i, l := range g.Links() {
			if l.Delay <= 0 {
				t.Errorf("%s: link %d has delay %f, want > 0", g.Name(), i, l.Delay)
			}
		}
	}
}

func TestTableIRows(t *testing.T) {
	rows := TableIRows(Topologies())
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	// Sorted by node count: Abilene, BT Europe, China Telecom, Interroute.
	wantOrder := []string{"Abilene", "BT Europe", "China Telecom", "Interroute"}
	for i, w := range wantOrder {
		if rows[i].Name != w {
			t.Errorf("row %d = %s, want %s", i, rows[i].Name, w)
		}
	}
}
