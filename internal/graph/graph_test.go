package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func line(t *testing.T, n int) *Graph {
	t.Helper()
	g := New("line")
	for i := 0; i < n; i++ {
		g.AddNode("", 0, float64(i))
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddLink(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatalf("AddLink: %v", err)
		}
	}
	return g
}

func TestAddLinkRejectsMalformed(t *testing.T) {
	g := line(t, 3)
	tests := []struct {
		name  string
		a, b  NodeID
		delay float64
	}{
		{"self-loop", 1, 1, 1},
		{"unknown node", 0, 99, 1},
		{"negative node", -1, 0, 1},
		{"duplicate", 0, 1, 1},
		{"negative delay", 0, 2, -1},
		{"nan delay", 0, 2, math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddLink(tt.a, tt.b, tt.delay); err == nil {
				t.Errorf("AddLink(%d,%d,%f) succeeded, want error", tt.a, tt.b, tt.delay)
			}
		})
	}
}

func TestDuplicateLinkRejectedBothDirections(t *testing.T) {
	g := line(t, 2)
	if err := g.AddLink(1, 0, 1); err == nil {
		t.Error("reversed duplicate link accepted")
	}
}

func TestDegreeAccounting(t *testing.T) {
	g := line(t, 4)
	if got := g.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d, want 1", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %d, want 2", got)
	}
	if got := g.MinDegree(); got != 1 {
		t.Errorf("MinDegree = %d, want 1", got)
	}
	if got, want := g.AvgDegree(), 1.5; got != want {
		t.Errorf("AvgDegree = %f, want %f", got, want)
	}
}

func TestNeighborOrderStable(t *testing.T) {
	g := New("star")
	c := g.AddNode("center", 0, 0)
	var want []NodeID
	for i := 0; i < 5; i++ {
		v := g.AddNode("", 0, 0)
		want = append(want, v)
		if err := g.AddLink(c, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i, ad := range g.Neighbors(c) {
		if ad.Neighbor != want[i] {
			t.Fatalf("neighbor %d = %d, want %d (insertion order must be stable)", i, ad.Neighbor, want[i])
		}
	}
}

func TestConnected(t *testing.T) {
	g := line(t, 3)
	if !g.Connected() {
		t.Error("line graph reported disconnected")
	}
	g.AddNode("island", 0, 0)
	if g.Connected() {
		t.Error("graph with isolated node reported connected")
	}
}

func TestValidate(t *testing.T) {
	g := line(t, 3)
	if err := g.Validate(); err == nil {
		t.Error("Validate passed with zero link capacities")
	}
	for i := 0; i < g.NumLinks(); i++ {
		g.SetLinkCapacity(i, 1)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := New("empty").Validate(); err == nil {
		t.Error("Validate passed on empty graph")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := line(t, 3)
	g.SetNodeCapacity(0, 7)
	c := g.Clone()
	c.SetNodeCapacity(0, 99)
	c.SetLinkCapacity(0, 5)
	if g.Node(0).Capacity != 7 {
		t.Error("Clone shares node storage with original")
	}
	if g.Link(0).Capacity != 0 {
		t.Error("Clone shares link storage with original")
	}
	c.AddNode("extra", 0, 0)
	if g.NumNodes() != 3 {
		t.Error("Clone shares node slice with original")
	}
}

func TestLinkOther(t *testing.T) {
	l := Link{A: 2, B: 5}
	if got := l.Other(2); got != 5 {
		t.Errorf("Other(2) = %d, want 5", got)
	}
	if got := l.Other(5); got != 2 {
		t.Errorf("Other(5) = %d, want 2", got)
	}
}

func TestHaversine(t *testing.T) {
	// New York to Los Angeles is roughly 3940 km.
	d := HaversineKm(40.71, -74.01, 34.05, -118.24)
	if d < 3900 || d > 4000 {
		t.Errorf("HaversineKm(NY, LA) = %f, want ~3940", d)
	}
	if d := HaversineKm(10, 20, 10, 20); d != 0 {
		t.Errorf("zero distance = %f", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		lat1, lat2 = math.Mod(lat1, 90), math.Mod(lat2, 90)
		lon1, lon2 = math.Mod(lon1, 180), math.Mod(lon2, 180)
		a := HaversineKm(lat1, lon1, lat2, lon2)
		b := HaversineKm(lat2, lon2, lat1, lon1)
		return math.Abs(a-b) < 1e-9 && a >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxCapacityHelpers(t *testing.T) {
	g := line(t, 3)
	g.SetNodeCapacity(0, 1)
	g.SetNodeCapacity(1, 3)
	g.SetNodeCapacity(2, 2)
	if got := g.MaxNodeCapacity(); got != 3 {
		t.Errorf("MaxNodeCapacity = %f, want 3", got)
	}
	g.SetLinkCapacity(0, 4)
	g.SetLinkCapacity(1, 9)
	if got := g.MaxLinkCapacityAt(1); got != 9 {
		t.Errorf("MaxLinkCapacityAt(1) = %f, want 9", got)
	}
	if got := g.MaxLinkCapacityAt(0); got != 4 {
		t.Errorf("MaxLinkCapacityAt(0) = %f, want 4", got)
	}
}

// randomConnectedGraph builds a random connected graph for property tests.
func randomConnectedGraph(rng *rand.Rand, n, extra int) *Graph {
	g := New("random")
	for i := 0; i < n; i++ {
		g.AddNode("", rng.Float64()*50, rng.Float64()*50)
	}
	for i := 1; i < n; i++ {
		_ = g.AddLink(NodeID(i), NodeID(rng.Intn(i)), rng.Float64()*10)
	}
	for e := 0; e < extra; e++ {
		_ = g.AddLink(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), rng.Float64()*10)
	}
	return g
}

func TestDegreeSumTwiceLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := randomConnectedGraph(rng, 2+rng.Intn(30), rng.Intn(20))
		sum := 0
		for v := 0; v < g.NumNodes(); v++ {
			sum += g.Degree(NodeID(v))
		}
		if sum != 2*g.NumLinks() {
			t.Fatalf("degree sum %d != 2*|L| = %d", sum, 2*g.NumLinks())
		}
	}
}
