package graph

import "math"

// PartitionContiguous assigns n nodes to k near-equal contiguous ID
// blocks: node v goes to shard v*k/n. It is the trivial partitioning for
// topologies whose node IDs already encode locality; for arbitrary
// graphs PartitionRegions usually cuts far fewer links.
func PartitionContiguous(n, k int) []int {
	part := make([]int, n)
	if k <= 1 {
		return part
	}
	if k > n {
		k = n
	}
	for v := range part {
		part[v] = v * k / n
	}
	return part
}

// PartitionRegions grows k connected, balanced regions over g and
// returns the node → region assignment. Seeds are spread by greedy
// farthest-point selection on hop distance; the regions then claim one
// node per round-robin turn from their BFS frontier, which keeps sizes
// within one node of each other as long as every region can still grow.
// Nodes unreachable from every seed are distributed round-robin. The
// result is deterministic for a fixed graph and k.
func PartitionRegions(g *Graph, k int) []int {
	n := g.NumNodes()
	part := make([]int, n)
	if k <= 1 {
		return part
	}
	if k > n {
		k = n
	}
	for v := range part {
		part[v] = -1
	}
	queues := make([][]NodeID, k)
	for i, s := range spreadSeeds(g, k) {
		part[s] = i
		queues[i] = append(queues[i], s)
	}
	assigned := k
	// cursor[v] is how far v's adjacency list has been scanned; each node
	// sits in exactly one region's queue, so the total work is O(V+E).
	cursor := make([]int, n)
	for assigned < n {
		progress := false
		for r := 0; r < k && assigned < n; r++ {
			for len(queues[r]) > 0 {
				v := queues[r][0]
				adj := g.Neighbors(v)
				claimed := false
				for cursor[v] < len(adj) {
					w := adj[cursor[v]].Neighbor
					cursor[v]++
					if part[w] == -1 {
						part[w] = r
						queues[r] = append(queues[r], w)
						assigned++
						progress = true
						claimed = true
						break
					}
				}
				if claimed {
					break
				}
				queues[r] = queues[r][1:]
			}
		}
		if !progress {
			// Disconnected remainder: no seed reaches these nodes.
			next := 0
			for v := range part {
				if part[v] == -1 {
					part[v] = next % k
					next++
					assigned++
				}
			}
		}
	}
	return part
}

// spreadSeeds picks k mutually distant nodes by greedy farthest-point
// selection on hop distance, starting from node 0. Ties resolve to the
// lowest node ID; unreachable nodes count as infinitely far, so each
// connected component gets a seed before any component gets two.
func spreadSeeds(g *Graph, k int) []NodeID {
	n := g.NumNodes()
	dist := make([]int, n)
	for v := range dist {
		dist[v] = math.MaxInt
	}
	seeds := make([]NodeID, 0, k)
	next := NodeID(0)
	for len(seeds) < k {
		seeds = append(seeds, next)
		bfsRelax(g, next, dist)
		best, bestD := NodeID(-1), 0
		for v := 0; v < n; v++ {
			if dist[v] > bestD {
				best, bestD = NodeID(v), dist[v]
			}
		}
		if best < 0 {
			break // every node is already a seed (k == n)
		}
		next = best
	}
	return seeds
}

// bfsRelax lowers dist to the hop distance from src where src is closer
// than every previously relaxed source.
func bfsRelax(g *Graph, src NodeID, dist []int) {
	dist[src] = 0
	queue := []NodeID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ad := range g.Neighbors(v) {
			if dist[ad.Neighbor] > dist[v]+1 {
				dist[ad.Neighbor] = dist[v] + 1
				queue = append(queue, ad.Neighbor)
			}
		}
	}
}

// PartitionCut reports the quality of a partition for conservative
// parallel simulation: the number of links whose endpoints fall in
// different parts and the minimum delay over those links (the usable
// lookahead window). minDelay is +Inf for a cut of zero.
func PartitionCut(g *Graph, part []int) (cut int, minDelay float64) {
	minDelay = math.Inf(1)
	for _, l := range g.Links() {
		if part[l.A] == part[l.B] {
			continue
		}
		cut++
		if l.Delay < minDelay {
			minDelay = l.Delay
		}
	}
	return cut, minDelay
}
