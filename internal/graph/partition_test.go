package graph

import (
	"math"
	"reflect"
	"testing"
)

func TestPartitionContiguousBalancedBlocks(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 2}, {11, 4}, {7, 7}, {5, 9}, {6, 1}, {4, 0}} {
		part := PartitionContiguous(tc.n, tc.k)
		if len(part) != tc.n {
			t.Fatalf("n=%d k=%d: got %d assignments", tc.n, tc.k, len(part))
		}
		k := tc.k
		if k > tc.n {
			k = tc.n
		}
		if k < 1 {
			k = 1
		}
		sizes := make([]int, k)
		for v, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("n=%d k=%d: node %d assigned to part %d", tc.n, tc.k, v, p)
			}
			if v > 0 && p < part[v-1] {
				t.Fatalf("n=%d k=%d: assignment not monotone at node %d", tc.n, tc.k, v)
			}
			sizes[p]++
		}
		for p, sz := range sizes {
			if sz == 0 {
				t.Errorf("n=%d k=%d: part %d is empty", tc.n, tc.k, p)
			}
			if min, max := tc.n/k, (tc.n+k-1)/k; sz < min || sz > max {
				t.Errorf("n=%d k=%d: part %d has %d nodes, want %d..%d", tc.n, tc.k, p, sz, min, max)
			}
		}
	}
}

// regionsConnected checks that every part of the assignment induces a
// connected subgraph of g.
func regionsConnected(t *testing.T, g *Graph, part []int, k int) {
	t.Helper()
	for r := 0; r < k; r++ {
		var members []NodeID
		for v, p := range part {
			if p == r {
				members = append(members, NodeID(v))
			}
		}
		if len(members) == 0 {
			t.Errorf("region %d is empty", r)
			continue
		}
		seen := map[NodeID]bool{members[0]: true}
		queue := []NodeID{members[0]}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ad := range g.Neighbors(v) {
				if part[ad.Neighbor] == r && !seen[ad.Neighbor] {
					seen[ad.Neighbor] = true
					queue = append(queue, ad.Neighbor)
				}
			}
		}
		if len(seen) != len(members) {
			t.Errorf("region %d is disconnected: reached %d of %d members", r, len(seen), len(members))
		}
	}
}

func TestPartitionRegionsConnectedBalancedDeterministic(t *testing.T) {
	for _, g := range []*Graph{Abilene(), SyntheticScale(200, 0x5CA1E)} {
		for _, k := range []int{2, 3, 4} {
			part := PartitionRegions(g, k)
			if len(part) != g.NumNodes() {
				t.Fatalf("%s k=%d: got %d assignments", g.Name(), k, len(part))
			}
			regionsConnected(t, g, part, k)
			sizes := make([]int, k)
			for _, p := range part {
				sizes[p]++
			}
			for r, sz := range sizes {
				// The round-robin growth keeps connected graphs within a
				// small imbalance; a degenerate region would starve a
				// shard of work.
				if sz < g.NumNodes()/(2*k) {
					t.Errorf("%s k=%d: region %d has only %d of %d nodes", g.Name(), k, r, sz, g.NumNodes())
				}
			}
			if again := PartitionRegions(g, k); !reflect.DeepEqual(part, again) {
				t.Errorf("%s k=%d: PartitionRegions is not deterministic", g.Name(), k)
			}
		}
	}
}

func TestPartitionRegionsDegenerateK(t *testing.T) {
	g := Abilene()
	if part := PartitionRegions(g, 1); !reflect.DeepEqual(part, make([]int, g.NumNodes())) {
		t.Errorf("k=1 must assign everything to part 0, got %v", part)
	}
	part := PartitionRegions(g, g.NumNodes()+5)
	seen := map[int]bool{}
	for v, p := range part {
		if p < 0 || p >= g.NumNodes() {
			t.Fatalf("k>n: node %d assigned out of range part %d", v, p)
		}
		if seen[p] {
			t.Errorf("k>n: part %d assigned twice", p)
		}
		seen[p] = true
	}
}

func TestPartitionCut(t *testing.T) {
	// 0-1-2 in part 0, 3-4 in part 1; two crossing links with delays 7
	// and 3.
	g := New("cut-test")
	for i := 0; i < 5; i++ {
		g.AddNode("", 0, 0)
	}
	mustLink := func(a, b NodeID, d float64) {
		if err := g.AddLink(a, b, d); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 1, 1)
	mustLink(1, 2, 1)
	mustLink(3, 4, 1)
	mustLink(2, 3, 7)
	mustLink(0, 4, 3)
	part := []int{0, 0, 0, 1, 1}
	cut, minDelay := PartitionCut(g, part)
	if cut != 2 || minDelay != 3 {
		t.Errorf("cut=%d minDelay=%g, want 2 and 3", cut, minDelay)
	}
	allSame := []int{0, 0, 0, 0, 0}
	cut, minDelay = PartitionCut(g, allSame)
	if cut != 0 || !math.IsInf(minDelay, 1) {
		t.Errorf("closed partition: cut=%d minDelay=%g, want 0 and +Inf", cut, minDelay)
	}
}
