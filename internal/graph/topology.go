package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file provides the four real-world topologies of the paper's
// evaluation (Table I, Internet Topology Zoo [9]).
//
// Abilene is reproduced exactly: the real 11-city US research backbone
// with its 14 links and real geographic coordinates. Link delays are
// derived from great-circle distances and calibrated so that the shortest
// path delay from ingress v1 (Sunnyvale) to egress v8 (New York) is 6 ms.
// With the base scenario's 3 x 5 ms component processing this reproduces
// the paper's ~21 ms shortest-path end-to-end delay (Fig. 7).
//
// The Topology Zoo GraphML files for BT Europe, China Telecom, and
// Interroute are not available offline; these three are deterministically
// synthesized to match Table I exactly (node count, edge count, min and
// max degree; the average degree 2|L|/|V| then matches by construction).
// This preserves what the scalability experiments exercise: network size
// and degree skew. See DESIGN.md, substitution 3.

// Paper node roles in the base scenario (Sec. V-A1): ingresses v1..v5,
// egress v8. Node IDs here are zero-based, so v_k has ID k-1.
const (
	// AbileneEgress is v8 (Kansas City) as NodeID.
	AbileneEgress NodeID = 7
)

// Abilene returns the 11-node, 14-link Abilene research network.
// Node order (IDs 0..10 = paper's v1..v11): Sunnyvale, Los Angeles,
// Seattle, Houston, Atlanta, Denver, New York, Kansas City, Chicago,
// Indianapolis, Washington DC. Node roles realize the structure the
// paper's Fig. 6 discussion requires: ingresses v1..v3 are the
// co-located west coast nodes whose shortest paths to the egress v8
// (Kansas City) overlap on the Denver-Kansas City corridor, while
// v4 (Houston, direct link) and v5 (Atlanta, via Indianapolis) are
// farther away with disjoint shortest paths.
func Abilene() *Graph {
	g := New("Abilene")
	cities := []struct {
		name     string
		lat, lon float64
	}{
		{"Sunnyvale", 37.37, -122.04},    // v1
		{"Los Angeles", 34.05, -118.24},  // v2
		{"Seattle", 47.61, -122.33},      // v3
		{"Houston", 29.76, -95.37},       // v4
		{"Atlanta", 33.75, -84.39},       // v5
		{"Denver", 39.74, -104.99},       // v6
		{"New York", 40.71, -74.01},      // v7
		{"Kansas City", 39.10, -94.58},   // v8 (egress)
		{"Chicago", 41.88, -87.63},       // v9
		{"Indianapolis", 39.77, -86.16},  // v10
		{"Washington DC", 38.91, -77.04}, // v11
	}
	for _, c := range cities {
		g.AddNode(c.name, c.lat, c.lon)
	}
	edges := [][2]NodeID{
		{2, 0},  // Seattle - Sunnyvale
		{2, 5},  // Seattle - Denver
		{0, 1},  // Sunnyvale - Los Angeles
		{0, 5},  // Sunnyvale - Denver
		{1, 3},  // Los Angeles - Houston
		{5, 7},  // Denver - Kansas City
		{3, 7},  // Houston - Kansas City
		{7, 9},  // Kansas City - Indianapolis
		{3, 4},  // Houston - Atlanta
		{4, 9},  // Atlanta - Indianapolis
		{4, 10}, // Atlanta - Washington DC
		{9, 8},  // Indianapolis - Chicago
		{8, 6},  // Chicago - New York
		{6, 10}, // New York - Washington DC
	}
	for _, e := range edges {
		if err := g.AddLink(e[0], e[1], 0); err != nil {
			panic(fmt.Sprintf("graph: building Abilene: %v", err)) // static data, cannot fail
		}
	}
	g.DeriveDelaysFromCoordinates(1)
	// Calibrate: shortest path delay v1 (Sunnyvale) -> v8 (Kansas City) = 6 ms.
	apsp := NewAPSP(g)
	g.ScaleDelays(6.0 / apsp.Dist(0, AbileneEgress))
	return g
}

// BTEurope returns a 24-node, 37-link topology matching the Table I
// statistics of the BT Europe network (degree 1/13, avg 3.08).
func BTEurope() *Graph {
	return synthesize("BT Europe", 24, 37, 13, 0xB7E0, box{36, 60, -10, 25}, 15)
}

// ChinaTelecom returns a 42-node, 66-link topology matching the Table I
// statistics of the China Telecom network (degree 1/20, avg 3.14). Its
// single degree-20 hub reproduces the paper's "highly skewed" degree
// distribution that inflates the observation and action space.
func ChinaTelecom() *Graph {
	return synthesize("China Telecom", 42, 66, 20, 0xC41A, box{20, 45, 75, 125}, 18)
}

// Interroute returns a 110-node, 158-link topology matching the Table I
// statistics of the Interroute network (degree 1/7, avg 2.87).
func Interroute() *Graph {
	return synthesize("Interroute", 110, 158, 7, 0x1247, box{35, 60, -10, 30}, 20)
}

// SyntheticScale deterministically generates an n-node synthetic
// topology (n ≥ 12) for scale benchmarks: m ≈ 1.5·n links and a fixed
// maximum degree of 10, so the observation and action space — and
// therefore the policy network shape — stay constant across scales and
// match the paper's 2×256 evaluation network.
func SyntheticScale(n int, seed int64) *Graph {
	if n < 12 {
		panic(fmt.Sprintf("graph: SyntheticScale needs n >= 12, got %d", n))
	}
	return synthesize(fmt.Sprintf("synthetic-%d", n), n, n+n/2, 10, seed, box{25, 50, -125, -65}, 20)
}

// Topologies returns fresh copies of the four evaluation networks in the
// order of Table I.
func Topologies() []*Graph {
	return []*Graph{Abilene(), BTEurope(), ChinaTelecom(), Interroute()}
}

// ByName returns a fresh copy of the named topology ("Abilene",
// "BT Europe", "China Telecom", "Interroute").
func ByName(name string) (*Graph, error) {
	switch name {
	case "Abilene":
		return Abilene(), nil
	case "BT Europe":
		return BTEurope(), nil
	case "China Telecom":
		return ChinaTelecom(), nil
	case "Interroute":
		return Interroute(), nil
	}
	return nil, fmt.Errorf("graph: unknown topology %q", name)
}

type box struct{ latMin, latMax, lonMin, lonMax float64 }

// synthesize deterministically generates a connected topology with
// exactly n nodes, m links, minimum degree 1, and maximum degree maxDeg
// (attained by node 0, the hub). Link delays are derived from random
// geographic coordinates inside the region and scaled so the network
// delay diameter equals diameterMs.
func synthesize(name string, n, m, maxDeg int, seed int64, region box, diameterMs float64) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: %s: %d links cannot connect %d nodes", name, m, n))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(name)
	for i := 0; i < n; i++ {
		lat := region.latMin + rng.Float64()*(region.latMax-region.latMin)
		lon := region.lonMin + rng.Float64()*(region.lonMax-region.lonMin)
		g.AddNode(fmt.Sprintf("n%d", i), lat, lon)
	}

	deg := make([]int, n)
	has := make(map[[2]NodeID]bool, m)
	addEdge := func(a, b NodeID) bool {
		if a == b || deg[a] >= maxDeg || deg[b] >= maxDeg {
			return false
		}
		k := [2]NodeID{a, b}
		if a > b {
			k = [2]NodeID{b, a}
		}
		if has[k] {
			return false
		}
		if err := g.AddLink(a, b, 0); err != nil {
			return false
		}
		has[k] = true
		deg[a]++
		deg[b]++
		return true
	}

	// Spanning tree: attach each node to a random earlier node with spare
	// degree, preferring geographically close parents for realism.
	for i := 1; i < n; i++ {
		best := NodeID(None)
		bestD := 0.0
		ni := g.Node(NodeID(i))
		// Sample a few candidates; pick the closest with spare degree.
		for try := 0; try < 8; try++ {
			cand := NodeID(rng.Intn(i))
			if deg[cand] >= maxDeg-1 { // keep headroom for extra edges
				continue
			}
			nc := g.Node(cand)
			d := HaversineKm(ni.Lat, ni.Lon, nc.Lat, nc.Lon)
			if best == None || d < bestD {
				best, bestD = cand, d
			}
		}
		if best == None { // fall back: any earlier node with spare degree
			for c := 0; c < i; c++ {
				if deg[c] < maxDeg {
					best = NodeID(c)
					break
				}
			}
		}
		addEdge(NodeID(i), best)
	}

	// Reserve one tree leaf (not the hub) to guarantee minimum degree 1.
	leaf := None
	for v := n - 1; v > 0; v-- {
		if deg[v] == 1 {
			leaf = NodeID(v)
			break
		}
	}

	// Bring the hub (node 0) up to exactly maxDeg.
	hub := NodeID(0)
	for deg[hub] < maxDeg {
		// Deterministic scan in shuffled order.
		order := rng.Perm(n)
		added := false
		for _, c := range order {
			v := NodeID(c)
			if v == hub || v == leaf {
				continue
			}
			if addEdge(hub, v) {
				added = true
				break
			}
		}
		if !added {
			panic(fmt.Sprintf("graph: %s: cannot reach hub degree %d", name, maxDeg))
		}
	}

	// Add remaining edges between random non-hub pairs, capping their
	// degree strictly below maxDeg so the hub stays the unique maximum.
	for g.NumLinks() < m {
		a := NodeID(1 + rng.Intn(n-1))
		b := NodeID(1 + rng.Intn(n-1))
		if a == leaf || b == leaf || deg[a] >= maxDeg-1 || deg[b] >= maxDeg-1 {
			continue
		}
		addEdge(a, b)
	}

	g.DeriveDelaysFromCoordinates(1)
	apsp := NewAPSP(g)
	if d := apsp.Diameter(); d > 0 {
		g.ScaleDelays(diameterMs / d)
	}
	return g
}

// TableI returns the topology statistics reported in the paper's Table I
// for a set of graphs, formatted as rows of
// (name, nodes, edges, minDeg, maxDeg, avgDeg).
type TableIRow struct {
	Name           string
	Nodes, Edges   int
	MinDeg, MaxDeg int
	AvgDeg         float64
}

// TableIRows computes Table I statistics for the given topologies.
func TableIRows(gs []*Graph) []TableIRow {
	rows := make([]TableIRow, 0, len(gs))
	for _, g := range gs {
		rows = append(rows, TableIRow{
			Name:   g.Name(),
			Nodes:  g.NumNodes(),
			Edges:  g.NumLinks(),
			MinDeg: g.MinDegree(),
			MaxDeg: g.MaxDegree(),
			AvgDeg: g.AvgDegree(),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Nodes < rows[j].Nodes })
	return rows
}
