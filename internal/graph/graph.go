// Package graph provides the substrate network model used throughout the
// reproduction: an undirected multigraph with node compute capacities,
// link delays and link data-rate capacities, all-pairs shortest paths,
// and the real-world topologies from the paper's evaluation (Table I).
package graph

import (
	"errors"
	"fmt"
	"math"
)

// NodeID identifies a node within one Graph. IDs are dense: 0..NumNodes-1.
type NodeID int

// None is the sentinel for "no node", e.g. an unreachable next hop.
const None NodeID = -1

// Node is a substrate network node with a generic compute capacity.
type Node struct {
	ID       NodeID
	Name     string
	Lat, Lon float64 // geographic position, used to derive link delays
	Capacity float64 // generic compute capacity cap_v >= 0
}

// Link is a bidirectional substrate link. Delay is the propagation delay
// d_l and Capacity the maximum data rate cap_l shared by both directions.
type Link struct {
	A, B     NodeID
	Delay    float64
	Capacity float64
}

// Other returns the endpoint of l that is not v.
func (l Link) Other(v NodeID) NodeID {
	if l.A == v {
		return l.B
	}
	return l.A
}

// Adjacency is one outgoing edge of a node: the neighbor reached and the
// index of the shared Link in Graph.Links(). The order of a node's
// adjacencies is stable (insertion order); coordination actions address
// neighbors by this index.
type Adjacency struct {
	Neighbor NodeID
	Link     int
}

// Graph is an undirected substrate network. The zero value is an empty
// graph ready for use.
type Graph struct {
	name  string
	nodes []Node
	links []Link
	adj   [][]Adjacency
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the topology name (e.g. "Abilene").
func (g *Graph) Name() string { return g.name }

// NumNodes returns the number of nodes |V|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links |L|.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode(name string, lat, lon float64) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Lat: lat, Lon: lon})
	g.adj = append(g.adj, nil)
	return id
}

// ErrInvalidLink reports an attempt to add a malformed link.
var ErrInvalidLink = errors.New("graph: invalid link")

// AddLink connects a and b bidirectionally with the given propagation
// delay. Parallel links and self-loops are rejected.
func (g *Graph) AddLink(a, b NodeID, delay float64) error {
	if a == b {
		return fmt.Errorf("%w: self-loop at node %d", ErrInvalidLink, a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("%w: unknown endpoint (%d,%d)", ErrInvalidLink, a, b)
	}
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("%w: negative delay %f", ErrInvalidLink, delay)
	}
	for _, ad := range g.adj[a] {
		if ad.Neighbor == b {
			return fmt.Errorf("%w: duplicate link (%d,%d)", ErrInvalidLink, a, b)
		}
	}
	idx := len(g.links)
	g.links = append(g.links, Link{A: a, B: b, Delay: delay})
	g.adj[a] = append(g.adj[a], Adjacency{Neighbor: b, Link: idx})
	g.adj[b] = append(g.adj[b], Adjacency{Neighbor: a, Link: idx})
	return nil
}

func (g *Graph) valid(v NodeID) bool { return v >= 0 && int(v) < len(g.nodes) }

// Node returns the node with the given ID. It panics on out-of-range IDs,
// which indicate a programming error (IDs only come from this graph).
func (g *Graph) Node(v NodeID) Node { return g.nodes[v] }

// Link returns the link with the given index.
func (g *Graph) Link(i int) Link { return g.links[i] }

// Links returns all links. The caller must not modify the result.
func (g *Graph) Links() []Link { return g.links }

// Nodes returns all nodes. The caller must not modify the result.
func (g *Graph) Nodes() []Node { return g.nodes }

// Neighbors returns v's adjacency list in stable order. The caller must
// not modify the result.
func (g *Graph) Neighbors(v NodeID) []Adjacency { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// MaxDegree returns the network degree Δ_G, i.e. the maximum number of
// neighbors over all nodes. Observation and action spaces are sized by it.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// MinDegree returns the minimum node degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, a := range g.adj[1:] {
		if len(a) < min {
			min = len(a)
		}
	}
	return min
}

// AvgDegree returns the mean node degree 2|L|/|V|.
func (g *Graph) AvgDegree() float64 {
	if len(g.nodes) == 0 {
		return 0
	}
	return 2 * float64(len(g.links)) / float64(len(g.nodes))
}

// SetNodeCapacity sets cap_v.
func (g *Graph) SetNodeCapacity(v NodeID, c float64) { g.nodes[v].Capacity = c }

// SetLinkCapacity sets cap_l for link index i.
func (g *Graph) SetLinkCapacity(i int, c float64) { g.links[i].Capacity = c }

// SetLinkDelay sets d_l for link index i.
func (g *Graph) SetLinkDelay(i int, d float64) { g.links[i].Delay = d }

// MaxNodeCapacity returns max_v cap_v, the normalizer for node
// utilization observations.
func (g *Graph) MaxNodeCapacity() float64 {
	max := 0.0
	for _, n := range g.nodes {
		if n.Capacity > max {
			max = n.Capacity
		}
	}
	return max
}

// MaxLinkCapacityAt returns max_{l in L_v} cap_l over v's outgoing links,
// the normalizer for v's link utilization observations. It returns 0 for
// isolated nodes.
func (g *Graph) MaxLinkCapacityAt(v NodeID) float64 {
	max := 0.0
	for _, ad := range g.adj[v] {
		if c := g.links[ad.Link].Capacity; c > max {
			max = c
		}
	}
	return max
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ad := range g.adj[v] {
			if !seen[ad.Neighbor] {
				seen[ad.Neighbor] = true
				count++
				stack = append(stack, ad.Neighbor)
			}
		}
	}
	return count == len(g.nodes)
}

// Validate checks structural invariants: connectivity and positive
// capacities on every node and link. Scenario setup calls it after
// assigning capacities.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return errors.New("graph: no nodes")
	}
	if !g.Connected() {
		return errors.New("graph: not connected")
	}
	for _, l := range g.links {
		if l.Capacity <= 0 {
			return fmt.Errorf("graph: link (%d,%d) has non-positive capacity %f", l.A, l.B, l.Capacity)
		}
	}
	return nil
}

// Clone returns a deep copy of g. Scenarios clone the registry topology
// before assigning per-seed random capacities.
func (g *Graph) Clone() *Graph {
	c := &Graph{name: g.name}
	c.nodes = append([]Node(nil), g.nodes...)
	c.links = append([]Link(nil), g.links...)
	c.adj = make([][]Adjacency, len(g.adj))
	for i, a := range g.adj {
		c.adj[i] = append([]Adjacency(nil), a...)
	}
	return c
}

// HaversineKm returns the great-circle distance in kilometers between
// two latitude/longitude positions.
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	dLat := (lat2 - lat1) * rad
	dLon := (lon2 - lon1) * rad
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*rad)*math.Cos(lat2*rad)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// DeriveDelaysFromCoordinates sets every link's delay to the great-circle
// distance between its endpoints multiplied by msPerKm.
func (g *Graph) DeriveDelaysFromCoordinates(msPerKm float64) {
	for i := range g.links {
		a, b := g.nodes[g.links[i].A], g.nodes[g.links[i].B]
		g.links[i].Delay = HaversineKm(a.Lat, a.Lon, b.Lat, b.Lon) * msPerKm
	}
}

// ScaleDelays multiplies every link delay by f.
func (g *Graph) ScaleDelays(f float64) {
	for i := range g.links {
		g.links[i].Delay *= f
	}
}
