package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestAPSPLine(t *testing.T) {
	g := line(t, 4) // 0-1-2-3 with unit delays
	a := NewAPSP(g)
	if got := a.Dist(0, 3); got != 3 {
		t.Errorf("Dist(0,3) = %f, want 3", got)
	}
	if got := a.Dist(2, 2); got != 0 {
		t.Errorf("Dist(2,2) = %f, want 0", got)
	}
	if got := a.NextHop(0, 3); got != 1 {
		t.Errorf("NextHop(0,3) = %d, want 1", got)
	}
	if got := a.NextHop(3, 0); got != 2 {
		t.Errorf("NextHop(3,0) = %d, want 2", got)
	}
	if got := a.NextHop(1, 1); got != None {
		t.Errorf("NextHop(1,1) = %d, want None", got)
	}
	if got := a.Diameter(); got != 3 {
		t.Errorf("Diameter = %f, want 3", got)
	}
}

func TestAPSPPrefersShorterDetour(t *testing.T) {
	// Triangle where the direct edge is slower than the two-hop detour.
	g := New("tri")
	for i := 0; i < 3; i++ {
		g.AddNode("", 0, 0)
	}
	mustLink(t, g, 0, 1, 10)
	mustLink(t, g, 0, 2, 1)
	mustLink(t, g, 2, 1, 1)
	a := NewAPSP(g)
	if got := a.Dist(0, 1); got != 2 {
		t.Errorf("Dist(0,1) = %f, want 2 (via detour)", got)
	}
	if got := a.NextHop(0, 1); got != 2 {
		t.Errorf("NextHop(0,1) = %d, want 2", got)
	}
}

func mustLink(t *testing.T, g *Graph, a, b NodeID, d float64) {
	t.Helper()
	if err := g.AddLink(a, b, d); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
}

func TestAPSPUnreachable(t *testing.T) {
	g := New("split")
	g.AddNode("", 0, 0)
	g.AddNode("", 0, 0)
	a := NewAPSP(g)
	if !Infinite(a.Dist(0, 1)) {
		t.Errorf("Dist between components = %f, want +Inf", a.Dist(0, 1))
	}
	if a.NextHop(0, 1) != None {
		t.Error("NextHop between components should be None")
	}
	if a.Path(0, 1) != nil {
		t.Error("Path between components should be nil")
	}
}

func TestAPSPPath(t *testing.T) {
	g := line(t, 5)
	a := NewAPSP(g)
	p := a.Path(0, 4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("Path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if p := a.Path(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("Path(2,2) = %v, want [2]", p)
	}
}

func TestDistVia(t *testing.T) {
	g := line(t, 4)
	a := NewAPSP(g)
	// From node 1, via neighbor 0, to destination 3: 1 + dist(0,3)=3 -> 4.
	var via0, via2 Adjacency
	for _, ad := range g.Neighbors(1) {
		switch ad.Neighbor {
		case 0:
			via0 = ad
		case 2:
			via2 = ad
		}
	}
	if got := a.DistVia(1, via0, 3); got != 4 {
		t.Errorf("DistVia(1, via 0, 3) = %f, want 4", got)
	}
	if got := a.DistVia(1, via2, 3); got != 2 {
		t.Errorf("DistVia(1, via 2, 3) = %f, want 2", got)
	}
}

// Property: APSP distances on random connected graphs are symmetric,
// satisfy the triangle inequality, and equal the delay sum along the
// reported path.
func TestAPSPProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(25)
		g := randomConnectedGraph(rng, n, rng.Intn(2*n))
		a := NewAPSP(g)
		for u := NodeID(0); int(u) < n; u++ {
			for v := NodeID(0); int(v) < n; v++ {
				duv := a.Dist(u, v)
				if math.Abs(duv-a.Dist(v, u)) > 1e-9 {
					t.Fatalf("asymmetric: Dist(%d,%d)=%f Dist(%d,%d)=%f", u, v, duv, v, u, a.Dist(v, u))
				}
				for w := NodeID(0); int(w) < n; w++ {
					if duv > a.Dist(u, w)+a.Dist(w, v)+1e-9 {
						t.Fatalf("triangle violated: d(%d,%d)=%f > d(%d,%d)+d(%d,%d)=%f",
							u, v, duv, u, w, w, v, a.Dist(u, w)+a.Dist(w, v))
					}
				}
				// Path delay must equal Dist.
				p := a.Path(u, v)
				if u == v {
					continue
				}
				sum := 0.0
				for i := 0; i+1 < len(p); i++ {
					sum += linkDelayBetween(t, g, p[i], p[i+1])
				}
				if math.Abs(sum-duv) > 1e-9 {
					t.Fatalf("path delay %f != Dist(%d,%d)=%f", sum, u, v, duv)
				}
			}
		}
	}
}

func linkDelayBetween(t *testing.T, g *Graph, a, b NodeID) float64 {
	t.Helper()
	for _, ad := range g.Neighbors(a) {
		if ad.Neighbor == b {
			return g.Link(ad.Link).Delay
		}
	}
	t.Fatalf("no link between %d and %d", a, b)
	return 0
}

func TestDiameterPositiveOnTopologies(t *testing.T) {
	for _, g := range Topologies() {
		a := NewAPSP(g)
		d := a.Diameter()
		if d <= 0 || Infinite(d) {
			t.Errorf("%s: diameter = %f, want finite positive", g.Name(), d)
		}
	}
}
