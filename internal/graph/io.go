package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a small line-oriented topology file format so
// users can coordinate services on their own networks, plus a Graphviz
// DOT export for inspection. The format:
//
//	# comment
//	topology <name>
//	node <name> <lat> <lon> [capacity]
//	link <nodeA> <nodeB> <delay> [capacity]
//
// Nodes are referenced by name; names must be unique and contain no
// whitespace. Fields are whitespace-separated. Capacity defaults to 0
// for nodes and 1 for links when omitted.

// Parse reads a topology from the line format above.
func Parse(r io.Reader) (*Graph, error) {
	g := New("")
	byName := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: topology takes a name", lineNo)
			}
			// Topology names may contain spaces (e.g. "BT Europe").
			g.name = strings.Join(fields[1:], " ")
		case "node":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("graph: line %d: node takes name, lat, lon [, capacity]", lineNo)
			}
			if _, dup := byName[fields[1]]; dup {
				return nil, fmt.Errorf("graph: line %d: duplicate node %q", lineNo, fields[1])
			}
			lat, err := parseFloat(fields[2], lineNo, "latitude")
			if err != nil {
				return nil, err
			}
			lon, err := parseFloat(fields[3], lineNo, "longitude")
			if err != nil {
				return nil, err
			}
			id := g.AddNode(fields[1], lat, lon)
			if len(fields) == 5 {
				c, err := parseFloat(fields[4], lineNo, "capacity")
				if err != nil {
					return nil, err
				}
				if c < 0 {
					return nil, fmt.Errorf("graph: line %d: negative node capacity", lineNo)
				}
				g.SetNodeCapacity(id, c)
			}
			byName[fields[1]] = id
		case "link":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("graph: line %d: link takes nodeA, nodeB, delay [, capacity]", lineNo)
			}
			a, ok := byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[1])
			}
			b, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[2])
			}
			delay, err := parseFloat(fields[3], lineNo, "delay")
			if err != nil {
				return nil, err
			}
			if err := g.AddLink(a, b, delay); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			capacity := 1.0
			if len(fields) == 5 {
				capacity, err = parseFloat(fields[4], lineNo, "capacity")
				if err != nil {
					return nil, err
				}
			}
			g.SetLinkCapacity(g.NumLinks()-1, capacity)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading topology: %w", err)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("graph: topology file contains no nodes")
	}
	return g, nil
}

func parseFloat(s string, line int, what string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("graph: line %d: invalid %s %q", line, what, s)
	}
	return v, nil
}

// Write serializes the graph in the format read by Parse. Names are
// whitespace-delimited in the format, so whitespace inside node names is
// replaced by underscores; unnamed nodes are written as n<ID>.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "topology %s\n", nonEmpty(g.name, "unnamed"))
	for _, n := range g.nodes {
		fmt.Fprintf(bw, "node %s %g %g %g\n", g.fileName(n.ID), n.Lat, n.Lon, n.Capacity)
	}
	for _, l := range g.links {
		fmt.Fprintf(bw, "link %s %s %g %g\n", g.fileName(l.A), g.fileName(l.B), l.Delay, l.Capacity)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing topology: %w", err)
	}
	return nil
}

// fileName returns the node's file-format-safe name.
func (g *Graph) fileName(v NodeID) string {
	name := nonEmpty(g.nodes[v].Name, fmt.Sprintf("n%d", v))
	return strings.Join(strings.Fields(name), "_")
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// WriteDOT exports the graph as a Graphviz DOT document with link delays
// as edge labels, for visual inspection (dot -Tsvg).
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", nonEmpty(g.name, "topology"))
	for _, n := range g.nodes {
		fmt.Fprintf(bw, "  %d [label=%q];\n", n.ID, nonEmpty(n.Name, fmt.Sprintf("n%d", n.ID)))
	}
	for _, l := range g.links {
		fmt.Fprintf(bw, "  %d -- %d [label=\"%.1f\"];\n", l.A, l.B, l.Delay)
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: writing DOT: %w", err)
	}
	return nil
}
