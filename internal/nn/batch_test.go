package nn

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// randomMLP builds a network with random layer sizes (1..40 units, 1..4
// layers) and Xavier weights.
func randomMLP(rng *rand.Rand) *MLP {
	nLayers := 1 + rng.Intn(4)
	sizes := make([]int, nLayers+1)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(40)
	}
	return NewMLP(rng, sizes...)
}

// TestForwardBatchMatchesForwardInto is the equivalence oracle of the
// batched path: for random shapes and batch sizes — including the empty
// batch, singletons, one full lane group, and ragged remainders — every
// row of ForwardBatchInto must equal the sequential ForwardInto result
// bit-for-bit (Float64bits, not approximate).
func TestForwardBatchMatchesForwardInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	batchSizes := []int{0, 1, 2, 3, 5, 15, 16, 17, 31, 32, 33, 48}
	for trial := 0; trial < 25; trial++ {
		m := randomMLP(rng)
		in, out := m.InputSize(), m.OutputSize()
		bws := m.NewBatchWorkspace()
		sws := m.NewWorkspace()
		for _, n := range batchSizes {
			xs := make([]float64, n*in)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			got := m.ForwardBatchInto(bws, xs, n)
			if len(got) != n*out {
				t.Fatalf("trial %d n=%d: got %d outputs, want %d", trial, n, len(got), n*out)
			}
			for b := 0; b < n; b++ {
				want := m.ForwardInto(sws, xs[b*in:(b+1)*in])
				for o := 0; o < out; o++ {
					g, w := got[b*out+o], want[o]
					if math.Float64bits(g) != math.Float64bits(w) {
						t.Fatalf("trial %d sizes=%v n=%d row %d out %d: batch %v != sequential %v",
							trial, m.sizes, n, b, o, g, w)
					}
				}
			}
		}
	}
}

// TestForwardBatchReusesWorkspace pins that a workspace serves different
// batch sizes back-to-back (the simulator's gather layer produces
// varying batch sizes against one workspace).
func TestForwardBatchReusesWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 9, 17, 5)
	bws := m.NewBatchWorkspace()
	sws := m.NewWorkspace()
	for _, n := range []int{33, 1, 16, 0, 7, 33} {
		xs := make([]float64, n*9)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		got := m.ForwardBatchInto(bws, xs, n)
		for b := 0; b < n; b++ {
			want := m.ForwardInto(sws, xs[b*9:(b+1)*9])
			for o, w := range want {
				if math.Float64bits(got[b*5+o]) != math.Float64bits(w) {
					t.Fatalf("n=%d row %d: mismatch", n, b)
				}
			}
		}
	}
}

// TestLanesGenericMatchesScalar pins the portable lane kernel against a
// per-lane scalar reference, independent of which kernel forwardLanes
// dispatches to on this machine.
func TestLanesGenericMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 7, 64, 256} {
		row := make([]float64, n)
		xt := make([]float64, n*batchLanes)
		acc := make([]float64, batchLanes)
		ref := make([]float64, batchLanes)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		for l := range acc {
			acc[l] = rng.NormFloat64()
			ref[l] = acc[l]
		}
		lanes16MulAddGeneric(row, xt, acc)
		for l := 0; l < batchLanes; l++ {
			s := ref[l]
			for i := 0; i < n; i++ {
				s += row[i] * xt[i*batchLanes+l]
			}
			if math.Float64bits(s) != math.Float64bits(acc[l]) {
				t.Fatalf("n=%d lane %d: generic %v != scalar %v", n, l, acc[l], s)
			}
		}
	}
}

// TestSoftmaxBatchMatchesRows pins SoftmaxBatchInto to row-by-row
// SoftmaxInto, including a degenerate (all -Inf) row.
func TestSoftmaxBatchMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, w = 9, 7
	logits := make([]float64, n*w)
	for i := range logits {
		logits[i] = rng.NormFloat64() * 3
	}
	for i := 2 * w; i < 3*w; i++ {
		logits[i] = math.Inf(-1)
	}
	got := SoftmaxBatchInto(logits, n, w, make([]float64, n*w))
	want := make([]float64, w)
	for b := 0; b < n; b++ {
		SoftmaxInto(logits[b*w:(b+1)*w], want)
		for o := 0; o < w; o++ {
			if math.Float64bits(got[b*w+o]) != math.Float64bits(want[o]) {
				t.Fatalf("row %d col %d: %v != %v", b, o, got[b*w+o], want[o])
			}
		}
	}
}

// TestArgmaxRowsMatchesArgmax pins ArgmaxRows to per-row Argmax,
// including first-on-ties.
func TestArgmaxRowsMatchesArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n, w = 12, 5
	xs := make([]float64, n*w)
	for i := range xs {
		xs[i] = float64(rng.Intn(3)) // small alphabet forces ties
	}
	got := ArgmaxRows(xs, n, w, make([]int, n))
	for b := 0; b < n; b++ {
		if want := Argmax(xs[b*w : (b+1)*w]); got[b] != want {
			t.Fatalf("row %d: ArgmaxRows %d != Argmax %d", b, got[b], want)
		}
	}
}

// TestForwardBatchZeroAllocs asserts the steady-state batched forward
// performs no allocations once the workspace has grown.
func TestForwardBatchZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMLP(rng, 44, 64, 64, 11)
	ws := m.NewBatchWorkspace()
	const n = 24
	xs := make([]float64, n*44)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	m.ForwardBatchInto(ws, xs, n) // grow the output buffer
	allocs := testing.AllocsPerRun(50, func() {
		m.ForwardBatchInto(ws, xs, n)
	})
	if allocs != 0 {
		t.Fatalf("ForwardBatchInto allocates %v per run, want 0", allocs)
	}
}

// BenchmarkForwardBatch compares per-row inference cost across batch
// sizes on the paper's deployed network shape (2x256 hidden).
func BenchmarkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 44, 256, 256, 11)
	for _, n := range []int{1, 4, 16, 64} {
		xs := make([]float64, n*44)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		ws := m.NewBatchWorkspace()
		b.Run("batch="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.ForwardBatchInto(ws, xs, n)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/row")
		})
	}
}
