package nn

import (
	"math"
	"math/rand"
)

// Softmax returns the softmax distribution over logits, computed with the
// max-subtraction trick for numerical stability.
func Softmax(logits []float64) []float64 {
	max := math.Inf(-1)
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, l := range logits {
		e := math.Exp(l - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSoftmax returns log(Softmax(logits)) computed stably.
func LogSoftmax(logits []float64) []float64 {
	max := math.Inf(-1)
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	sum := 0.0
	for _, l := range logits {
		sum += math.Exp(l - max)
	}
	lse := max + math.Log(sum)
	out := make([]float64, len(logits))
	for i, l := range logits {
		out[i] = l - lse
	}
	return out
}

// SampleCategorical draws an index from the given probability
// distribution. Probabilities must be non-negative; they are normalized
// by their sum.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	total := 0.0
	for _, p := range probs {
		total += p
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1 // guard against float round-off
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// Entropy returns the Shannon entropy −Σ p·log p of a distribution.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// KL returns the Kullback-Leibler divergence KL(p‖q) = Σ p·log(p/q).
// Entries where p is zero contribute nothing; q is floored to avoid
// division by zero.
func KL(p, q []float64) float64 {
	const floor = 1e-12
	d := 0.0
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < floor {
			qi = floor
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}
