package nn

import (
	"math"
	"math/rand"
)

// Softmax returns the softmax distribution over logits, computed with the
// max-subtraction trick for numerical stability. Hot paths should reuse a
// buffer via SoftmaxInto.
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(logits, make([]float64, len(logits)))
}

// SoftmaxInto writes the softmax distribution over logits into out
// (len(out) must equal len(logits)) and returns out. It performs zero
// allocations. Degenerate logits — all -Inf, or any NaN — have no
// well-defined distribution; rather than emit NaN probabilities the
// result falls back to uniform.
func SoftmaxInto(logits, out []float64) []float64 {
	if len(out) != len(logits) {
		panic("nn: SoftmaxInto output length mismatch")
	}
	max := math.Inf(-1)
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	sum := 0.0
	for i, l := range logits {
		e := math.Exp(l - max)
		out[i] = e
		sum += e
	}
	// max = -Inf (all logits -Inf) makes every exp NaN; a NaN logit
	// poisons the sum. Both leave no usable distribution.
	if math.IsNaN(sum) || sum <= 0 {
		uniformInto(out)
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// LogSoftmax returns log(Softmax(logits)) computed stably.
func LogSoftmax(logits []float64) []float64 {
	return LogSoftmaxInto(logits, make([]float64, len(logits)))
}

// LogSoftmaxInto writes log(Softmax(logits)) into out (len(out) must
// equal len(logits)) and returns out, with the same degenerate-input
// fallback as SoftmaxInto (uniform, i.e. -log n everywhere).
func LogSoftmaxInto(logits, out []float64) []float64 {
	if len(out) != len(logits) {
		panic("nn: LogSoftmaxInto output length mismatch")
	}
	max := math.Inf(-1)
	for _, l := range logits {
		if l > max {
			max = l
		}
	}
	sum := 0.0
	for _, l := range logits {
		sum += math.Exp(l - max)
	}
	lse := max + math.Log(sum)
	if math.IsNaN(lse) || math.IsInf(lse, 0) {
		logUniform := -math.Log(float64(len(out)))
		for i := range out {
			out[i] = logUniform
		}
		return out
	}
	for i, l := range logits {
		out[i] = l - lse
	}
	return out
}

// uniformInto overwrites out with the uniform distribution.
func uniformInto(out []float64) {
	if len(out) == 0 {
		return
	}
	p := 1 / float64(len(out))
	for i := range out {
		out[i] = p
	}
}

// SampleCategorical draws an index from the given probability
// distribution. Probabilities must be non-negative; they are normalized
// by their sum. A degenerate vector (zero, NaN, or infinite total) has
// no usable distribution, so sampling falls back to uniform rather than
// silently returning the last index.
func SampleCategorical(rng *rand.Rand, probs []float64) int {
	total := 0.0
	for _, p := range probs {
		total += p
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total <= 0 {
		return rng.Intn(len(probs))
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1 // guard against float round-off
}

// Argmax returns the index of the largest value (first on ties).
func Argmax(xs []float64) int {
	best, bv := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// Entropy returns the Shannon entropy −Σ p·log p of a distribution.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// KL returns the Kullback-Leibler divergence KL(p‖q) = Σ p·log(p/q).
// Entries where p is zero contribute nothing; q is floored to avoid
// division by zero.
func KL(p, q []float64) float64 {
	const floor = 1e-12
	d := 0.0
	for i, pi := range p {
		if pi <= 0 {
			continue
		}
		qi := q[i]
		if qi < floor {
			qi = floor
		}
		d += pi * math.Log(pi/qi)
	}
	return d
}
