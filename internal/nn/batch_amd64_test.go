package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestForwardBatchKernelsAgree runs the full batched pipeline under
// every kernel configuration this machine supports (AVX-512 pair
// kernel, AVX2, generic fallback) and asserts bit-identical logits, so
// one CI machine certifies every dispatch path it can reach.
func TestForwardBatchKernelsAgree(t *testing.T) {
	if !cpuHasAVX2() {
		t.Skip("no AVX2 on this machine")
	}
	defer func(avx2, avx512 bool) { useAVX2, useAVX512 = avx2, avx512 }(useAVX2, useAVX512)
	configs := []struct {
		name         string
		avx2, avx512 bool
	}{
		{"generic", false, false},
		{"avx2", true, false},
	}
	if cpuHasAVX512() {
		configs = append(configs, struct {
			name         string
			avx2, avx512 bool
		}{"avx512", true, true})
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m := randomMLP(rng)
		in := m.InputSize()
		const n = 37 // two full lane groups plus a ragged remainder
		xs := make([]float64, n*in)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		var ref []float64
		for _, cfg := range configs {
			useAVX2, useAVX512 = cfg.avx2, cfg.avx512
			got := m.ForwardBatchInto(m.NewBatchWorkspace(), xs, n)
			if ref == nil {
				ref = append([]float64(nil), got...)
				continue
			}
			for i := range ref {
				if math.Float64bits(ref[i]) != math.Float64bits(got[i]) {
					t.Fatalf("trial %d sizes=%v idx %d: %s %v != generic %v",
						trial, m.sizes, i, cfg.name, got[i], ref[i])
				}
			}
		}
	}
}
