package nn

import "math"

// Adam implements the Adam optimizer (Kingma & Ba), offered as an
// alternative to the paper's RMSprop for the optimizer ablation
// (BenchmarkAblationOptimizer): adaptive per-parameter learning rates
// from bias-corrected first and second moment estimates.
type Adam struct {
	// LR is the learning rate (default semantics as elsewhere: caller
	// chooses; 1e-3 is a common starting point).
	LR float64
	// Beta1 and Beta2 are the moment decay rates (defaults 0.9/0.999).
	Beta1, Beta2 float64
	// Eps stabilizes the division (default 1e-8).
	Eps float64

	m, v [][]float64
	t    int
}

// NewAdam returns an Adam optimizer with standard defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one descent update. params and grads must stay aligned
// and shape-stable across calls.
func (o *Adam) Step(params, grads [][]float64) {
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, len(p))
			o.v[i] = make([]float64, len(p))
		}
	}
	o.t++
	c1 := 1 - math.Pow(o.Beta1, float64(o.t))
	c2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		m, v := o.m[i], o.v[i]
		for j := range p {
			m[j] = o.Beta1*m[j] + (1-o.Beta1)*g[j]
			v[j] = o.Beta2*v[j] + (1-o.Beta2)*g[j]*g[j]
			mHat := m[j] / c1
			vHat := v[j] / c2
			p[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
	}
}

// Reset clears the moment estimates.
func (o *Adam) Reset() {
	o.m, o.v = nil, nil
	o.t = 0
}
