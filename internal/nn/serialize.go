package nn

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// mlpJSON is the serialized form of an MLP.
type mlpJSON struct {
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"` // layer-major: w0, b0, w1, b1, ...
}

// Save writes the network weights as JSON. Trained agents are persisted
// this way so inference agents can load the selected policy (Alg. 1,
// ln. 13-14).
func (m *MLP) Save(w io.Writer) error {
	j := mlpJSON{Sizes: m.sizes}
	for _, l := range m.layers {
		j.Weights = append(j.Weights, l.w, l.b)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(j); err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	return nil
}

// SaveFile atomically writes the network to path: the JSON is written to
// a temporary file in the same directory, fsynced, and renamed into
// place, so a crash mid-write can never leave a truncated (yet
// loadable-looking) weights file behind.
func (m *MLP) SaveFile(path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = m.Save(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("nn: saving network: %w", err)
	}
	return nil
}

// Load reads a network saved with Save. It rejects malformed shapes and
// non-finite weights: a NaN or Inf parameter silently poisons every
// subsequent forward pass, so it must fail loudly at load time.
func Load(r io.Reader) (*MLP, error) {
	var j mlpJSON
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("nn: loading network: %w", err)
	}
	return fromJSON(j)
}

// fromJSON validates a decoded network and builds the MLP.
func fromJSON(j mlpJSON) (*MLP, error) {
	if len(j.Sizes) < 2 {
		return nil, fmt.Errorf("nn: loaded network has invalid sizes %v", j.Sizes)
	}
	// Layer sizes must be positive and sane: a zero or negative size
	// builds a degenerate network that passes the length checks below
	// (e.g. sizes [-1,0] with empty weight blocks), and absurdly large
	// sizes can overflow the in*out shape arithmetic.
	const maxLayerSize = 1 << 24
	for _, sz := range j.Sizes {
		if sz <= 0 || sz > maxLayerSize {
			return nil, fmt.Errorf("nn: loaded network has invalid sizes %v", j.Sizes)
		}
	}
	if len(j.Weights) != 2*(len(j.Sizes)-1) {
		return nil, fmt.Errorf("nn: loaded network has %d weight blocks, want %d",
			len(j.Weights), 2*(len(j.Sizes)-1))
	}
	m := &MLP{sizes: j.Sizes}
	for i := 0; i+1 < len(j.Sizes); i++ {
		in, out := j.Sizes[i], j.Sizes[i+1]
		w, b := j.Weights[2*i], j.Weights[2*i+1]
		if len(w) != in*out || len(b) != out {
			return nil, fmt.Errorf("nn: layer %d weight shapes %d/%d, want %d/%d",
				i, len(w), len(b), in*out, out)
		}
		for _, block := range [][]float64{w, b} {
			for _, v := range block {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, fmt.Errorf("nn: layer %d contains non-finite weight %v", i, v)
				}
			}
		}
		m.layers = append(m.layers, &dense{
			in: in, out: out,
			w: w, b: b,
			gw: make([]float64, in*out),
			gb: make([]float64, out),
		})
	}
	return m, nil
}

// Checksum returns the model hash of serialized checkpoint bytes: the
// hex SHA-256 of the exact byte stream Save produces. Agents advertise
// this hash at handshake and verify it on every model push, so a policy
// deployed across nodes is provably the policy that was trained.
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Checksum returns the model hash of the network's serialized form (the
// hash Save-then-Checksum would produce).
func (m *MLP) Checksum() (string, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return "", err
	}
	return Checksum(buf.Bytes()), nil
}

// LoadVerified decodes a checkpoint only after its bytes hash to
// wantHash. This is the load path for weights that arrived over a
// network push: a truncated or corrupted transfer is rejected by the
// cheap hash comparison before any JSON deserialization runs, so a
// half-written file can never become a live (and subtly wrong) policy.
// An empty wantHash skips verification and behaves like Load.
func LoadVerified(data []byte, wantHash string) (*MLP, error) {
	if wantHash != "" {
		if got := Checksum(data); got != wantHash {
			return nil, fmt.Errorf("nn: checkpoint hash mismatch: got %.12s..., want %.12s... (refusing to deserialize)", got, wantHash)
		}
	}
	return Load(bytes.NewReader(data))
}

// WriteFileVerified is the receiving end of a model push: it verifies
// that data hashes to wantHash, then persists it with the same
// temp+fsync+rename pattern as SaveFile, so the on-disk checkpoint is
// atomically either the old model or the complete verified new one —
// never a torn write. An empty wantHash skips verification.
func WriteFileVerified(path string, data []byte, wantHash string) (err error) {
	if wantHash != "" {
		if got := Checksum(data); got != wantHash {
			return fmt.Errorf("nn: refusing to write checkpoint: hash mismatch (got %.12s..., want %.12s...)", got, wantHash)
		}
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("nn: writing checkpoint: %w", err)
	}
	return nil
}

// LoadFile reads a network from a file written with SaveFile (or Save).
func LoadFile(path string) (*MLP, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: loading network: %w", err)
	}
	defer f.Close()
	return Load(f)
}
