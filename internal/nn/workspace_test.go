package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 6, 16, 16, 4)
	ws := m.NewWorkspace()
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := m.Forward(x)
		got := m.ForwardInto(ws, x)
		if len(got) != len(want) {
			t.Fatalf("output length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ForwardInto[%d] = %v, Forward = %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestForwardIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 8, 32, 32, 5)
	ws := m.NewWorkspace()
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.Float64()
	}
	var out []float64
	allocs := testing.AllocsPerRun(100, func() {
		out = m.ForwardInto(ws, x)
	})
	if allocs != 0 {
		t.Errorf("ForwardInto allocates %v times per run, want 0", allocs)
	}
	_ = out
}

func TestForwardIntoRejectsMismatchedWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP(rng, 4, 8, 2)
	other := NewMLP(rng, 4, 16, 2)
	defer func() {
		if recover() == nil {
			t.Error("ForwardInto accepted a workspace sized for a different architecture")
		}
	}()
	m.ForwardInto(other.NewWorkspace(), make([]float64, 4))
}

func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	logits := []float64{0.3, -1.2, 2.5, 0}
	out := make([]float64, len(logits))
	got := SoftmaxInto(logits, out)
	want := Softmax(logits)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SoftmaxInto[%d] = %v, Softmax = %v", i, got[i], want[i])
		}
	}
	lgot := LogSoftmaxInto(logits, out)
	lwant := LogSoftmax(logits)
	for i := range lwant {
		if lgot[i] != lwant[i] {
			t.Fatalf("LogSoftmaxInto[%d] = %v, LogSoftmax = %v", i, lgot[i], lwant[i])
		}
	}
}

func TestSoftmaxDegenerateFallsBackToUniform(t *testing.T) {
	cases := map[string][]float64{
		"all -Inf": {math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		"NaN":      {0, math.NaN(), 1},
	}
	for name, logits := range cases {
		t.Run(name, func(t *testing.T) {
			probs := Softmax(logits)
			for i, p := range probs {
				if math.Abs(p-1.0/3) > 1e-12 {
					t.Errorf("probs[%d] = %v, want uniform 1/3", i, p)
				}
			}
			lp := LogSoftmax(logits)
			for i, l := range lp {
				if math.Abs(l-math.Log(1.0/3)) > 1e-12 {
					t.Errorf("logprobs[%d] = %v, want log(1/3)", i, l)
				}
			}
		})
	}
}

func TestSampleCategoricalDegenerateUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cases := map[string][]float64{
		"zero total": {0, 0, 0, 0},
		"NaN":        {math.NaN(), 1, 1, 1},
		"+Inf":       {math.Inf(1), 1, 1, 1},
	}
	for name, probs := range cases {
		t.Run(name, func(t *testing.T) {
			counts := make([]int, len(probs))
			const n = 20000
			for i := 0; i < n; i++ {
				a := SampleCategorical(rng, probs)
				if a < 0 || a >= len(probs) {
					t.Fatalf("sample %d out of range", a)
				}
				counts[a]++
			}
			// Uniform fallback: every index must be hit roughly equally,
			// in particular never only the last one.
			for i, c := range counts {
				frac := float64(c) / n
				if math.Abs(frac-0.25) > 0.03 {
					t.Errorf("index %d sampled with frequency %.3f, want ~0.25", i, frac)
				}
			}
		})
	}
}

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewMLP(rng, 3, 8, 2)
	dir := t.TempDir()
	path := filepath.Join(dir, "agent.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// No temp files may survive a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temporary file %q left behind", e.Name())
		}
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 0.9}
	want, got := m.Forward(x), loaded.Forward(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("loaded network diverges at output %d: %v vs %v", i, got[i], want[i])
		}
	}
	// Overwriting an existing file must also work atomically.
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestSaveFileFailsOnMissingDir(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 2, 4, 2)
	if err := m.SaveFile(filepath.Join(t.TempDir(), "no", "such", "dir", "a.json")); err == nil {
		t.Error("SaveFile succeeded into a missing directory")
	}
}

func TestLoadRejectsNonFiniteWeights(t *testing.T) {
	// Standard JSON cannot encode NaN/Inf, so exercise the validation on
	// the decoded form directly (guarding any future codec, and any file
	// that smuggles a non-finite value past the decoder).
	cases := map[string]mlpJSON{
		"NaN weight": {Sizes: []int{2, 2}, Weights: [][]float64{{1, 2, math.NaN(), 4}, {0, 0}}},
		"Inf weight": {Sizes: []int{2, 2}, Weights: [][]float64{{1, 2, 3, math.Inf(1)}, {0, 0}}},
		"Inf bias":   {Sizes: []int{2, 2}, Weights: [][]float64{{1, 2, 3, 4}, {0, math.Inf(-1)}}},
	}
	for name, j := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := fromJSON(j); err == nil {
				t.Error("fromJSON accepted a network with non-finite weights")
			}
		})
	}
	// The JSON decoder itself must also refuse non-finite literals.
	if _, err := Load(strings.NewReader(`{"sizes":[2,2],"weights":[[1,2,3,1e999],[0,0]]}`)); err == nil {
		t.Error("Load accepted an out-of-range weight literal")
	}
}
